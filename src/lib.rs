#![warn(missing_docs)]

//! Umbrella crate re-exporting the full design environment.
//!
//! This workspace reproduces the DAC 1998 paper *"A Programming Environment
//! for the Design of Complex High Speed ASICs"* (Schaumont, Vernalde,
//! Rijnders, Engels, Bolsens — IMEC) in Rust. The original system captured
//! hardware as C++ objects (signals, signal-flow graphs, finite state
//! machines), simulated it with a three-phase cycle scheduler, and generated
//! synthesizable HDL plus testbenches from the same data structure.
//!
//! See the individual crates for detail:
//! * [`ocapi`] — the core DSL: signals, SFGs, FSMs, untimed processes,
//!   data-flow and cycle schedulers, interpreted and compiled simulators.
//! * [`ocapi_fixp`] — fixed-point arithmetic (finite-wordlength simulation).
//! * [`ocapi_hdl`] — VHDL/Verilog code generation and testbench generation.
//! * [`ocapi_rtl`] — event-driven RT-level simulation kernel (the "VHDL RT"
//!   baseline of Table 1).
//! * [`ocapi_synth`] — datapath and controller synthesis to a gate netlist.
//! * [`ocapi_gatesim`] — event-driven gate-level netlist simulation.
//! * [`ocapi_designs`] — the DECT transceiver and HCOR correlator driver
//!   designs plus the demonstrator designs from the paper's conclusions.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete timed component built with
//! the FSM/SFG DSL, simulated with both the interpreted and compiled
//! back-ends.

pub use ocapi;
pub use ocapi_designs;
pub use ocapi_fixp;
pub use ocapi_gatesim;
pub use ocapi_hdl;
pub use ocapi_rtl;
pub use ocapi_synth;
