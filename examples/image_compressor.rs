//! The image-compressor demonstrator: 8-point DCT with quantisation on a
//! streamed pixel block.
//!
//! Run with `cargo run --example image_compressor`.

use asic_dse::ocapi::{InterpSim, Simulator, Value};
use asic_dse::ocapi_designs::image;
use asic_dse::ocapi_fixp::{Fix, Overflow, Rounding};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let block: Vec<f64> = vec![0.9, 0.7, 0.3, -0.1, -0.4, -0.6, -0.7, -0.75];
    println!("pixel block: {block:?}");

    for shift in [0u32, 2] {
        let mut sim = InterpSim::new(image::build_system(shift)?)?;
        sim.set_input("start", Value::Bool(true))?;
        for p in &block {
            sim.set_input(
                "pixel",
                Value::Fixed(Fix::from_f64(
                    *p,
                    image::pixel_fmt(),
                    Rounding::Nearest,
                    Overflow::Saturate,
                )),
            )?;
            sim.step()?;
            sim.set_input("start", Value::Bool(false))?;
        }
        print!("DCT (quant >> {shift}): ");
        for _ in 0..8 {
            sim.step()?;
            let v = sim.output("coef")?.as_fixed().expect("fixed").to_f64();
            print!("{v:+.3} ");
        }
        println!();
    }
    println!("\nhigher quantisation shifts zero out the small coefficients —");
    println!("that is where the compression comes from.");
    Ok(())
}
