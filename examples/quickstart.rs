//! Quickstart: capture the paper's Figure 4 FSM with a small datapath,
//! simulate it with the interpreted and compiled back-ends, and generate
//! its VHDL — all from one description.
//!
//! Run with `cargo run --example quickstart`.

use asic_dse::ocapi::{
    CompiledSim, Component, CoreError, InterpSim, SigType, Simulator, System, Value,
};
use asic_dse::ocapi_hdl::vhdl;

fn build_system() -> Result<System, CoreError> {
    // A component in the style of Figure 4: two states, three SFGs.
    let c = Component::build("fig4");
    let eof = c.input("eof", SigType::Bool)?;
    let x = c.input("x", SigType::Bits(8))?;
    let y = c.output("y", SigType::Bits(8))?;
    let acc = c.reg("acc", SigType::Bits(8))?;

    // sfg1: accumulate.
    let sfg1 = c.sfg("sfg1")?;
    let sum = c.q(acc) + c.read(x);
    sfg1.drive(y, &sum)?;
    sfg1.next(acc, &sum)?;

    // sfg2: freeze (end of frame).
    let sfg2 = c.sfg("sfg2")?;
    sfg2.drive(y, &c.q(acc))?;

    // sfg3: emit and clear.
    let sfg3 = c.sfg("sfg3")?;
    sfg3.drive(y, &c.q(acc))?;
    sfg3.next(acc, &c.const_bits(8, 0))?;

    // The FSM of Figure 4:  s0 --always/sfg1--> s1;
    //                       s1 --eof/sfg2--> s1;  s1 --!eof/sfg3--> s0.
    let eof_s = c.read(eof);
    let f = c.fsm()?;
    let s0 = f.initial("s0")?;
    let s1 = f.state("s1")?;
    f.from(s0).always().run(sfg1.id()).to(s1)?;
    f.from(s1).when(&eof_s).run(sfg2.id()).to(s1)?;
    f.from(s1).unless(&eof_s).run(sfg3.id()).to(s0)?;

    let mut sb = System::build("quickstart");
    let u = sb.add_component("u0", c.finish()?)?;
    sb.input("eof", SigType::Bool)?;
    sb.input("x", SigType::Bits(8))?;
    sb.connect_input("eof", u, "eof")?;
    sb.connect_input("x", u, "x")?;
    sb.output("y", u, "y")?;
    sb.finish()
}

fn drive(sim: &mut dyn Simulator, label: &str) -> Result<(), CoreError> {
    println!("{label}:");
    for (cycle, (x, eof)) in [(5u64, false), (7, false), (1, true), (2, false)]
        .iter()
        .enumerate()
    {
        sim.set_input("x", Value::bits(8, *x))?;
        sim.set_input("eof", Value::Bool(*eof))?;
        sim.step()?;
        println!("  cycle {cycle}: x={x} eof={eof} -> y={}", sim.output("y")?);
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One description, two simulators...
    let mut interp = InterpSim::new(build_system()?)?;
    drive(&mut interp, "interpreted (three-phase cycle scheduler)")?;
    let mut compiled = CompiledSim::new(build_system()?)?;
    drive(&mut compiled, "compiled (levelized tape)")?;

    // ...and generated HDL from the same data structure.
    let sys = build_system()?;
    let v = vhdl::system_source(&sys)?;
    println!(
        "\ngenerated VHDL: {} lines (showing the entity):\n",
        v.lines().count()
    );
    for line in v
        .lines()
        .skip_while(|l| !l.starts_with("entity fig4"))
        .take(12)
    {
        println!("  {line}");
    }
    Ok(())
}
