//! The wireless-LAN modem demonstrator: Barker-11 spreading loopback with
//! the correlation profile printed per chip.
//!
//! Run with `cargo run --example wlan_modem`.

use asic_dse::ocapi::{InterpSim, Simulator, Value};
use asic_dse::ocapi_designs::wlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = InterpSim::new(wlan::build_system()?)?;
    sim.set_input("en", Value::Bool(true))?;

    let data = [true, false, true, true];
    println!("spreading {data:?} over Barker-11, correlating back:\n");
    for bit in data {
        for chip in 0..11 {
            sim.set_input("bit", Value::Bool(bit))?;
            sim.step()?;
            let corr = sim.output("corr")?.as_fixed().expect("fixed").to_f64();
            let peak = sim.output("peak")? == Value::Bool(true);
            let rx = sim.output("rx_bit")? == Value::Bool(true);
            let bar_len = (corr.abs() * 2.0) as usize;
            let bar: String = std::iter::repeat_n('#', bar_len).collect();
            println!(
                "chip {chip:>2}: corr {corr:>5.1} {bar}{}",
                if peak {
                    format!("  <- peak, bit = {rx}")
                } else {
                    String::new()
                }
            );
        }
        println!();
    }
    Ok(())
}
