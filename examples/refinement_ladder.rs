//! The paper's design methodology in one run — the refinement ladder:
//!
//! 1. **data-flow model** (§2): untimed actors on the data-flow scheduler;
//! 2. **mixed model** (§1): the same system with the equalizer still a
//!    high-level untimed block inside the clocked machine;
//! 3. **cycle-true machine** (§3): every datapath refined to FSM + SFGs;
//! 4. **gate-level netlist** (§6): the synthesized chip.
//!
//! All four levels decode the same burst identically — "maintaining an
//! executable system specification at all times".
//!
//! Run with `cargo run --release --example refinement_ladder`.

use asic_dse::ocapi::InterpSim;
use asic_dse::ocapi_designs::dect::burst::{generate, BurstConfig};
use asic_dse::ocapi_designs::dect::highlevel::build_mixed_system;
use asic_dse::ocapi_designs::dect::transceiver::{build_system, run_burst, TransceiverConfig};
use asic_dse::ocapi_designs::dect::{dataflow_model, DELAY};
use asic_dse::ocapi_gatesim::GateSystemSim;
use asic_dse::ocapi_synth::SynthOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = TransceiverConfig::default();
    let burst = generate(&BurstConfig {
        payload_len: 48,
        channel: vec![1.0, 0.4],
        noise: 0.02,
        seed: 5,
    });
    println!("one burst, four abstraction levels:\n");

    // 1. Data-flow (untimed actors, data-flow scheduler).
    let df_bits = dataflow_model::run(&burst.samples, cfg.train)?;
    println!("1. data-flow model      : {} decisions", df_bits.len());

    // 2. Mixed: high-level equalizer inside the clocked machine.
    let mut mixed = InterpSim::new(build_mixed_system(&cfg)?)?;
    let mixed_recs = run_burst(&mut mixed, &burst, None)?;
    println!("2. mixed (untimed eq)   : {} decisions", mixed_recs.len());

    // 3. Fully refined cycle-true machine.
    let mut cycle = InterpSim::new(build_system(&cfg)?)?;
    let cycle_recs = run_burst(&mut cycle, &burst, None)?;
    println!("3. cycle-true machine   : {} decisions", cycle_recs.len());

    // 4. Synthesized gate-level netlist.
    let mut gates = GateSystemSim::new(build_system(&cfg)?, &SynthOptions::default())?;
    let gate_recs = run_burst(&mut gates, &burst, None)?;
    println!(
        "4. gate-level netlist   : {} decisions ({} gates)",
        gate_recs.len(),
        gates.gate_count()
    );

    // All levels agree bit for bit.
    let mut agree = true;
    for k in 0..burst.samples.len() {
        let b = df_bits[k];
        agree &= mixed_recs[k].bit == b && cycle_recs[k].bit == b && gate_recs[k].bit == b;
    }
    println!("\nall levels agree: {agree}");
    assert!(agree);

    // And they decode the payload.
    let errors = cycle_recs
        .iter()
        .enumerate()
        .skip(burst.payload_start + DELAY)
        .filter(|(k, r)| burst.bits[k - DELAY] != r.bit)
        .count();
    println!("payload bit errors      : {errors}");
    Ok(())
}
