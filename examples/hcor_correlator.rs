//! The HCOR header correlator hunting for the DECT sync word in a noisy
//! bit stream, on all four simulation back-ends.
//!
//! Run with `cargo run --release --example hcor_correlator`.

use asic_dse::ocapi::{CompiledSim, InterpSim};
use asic_dse::ocapi_designs::hcor;
use asic_dse::ocapi_gatesim::GateSystemSim;
use asic_dse::ocapi_rtl::RtlSystemSim;
use asic_dse::ocapi_synth::SynthOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = hcor::test_pattern(60, 2024);
    println!(
        "stream: {} bits, sync word 0x{:04x} embedded at bit 60",
        bits.len(),
        hcor::SYNC_WORD
    );

    let mut interp = InterpSim::new(hcor::build_system()?)?;
    let a = hcor::run_detection(&mut interp, &bits, 16)?;
    println!("interpreted        : detect at cycle {a:?}");

    let mut compiled = CompiledSim::new(hcor::build_system()?)?;
    let b = hcor::run_detection(&mut compiled, &bits, 16)?;
    println!("compiled           : detect at cycle {b:?}");

    let mut rtl = RtlSystemSim::new(hcor::build_system()?)?;
    let c = hcor::run_detection(&mut rtl, &bits, 16)?;
    println!("RT event-driven    : detect at cycle {c:?}");

    let mut gates = GateSystemSim::new(hcor::build_system()?, &SynthOptions::default())?;
    let d = hcor::run_detection(&mut gates, &bits, 16)?;
    println!("gate-level netlist : detect at cycle {d:?}");

    assert!(a == b && b == c && c == d);
    println!(
        "\nall four paradigms agree; locked state: {}",
        interp.state_name("hcor0")?
    );
    Ok(())
}
