//! The paper's Figure 8 synthesis strategy, end to end on the HCOR
//! correlator: datapath + controller synthesis to gates, generated
//! verification testbench, and gate-level re-simulation checked against
//! the captured description.
//!
//! Run with `cargo run --release --example synthesis_flow`.

use asic_dse::ocapi::{InterpSim, Simulator, Value};
use asic_dse::ocapi_designs::hcor;
use asic_dse::ocapi_gatesim::GateSystemSim;
use asic_dse::ocapi_hdl::{project, testbench, vhdl};
use asic_dse::ocapi_synth::report::{histogram_table, ComponentReport};
use asic_dse::ocapi_synth::{emit, parse, synthesize, SynthOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize the component (controller + datapath, Figure 8).
    let comp = hcor::build_component()?;
    let netlist = synthesize(&comp, &SynthOptions::default())?;
    println!("{}", ComponentReport::for_component(&netlist));
    println!("\ngate histogram:\n{}", histogram_table(&netlist));

    // 2. Simulate the captured description, recording a testbench trace.
    let bits = hcor::test_pattern(24, 7);
    let mut golden = InterpSim::new(hcor::build_system()?)?;
    golden.enable_trace();
    hcor::run_detection(&mut golden, &bits, 15)?;

    // 3. Generate HDL and the self-checking testbench from the trace.
    let vhdl_src = vhdl::system_source(golden.system())?;
    let tb = testbench::vhdl_testbench("hcor", golden.trace())?;
    println!(
        "generated VHDL: {} lines, testbench: {} lines ({} cycles)",
        vhdl_src.lines().count(),
        tb.lines().count(),
        golden.trace().len()
    );

    // 3b. Write the hand-off project to disk, as the original flow did
    //     for the Synopsys/Cathedral tools.
    let dir = std::path::Path::new("target/generated/hcor");
    let manifest = project::write_vhdl_project(golden.system(), Some(golden.trace()), dir)?;
    println!(
        "wrote {} VHDL files to {}: {:?}",
        manifest.files.len(),
        dir.display(),
        manifest.files
    );

    // 3c. Write the gate-level netlist itself — the artifact Figure 8
    //     hands to the foundry flow — and prove the file is lossless by
    //     parsing it back.
    let gates_v = emit::verilog_netlist(&netlist.name, &netlist.netlist);
    std::fs::write(dir.join("hcor_gates.v"), &gates_v)?;
    std::fs::write(
        dir.join("hcor_gates.vhd"),
        emit::vhdl_netlist(&netlist.name, &netlist.netlist),
    )?;
    let reimported = parse::verilog_netlist(&gates_v)?;
    println!(
        "wrote gate-level netlist ({} lines); re-import: {} gates, {} FF",
        gates_v.lines().count(),
        reimported.netlist.combinational_count(),
        reimported.netlist.dff_count()
    );

    // 4. Re-simulate the synthesized netlist and compare cycle for cycle.
    let mut gates = GateSystemSim::new(hcor::build_system()?, &SynthOptions::default())?;
    gates.set_input("enable", Value::Bool(true))?;
    gates.set_input("threshold", Value::bits(5, 15))?;
    let mut golden2 = InterpSim::new(hcor::build_system()?)?;
    golden2.set_input("enable", Value::Bool(true))?;
    golden2.set_input("threshold", Value::bits(5, 15))?;
    let mut mismatches = 0;
    for b in &bits {
        for sim in [
            &mut golden2 as &mut dyn Simulator,
            &mut gates as &mut dyn Simulator,
        ] {
            sim.set_input("bit_in", Value::Bool(*b))?;
            sim.step()?;
        }
        for out in ["corr", "detect", "sync_pos"] {
            if golden2.output(out)? != gates.output(out)? {
                mismatches += 1;
            }
        }
    }
    println!(
        "gate-level vs captured description over {} cycles: {} mismatches",
        bits.len(),
        mismatches
    );
    assert_eq!(mismatches, 0);
    println!("synthesis verified: netlist is cycle-exact with the source");
    Ok(())
}
