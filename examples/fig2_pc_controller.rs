//! The paper's Figure 2: the DECT program-counter controller with its
//! hold/execute FSM, driven through a hold-request pulse.
//!
//! Run with `cargo run --example fig2_pc_controller`.

use asic_dse::ocapi::{InterpSim, SigType, Simulator, System, Value};
use asic_dse::ocapi_designs::dect::pc_controller;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sb = System::build("fig2");
    let u = sb.add_component("pc", pc_controller::build("pc_ctrl")?)?;
    sb.input("hold_request", SigType::Bool)?;
    sb.connect_input("hold_request", u, "hold_request")?;
    sb.tie(u, "loop_start", Value::bits(8, 1))?;
    sb.tie(u, "loop_end", Value::bits(8, 6))?;
    sb.output("iaddr", u, "iaddr")?;
    sb.output("holding", u, "holding")?;
    let mut sim = InterpSim::new(sb.finish()?)?;

    println!("cycle  hold_request  state    iaddr  (0 = nop)");
    for cycle in 0..14u32 {
        let hold = (5..8).contains(&cycle);
        sim.set_input("hold_request", Value::Bool(hold))?;
        sim.step()?;
        println!(
            "{cycle:>5}  {:>12}  {:<7} {:>6}",
            if hold { "asserted" } else { "-" },
            sim.state_name("pc")?,
            sim.output("iaddr")?.as_bits().expect("bits"),
        );
    }
    println!("\nThe interrupted instruction resumes exactly where the hold hit —");
    println!("the paper's global-exception mechanism (§3.3).");
    Ok(())
}
