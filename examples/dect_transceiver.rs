//! The complete DECT transceiver processing a synthetic burst: multipath
//! channel, adaptive equalisation, sync detection, payload decoding.
//!
//! Run with `cargo run --release --example dect_transceiver`.

use asic_dse::ocapi::{InterpSim, Simulator};
use asic_dse::ocapi_designs::dect::burst::{generate, BurstConfig};
use asic_dse::ocapi_designs::dect::transceiver::{build_system, run_burst, TransceiverConfig};
use asic_dse::ocapi_designs::dect::{DELAY, TRAIN_LEN};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = TransceiverConfig::default();
    let channel = vec![1.0, 0.45];
    let burst = generate(&BurstConfig {
        payload_len: 128,
        channel: channel.clone(),
        noise: 0.03,
        seed: 42,
    });
    println!(
        "burst: 32 S-field + {} payload bits through channel {channel:?} + noise",
        burst.bits.len() - 32
    );

    let mut sim = InterpSim::new(build_system(&cfg)?)?;
    let records = run_burst(&mut sim, &burst, None)?;

    // Training convergence.
    println!("\nLMS training (|err| per symbol):");
    for k in (DELAY..TRAIN_LEN + DELAY).step_by(4) {
        let e: f64 = records[k..k + 4].iter().map(|r| r.err.abs()).sum::<f64>() / 4.0;
        let bar = "#".repeat((e * 24.0).min(60.0) as usize);
        println!("  sym {k:>3}: {e:>6.3} {bar}");
    }

    // Sync detection.
    let detect = records.iter().position(|r| r.detect);
    match detect {
        Some(k) => println!("\nsync word detected at symbol {k} (S-field ends at 31)"),
        None => println!("\nsync word NOT detected"),
    }

    // Payload bit errors.
    let mut errors = 0;
    let mut checked = 0;
    for (k, rec) in records.iter().enumerate().skip(burst.payload_start + DELAY) {
        checked += 1;
        if burst.bits[k - DELAY] != rec.bit {
            errors += 1;
        }
    }
    println!("payload: {checked} bits checked, {errors} errors");
    println!(
        "status word: {:08b} (bit7 = sync detected, bit6 = holding)",
        sim.output("status")?.as_bits().expect("bits")
    );
    Ok(())
}
