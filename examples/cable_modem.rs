//! The upstream cable-modem demonstrator: scrambler → DQPSK → half-band
//! interpolation, printing the transmitted constellation.
//!
//! Run with `cargo run --example cable_modem`.

use asic_dse::ocapi::{InterpSim, Simulator, Value};
use asic_dse::ocapi_designs::modem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = InterpSim::new(modem::build_system()?)?;
    sim.set_input("en", Value::Bool(true))?;

    let payload: Vec<bool> = (0..48).map(|i| (i * 7) % 5 < 2).collect();
    println!("bit   scrambled  symbol (I, Q)");
    for (n, bit) in payload.iter().enumerate() {
        sim.set_input("bit", Value::Bool(*bit))?;
        sim.step()?;
        let scr = sim.output("scrambled")? == Value::Bool(true);
        if sim.output("sym_valid")? == Value::Bool(true) {
            let i = sim.output("i")?.as_fixed().expect("fixed").to_f64();
            let q = sim.output("q")?.as_fixed().expect("fixed").to_f64();
            println!("{n:>3}   {:>9}  ({i:+.3}, {q:+.3})", u8::from(scr));
        } else {
            println!("{n:>3}   {:>9}", u8::from(scr));
        }
    }
    Ok(())
}
