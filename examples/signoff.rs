//! The back-end sign-off flow on the HCOR correlator — everything that
//! happens *after* the paper's Figure 8 synthesis step, using only this
//! workspace:
//!
//! 1. synthesize (controller + datapath, operator sharing),
//! 2. technology-map to the NAND/INV cell subset and re-optimise,
//! 3. static timing: critical path and maximum clock,
//! 4. grade the generated testbench vectors by stuck-at fault
//!    simulation,
//! 5. write the mapped netlist as structural Verilog + VHDL and prove
//!    the Verilog re-imports losslessly.
//!
//! Run with `cargo run --release --example signoff`.

use std::path::Path;

use asic_dse::ocapi_designs::hcor;
use asic_dse::ocapi_gatesim::fault::stuck_at_coverage;
use asic_dse::ocapi_gatesim::GateSim;
use asic_dse::ocapi_synth::{emit, opt, parse, synthesize, techmap, timing, SynthOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesis.
    let comp = hcor::build_component()?;
    let generic = synthesize(&comp, &SynthOptions::default())?;
    println!(
        "synthesized {}: {:.0} gate-eq ({} comb, {} FF)",
        generic.name,
        generic.area(),
        generic.netlist.combinational_count(),
        generic.netlist.dff_count()
    );

    // 2. Technology mapping.
    let mut mapped = generic.netlist.clone();
    let rewritten = techmap::to_nand_inv(&mut mapped);
    opt::optimize(&mut mapped);
    assert!(techmap::is_nand_inv(&mapped));
    println!(
        "mapped to NAND/INV: {rewritten} gates rewritten, {:.0} gate-eq after clean-up",
        mapped.area()
    );

    // 3. Static timing on the mapped netlist.
    let sta = timing::analyze(&mapped);
    println!(
        "critical path: {:.1} gate delays over {} stages -> max clock ~{:.0} MHz at 300 ps/unit",
        sta.critical_path,
        sta.depth,
        sta.max_clock_mhz(300.0)
    );

    // 4. Fault-grade the functional test pattern on the mapped netlist.
    let bits = hcor::test_pattern(256, 7);
    let report = stuck_at_coverage(&mapped, |sim: &mut GateSim| {
        let bit = sim.netlist().input_by_name("bit_in").expect("in").to_vec();
        let en = sim.netlist().input_by_name("enable").expect("in").to_vec();
        let th = sim
            .netlist()
            .input_by_name("threshold")
            .expect("in")
            .to_vec();
        let outs: Vec<Vec<_>> = sim
            .netlist()
            .outputs
            .iter()
            .map(|(_, ws)| ws.clone())
            .collect();
        let mut seen = Vec::new();
        for b in &bits {
            sim.set_bus(&bit, *b as u64);
            sim.set_bus(&en, 1);
            sim.set_bus(&th, 11);
            sim.settle()?;
            sim.clock()?;
            for ws in &outs {
                seen.push(sim.bus(ws));
            }
        }
        Ok(seen)
    })?;
    println!(
        "stuck-at fault coverage of the testbench vectors: {}/{} = {:.1}%",
        report.detected,
        report.total,
        100.0 * report.coverage()
    );

    // 5. Write the hand-off files and prove the Verilog is lossless.
    let dir = Path::new("target/generated/hcor_signoff");
    std::fs::create_dir_all(dir)?;
    let v = emit::verilog_netlist("hcor_nand", &mapped);
    std::fs::write(dir.join("hcor_nand.v"), &v)?;
    std::fs::write(
        dir.join("hcor_nand.vhd"),
        emit::vhdl_netlist("hcor_nand", &mapped),
    )?;
    let back = parse::verilog_netlist(&v)?;
    assert_eq!(back.netlist.dff_count(), mapped.dff_count());
    println!(
        "wrote {} ({} lines) + VHDL twin; re-import OK ({} gates, {} FF)",
        dir.join("hcor_nand.v").display(),
        v.lines().count(),
        back.netlist.combinational_count(),
        back.netlist.dff_count()
    );
    println!("signoff complete");
    Ok(())
}
