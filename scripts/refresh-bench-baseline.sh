#!/usr/bin/env bash
# Regenerates BENCH_BASELINE.json — the committed perf floor the CI
# bench-regress step compares every PR's BENCH_PR.json against.
#
# One command, run from anywhere in the repo; commit the result:
#
#   scripts/refresh-bench-baseline.sh && git add BENCH_BASELINE.json
#
# Refresh after any deliberate perf-affecting change (new fast path,
# heavier default workload) so the floor tracks intent, not drift.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p ocapi-bench -p ocapi-serve
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
for bin in table1 table_gates fault_coverage ber_sweep exception_latency; do
  ./target/release/$bin --quick --threads 4 --perf-json "$out/$bin.perf.json"
done
# A second table_gates pass with the netlist cut four ways: records the
# model-parallel partitioned_cycles_per_sec next to the single-core
# rate (bench_regress takes the max per (bin, key); its same-run
# partitioned-vs-single-core relative gate never reads the baseline).
./target/release/table_gates --quick --threads 4 --partitions 4 \
  --perf-json "$out/table_gates-p4.perf.json"
# A second table1 pass on the direct-threaded fused engine: records
# fused_cycles_per_sec (and the fused per-design rows) next to the
# default-engine metrics; bench_regress takes the max per (bin, key).
./target/release/table1 --quick --threads 4 --engine fused \
  --perf-json "$out/table1-fused.perf.json"
# The persistent-service job rate, measured against a freshly started
# daemon the same way the CI bench-smoke job measures it.
sock="$out/refresh.sock"
./target/release/served --socket "$sock" --cache 8 2>/dev/null &
dpid=$!
for i in $(seq 100); do
  ./target/release/servectl --socket "$sock" ping >/dev/null 2>&1 && break
  sleep 0.1
done
./target/release/servectl --socket "$sock" loadgen \
  --jobs 32 --concurrency 4 --perf-json "$out/servectl.perf.json"
./target/release/servectl --socket "$sock" shutdown >/dev/null
wait $dpid
jq -s '{generated_by: "scripts/refresh-bench-baseline.sh", bins: .}' \
  "$out"/*.perf.json > BENCH_BASELINE.json
echo "wrote BENCH_BASELINE.json ($(jq '.bins | length' BENCH_BASELINE.json) bins)"
