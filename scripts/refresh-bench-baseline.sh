#!/usr/bin/env bash
# Regenerates BENCH_BASELINE.json — the committed perf floor the CI
# bench-regress step compares every PR's BENCH_PR.json against.
#
# One command, run from anywhere in the repo; commit the result:
#
#   scripts/refresh-bench-baseline.sh && git add BENCH_BASELINE.json
#
# Refresh after any deliberate perf-affecting change (new fast path,
# heavier default workload) so the floor tracks intent, not drift.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p ocapi-bench
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
for bin in table1 table_gates fault_coverage ber_sweep exception_latency; do
  ./target/release/$bin --quick --threads 4 --perf-json "$out/$bin.perf.json"
done
jq -s '{generated_by: "scripts/refresh-bench-baseline.sh", bins: .}' \
  "$out"/*.perf.json > BENCH_BASELINE.json
echo "wrote BENCH_BASELINE.json ($(jq '.bins | length' BENCH_BASELINE.json) bins)"
