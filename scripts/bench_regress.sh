#!/usr/bin/env bash
# bench_regress.sh BENCH_PR.json BENCH_BASELINE.json
#
# The CI perf-regression gate: the tracked throughput metrics of the PR
# run must stay at or above 0.5x the committed baseline. The floor is
# deliberately loose — CI runners are shared and the baseline was
# recorded on a different machine — so the gate catches structural
# regressions (a dropped fast path, an accidentally quadratic loop),
# not percent-level noise. After a deliberate perf change, refresh the
# floor with scripts/refresh-bench-baseline.sh and commit it.
set -euo pipefail
pr=${1:?usage: bench_regress.sh BENCH_PR.json BENCH_BASELINE.json}
base=${2:?usage: bench_regress.sh BENCH_PR.json BENCH_BASELINE.json}
floor=0.5
fail=0

# Highest value across a bin's runs (bench-smoke runs some bins at
# several lane/opt configurations; the best run carries the metric).
metric() { # file bin key
  jq -r --arg b "$2" --arg k "$3" \
    '[.bins[] | select(.bin == $b) | .perf[$k] | numbers] | max // empty' "$1"
}

check() { # bin key
  local new old
  new=$(metric "$pr" "$1" "$2")
  old=$(metric "$base" "$1" "$2")
  if [ -z "$new" ] || [ -z "$old" ]; then
    echo "FAIL $1.$2: metric missing (pr='${new:-}' baseline='${old:-}')"
    fail=1
    return
  fi
  if awk -v n="$new" -v o="$old" -v f="$floor" 'BEGIN { exit !(o <= 0 || n >= f * o) }'; then
    awk -v n="$new" -v o="$old" -v l="$1.$2" \
      'BEGIN { printf "ok   %-42s %12.4g vs baseline %12.4g (%.2fx)\n", l, n, o, (o > 0 ? n / o : 1) }'
  else
    awk -v n="$new" -v o="$old" -v l="$1.$2" -v f="$floor" \
      'BEGIN { printf "FAIL %-42s %12.4g vs baseline %12.4g (%.2fx < %gx floor)\n", l, n, o, n / o, f }'
    fail=1
  fi
}

# Relative gate within one PR run: metric a must be >= ratio * metric b
# of the SAME run. Machine-independent (both sides share the runner),
# so it can be much tighter than the cross-machine floor.
check_relative() { # bin key_a key_b ratio
  local a b
  a=$(metric "$pr" "$1" "$2")
  b=$(metric "$pr" "$1" "$3")
  if [ -z "$a" ] || [ -z "$b" ]; then
    echo "FAIL $1.$2 vs $1.$3: metric missing (a='${a:-}' b='${b:-}')"
    fail=1
    return
  fi
  if awk -v a="$a" -v b="$b" -v r="$4" 'BEGIN { exit !(b <= 0 || a >= r * b) }'; then
    awk -v a="$a" -v b="$b" -v l="$1.$2/$3" \
      'BEGIN { printf "ok   %-42s %12.4g vs %12.4g (%.2fx)\n", l, a, b, (b > 0 ? a / b : 1) }'
  else
    awk -v a="$a" -v b="$b" -v l="$1.$2/$3" -v r="$4" \
      'BEGIN { printf "FAIL %-42s %12.4g vs %12.4g (%.2fx < %gx required)\n", l, a, b, a / b, r }'
    fail=1
  fi
}

check table1 hcor_compiled_cycles_per_sec
check table1 fused_cycles_per_sec
# The fused engine's reason to exist: the direct-threaded lowering must
# stay well ahead of the switch-dispatch compiled loop on the same
# runner, same run (DESIGN.md § Lowered execution).
check_relative table1 fused_cycles_per_sec hcor_compiled_cycles_per_sec 1.5
check ber_sweep batched_runs_per_sec
check fault_coverage grade_faults_per_sec
check table_gates partitioned_cycles_per_sec
# The partitioned engine's reason to exist: K balanced sub-kernels
# settling on the pool must beat the flat kernel on the same netlist,
# same runner, same run (DESIGN.md §15). The 4-vCPU CI runner's
# structural ceiling is ~3.5x; 1.05 absorbs shared-runner contention
# while still catching a parallel path that stopped paying for itself.
check_relative table_gates partitioned_cycles_per_sec single_core_cycles_per_sec 1.05
check servectl jobs_per_sec
exit $fail
