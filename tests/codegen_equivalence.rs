//! Figure 7 end-to-end: one captured data structure feeds simulation, HDL
//! generation and testbench generation; the generated artifacts must be
//! complete, deterministic, and consistent with the recorded behaviour.

use asic_dse::ocapi::{InterpSim, Simulator, Value};
use asic_dse::ocapi_designs::dect::burst::{generate, BurstConfig};
use asic_dse::ocapi_designs::dect::transceiver::{build_system, run_burst, TransceiverConfig};
use asic_dse::ocapi_designs::hcor;
use asic_dse::ocapi_hdl::report::CodeSizeReport;
use asic_dse::ocapi_hdl::{testbench, verilog, vhdl};

#[test]
fn dect_vhdl_generation_is_complete_and_deterministic() {
    let cfg = TransceiverConfig::default();
    let sys = build_system(&cfg).expect("build");
    let src = vhdl::system_source(&sys).expect("codegen");
    // Every timed component becomes an entity.
    for t in &sys.timed {
        assert!(
            src.contains(&format!("entity {} is", t.comp.name)),
            "missing entity for {}",
            t.comp.name
        );
    }
    // All 7 memories get generated behavioural models (no black boxes).
    for u in &sys.untimed {
        assert!(
            src.contains(&format!("architecture behavioural of {}", u.block.name())),
            "missing behavioural model for {}",
            u.block.name()
        );
    }
    assert!(!src.contains("behavioural model supplied separately"));
    assert!(src.contains("entity dect_top is"));
    let again = vhdl::system_source(&build_system(&cfg).expect("build")).expect("codegen");
    assert_eq!(src, again, "generation must be deterministic");
}

#[test]
fn dect_verilog_generation_is_complete() {
    let cfg = TransceiverConfig::default();
    let sys = build_system(&cfg).expect("build");
    let src = verilog::system_source(&sys).expect("codegen");
    for t in &sys.timed {
        assert!(src.contains(&format!("module {} (", t.comp.name)));
    }
    assert!(src.contains("module dect_top ("));
    assert!(src.matches("endmodule").count() >= sys.timed.len());
}

#[test]
fn traces_feed_testbenches_for_the_full_transceiver() {
    let cfg = TransceiverConfig::default();
    let burst = generate(&BurstConfig {
        payload_len: 4,
        ..BurstConfig::default()
    });
    let mut sim = InterpSim::new(build_system(&cfg).expect("build")).expect("sim");
    sim.enable_trace();
    run_burst(&mut sim, &burst, None).expect("run");
    let trace = sim.trace();
    assert_eq!(trace.len(), burst.samples.len() * 4);

    let tb = testbench::vhdl_testbench("dect", trace).expect("tb");
    assert!(tb.contains("entity dect_tb is end entity;"));
    assert_eq!(tb.matches("-- cycle").count(), trace.len());
    // Outputs are asserted each cycle.
    assert!(tb.matches("assert bit =").count() == trace.len());

    let tbv = testbench::verilog_testbench("dect", trace).expect("tb");
    assert!(tbv.contains("module dect_tb;"));
    assert!(tbv.contains("$finish;"));

    // And the VCD dump of the same trace is well-formed.
    let vcd = trace.to_vcd();
    assert!(vcd.contains("$enddefinitions $end"));
    assert!(vcd.contains("$var wire 12 s0 sample $end"));
}

#[test]
fn traces_are_identical_between_interp_and_compiled() {
    use asic_dse::ocapi::CompiledSim;
    let bits = hcor::test_pattern(20, 1);
    let mut a = InterpSim::new(hcor::build_system().expect("build")).expect("sim");
    a.enable_trace();
    hcor::run_detection(&mut a, &bits, 14).expect("run");
    let mut b = CompiledSim::new(hcor::build_system().expect("build")).expect("sim");
    b.enable_trace();
    hcor::run_detection(&mut b, &bits, 14).expect("run");
    assert_eq!(a.trace(), b.trace());
}

#[test]
fn code_size_report_shows_compaction() {
    let sys = build_system(&TransceiverConfig::default()).expect("build");
    let dsl: String = asic_dse::ocapi_designs::dsl_sources()
        .iter()
        .filter(|(n, _)| {
            [
                "hcor",
                "dect/pc_controller",
                "dect/datapaths",
                "dect/transceiver",
            ]
            .contains(n)
        })
        .map(|(_, s)| s.split("#[cfg(test)]").next().unwrap_or(s).to_owned())
        .collect();
    let report = CodeSizeReport::for_system(&sys, &dsl).expect("report");
    assert!(report.dsl_lines > 300, "dsl lines = {}", report.dsl_lines);
    assert!(
        report.vhdl_ratio() > 1.5,
        "generated VHDL should be substantially larger than the DSL: {report}"
    );
}

#[test]
fn testbench_respects_value_types() {
    // A trace with fixed-point IO must emit signed literals.
    let cfg = TransceiverConfig::default();
    let burst = generate(&BurstConfig {
        payload_len: 2,
        ..BurstConfig::default()
    });
    let mut sim = InterpSim::new(build_system(&cfg).expect("build")).expect("sim");
    sim.enable_trace();
    run_burst(&mut sim, &burst, None).expect("run");
    let tb = testbench::vhdl_testbench("dect", sim.trace()).expect("tb");
    assert!(
        tb.contains("to_signed("),
        "fixed-point stimuli use signed literals"
    );
    let _ = Value::Bool(true); // silence unused-import lints in minimal builds
}
