//! The Figure 8 hand-off on a real design: the synthesized HCOR netlist
//! written as structural Verilog, parsed back, and proven cycle-exact
//! against the original netlist (and against the in-process gate-level
//! system simulation).

use asic_dse::ocapi::{Simulator, Value};
use asic_dse::ocapi_designs::hcor;
use asic_dse::ocapi_gatesim::{GateSim, GateSystemSim};
use asic_dse::ocapi_synth::{emit, parse, synthesize, SynthOptions};

#[test]
fn synthesized_hcor_round_trips_through_verilog() {
    // Reference: the synthesized netlist of the HCOR component.
    let sys = hcor::build_system().expect("build");
    let comp = &sys.timed[0].comp;
    let synthesized = synthesize(comp, &SynthOptions::default()).expect("synth");

    let src = emit::verilog_netlist(&synthesized.name, &synthesized.netlist);
    let parsed = parse::verilog_netlist(&src).expect("parse");
    assert_eq!(parsed.name, synthesized.name);

    // Drive original and re-imported netlists with the same bit stream.
    let mut orig = GateSim::new(synthesized.netlist.clone()).expect("sim");
    let mut back = GateSim::new(parsed.netlist).expect("sim");
    let bits = hcor::test_pattern(400, 7);
    for b in &bits {
        for s in [&mut orig, &mut back] {
            let bit = s.netlist().input_by_name("bit_in").expect("in").to_vec();
            let en = s.netlist().input_by_name("enable").expect("in").to_vec();
            let th = s.netlist().input_by_name("threshold").expect("in").to_vec();
            s.set_bus(&bit, *b as u64);
            s.set_bus(&en, 1);
            s.set_bus(&th, 11);
            s.settle().expect("settle");
            s.clock().expect("clock");
        }
        let d_o = orig
            .netlist()
            .output_by_name("detect")
            .expect("out")
            .to_vec();
        let d_b = back
            .netlist()
            .output_by_name("detect")
            .expect("out")
            .to_vec();
        let c_o = orig.netlist().output_by_name("corr").expect("out").to_vec();
        let c_b = back.netlist().output_by_name("corr").expect("out").to_vec();
        assert_eq!(orig.bus(&d_o), back.bus(&d_b), "detect diverged");
        assert_eq!(orig.bus(&c_o), back.bus(&c_b), "corr diverged");
    }

    // The emitted header carries the report numbers.
    assert!(src.contains(&format!(
        "{} gates, {} FF",
        synthesized.netlist.combinational_count(),
        synthesized.netlist.dff_count()
    )));

    // Sanity: the in-process system sim also still detects on this input.
    let mut sysim = GateSystemSim::new(
        hcor::build_system().expect("build"),
        &SynthOptions::default(),
    )
    .expect("sim");
    sysim.set_input("enable", Value::Bool(true)).expect("set");
    sysim
        .set_input("threshold", Value::bits(5, 11))
        .expect("set");
    let mut detected = false;
    for b in &bits {
        sysim.set_input("bit_in", Value::Bool(*b)).expect("set");
        sysim.step().expect("step");
        if sysim.output("detect").expect("out") == Value::Bool(true) {
            detected = true;
        }
    }
    assert!(detected, "pattern contains the sync word");
}

#[test]
fn vhdl_netlist_of_synthesized_design_is_well_formed() {
    let sys = hcor::build_system().expect("build");
    let comp = &sys.timed[0].comp;
    let synthesized = synthesize(comp, &SynthOptions::default()).expect("synth");
    let v = emit::vhdl_netlist(&synthesized.name, &synthesized.netlist);
    assert!(v.contains(&format!("entity {} is", synthesized.name)));
    assert!(v.contains("rising_edge(clk)"));
    assert!(v.contains("end architecture;"));
    // Every flip-flop appears in both the reset and the update branch.
    let resets = v.matches("<= '0';").count() + v.matches("<= '1';").count();
    assert!(resets >= synthesized.netlist.dff_count());
}
