//! The §3.3 architecture experiment as an assertion: the DECT design
//! switched from a data-driven to a centrally-controlled architecture
//! because global exceptions (the hold request) are O(1) under central
//! control but O(pipeline depth) under local data-driven control.

use asic_dse::ocapi::{Component, CoreError, InterpSim, SigType, Simulator, System, Value};
use asic_dse::ocapi_designs::dect::burst::{generate, BurstConfig};
use asic_dse::ocapi_designs::dect::transceiver::{build_system, TransceiverConfig};

fn stage(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let stall_in = c.input("stall_in", SigType::Bool)?;
    let d_in = c.input("d_in", SigType::Bits(16))?;
    let stall_out = c.output("stall_out", SigType::Bool)?;
    let d_out = c.output("d_out", SigType::Bits(16))?;
    let data = c.reg("data", SigType::Bits(16))?;
    let stall_r = c.reg("stall_r", SigType::Bool)?;
    let s = c.sfg("s")?;
    let st = c.read(stall_in);
    let q = c.q(data);
    s.next(data, &st.mux(&q, &c.read(d_in)))?;
    s.next(stall_r, &st)?;
    s.drive(d_out, &q)?;
    s.drive(stall_out, &c.q(stall_r))?;
    c.finish()
}

fn pipeline(k: usize) -> Result<System, CoreError> {
    let mut sb = System::build("pipeline");
    let src = {
        let c = Component::build("src");
        let stall = c.input("stall_in", SigType::Bool)?;
        let out = c.output("d_out", SigType::Bits(16))?;
        let cnt = c.reg("cnt", SigType::Bits(16))?;
        let s = c.sfg("s")?;
        let q = c.q(cnt);
        s.next(
            cnt,
            &c.read(stall).mux(&q, &(q.clone() + c.const_bits(16, 1))),
        )?;
        s.drive(out, &q)?;
        c.finish()?
    };
    let src_id = sb.add_component("src", src)?;
    let mut stages = Vec::new();
    for i in 0..k {
        stages.push(sb.add_component(&format!("st{i}"), stage(&format!("stage{i}"))?)?);
    }
    sb.connect(src_id, "d_out", stages[0], "d_in")?;
    for i in 1..k {
        sb.connect(stages[i - 1], "d_out", stages[i], "d_in")?;
    }
    sb.input("stall", SigType::Bool)?;
    sb.connect_input("stall", stages[k - 1], "stall_in")?;
    for i in (0..k - 1).rev() {
        sb.connect(stages[i + 1], "stall_out", stages[i], "stall_in")?;
    }
    sb.connect(stages[0], "stall_out", src_id, "stall_in")?;
    sb.output("head", src_id, "d_out")?;
    sb.finish()
}

fn dataflow_freeze_latency(k: usize) -> u64 {
    let mut sim = InterpSim::new(pipeline(k).expect("build")).expect("sim");
    sim.set_input("stall", Value::Bool(false)).expect("set");
    sim.run(10).expect("warmup");
    sim.set_input("stall", Value::Bool(true)).expect("set");
    let mut prev = sim.output("head").expect("out");
    for cycle in 1..500 {
        sim.step().expect("step");
        let cur = sim.output("head").expect("out");
        if cur == prev {
            return cycle;
        }
        prev = cur;
    }
    panic!("source never froze");
}

#[test]
fn central_control_freezes_in_one_cycle() {
    let cfg = TransceiverConfig::default();
    let burst = generate(&BurstConfig::default());
    let mut sim = InterpSim::new(build_system(&cfg).expect("build")).expect("sim");
    sim.set_input("hold_request", Value::Bool(false))
        .expect("set");
    sim.set_input("sample", Value::Fixed(burst.samples[0]))
        .expect("set");
    sim.run(10).expect("warmup");
    sim.set_input("hold_request", Value::Bool(true))
        .expect("set");
    sim.step().expect("step");
    assert_eq!(
        sim.output("holding").expect("out"),
        Value::Bool(true),
        "central control must freeze on the next instruction fetch"
    );
}

#[test]
fn data_driven_freeze_latency_grows_with_depth() {
    let l4 = dataflow_freeze_latency(4);
    let l16 = dataflow_freeze_latency(16);
    let l32 = dataflow_freeze_latency(32);
    assert!(l4 >= 4, "at least one handshake per stage: {l4}");
    assert!(l16 > l4, "{l16} vs {l4}");
    assert!(l32 > l16, "{l32} vs {l16}");
    // The growth is linear in depth (one registered handshake per stage).
    assert_eq!(l32 - l16, 16);
}
