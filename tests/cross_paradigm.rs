//! Workspace-level integration: the same captured designs driven through
//! all four simulation paradigms (interpreted, compiled, event-driven RT,
//! gate-level netlist) must agree cycle for cycle — the property that
//! makes the paper's Table 1 a comparison of *speeds*, not semantics.

use asic_dse::ocapi::{CompiledSim, InterpSim, Simulator, Value};
use asic_dse::ocapi_designs::dect::burst::{generate, BurstConfig};
use asic_dse::ocapi_designs::dect::transceiver::{build_system, run_burst, TransceiverConfig};
use asic_dse::ocapi_designs::{hcor, modem, wlan};
use asic_dse::ocapi_gatesim::GateSystemSim;
use asic_dse::ocapi_rtl::RtlSystemSim;
use asic_dse::ocapi_synth::SynthOptions;

#[test]
fn hcor_four_paradigms_agree() {
    let bits = hcor::test_pattern(40, 77);
    let run = |sim: &mut dyn Simulator| -> (Option<u64>, Value, Value) {
        let hit = hcor::run_detection(sim, &bits, 15).expect("run");
        (
            hit,
            sim.output("corr").expect("out"),
            sim.output("sync_pos").expect("out"),
        )
    };
    let mut interp = InterpSim::new(hcor::build_system().expect("build")).expect("sim");
    let a = run(&mut interp);
    let mut compiled = CompiledSim::new(hcor::build_system().expect("build")).expect("sim");
    assert_eq!(a, run(&mut compiled), "compiled");
    let mut rtl = RtlSystemSim::new(hcor::build_system().expect("build")).expect("sim");
    assert_eq!(a, run(&mut rtl), "rtl");
    let mut gates = GateSystemSim::new(
        hcor::build_system().expect("build"),
        &SynthOptions::default(),
    )
    .expect("sim");
    assert_eq!(a, run(&mut gates), "gates");
}

#[test]
fn dect_four_paradigms_agree() {
    let cfg = TransceiverConfig::default();
    let burst = generate(&BurstConfig {
        payload_len: 8,
        ..BurstConfig::default()
    });
    let mut interp = InterpSim::new(build_system(&cfg).expect("build")).expect("sim");
    let a = run_burst(&mut interp, &burst, None).expect("run");
    let mut compiled = CompiledSim::new(build_system(&cfg).expect("build")).expect("sim");
    let b = run_burst(&mut compiled, &burst, None).expect("run");
    assert_eq!(a, b, "compiled");
    let mut rtl = RtlSystemSim::new(build_system(&cfg).expect("build")).expect("sim");
    let c = run_burst(&mut rtl, &burst, None).expect("run");
    assert_eq!(a, c, "rtl");
    let mut gates =
        GateSystemSim::new(build_system(&cfg).expect("build"), &SynthOptions::default())
            .expect("sim");
    let d = run_burst(&mut gates, &burst, None).expect("run");
    assert_eq!(a, d, "gates");
}

#[test]
fn dect_hold_agrees_across_paradigms() {
    let cfg = TransceiverConfig::default();
    let burst = generate(&BurstConfig {
        payload_len: 8,
        ..BurstConfig::default()
    });
    let hold = Some((37, 9));
    let mut interp = InterpSim::new(build_system(&cfg).expect("build")).expect("sim");
    let a = run_burst(&mut interp, &burst, hold).expect("run");
    let mut rtl = RtlSystemSim::new(build_system(&cfg).expect("build")).expect("sim");
    let b = run_burst(&mut rtl, &burst, hold).expect("run");
    assert_eq!(a, b, "rtl under hold");
    let mut gates =
        GateSystemSim::new(build_system(&cfg).expect("build"), &SynthOptions::default())
            .expect("sim");
    let c = run_burst(&mut gates, &burst, hold).expect("run");
    assert_eq!(a, c, "gates under hold");
}

#[test]
fn wlan_paradigms_agree() {
    let drive = |sim: &mut dyn Simulator| -> Vec<(Value, Value)> {
        sim.set_input("en", Value::Bool(true)).expect("set");
        let mut out = Vec::new();
        for i in 0..66 {
            sim.set_input("bit", Value::Bool(i % 7 < 3)).expect("set");
            sim.step().expect("step");
            out.push((
                sim.output("corr").expect("out"),
                sim.output("peak").expect("out"),
            ));
        }
        out
    };
    let mut interp = InterpSim::new(wlan::build_system().expect("build")).expect("sim");
    let a = drive(&mut interp);
    let mut compiled = CompiledSim::new(wlan::build_system().expect("build")).expect("sim");
    assert_eq!(a, drive(&mut compiled));
    let mut gates = GateSystemSim::new(
        wlan::build_system().expect("build"),
        &SynthOptions::default(),
    )
    .expect("sim");
    assert_eq!(a, drive(&mut gates));
}

#[test]
fn modem_paradigms_agree() {
    let drive = |sim: &mut dyn Simulator| -> Vec<(Value, Value, Value)> {
        sim.set_input("en", Value::Bool(true)).expect("set");
        let mut out = Vec::new();
        for i in 0..64 {
            sim.set_input("bit", Value::Bool(i % 5 == 2)).expect("set");
            sim.step().expect("step");
            out.push((
                sim.output("i").expect("out"),
                sim.output("q").expect("out"),
                sim.output("sym_valid").expect("out"),
            ));
        }
        out
    };
    let mut interp = InterpSim::new(modem::build_system().expect("build")).expect("sim");
    let a = drive(&mut interp);
    let mut compiled = CompiledSim::new(modem::build_system().expect("build")).expect("sim");
    assert_eq!(a, drive(&mut compiled));
    let mut rtl = RtlSystemSim::new(modem::build_system().expect("build")).expect("sim");
    assert_eq!(a, drive(&mut rtl));
}

#[test]
fn image_compressor_paradigms_agree() {
    use asic_dse::ocapi::Fix;
    use asic_dse::ocapi::{Overflow, Rounding};
    use asic_dse::ocapi_designs::image;
    let drive = |sim: &mut dyn Simulator| -> Vec<Value> {
        let block = [0.6, -0.4, 0.2, 0.8, -0.7, 0.1, -0.2, 0.5];
        sim.set_input("start", Value::Bool(true)).expect("set");
        let mut out = Vec::new();
        for (i, p) in block.iter().enumerate() {
            sim.set_input(
                "pixel",
                Value::Fixed(Fix::from_f64(
                    *p,
                    image::pixel_fmt(),
                    Rounding::Nearest,
                    Overflow::Saturate,
                )),
            )
            .expect("set");
            sim.step().expect("step");
            if i == 0 {
                sim.set_input("start", Value::Bool(false)).expect("set");
            }
        }
        for _ in 0..8 {
            sim.step().expect("step");
            out.push(sim.output("coef").expect("out"));
        }
        out
    };
    let mut interp = InterpSim::new(image::build_system(1).expect("build")).expect("sim");
    let a = drive(&mut interp);
    let mut compiled = CompiledSim::new(image::build_system(1).expect("build")).expect("sim");
    assert_eq!(a, drive(&mut compiled), "compiled");
    let mut rtl = RtlSystemSim::new(image::build_system(1).expect("build")).expect("sim");
    assert_eq!(a, drive(&mut rtl), "rtl");
    let mut gates = GateSystemSim::new(
        image::build_system(1).expect("build"),
        &SynthOptions::default(),
    )
    .expect("sim");
    assert_eq!(a, drive(&mut gates), "gates");
}
