//! System tests of the full DECT transceiver: the cycle-true machine
//! against the bit-exact software reference, sync detection, LMS
//! convergence, the Figure 2 hold mechanism and cross-simulator equality.

use ocapi::{CompiledSim, InterpSim, Simulator, Value};
use ocapi_designs::dect::burst::{generate, BurstConfig};
use ocapi_designs::dect::reference::Reference;
use ocapi_designs::dect::transceiver::{build_system, run_burst, TransceiverConfig};
use ocapi_designs::dect::{DELAY, TRAIN_LEN};

fn default_burst() -> BurstConfig {
    BurstConfig {
        payload_len: 96,
        channel: vec![1.0, 0.4],
        noise: 0.02,
        seed: 11,
    }
}

#[test]
fn transceiver_matches_reference_bit_exactly() {
    let cfg = TransceiverConfig::default();
    let burst = generate(&default_burst());

    let mut sim = InterpSim::new(build_system(&cfg).unwrap()).unwrap();
    let hw = run_burst(&mut sim, &burst, None).unwrap();

    let mut r = Reference::new(cfg.train);
    let sw = r.run(&burst.samples);

    assert_eq!(hw.len(), sw.len());
    for (k, (h, s)) in hw.iter().zip(&sw).enumerate() {
        assert_eq!(h.bit, s.bit, "decision diverged at symbol {k}");
        assert_eq!(h.err, s.err.to_f64(), "error diverged at symbol {k}");
    }
}

#[test]
fn equalizer_converges_and_decodes_payload() {
    let cfg = TransceiverConfig::default();
    let burst = generate(&default_burst());
    let mut sim = InterpSim::new(build_system(&cfg).unwrap()).unwrap();
    let records = run_burst(&mut sim, &burst, None).unwrap();

    // Training error shrinks: compare early vs late training symbols.
    let early: f64 = records[DELAY..DELAY + 8]
        .iter()
        .map(|r| r.err.abs())
        .sum::<f64>()
        / 8.0;
    let late: f64 = records[TRAIN_LEN..TRAIN_LEN + 8]
        .iter()
        .map(|r| r.err.abs())
        .sum::<f64>()
        / 8.0;
    assert!(
        late < early,
        "LMS error should shrink: early {early}, late {late}"
    );

    // Payload decisions match the transmitted bits (delayed by the
    // pipeline).
    let mut errors = 0;
    let mut checked = 0;
    for (k, rec) in records.iter().enumerate().skip(burst.payload_start + DELAY) {
        let tx = burst.bits[k - DELAY];
        checked += 1;
        if tx != rec.bit {
            errors += 1;
        }
    }
    assert!(checked > 60);
    assert_eq!(errors, 0, "bit errors in payload: {errors}/{checked}");
}

#[test]
fn sync_word_is_detected_during_burst() {
    let cfg = TransceiverConfig::default();
    let burst = generate(&default_burst());
    let mut sim = InterpSim::new(build_system(&cfg).unwrap()).unwrap();
    let records = run_burst(&mut sim, &burst, None).unwrap();
    let first_detect = records.iter().position(|r| r.detect);
    // The sync word ends at symbol 31; add pipeline delay and the
    // correlator's registered lock.
    let hit = first_detect.expect("sync must be detected");
    assert!(
        (30 + DELAY..40 + DELAY).contains(&hit),
        "detect at symbol {hit}"
    );
    // Detection latency is far inside the 29-symbol DECT budget counted
    // from the last sync bit (symbol 31).
    assert!(hit - 31 <= 29, "latency {} symbols", hit - 31);
}

#[test]
fn hold_request_freezes_and_resumes_without_corruption() {
    let cfg = TransceiverConfig::default();
    let burst = generate(&default_burst());

    let mut clean = InterpSim::new(build_system(&cfg).unwrap()).unwrap();
    let clean_records = run_burst(&mut clean, &burst, None).unwrap();

    // Hold for 13 cycles in the middle of the burst (mid-instruction in
    // the symbol loop).
    let mut held = InterpSim::new(build_system(&cfg).unwrap()).unwrap();
    let held_records = run_burst(&mut held, &burst, Some((201, 13))).unwrap();

    assert_eq!(
        clean_records, held_records,
        "a hold must delay, not corrupt, the processing"
    );
}

#[test]
fn compiled_simulator_agrees_with_interpreter() {
    let cfg = TransceiverConfig::default();
    let mut small = default_burst();
    small.payload_len = 32;
    let burst = generate(&small);

    let mut interp = InterpSim::new(build_system(&cfg).unwrap()).unwrap();
    let a = run_burst(&mut interp, &burst, None).unwrap();
    let mut compiled = CompiledSim::new(build_system(&cfg).unwrap()).unwrap();
    let b = run_burst(&mut compiled, &burst, None).unwrap();
    assert_eq!(a, b);
}

#[test]
fn status_word_reports_activity() {
    let cfg = TransceiverConfig::default();
    let burst = generate(&default_burst());
    let mut sim = InterpSim::new(build_system(&cfg).unwrap()).unwrap();
    run_burst(&mut sim, &burst, None).unwrap();
    let status = sim.output("status").unwrap().as_bits().unwrap();
    // Bit 7: sync detected.
    assert_eq!(status >> 7, 1, "status = {status:08b}");
}

#[test]
fn dr_interface_produces_bytes() {
    let cfg = TransceiverConfig::default();
    let burst = generate(&default_burst());
    let mut sim = InterpSim::new(build_system(&cfg).unwrap()).unwrap();
    // Count dr_valid pulses cycle by cycle.
    sim.set_input("hold_request", Value::Bool(false)).unwrap();
    let mut valids = 0;
    for s in &burst.samples {
        sim.set_input("sample", Value::Fixed(*s)).unwrap();
        for _ in 0..4 {
            sim.step().unwrap();
            if sim.output("dr_valid").unwrap() == Value::Bool(true) {
                valids += 1;
            }
        }
    }
    // One byte per 8 symbols.
    assert_eq!(valids as usize, burst.samples.len() / 8);
}

#[test]
fn dirty_channel_needs_the_equalizer() {
    // With training disabled (no adaptation towards the reference), the
    // hard channel produces bit errors; with it, none.
    let hard = BurstConfig {
        payload_len: 96,
        channel: vec![1.0, 0.55],
        noise: 0.01,
        seed: 3,
    };
    let burst = generate(&hard);

    let count_errors = |train: bool| {
        let cfg = TransceiverConfig {
            train,
            agc: false,
            adapt: true,
        };
        let mut sim = InterpSim::new(build_system(&cfg).unwrap()).unwrap();
        let records = run_burst(&mut sim, &burst, None).unwrap();
        let mut errors = 0;
        for (k, rec) in records.iter().enumerate().skip(burst.payload_start + DELAY) {
            if burst.bits[k - DELAY] != rec.bit {
                errors += 1;
            }
        }
        errors
    };
    let trained = count_errors(true);
    assert_eq!(trained, 0, "trained equalizer must decode cleanly");
}

#[test]
fn mixed_refinement_matches_cycle_true() {
    // The paper's §1 headline: a high-level (untimed) equalizer model
    // replaces the 11 MAC datapaths + sum tree, and the mixed system
    // stays bit-exact with the fully refined cycle-true machine.
    use ocapi_designs::dect::highlevel::build_mixed_system;
    let cfg = TransceiverConfig::default();
    let burst = generate(&default_burst());

    let mut refined = InterpSim::new(build_system(&cfg).unwrap()).unwrap();
    let a = run_burst(&mut refined, &burst, None).unwrap();
    let mut mixed = InterpSim::new(build_mixed_system(&cfg).unwrap()).unwrap();
    let b = run_burst(&mut mixed, &burst, None).unwrap();
    assert_eq!(a, b, "refinement must preserve behaviour bit-exactly");

    // The compiled back-end handles the mixed description too
    // ("maintaining an executable system specification at all times").
    let mut mixed_compiled = CompiledSim::new(build_mixed_system(&cfg).unwrap()).unwrap();
    let c = run_burst(&mut mixed_compiled, &burst, None).unwrap();
    assert_eq!(a, c);
}

#[test]
fn mixed_refinement_survives_hold() {
    use ocapi_designs::dect::highlevel::build_mixed_system;
    let cfg = TransceiverConfig::default();
    let burst = generate(&default_burst());
    let mut refined = InterpSim::new(build_system(&cfg).unwrap()).unwrap();
    let a = run_burst(&mut refined, &burst, Some((101, 7))).unwrap();
    let mut mixed = InterpSim::new(build_mixed_system(&cfg).unwrap()).unwrap();
    let b = run_burst(&mut mixed, &burst, Some((101, 7))).unwrap();
    assert_eq!(a, b);
}
