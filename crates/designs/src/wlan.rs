//! The wireless-LAN modem demonstrator (§7): an 802.11-style Barker-11
//! direct-sequence spreader and the matching correlating despreader.

use ocapi::{Component, CoreError, SigType, System};
use ocapi_fixp::Format;

/// The 11-chip Barker sequence (+1 → true), in transmission order.
pub const BARKER: [bool; 11] = [
    true, true, true, false, false, false, true, false, false, true, false,
];

/// Chip sample format.
pub fn chip_fmt() -> Format {
    Format::new(8, 3).expect("static format")
}

/// Correlator output format.
pub fn corr_fmt() -> Format {
    Format::new(10, 5).expect("static format")
}

/// The spreader: each data bit becomes 11 chips (bit XOR Barker).
///
/// Ports: `bit: Bool`, `en: Bool` → `chip: Bool`, `chip_idx: Bits(4)`,
/// `sym_start: Bool`. A new bit is consumed whenever the chip counter
/// wraps.
///
/// # Errors
///
/// Propagates capture errors.
pub fn spreader(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let bit = c.input("bit", SigType::Bool)?;
    let en = c.input("en", SigType::Bool)?;
    let chip = c.output("chip", SigType::Bool)?;
    let chip_idx = c.output("chip_idx", SigType::Bits(4))?;
    let sym_start = c.output("sym_start", SigType::Bool)?;

    let cnt = c.reg("cnt", SigType::Bits(4))?;
    let cur = c.reg("cur", SigType::Bool)?;

    let s = c.sfg("spread")?;
    let env = c.read(en);
    let q = c.q(cnt);
    let at_start = q.eq(&c.const_bits(4, 0));
    let active_bit = at_start.mux(&c.read(bit), &c.q(cur));

    // chip = bit XOR barker[cnt] — the Barker lookup as a select chain.
    let mut barker_sig = c.const_bool(BARKER[10]);
    for (i, b) in BARKER.iter().enumerate().take(10).rev() {
        barker_sig = q
            .eq(&c.const_bits(4, i as u64))
            .mux(&c.const_bool(*b), &barker_sig);
    }
    s.drive(chip, &(active_bit.clone() ^ !barker_sig))?;
    s.drive(chip_idx, &q)?;
    s.drive(sym_start, &(env.clone() & at_start.clone()))?;

    let wrap = q.eq(&c.const_bits(4, 10));
    let nxt = wrap.mux(&c.const_bits(4, 0), &(q.clone() + c.const_bits(4, 1)));
    s.next(cnt, &env.mux(&nxt, &q))?;
    s.next(cur, &(env & at_start).mux(&c.read(bit), &c.q(cur)))?;
    c.finish()
}

/// The despreader: an 11-tap matched filter on soft chips with peak
/// detection.
///
/// Ports: `chip: <8,3>` (soft ±1), `en: Bool` → `corr: <10,5>`,
/// `bit: Bool`, `peak: Bool` (true when |corr| crosses the decision
/// threshold of 8).
///
/// # Errors
///
/// Propagates capture errors.
pub fn despreader(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let chip = c.input("chip", SigType::Fixed(chip_fmt()))?;
    let en = c.input("en", SigType::Bool)?;
    let corr_out = c.output("corr", SigType::Fixed(corr_fmt()))?;
    let bit_out = c.output("bit", SigType::Bool)?;
    let peak = c.output("peak", SigType::Bool)?;

    let line: Vec<_> = (0..11)
        .map(|i| c.reg(&format!("d{i}"), SigType::Fixed(chip_fmt())))
        .collect::<Result<_, _>>()?;

    let s = c.sfg("despread")?;
    let env = c.read(en);
    for i in (1..11).rev() {
        s.next(line[i], &env.mux(&c.q(line[i - 1]), &c.q(line[i])))?;
    }
    s.next(line[0], &env.mux(&c.read(chip), &c.q(line[0])))?;

    // Matched filter: newest chip aligns with the LAST Barker chip.
    let mut acc: Option<ocapi::Sig> = None;
    for (i, reg) in line.iter().enumerate() {
        let tap = c.q(*reg);
        let signed = if BARKER[10 - i] {
            tap
        } else {
            (-tap).to_fixed(
                chip_fmt(),
                ocapi::Rounding::Nearest,
                ocapi::Overflow::Saturate,
            )
        };
        acc = Some(match acc {
            None => signed,
            Some(a) => a + signed,
        });
    }
    let corr = acc.expect("eleven taps").to_fixed(
        corr_fmt(),
        ocapi::Rounding::Nearest,
        ocapi::Overflow::Saturate,
    );
    let d = corr.ge(&c.const_fixed(0.0, corr_fmt()));
    let thresh = c.const_fixed(8.0, corr_fmt());
    let neg_thresh = c.const_fixed(-8.0, corr_fmt());
    let hit = corr.ge(&thresh) | corr.le(&neg_thresh);
    s.drive(corr_out, &corr)?;
    s.drive(bit_out, &d)?;
    s.drive(peak, &hit)?;
    c.finish()
}

/// A loopback system: spreader → (hard→soft conversion) → despreader.
///
/// # Errors
///
/// Propagates capture errors.
pub fn build_system() -> Result<System, CoreError> {
    // Soft conversion component: chip bool -> ±1 fixed.
    let conv = {
        let c = Component::build("chip_dac");
        let chip = c.input("chip", SigType::Bool)?;
        let out = c.output("soft", SigType::Fixed(chip_fmt()))?;
        let s = c.sfg("dac")?;
        let p = c.const_fixed(1.0, chip_fmt());
        let n = c.const_fixed(-1.0, chip_fmt());
        s.drive(out, &c.read(chip).mux(&p, &n))?;
        c.finish()?
    };

    let mut sb = System::build("wlan_modem");
    let tx = sb.add_component("tx", spreader("spreader")?)?;
    let dac = sb.add_component("dac", conv)?;
    let rx = sb.add_component("rx", despreader("despreader")?)?;
    sb.input("bit", SigType::Bool)?;
    sb.input("en", SigType::Bool)?;
    sb.connect_input("bit", tx, "bit")?;
    sb.connect_input("en", tx, "en")?;
    sb.connect_input("en", rx, "en")?;
    sb.connect(tx, "chip", dac, "chip")?;
    sb.connect(dac, "soft", rx, "chip")?;
    sb.output("chip", tx, "chip")?;
    sb.output("corr", rx, "corr")?;
    sb.output("rx_bit", rx, "bit")?;
    sb.output("peak", rx, "peak")?;
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocapi::{InterpSim, Simulator, Value};

    #[test]
    fn loopback_recovers_bits_at_peaks() {
        let mut sim = InterpSim::new(build_system().unwrap()).unwrap();
        sim.set_input("en", Value::Bool(true)).unwrap();
        let data = [true, false, false, true, true, false, true, false];
        let mut recovered = Vec::new();
        for bit in data {
            for _chip in 0..11 {
                sim.set_input("bit", Value::Bool(bit)).unwrap();
                sim.step().unwrap();
                if sim.output("peak").unwrap() == Value::Bool(true) {
                    recovered.push(sim.output("rx_bit").unwrap() == Value::Bool(true));
                }
            }
        }
        // The first symbol needs the pipeline to fill; afterwards one
        // peak per symbol.
        assert!(recovered.len() >= data.len() - 1, "{recovered:?}");
        let offset = data.len() - recovered.len();
        for (i, r) in recovered.iter().enumerate() {
            assert_eq!(*r, data[i + offset - offset], "symbol {i}");
        }
        // Peaks carry the transmitted data in order.
        assert_eq!(&recovered[..], &data[..recovered.len()]);
    }

    #[test]
    fn correlation_peaks_at_eleven() {
        let mut sim = InterpSim::new(build_system().unwrap()).unwrap();
        sim.set_input("en", Value::Bool(true)).unwrap();
        sim.set_input("bit", Value::Bool(true)).unwrap();
        let mut max_corr: f64 = 0.0;
        for _ in 0..44 {
            sim.step().unwrap();
            let v = sim.output("corr").unwrap().as_fixed().unwrap().to_f64();
            max_corr = max_corr.max(v.abs());
        }
        assert!((max_corr - 11.0).abs() < 0.01, "max {max_corr}");
    }
}
