//! Scaled-up replica designs for the model-parallel gate engine.
//!
//! The in-tree designs top out around the size of one DECT block — far
//! too small for netlist partitioning to pay for its exchange phase.
//! This module manufactures paper-scale gate counts the honest way:
//! [`replicate_netlist`] stamps a synthesized netlist R times and
//! chains the replicas through *registered* stitch logic, so the result
//! is a single flat netlist with realistic structure — R balanced
//! combinational islands, registered nets between them, shared primary
//! inputs fanning out to every island — rather than R disconnected
//! copies.
//!
//! The stitch between replica `r` and `r+1` is, per input bit `t`:
//!
//! ```text
//! in[r+1][t] = DFF( out[r][t mod |out|]  XOR  primary_in[t] )
//! ```
//!
//! The XOR keeps every replica's activity driven by both fresh stimulus
//! and upstream state from cycle one, and the DFF keeps the replica
//! boundary registered — exactly the kind of net a partitioner may cut.
//!
//! [`scaled_hcor`] applies this to the synthesized HCOR header
//! correlator, the repo's standard fault/BIST workhorse.

use ocapi::CoreError;
use ocapi_synth::gate::{GateKind, Netlist, WireId};
use ocapi_synth::{synthesize, SynthOptions};

use crate::hcor;

/// Stamps `base` `replicas` times (at least once) into one flat
/// netlist, chaining the replicas through registered XOR stitches.
///
/// The result's input buses are the base's (shared by every replica);
/// its output buses are the base's, taken from the *last* replica.
/// Replica 0 reads the primary inputs directly; replica `r+1` reads
/// replica `r` through the stitch registers, so activity reaches the
/// whole chain after one clock and the only nets between replicas are
/// flip-flop outputs.
pub fn replicate_netlist(base: &Netlist, replicas: usize) -> Netlist {
    let replicas = replicas.max(1);
    let mut out = Netlist::new();

    // Shared primary inputs, one bus per base input bus.
    let mut flat_inputs: Vec<Vec<WireId>> = Vec::new();
    for (name, bus) in &base.inputs {
        flat_inputs.push(out.input_bus(name, bus.len()));
    }
    let flat_in_bits: Vec<WireId> = flat_inputs.iter().flatten().copied().collect();

    // Input wires of the replica being stamped, one entry per flat
    // stimulus bit, in base input-bus declaration order.
    let mut feed: Vec<WireId> = flat_in_bits.clone();
    let mut last_outputs: Vec<Vec<WireId>> = Vec::new();
    for r in 0..replicas {
        let mut wmap: Vec<Option<WireId>> = vec![None; base.n_wires];
        for (slot, w) in base
            .inputs
            .iter()
            .flat_map(|(_, bus)| bus.iter())
            .zip(&feed)
        {
            wmap[slot.index()] = Some(*w);
        }
        for g in &base.gates {
            let inputs: Vec<WireId> = g
                .inputs
                .iter()
                .map(|w| alloc(&mut out, &mut wmap, *w))
                .collect();
            let output = alloc(&mut out, &mut wmap, g.output);
            out.gate_into(g.kind, &inputs, output);
            if g.kind == GateKind::Dff {
                // gate_into leaves init at the default; fix it up.
                if let Some(last) = out.gates.last_mut() {
                    last.init = g.init;
                }
            }
        }
        last_outputs = base
            .outputs
            .iter()
            .map(|(_, bus)| bus.iter().map(|w| alloc(&mut out, &mut wmap, *w)).collect())
            .collect();
        if r + 1 < replicas {
            let out_bits: Vec<WireId> = last_outputs.iter().flatten().copied().collect();
            feed = flat_in_bits
                .iter()
                .enumerate()
                .map(|(t, pin)| {
                    let d = if out_bits.is_empty() {
                        *pin
                    } else {
                        out.gate(GateKind::Xor2, &[out_bits[t % out_bits.len()], *pin])
                    };
                    out.dff(d, false)
                })
                .collect();
        }
    }
    for ((name, _), bus) in base.outputs.iter().zip(last_outputs) {
        out.output_bus(name, bus);
    }
    out
}

fn alloc(out: &mut Netlist, wmap: &mut [Option<WireId>], w: WireId) -> WireId {
    if let Some(mapped) = wmap[w.index()] {
        mapped
    } else {
        let fresh = out.wire();
        wmap[w.index()] = Some(fresh);
        fresh
    }
}

/// The synthesized HCOR header correlator stamped `replicas` times —
/// the scaled workload the partitioned gate engine is benchmarked on.
///
/// # Errors
///
/// Component construction or synthesis failures, as diagnostics.
pub fn scaled_hcor(replicas: usize) -> Result<Netlist, CoreError> {
    let comp = hcor::build_component()?;
    let cn = synthesize(&comp, &SynthOptions::default()).map_err(|e| CoreError::CheckFailed {
        diagnostics: vec![e.to_string()],
    })?;
    Ok(replicate_netlist(&cn.netlist, replicas))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_scales_gate_count_linearly_with_registered_stitches() {
        let base = scaled_hcor(1).unwrap();
        let four = scaled_hcor(4).unwrap();
        assert!(four.gates.len() >= 4 * base.gates.len());
        // The stitch overhead is 3 boundaries × |inputs| XOR+DFF pairs.
        let in_bits: usize = base.inputs.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(four.gates.len(), 4 * base.gates.len() + 3 * 2 * in_bits);
        assert_eq!(four.inputs.len(), base.inputs.len());
        assert_eq!(four.outputs.len(), base.outputs.len());
    }

    #[test]
    fn replicas_share_primary_inputs_and_expose_last_outputs() {
        let net = scaled_hcor(3).unwrap();
        // Every declared input wire is undriven (a true primary input).
        let mut driven = vec![false; net.n_wires];
        for g in &net.gates {
            driven[g.output.index()] = true;
        }
        for (_, bus) in &net.inputs {
            for w in bus {
                assert!(!driven[w.index()], "primary inputs stay undriven");
            }
        }
        for (_, bus) in &net.outputs {
            for w in bus {
                assert!(driven[w.index()], "outputs are driven");
            }
        }
    }
}
