#![warn(missing_docs)]

//! The driver designs of the paper, captured with the `ocapi` DSL.
//!
//! * [`dect`] — the DECT base-station radiolink transceiver (§1, §3.3,
//!   Figure 5): a centrally-controlled VLIW machine with a program-counter
//!   controller (Figure 2), an instruction ROM, 22 datapaths and 7
//!   RAM/ROM cells, performing adaptive equalisation of DECT bursts, sync
//!   detection (the HCOR header correlator), descrambling, CRC and the
//!   wire-link/control interfaces.
//! * [`hcor`] — the standalone DECT header correlator processor, the
//!   6 Kgate design of Table 1.
//! * [`modem`] — the upstream cable-modem demonstrator (§7).
//! * [`image`] — the image-compressor demonstrator (§7).
//! * [`wlan`] — the wireless-LAN modem demonstrator (§7).
//!
//! Every design exposes a `build_system()` returning a fresh
//! [`ocapi::System`], so the same description can be handed to any of the
//! four simulation back-ends or to synthesis — the paper's "maintaining an
//! executable system specification at all times".
//!
//! # What replaces the radio (repro substitution)
//!
//! The paper's chip receives real DECT bursts through an RF front-end. We
//! generate synthetic bursts instead: [`dect::burst`] modulates a payload
//! onto ±1 symbols with the DECT S-field preamble/sync word, passes them
//! through a configurable multipath channel with quantisation to the
//! receiver's fixed-point sample format, and hands them to the same
//! equalizer datapaths the paper's chip uses.

pub mod dect;
pub mod hcor;
pub mod image;
pub mod modem;
pub mod scaled;
pub mod wlan;

/// Lines of DSL source for the code-size comparison of Table 1
/// (effective lines of the design modules in this crate).
pub fn dsl_sources() -> Vec<(&'static str, &'static str)> {
    vec![
        ("hcor", include_str!("hcor.rs")),
        ("dect/burst", include_str!("dect/burst.rs")),
        ("dect/pc_controller", include_str!("dect/pc_controller.rs")),
        ("dect/datapaths", include_str!("dect/datapaths.rs")),
        ("dect/transceiver", include_str!("dect/transceiver.rs")),
        ("modem", include_str!("modem.rs")),
        ("image", include_str!("image.rs")),
        ("wlan", include_str!("wlan.rs")),
    ]
}
