//! Synthetic DECT bursts and the radio-channel substitute.
//!
//! The paper's chip sits behind an RF front-end receiving real DECT
//! bursts distorted by multipath (Figure 1). We have no radio, so this
//! module is the substitution: a burst generator producing the S-field
//! (preamble + sync word) and a scrambled payload as ±1 symbols, a
//! configurable multipath FIR channel with additive noise, and
//! quantisation to the receiver's fixed-point sample format. The
//! equalizer datapaths see exactly the kind of signal the paper's chip
//! equalises.

use ocapi::rng::XorShift64;
use ocapi_fixp::{Fix, Overflow, Rounding};

use crate::hcor::SYNC_WORD;

/// Burst generation parameters.
#[derive(Debug, Clone)]
pub struct BurstConfig {
    /// Number of payload bits after the S-field.
    pub payload_len: usize,
    /// Multipath channel impulse response (tap 0 first).
    pub channel: Vec<f64>,
    /// Peak amplitude of the additive uniform noise.
    pub noise: f64,
    /// RNG seed (payload and noise).
    pub seed: u64,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig {
            payload_len: 64,
            channel: vec![1.0, 0.4],
            noise: 0.02,
            seed: 1,
        }
    }
}

/// A generated burst: transmitted bits and received samples.
#[derive(Debug, Clone)]
pub struct Burst {
    /// All transmitted bits: 16 preamble + 16 sync + payload.
    pub bits: Vec<bool>,
    /// Received samples after channel, noise and quantisation.
    pub samples: Vec<Fix>,
    /// Index of the first payload bit within `bits`.
    pub payload_start: usize,
}

/// The 32-bit S-field: alternating preamble then the sync word, in
/// transmission order.
pub fn s_field() -> Vec<bool> {
    let mut bits = Vec::with_capacity(32);
    for i in 0..16 {
        bits.push(i % 2 == 0); // 1010… preamble
    }
    for i in (0..16).rev() {
        bits.push((SYNC_WORD >> i) & 1 == 1);
    }
    bits
}

/// Generates a burst through the synthetic channel.
pub fn generate(cfg: &BurstConfig) -> Burst {
    let mut rng = XorShift64::new(cfg.seed);
    let mut bits = s_field();
    let payload_start = bits.len();
    for _ in 0..cfg.payload_len {
        bits.push(rng.next_bool());
    }

    // BPSK-style symbols through the multipath FIR.
    let symbols: Vec<f64> = bits.iter().map(|b| if *b { 1.0 } else { -1.0 }).collect();
    let fmt = super::sample_fmt();
    let mut samples = Vec::with_capacity(symbols.len());
    for n in 0..symbols.len() {
        let mut acc = 0.0;
        for (k, h) in cfg.channel.iter().enumerate() {
            if n >= k {
                acc += h * symbols[n - k];
            }
        }
        acc += cfg.noise * (rng.next_f64() * 2.0 - 1.0);
        samples.push(Fix::from_f64(
            acc,
            fmt,
            Rounding::Nearest,
            Overflow::Saturate,
        ));
    }
    Burst {
        bits,
        samples,
        payload_start,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_field_layout() {
        let s = s_field();
        assert_eq!(s.len(), 32);
        assert!(s[0] && !s[1] && s[2]);
        // The sync word occupies bits 16..32 MSB-first.
        let word: u16 = s[16..].iter().fold(0, |acc, b| (acc << 1) | u16::from(*b));
        assert_eq!(word, SYNC_WORD);
    }

    #[test]
    fn burst_is_deterministic_per_seed() {
        let a = generate(&BurstConfig::default());
        let b = generate(&BurstConfig::default());
        assert_eq!(a.bits, b.bits);
        assert_eq!(a.samples, b.samples);
        let c = generate(&BurstConfig {
            seed: 2,
            ..BurstConfig::default()
        });
        assert_ne!(a.bits, c.bits);
    }

    #[test]
    fn clean_channel_reproduces_symbols() {
        let cfg = BurstConfig {
            channel: vec![1.0],
            noise: 0.0,
            ..BurstConfig::default()
        };
        let b = generate(&cfg);
        for (bit, s) in b.bits.iter().zip(&b.samples) {
            let expect = if *bit { 1.0 } else { -1.0 };
            assert!((s.to_f64() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn multipath_spreads_energy() {
        let cfg = BurstConfig {
            channel: vec![1.0, 0.5],
            noise: 0.0,
            ..BurstConfig::default()
        };
        let b = generate(&cfg);
        // Sample 1 contains contribution from symbols 0 and 1.
        let s0 = if b.bits[0] { 1.0 } else { -1.0 };
        let s1 = if b.bits[1] { 1.0 } else { -1.0 };
        assert!((b.samples[1].to_f64() - (s1 + 0.5 * s0)).abs() < 0.01);
    }
}
