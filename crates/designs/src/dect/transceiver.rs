//! The complete DECT transceiver system (Figure 5): PC controller,
//! instruction ROM, central decoder, 22 datapaths, 7 memory cells.
//!
//! The VLIW program is a 4-instruction symbol loop:
//!
//! | addr | fields | action |
//! |---|---|---|
//! | 0 | — | `nop` (issued during hold, Figure 2) |
//! | 1 | `in_we, ctl_count, dco_en` | capture the incoming sample |
//! | 2 | `in_rd, eq_op=shift` | replay the lagged sample, shift the delay line |
//! | 3 | `sum_en, slice_en, train, train_step` | equalize and slice |
//! | 4 | `eq_op=update, out_we, corr_en, descr_en, crc_en, dr_en` | LMS update, post-process the decision |
//!
//! A `hold_request` freezes the machine between any two instructions and
//! resumes exactly where it stopped — the paper's global-exception
//! mechanism that motivated the central-control architecture (§3.3).

use ocapi::{Component, InstanceId, SystemBuilder};
use ocapi::{CoreError, Ram, Rom, SigType, Simulator, System, Value};
use ocapi_fixp::{Fix, Overflow, Rounding};

use super::datapaths;
use super::pc_controller;
use super::{burst::Burst, sample_fmt, sym_fmt, CENTER_TAP, DELAY, TAPS, TRAIN_LEN};

/// Instruction word width.
pub const INSTR_BITS: u32 = 24;

/// Cycles per DECT symbol (the length of the program loop).
pub const CYCLES_PER_SYMBOL: usize = 4;

/// Instruction field encoding.
#[derive(Debug, Clone, Copy, Default)]
pub struct Instr {
    /// Equalizer opcode: 0 nop, 1 shift, 2 update, 3 clear.
    pub eq_op: u64,
    /// Enable the sum tree output.
    pub sum_en: bool,
    /// Latch decision and error in the slicer.
    pub slice_en: bool,
    /// Use the training reference while training symbols remain.
    pub train: bool,
    /// Capture the incoming sample.
    pub in_we: bool,
    /// Replay the lagged sample to the equalizer.
    pub in_rd: bool,
    /// Store the decision bit in the output RAM.
    pub out_we: bool,
    /// Shift the sync correlator.
    pub corr_en: bool,
    /// Advance the descrambler.
    pub descr_en: bool,
    /// Advance the CRC.
    pub crc_en: bool,
    /// Clear the CRC register.
    pub crc_clear: bool,
    /// Accept a bit into the wire-link byte packer.
    pub dr_en: bool,
    /// Advance the symbol counter.
    pub ctl_count: bool,
    /// Advance the training pointer.
    pub train_step: bool,
    /// Adapt the DC-offset tracker.
    pub dco_en: bool,
    /// Adapt the AGC gain.
    pub agc_en: bool,
}

impl Instr {
    /// Encodes the fields into the instruction word.
    pub fn word(&self) -> u64 {
        (self.eq_op & 3)
            | (u64::from(self.sum_en) << 2)
            | (u64::from(self.slice_en) << 3)
            | (u64::from(self.train) << 4)
            | (u64::from(self.in_we) << 5)
            | (u64::from(self.in_rd) << 6)
            | (u64::from(self.out_we) << 7)
            | (u64::from(self.corr_en) << 8)
            | (u64::from(self.descr_en) << 9)
            | (u64::from(self.crc_en) << 10)
            | (u64::from(self.dr_en) << 11)
            | (u64::from(self.ctl_count) << 12)
            | (u64::from(self.train_step) << 13)
            | (u64::from(self.dco_en) << 14)
            | (u64::from(self.agc_en) << 15)
            | (u64::from(self.crc_clear) << 16)
    }
}

/// The central instruction decoder: one always-on SFG slicing the
/// instruction word onto the datapath instruction busses.
///
/// # Errors
///
/// Propagates capture errors.
pub fn decoder(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let instr = c.input("instr", SigType::Bits(INSTR_BITS))?;
    let s = c.sfg("decode")?;
    let iv = c.read(instr);
    let bools = [
        ("sum_en", 2u32),
        ("slice_en", 3),
        ("train", 4),
        ("in_we", 5),
        ("in_rd", 6),
        ("out_we", 7),
        ("corr_en", 8),
        ("descr_en", 9),
        ("crc_en", 10),
        ("dr_en", 11),
        ("ctl_count", 12),
        ("train_step", 13),
        ("dco_en", 14),
        ("agc_en", 15),
        ("crc_clear", 16),
    ];
    let eq_op = c.output("eq_op", SigType::Bits(2))?;
    s.drive(eq_op, &iv.slice(0, 2))?;
    for (name, bit) in bools {
        let port = c.output(name, SigType::Bool)?;
        s.drive(port, &iv.bit(bit))?;
    }
    c.finish()
}

/// Transceiver build configuration.
#[derive(Debug, Clone, Copy)]
pub struct TransceiverConfig {
    /// Run the LMS in training mode over the S-field.
    pub train: bool,
    /// Adapt the AGC gain (off by default: the synthetic channel has
    /// unit gain).
    pub agc: bool,
    /// Run the LMS coefficient update at all. Off = a fixed centre-tap
    /// receiver, the "no equalizer" baseline.
    pub adapt: bool,
}

impl Default for TransceiverConfig {
    fn default() -> Self {
        TransceiverConfig {
            train: true,
            agc: false,
            adapt: true,
        }
    }
}

/// The instruction ROM contents: nop at address 0, then the symbol loop.
pub fn program(cfg: &TransceiverConfig) -> Vec<Instr> {
    vec![
        Instr::default(), // 0: nop
        Instr {
            in_we: true,
            ctl_count: true,
            dco_en: true,
            agc_en: cfg.agc,
            ..Instr::default()
        },
        Instr {
            in_rd: true,
            eq_op: 1,
            ..Instr::default()
        },
        Instr {
            sum_en: true,
            slice_en: true,
            train: cfg.train,
            train_step: true,
            ..Instr::default()
        },
        Instr {
            eq_op: if cfg.adapt { 2 } else { 0 },
            out_we: true,
            corr_en: true,
            descr_en: true,
            crc_en: true,
            dr_en: true,
            ..Instr::default()
        },
    ]
}

/// The training ROM: the transmitted S-field as ±1 symbols, delayed by
/// the pipeline [`DELAY`] so training references line up with the sliced
/// stream.
pub fn training_rom_contents() -> Vec<Value> {
    let s = super::burst::s_field();
    let fmt = sym_fmt();
    let one = Fix::from_f64(1.0, fmt, Rounding::Nearest, Overflow::Saturate);
    let neg = Fix::from_f64(-1.0, fmt, Rounding::Nearest, Overflow::Saturate);
    let mut rom: Vec<Value> = vec![Value::Fixed(one); 256];
    for (i, bit) in s.iter().enumerate().take(TRAIN_LEN) {
        rom[i + DELAY] = Value::Fixed(if *bit { one } else { neg });
    }
    rom
}

fn connect_many(
    sb: &mut SystemBuilder,
    pairs: &[(InstanceId, &str, InstanceId, &str)],
) -> Result<(), CoreError> {
    for (a, ap, b, bp) in pairs {
        sb.connect(*a, ap, *b, bp)?;
    }
    Ok(())
}

/// Builds the complete transceiver system.
///
/// Primary inputs: `sample: SAMPLE`, `hold_request: Bool`.
/// Primary outputs: `bit`, `err`, `detect`, `corr`, `status`, `dr_data`,
/// `dr_valid`, `crc`, `descr_bit`, `iaddr`, `holding`.
///
/// # Errors
///
/// Propagates capture errors.
pub fn build_system(cfg: &TransceiverConfig) -> Result<System, CoreError> {
    let mut sb = System::build("dect");

    // Central control.
    let pc = sb.add_component("pc_ctrl", pc_controller::build("pc_ctrl")?)?;
    let dec = sb.add_component("decoder", decoder("decoder")?)?;

    // Memories (7): instruction ROM, training ROM, two sample banks,
    // decision RAM, DR FIFO, CTL register file.
    let irom_words: Vec<Value> = {
        let mut w: Vec<Value> = program(cfg)
            .iter()
            .map(|i| Value::bits(INSTR_BITS, i.word()))
            .collect();
        w.resize(256, Value::bits(INSTR_BITS, 0));
        w
    };
    let irom = sb.add_block(Box::new(Rom::new(
        "irom",
        SigType::Bits(INSTR_BITS),
        irom_words,
    )))?;
    let trom = sb.add_block(Box::new(Rom::new(
        "train_rom",
        SigType::Fixed(sym_fmt()),
        training_rom_contents(),
    )))?;
    let ram_a = sb.add_block(Box::new(Ram::new(
        "sample_a",
        8,
        SigType::Fixed(sample_fmt()),
    )))?;
    let ram_b = sb.add_block(Box::new(Ram::new(
        "sample_b",
        8,
        SigType::Fixed(sample_fmt()),
    )))?;
    let out_ram = sb.add_block(Box::new(Ram::new("out_ram", 8, SigType::Bits(1))))?;
    let dr_fifo = sb.add_block(Box::new(Ram::new("dr_fifo", 8, SigType::Bits(8))))?;
    let ctl_regs = sb.add_block(Box::new(Ram::new("ctl_regs", 4, SigType::Bits(8))))?;

    // Datapaths (22).
    let front = sb.add_component("dp_in", datapaths::input_frontend("dp_in")?)?;
    let agc = sb.add_component("dp_agc", datapaths::agc("dp_agc")?)?;
    let dco = sb.add_component("dp_dco", datapaths::dc_offset("dp_dco")?)?;
    let macs: Vec<InstanceId> = (0..TAPS)
        .map(|i| {
            let init = if i == CENTER_TAP { 1.0 } else { 0.0 };
            sb.add_component(
                &format!("dp_mac{i}"),
                datapaths::mac(&format!("dp_mac{i}"), init)?,
            )
        })
        .collect::<Result<_, _>>()?;
    let sum = sb.add_component("dp_sum", datapaths::sum_tree("dp_sum")?)?;
    let slicer = sb.add_component(
        "dp_slice",
        datapaths::slicer("dp_slice", (TRAIN_LEN + DELAY) as u64)?,
    )?;
    let errs = sb.add_component("dp_err", datapaths::err_scale("dp_err")?)?;
    let corr = sb.add_component("dp_corr", crate::hcor::build_component()?)?;
    let descr = sb.add_component("dp_descr", datapaths::descrambler("dp_descr")?)?;
    let crc = sb.add_component("dp_crc", datapaths::crc16("dp_crc")?)?;
    let dr = sb.add_component("dp_dr", datapaths::dr_interface("dp_dr")?)?;
    let ctl = sb.add_component("dp_ctl", datapaths::ctl_interface("dp_ctl")?)?;

    // Primary inputs.
    sb.input("sample", SigType::Fixed(sample_fmt()))?;
    sb.input("hold_request", SigType::Bool)?;
    sb.connect_input("sample", front, "sample")?;
    sb.connect_input("hold_request", pc, "hold_request")?;

    // Program control: fetch, decode, distribute.
    sb.tie(pc, "loop_start", Value::bits(8, 1))?;
    sb.tie(pc, "loop_end", Value::bits(8, CYCLES_PER_SYMBOL as u64))?;
    sb.connect(pc, "iaddr", irom, "addr")?;
    sb.connect(irom, "data", dec, "instr")?;

    // Input front-end and conditioning chain.
    connect_many(
        &mut sb,
        &[
            (dec, "in_we", front, "we"),
            (dec, "in_rd", front, "rd"),
            (front, "addr_a", ram_a, "addr"),
            (front, "we_a", ram_a, "we"),
            (front, "wdata", ram_a, "wdata"),
            (front, "addr_b", ram_b, "addr"),
            (front, "we_b", ram_b, "we"),
            (front, "wdata", ram_b, "wdata"),
            (ram_a, "rdata", front, "rdata_a"),
            (ram_b, "rdata", front, "rdata_b"),
            (front, "x_head", agc, "x"),
            (dec, "agc_en", agc, "en"),
            (agc, "y", dco, "x"),
            (dec, "dco_en", dco, "en"),
        ],
    )?;

    // Equalizer delay line and instruction bus.
    sb.connect(dco, "y", macs[0], "x_in")?;
    for i in 1..TAPS {
        sb.connect(macs[i - 1], "x_out", macs[i], "x_in")?;
    }
    for (i, m) in macs.iter().enumerate() {
        sb.connect(dec, "eq_op", *m, "op")?;
        sb.connect(errs, "e_scaled", *m, "e_in")?;
        sb.connect(*m, "y", sum, &format!("y{i}"))?;
    }
    sb.connect(dec, "sum_en", sum, "en")?;

    // Slicer, error path, training ROM.
    connect_many(
        &mut sb,
        &[
            (sum, "acc", slicer, "y"),
            (dec, "slice_en", slicer, "en"),
            (dec, "train", slicer, "train"),
            (dec, "train_step", slicer, "step"),
            (trom, "data", slicer, "train_sym"),
            (slicer, "train_addr", trom, "addr"),
            (slicer, "err", errs, "err"),
        ],
    )?;

    // Sync correlator.
    sb.connect(slicer, "bit", corr, "bit_in")?;
    sb.connect(dec, "corr_en", corr, "enable")?;
    sb.tie(corr, "threshold", Value::bits(5, 15))?;

    // Bit post-processing: descrambler, CRC, wire-link packer.
    connect_many(
        &mut sb,
        &[
            (slicer, "bit", descr, "bit"),
            (dec, "descr_en", descr, "en"),
            (descr, "out", crc, "bit"),
            (dec, "crc_en", crc, "en"),
            (dec, "crc_clear", crc, "clear"),
            (descr, "out", dr, "bit"),
            (dec, "dr_en", dr, "en"),
            (dr, "data", dr_fifo, "wdata"),
            (dr, "fifo_addr", dr_fifo, "addr"),
            (dr, "fifo_we", dr_fifo, "we"),
        ],
    )?;

    // Decision RAM and control interface.
    connect_many(
        &mut sb,
        &[
            (slicer, "bit_bits", out_ram, "wdata"),
            (ctl, "sym_addr", out_ram, "addr"),
            (dec, "out_we", out_ram, "we"),
            (dec, "ctl_count", ctl, "count"),
            (corr, "detect", ctl, "detect"),
            (pc, "holding", ctl, "holding"),
            (ctl, "regs_addr", ctl_regs, "addr"),
            (ctl, "regs_we", ctl_regs, "we"),
            (ctl, "regs_wdata", ctl_regs, "wdata"),
        ],
    )?;

    // Primary outputs.
    sb.output("bit", slicer, "bit")?;
    sb.output("err", slicer, "err")?;
    sb.output("detect", corr, "detect")?;
    sb.output("corr", corr, "corr")?;
    sb.output("status", ctl, "status")?;
    sb.output("dr_data", dr, "data")?;
    sb.output("dr_valid", dr, "valid")?;
    sb.output("crc", crc, "crc")?;
    sb.output("descr_bit", descr, "out")?;
    sb.output("iaddr", pc, "iaddr")?;
    sb.output("holding", pc, "holding")?;
    sb.finish()
}

/// One decision record per processed symbol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymbolRecord {
    /// The sliced decision.
    pub bit: bool,
    /// The (quantised) slicer error.
    pub err: f64,
    /// Whether sync had been detected by this symbol.
    pub detect: bool,
}

/// Drives a burst through the transceiver: each symbol takes
/// [`CYCLES_PER_SYMBOL`] cycles. `hold` optionally inserts a hold_request
/// pulse of `(start_cycle, length)` cycles, exercising the Figure 2
/// mechanism mid-burst.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_burst(
    sim: &mut dyn Simulator,
    burst: &Burst,
    hold: Option<(u64, u64)>,
) -> Result<Vec<SymbolRecord>, CoreError> {
    sim.set_input("hold_request", Value::Bool(false))?;
    let mut records = Vec::with_capacity(burst.samples.len());
    let mut cycle: u64 = 0;
    for s in &burst.samples {
        sim.set_input("sample", Value::Fixed(*s))?;
        let mut done = 0;
        while done < CYCLES_PER_SYMBOL {
            let holding = match hold {
                Some((start, len)) => cycle >= start && cycle < start + len,
                None => false,
            };
            sim.set_input("hold_request", Value::Bool(holding))?;
            sim.step()?;
            cycle += 1;
            // Held cycles issue nops and do not advance the symbol.
            if sim.output("holding")? == Value::Bool(false) {
                done += 1;
            }
        }
        records.push(SymbolRecord {
            bit: sim.output("bit")?.as_bool().expect("bool output"),
            err: sim
                .output("err")?
                .as_fixed()
                .expect("fixed output")
                .to_f64(),
            detect: sim.output("detect")?.as_bool().expect("bool output"),
        });
    }
    Ok(records)
}
