//! The program-counter controller of the DECT transceiver — the paper's
//! Figure 2, reproduced port for port.
//!
//! A Mealy FSM with states `execute` and `hold`. In `execute`,
//! instructions are fetched from the lookup table (the instruction ROM)
//! addressed by the program counter. When the external `hold_request` pin
//! is asserted, the current program counter is saved in `hold_pc`, a
//! `nop` address is issued to freeze the datapath state, and the machine
//! idles until the request is removed, at which point the stored counter
//! resumes the interrupted instruction.
//!
//! On top of Figure 2 the controller implements the program loop the
//! burst schedule needs: when `pc` reaches `loop_end` it wraps to
//! `loop_start` (a "jump in the instruction ROM" — exactly the global
//! exception mechanism §3.3 credits the central-control architecture
//! with).

use ocapi::{Component, CoreError, SigType};

/// Address width of the instruction ROM.
pub const ADDR_BITS: u32 = 8;

/// The ROM address that holds the all-nop instruction word.
pub const NOP_ADDR: u64 = 0;

/// Builds the PC controller.
///
/// Ports: `hold_request: Bool`, `loop_start: Bits(8)`,
/// `loop_end: Bits(8)` → `iaddr: Bits(8)` (instruction ROM address),
/// `holding: Bool` (status to the control interface).
///
/// # Errors
///
/// Propagates capture errors.
pub fn build(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let hold_request = c.input("hold_request", SigType::Bool)?;
    let loop_start = c.input("loop_start", SigType::Bits(ADDR_BITS))?;
    let loop_end = c.input("loop_end", SigType::Bits(ADDR_BITS))?;
    let iaddr = c.output("iaddr", SigType::Bits(ADDR_BITS))?;
    let holding = c.output("holding", SigType::Bool)?;

    // `pc` starts at 1: address 0 is the nop word.
    let pc = c.reg_init(
        "pc",
        SigType::Bits(ADDR_BITS),
        ocapi::Value::bits(ADDR_BITS, 1),
    )?;
    let hold_pc = c.reg("hold_pc", SigType::Bits(ADDR_BITS))?;

    let q = c.q(pc);
    let at_end = q.eq(&c.read(loop_end));
    let succ = at_end.mux(
        &c.read(loop_start),
        &(q.clone() + c.const_bits(ADDR_BITS, 1)),
    );

    // SFG `lookup`: issue pc, advance (Figure 2, state execute).
    let lookup = c.sfg("lookup")?;
    lookup.uses(loop_start).uses(loop_end);
    lookup.drive(iaddr, &q)?;
    lookup.drive(holding, &c.const_bool(false))?;
    lookup.next(pc, &succ)?;

    // SFG `hold_on`: store the interrupted pc, issue a nop.
    let hold_on = c.sfg("hold_on")?;
    hold_on.drive(iaddr, &c.const_bits(ADDR_BITS, NOP_ADDR))?;
    hold_on.drive(holding, &c.const_bool(true))?;
    hold_on.next(hold_pc, &c.q(pc))?;

    // SFG `wait`: keep issuing nops while held.
    let wait = c.sfg("wait")?;
    wait.drive(iaddr, &c.const_bits(ADDR_BITS, NOP_ADDR))?;
    wait.drive(holding, &c.const_bool(true))?;

    // SFG `hold_lookup`: resume from the stored counter.
    let hold_lookup = c.sfg("hold_lookup")?;
    let hq = c.q(hold_pc);
    let at_end_h = hq.eq(&c.read(loop_end));
    let succ_h = at_end_h.mux(
        &c.read(loop_start),
        &(hq.clone() + c.const_bits(ADDR_BITS, 1)),
    );
    hold_lookup.drive(iaddr, &hq)?;
    hold_lookup.drive(holding, &c.const_bool(false))?;
    hold_lookup.next(pc, &succ_h)?;

    let hr = c.read(hold_request);
    let f = c.fsm()?;
    let execute = f.initial("execute")?;
    let hold = f.state("hold")?;
    f.from(execute).when(&hr).run(hold_on.id()).to(hold)?;
    f.from(execute).always().run(lookup.id()).to(execute)?;
    f.from(hold).when(&hr).run(wait.id()).to(hold)?;
    f.from(hold).always().run(hold_lookup.id()).to(execute)?;
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocapi::{InterpSim, Simulator, System, Value};

    fn system() -> System {
        let mut sb = System::build("pcsys");
        let u = sb.add_component("pc", build("pc_ctrl").unwrap()).unwrap();
        sb.input("hold_request", SigType::Bool).unwrap();
        sb.connect_input("hold_request", u, "hold_request").unwrap();
        sb.tie(u, "loop_start", Value::bits(8, 1)).unwrap();
        sb.tie(u, "loop_end", Value::bits(8, 5)).unwrap();
        sb.output("iaddr", u, "iaddr").unwrap();
        sb.output("holding", u, "holding").unwrap();
        sb.finish().unwrap()
    }

    #[test]
    fn fig2_hold_and_resume() {
        let mut sim = InterpSim::new(system()).unwrap();
        sim.set_input("hold_request", Value::Bool(false)).unwrap();
        // Free running: 1, 2, 3.
        let mut seen = Vec::new();
        for _ in 0..3 {
            sim.step().unwrap();
            seen.push(sim.output("iaddr").unwrap().as_bits().unwrap());
        }
        assert_eq!(seen, vec![1, 2, 3]);
        // Assert hold: the current instruction (4) is delayed; nops issue.
        sim.set_input("hold_request", Value::Bool(true)).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.output("iaddr").unwrap(), Value::bits(8, NOP_ADDR));
        assert_eq!(sim.output("holding").unwrap(), Value::Bool(true));
        assert_eq!(sim.state_name("pc").unwrap(), "hold");
        sim.step().unwrap();
        assert_eq!(sim.output("iaddr").unwrap(), Value::bits(8, NOP_ADDR));
        // Release: the interrupted instruction issues.
        sim.set_input("hold_request", Value::Bool(false)).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.output("iaddr").unwrap(), Value::bits(8, 4));
        assert_eq!(sim.output("holding").unwrap(), Value::Bool(false));
        assert_eq!(sim.state_name("pc").unwrap(), "execute");
        // And the sequence continues.
        sim.step().unwrap();
        assert_eq!(sim.output("iaddr").unwrap(), Value::bits(8, 5));
    }

    #[test]
    fn program_loops_at_end() {
        let mut sim = InterpSim::new(system()).unwrap();
        sim.set_input("hold_request", Value::Bool(false)).unwrap();
        let mut seen = Vec::new();
        for _ in 0..8 {
            sim.step().unwrap();
            seen.push(sim.output("iaddr").unwrap().as_bits().unwrap());
        }
        assert_eq!(seen, vec![1, 2, 3, 4, 5, 1, 2, 3]);
    }
}
