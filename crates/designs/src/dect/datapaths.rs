//! The datapath components of the DECT transceiver.
//!
//! Each datapath is a cycle-true component controlled by instruction
//! fields from the central decoder. Instruction decoding is combinational
//! (select expressions), because per the three-phase scheduler an FSM
//! guard on an internally-driven signal samples the *previous* cycle's
//! value — the paper's own note that "the conditions are stored in
//! registers inside the signal flow graphs". Components whose control
//! comes from external pins (the PC controller) or their own registers
//! (HCOR) use FSMs instead.

use ocapi::{Component, CoreError, Overflow, Rounding, SigType, Value};
use ocapi_fixp::Fix;

use super::{acc_fmt, coef_fmt, err_fmt, sample_fmt, sym_fmt, MU, TAPS};

/// One equalizer tap: MAC plus local LMS coefficient update.
///
/// Ports: `op: Bits(2)` (0 nop, 1 shift, 2 update, 3 clear),
/// `x_in: SAMPLE`, `e_in: ERR` → `y: ACC` (c·x), `x_out: SAMPLE`
/// (delay-line output to the next tap).
///
/// # Errors
///
/// Propagates capture errors.
pub fn mac(name: &str, init_coef: f64) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let op = c.input("op", SigType::Bits(2))?;
    let x_in = c.input("x_in", SigType::Fixed(sample_fmt()))?;
    let e_in = c.input("e_in", SigType::Fixed(err_fmt()))?;
    let y_out = c.output("y", SigType::Fixed(acc_fmt()))?;
    let x_out = c.output("x_out", SigType::Fixed(sample_fmt()))?;

    let init = Fix::from_f64(init_coef, coef_fmt(), Rounding::Nearest, Overflow::Saturate);
    let x = c.reg("x", SigType::Fixed(sample_fmt()))?;
    let coef = c.reg_init("c", SigType::Fixed(coef_fmt()), Value::Fixed(init))?;

    let s = c.sfg("dp")?;
    s.uses(op).uses(x_in).uses(e_in);
    let opv = c.read(op);
    let is_shift = opv.eq(&c.const_bits(2, 1));
    let is_update = opv.eq(&c.const_bits(2, 2));
    let is_clear = opv.eq(&c.const_bits(2, 3));

    let qx = c.q(x);
    let qc = c.q(coef);

    // y = c·x quantised to the accumulator format (register-only cone,
    // so the sum tree can consume it without ordering constraints).
    let y = (qc.clone() * qx.clone()).to_fixed(acc_fmt(), Rounding::Truncate, Overflow::Saturate);
    s.drive(y_out, &y)?;
    s.drive(x_out, &qx)?;

    // Delay-line shift / clear.
    let x_next = is_shift.mux(
        &c.read(x_in),
        &is_clear.mux(&c.const_fixed(0.0, sample_fmt()), &qx),
    );
    s.next(x, &x_next)?;

    // LMS: c += e·x, quantised back to the coefficient format.
    let upd = (qc.clone() + c.read(e_in) * qx.clone()).to_fixed(
        coef_fmt(),
        Rounding::Nearest,
        Overflow::Saturate,
    );
    let c_next = is_update.mux(&upd, &is_clear.mux(&c.constant(Value::Fixed(init)), &qc));
    s.next(coef, &c_next)?;
    c.finish()
}

/// The adder tree summing all tap outputs.
///
/// Ports: `y0..y10: ACC`, `en: Bool` → `acc: ACC`.
///
/// # Errors
///
/// Propagates capture errors.
pub fn sum_tree(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let ys: Vec<_> = (0..TAPS)
        .map(|i| c.input(&format!("y{i}"), SigType::Fixed(acc_fmt())))
        .collect::<Result<_, _>>()?;
    let en = c.input("en", SigType::Bool)?;
    let out = c.output("acc", SigType::Fixed(acc_fmt()))?;

    let s = c.sfg("sum")?;
    let mut terms: Vec<_> = ys.iter().map(|y| c.read(*y)).collect();
    // Balanced tree, quantising once at the root.
    while terms.len() > 1 {
        let mut next = Vec::with_capacity(terms.len().div_ceil(2));
        let mut it = terms.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(a + b),
                None => next.push(a),
            }
        }
        terms = next;
    }
    let total = terms.pop().expect("at least one tap").to_fixed(
        acc_fmt(),
        Rounding::Truncate,
        Overflow::Saturate,
    );
    let gated = c.read(en).mux(&total, &c.const_fixed(0.0, acc_fmt()));
    s.drive(out, &gated)?;
    c.finish()
}

/// The decision slicer and error former.
///
/// Ports: `y: ACC`, `train_sym: SYM`, `train: Bool`, `en: Bool` →
/// `bit: Bool` (registered decision), `bit_bits: Bits(1)`, `err: ERR`
/// (registered error), `train_addr: Bits(8)` (training ROM pointer).
///
/// While `train` is asserted and training symbols remain, the error is
/// formed against the known S-field symbol; afterwards it is
/// decision-directed.
///
/// # Errors
///
/// Propagates capture errors.
pub fn slicer(name: &str, train_window: u64) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let y = c.input("y", SigType::Fixed(acc_fmt()))?;
    let train_sym = c.input("train_sym", SigType::Fixed(sym_fmt()))?;
    let train = c.input("train", SigType::Bool)?;
    let en = c.input("en", SigType::Bool)?;
    let step = c.input("step", SigType::Bool)?;
    let bit_out = c.output("bit", SigType::Bool)?;
    let bit_bits = c.output("bit_bits", SigType::Bits(1))?;
    let err_out = c.output("err", SigType::Fixed(err_fmt()))?;
    let taddr = c.output("train_addr", SigType::Bits(8))?;

    let bit_r = c.reg("bit_r", SigType::Bool)?;
    let err_r = c.reg("err_r", SigType::Fixed(err_fmt()))?;
    let tptr = c.reg("tptr", SigType::Bits(8))?;

    let s = c.sfg("slice")?;
    let yv = c.read(y);
    let d = yv.ge(&c.const_fixed(0.0, acc_fmt()));
    let plus = c.const_fixed(1.0, sym_fmt());
    let minus = c.const_fixed(-1.0, sym_fmt());
    let dsym = d.mux(&plus, &minus);

    let training = c.read(train) & c.q(tptr).lt(&c.const_bits(8, train_window));
    let reference = training.mux(&c.read(train_sym), &dsym);
    let err = (reference.to_fixed(err_fmt(), Rounding::Nearest, Overflow::Saturate)
        - yv.to_fixed(err_fmt(), Rounding::Nearest, Overflow::Saturate))
    .to_fixed(err_fmt(), Rounding::Nearest, Overflow::Saturate);

    let env = c.read(en);
    s.next(bit_r, &env.mux(&d, &c.q(bit_r)))?;
    s.next(err_r, &env.mux(&err, &c.q(err_r)))?;
    let advance = c.read(step) & c.q(tptr).lt(&c.const_bits(8, train_window));
    s.next(
        tptr,
        &advance.mux(&(c.q(tptr) + c.const_bits(8, 1)), &c.q(tptr)),
    )?;
    s.drive(bit_out, &c.q(bit_r))?;
    s.drive(bit_bits, &c.q(bit_r).to_bits(1))?;
    s.drive(err_out, &c.q(err_r))?;
    s.drive(taddr, &c.q(tptr))?;
    c.finish()
}

/// LMS error scaling: `e_scaled = µ · err`.
///
/// # Errors
///
/// Propagates capture errors.
pub fn err_scale(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let e = c.input("err", SigType::Fixed(err_fmt()))?;
    let out = c.output("e_scaled", SigType::Fixed(err_fmt()))?;
    let s = c.sfg("scale")?;
    let mu_fmt = ocapi_fixp::Format::new(8, 1).expect("static format");
    let mu = c.const_fixed(MU, mu_fmt);
    let scaled = (c.read(e) * mu).to_fixed(err_fmt(), Rounding::Nearest, Overflow::Saturate);
    s.drive(out, &scaled)?;
    c.finish()
}

/// The input front-end: interleaved-bank sample capture and delayed
/// replay.
///
/// Incoming samples alternate between the two sample RAMs (even indices
/// to bank A, odd to bank B) — the classic bank interleaving that doubles
/// memory bandwidth. The equalizer reads the stream back with a fixed lag
/// of [`super::LAG`] symbols, which keeps the sample-to-decision latency
/// far inside the 29-symbol DECT budget (§1).
///
/// Ports: `sample: SAMPLE`, `we: Bool`, `rd: Bool`, `rdata_a: SAMPLE`,
/// `rdata_b: SAMPLE` → per-bank `addr/we`, shared `wdata`, and
/// `x_head: SAMPLE` (the sample read this cycle, to the first equalizer
/// stage).
///
/// # Errors
///
/// Propagates capture errors.
pub fn input_frontend(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let sample = c.input("sample", SigType::Fixed(sample_fmt()))?;
    let we = c.input("we", SigType::Bool)?;
    let rd = c.input("rd", SigType::Bool)?;
    let rdata_a = c.input("rdata_a", SigType::Fixed(sample_fmt()))?;
    let rdata_b = c.input("rdata_b", SigType::Fixed(sample_fmt()))?;
    let addr_a = c.output("addr_a", SigType::Bits(8))?;
    let we_a = c.output("we_a", SigType::Bool)?;
    let addr_b = c.output("addr_b", SigType::Bits(8))?;
    let we_b = c.output("we_b", SigType::Bool)?;
    let wdata = c.output("wdata", SigType::Fixed(sample_fmt()))?;
    let x_head = c.output("x_head", SigType::Fixed(sample_fmt()))?;

    // Count of captured samples (the next write index).
    let wr_ptr = c.reg("wr_ptr", SigType::Bits(9))?;

    let s = c.sfg("io")?;
    let wev = c.read(we);
    let rdv = c.read(rd);
    let _ = &rdv; // the read index is derived from the write counter
    let qw = c.q(wr_ptr);

    // The read happens in the instruction *after* the capture, so at read
    // time qw is already k+1; the replayed index k − LAG is qw − LAG − 1.
    let rd_idx = qw.clone() + c.const_bits(9, 512 - super::LAG as u64 - 1);
    let w_bank = qw.bit(0); // even index -> bank A
    let r_bank = rd_idx.bit(0);
    let w_addr = qw.slice(1, 8);
    let r_addr = rd_idx.slice(1, 8);

    let write_a = wev.clone() & !w_bank.clone();
    let write_b = wev.clone() & w_bank.clone();
    s.drive(addr_a, &write_a.mux(&w_addr, &r_addr))?;
    s.drive(addr_b, &write_b.mux(&w_addr, &r_addr))?;
    s.drive(we_a, &write_a)?;
    s.drive(we_b, &write_b)?;
    s.drive(wdata, &c.read(sample))?;
    s.drive(x_head, &r_bank.mux(&c.read(rdata_b), &c.read(rdata_a)))?;
    s.next(wr_ptr, &wev.mux(&(qw + c.const_bits(9, 1)), &c.q(wr_ptr)))?;
    c.finish()
}

/// Automatic gain control: `y = g·x`, with optional gain adaptation
/// towards unit amplitude.
///
/// # Errors
///
/// Propagates capture errors.
pub fn agc(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let x = c.input("x", SigType::Fixed(sample_fmt()))?;
    let en = c.input("en", SigType::Bool)?;
    let y = c.output("y", SigType::Fixed(sample_fmt()))?;
    let g = c.reg_init(
        "g",
        SigType::Fixed(coef_fmt()),
        Value::Fixed(Fix::from_f64(
            1.0,
            coef_fmt(),
            Rounding::Nearest,
            Overflow::Saturate,
        )),
    )?;
    let s = c.sfg("agc")?;
    let xv = c.read(x);
    let qg = c.q(g);
    let scaled =
        (qg.clone() * xv.clone()).to_fixed(sample_fmt(), Rounding::Nearest, Overflow::Saturate);
    s.drive(y, &scaled)?;
    // |x| via select; step towards target amplitude 1.0 with step 1/64.
    let neg = (-xv.clone()).to_fixed(sample_fmt(), Rounding::Nearest, Overflow::Saturate);
    let ax = xv.lt(&c.const_fixed(0.0, sample_fmt())).mux(&neg, &xv);
    let step_fmt = ocapi_fixp::Format::new(10, 1).expect("static format");
    let delta = ((c.const_fixed(1.0, sample_fmt()) - ax) * c.const_fixed(1.0 / 64.0, step_fmt))
        .to_fixed(coef_fmt(), Rounding::Nearest, Overflow::Saturate);
    let adapted = (qg.clone() + delta).to_fixed(coef_fmt(), Rounding::Nearest, Overflow::Saturate);
    s.next(g, &c.read(en).mux(&adapted, &qg))?;
    c.finish()
}

/// DC-offset tracker: `y = x − o`, `o += (x − o)/64` while enabled.
///
/// # Errors
///
/// Propagates capture errors.
pub fn dc_offset(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let x = c.input("x", SigType::Fixed(sample_fmt()))?;
    let en = c.input("en", SigType::Bool)?;
    let y = c.output("y", SigType::Fixed(sample_fmt()))?;
    let o = c.reg("o", SigType::Fixed(sample_fmt()))?;
    let s = c.sfg("dco")?;
    let xv = c.read(x);
    let qo = c.q(o);
    let corrected =
        (xv.clone() - qo.clone()).to_fixed(sample_fmt(), Rounding::Nearest, Overflow::Saturate);
    s.drive(y, &corrected)?;
    let eps_fmt = ocapi_fixp::Format::new(10, 1).expect("static format");
    let delta = ((xv - qo.clone()) * c.const_fixed(1.0 / 64.0, eps_fmt)).to_fixed(
        sample_fmt(),
        Rounding::Nearest,
        Overflow::Saturate,
    );
    let adapted =
        (qo.clone() + delta).to_fixed(sample_fmt(), Rounding::Nearest, Overflow::Saturate);
    s.next(o, &c.read(en).mux(&adapted, &qo))?;
    c.finish()
}

/// The DECT descrambler: a 7-stage LFSR (x⁷+x⁴+1) xor-ed onto the
/// decision bits.
///
/// # Errors
///
/// Propagates capture errors.
pub fn descrambler(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let bit = c.input("bit", SigType::Bool)?;
    let en = c.input("en", SigType::Bool)?;
    let out = c.output("out", SigType::Bool)?;
    let lfsr = c.reg_init("lfsr", SigType::Bits(7), Value::bits(7, 0x7f))?;
    let s = c.sfg("descr")?;
    let q = c.q(lfsr);
    let fb = q.bit(6) ^ q.bit(3);
    let shifted = q.shl(1) | fb.to_bits(7);
    let env = c.read(en);
    s.next(lfsr, &env.mux(&shifted, &q))?;
    s.drive(out, &(c.read(bit) ^ q.bit(6)))?;
    c.finish()
}

/// CRC-16 (CCITT polynomial 0x1021) over the descrambled bits.
///
/// Ports: `bit: Bool`, `en: Bool`, `clear: Bool` → `crc: Bits(16)`,
/// `ok: Bool` (remainder currently zero).
///
/// # Errors
///
/// Propagates capture errors.
pub fn crc16(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let bit = c.input("bit", SigType::Bool)?;
    let en = c.input("en", SigType::Bool)?;
    let clear = c.input("clear", SigType::Bool)?;
    let crc_out = c.output("crc", SigType::Bits(16))?;
    let ok = c.output("ok", SigType::Bool)?;
    let r = c.reg("r", SigType::Bits(16))?;
    let s = c.sfg("crc")?;
    let q = c.q(r);
    let msb = q.bit(15);
    let fb = msb ^ c.read(bit);
    let shifted = q.shl(1);
    let poly = c.const_bits(16, 0x1021);
    let next = fb.mux(&(shifted.clone() ^ poly), &shifted);
    let cleared = c.read(clear).mux(&c.const_bits(16, 0), &next);
    s.next(r, &c.read(en).mux(&cleared, &q))?;
    s.drive(crc_out, &q)?;
    s.drive(ok, &q.eq(&c.const_bits(16, 0)))?;
    c.finish()
}

/// The wire-link driver interface: packs decided bits into bytes for the
/// base-station controller and writes them to the DR FIFO RAM.
///
/// # Errors
///
/// Propagates capture errors.
pub fn dr_interface(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let bit = c.input("bit", SigType::Bool)?;
    let en = c.input("en", SigType::Bool)?;
    let data = c.output("data", SigType::Bits(8))?;
    let valid = c.output("valid", SigType::Bool)?;
    let fifo_addr = c.output("fifo_addr", SigType::Bits(8))?;
    let fifo_we = c.output("fifo_we", SigType::Bool)?;
    let shift = c.reg("shift", SigType::Bits(8))?;
    let cnt = c.reg("cnt", SigType::Bits(3))?;
    let ptr = c.reg("ptr", SigType::Bits(8))?;

    let s = c.sfg("pack")?;
    let env = c.read(en);
    let q = c.q(shift);
    let qc = c.q(cnt);
    let qp = c.q(ptr);
    let merged = q.shl(1) | c.read(bit).to_bits(8);
    let full = qc.eq(&c.const_bits(3, 7));
    let byte_done = env.clone() & full;
    s.next(shift, &env.mux(&merged, &q))?;
    s.next(cnt, &env.mux(&(qc.clone() + c.const_bits(3, 1)), &qc))?;
    s.next(ptr, &byte_done.mux(&(qp.clone() + c.const_bits(8, 1)), &qp))?;
    s.drive(data, &merged)?;
    s.drive(valid, &byte_done)?;
    s.drive(fifo_addr, &qp)?;
    s.drive(fifo_we, &byte_done)?;
    c.finish()
}

/// The local control interface: symbol counter and status word for the
/// CTL component, plus the out-RAM address.
///
/// # Errors
///
/// Propagates capture errors.
pub fn ctl_interface(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let count = c.input("count", SigType::Bool)?;
    let detect = c.input("detect", SigType::Bool)?;
    let holding = c.input("holding", SigType::Bool)?;
    let status = c.output("status", SigType::Bits(8))?;
    let sym_addr = c.output("sym_addr", SigType::Bits(8))?;
    let regs_addr = c.output("regs_addr", SigType::Bits(4))?;
    let regs_we = c.output("regs_we", SigType::Bool)?;
    let regs_wdata = c.output("regs_wdata", SigType::Bits(8))?;
    let cnt = c.reg("cnt", SigType::Bits(16))?;

    let s = c.sfg("ctl")?;
    let q = c.q(cnt);
    let env = c.read(count);
    s.next(cnt, &env.mux(&(q.clone() + c.const_bits(16, 1)), &q))?;
    let word = c.read(detect).to_bits(8).shl(7)
        | c.read(holding).to_bits(8).shl(6)
        | q.slice(0, 6).to_bits(8);
    s.drive(status, &word)?;
    s.drive(sym_addr, &q.slice(0, 8))?;
    s.drive(regs_addr, &c.const_bits(4, 0))?;
    s.drive(regs_we, &env)?;
    s.drive(regs_wdata, &word)?;
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dect::TRAIN_LEN;
    use ocapi::{InterpSim, Simulator, System};

    fn single(comp: Component, ins: &[(&str, SigType)], outs: &[&str]) -> InterpSim {
        let mut sb = System::build("t");
        let u = sb.add_component("u", comp).unwrap();
        for (n, t) in ins {
            sb.input(n, *t).unwrap();
            sb.connect_input(n, u, n).unwrap();
        }
        for o in outs {
            sb.output(o, u, o).unwrap();
        }
        InterpSim::new(sb.finish().unwrap()).unwrap()
    }

    fn fx(v: f64, f: ocapi_fixp::Format) -> Value {
        Value::Fixed(Fix::from_f64(v, f, Rounding::Nearest, Overflow::Saturate))
    }

    #[test]
    fn mac_shift_and_multiply() {
        let mut sim = single(
            mac("m", 0.5).unwrap(),
            &[
                ("op", SigType::Bits(2)),
                ("x_in", SigType::Fixed(sample_fmt())),
                ("e_in", SigType::Fixed(err_fmt())),
            ],
            &["y", "x_out"],
        );
        sim.set_input("e_in", fx(0.0, err_fmt())).unwrap();
        sim.set_input("op", Value::bits(2, 1)).unwrap();
        sim.set_input("x_in", fx(2.0, sample_fmt())).unwrap();
        sim.step().unwrap(); // x <- 2.0
        sim.set_input("op", Value::bits(2, 0)).unwrap();
        sim.step().unwrap();
        // y = 0.5 * 2.0
        assert_eq!(sim.output("y").unwrap().as_fixed().unwrap().to_f64(), 1.0);
        assert_eq!(
            sim.output("x_out").unwrap().as_fixed().unwrap().to_f64(),
            2.0
        );
    }

    #[test]
    fn mac_lms_update_moves_coefficient() {
        let mut sim = single(
            mac("m", 0.0).unwrap(),
            &[
                ("op", SigType::Bits(2)),
                ("x_in", SigType::Fixed(sample_fmt())),
                ("e_in", SigType::Fixed(err_fmt())),
            ],
            &["y", "x_out"],
        );
        // Load x = 1.0.
        sim.set_input("e_in", fx(0.0, err_fmt())).unwrap();
        sim.set_input("op", Value::bits(2, 1)).unwrap();
        sim.set_input("x_in", fx(1.0, sample_fmt())).unwrap();
        sim.step().unwrap();
        // Update with e = 0.25: c = 0 + 0.25*1.0.
        sim.set_input("op", Value::bits(2, 2)).unwrap();
        sim.set_input("e_in", fx(0.25, err_fmt())).unwrap();
        sim.step().unwrap();
        sim.set_input("op", Value::bits(2, 0)).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.output("y").unwrap().as_fixed().unwrap().to_f64(), 0.25);
        // Clear restores the initial coefficient.
        sim.set_input("op", Value::bits(2, 3)).unwrap();
        sim.step().unwrap();
        sim.set_input("op", Value::bits(2, 0)).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.output("y").unwrap().as_fixed().unwrap().to_f64(), 0.0);
    }

    #[test]
    fn sum_tree_adds_and_gates() {
        let comp = sum_tree("s").unwrap();
        let mut ins: Vec<(String, SigType)> = (0..TAPS)
            .map(|i| (format!("y{i}"), SigType::Fixed(acc_fmt())))
            .collect();
        ins.push(("en".to_owned(), SigType::Bool));
        let ins_ref: Vec<(&str, SigType)> = ins.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let mut sim = single(comp, &ins_ref, &["acc"]);
        for i in 0..TAPS {
            sim.set_input(&format!("y{i}"), fx(0.25, acc_fmt()))
                .unwrap();
        }
        sim.set_input("en", Value::Bool(true)).unwrap();
        sim.step().unwrap();
        assert_eq!(
            sim.output("acc").unwrap().as_fixed().unwrap().to_f64(),
            0.25 * TAPS as f64
        );
        sim.set_input("en", Value::Bool(false)).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.output("acc").unwrap().as_fixed().unwrap().to_f64(), 0.0);
    }

    #[test]
    fn slicer_decision_and_error() {
        let mut sim = single(
            slicer("sl", TRAIN_LEN as u64).unwrap(),
            &[
                ("y", SigType::Fixed(acc_fmt())),
                ("train_sym", SigType::Fixed(sym_fmt())),
                ("train", SigType::Bool),
                ("en", SigType::Bool),
                ("step", SigType::Bool),
            ],
            &["bit", "err", "train_addr"],
        );
        // Decision-directed: y = 0.75 -> bit 1, err = 1 - 0.75.
        sim.set_input("y", fx(0.75, acc_fmt())).unwrap();
        sim.set_input("train_sym", fx(-1.0, sym_fmt())).unwrap();
        sim.set_input("train", Value::Bool(false)).unwrap();
        sim.set_input("en", Value::Bool(true)).unwrap();
        sim.set_input("step", Value::Bool(false)).unwrap();
        sim.step().unwrap();
        sim.set_input("en", Value::Bool(false)).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.output("bit").unwrap(), Value::Bool(true));
        assert_eq!(
            sim.output("err").unwrap().as_fixed().unwrap().to_f64(),
            0.25
        );

        // Training mode: reference forced to -1, err = -1 - 0.75.
        let mut sim = single(
            slicer("sl", TRAIN_LEN as u64).unwrap(),
            &[
                ("y", SigType::Fixed(acc_fmt())),
                ("train_sym", SigType::Fixed(sym_fmt())),
                ("train", SigType::Bool),
                ("en", SigType::Bool),
                ("step", SigType::Bool),
            ],
            &["bit", "err", "train_addr"],
        );
        sim.set_input("y", fx(0.75, acc_fmt())).unwrap();
        sim.set_input("train_sym", fx(-1.0, sym_fmt())).unwrap();
        sim.set_input("train", Value::Bool(true)).unwrap();
        sim.set_input("en", Value::Bool(true)).unwrap();
        sim.set_input("step", Value::Bool(false)).unwrap();
        sim.step().unwrap();
        assert_eq!(
            sim.net_value("u.err").unwrap().as_fixed().unwrap().to_f64(),
            0.0 // outputs update next cycle; check register path below
        );
        sim.set_input("en", Value::Bool(false)).unwrap();
        sim.step().unwrap();
        assert_eq!(
            sim.output("err").unwrap().as_fixed().unwrap().to_f64(),
            -1.75
        );
    }

    #[test]
    fn train_pointer_saturates() {
        let mut sim = single(
            slicer("sl", TRAIN_LEN as u64).unwrap(),
            &[
                ("y", SigType::Fixed(acc_fmt())),
                ("train_sym", SigType::Fixed(sym_fmt())),
                ("train", SigType::Bool),
                ("en", SigType::Bool),
                ("step", SigType::Bool),
            ],
            &["train_addr"],
        );
        sim.set_input("y", fx(0.0, acc_fmt())).unwrap();
        sim.set_input("train_sym", fx(1.0, sym_fmt())).unwrap();
        sim.set_input("train", Value::Bool(true)).unwrap();
        sim.set_input("en", Value::Bool(true)).unwrap();
        sim.set_input("step", Value::Bool(true)).unwrap();
        for _ in 0..TRAIN_LEN + 10 {
            sim.step().unwrap();
        }
        assert_eq!(
            sim.output("train_addr").unwrap(),
            Value::bits(8, TRAIN_LEN as u64)
        );
    }

    #[test]
    fn descrambler_is_self_inverse_on_known_lfsr() {
        // Descrambling twice (two instances in sequence, same phase) gives
        // back the original bit — here we just check the LFSR sequence is
        // deterministic and the xor applies.
        let mut sim = single(
            descrambler("d").unwrap(),
            &[("bit", SigType::Bool), ("en", SigType::Bool)],
            &["out"],
        );
        sim.set_input("en", Value::Bool(true)).unwrap();
        let mut outs = Vec::new();
        for i in 0..20 {
            sim.set_input("bit", Value::Bool(i % 3 == 0)).unwrap();
            sim.step().unwrap();
            outs.push(sim.output("out").unwrap() == Value::Bool(true));
        }
        // First output: bit(true) xor lfsr_bit(1) = false.
        assert!(!outs[0]);
        // The sequence is not constant (the LFSR is running).
        assert!(outs.iter().any(|b| *b) && outs.iter().any(|b| !*b));
    }

    #[test]
    fn crc_detects_corruption() {
        fn run(bits: &[bool]) -> u64 {
            let mut sim = single(
                crc16("c").unwrap(),
                &[
                    ("bit", SigType::Bool),
                    ("en", SigType::Bool),
                    ("clear", SigType::Bool),
                ],
                &["crc", "ok"],
            );
            sim.set_input("en", Value::Bool(true)).unwrap();
            sim.set_input("clear", Value::Bool(false)).unwrap();
            for b in bits {
                sim.set_input("bit", Value::Bool(*b)).unwrap();
                sim.step().unwrap();
            }
            sim.set_input("en", Value::Bool(false)).unwrap();
            sim.step().unwrap();
            sim.output("crc").unwrap().as_bits().unwrap()
        }
        let msg: Vec<bool> = (0..48).map(|i| i % 5 == 0).collect();
        let a = run(&msg);
        let mut corrupted = msg.clone();
        corrupted[13] = !corrupted[13];
        let b = run(&corrupted);
        assert_ne!(a, b, "CRC must change on corruption");
    }

    #[test]
    fn agc_converges_towards_unit_amplitude() {
        let mut sim = single(
            agc("a").unwrap(),
            &[("x", SigType::Fixed(sample_fmt())), ("en", SigType::Bool)],
            &["y"],
        );
        // A weak input (amplitude 0.5): with adaptation on, gain grows
        // and the output approaches the input's sign at amplitude ~>0.5.
        sim.set_input("en", Value::Bool(true)).unwrap();
        let mut last = 0.0;
        for k in 0..400 {
            let x = if k % 2 == 0 { 0.5 } else { -0.5 };
            sim.set_input("x", fx(x, sample_fmt())).unwrap();
            sim.step().unwrap();
            last = sim.output("y").unwrap().as_fixed().unwrap().to_f64().abs();
        }
        assert!(last > 0.7, "gain should have grown: |y| = {last}");
    }

    #[test]
    fn dc_offset_tracker_removes_bias() {
        let mut sim = single(
            dc_offset("d").unwrap(),
            &[("x", SigType::Fixed(sample_fmt())), ("en", SigType::Bool)],
            &["y"],
        );
        sim.set_input("en", Value::Bool(true)).unwrap();
        // Alternating ±1 riding on a +0.5 offset.
        let mut sum = 0.0;
        let mut n = 0.0;
        for k in 0..600 {
            let x = 0.5 + if k % 2 == 0 { 1.0 } else { -1.0 };
            sim.set_input("x", fx(x, sample_fmt())).unwrap();
            sim.step().unwrap();
            if k >= 500 {
                sum += sim.output("y").unwrap().as_fixed().unwrap().to_f64();
                n += 1.0;
            }
        }
        let mean = sum / n;
        // The 1/64 step with 8 fractional bits has a quantisation floor;
        // most (not all) of the 0.5 bias must be gone.
        assert!(
            mean.abs() < 0.2,
            "offset should be mostly removed: mean = {mean}"
        );
    }

    #[test]
    fn dr_interface_packs_bytes() {
        let mut sim = single(
            dr_interface("dr").unwrap(),
            &[("bit", SigType::Bool), ("en", SigType::Bool)],
            &["data", "valid", "fifo_we", "fifo_addr"],
        );
        sim.set_input("en", Value::Bool(true)).unwrap();
        let byte = 0b1011_0010u64;
        for i in (0..8).rev() {
            sim.set_input("bit", Value::Bool((byte >> i) & 1 == 1))
                .unwrap();
            sim.step().unwrap();
            let valid = sim.output("valid").unwrap() == Value::Bool(true);
            assert_eq!(valid, i == 0, "valid only on the 8th bit");
        }
        assert_eq!(sim.output("data").unwrap(), Value::bits(8, byte));
        assert_eq!(sim.output("fifo_we").unwrap(), Value::Bool(true));
    }
}
