//! Stepwise refinement: the transceiver with a *high-level* equalizer.
//!
//! "The object oriented features of this language allow it to mix
//! high-level descriptions of undesigned components with detailed
//! clock-cycle true, bit-true descriptions" (§1) — the essential ability
//! to keep an executable system specification at all times. This module
//! is that flow on the flagship design: [`HighLevelEqualizer`] is an
//! untimed behavioural model that replaces the 11 MAC datapaths *and*
//! the sum tree of the cycle-true machine, plugged into the otherwise
//! unchanged system (same PC controller, decoder, RAMs, slicer, HCOR…).
//!
//! Because the model uses the same fixed-point casts the datapaths use,
//! the mixed system is **bit-exact** with the fully refined one — the
//! check a designer runs after each refinement step
//! (`tests/dect_system.rs::mixed_refinement_matches_cycle_true`).

use ocapi::{CoreError, System};
use ocapi::{PortDecl, Ram, Rom, SigType, UntimedBlock, Value};
use ocapi_fixp::{Fix, Overflow, Rounding};

use super::datapaths;
use super::pc_controller;
use super::transceiver::{decoder, program, training_rom_contents, TransceiverConfig, INSTR_BITS};
use super::{acc_fmt, coef_fmt, err_fmt, sample_fmt, sym_fmt, CENTER_TAP, TAPS};

/// The undesigned equalizer as a plain behavioural model: delay line,
/// coefficients, MAC and LMS update — one `fire` per clock cycle,
/// decoding the same instruction fields the datapaths decode.
#[derive(Debug, Clone)]
pub struct HighLevelEqualizer {
    name: String,
    taps: Vec<Fix>,
    delay: Vec<Fix>,
}

impl HighLevelEqualizer {
    /// A fresh equalizer with the cursor initialised at the centre tap.
    pub fn new(name: &str) -> HighLevelEqualizer {
        let one = Fix::from_f64(1.0, coef_fmt(), Rounding::Nearest, Overflow::Saturate);
        let mut taps = vec![Fix::zero(coef_fmt()); TAPS];
        taps[CENTER_TAP] = one;
        HighLevelEqualizer {
            name: name.to_owned(),
            taps,
            delay: vec![Fix::zero(sample_fmt()); TAPS],
        }
    }
}

impl UntimedBlock for HighLevelEqualizer {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_ports(&self) -> Vec<PortDecl> {
        vec![
            PortDecl {
                name: "op".into(),
                ty: SigType::Bits(2),
            },
            PortDecl {
                name: "x_in".into(),
                ty: SigType::Fixed(sample_fmt()),
            },
            PortDecl {
                name: "e_in".into(),
                ty: SigType::Fixed(err_fmt()),
            },
            PortDecl {
                name: "sum_en".into(),
                ty: SigType::Bool,
            },
        ]
    }

    fn output_ports(&self) -> Vec<PortDecl> {
        vec![PortDecl {
            name: "acc".into(),
            ty: SigType::Fixed(acc_fmt()),
        }]
    }

    fn fire(&mut self, inputs: &[Value], outputs: &mut [Value]) {
        let op = inputs[0].as_bits().expect("op is bits");
        let x_in = inputs[1].as_fixed().expect("x_in is fixed");
        let e_in = inputs[2].as_fixed().expect("e_in is fixed");
        let sum_en = inputs[3].as_bool().expect("sum_en is bool");

        // The state transition of this cycle's instruction (the MAC
        // datapaths commit it at the register-update phase; here it is
        // immediate, which is equivalent because the sum is read in a
        // *later* instruction of the symbol loop).
        match op {
            1 => {
                for i in (1..TAPS).rev() {
                    self.delay[i] = self.delay[i - 1];
                }
                self.delay[0] = x_in;
            }
            2 => {
                for i in 0..TAPS {
                    self.taps[i] = (self.taps[i] + e_in * self.delay[i]).cast(
                        coef_fmt(),
                        Rounding::Nearest,
                        Overflow::Saturate,
                    );
                }
            }
            3 => {
                let one = Fix::from_f64(1.0, coef_fmt(), Rounding::Nearest, Overflow::Saturate);
                for (i, t) in self.taps.iter_mut().enumerate() {
                    *t = if i == CENTER_TAP {
                        one
                    } else {
                        Fix::zero(coef_fmt())
                    };
                }
                for d in &mut self.delay {
                    *d = Fix::zero(sample_fmt());
                }
            }
            _ => {}
        }

        // The output of the (replaced) sum tree, with its cast points.
        outputs[0] = if sum_en {
            let ys: Vec<Fix> = self
                .taps
                .iter()
                .zip(&self.delay)
                .map(|(c, x)| (*c * *x).cast(acc_fmt(), Rounding::Truncate, Overflow::Saturate))
                .collect();
            let mut layer = ys;
            while layer.len() > 1 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                let mut it = layer.into_iter();
                while let Some(a) = it.next() {
                    match it.next() {
                        Some(b) => next.push(a + b),
                        None => next.push(a),
                    }
                }
                layer = next;
            }
            Value::Fixed(layer[0].cast(acc_fmt(), Rounding::Truncate, Overflow::Saturate))
        } else {
            Value::Fixed(Fix::zero(acc_fmt()))
        };
    }

    fn reset(&mut self) {
        *self = HighLevelEqualizer::new(&self.name);
    }
}

/// Builds the mixed-refinement transceiver: identical to
/// [`super::transceiver::build_system`] except that the 11 MAC datapaths
/// and the sum tree are one untimed [`HighLevelEqualizer`] block.
///
/// # Errors
///
/// Propagates capture errors.
pub fn build_mixed_system(cfg: &TransceiverConfig) -> Result<System, CoreError> {
    let mut sb = System::build("dect_mixed");

    let pc = sb.add_component("pc_ctrl", pc_controller::build("pc_ctrl")?)?;
    let dec = sb.add_component("decoder", decoder("decoder")?)?;

    let irom_words: Vec<Value> = {
        let mut w: Vec<Value> = program(cfg)
            .iter()
            .map(|i| Value::bits(INSTR_BITS, i.word()))
            .collect();
        w.resize(256, Value::bits(INSTR_BITS, 0));
        w
    };
    let irom = sb.add_block(Box::new(Rom::new(
        "irom",
        SigType::Bits(INSTR_BITS),
        irom_words,
    )))?;
    let trom = sb.add_block(Box::new(Rom::new(
        "train_rom",
        SigType::Fixed(sym_fmt()),
        training_rom_contents(),
    )))?;
    let ram_a = sb.add_block(Box::new(Ram::new(
        "sample_a",
        8,
        SigType::Fixed(sample_fmt()),
    )))?;
    let ram_b = sb.add_block(Box::new(Ram::new(
        "sample_b",
        8,
        SigType::Fixed(sample_fmt()),
    )))?;

    // The high-level (not yet designed) equalizer.
    let eq = sb.add_block(Box::new(HighLevelEqualizer::new("equalizer")))?;

    let front = sb.add_component("dp_in", datapaths::input_frontend("dp_in")?)?;
    let agc = sb.add_component("dp_agc", datapaths::agc("dp_agc")?)?;
    let dco = sb.add_component("dp_dco", datapaths::dc_offset("dp_dco")?)?;
    let slicer = sb.add_component(
        "dp_slice",
        datapaths::slicer("dp_slice", (super::TRAIN_LEN + super::DELAY) as u64)?,
    )?;
    let errs = sb.add_component("dp_err", datapaths::err_scale("dp_err")?)?;
    let corr = sb.add_component("dp_corr", crate::hcor::build_component()?)?;

    sb.input("sample", SigType::Fixed(sample_fmt()))?;
    sb.input("hold_request", SigType::Bool)?;
    sb.connect_input("sample", front, "sample")?;
    sb.connect_input("hold_request", pc, "hold_request")?;

    sb.tie(pc, "loop_start", Value::bits(8, 1))?;
    sb.tie(
        pc,
        "loop_end",
        Value::bits(8, super::transceiver::CYCLES_PER_SYMBOL as u64),
    )?;
    sb.connect(pc, "iaddr", irom, "addr")?;
    sb.connect(irom, "data", dec, "instr")?;

    sb.connect(dec, "in_we", front, "we")?;
    sb.connect(dec, "in_rd", front, "rd")?;
    sb.connect(front, "addr_a", ram_a, "addr")?;
    sb.connect(front, "we_a", ram_a, "we")?;
    sb.connect(front, "wdata", ram_a, "wdata")?;
    sb.connect(front, "addr_b", ram_b, "addr")?;
    sb.connect(front, "we_b", ram_b, "we")?;
    sb.connect(front, "wdata", ram_b, "wdata")?;
    sb.connect(ram_a, "rdata", front, "rdata_a")?;
    sb.connect(ram_b, "rdata", front, "rdata_b")?;
    sb.connect(front, "x_head", agc, "x")?;
    sb.connect(dec, "agc_en", agc, "en")?;
    sb.connect(agc, "y", dco, "x")?;
    sb.connect(dec, "dco_en", dco, "en")?;

    // The refinement boundary: the untimed equalizer sits where the MAC
    // delay line and sum tree sat.
    sb.connect(dec, "eq_op", eq, "op")?;
    sb.connect(dco, "y", eq, "x_in")?;
    sb.connect(errs, "e_scaled", eq, "e_in")?;
    sb.connect(dec, "sum_en", eq, "sum_en")?;
    sb.connect(eq, "acc", slicer, "y")?;

    sb.connect(dec, "slice_en", slicer, "en")?;
    sb.connect(dec, "train", slicer, "train")?;
    sb.connect(dec, "train_step", slicer, "step")?;
    sb.connect(trom, "data", slicer, "train_sym")?;
    sb.connect(slicer, "train_addr", trom, "addr")?;
    sb.connect(slicer, "err", errs, "err")?;

    sb.connect(slicer, "bit", corr, "bit_in")?;
    sb.connect(dec, "corr_en", corr, "enable")?;
    sb.tie(corr, "threshold", Value::bits(5, 15))?;

    sb.output("bit", slicer, "bit")?;
    sb.output("err", slicer, "err")?;
    sb.output("detect", corr, "detect")?;
    sb.output("holding", pc, "holding")?;
    sb.finish()
}
