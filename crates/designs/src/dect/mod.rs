//! The DECT base-station radiolink transceiver (Figure 5 of the paper).
//!
//! A centrally-controlled VLIW machine: a program-counter controller with
//! the hold/execute FSM of Figure 2, an instruction ROM, an instruction
//! decoder distributing fields over the instruction busses, 22 datapaths
//! (11 MAC taps of the adaptive equalizer, the input front-end with
//! double-buffered sample RAMs, AGC, DC-offset tracking, the sum tree,
//! the slicer, the LMS error scaler, the HCOR sync correlator, the
//! descrambler, the CRC checker and the DR/CTL interfaces) and 7 RAM/ROM
//! cells.
//!
//! ## Scaling substitution
//!
//! The paper's equalizer performs 152 data multiplies per DECT symbol on
//! 22 datapaths decoding 2–57 instructions each. This reconstruction
//! keeps the architecture (central VLIW control, parallel MAC datapaths,
//! RAM cells as untimed blocks, hold-driven exception handling) at a
//! reduced arithmetic scale: 11 equalizer taps × (1 MAC + 1 LMS-update
//! multiply) = 22 multiplies per symbol. All code paths of the original
//! are exercised; gate counts and simulation speeds scale accordingly and
//! are reported as measured.

pub mod burst;
pub mod dataflow_model;
pub mod datapaths;
pub mod highlevel;
pub mod pc_controller;
pub mod reference;
pub mod transceiver;

use ocapi_fixp::Format;

/// Sample format on the receive path: `<12,4>`.
pub fn sample_fmt() -> Format {
    Format::new(12, 4).expect("static format")
}

/// Equalizer coefficient format: `<12,2>`.
pub fn coef_fmt() -> Format {
    Format::new(12, 2).expect("static format")
}

/// Accumulator (sum tree) format: `<16,6>`.
pub fn acc_fmt() -> Format {
    Format::new(16, 6).expect("static format")
}

/// Error format: `<12,4>`.
pub fn err_fmt() -> Format {
    Format::new(12, 4).expect("static format")
}

/// Symbol (decision / training reference) format: `<4,2>`.
pub fn sym_fmt() -> Format {
    Format::new(4, 2).expect("static format")
}

/// Number of equalizer taps.
pub const TAPS: usize = 11;

/// The tap whose coefficient initialises to 1.0 (the cursor).
pub const CENTER_TAP: usize = 2;

/// LMS step size (a power of two, as in the hardware).
pub const MU: f64 = 1.0 / 16.0;

/// Number of training symbols (the receiver knows the preamble and sync
/// word of the S-field).
pub const TRAIN_LEN: usize = 32;

/// Replay lag of the input front-end, in symbols.
pub const LAG: usize = 2;

/// Total pipeline delay from a transmitted bit to its sliced decision:
/// the replay lag plus the equalizer's centre tap.
pub const DELAY: usize = LAG + CENTER_TAP;
