//! Bit-exact software reference of the transceiver signal path.
//!
//! The paper's flow starts from a Matlab reference that the hardware is
//! verified against. This module plays that role: a plain-Rust,
//! symbol-rate model using the *same* fixed-point operations and cast
//! points as the captured datapaths, against which the cycle-true system
//! is checked bit for bit (see `tests/dect_system.rs`).

use ocapi_fixp::{Fix, Overflow, Rounding};

use super::burst::s_field;
use super::{
    acc_fmt, coef_fmt, err_fmt, sample_fmt, sym_fmt, CENTER_TAP, DELAY, LAG, MU, TAPS, TRAIN_LEN,
};

/// The reference receiver state.
#[derive(Debug, Clone)]
pub struct Reference {
    taps: Vec<Fix>,
    delay: Vec<Fix>,
    dco: Fix,
    train: bool,
    tptr: usize,
    err: Fix,
    bit: bool,
}

/// One reference output per symbol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefRecord {
    /// Sliced decision.
    pub bit: bool,
    /// Slicer error (registered, as on the `err` output).
    pub err: Fix,
}

impl Reference {
    /// A reference receiver matching [`super::transceiver::build_system`]
    /// with the same configuration.
    pub fn new(train: bool) -> Reference {
        let zero_c = Fix::zero(coef_fmt());
        let one_c = Fix::from_f64(1.0, coef_fmt(), Rounding::Nearest, Overflow::Saturate);
        let mut taps = vec![zero_c; TAPS];
        taps[CENTER_TAP] = one_c;
        Reference {
            taps,
            delay: vec![Fix::zero(sample_fmt()); TAPS],
            dco: Fix::zero(sample_fmt()),
            train,
            tptr: 0,
            err: Fix::zero(err_fmt()),
            bit: false,
        }
    }

    /// Current equalizer coefficients (for convergence inspection).
    pub fn taps(&self) -> &[Fix] {
        &self.taps
    }

    /// Processes the samples of one burst, producing one record per
    /// symbol — the values the hardware's `bit`/`err` outputs show at the
    /// end of each symbol loop.
    pub fn run(&mut self, samples: &[Fix]) -> Vec<RefRecord> {
        let zero_s = Fix::zero(sample_fmt());
        let mut out = Vec::with_capacity(samples.len());
        for k in 0..samples.len() {
            let x_at = |i: i64| -> Fix {
                if i >= 0 && (i as usize) < samples.len() {
                    samples[i as usize]
                } else {
                    zero_s
                }
            };
            out.push(self.step(x_at(k as i64 - LAG as i64 - 1), x_at(k as i64 - LAG as i64)));
        }
        out
    }

    /// One symbol of processing given the two lagged sample values the
    /// hardware's read port shows: `x_adapt` during the capture cycle
    /// (index k − LAG − 1) and `x_replay` during the replay cycle (index
    /// k − LAG). Used by the data-flow model, which owns the history.
    pub fn step(&mut self, x_adapt: Fix, x_replay: Fix) -> RefRecord {
        let training_syms = training_reference();
        {
            // Instruction 1: DC-offset adaptation on the sample the read
            // port shows during the capture cycle.
            let xa = agc_pass(x_adapt);
            let delta = ((xa - self.dco)
                * Fix::from_f64(
                    1.0 / 64.0,
                    ocapi_fixp::Format::new(10, 1).expect("static format"),
                    Rounding::Nearest,
                    Overflow::Saturate,
                ))
            .cast(sample_fmt(), Rounding::Nearest, Overflow::Saturate);
            self.dco = (self.dco + delta).cast(sample_fmt(), Rounding::Nearest, Overflow::Saturate);
        }
        {
            // Instruction 2: replay the lagged sample, shift the line.
            let xr = agc_pass(x_replay);
            let xin = (xr - self.dco).cast(sample_fmt(), Rounding::Nearest, Overflow::Saturate);
            for i in (1..TAPS).rev() {
                self.delay[i] = self.delay[i - 1];
            }
            self.delay[0] = xin;
        }
        {
            // Instruction 3: equalize, slice, form the error.
            let ys: Vec<Fix> = self
                .taps
                .iter()
                .zip(&self.delay)
                .map(|(c, x)| (*c * *x).cast(acc_fmt(), Rounding::Truncate, Overflow::Saturate))
                .collect();
            let sum = tree_sum(&ys).cast(acc_fmt(), Rounding::Truncate, Overflow::Saturate);
            let d = sum >= Fix::zero(acc_fmt());
            let dsym = Fix::from_f64(
                if d { 1.0 } else { -1.0 },
                sym_fmt(),
                Rounding::Nearest,
                Overflow::Saturate,
            );
            let reference = if self.train && self.tptr < TRAIN_LEN + DELAY {
                training_syms[self.tptr]
            } else {
                dsym
            };
            let err = (reference.cast(err_fmt(), Rounding::Nearest, Overflow::Saturate)
                - sum.cast(err_fmt(), Rounding::Nearest, Overflow::Saturate))
            .cast(err_fmt(), Rounding::Nearest, Overflow::Saturate);
            self.bit = d;
            self.err = err;
            if self.tptr < TRAIN_LEN + DELAY {
                self.tptr += 1;
            }
        }
        {
            // Instruction 4: LMS update.
            let mu = Fix::from_f64(
                MU,
                ocapi_fixp::Format::new(8, 1).expect("static format"),
                Rounding::Nearest,
                Overflow::Saturate,
            );
            let e_scaled = (self.err * mu).cast(err_fmt(), Rounding::Nearest, Overflow::Saturate);
            for i in 0..TAPS {
                self.taps[i] = (self.taps[i] + e_scaled * self.delay[i]).cast(
                    coef_fmt(),
                    Rounding::Nearest,
                    Overflow::Saturate,
                );
            }
        }
        RefRecord {
            bit: self.bit,
            err: self.err,
        }
    }
}

/// The AGC at unit gain: `cast(1.0 · x)` — exact, but kept to mirror the
/// hardware cast points.
fn agc_pass(x: Fix) -> Fix {
    let g = Fix::from_f64(1.0, coef_fmt(), Rounding::Nearest, Overflow::Saturate);
    (g * x).cast(sample_fmt(), Rounding::Nearest, Overflow::Saturate)
}

/// The balanced adder tree of the sum datapath (associativity matters
/// only for intermediate growth, which is exact, but mirror it anyway).
fn tree_sum(ys: &[Fix]) -> Fix {
    let mut layer: Vec<Fix> = ys.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(a + b),
                None => next.push(a),
            }
        }
        layer = next;
    }
    layer[0]
}

/// The training reference stream as the slicer sees it (the training ROM
/// contents).
fn training_reference() -> Vec<Fix> {
    let s = s_field();
    let one = Fix::from_f64(1.0, sym_fmt(), Rounding::Nearest, Overflow::Saturate);
    let neg = Fix::from_f64(-1.0, sym_fmt(), Rounding::Nearest, Overflow::Saturate);
    let mut v = vec![one; 256];
    for (i, bit) in s.iter().enumerate().take(TRAIN_LEN) {
        v[i + DELAY] = if *bit { one } else { neg };
    }
    v
}
