//! The receiver as a *data-flow* system — the top of the refinement
//! ladder.
//!
//! "At the system level, processes execute using data-flow simulation
//! semantics" (§2): before anything is cycle-true, the DECT receiver is a
//! graph of untimed actors firing as tokens arrive. This module expresses
//! the receive chain that way — sample source → front-end conditioning →
//! adaptive equalizer/slicer → decision sink — on the
//! [`ocapi::dataflow`] scheduler, and the actors reuse the bit-exact
//! arithmetic of [`super::reference`], so the data-flow model, the mixed
//! model and the fully refined cycle-true machine all agree symbol for
//! symbol.

use ocapi::dataflow::{Actor, ActorId, DataflowGraph, Sink, SinkHandle, Source};
use ocapi::{CoreError, Value};
use ocapi_fixp::Fix;

use super::reference::Reference;

/// The equalizer/slicer as a single-rate data-flow actor: one sample
/// token in, one decision token out.
pub struct EqualizerActor {
    reference: Reference,
    /// The scheduler feeds one sample per firing; the reference model is
    /// driven incrementally.
    history: Vec<Fix>,
}

impl EqualizerActor {
    /// A training-mode equalizer actor.
    pub fn new(train: bool) -> EqualizerActor {
        EqualizerActor {
            reference: Reference::new(train),
            history: Vec::new(),
        }
    }
}

impl Actor for EqualizerActor {
    fn name(&self) -> &str {
        "equalizer"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn fire(&mut self, inputs: &[Vec<Value>], outputs: &mut [Vec<Value>]) {
        let sample = inputs[0][0].as_fixed().expect("sample token is fixed");
        self.history.push(sample);
        // The replay lag of the front-end, fed from the actor's own
        // token history.
        let k = self.history.len() as i64 - 1;
        let zero = Fix::zero(super::sample_fmt());
        let x_at = |i: i64| -> Fix {
            if i >= 0 {
                self.history[i as usize]
            } else {
                zero
            }
        };
        let rec = self
            .reference
            .step(x_at(k - super::LAG as i64 - 1), x_at(k - super::LAG as i64));
        outputs[0].push(Value::Bool(rec.bit));
    }
}

/// Builds the data-flow receiver over a sample stream; returns the
/// graph, the source/sink ids and a handle onto the decision sink.
///
/// # Errors
///
/// Propagates graph construction errors.
pub fn build_graph(
    samples: &[Fix],
    train: bool,
) -> Result<(DataflowGraph, ActorId, SinkHandle), CoreError> {
    let mut g = DataflowGraph::new();
    let src = g.add(Box::new(Source::new(
        "samples",
        samples.iter().map(|s| Value::Fixed(*s)),
    )));
    let eq = g.add(Box::new(EqualizerActor::new(train)));
    let sink = Sink::new("decisions");
    let handle = sink.handle();
    let sink_id = g.add(Box::new(sink));
    g.connect(src, 0, eq, 0, &[])?;
    g.connect(eq, 0, sink_id, 0, &[])?;
    Ok((g, src, handle))
}

/// Runs the data-flow receiver to completion, returning the decisions.
///
/// # Errors
///
/// Propagates scheduler errors.
pub fn run(samples: &[Fix], train: bool) -> Result<Vec<bool>, CoreError> {
    let (mut g, _, decisions) = build_graph(samples, train)?;
    g.run(u64::MAX)?;
    Ok(decisions
        .tokens()
        .iter()
        .map(|v| v.as_bool().expect("decision token is bool"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dect::burst::{generate, BurstConfig};
    use crate::dect::reference::Reference;

    #[test]
    fn dataflow_model_matches_reference() {
        let burst = generate(&BurstConfig::default());
        let decisions = run(&burst.samples, true).unwrap();
        let mut r = Reference::new(true);
        let expect: Vec<bool> = r.run(&burst.samples).iter().map(|x| x.bit).collect();
        assert_eq!(decisions, expect);
    }

    #[test]
    fn graph_is_statically_schedulable() {
        let burst = generate(&BurstConfig {
            payload_len: 8,
            ..BurstConfig::default()
        });
        let (g, _, _) = build_graph(&burst.samples, true).unwrap();
        // Single-rate chain: repetition vector is all ones.
        assert_eq!(g.repetition_vector().unwrap(), vec![1, 1, 1]);
        let sched = g.static_schedule().unwrap();
        assert_eq!(sched.len(), 3);
    }
}
