//! The image-compressor demonstrator (§7): an 8-point DCT stage with a
//! quantiser, processing a streamed pixel block.
//!
//! Eight pixels load over eight cycles; the component then emits one DCT
//! coefficient per cycle (row-DCT of a JPEG-style pipeline), divided by a
//! programmable quantisation shift.

use ocapi::{Component, CoreError, Sig, SigType, System};
use ocapi_fixp::Format;

/// Pixel input format (signed, normalised to ±1): `<9,1>`.
pub fn pixel_fmt() -> Format {
    Format::new(9, 1).expect("static format")
}

/// DCT coefficient output format: `<14,4>`.
pub fn dct_fmt() -> Format {
    Format::new(14, 4).expect("static format")
}

/// Cosine basis factor format.
fn basis_fmt() -> Format {
    Format::new(10, 2).expect("static format")
}

/// The DCT-II basis value `c(k) · cos((2j+1)kπ/16) / 2`.
pub fn basis(k: usize, j: usize) -> f64 {
    let ck = if k == 0 { (0.5f64).sqrt() } else { 1.0 };
    0.5 * ck * ((2 * j + 1) as f64 * k as f64 * std::f64::consts::PI / 16.0).cos()
}

/// Builds the 8-point DCT datapath.
///
/// Ports: `pixel: <9,8>`, `start: Bool` → `coef: <14,11>`,
/// `coef_idx: Bits(3)`, `valid: Bool`. Assert `start` for one cycle, then
/// stream 8 pixels; 8 coefficients follow on the next 8 cycles while the
/// next block loads.
///
/// # Errors
///
/// Propagates capture errors.
pub fn dct8(name: &str, quant_shift: u32) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let pixel = c.input("pixel", SigType::Fixed(pixel_fmt()))?;
    let start = c.input("start", SigType::Bool)?;
    let coef = c.output("coef", SigType::Fixed(dct_fmt()))?;
    let coef_idx = c.output("coef_idx", SigType::Bits(3))?;
    let valid = c.output("valid", SigType::Bool)?;

    let pixels: Vec<_> = (0..8)
        .map(|i| c.reg(&format!("p{i}"), SigType::Fixed(pixel_fmt())))
        .collect::<Result<_, _>>()?;
    let held: Vec<_> = (0..8)
        .map(|i| c.reg(&format!("h{i}"), SigType::Fixed(pixel_fmt())))
        .collect::<Result<_, _>>()?;
    let phase = c.reg("phase", SigType::Bits(3))?;
    let running = c.reg("running", SigType::Bool)?;

    let s = c.sfg("dct")?;
    let st = c.read(start);
    let qp = c.q(phase);
    let qr = c.q(running);

    // Pixel shift register; on wrap, the block is copied to the held bank
    // so the next block can stream in immediately.
    for i in (1..8).rev() {
        s.next(pixels[i], &c.q(pixels[i - 1]))?;
    }
    s.next(pixels[0], &c.read(pixel))?;
    let wrap = qp.eq(&c.const_bits(3, 7));
    for i in 0..8 {
        // Capture the post-shift line: held[i] = pixel 7-i of the block
        // (held[0] is the pixel arriving during the wrap cycle).
        let captured = if i == 0 {
            c.read(pixel)
        } else {
            c.q(pixels[i - 1])
        };
        s.next(held[i], &wrap.mux(&captured, &c.q(held[i])))?;
    }
    s.next(phase, &(qp.clone() + c.const_bits(3, 1)))?;
    s.next(running, &(st.clone() | qr.clone()))?;

    // One coefficient per cycle: coef[k] for k = phase, from the held
    // bank, as a select chain over the 8 basis rows.
    let mut row_values: Vec<Sig> = Vec::with_capacity(8);
    for k in 0..8 {
        let mut acc: Option<Sig> = None;
        for (j, h) in held.iter().enumerate() {
            // held[j] holds pixel 7-j.
            let term = c.q(*h) * c.const_fixed(basis(k, 7 - j), basis_fmt());
            acc = Some(match acc {
                None => term,
                Some(a) => a + term,
            });
        }
        let quantised = acc.expect("eight terms").to_fixed(
            dct_fmt(),
            ocapi::Rounding::Nearest,
            ocapi::Overflow::Saturate,
        );
        row_values.push(quantised);
    }
    // Select the row by phase.
    let mut sel = row_values[7].clone();
    for k in (0..7).rev() {
        sel = qp.eq(&c.const_bits(3, k as u64)).mux(&row_values[k], &sel);
    }
    // Quantiser: scale by 2^-quant_shift (exact bit shift at the cast).
    let q_fmt = dct_fmt();
    let quant = (sel * c.const_fixed(1.0 / f64::powi(2.0, quant_shift as i32), basis_fmt()))
        .to_fixed(q_fmt, ocapi::Rounding::Nearest, ocapi::Overflow::Saturate);
    s.drive(coef, &quant)?;
    s.drive(coef_idx, &qp)?;
    s.drive(valid, &qr)?;
    c.finish()
}

/// Builds the compressor as a system.
///
/// # Errors
///
/// Propagates capture errors.
pub fn build_system(quant_shift: u32) -> Result<System, CoreError> {
    let mut sb = System::build("image_compressor");
    let u = sb.add_component("dct", dct8("dct8", quant_shift)?)?;
    sb.input("pixel", SigType::Fixed(pixel_fmt()))?;
    sb.input("start", SigType::Bool)?;
    sb.connect_input("pixel", u, "pixel")?;
    sb.connect_input("start", u, "start")?;
    sb.output("coef", u, "coef")?;
    sb.output("coef_idx", u, "coef_idx")?;
    sb.output("valid", u, "valid")?;
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocapi::{InterpSim, Simulator, Value};
    use ocapi_fixp::{Fix, Overflow, Rounding};

    #[test]
    fn dct_matches_float_reference() {
        let mut sim = InterpSim::new(build_system(0).unwrap()).unwrap();
        let block: Vec<f64> = vec![0.2, -0.1, 0.4, 0.0, -0.3, 0.25, 0.05, -0.2];
        sim.set_input("start", Value::Bool(true)).unwrap();
        for (i, p) in block.iter().enumerate() {
            sim.set_input(
                "pixel",
                Value::Fixed(Fix::from_f64(
                    *p,
                    pixel_fmt(),
                    Rounding::Nearest,
                    Overflow::Saturate,
                )),
            )
            .unwrap();
            sim.step().unwrap();
            if i == 0 {
                sim.set_input("start", Value::Bool(false)).unwrap();
            }
        }
        // The next 8 cycles emit coefficients of the captured block.
        sim.set_input("pixel", Value::Fixed(Fix::zero(pixel_fmt())))
            .unwrap();
        let mut got = Vec::new();
        for _ in 0..8 {
            sim.step().unwrap();
            assert_eq!(sim.output("valid").unwrap(), Value::Bool(true));
            got.push(sim.output("coef").unwrap().as_fixed().unwrap().to_f64());
        }
        for (k, g) in got.iter().enumerate() {
            let expect: f64 = (0..8).map(|j| basis(k, j) * block[j]).sum();
            assert!(
                (g - expect).abs() < 0.05,
                "coef {k}: got {g}, expected {expect}"
            );
        }
    }

    #[test]
    fn quantisation_shrinks_coefficients() {
        fn energy(shift: u32) -> f64 {
            let mut sim = InterpSim::new(build_system(shift).unwrap()).unwrap();
            sim.set_input("start", Value::Bool(true)).unwrap();
            let block = [0.4f64, 0.4, -0.4, -0.4, 0.4, 0.4, -0.4, -0.4];
            for p in block {
                sim.set_input(
                    "pixel",
                    Value::Fixed(Fix::from_f64(
                        p,
                        pixel_fmt(),
                        Rounding::Nearest,
                        Overflow::Saturate,
                    )),
                )
                .unwrap();
                sim.step().unwrap();
                sim.set_input("start", Value::Bool(false)).unwrap();
            }
            let mut e = 0.0;
            for _ in 0..8 {
                sim.step().unwrap();
                let v = sim.output("coef").unwrap().as_fixed().unwrap().to_f64();
                e += v * v;
            }
            e
        }
        let full = energy(0);
        let quartered = energy(2);
        assert!(quartered < full / 4.0, "{quartered} vs {full}");
        assert!(full > 0.01);
    }
}
