//! The upstream cable-modem demonstrator (§7).
//!
//! A transmit chain: self-synchronising scrambler, differential QPSK
//! mapping, and a half-band interpolating pulse shaper producing I/Q
//! samples — the kind of burst-mode upstream PHY the paper's environment
//! was reused for.

use ocapi::{Component, CoreError, SigType, System, Value};
use ocapi_fixp::Format;

/// I/Q sample format.
pub fn iq_fmt() -> Format {
    Format::new(10, 2).expect("static format")
}

/// The scrambler: x¹⁵ + x¹⁴ + 1 (ITU J.83 flavour), bit in → bit out.
///
/// # Errors
///
/// Propagates capture errors.
pub fn scrambler(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let bit = c.input("bit", SigType::Bool)?;
    let en = c.input("en", SigType::Bool)?;
    let out = c.output("out", SigType::Bool)?;
    let lfsr = c.reg_init("lfsr", SigType::Bits(15), Value::bits(15, 0x7fff))?;
    let s = c.sfg("scr")?;
    let q = c.q(lfsr);
    let fb = q.bit(14) ^ q.bit(13);
    let scrambled = c.read(bit) ^ fb.clone();
    let shifted = q.shl(1) | scrambled.to_bits(15);
    s.next(lfsr, &c.read(en).mux(&shifted, &q))?;
    s.drive(out, &scrambled)?;
    c.finish()
}

/// Differential QPSK mapper: consumes two bits per symbol (over two
/// enabled cycles) and emits the rotated I/Q point.
///
/// # Errors
///
/// Propagates capture errors.
pub fn qpsk_mapper(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let bit = c.input("bit", SigType::Bool)?;
    let en = c.input("en", SigType::Bool)?;
    let i_out = c.output("i", SigType::Fixed(iq_fmt()))?;
    let q_out = c.output("q", SigType::Fixed(iq_fmt()))?;
    let valid = c.output("valid", SigType::Bool)?;

    let phase = c.reg("phase", SigType::Bits(2))?;
    let half = c.reg("half", SigType::Bool)?;
    let first = c.reg("first", SigType::Bool)?;

    let s = c.sfg("map")?;
    let env = c.read(en);
    let qb = c.q(half);
    let qf = c.q(first);
    let qp = c.q(phase);

    // Gray-coded phase increment from the bit pair (first, second).
    let b = c.read(bit);
    let inc = qf
        .mux(
            &b.mux(&c.const_bits(2, 2), &c.const_bits(2, 3)),
            &b.mux(&c.const_bits(2, 1), &c.const_bits(2, 0)),
        )
        .named("phase_inc");
    let new_phase = qp.clone() + inc;
    let second = env.clone() & qb.clone();

    s.next(half, &env.mux(&!qb.clone(), &qb))?;
    s.next(first, &env.mux(&qb.mux(&qf, &b), &qf))?;
    s.next(phase, &second.mux(&new_phase, &qp))?;

    // Constellation: phase ∈ {0,1,2,3} → (±0.707, ±0.707).
    let a = std::f64::consts::FRAC_1_SQRT_2;
    let pp = c.const_fixed(a, iq_fmt());
    let pn = c.const_fixed(-a, iq_fmt());
    let ph = new_phase;
    let i_val = (ph.eq(&c.const_bits(2, 0)) | ph.eq(&c.const_bits(2, 3))).mux(&pp, &pn);
    let q_val = (ph.eq(&c.const_bits(2, 0)) | ph.eq(&c.const_bits(2, 1))).mux(&pp, &pn);
    s.drive(i_out, &i_val)?;
    s.drive(q_out, &q_val)?;
    s.drive(valid, &second)?;
    c.finish()
}

/// 2× interpolating half-band shaper on one rail: alternates the held
/// symbol with the average of consecutive symbols.
///
/// # Errors
///
/// Propagates capture errors.
pub fn interpolator(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let x = c.input("x", SigType::Fixed(iq_fmt()))?;
    let load = c.input("load", SigType::Bool)?;
    let y = c.output("y", SigType::Fixed(iq_fmt()))?;
    let cur = c.reg("cur", SigType::Fixed(iq_fmt()))?;
    let prev = c.reg("prev", SigType::Fixed(iq_fmt()))?;
    let ph = c.reg("ph", SigType::Bool)?;
    let s = c.sfg("interp")?;
    let ld = c.read(load);
    let qc = c.q(cur);
    let qp = c.q(prev);
    let qph = c.q(ph);
    s.next(cur, &ld.mux(&c.read(x), &qc))?;
    s.next(prev, &ld.mux(&qc, &qp))?;
    s.next(ph, &!qph.clone())?;
    let half_fmt = Format::new(8, 1).expect("static format");
    let avg = ((qc.clone() + qp) * c.const_fixed(0.5, half_fmt)).to_fixed(
        iq_fmt(),
        ocapi::Rounding::Nearest,
        ocapi::Overflow::Saturate,
    );
    s.drive(y, &qph.mux(&avg, &qc))?;
    c.finish()
}

/// Assembles the upstream transmitter: scrambler → DQPSK mapper → I/Q
/// interpolators.
///
/// # Errors
///
/// Propagates capture errors.
pub fn build_system() -> Result<System, CoreError> {
    let mut sb = System::build("upstream_modem");
    let scr = sb.add_component("scr", scrambler("scrambler")?)?;
    let map = sb.add_component("map", qpsk_mapper("qpsk")?)?;
    let ii = sb.add_component("interp_i", interpolator("interp_i")?)?;
    let iq = sb.add_component("interp_q", interpolator("interp_q")?)?;
    sb.input("bit", SigType::Bool)?;
    sb.input("en", SigType::Bool)?;
    sb.connect_input("bit", scr, "bit")?;
    sb.connect_input("en", scr, "en")?;
    sb.connect_input("en", map, "en")?;
    sb.connect(scr, "out", map, "bit")?;
    sb.connect(map, "i", ii, "x")?;
    sb.connect(map, "q", iq, "x")?;
    sb.connect(map, "valid", ii, "load")?;
    sb.connect(map, "valid", iq, "load")?;
    sb.output("i", ii, "y")?;
    sb.output("q", iq, "y")?;
    sb.output("sym_valid", map, "valid")?;
    sb.output("scrambled", scr, "out")?;
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocapi::{InterpSim, Simulator};

    #[test]
    fn symbols_stay_on_the_constellation() {
        let mut sim = InterpSim::new(build_system().unwrap()).unwrap();
        sim.set_input("en", Value::Bool(true)).unwrap();
        let mut symbols = 0;
        for n in 0..64 {
            sim.set_input("bit", Value::Bool(n % 3 != 0)).unwrap();
            sim.step().unwrap();
            if sim.output("sym_valid").unwrap() == Value::Bool(true) {
                symbols += 1;
            }
            let i = sim.output("i").unwrap().as_fixed().unwrap().to_f64();
            let q = sim.output("q").unwrap().as_fixed().unwrap().to_f64();
            // Interpolated outputs stay inside the unit square.
            assert!(i.abs() <= 1.0 && q.abs() <= 1.0, "({i},{q})");
        }
        assert_eq!(symbols, 32, "one symbol per two enabled bits");
    }

    #[test]
    fn scrambler_output_is_balanced() {
        let mut sim = InterpSim::new(build_system().unwrap()).unwrap();
        sim.set_input("en", Value::Bool(true)).unwrap();
        sim.set_input("bit", Value::Bool(false)).unwrap(); // all-zero input
        let mut ones = 0;
        for _ in 0..512 {
            sim.step().unwrap();
            if sim.output("scrambled").unwrap() == Value::Bool(true) {
                ones += 1;
            }
        }
        // The LFSR whitens the constant input.
        assert!((180..330).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn disabled_chain_freezes() {
        let mut sim = InterpSim::new(build_system().unwrap()).unwrap();
        sim.set_input("en", Value::Bool(false)).unwrap();
        sim.set_input("bit", Value::Bool(true)).unwrap();
        sim.run(10).unwrap();
        assert_eq!(sim.output("sym_valid").unwrap(), Value::Bool(false));
    }
}
