//! HCOR — the DECT header correlator processor (the 6 Kgate design of
//! Table 1).
//!
//! The correlator watches the sliced bit stream for the 16-bit DECT
//! S-field sync word. A 16-stage shift register holds the last received
//! bits; every cycle the agreement count against the sync word is formed
//! by a balanced adder tree and compared to a programmable threshold.
//! A Mealy FSM (searching → locked) freezes the sync position when the
//! registered correlation first crosses the threshold — the same
//! control/data split as every component in the environment.

use ocapi::{Component, CoreError, InterpSim, SigType, Simulator, System, Value};

/// The 16-bit DECT S-field sync word (RFP transmissions), LSB = oldest.
pub const SYNC_WORD: u16 = 0xe98a;

/// Number of correlator taps.
pub const TAPS: usize = 16;

/// Builds the HCOR component.
///
/// Ports: `bit_in: Bool`, `enable: Bool`, `threshold: Bits(5)` →
/// `corr: Bits(5)` (current agreement count), `detect: Bool`,
/// `sync_pos: Bits(16)` (bit counter value frozen at lock).
///
/// # Errors
///
/// Propagates capture errors (none in practice — the description is
/// static).
pub fn build_component() -> Result<Component, CoreError> {
    let c = Component::build("hcor");
    let bit_in = c.input("bit_in", SigType::Bool)?;
    let enable = c.input("enable", SigType::Bool)?;
    let threshold = c.input("threshold", SigType::Bits(5))?;
    let corr_out = c.output("corr", SigType::Bits(5))?;
    let detect_out = c.output("detect", SigType::Bool)?;
    let pos_out = c.output("sync_pos", SigType::Bits(16))?;

    // Shift register of the last TAPS bits; taps[0] is the newest.
    let taps: Vec<_> = (0..TAPS)
        .map(|i| c.reg(&format!("tap{i}"), SigType::Bool))
        .collect::<Result<_, _>>()?;
    let corr_reg = c.reg("corr_reg", SigType::Bits(5))?;
    let pos = c.reg("pos", SigType::Bits(16))?;
    let lock_pos = c.reg("lock_pos", SigType::Bits(16))?;

    // The correlation of the *shifted* window (including the new bit).
    let window: Vec<_> = std::iter::once(c.read(bit_in))
        .chain((0..TAPS - 1).map(|i| c.q(taps[i])))
        .collect();
    let agree: Vec<_> = window
        .iter()
        .enumerate()
        .map(|(i, w)| {
            // Tap i holds the bit received i cycles ago; the sync word
            // transmits MSB first, so tap i compares against bit i.
            let bit = (SYNC_WORD >> i) & 1 == 1;
            let m = if bit { w.clone() } else { !w };
            m.to_bits(5)
        })
        .collect();
    let count = agree
        .iter()
        .skip(1)
        .fold(agree[0].clone(), |acc, a| acc + a.clone())
        .named("agreement");

    let shift = c.sfg("shift")?;
    shift.uses(bit_in).uses(enable).uses(threshold);
    for i in (1..TAPS).rev() {
        shift.next(taps[i], &c.q(taps[i - 1]))?;
    }
    shift.next(taps[0], &c.read(bit_in))?;
    shift.next(corr_reg, &count)?;
    let pos_next = c.q(pos) + c.const_bits(16, 1);
    shift.next(pos, &pos_next)?;
    // Remember where the window crossed the threshold.
    let hit = count.ge(&c.read(threshold).to_bits(5));
    shift.next(lock_pos, &hit.mux(&c.q(pos), &c.q(lock_pos)))?;
    shift.drive(corr_out, &count)?;
    shift.drive(detect_out, &hit)?;
    shift.drive(pos_out, &c.q(lock_pos))?;

    let idle = c.sfg("idle")?;
    idle.drive(corr_out, &c.q(corr_reg))?;
    idle.drive(detect_out, &c.const_bool(false))?;
    idle.drive(pos_out, &c.q(lock_pos))?;

    let locked_sfg = c.sfg("locked")?;
    locked_sfg.drive(corr_out, &c.q(corr_reg))?;
    locked_sfg.drive(detect_out, &c.const_bool(true))?;
    locked_sfg.drive(pos_out, &c.q(lock_pos))?;

    // FSM: search until the registered correlation crosses the
    // (registered-input) threshold, then lock.
    let en = c.read(enable);
    let got_sync = c.q(corr_reg).ge(&c.read(threshold).to_bits(5));
    let f = c.fsm()?;
    let search = f.initial("search")?;
    let locked = f.state("locked")?;
    f.from(search)
        .when(&got_sync)
        .run(locked_sfg.id())
        .to(locked)?;
    f.from(search).when(&en).run(shift.id()).to(search)?;
    f.from(search).always().run(idle.id()).to(search)?;
    f.from(locked).always().run(locked_sfg.id()).to(locked)?;
    c.finish()
}

/// Builds HCOR as a standalone system with primary I/O.
///
/// # Errors
///
/// Propagates capture errors.
pub fn build_system() -> Result<System, CoreError> {
    let mut sb = System::build("hcor");
    let u = sb.add_component("hcor0", build_component()?)?;
    sb.input("bit_in", SigType::Bool)?;
    sb.input("enable", SigType::Bool)?;
    sb.input("threshold", SigType::Bits(5))?;
    sb.connect_input("bit_in", u, "bit_in")?;
    sb.connect_input("enable", u, "enable")?;
    sb.connect_input("threshold", u, "threshold")?;
    sb.output("corr", u, "corr")?;
    sb.output("detect", u, "detect")?;
    sb.output("sync_pos", u, "sync_pos")?;
    sb.finish()
}

/// Drives a bit stream into an HCOR simulator, returning the cycle at
/// which `detect` first went high, if any.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_detection(
    sim: &mut dyn Simulator,
    bits: &[bool],
    threshold: u64,
) -> Result<Option<u64>, CoreError> {
    sim.set_input("enable", Value::Bool(true))?;
    sim.set_input("threshold", Value::bits(5, threshold))?;
    let mut first = None;
    for b in bits {
        sim.set_input("bit_in", Value::Bool(*b))?;
        sim.step()?;
        if first.is_none() && sim.output("detect")? == Value::Bool(true) {
            first = Some(sim.cycle() - 1);
        }
    }
    Ok(first)
}

/// The stimulus used by the Table 1 benchmarks: noise bits with the sync
/// word embedded at a known position.
pub fn test_pattern(noise_len: usize, seed: u64) -> Vec<bool> {
    let mut bits = Vec::with_capacity(noise_len + TAPS + noise_len);
    let mut s = seed | 1;
    let mut rnd = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 62) & 1 == 1
    };
    for _ in 0..noise_len {
        bits.push(rnd());
    }
    for i in (0..TAPS).rev() {
        bits.push((SYNC_WORD >> i) & 1 == 1);
    }
    for _ in 0..noise_len {
        bits.push(rnd());
    }
    bits
}

/// Sanity entry point used by doctests and the quickstart example.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn detect_cycle_interp() -> Result<Option<u64>, CoreError> {
    let mut sim = InterpSim::new(build_system()?)?;
    run_detection(&mut sim, &test_pattern(40, 7), 16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocapi::{CompiledSim, InterpSim};

    #[test]
    fn detects_exact_sync_word() {
        let bits = test_pattern(40, 123);
        let mut sim = InterpSim::new(build_system().unwrap()).unwrap();
        let hit = run_detection(&mut sim, &bits, 16).unwrap();
        // The full sync word has entered the window 40+16 bits in; detect
        // is combinational in the same cycle.
        assert_eq!(hit, Some(40 + TAPS as u64 - 1));
    }

    #[test]
    fn locked_state_freezes_position() {
        let bits = test_pattern(20, 9);
        let mut sim = InterpSim::new(build_system().unwrap()).unwrap();
        run_detection(&mut sim, &bits, 16).unwrap();
        assert_eq!(sim.state_name("hcor0").unwrap(), "locked");
        let pos = sim.output("sync_pos").unwrap();
        // Position counter froze one cycle after the hit.
        assert_eq!(pos, Value::bits(16, 20 + TAPS as u64 - 1));
        // Further bits do not change it.
        sim.set_input("bit_in", Value::Bool(true)).unwrap();
        sim.run(10).unwrap();
        assert_eq!(sim.output("sync_pos").unwrap(), pos);
        assert_eq!(sim.output("detect").unwrap(), Value::Bool(true));
    }

    #[test]
    fn lower_threshold_tolerates_bit_errors() {
        let mut bits = test_pattern(30, 5);
        bits[30 + 3] = !bits[30 + 3]; // corrupt one sync bit
        let mut strict = InterpSim::new(build_system().unwrap()).unwrap();
        assert_eq!(run_detection(&mut strict, &bits, 16).unwrap(), None);
        let mut lax = InterpSim::new(build_system().unwrap()).unwrap();
        assert_eq!(
            run_detection(&mut lax, &bits, 15).unwrap(),
            Some(30 + TAPS as u64 - 1)
        );
    }

    #[test]
    fn compiled_matches_interp() {
        let bits = test_pattern(25, 42);
        let mut a = InterpSim::new(build_system().unwrap()).unwrap();
        let mut b = CompiledSim::new(build_system().unwrap()).unwrap();
        assert_eq!(
            run_detection(&mut a, &bits, 14).unwrap(),
            run_detection(&mut b, &bits, 14).unwrap()
        );
    }

    #[test]
    fn disabled_correlator_idles() {
        let mut sim = InterpSim::new(build_system().unwrap()).unwrap();
        sim.set_input("enable", Value::Bool(false)).unwrap();
        sim.set_input("threshold", Value::bits(5, 16)).unwrap();
        sim.set_input("bit_in", Value::Bool(true)).unwrap();
        sim.run(30).unwrap();
        assert_eq!(sim.output("detect").unwrap(), Value::Bool(false));
        assert_eq!(sim.state_name("hcor0").unwrap(), "search");
    }
}
