//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * interpreted vs compiled simulation across design size (§5),
//! * fixed-point quantisation vs bit-vector simulation (§3),
//! * three-phase cycle-scheduler overhead vs untimed chain length (§4),
//! * dynamic data-flow scheduling vs a precomputed static SDF schedule.
//!
//! A plain timing harness (`cargo bench -p ocapi-bench --bench
//! ablations`): no registry dependencies, median of repeated runs.

use ocapi::dataflow::{DataflowGraph, FnActor, Sink, Source};
use ocapi::{
    CompiledSim, Component, FnBlock, InterpSim, PortDecl, SigType, Simulator, System, Value,
};
use ocapi_bench::timed;
use ocapi_fixp::{BitVec, Fix, Format, Overflow, Rounding};

const REPS: usize = 10;

fn report<T>(label: &str, mut f: impl FnMut() -> T) {
    f(); // warm-up
    let mut secs: Vec<f64> = (0..REPS).map(|_| timed(&mut f).1).collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    println!("{label:<40} {:>10.3} ms/run", secs[secs.len() / 2] * 1e3);
}

/// A chain of `n` accumulate-and-forward components.
fn chain_system(n: usize) -> System {
    let mut sb = System::build("chain");
    let mut prev = None;
    for i in 0..n {
        let c = Component::build(&format!("acc{i}"));
        let x = c.input("x", SigType::Bits(16)).expect("in");
        let o = c.output("o", SigType::Bits(16)).expect("out");
        let r = c.reg("r", SigType::Bits(16)).expect("reg");
        let s = c.sfg("s").expect("sfg");
        let q = c.q(r);
        let sum = q.clone() + c.read(x);
        s.next(r, &sum).expect("next");
        s.drive(o, &q).expect("drive");
        let comp = c.finish().expect("finish");
        let id = sb.add_component(&format!("u{i}"), comp).expect("add");
        match prev {
            None => {
                sb.input("x", SigType::Bits(16)).expect("pi");
                sb.connect_input("x", id, "x").expect("conn");
            }
            Some(p) => {
                sb.connect(p, "o", id, "x").expect("conn");
            }
        }
        prev = Some(id);
    }
    sb.output("y", prev.expect("non-empty"), "o").expect("po");
    sb.finish().expect("system")
}

fn interp_vs_compiled_scaling() {
    for n in [4usize, 16, 64] {
        let mut interp = InterpSim::new(chain_system(n)).expect("sim");
        interp.set_input("x", Value::bits(16, 3)).expect("set");
        report(&format!("interpreted/{n}"), || {
            interp.run(256).expect("run")
        });
        let mut compiled = CompiledSim::new(chain_system(n)).expect("sim");
        compiled.set_input("x", Value::bits(16, 3)).expect("set");
        report(&format!("compiled/{n}"), || compiled.run(256).expect("run"));
    }
}

fn fixp_vs_bitvec() {
    // A 16-tap MAC at 12-bit precision: the paper's argument for
    // simulating quantisation instead of bit vectors.
    let fmt = Format::new(12, 4).expect("fmt");
    let coefs_fix: Vec<Fix> = (0..16)
        .map(|i| {
            Fix::from_f64(
                0.05 * i as f64 - 0.3,
                fmt,
                Rounding::Nearest,
                Overflow::Saturate,
            )
        })
        .collect();
    let xs_fix: Vec<Fix> = (0..1024)
        .map(|i| {
            Fix::from_f64(
                ((i * 37) % 17) as f64 / 9.0 - 1.0,
                fmt,
                Rounding::Nearest,
                Overflow::Saturate,
            )
        })
        .collect();
    let coefs_bv: Vec<BitVec> = coefs_fix
        .iter()
        .map(|f| BitVec::from_i64(f.mantissa(), 12).expect("bv"))
        .collect();
    let xs_bv: Vec<BitVec> = xs_fix
        .iter()
        .map(|f| BitVec::from_i64(f.mantissa(), 12).expect("bv"))
        .collect();

    report("fixp_vs_bitvec/quantisation_fix", || {
        let mut acc = Fix::zero(Format::new(24, 10).expect("fmt"));
        for w in xs_fix.windows(16) {
            for (x, co) in w.iter().zip(&coefs_fix) {
                acc = (acc + *x * *co).cast(
                    Format::new(24, 10).expect("fmt"),
                    Rounding::Truncate,
                    Overflow::Wrap,
                );
            }
        }
        acc
    });
    report("fixp_vs_bitvec/bit_vector", || {
        let mut acc = BitVec::zeros(24);
        for w in xs_bv.windows(16) {
            for (x, co) in w.iter().zip(&coefs_bv) {
                let p = x.shift_add_mul(co).expect("mul");
                acc = acc.ripple_add(&p).expect("add");
            }
        }
        acc
    });
}

fn scheduler_phase_overhead() {
    // A loop of timed + untimed components of growing length: the
    // evaluation phase must order the untimed firings data-dependently.
    fn looped(n_untimed: usize) -> System {
        let mut sb = System::build("loopy");
        let head = {
            let cb = Component::build("head");
            let i = cb.input("i", SigType::Bits(16)).expect("in");
            let o = cb.output("o", SigType::Bits(16)).expect("out");
            let r = cb.reg("r", SigType::Bits(16)).expect("reg");
            let s = cb.sfg("s").expect("sfg");
            s.drive(o, &cb.q(r)).expect("drive");
            s.next(r, &(cb.read(i) + cb.const_bits(16, 1)))
                .expect("next");
            cb.finish().expect("finish")
        };
        let h = sb.add_component("head", head).expect("add");
        let mut prev = h;
        let mut prev_port = "o";
        for k in 0..n_untimed {
            let blk = FnBlock::new(
                &format!("u{k}"),
                vec![PortDecl {
                    name: "a".into(),
                    ty: SigType::Bits(16),
                }],
                vec![PortDecl {
                    name: "y".into(),
                    ty: SigType::Bits(16),
                }],
                |i, o| o[0] = Value::bits(16, i[0].as_bits().expect("bits").wrapping_mul(3)),
            );
            let b = sb.add_block(Box::new(blk)).expect("add");
            sb.connect(prev, prev_port, b, "a").expect("conn");
            prev = b;
            prev_port = "y";
        }
        sb.connect(prev, prev_port, h, "i").expect("conn");
        sb.output("probe", h, "o").expect("po");
        sb.finish().expect("system")
    }
    for n in [1usize, 8, 32] {
        let mut sim = InterpSim::new(looped(n)).expect("sim");
        report(&format!("scheduler/untimed_chain/{n}"), || {
            sim.run(64).expect("run")
        });
    }
}

fn dataflow_scheduling() {
    fn graph(tokens: usize) -> DataflowGraph {
        let mut g = DataflowGraph::new();
        let src = g.add(Box::new(Source::new(
            "src",
            (0..tokens as u64).map(|i| Value::bits(16, i & 0xffff)),
        )));
        let f1 = g.add(Box::new(FnActor::new("f1", 1, 1, |i, o| {
            o.push(Value::bits(
                16,
                i[0].as_bits().expect("bits").wrapping_mul(5),
            ))
        })));
        let f2 = g.add(Box::new(FnActor::new("f2", 1, 1, |i, o| {
            o.push(Value::bits(16, i[0].as_bits().expect("bits") ^ 0xaaaa))
        })));
        let sink = g.add(Box::new(Sink::new("sink")));
        g.connect(src, 0, f1, 0, &[]).expect("conn");
        g.connect(f1, 0, f2, 0, &[]).expect("conn");
        g.connect(f2, 0, sink, 0, &[]).expect("conn");
        g
    }
    report("dataflow/dynamic_run_4096_tokens", || {
        let mut dg = graph(4096);
        dg.run(u64::MAX).expect("run")
    });
    report("dataflow/static_schedule_construction", || {
        graph(16).static_schedule().expect("schedule")
    });
}

fn main() {
    println!("ablations: median of {REPS} runs\n");
    interp_vs_compiled_scaling();
    fixp_vs_bitvec();
    scheduler_phase_overhead();
    dataflow_scheduling();
}
