//! Table 1, DECT rows: simulation speed of the four paradigms on the
//! complete transceiver.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ocapi::{CompiledSim, InterpSim};
use ocapi_designs::dect::burst::{generate, Burst, BurstConfig};
use ocapi_designs::dect::transceiver::{build_system, run_burst, TransceiverConfig};
use ocapi_gatesim::GateSystemSim;
use ocapi_rtl::RtlSystemSim;
use ocapi_synth::SynthOptions;

fn burst(payload: usize) -> Burst {
    generate(&BurstConfig {
        payload_len: payload,
        ..BurstConfig::default()
    })
}

fn bench(c: &mut Criterion) {
    let cfg = TransceiverConfig::default();
    let mut g = c.benchmark_group("table1_dect");
    g.sample_size(10);

    let b96 = burst(96);
    g.throughput(Throughput::Elements((b96.samples.len() * 4) as u64));

    let mut interp = InterpSim::new(build_system(&cfg).expect("build")).expect("sim");
    g.bench_function("interpreted_obj", |b| {
        b.iter(|| run_burst(&mut interp, &b96, None).expect("burst"))
    });

    let mut compiled = CompiledSim::new(build_system(&cfg).expect("build")).expect("sim");
    g.bench_function("compiled", |b| {
        b.iter(|| run_burst(&mut compiled, &b96, None).expect("burst"))
    });

    let mut rtl = RtlSystemSim::new(build_system(&cfg).expect("build")).expect("sim");
    g.bench_function("rtl_event_driven", |b| {
        b.iter(|| run_burst(&mut rtl, &b96, None).expect("burst"))
    });

    // Netlist simulation is orders of magnitude slower; use a small burst.
    let b8 = burst(8);
    let mut gates =
        GateSystemSim::new(build_system(&cfg).expect("build"), &SynthOptions::default())
            .expect("sim");
    g.throughput(Throughput::Elements((b8.samples.len() * 4) as u64));
    g.bench_function("gate_netlist", |b| {
        b.iter(|| run_burst(&mut gates, &b8, None).expect("burst"))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
