//! Table 1, DECT rows: simulation speed of the four paradigms on the
//! complete transceiver.
//!
//! A plain timing harness (`cargo bench -p ocapi-bench --bench
//! table1_dect`): no registry dependencies, median of repeated runs.

use ocapi::{CompiledSim, InterpSim, Simulator};
use ocapi_bench::timed;
use ocapi_designs::dect::burst::{generate, Burst, BurstConfig};
use ocapi_designs::dect::transceiver::{build_system, run_burst, TransceiverConfig};
use ocapi_gatesim::GateSystemSim;
use ocapi_rtl::RtlSystemSim;
use ocapi_synth::SynthOptions;

const REPS: usize = 10;

fn burst(payload: usize) -> Burst {
    generate(&BurstConfig {
        payload_len: payload,
        ..BurstConfig::default()
    })
}

fn report(label: &str, sim: &mut dyn Simulator, b: &Burst) {
    run_burst(sim, b, None).expect("burst"); // warm-up
    let mut secs: Vec<f64> = (0..REPS)
        .map(|_| timed(|| run_burst(sim, b, None).expect("burst")).1)
        .collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = secs[secs.len() / 2];
    let cycles = (b.samples.len() * 4) as f64;
    println!(
        "{label:<18} {:>10.3} ms/burst {:>12.0} cycles/s",
        median * 1e3,
        cycles / median
    );
}

fn main() {
    let cfg = TransceiverConfig::default();
    println!("table1_dect: median of {REPS} runs\n");

    let b96 = burst(96);
    let mut interp = InterpSim::new(build_system(&cfg).expect("build")).expect("sim");
    report("interpreted_obj", &mut interp, &b96);

    let mut compiled = CompiledSim::new(build_system(&cfg).expect("build")).expect("sim");
    report("compiled", &mut compiled, &b96);

    let mut rtl = RtlSystemSim::new(build_system(&cfg).expect("build")).expect("sim");
    report("rtl_event_driven", &mut rtl, &b96);

    // Netlist simulation is orders of magnitude slower; use a small burst.
    let b8 = burst(8);
    let mut gates =
        GateSystemSim::new(build_system(&cfg).expect("build"), &SynthOptions::default())
            .expect("sim");
    report("gate_netlist", &mut gates, &b8);
}
