//! Synthesis-flow benchmarks: datapath synthesis with and without
//! operator sharing, controller minimisation, and HDL generation — the
//! run-time side of the paper's §6 ("run times less than 15 minutes even
//! for the most complex … datapath").

use criterion::{criterion_group, criterion_main, Criterion};
use ocapi_bench::padded_sequencer;
use ocapi_designs::dect::transceiver::{build_system, TransceiverConfig};
use ocapi_designs::hcor;
use ocapi_hdl::{verilog, vhdl};
use ocapi_synth::{synthesize, SynthOptions};

fn bench(c: &mut Criterion) {
    let sys = build_system(&TransceiverConfig::default()).expect("build");
    let mac = sys
        .timed
        .iter()
        .find(|t| t.name == "dp_mac0")
        .expect("mac exists")
        .comp
        .clone();
    let hcor_comp = hcor::build_component().expect("build");

    let mut g = c.benchmark_group("synthesis");
    g.sample_size(20);
    g.bench_function("datapath_mac_shared", |b| {
        b.iter(|| synthesize(&mac, &SynthOptions::default()).expect("synthesis"))
    });
    g.bench_function("datapath_mac_flat", |b| {
        b.iter(|| {
            synthesize(
                &mac,
                &SynthOptions {
                    share_operators: false,
                    ..SynthOptions::default()
                },
            )
            .expect("synthesis")
        })
    });
    g.bench_function("controller_hcor_minimized", |b| {
        b.iter(|| synthesize(&hcor_comp, &SynthOptions::default()).expect("synthesis"))
    });
    g.bench_function("controller_hcor_structural", |b| {
        b.iter(|| {
            synthesize(
                &hcor_comp,
                &SynthOptions {
                    minimize_controller: false,
                    ..SynthOptions::default()
                },
            )
            .expect("synthesis")
        })
    });
    g.bench_function("vhdl_generation_dect", |b| {
        b.iter(|| vhdl::system_source(&sys).expect("codegen"))
    });
    g.bench_function("verilog_generation_dect", |b| {
        b.iter(|| verilog::system_source(&sys).expect("codegen"))
    });

    // Back-end passes on the synthesized MAC netlist.
    let mac_net = synthesize(&mac, &SynthOptions::default()).expect("synthesis");
    g.bench_function("techmap_nand_inv_mac", |b| {
        b.iter(|| {
            let mut n = mac_net.netlist.clone();
            ocapi_synth::techmap::to_nand_inv(&mut n);
            ocapi_synth::opt::optimize(&mut n);
            n
        })
    });
    g.bench_function("netlist_emit_parse_roundtrip_mac", |b| {
        b.iter(|| {
            let src = ocapi_synth::emit::verilog_netlist("mac", &mac_net.netlist);
            ocapi_synth::parse::verilog_netlist(&src).expect("parse")
        })
    });
    g.bench_function("fsm_minimize_padded_seq", |b| {
        let comp = padded_sequencer(16).expect("build");
        let fsm = comp.fsm.clone().expect("fsm");
        b.iter(|| ocapi_synth::fsm_min::minimize(&fsm))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
