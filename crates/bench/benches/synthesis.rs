//! Synthesis-flow benchmarks: datapath synthesis with and without
//! operator sharing, controller minimisation, and HDL generation — the
//! run-time side of the paper's §6 ("run times less than 15 minutes even
//! for the most complex … datapath").
//!
//! A plain timing harness (`cargo bench -p ocapi-bench --bench
//! synthesis`): no registry dependencies, median of repeated runs.

use ocapi_bench::{padded_sequencer, timed};
use ocapi_designs::dect::transceiver::{build_system, TransceiverConfig};
use ocapi_designs::hcor;
use ocapi_hdl::{verilog, vhdl};
use ocapi_synth::{synthesize, SynthOptions};

const REPS: usize = 20;

fn report<T>(label: &str, mut f: impl FnMut() -> T) {
    f(); // warm-up
    let mut secs: Vec<f64> = (0..REPS).map(|_| timed(&mut f).1).collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    println!("{label:<32} {:>10.3} ms/run", secs[secs.len() / 2] * 1e3);
}

fn main() {
    let sys = build_system(&TransceiverConfig::default()).expect("build");
    let mac = sys
        .timed
        .iter()
        .find(|t| t.name == "dp_mac0")
        .expect("mac exists")
        .comp
        .clone();
    let hcor_comp = hcor::build_component().expect("build");

    println!("synthesis: median of {REPS} runs\n");

    report("datapath_mac_shared", || {
        synthesize(&mac, &SynthOptions::default()).expect("synthesis")
    });
    report("datapath_mac_flat", || {
        synthesize(
            &mac,
            &SynthOptions {
                share_operators: false,
                ..SynthOptions::default()
            },
        )
        .expect("synthesis")
    });
    report("controller_hcor_minimized", || {
        synthesize(&hcor_comp, &SynthOptions::default()).expect("synthesis")
    });
    report("controller_hcor_structural", || {
        synthesize(
            &hcor_comp,
            &SynthOptions {
                minimize_controller: false,
                ..SynthOptions::default()
            },
        )
        .expect("synthesis")
    });
    report("vhdl_generation_dect", || {
        vhdl::system_source(&sys).expect("codegen")
    });
    report("verilog_generation_dect", || {
        verilog::system_source(&sys).expect("codegen")
    });

    // Back-end passes on the synthesized MAC netlist.
    let mac_net = synthesize(&mac, &SynthOptions::default()).expect("synthesis");
    report("techmap_nand_inv_mac", || {
        let mut n = mac_net.netlist.clone();
        ocapi_synth::techmap::to_nand_inv(&mut n);
        ocapi_synth::opt::optimize(&mut n);
        n
    });
    report("netlist_emit_parse_roundtrip_mac", || {
        let src = ocapi_synth::emit::verilog_netlist("mac", &mac_net.netlist);
        ocapi_synth::parse::verilog_netlist(&src).expect("parse")
    });
    let comp = padded_sequencer(16).expect("build");
    let fsm = comp.fsm.clone().expect("fsm");
    report("fsm_minimize_padded_seq", || {
        ocapi_synth::fsm_min::minimize(&fsm)
    });
}
