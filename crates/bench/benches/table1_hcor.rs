//! Table 1, HCOR rows: simulation speed of the four paradigms on the
//! header correlator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ocapi::{CompiledSim, InterpSim, Simulator, Value};
use ocapi_designs::hcor;
use ocapi_gatesim::GateSystemSim;
use ocapi_rtl::RtlSystemSim;
use ocapi_synth::SynthOptions;

const CYCLES: u64 = 512;

fn drive(sim: &mut dyn Simulator, bits: &[bool]) {
    sim.set_input("enable", Value::Bool(true)).expect("set");
    sim.set_input("threshold", Value::bits(5, 17)).expect("set");
    for b in bits {
        sim.set_input("bit_in", Value::Bool(*b)).expect("set");
        sim.step().expect("step");
    }
}

fn bench(c: &mut Criterion) {
    let bits = hcor::test_pattern((CYCLES as usize - 32) / 2, 5);
    let mut g = c.benchmark_group("table1_hcor");
    g.throughput(Throughput::Elements(bits.len() as u64));
    g.sample_size(20);

    let mut interp = InterpSim::new(hcor::build_system().expect("build")).expect("sim");
    g.bench_function("interpreted_obj", |b| b.iter(|| drive(&mut interp, &bits)));

    let mut compiled = CompiledSim::new(hcor::build_system().expect("build")).expect("sim");
    g.bench_function("compiled", |b| b.iter(|| drive(&mut compiled, &bits)));

    let mut rtl = RtlSystemSim::new(hcor::build_system().expect("build")).expect("sim");
    g.bench_function("rtl_event_driven", |b| b.iter(|| drive(&mut rtl, &bits)));

    let mut gates = GateSystemSim::new(
        hcor::build_system().expect("build"),
        &SynthOptions::default(),
    )
    .expect("sim");
    g.bench_function("gate_netlist", |b| b.iter(|| drive(&mut gates, &bits)));

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
