//! Table 1, HCOR rows: simulation speed of the four paradigms on the
//! header correlator.
//!
//! A plain timing harness (`cargo bench -p ocapi-bench --bench
//! table1_hcor`): no registry dependencies, median of repeated runs.

use ocapi::{CompiledSim, InterpSim, Simulator, Value};
use ocapi_bench::timed;
use ocapi_designs::hcor;
use ocapi_gatesim::GateSystemSim;
use ocapi_rtl::RtlSystemSim;
use ocapi_synth::SynthOptions;

const CYCLES: u64 = 512;
const REPS: usize = 20;

fn drive(sim: &mut dyn Simulator, bits: &[bool]) {
    sim.set_input("enable", Value::Bool(true)).expect("set");
    sim.set_input("threshold", Value::bits(5, 17)).expect("set");
    for b in bits {
        sim.set_input("bit_in", Value::Bool(*b)).expect("set");
        sim.step().expect("step");
    }
}

fn report(label: &str, sim: &mut dyn Simulator, bits: &[bool]) {
    drive(sim, bits); // warm-up
    let mut secs: Vec<f64> = (0..REPS).map(|_| timed(|| drive(sim, bits)).1).collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = secs[secs.len() / 2];
    println!(
        "{label:<18} {:>10.3} ms/run {:>12.0} cycles/s",
        median * 1e3,
        bits.len() as f64 / median
    );
}

fn main() {
    let bits = hcor::test_pattern((CYCLES as usize - 32) / 2, 5);
    println!(
        "table1_hcor: {} cycles per run, median of {REPS} runs\n",
        bits.len()
    );

    let mut interp = InterpSim::new(hcor::build_system().expect("build")).expect("sim");
    report("interpreted_obj", &mut interp, &bits);

    let mut compiled = CompiledSim::new(hcor::build_system().expect("build")).expect("sim");
    report("compiled", &mut compiled, &bits);

    let mut rtl = RtlSystemSim::new(hcor::build_system().expect("build")).expect("sim");
    report("rtl_event_driven", &mut rtl, &bits);

    let mut gates = GateSystemSim::new(
        hcor::build_system().expect("build"),
        &SynthOptions::default(),
    )
    .expect("sim");
    report("gate_netlist", &mut gates, &bits);
}
