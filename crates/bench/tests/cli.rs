//! The shared benchmark CLI: parsing contract for every bin, plus
//! thread-count invariance of the sharded BER measurement (the property
//! the CI determinism job checks end-to-end on the built binaries).

use ocapi::{CompiledTape, ExecEngine, OptLevel, ParConfig};
use ocapi_bench::ber::{
    measure, measure_batched, measure_with_faults, measure_with_faults_batched,
};
use ocapi_bench::{parse_arg_list, BenchArgs, FaultEngine, Robust};
use ocapi_designs::dect::transceiver::{build_system, TransceiverConfig};

fn argv(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| (*s).to_owned()).collect()
}

#[test]
fn defaults_are_one_thread_full_workload() {
    let a = parse_arg_list("bin", &[]).expect("defaults parse");
    assert_eq!(a, BenchArgs::defaults("bin"));
    assert_eq!(a.threads, 1);
    assert!(!a.quick);
    assert_eq!(a.json, None);
    assert_eq!(a.perf_json, None);
    assert_eq!(a.profile_json, None);
    assert_eq!(a.opt, 2, "full tape optimization by default");
    assert_eq!(a.opt_level(), OptLevel::Full);
    assert_eq!(a.lanes, 1, "scalar-equivalent batch width by default");
}

#[test]
fn lanes_flag_parses_both_spellings() {
    for spelling in [argv(&["--lanes", "8"]), argv(&["--lanes=8"])] {
        let a = parse_arg_list("bin", &spelling).expect("parse");
        assert_eq!(a.lanes, 8, "{spelling:?}");
    }
}

#[test]
fn malformed_lane_counts_are_errors() {
    for bad in ["0", "-1", "eight", "", "2.0"] {
        let msg = parse_arg_list("bin", &argv(&["--lanes", bad]))
            .expect_err(&format!("--lanes {bad} must be rejected"));
        assert!(msg.contains("--lanes"), "message names the flag: {msg}");
        assert!(parse_arg_list("bin", &argv(&[&format!("--lanes={bad}")])).is_err());
    }
    assert!(parse_arg_list("bin", &argv(&["--lanes"])).is_err());
}

#[test]
fn flags_parse_in_any_order() {
    let a = parse_arg_list(
        "bin",
        &argv(&[
            "--quick",
            "-t",
            "4",
            "--json",
            "r.json",
            "--perf-json",
            "p.json",
            "--profile-json",
            "prof.json",
        ]),
    )
    .expect("parse");
    assert_eq!(a.threads, 4);
    assert!(a.quick);
    assert_eq!(a.json.as_deref(), Some("r.json"));
    assert_eq!(a.perf_json.as_deref(), Some("p.json"));
    assert_eq!(a.profile_json.as_deref(), Some("prof.json"));
    assert_eq!(a.pool().threads(), 4);
}

#[test]
fn unknown_flags_and_bad_values_are_errors() {
    assert!(parse_arg_list("bin", &argv(&["--bogus"])).is_err());
    assert!(parse_arg_list("bin", &argv(&["stray"])).is_err());
    assert!(parse_arg_list("bin", &argv(&["--threads"])).is_err());
    assert!(parse_arg_list("bin", &argv(&["--threads", "zero"])).is_err());
    assert!(parse_arg_list("bin", &argv(&["--threads", "0"])).is_err());
    assert!(parse_arg_list("bin", &argv(&["--json"])).is_err());
    assert!(parse_arg_list("bin", &argv(&["--profile-json"])).is_err());
    // `--help` uses the empty-message sentinel, distinct from errors.
    assert_eq!(
        parse_arg_list("bin", &argv(&["--help"])).unwrap_err(),
        String::new()
    );
}

#[test]
fn fault_engine_flag_parses_both_spellings_and_rejects_junk() {
    let a = parse_arg_list("bin", &[]).expect("defaults parse");
    assert_eq!(a.fault_engine, FaultEngine::Packed, "packed by default");
    for (spelling, want) in [
        (argv(&["--fault-engine", "scalar"]), FaultEngine::Scalar),
        (argv(&["--fault-engine=scalar"]), FaultEngine::Scalar),
        (argv(&["--fault-engine", "packed"]), FaultEngine::Packed),
        (argv(&["--fault-engine=packed"]), FaultEngine::Packed),
    ] {
        let a = parse_arg_list("bin", &spelling).expect("parse");
        assert_eq!(a.fault_engine, want, "{spelling:?}");
        assert_eq!(a.fault_engine.as_str(), want.as_str());
    }
    for bad in ["", "both", "PACKED", "64"] {
        let msg = parse_arg_list("bin", &argv(&["--fault-engine", bad]))
            .expect_err(&format!("--fault-engine {bad} must be rejected"));
        assert!(msg.contains("--fault-engine"), "names the flag: {msg}");
    }
    assert!(parse_arg_list("bin", &argv(&["--fault-engine"])).is_err());
}

#[test]
fn engine_flag_parses_both_spellings_and_rejects_junk() {
    let a = parse_arg_list("bin", &[]).expect("defaults parse");
    assert_eq!(a.engine, ExecEngine::Compiled, "compiled by default");
    for (spelling, want) in [
        (argv(&["--engine", "interp"]), ExecEngine::Interp),
        (argv(&["--engine=interp"]), ExecEngine::Interp),
        (argv(&["--engine", "compiled"]), ExecEngine::Compiled),
        (argv(&["--engine=compiled"]), ExecEngine::Compiled),
        (argv(&["--engine", "fused"]), ExecEngine::Fused),
        (argv(&["--engine=fused"]), ExecEngine::Fused),
    ] {
        let a = parse_arg_list("bin", &spelling).expect("parse");
        assert_eq!(a.engine, want, "{spelling:?}");
        assert_eq!(a.engine.as_str(), want.as_str());
    }
    for bad in ["", "batched", "FUSED", "jit"] {
        let msg = parse_arg_list("bin", &argv(&["--engine", bad]))
            .expect_err(&format!("--engine {bad} must be rejected"));
        assert!(msg.contains("--engine"), "names the flag: {msg}");
    }
    assert!(parse_arg_list("bin", &argv(&["--engine"])).is_err());
}

#[test]
fn partitions_flag_parses_both_spellings_and_rejects_junk() {
    let a = parse_arg_list("bin", &[]).expect("defaults parse");
    assert_eq!(a.partitions, 1, "single sub-kernel by default");
    for spelling in [argv(&["--partitions", "4"]), argv(&["--partitions=4"])] {
        let a = parse_arg_list("bin", &spelling).expect("parse");
        assert_eq!(a.partitions, 4, "{spelling:?}");
    }
    for bad in ["0", "-2", "four", "", "4.0"] {
        let msg = parse_arg_list("bin", &argv(&["--partitions", bad]))
            .expect_err(&format!("--partitions {bad} must be rejected"));
        assert!(msg.contains("--partitions"), "names the flag: {msg}");
        assert!(parse_arg_list("bin", &argv(&[&format!("--partitions={bad}")])).is_err());
    }
    assert!(parse_arg_list("bin", &argv(&["--partitions"])).is_err());
}

#[test]
fn opt_flag_parses_both_spellings() {
    for (spelling, want, level) in [
        (argv(&["--opt", "0"]), 0u8, OptLevel::None),
        (argv(&["--opt=0"]), 0, OptLevel::None),
        (argv(&["--opt", "1"]), 1, OptLevel::Basic),
        (argv(&["--opt=1"]), 1, OptLevel::Basic),
        (argv(&["--opt", "2"]), 2, OptLevel::Full),
        (argv(&["--opt=2"]), 2, OptLevel::Full),
    ] {
        let a = parse_arg_list("bin", &spelling).expect("parse");
        assert_eq!(a.opt, want, "{spelling:?}");
        assert_eq!(a.opt_level(), level, "{spelling:?}");
    }
}

#[test]
fn malformed_opt_values_are_errors() {
    // parse_args turns these messages into exit code 2, same as any
    // unknown flag; only 0, 1 and 2 are valid levels.
    for bad in ["3", "-1", "two", "", "0x1", "2.0"] {
        let msg = parse_arg_list("bin", &argv(&["--opt", bad]))
            .expect_err(&format!("--opt {bad} must be rejected"));
        assert!(msg.contains("--opt"), "message names the flag: {msg}");
        assert!(!msg.is_empty(), "not the --help sentinel");
        let msg = parse_arg_list("bin", &argv(&[&format!("--opt={bad}")]))
            .expect_err(&format!("--opt={bad} must be rejected"));
        assert!(msg.contains("--opt"), "message names the flag: {msg}");
    }
    assert!(parse_arg_list("bin", &argv(&["--opt"])).is_err());
}

#[test]
fn ber_counts_invariant_across_thread_counts() {
    // A tiny sweep point, measured at 1, 2 and 8 workers: the summed
    // (errors, bits) totals must be bit-identical because every burst
    // carries its own explicit seed and the merge is order-keyed.
    let baseline =
        measure(&ParConfig::new(1), &[1.0, 0.65, 0.35], 0.4, true, 3, 24).expect("measure");
    assert!(baseline.bits > 0, "the measurement must compare bits");
    for threads in [2usize, 8] {
        let c = measure(
            &ParConfig::new(threads),
            &[1.0, 0.65, 0.35],
            0.4,
            true,
            3,
            24,
        )
        .expect("measure");
        assert_eq!(c, baseline, "BER totals diverged at {threads} thread(s)");
    }
}

#[test]
fn batched_ber_counts_equal_scalar_for_all_lane_and_thread_counts() {
    // The batched executor must reproduce the scalar measurement
    // bit-for-bit: per-burst seeds are keyed on the global burst index,
    // so lanes × threads is pure geometry. Includes lane counts that do
    // not divide the burst count (ragged final chunk).
    let channel = [1.0, 0.65, 0.35];
    let scalar = measure(&ParConfig::new(1), &channel, 0.4, true, 5, 24).expect("measure");
    // A tape compiled once up front must reproduce the compile-per-chunk
    // totals bit-for-bit too — the simulation service's warm path.
    let cfg = TransceiverConfig {
        train: true,
        agc: false,
        adapt: true,
    };
    let tape = CompiledTape::compile(&build_system(&cfg).expect("build"), OptLevel::Full)
        .expect("compile");
    for lanes in [1usize, 3, 8] {
        for threads in [1usize, 4] {
            let pool = ParConfig::new(threads);
            for tape in [None, Some(&tape)] {
                let c = measure_batched(
                    &Robust::plain(&pool),
                    "test_eq",
                    &channel,
                    0.4,
                    true,
                    5,
                    24,
                    lanes,
                    OptLevel::Full,
                    tape,
                )
                .expect("measure");
                assert_eq!(
                    c,
                    scalar,
                    "fault-free diverged at {lanes} lanes, {threads} threads, cached={}",
                    tape.is_some()
                );
            }
        }
    }
}

#[test]
fn batched_faulty_ber_counts_equal_scalar() {
    // The faulted variant exercises per-lane fault plans and the
    // masked-lane (fully-errored burst) accounting path.
    let channel = [1.0, 0.65, 0.35];
    let scalar =
        measure_with_faults(&ParConfig::new(1), &channel, 0.2, 0.02, 4, 24).expect("measure");
    let pool = ParConfig::new(2);
    let cfg = TransceiverConfig {
        train: true,
        agc: false,
        adapt: true,
    };
    let tape = CompiledTape::compile(&build_system(&cfg).expect("build"), OptLevel::Full)
        .expect("compile");
    for lanes in [1usize, 3] {
        for tape in [None, Some(&tape)] {
            let c = measure_with_faults_batched(
                &Robust::plain(&pool),
                "test_fault",
                &channel,
                0.2,
                0.02,
                4,
                24,
                lanes,
                OptLevel::Full,
                tape,
            )
            .expect("measure");
            assert_eq!(
                c,
                scalar,
                "faulted totals diverged at {lanes} lanes, cached={}",
                tape.is_some()
            );
        }
    }
}
