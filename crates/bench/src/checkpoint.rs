//! Crash-safe checkpoint/resume for long campaigns and BER sweeps.
//!
//! A sharded run is a list of independent, deterministic work items
//! (fault events, payload bursts, degradation runs). This module
//! persists each completed item's result into a per-stream **manifest**
//! — one plain-text file per seed stream, written atomically
//! (temp file + fsync + rename) every `--checkpoint-every` items — so a
//! killed run can resume with `--resume` and skip everything already
//! done. Because every item's result is a pure function of its global
//! index, a resumed run produces **byte-identical** JSON output to an
//! uninterrupted one, at any `--lanes` × `--threads` combination: lane
//! and thread topology decide only *which worker* computes an item,
//! never its value.
//!
//! The manifest format is deliberately boring (the workspace builds
//! offline with zero registry dependencies, so there is no JSON parser
//! to lean on):
//!
//! ```text
//! ocapi-checkpoint v1
//! stream <name>
//! fingerprint <16-hex-digit workload fingerprint>
//! <index> <payload>
//! ...
//! ```
//!
//! The fingerprint hashes the workload parameters that determine item
//! values (channel taps, noise, burst counts — never the thread or lane
//! count); resuming against a manifest with a different fingerprint is
//! a typed [`BenchError::Checkpoint`], not silent corruption.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;

use ocapi::sim::par::{map_indexed_retry, ParError};
use ocapi::{CoreError, ParConfig};
use ocapi_obs::Registry;

use crate::cli::BenchArgs;
use crate::error::BenchError;

const MAGIC: &str = "ocapi-checkpoint v1";

/// FNV-1a 64 over a list of textual workload parameters: the stream
/// fingerprint. Stable across platforms and sessions.
pub fn fingerprint(parts: &[&str]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in parts {
        for b in p.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Separator so ["ab","c"] and ["a","bc"] differ.
        h ^= 0x1f;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One stream's manifest: the completed item payloads, keyed by global
/// item index, plus the workload fingerprint guarding against resuming
/// the wrong run.
#[derive(Debug)]
pub struct CheckpointStream {
    path: PathBuf,
    stream: String,
    fingerprint: u64,
    done: BTreeMap<usize, String>,
    resumed: usize,
}

/// Filename-safe rendering of a stream name; a short hash of the raw
/// name keeps distinct streams distinct after sanitising.
fn stream_file(stream: &str) -> String {
    let safe: String = stream
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("{safe}-{:08x}.ckpt", fingerprint(&[stream]) as u32)
}

impl CheckpointStream {
    /// Opens (and with `resume`, loads) the manifest for `stream` in
    /// `dir`. Without `resume` an existing manifest is ignored and will
    /// be overwritten at the first flush — a fresh run.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or reading the manifest, and
    /// [`BenchError::Checkpoint`] for a damaged manifest or one written
    /// by a different workload (fingerprint mismatch).
    pub fn open(
        dir: &str,
        stream: &str,
        fingerprint: u64,
        resume: bool,
    ) -> Result<CheckpointStream, BenchError> {
        std::fs::create_dir_all(dir)?;
        let path = PathBuf::from(dir).join(stream_file(stream));
        let mut st = CheckpointStream {
            path,
            stream: stream.to_owned(),
            fingerprint,
            done: BTreeMap::new(),
            resumed: 0,
        };
        if resume && st.path.exists() {
            let text = std::fs::read_to_string(&st.path)?;
            st.load(&text)?;
            st.resumed = st.done.len();
        }
        Ok(st)
    }

    fn load(&mut self, text: &str) -> Result<(), BenchError> {
        let bad = |msg: String| BenchError::Checkpoint(format!("`{}`: {msg}", self.stream));
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err(bad("not a checkpoint manifest".into()));
        }
        match lines.next().and_then(|l| l.strip_prefix("stream ")) {
            Some(s) if s == self.stream => {}
            other => {
                return Err(bad(format!(
                    "manifest belongs to stream `{}`",
                    other.unwrap_or("?")
                )))
            }
        }
        let fp = lines
            .next()
            .and_then(|l| l.strip_prefix("fingerprint "))
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| bad("missing fingerprint".into()))?;
        if fp != self.fingerprint {
            return Err(bad(format!(
                "workload fingerprint mismatch: manifest {fp:#018x}, run {:#018x} — \
                 the checkpoint was written by a different workload configuration",
                self.fingerprint
            )));
        }
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (idx, payload) = line
                .split_once(' ')
                .ok_or_else(|| bad(format!("malformed item line `{line}`")))?;
            let idx: usize = idx
                .parse()
                .map_err(|_| bad(format!("malformed item index `{idx}`")))?;
            self.done.insert(idx, payload.to_owned());
        }
        Ok(())
    }

    /// The recorded payload of item `index`, if completed.
    pub fn completed(&self, index: usize) -> Option<&str> {
        self.done.get(&index).map(String::as_str)
    }

    /// Number of items loaded from disk at open time (0 without
    /// `--resume`).
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// Records item `index` as completed. Not persisted until
    /// [`CheckpointStream::flush`]. Payloads must be single-line.
    pub fn record(&mut self, index: usize, payload: String) {
        debug_assert!(!payload.contains('\n'));
        self.done.insert(index, payload);
    }

    /// Atomically persists the manifest: the full document is written to
    /// a sibling temp file, fsynced, and renamed over the manifest path,
    /// so a kill at any instant leaves either the old or the new
    /// manifest — never a torn one.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing, syncing or renaming.
    pub fn flush(&self) -> Result<(), BenchError> {
        let mut doc = String::with_capacity(64 + self.done.len() * 16);
        doc.push_str(MAGIC);
        doc.push('\n');
        doc.push_str(&format!("stream {}\n", self.stream));
        doc.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        for (i, p) in &self.done {
            doc.push_str(&format!("{i} {p}\n"));
        }
        let tmp = self.path.with_extension("ckpt.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(doc.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        Ok(())
    }
}

/// The robustness envelope of a sharded run: worker pool, bounded
/// retries, and (optionally) checkpointing — built once per bin from the
/// parsed [`BenchArgs`] and threaded through the drivers.
#[derive(Debug, Clone, Copy)]
pub struct Robust<'a> {
    /// The worker pool.
    pub pool: &'a ParConfig,
    /// Attempts per item (≥ 1); retries re-run the item with its
    /// original index-derived seed, so a recovered item is bit-identical
    /// to a first-try success.
    pub attempts: u32,
    /// Flush the manifest every this many completed items.
    pub every: u64,
    /// Checkpoint directory (`--checkpoint`); `None` disables
    /// checkpointing entirely.
    pub dir: Option<&'a str>,
    /// Job id namespacing the manifests (see [`Robust::for_job`]);
    /// `None` uses `dir` itself — the single-run CLI behaviour.
    pub job: Option<&'a str>,
    /// Load existing manifests and skip completed items (`--resume`).
    pub resume: bool,
    /// Robustness counters (`robust.*`) land here when attached.
    pub obs: Option<&'a Registry>,
}

/// The manifest directory of job `job` under checkpoint root `dir`:
/// `<dir>/job-<sanitized id>-<hash>`. The short hash of the raw id
/// keeps distinct jobs distinct after sanitising, exactly like
/// manifest filenames.
pub fn job_dir(dir: &str, job: &str) -> String {
    let safe: String = job
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("{dir}/job-{safe}-{:08x}", fingerprint(&[job]) as u32)
}

impl<'a> Robust<'a> {
    /// The envelope `args` selects, reporting into `obs`.
    pub fn new(args: &'a BenchArgs, pool: &'a ParConfig, obs: Option<&'a Registry>) -> Robust<'a> {
        Robust {
            pool,
            attempts: args.retries,
            every: args.checkpoint_every,
            dir: args.checkpoint.as_deref(),
            job: None,
            resume: args.resume,
            obs,
        }
    }

    /// A plain envelope with no checkpointing and no retries — the
    /// pre-robustness behaviour, for tests and default paths.
    pub fn plain(pool: &'a ParConfig) -> Robust<'a> {
        Robust {
            pool,
            attempts: 1,
            every: u64::MAX,
            dir: None,
            job: None,
            resume: false,
            obs: None,
        }
    }

    /// Namespaces this envelope's checkpoints under one named job:
    /// manifests land in [`job_dir`]`(dir, job)` instead of `dir`
    /// itself. Two concurrent jobs sharing a checkpoint root therefore
    /// can never clobber each other's manifests, even when they run the
    /// same driver with the same stream names — the situation a
    /// simulation service is permanently in. Resuming a job means
    /// re-running it with the same id.
    pub fn for_job(mut self, job: &'a str) -> Robust<'a> {
        self.job = Some(job);
        self
    }

    fn counter(&self, name: &str, delta: u64) {
        if delta > 0 {
            if let Some(obs) = self.obs {
                obs.counter(name).add(delta);
            }
        }
    }

    /// Runs `n_items` work items through `run`, `chunk` items per work
    /// unit (1 = scalar; `--lanes` for lane-batched drivers), with
    /// bounded retry, periodic checkpointing, and resume.
    ///
    /// `run` receives the **global indices** of one chunk's items and
    /// returns one result per index; item values must depend only on the
    /// global index (the determinism contract of every driver here), so
    /// re-chunking the leftover items of a resumed run cannot change
    /// them. Results come back in item order — identical for every
    /// chunk size, thread count, retry count, and resume history.
    ///
    /// # Errors
    ///
    /// [`BenchError::Item`]/[`BenchError::Panic`] for the
    /// lowest-indexed chunk that still fails after `attempts` tries
    /// (completed chunks of the same group are checkpointed first, so
    /// the failed run still advances), plus manifest I/O and decode
    /// errors.
    #[allow(clippy::too_many_arguments)]
    pub fn run_chunked<R: Send>(
        &self,
        stream: &str,
        fp: u64,
        n_items: usize,
        chunk: usize,
        encode: impl Fn(&R) -> String,
        decode: impl Fn(&str) -> Option<R>,
        run: impl Fn(&[usize]) -> Result<Vec<R>, CoreError> + Sync,
    ) -> Result<Vec<R>, BenchError> {
        let chunk = chunk.max(1);
        let jd;
        let dir = match (self.dir, self.job) {
            (Some(d), Some(j)) => {
                jd = job_dir(d, j);
                Some(jd.as_str())
            }
            (d, _) => d,
        };
        let mut manifest = match dir {
            Some(dir) => Some(CheckpointStream::open(dir, stream, fp, self.resume)?),
            None => None,
        };
        let mut results: Vec<Option<R>> = (0..n_items).map(|_| None).collect();
        if let Some(st) = &manifest {
            for (i, slot) in results.iter_mut().enumerate() {
                if let Some(payload) = st.completed(i) {
                    *slot = Some(decode(payload).ok_or_else(|| {
                        BenchError::Checkpoint(format!(
                            "`{stream}`: malformed payload for item {i}"
                        ))
                    })?);
                }
            }
            self.counter("robust.items_resumed", st.resumed() as u64);
        }
        let missing: Vec<usize> = (0..n_items).filter(|i| results[*i].is_none()).collect();
        let chunks: Vec<&[usize]> = missing.chunks(chunk).collect();
        // Chunks per manifest flush; without checkpointing, one group.
        let per_group = if manifest.is_some() {
            (self.every.max(1) as usize).div_ceil(chunk).max(1)
        } else {
            chunks.len().max(1)
        };
        for group in chunks.chunks(per_group) {
            let (res, stats) =
                map_indexed_retry(self.pool, group, self.attempts, |_, idxs| run(idxs));
            self.counter("robust.retries", stats.retries);
            let res = res.map_err(|e| match e {
                ParError::Task { index, error } => {
                    if matches!(error, CoreError::BudgetExceeded { .. }) {
                        self.counter("robust.budget_hits", 1);
                    }
                    BenchError::Item {
                        index: group[index][0],
                        error,
                    }
                }
                ParError::Panic { index } => BenchError::Panic {
                    index: group[index][0],
                },
            })?;
            for (idxs, rs) in group.iter().zip(res) {
                if rs.len() != idxs.len() {
                    return Err(BenchError::Checkpoint(format!(
                        "`{stream}`: chunk returned {} results for {} items",
                        rs.len(),
                        idxs.len()
                    )));
                }
                for (i, r) in idxs.iter().zip(rs) {
                    if let Some(st) = &mut manifest {
                        st.record(*i, encode(&r));
                    }
                    results[*i] = Some(r);
                }
            }
            if let Some(st) = &manifest {
                st.flush()?;
                self.counter("robust.checkpoints_written", 1);
            }
        }
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.ok_or_else(|| BenchError::Checkpoint(format!("`{stream}`: item {i} missing")))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> String {
        let d = std::env::temp_dir().join(format!("ocapi-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d.to_string_lossy().into_owned()
    }

    #[test]
    fn fingerprint_separates_parameter_boundaries() {
        assert_ne!(fingerprint(&["ab", "c"]), fingerprint(&["a", "bc"]));
        assert_eq!(fingerprint(&["x", "y"]), fingerprint(&["x", "y"]));
    }

    #[test]
    fn manifest_round_trips_and_survives_reopen() {
        let dir = tmpdir("roundtrip");
        let mut st = CheckpointStream::open(&dir, "s1", 42, false).unwrap();
        st.record(3, "7,100".into());
        st.record(0, "0,100".into());
        st.flush().unwrap();
        let st2 = CheckpointStream::open(&dir, "s1", 42, true).unwrap();
        assert_eq!(st2.resumed(), 2);
        assert_eq!(st2.completed(0), Some("0,100"));
        assert_eq!(st2.completed(3), Some("7,100"));
        assert_eq!(st2.completed(1), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_a_typed_error() {
        let dir = tmpdir("mismatch");
        let mut st = CheckpointStream::open(&dir, "s1", 1, false).unwrap();
        st.record(0, "x".into());
        st.flush().unwrap();
        let err = CheckpointStream::open(&dir, "s1", 2, true).unwrap_err();
        assert!(matches!(err, BenchError::Checkpoint(_)));
        assert!(err.to_string().contains("fingerprint mismatch"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn without_resume_existing_manifest_is_ignored() {
        let dir = tmpdir("noresume");
        let mut st = CheckpointStream::open(&dir, "s1", 1, false).unwrap();
        st.record(0, "x".into());
        st.flush().unwrap();
        // Different fingerprint, no --resume: opens clean, no error.
        let st2 = CheckpointStream::open(&dir, "s1", 2, false).unwrap();
        assert_eq!(st2.resumed(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_chunked_resumes_to_identical_results() {
        let dir = tmpdir("resume-ident");
        let pool = ParConfig::new(2);
        let args_base = crate::cli::BenchArgs::defaults("t");
        let mut args = args_base.clone();
        args.checkpoint = Some(dir.clone());
        args.checkpoint_every = 2;
        let enc = |r: &u64| r.to_string();
        let dec = |s: &str| s.parse::<u64>().ok();
        let run = |idxs: &[usize]| Ok(idxs.iter().map(|i| (*i as u64) * 10).collect::<Vec<u64>>());
        // Full uninterrupted run.
        let rb = Robust::new(&args, &pool, None);
        let full = rb.run_chunked("s", 7, 9, 3, enc, dec, run).unwrap();
        // Simulate a partial run: manifest holding only items 0..4.
        let mut st = CheckpointStream::open(&dir, "s", 7, false).unwrap();
        for i in 0..4usize {
            st.record(i, (i as u64 * 10).to_string());
        }
        st.flush().unwrap();
        let mut args2 = args.clone();
        args2.resume = true;
        let rb2 = Robust::new(&args2, &pool, None);
        // Different chunking on resume: results still identical.
        let resumed = rb2.run_chunked("s", 7, 9, 2, enc, dec, run).unwrap();
        assert_eq!(resumed, full);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression test for concurrent server jobs: two jobs sharing one
    /// checkpoint root, the *same* stream name and the *same* workload
    /// fingerprint but different job ids must land in separate
    /// manifests, resume independently, and never see each other's
    /// payloads — without namespacing the second flush would clobber
    /// the first job's manifest.
    #[test]
    fn concurrent_jobs_never_clobber_each_others_manifests() {
        let dir = tmpdir("job-collide");
        let pool = ParConfig::new(2);
        let mut args = crate::cli::BenchArgs::defaults("t");
        args.checkpoint = Some(dir.clone());
        args.checkpoint_every = 1;
        let enc = |r: &u64| r.to_string();
        let dec = |s: &str| s.parse::<u64>().ok();
        // Interleave the two jobs on real threads: flush order between
        // them is nondeterministic, which is exactly the hazard.
        let (a, b) = std::thread::scope(|s| {
            let args = &args;
            let pool = &pool;
            let ja = s.spawn(move || {
                Robust::new(args, pool, None).for_job("job-A").run_chunked(
                    "s",
                    7,
                    8,
                    2,
                    enc,
                    dec,
                    |idxs| Ok(idxs.iter().map(|i| *i as u64 * 10).collect::<Vec<u64>>()),
                )
            });
            let jb = s.spawn(move || {
                Robust::new(args, pool, None).for_job("job-B").run_chunked(
                    "s",
                    7,
                    8,
                    2,
                    enc,
                    dec,
                    |idxs| Ok(idxs.iter().map(|i| *i as u64 * 1000).collect::<Vec<u64>>()),
                )
            });
            (ja.join().unwrap().unwrap(), jb.join().unwrap().unwrap())
        });
        assert_eq!(a, (0..8).map(|i| i * 10).collect::<Vec<u64>>());
        assert_eq!(b, (0..8).map(|i| i * 1000).collect::<Vec<u64>>());
        // Each job's manifest survives intact in its own subdirectory
        // and resumes with that job's payloads, not the other's.
        let sa = CheckpointStream::open(&job_dir(&dir, "job-A"), "s", 7, true).unwrap();
        let sb = CheckpointStream::open(&job_dir(&dir, "job-B"), "s", 7, true).unwrap();
        assert_eq!(sa.resumed(), 8);
        assert_eq!(sb.resumed(), 8);
        assert_eq!(sa.completed(3), Some("30"));
        assert_eq!(sb.completed(3), Some("3000"));
        // And a resumed re-run of one job skips all its items.
        let mut args2 = args.clone();
        args2.resume = true;
        let obs = Registry::new();
        let again = Robust::new(&args2, &pool, Some(&obs))
            .for_job("job-A")
            .run_chunked("s", 7, 8, 2, enc, dec, |_| {
                Err(ocapi::CoreError::WorkerPanic { index: 0 })
            })
            .unwrap();
        assert_eq!(again, a);
        assert_eq!(obs.counter("robust.items_resumed").get(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Distinct job ids that sanitise to the same string still get
    /// distinct directories via the id hash.
    #[test]
    fn job_dirs_stay_distinct_after_sanitising() {
        assert_ne!(job_dir("/r", "a.b"), job_dir("/r", "a_b"));
        assert_eq!(job_dir("/r", "a.b"), job_dir("/r", "a.b"));
    }

    #[test]
    fn run_chunked_retries_flaky_items() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let pool = ParConfig::new(1);
        let args = crate::cli::BenchArgs {
            retries: 3,
            ..crate::cli::BenchArgs::defaults("t")
        };
        let rb = Robust::new(&args, &pool, None);
        let tries = AtomicU32::new(0);
        let out = rb.run_chunked(
            "s",
            0,
            4,
            1,
            |r: &u64| r.to_string(),
            |s| s.parse().ok(),
            |idxs| {
                let i = idxs[0];
                if i == 2 && tries.fetch_add(1, Ordering::SeqCst) < 2 {
                    return Err(ocapi::CoreError::WorkerPanic { index: i });
                }
                Ok(vec![i as u64])
            },
        );
        assert_eq!(out.unwrap(), vec![0, 1, 2, 3]);
    }
}
