//! Bit-error-rate measurement of the DECT transceiver, sharded over
//! bursts.
//!
//! Each burst is an independent simulation run with an explicit
//! per-burst seed (`1000 + burst` for the channel, `0xdec7 + burst` for
//! the fault plan), so the bursts fan across the worker pool of
//! `ocapi::sim::par` and the summed `(errors, bits)` totals are
//! **bit-identical for every thread count** — integer sums merged in
//! burst order.

use ocapi::sim::par::{map_indexed, ParConfig, ParError};
use ocapi::{FaultPlan, FaultySim, InterpSim};
use ocapi_designs::dect::burst::{generate, BurstConfig};
use ocapi_designs::dect::transceiver::{
    build_system, run_burst, TransceiverConfig, CYCLES_PER_SYMBOL,
};
use ocapi_designs::dect::DELAY;

/// Accumulated payload-bit errors over a set of bursts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BerCount {
    /// Payload bits in error.
    pub errors: u64,
    /// Payload bits compared.
    pub bits: u64,
}

impl BerCount {
    /// The bit-error rate (0 when no bits were compared).
    pub fn rate(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.errors as f64 / self.bits as f64
        }
    }
}

fn sum(parts: Vec<BerCount>) -> BerCount {
    parts
        .into_iter()
        .fold(BerCount::default(), |a, b| BerCount {
            errors: a.errors + b.errors,
            bits: a.bits + b.bits,
        })
}

/// Runs `n_bursts` payload bursts (one work item each) and counts
/// payload-bit errors. With `adapt` off the LMS update instruction is
/// removed from the program: a fixed centre-tap receiver, the
/// no-equalizer baseline.
pub fn measure(
    pool: &ParConfig,
    channel: &[f64],
    noise: f64,
    adapt: bool,
    n_bursts: u64,
    payload_len: usize,
) -> BerCount {
    let cfg = TransceiverConfig {
        train: adapt,
        agc: false,
        adapt,
    };
    let bursts: Vec<u64> = (0..n_bursts).collect();
    let parts = map_indexed(pool, &bursts, |_, seed| {
        let burst = generate(&BurstConfig {
            payload_len,
            channel: channel.to_vec(),
            noise,
            seed: 1000 + seed,
        });
        let mut sim = InterpSim::new(build_system(&cfg).expect("build")).expect("sim");
        let records = run_burst(&mut sim, &burst, None).expect("burst");
        let mut out = BerCount::default();
        for (k, rec) in records.iter().enumerate().skip(burst.payload_start + DELAY) {
            out.bits += 1;
            if burst.bits[k - DELAY] != rec.bit {
                out.errors += 1;
            }
        }
        Ok::<_, ocapi::CoreError>(out)
    })
    .expect("fault-free BER run");
    sum(parts)
}

/// Same measurement with random transient bit flips injected into the
/// receiver's registers and nets at `rate` faults per clock cycle, one
/// independent fault plan per burst (seeded `0xdec7 + burst`).
///
/// A heavily faulted run may trip a typed error — that is the detection
/// path working — and its burst is counted as fully errored.
pub fn measure_with_faults(
    pool: &ParConfig,
    channel: &[f64],
    noise: f64,
    rate: f64,
    n_bursts: u64,
    payload_len: usize,
) -> BerCount {
    let cfg = TransceiverConfig {
        train: true,
        agc: false,
        adapt: true,
    };
    let bursts: Vec<u64> = (0..n_bursts).collect();
    let parts = map_indexed(pool, &bursts, |_, seed| {
        let burst = generate(&BurstConfig {
            payload_len,
            channel: channel.to_vec(),
            noise,
            seed: 1000 + seed,
        });
        let sys = build_system(&cfg).expect("build");
        let cycles = (burst.samples.len() * CYCLES_PER_SYMBOL) as u64;
        let plan = FaultPlan::random(&sys, cycles, rate, 0xdec7 + seed);
        let mut sim = FaultySim::new(InterpSim::new(sys).expect("sim"), plan);
        let mut out = BerCount::default();
        match run_burst(&mut sim, &burst, None) {
            Ok(records) => {
                for (k, rec) in records.iter().enumerate().skip(burst.payload_start + DELAY) {
                    out.bits += 1;
                    if burst.bits[k - DELAY] != rec.bit {
                        out.errors += 1;
                    }
                }
            }
            Err(_) => {
                let n = burst.bits.len().saturating_sub(burst.payload_start + DELAY) as u64;
                out.bits += n;
                out.errors += n;
            }
        }
        Ok::<_, ocapi::CoreError>(out)
    })
    .unwrap_or_else(|e| match e {
        ParError::Task { index, error } => panic!("burst {index} failed: {error}"),
        ParError::Panic { index } => panic!("burst {index} panicked"),
    });
    sum(parts)
}

/// Formats a BER for the tables: `<1/bits` when no errors were seen.
pub fn fmt_ber(c: BerCount) -> String {
    if c.errors == 0 {
        format!("<{:.1e}", 1.0 / c.bits as f64)
    } else {
        format!("{:.2e}", c.rate())
    }
}
