//! Bit-error-rate measurement of the DECT transceiver, sharded over
//! bursts.
//!
//! Each burst is an independent simulation run with an explicit
//! per-burst seed (`1000 + burst` for the channel, `0xdec7 + burst` for
//! the fault plan), so the bursts fan across the worker pool of
//! `ocapi::sim::par` and the summed `(errors, bits)` totals are
//! **bit-identical for every thread count** — integer sums merged in
//! burst order. The batched paths additionally run under the
//! [`Robust`] envelope: bounded retry per chunk, and per-burst
//! checkpoint manifests so a killed sweep resumes (`--resume`) to
//! byte-identical totals.

use ocapi::sim::par::{map_indexed, ParConfig, ParError};
use ocapi::{
    apply_plan_lane, BatchObs, BatchedSim, CompiledTape, CoreError, FaultPlan, FaultySim,
    InterpSim, OptLevel, SigType, Value,
};
use ocapi_designs::dect::burst::{generate, Burst, BurstConfig};
use ocapi_designs::dect::transceiver::{
    build_system, run_burst, SymbolRecord, TransceiverConfig, CYCLES_PER_SYMBOL,
};
use ocapi_designs::dect::DELAY;

use crate::checkpoint::{fingerprint, Robust};
use crate::error::BenchError;

/// Accumulated payload-bit errors over a set of bursts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BerCount {
    /// Payload bits in error.
    pub errors: u64,
    /// Payload bits compared.
    pub bits: u64,
}

impl BerCount {
    /// The bit-error rate (0 when no bits were compared).
    pub fn rate(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.errors as f64 / self.bits as f64
        }
    }

    /// Checkpoint payload: `errors,bits`. Round-trips exactly, so a
    /// resumed sweep's totals are bit-identical.
    pub fn encode(&self) -> String {
        format!("{},{}", self.errors, self.bits)
    }

    /// Parses [`BerCount::encode`]'s payload.
    pub fn decode(s: &str) -> Option<BerCount> {
        let (e, b) = s.split_once(',')?;
        Some(BerCount {
            errors: e.parse().ok()?,
            bits: b.parse().ok()?,
        })
    }
}

fn sum(parts: Vec<BerCount>) -> BerCount {
    parts
        .into_iter()
        .fold(BerCount::default(), |a, b| BerCount {
            errors: a.errors + b.errors,
            bits: a.bits + b.bits,
        })
}

fn par_err(e: ParError<CoreError>) -> BenchError {
    match e {
        ParError::Task { index, error } => BenchError::Item { index, error },
        ParError::Panic { index } => BenchError::Panic { index },
    }
}

/// The workload fingerprint of one sweep point: everything that
/// determines per-burst values — and nothing that only routes work
/// (thread count, lane count), so checkpoints resume across topologies.
fn point_fingerprint(
    stream: &str,
    channel: &[f64],
    noise: f64,
    knob: u64,
    n_bursts: u64,
    payload_len: usize,
) -> u64 {
    let taps: Vec<String> = channel.iter().map(|t| t.to_bits().to_string()).collect();
    fingerprint(&[
        "ber",
        stream,
        &taps.join(";"),
        &noise.to_bits().to_string(),
        &knob.to_string(),
        &n_bursts.to_string(),
        &payload_len.to_string(),
    ])
}

/// Runs `n_bursts` payload bursts (one work item each) and counts
/// payload-bit errors. With `adapt` off the LMS update instruction is
/// removed from the program: a fixed centre-tap receiver, the
/// no-equalizer baseline.
///
/// # Errors
///
/// [`BenchError::Item`]/[`BenchError::Panic`] for the lowest-indexed
/// burst whose run failed (system build, simulation, or a worker
/// panic).
pub fn measure(
    pool: &ParConfig,
    channel: &[f64],
    noise: f64,
    adapt: bool,
    n_bursts: u64,
    payload_len: usize,
) -> Result<BerCount, BenchError> {
    let cfg = TransceiverConfig {
        train: adapt,
        agc: false,
        adapt,
    };
    let bursts: Vec<u64> = (0..n_bursts).collect();
    let parts = map_indexed(pool, &bursts, |_, seed| {
        let burst = generate(&BurstConfig {
            payload_len,
            channel: channel.to_vec(),
            noise,
            seed: 1000 + seed,
        });
        let mut sim = InterpSim::new(build_system(&cfg)?)?;
        let records = run_burst(&mut sim, &burst, None)?;
        let mut out = BerCount::default();
        accumulate(&mut out, &burst, Some(&records));
        Ok::<_, CoreError>(out)
    })
    .map_err(par_err)?;
    Ok(sum(parts))
}

/// Same measurement with random transient bit flips injected into the
/// receiver's registers and nets at `rate` faults per clock cycle, one
/// independent fault plan per burst (seeded `0xdec7 + burst`).
///
/// A heavily faulted run may trip a typed error — that is the detection
/// path working — and its burst is counted as fully errored.
///
/// # Errors
///
/// As [`measure`]; faulty-run errors are absorbed into the error count,
/// so only build/stimulus failures surface.
pub fn measure_with_faults(
    pool: &ParConfig,
    channel: &[f64],
    noise: f64,
    rate: f64,
    n_bursts: u64,
    payload_len: usize,
) -> Result<BerCount, BenchError> {
    let cfg = TransceiverConfig {
        train: true,
        agc: false,
        adapt: true,
    };
    let bursts: Vec<u64> = (0..n_bursts).collect();
    let parts = map_indexed(pool, &bursts, |_, seed| {
        let burst = generate(&BurstConfig {
            payload_len,
            channel: channel.to_vec(),
            noise,
            seed: 1000 + seed,
        });
        let sys = build_system(&cfg)?;
        let cycles = (burst.samples.len() * CYCLES_PER_SYMBOL) as u64;
        let plan = FaultPlan::random(&sys, cycles, rate, 0xdec7 + seed);
        let mut sim = FaultySim::new(InterpSim::new(sys)?, plan);
        let mut out = BerCount::default();
        accumulate(
            &mut out,
            &burst,
            run_burst(&mut sim, &burst, None).ok().as_deref(),
        );
        Ok::<_, CoreError>(out)
    })
    .map_err(par_err)?;
    Ok(sum(parts))
}

/// Per-burst error accounting, shared by the scalar and batched paths:
/// completed records are compared bit-for-bit against the transmitted
/// payload; a burst that erred out before finishing is counted fully
/// errored (exactly the scalar `Err` branch).
fn accumulate(out: &mut BerCount, burst: &Burst, records: Option<&[SymbolRecord]>) {
    match records {
        Some(records) => {
            for (k, rec) in records.iter().enumerate().skip(burst.payload_start + DELAY) {
                out.bits += 1;
                if burst.bits[k - DELAY] != rec.bit {
                    out.errors += 1;
                }
            }
        }
        None => {
            let n = burst.bits.len().saturating_sub(burst.payload_start + DELAY) as u64;
            out.bits += n;
            out.errors += n;
        }
    }
}

/// An output of a type the driver did not expect — a driver bug, not a
/// workload condition.
fn bad_output(name: &str, expected: SigType) -> CoreError {
    CoreError::ValueType {
        context: format!("batched BER driver output `{name}`"),
        expected,
    }
}

/// Per-lane burst progress for the batched driver.
struct LaneDrive {
    sample_idx: usize,
    done: usize,
    records: Vec<SymbolRecord>,
    finished: bool,
}

/// Drives one burst per lane through a batched transceiver, mirroring
/// [`run_burst`] (with `hold: None`) lane-for-lane: every live,
/// unfinished lane gets its own `sample` stream and fault plan, symbols
/// advance per lane on `holding == false`, and a lane whose fault
/// application fails is masked off and reported as `None` (counted
/// fully errored by the caller) while its chunk-mates keep running.
///
/// Because a lane steps once per batch step until it finishes — exactly
/// the cycles the scalar driver would run — fault-plan cycle numbers
/// line up with the scalar path and the per-burst records are
/// bit-identical for every lane count.
fn run_bursts_batched(
    sim: &mut BatchedSim,
    bursts: &[Burst],
    plans: &[FaultPlan],
) -> Result<Vec<Option<Vec<SymbolRecord>>>, CoreError> {
    use ocapi::Simulator as _;
    let mut st: Vec<LaneDrive> = bursts
        .iter()
        .map(|b| LaneDrive {
            sample_idx: 0,
            done: 0,
            records: Vec::with_capacity(b.samples.len()),
            finished: false,
        })
        .collect();
    sim.set_input("hold_request", Value::Bool(false))?;
    loop {
        let mut any = false;
        for (l, s) in st.iter().enumerate() {
            if s.finished || !sim.alive(l) {
                continue;
            }
            any = true;
            sim.set_input_lane(l, "sample", Value::Fixed(bursts[l].samples[s.sample_idx]))?;
        }
        if !any {
            break;
        }
        for (l, plan) in plans.iter().enumerate() {
            if st[l].finished || !sim.alive(l) {
                continue;
            }
            if let Err(e) = apply_plan_lane(sim, l, plan) {
                sim.fail_lane(l, e);
            }
        }
        if sim.step().is_err() {
            // Every lane is masked; per-lane outcomes are settled below.
            break;
        }
        for (l, s) in st.iter_mut().enumerate() {
            if s.finished || !sim.alive(l) {
                continue;
            }
            // Held cycles issue nops and do not advance the symbol.
            if sim.output_lane(l, "holding")? == Value::Bool(false) {
                s.done += 1;
            }
            if s.done == CYCLES_PER_SYMBOL {
                s.done = 0;
                s.records.push(SymbolRecord {
                    bit: sim
                        .output_lane(l, "bit")?
                        .as_bool()
                        .ok_or_else(|| bad_output("bit", SigType::Bool))?,
                    err: sim
                        .output_lane(l, "err")?
                        .as_fixed()
                        .ok_or_else(|| bad_output("err", SigType::Bool))?
                        .to_f64(),
                    detect: sim
                        .output_lane(l, "detect")?
                        .as_bool()
                        .ok_or_else(|| bad_output("detect", SigType::Bool))?,
                });
                s.sample_idx += 1;
                if s.sample_idx == bursts[l].samples.len() {
                    s.finished = true;
                }
            }
        }
    }
    Ok(st
        .into_iter()
        .map(|s| s.finished.then_some(s.records))
        .collect())
}

/// One chunk of the batched measurement: the bursts at `seeds` (global
/// burst indices), one per lane, through one shared tape walk per
/// cycle. `fault_rate` of `None` runs fault-free; `Some(rate)` builds
/// one independent plan per burst, seeded on the global index. With a
/// cached `tape`, the per-chunk levelization and optimization are
/// skipped entirely — the chunk's freshly built systems are verified
/// against the tape's structural hash and instantiated directly.
#[allow(clippy::too_many_arguments)]
fn batched_chunk(
    cfg: &TransceiverConfig,
    channel: &[f64],
    noise: f64,
    fault_rate: Option<f64>,
    payload_len: usize,
    level: OptLevel,
    tape: Option<&CompiledTape>,
    obs: Option<&ocapi_obs::Registry>,
    seeds: &[usize],
) -> Result<Vec<BerCount>, CoreError> {
    let bursts: Vec<Burst> = seeds
        .iter()
        .map(|seed| {
            generate(&BurstConfig {
                payload_len,
                channel: channel.to_vec(),
                noise,
                seed: 1000 + *seed as u64,
            })
        })
        .collect();
    let mut systems = Vec::with_capacity(seeds.len());
    let mut plans = Vec::with_capacity(seeds.len());
    for (i, seed) in seeds.iter().enumerate() {
        let sys = build_system(cfg)?;
        plans.push(match fault_rate {
            Some(rate) => {
                let cycles = (bursts[i].samples.len() * CYCLES_PER_SYMBOL) as u64;
                FaultPlan::random(&sys, cycles, rate, 0xdec7 + *seed as u64)
            }
            None => FaultPlan::new(),
        });
        systems.push(sys);
    }
    let mut sim = match tape {
        Some(tape) => BatchedSim::from_tape(systems, tape)?,
        None => BatchedSim::new_with(systems, level)?,
    };
    if let Some(reg) = obs {
        sim.attach_obs(BatchObs::new(reg));
    }
    let outcomes = run_bursts_batched(&mut sim, &bursts, &plans)?;
    Ok(bursts
        .iter()
        .zip(&outcomes)
        .map(|(burst, records)| {
            let mut out = BerCount::default();
            accumulate(&mut out, burst, records.as_deref());
            out
        })
        .collect())
}

/// [`measure`] over the lane-batched compiled back-end: bursts are
/// chunked into groups of `lanes` and every chunk is one work item of
/// the `--threads` pool, walking the micro-op tape once per cycle for
/// all of its lanes. Per-burst seeds are unchanged (`1000 + burst`), so
/// the summed totals are bit-identical for every lane count *and*
/// thread count; `lanes = 1` is the scalar compiled path one burst at a
/// time. Under a checkpointing [`Robust`] envelope, per-burst counts
/// land in the `stream` manifest and `--resume` skips completed bursts.
///
/// A cached `tape` (compiled once from the same transceiver config at
/// the same level — the simulation service's tape cache) skips
/// per-chunk recompilation; `None` preserves the compile-per-chunk CLI
/// behaviour. Totals are bit-identical either way.
///
/// # Errors
///
/// As [`measure`], plus checkpoint manifest I/O and decode errors, and
/// [`CoreError::TapeMismatch`](ocapi::CoreError) via [`BenchError::Item`]
/// when `tape` was compiled from a different design.
#[allow(clippy::too_many_arguments)]
pub fn measure_batched(
    rb: &Robust,
    stream: &str,
    channel: &[f64],
    noise: f64,
    adapt: bool,
    n_bursts: u64,
    payload_len: usize,
    lanes: usize,
    level: OptLevel,
    tape: Option<&CompiledTape>,
) -> Result<BerCount, BenchError> {
    let cfg = TransceiverConfig {
        train: adapt,
        agc: false,
        adapt,
    };
    let fp = point_fingerprint(stream, channel, noise, adapt as u64, n_bursts, payload_len);
    let parts = rb.run_chunked(
        stream,
        fp,
        n_bursts as usize,
        lanes.max(1),
        BerCount::encode,
        BerCount::decode,
        |seeds| {
            batched_chunk(
                &cfg,
                channel,
                noise,
                None,
                payload_len,
                level,
                tape,
                rb.obs,
                seeds,
            )
        },
    )?;
    Ok(sum(parts))
}

/// [`measure_with_faults`] over the lane-batched back-end: one
/// independent fault plan per burst (seeded `0xdec7 + burst`, keyed on
/// the burst's *global* index — never its lane), applied per lane
/// before every shared tape pass. A lane whose faults trip a typed
/// error is masked off and its burst counted fully errored, exactly as
/// the scalar path's `Err` branch, without aborting the chunk. Under a
/// checkpointing [`Robust`] envelope, per-burst counts land in the
/// `stream` manifest and `--resume` skips completed bursts.
///
/// # Errors
///
/// As [`measure_batched`].
#[allow(clippy::too_many_arguments)]
pub fn measure_with_faults_batched(
    rb: &Robust,
    stream: &str,
    channel: &[f64],
    noise: f64,
    rate: f64,
    n_bursts: u64,
    payload_len: usize,
    lanes: usize,
    level: OptLevel,
    tape: Option<&CompiledTape>,
) -> Result<BerCount, BenchError> {
    let cfg = TransceiverConfig {
        train: true,
        agc: false,
        adapt: true,
    };
    let fp = point_fingerprint(
        stream,
        channel,
        noise,
        rate.to_bits(),
        n_bursts,
        payload_len,
    );
    let parts = rb.run_chunked(
        stream,
        fp,
        n_bursts as usize,
        lanes.max(1),
        BerCount::encode,
        BerCount::decode,
        |seeds| {
            batched_chunk(
                &cfg,
                channel,
                noise,
                Some(rate),
                payload_len,
                level,
                tape,
                rb.obs,
                seeds,
            )
        },
    )?;
    Ok(sum(parts))
}

/// Formats a BER for the tables: `<1/bits` when no errors were seen.
pub fn fmt_ber(c: BerCount) -> String {
    if c.errors == 0 {
        format!("<{:.1e}", 1.0 / c.bits as f64)
    } else {
        format!("{:.2e}", c.rate())
    }
}
