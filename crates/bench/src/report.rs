//! Machine-readable benchmark output: the perf-trajectory record
//! (`BENCH_PR.json`) and the deterministic results file the CI
//! determinism job byte-diffs across thread counts.
//!
//! The serializer is hand-rolled (the workspace builds offline with
//! zero registry dependencies) and intentionally boring: objects with
//! insertion-ordered keys, numbers rendered with Rust's
//! shortest-roundtrip formatting, no floats derived from timers in the
//! *results* section. The split matters:
//!
//! * **results** — pure functions of (workload, seed): fault
//!   classification counts, coverage, signatures, BER points. Identical
//!   for every `--threads N`, so `cmp` on two results files is the
//!   determinism check.
//! * **perf** — wall-clock throughput: cycles/sec, runs/sec, per-worker
//!   utilization, speedups. Different on every run; tracked over PRs as
//!   the repo's performance trajectory.

use std::io::Write as _;

use ocapi::PoolStats;

use crate::cli::BenchArgs;

/// Escapes a string for a JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an f64 as a JSON number (finite values only; NaN/inf become
/// null, which JSON has no number for).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Collects key → value pairs for one benchmark binary and writes the
/// two JSON files selected by the CLI.
#[derive(Debug, Clone, Default)]
pub struct Reporter {
    bin: String,
    results: Vec<(String, String)>,
    perf: Vec<(String, String)>,
}

impl Reporter {
    /// A reporter for the named binary.
    pub fn new(bin: &str) -> Reporter {
        Reporter {
            bin: bin.to_owned(),
            ..Reporter::default()
        }
    }

    /// Records a deterministic integer result.
    pub fn result_u64(&mut self, key: &str, v: u64) {
        self.results.push((key.to_owned(), v.to_string()));
    }

    /// Records a deterministic float result (a pure function of the
    /// workload, e.g. a BER — never a timing).
    pub fn result_f64(&mut self, key: &str, v: f64) {
        self.results.push((key.to_owned(), num(v)));
    }

    /// Records a deterministic string result (e.g. a hex signature).
    pub fn result_str(&mut self, key: &str, v: &str) {
        self.results
            .push((key.to_owned(), format!("\"{}\"", escape(v))));
    }

    /// Records a throughput/perf metric.
    pub fn perf_f64(&mut self, key: &str, v: f64) {
        self.perf.push((key.to_owned(), num(v)));
    }

    /// Records an integer perf metric.
    pub fn perf_u64(&mut self, key: &str, v: u64) {
        self.perf.push((key.to_owned(), v.to_string()));
    }

    /// Records a string perf annotation (e.g. which engine ran —
    /// configuration that belongs next to the timings, not in the
    /// deterministic results).
    pub fn perf_str(&mut self, key: &str, v: &str) {
        self.perf
            .push((key.to_owned(), format!("\"{}\"", escape(v))));
    }

    /// Records the observability counters of one sharded map under
    /// `prefix`: items, items/sec, wall seconds, worker count and mean
    /// utilization.
    pub fn perf_pool(&mut self, prefix: &str, stats: &PoolStats) {
        self.perf_u64(&format!("{prefix}_items"), stats.items as u64);
        self.perf_f64(&format!("{prefix}_items_per_sec"), stats.items_per_sec());
        self.perf_f64(&format!("{prefix}_wall_secs"), stats.wall_secs);
        self.perf_u64(&format!("{prefix}_workers"), stats.threads as u64);
        self.perf_f64(&format!("{prefix}_utilization"), stats.utilization());
    }

    fn object(pairs: &[(String, String)]) -> String {
        let body: Vec<String> = pairs
            .iter()
            .map(|(k, v)| format!("    \"{}\": {}", escape(k), v))
            .collect();
        format!("{{\n{}\n  }}", body.join(",\n"))
    }

    /// The deterministic results document. Contains no timings and no
    /// thread count: byte-identical across `--threads` values.
    pub fn results_json(&self) -> String {
        format!(
            "{{\n  \"bin\": \"{}\",\n  \"results\": {}\n}}\n",
            escape(&self.bin),
            Reporter::object(&self.results)
        )
    }

    /// The perf document: run configuration plus throughput metrics.
    pub fn perf_json(&self, args: &BenchArgs) -> String {
        format!(
            "{{\n  \"bin\": \"{}\",\n  \"threads\": {},\n  \"lanes\": {},\n  \"quick\": {},\n  \"opt\": {},\n  \"engine\": \"{}\",\n  \"partitions\": {},\n  \"perf\": {}\n}}\n",
            escape(&self.bin),
            args.threads,
            args.lanes,
            args.quick,
            args.opt,
            args.engine.as_str(),
            args.partitions,
            Reporter::object(&self.perf)
        )
    }

    /// Writes whichever files the CLI asked for, atomically (see
    /// [`write_atomic`]): a crash or kill during the write leaves either
    /// the previous file or the complete new one, never a torn JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating, writing or renaming.
    pub fn write(&self, args: &BenchArgs) -> std::io::Result<()> {
        if let Some(path) = &args.json {
            write_atomic(path, self.results_json().as_bytes())?;
        }
        if let Some(path) = &args.perf_json {
            write_atomic(path, self.perf_json(args).as_bytes())?;
        }
        Ok(())
    }
}

/// Atomically replaces `path` with `contents`: the bytes are written to
/// a sibling temp file, fsynced to disk, and renamed over `path`. On a
/// POSIX filesystem the rename is atomic, so readers (and a run killed
/// mid-write) see either the old file or the complete new one — the
/// write discipline shared by every `--json`/`--perf-json`/
/// `--profile-json` report and by the checkpoint manifests.
///
/// # Errors
///
/// Propagates I/O errors from creating, writing, syncing or renaming.
pub fn write_atomic(path: &str, contents: &[u8]) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Writes the observability profile (`--profile-json`) if the CLI asked
/// for it. The document's `deterministic` section (counter totals, span
/// tree structure, event totals) is byte-identical across thread counts;
/// `timing` carries the advisory wall-clock data.
///
/// # Errors
///
/// Propagates I/O errors from creating, writing or renaming the file.
pub fn write_profile(args: &BenchArgs, reg: &ocapi_obs::Registry) -> std::io::Result<()> {
    if let Some(path) = &args.profile_json {
        write_atomic(path, reg.profile_json(&args.bin).as_bytes())?;
    }
    Ok(())
}
