//! The benchmark harness error vocabulary.
//!
//! Every binary follows the same exit discipline: argument parse errors
//! exit 2 (handled inside [`crate::cli::parse_args`]), runtime failures
//! propagate a [`BenchError`] out of the bin's `run()` and exit 1 with
//! the error printed to stderr. Panics are reserved for broken
//! invariants (determinism assertions), not for I/O or workload errors.

use std::error::Error;
use std::fmt;

use ocapi::CoreError;
use ocapi_gatesim::GateError;
use ocapi_hdl::CodegenError;
use ocapi_synth::SynthError;

/// A benchmark-harness failure: I/O on report/checkpoint files, a core
/// simulation error, a failed or panicked work item of a sharded run, or
/// a checkpoint manifest problem.
#[derive(Debug)]
pub enum BenchError {
    /// Report or checkpoint file I/O failed.
    Io(std::io::Error),
    /// A simulation/capture error outside any sharded run.
    Core(CoreError),
    /// A gate-level simulation error outside any sharded run.
    Gate(GateError),
    /// A synthesis error while generating a netlist for gate-level work.
    Synth(SynthError),
    /// An HDL code-generation error while counting generated lines.
    Codegen(CodegenError),
    /// Work item `index` of a sharded run failed after all retry
    /// attempts.
    Item {
        /// Global index of the failed item (lowest-indexed failure,
        /// deterministic for every thread count).
        index: usize,
        /// The item's final error.
        error: CoreError,
    },
    /// Work item `index` panicked in a worker after all retry attempts.
    Panic {
        /// Global index of the panicked item.
        index: usize,
    },
    /// A checkpoint manifest was missing, damaged, or written by a
    /// different workload configuration.
    Checkpoint(String),
    /// A benchmark-driver invariant failed (e.g. an empty workload where
    /// at least one item is guaranteed).
    Driver(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Io(e) => write!(f, "i/o error: {e}"),
            BenchError::Core(e) => write!(f, "{e}"),
            BenchError::Gate(e) => write!(f, "{e}"),
            BenchError::Synth(e) => write!(f, "{e}"),
            BenchError::Codegen(e) => write!(f, "{e}"),
            BenchError::Item { index, error } => {
                write!(f, "work item {index} failed: {error}")
            }
            BenchError::Panic { index } => {
                write!(f, "work item {index} panicked in a worker thread")
            }
            BenchError::Checkpoint(msg) => write!(f, "checkpoint: {msg}"),
            BenchError::Driver(msg) => write!(f, "driver invariant: {msg}"),
        }
    }
}

impl Error for BenchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BenchError::Io(e) => Some(e),
            BenchError::Core(e) | BenchError::Item { error: e, .. } => Some(e),
            BenchError::Gate(e) => Some(e),
            BenchError::Synth(e) => Some(e),
            BenchError::Codegen(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BenchError {
    fn from(e: std::io::Error) -> BenchError {
        BenchError::Io(e)
    }
}

impl From<CoreError> for BenchError {
    fn from(e: CoreError) -> BenchError {
        BenchError::Core(e)
    }
}

impl From<GateError> for BenchError {
    fn from(e: GateError) -> BenchError {
        BenchError::Gate(e)
    }
}

impl From<SynthError> for BenchError {
    fn from(e: SynthError) -> BenchError {
        BenchError::Synth(e)
    }
}

impl From<CodegenError> for BenchError {
    fn from(e: CodegenError) -> BenchError {
        BenchError::Codegen(e)
    }
}
