//! Bit-error-rate sweep of the DECT transceiver: BER versus channel
//! noise and multipath severity, with and without the adaptive
//! equalizer's training — the evaluation a receiver designer runs before
//! committing an architecture (an extension beyond the paper's Table 1,
//! using only the machinery the paper describes). A second sweep injects
//! random hardware faults into the running receiver with [`FaultySim`]
//! and plots BER versus injected fault rate: the graceful-degradation
//! curve of the architecture itself.
//!
//! Run with `cargo run --release -p ocapi-bench --bin ber_sweep`.

use ocapi::sim::fault::FaultPlan;
use ocapi::{FaultySim, InterpSim};
use ocapi_designs::dect::burst::{generate, BurstConfig};
use ocapi_designs::dect::transceiver::{
    build_system, run_burst, TransceiverConfig, CYCLES_PER_SYMBOL,
};
use ocapi_designs::dect::DELAY;

/// Runs `n_bursts` bursts and returns (errors, bits). With `adapt` off
/// the LMS update instruction is removed from the program: a fixed
/// centre-tap receiver, the no-equalizer baseline.
fn measure(channel: &[f64], noise: f64, adapt: bool, n_bursts: u64) -> (u64, u64) {
    let cfg = TransceiverConfig {
        train: adapt,
        agc: false,
        adapt,
    };
    let mut errors = 0;
    let mut bits = 0;
    for seed in 0..n_bursts {
        let burst = generate(&BurstConfig {
            payload_len: 160,
            channel: channel.to_vec(),
            noise,
            seed: 1000 + seed,
        });
        let mut sim = InterpSim::new(build_system(&cfg).expect("build")).expect("sim");
        let records = run_burst(&mut sim, &burst, None).expect("burst");
        for (k, rec) in records.iter().enumerate().skip(burst.payload_start + DELAY) {
            bits += 1;
            if burst.bits[k - DELAY] != rec.bit {
                errors += 1;
            }
        }
    }
    (errors, bits)
}

/// Same measurement with random transient bit flips injected into the
/// receiver's registers and nets at `rate` faults per clock cycle.
fn measure_with_faults(channel: &[f64], noise: f64, rate: f64, n_bursts: u64) -> (u64, u64) {
    let cfg = TransceiverConfig {
        train: true,
        agc: false,
        adapt: true,
    };
    let mut errors = 0;
    let mut bits = 0;
    for seed in 0..n_bursts {
        let burst = generate(&BurstConfig {
            payload_len: 160,
            channel: channel.to_vec(),
            noise,
            seed: 1000 + seed,
        });
        let sys = build_system(&cfg).expect("build");
        let cycles = (burst.samples.len() * CYCLES_PER_SYMBOL) as u64;
        let plan = FaultPlan::random(&sys, cycles, rate, 0xdec7 + seed);
        let mut sim = FaultySim::new(InterpSim::new(sys).expect("sim"), plan);
        // A heavily faulted run may trip a typed error (that is the
        // detection path working); count its burst as fully errored.
        match run_burst(&mut sim, &burst, None) {
            Ok(records) => {
                for (k, rec) in records.iter().enumerate().skip(burst.payload_start + DELAY) {
                    bits += 1;
                    if burst.bits[k - DELAY] != rec.bit {
                        errors += 1;
                    }
                }
            }
            Err(_) => {
                let n = burst.bits.len().saturating_sub(burst.payload_start + DELAY) as u64;
                bits += n;
                errors += n;
            }
        }
    }
    (errors, bits)
}

fn fmt_ber(errors: u64, bits: u64) -> String {
    if errors == 0 {
        format!("<{:.1e}", 1.0 / bits as f64)
    } else {
        format!("{:.2e}", errors as f64 / bits as f64)
    }
}

fn main() {
    let bursts = 8;
    println!("DECT payload BER (160-bit payloads x {bursts} bursts per point)\n");
    println!(
        "{:<22} {:>7} {:>14} {:>15}",
        "channel", "noise", "BER equalized", "BER fixed-tap"
    );
    for channel in [
        vec![1.0],
        vec![1.0, 0.45],
        vec![1.0, 0.65, 0.35],
        vec![0.8, 0.7, -0.3],
    ] {
        for noise in [0.05, 0.25, 0.45] {
            let (e1, b1) = measure(&channel, noise, true, bursts);
            let (e0, b0) = measure(&channel, noise, false, bursts);
            println!(
                "{:<22} {:>7.2} {:>14} {:>15}",
                format!("{channel:?}"),
                noise,
                fmt_ber(e1, b1),
                fmt_ber(e0, b0)
            );
        }
    }
    // Fault-injection sweep: BER of the equalized receiver on a mild
    // channel as random transient flips hit the hardware.
    println!("\nBER vs injected hardware fault rate (channel [1.0, 0.45], noise 0.05):");
    println!("{:<22} {:>14}", "faults per cycle", "BER equalized");
    for rate in [0.0, 1e-4, 1e-3, 1e-2, 5e-2, 2e-1] {
        let (e, b) = measure_with_faults(&[1.0, 0.45], 0.05, rate, bursts);
        println!("{rate:<22} {:>14}", fmt_ber(e, b));
    }

    println!(
        "\nReading the sweep: on the hard-but-equalisable channel\n\
         [1.0, 0.65, 0.35] the trained equalizer buys two orders of\n\
         magnitude of BER at low noise — the gates of the 11 MAC datapaths\n\
         earning their keep. The severe non-minimum-phase channel\n\
         [0.8, 0.7, -0.3] defeats a short linear equalizer regardless\n\
         (decision feedback territory), and at very high noise the\n\
         decision-directed tail of the adaptation can even misadapt —\n\
         both classical, expected behaviours."
    );
}
