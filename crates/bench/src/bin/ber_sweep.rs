//! Bit-error-rate sweep of the DECT transceiver: BER versus channel
//! noise and multipath severity, with and without the adaptive
//! equalizer's training — the evaluation a receiver designer runs before
//! committing an architecture (an extension beyond the paper's Table 1,
//! using only the machinery the paper describes). A second sweep injects
//! random hardware faults into the running receiver with `FaultySim`
//! and plots BER versus injected fault rate: the graceful-degradation
//! curve of the architecture itself.
//!
//! Bursts are independent seeded runs, so the sweep shards across the
//! `--threads N` worker pool with bit-identical totals for every `N`,
//! and batches across the `--lanes N` lanes of the compiled tape
//! executor with bit-identical totals for every lane count (the CI
//! determinism job diffs the `--json` output across both axes). With
//! `--checkpoint DIR` every sweep point writes an atomic per-burst
//! manifest, and a killed run resumed with `--resume` produces
//! byte-identical JSON — the CI kill-and-resume job enforces this. A
//! scalar-vs-batched head-to-head on one sweep point records the
//! batching payoff in the perf trajectory. Run with:
//!
//! `cargo run --release -p ocapi-bench --bin ber_sweep -- [--threads N] [--lanes N] [--quick]`

#![deny(clippy::unwrap_used, clippy::expect_used)]

use ocapi::CompiledTape;
use ocapi_bench::ber::{fmt_ber, measure, measure_batched, measure_with_faults_batched};
use ocapi_bench::{parse_args, timed, write_profile, BenchError, Reporter, Robust};
use ocapi_designs::dect::transceiver::{build_system, TransceiverConfig};
use ocapi_obs::Registry;

fn main() {
    let args = parse_args("ber_sweep");
    if let Err(e) = run(&args) {
        eprintln!("ber_sweep: {e}");
        std::process::exit(1);
    }
}

fn run(args: &ocapi_bench::BenchArgs) -> Result<(), BenchError> {
    let pool = args.pool();
    let lanes = args.lanes;
    let level = args.opt_level();
    let mut rep = Reporter::new("ber_sweep");
    let obs = Registry::new();
    let rb = Robust::new(args, &pool, Some(&obs));
    let root = obs.span("ber_sweep");

    // Both receiver configurations compile once up front; every chunk
    // of every sweep point reuses the cached tape instead of
    // re-levelizing — the same artifact the simulation service caches.
    let sw_compile = ocapi_obs::Stopwatch::start();
    let cfg_eq = TransceiverConfig {
        train: true,
        agc: false,
        adapt: true,
    };
    let cfg_fixed = TransceiverConfig {
        train: false,
        agc: false,
        adapt: false,
    };
    let tape_eq = CompiledTape::compile(&build_system(&cfg_eq)?, level)?;
    let tape_fixed = CompiledTape::compile(&build_system(&cfg_fixed)?, level)?;
    let compile_secs = sw_compile.elapsed_secs();

    let (bursts, payload) = if args.quick { (2, 64) } else { (8, 160) };
    println!("DECT payload BER ({payload}-bit payloads x {bursts} bursts per point)\n");
    println!(
        "{:<22} {:>7} {:>14} {:>15}",
        "channel", "noise", "BER equalized", "BER fixed-tap"
    );
    let channels: &[Vec<f64>] = if args.quick {
        &[vec![1.0], vec![1.0, 0.65, 0.35]]
    } else {
        &[
            vec![1.0],
            vec![1.0, 0.45],
            vec![1.0, 0.65, 0.35],
            vec![0.8, 0.7, -0.3],
        ]
    };
    let noises: &[f64] = if args.quick {
        &[0.05, 0.45]
    } else {
        &[0.05, 0.25, 0.45]
    };

    let mut total_runs = 0u64;
    let t_sweep = root.child("noise_sweep").timer();
    let sw_sweep = ocapi_obs::Stopwatch::start();
    for channel in channels {
        for &noise in noises {
            let key = format!("ch{channel:?}_n{noise}");
            let eq = measure_batched(
                &rb,
                &format!("eq_{key}"),
                channel,
                noise,
                true,
                bursts,
                payload,
                lanes,
                level,
                Some(&tape_eq),
            )?;
            let fixed = measure_batched(
                &rb,
                &format!("fixed_{key}"),
                channel,
                noise,
                false,
                bursts,
                payload,
                lanes,
                level,
                Some(&tape_fixed),
            )?;
            total_runs += 2 * bursts;
            println!(
                "{:<22} {:>7.2} {:>14} {:>15}",
                format!("{channel:?}"),
                noise,
                fmt_ber(eq),
                fmt_ber(fixed)
            );
            rep.result_u64(&format!("{key}_eq_errors"), eq.errors);
            rep.result_u64(&format!("{key}_eq_bits"), eq.bits);
            rep.result_u64(&format!("{key}_fixed_errors"), fixed.errors);
            rep.result_u64(&format!("{key}_fixed_bits"), fixed.bits);
        }
    }
    let sweep_secs = sw_sweep.elapsed_secs();
    drop(t_sweep);

    // Fault-injection sweep: BER of the equalized receiver on a mild
    // channel as random transient flips hit the hardware.
    println!("\nBER vs injected hardware fault rate (channel [1.0, 0.45], noise 0.05):");
    println!("{:<22} {:>14}", "faults per cycle", "BER equalized");
    let rates: &[f64] = if args.quick {
        &[0.0, 1e-2, 2e-1]
    } else {
        &[0.0, 1e-4, 1e-3, 1e-2, 5e-2, 2e-1]
    };
    let t_fault = root.child("fault_sweep").timer();
    let sw_fault = ocapi_obs::Stopwatch::start();
    for &rate in rates {
        let c = measure_with_faults_batched(
            &rb,
            &format!("fault_r{rate}"),
            &[1.0, 0.45],
            0.05,
            rate,
            bursts,
            payload,
            lanes,
            level,
            Some(&tape_eq),
        )?;
        total_runs += bursts;
        println!("{rate:<22} {:>14}", fmt_ber(c));
        rep.result_u64(&format!("fault_r{rate}_errors"), c.errors);
        rep.result_u64(&format!("fault_r{rate}_bits"), c.bits);
    }
    let fault_secs = sw_fault.elapsed_secs();
    drop(t_fault);
    obs.counter("ber.burst_runs").add(total_runs);

    if !args.quick {
        println!(
            "\nReading the sweep: on the hard-but-equalisable channel\n\
             [1.0, 0.65, 0.35] the trained equalizer buys two orders of\n\
             magnitude of BER at low noise — the gates of the 11 MAC datapaths\n\
             earning their keep. The severe non-minimum-phase channel\n\
             [0.8, 0.7, -0.3] defeats a short linear equalizer regardless\n\
             (decision feedback territory), and at very high noise the\n\
             decision-directed tail of the adaptation can even misadapt —\n\
             both classical, expected behaviours."
        );
    }

    // Scalar-vs-batched head-to-head on one equalised sweep point: the
    // interpreted one-burst-at-a-time path against the lane-batched
    // compiled tape at `--lanes`. Identical counts are asserted (the
    // batching contract), and both throughputs land in the perf record
    // — CI gates on batched_runs_per_sec rising with the lane count.
    // Deliberately uncheckpointed: it is a timing probe, not a campaign.
    let hh_bursts = if args.quick { 8 } else { 16 };
    let hh_channel = [1.0, 0.65, 0.35];
    let rb_plain = Robust::plain(&pool);
    let t_hh = root.child("head_to_head").timer();
    let (scalar_hh, scalar_secs) =
        timed(|| measure(&pool, &hh_channel, 0.05, true, hh_bursts, payload));
    let scalar_hh = scalar_hh?;
    let (batched_hh, batched_secs) = timed(|| {
        measure_batched(
            &rb_plain,
            "head_to_head",
            &hh_channel,
            0.05,
            true,
            hh_bursts,
            payload,
            lanes,
            level,
            Some(&tape_eq),
        )
    });
    let batched_hh = batched_hh?;
    drop(t_hh);
    assert_eq!(batched_hh, scalar_hh, "batched BER diverged from scalar");
    println!(
        "\nscalar vs batched ({hh_bursts} bursts): scalar {scalar_secs:.2}s, \
         batched x{lanes} {batched_secs:.2}s ({:.2}x)",
        scalar_secs / batched_secs.max(1e-12)
    );

    let wall = sweep_secs + fault_secs;
    rep.perf_f64("tape_compile_secs", compile_secs);
    rep.perf_f64("sweep_wall_secs", wall);
    rep.perf_u64("burst_runs", total_runs);
    rep.perf_f64("runs_per_sec", total_runs as f64 / wall.max(1e-12));
    // Packed word operations executed by the batched sweeps' bitsliced
    // Bool segments (the `batch.word_ops` counter, DESIGN.md §13): a
    // perf-trajectory record of how much of the tape ran word-parallel.
    // Zero only if every eligible run had a masked lane — the sweeps
    // above always include fault-free points, so a vanishing counter
    // means the word planner regressed.
    rep.perf_u64("batch_word_ops", obs.counter("batch.word_ops").get());
    rep.perf_f64(
        "scalar_runs_per_sec",
        hh_bursts as f64 / scalar_secs.max(1e-12),
    );
    rep.perf_f64(
        "batched_runs_per_sec",
        hh_bursts as f64 / batched_secs.max(1e-12),
    );
    rep.write(args)?;
    write_profile(args, &obs)?;
    Ok(())
}
