//! Fault coverage and fault tolerance of the HCOR correlator, at two
//! levels of the paper's design hierarchy:
//!
//! * **Gate level** — stuck-at coverage of the generated verification
//!   testbenches, an extension of the paper's Figure 8 story: the
//!   testbench vectors recorded from system simulation double as a
//!   manufacturing test set, and fault simulation grades them.
//! * **System level** — a cycle-true [`FaultySim`] campaign over every
//!   register and net of the captured system, classifying each injected
//!   fault as masked, silently corrupting, or detected.
//!
//! Run with `cargo run --release -p ocapi-bench --bin fault_coverage`.

use ocapi::rng::XorShift64;
use ocapi::sim::fault::{run_campaign, FaultEvent, FaultPlan};
use ocapi::{InterpSim, Simulator, Value};
use ocapi_designs::hcor;
use ocapi_gatesim::fault::{stuck_at_coverage, stuck_at_coverage_parallel, CycleStimulus};
use ocapi_gatesim::{GateError, GateSim};
use ocapi_synth::{synthesize, SynthOptions};

/// Drives the HCOR netlist with a bit stream (cycling through the given
/// thresholds) and observes every output every cycle.
fn drive<'a>(
    bits: &'a [bool],
    thresholds: &'a [u64],
) -> impl FnMut(&mut GateSim) -> Result<Vec<u64>, GateError> + 'a {
    move |sim: &mut GateSim| {
        let bit = sim.netlist().input_by_name("bit_in").expect("in").to_vec();
        let en = sim.netlist().input_by_name("enable").expect("in").to_vec();
        let th = sim
            .netlist()
            .input_by_name("threshold")
            .expect("in")
            .to_vec();
        let corr = sim.netlist().output_by_name("corr").expect("out").to_vec();
        let det = sim
            .netlist()
            .output_by_name("detect")
            .expect("out")
            .to_vec();
        let pos = sim
            .netlist()
            .output_by_name("sync_pos")
            .expect("out")
            .to_vec();
        bits.iter()
            .enumerate()
            .map(|(k, b)| {
                sim.set_bus(&bit, *b as u64);
                sim.set_bus(&en, 1);
                sim.set_bus(&th, thresholds[(k / 32) % thresholds.len()]);
                sim.settle()?;
                sim.clock()?;
                Ok(sim.bus(&corr) | (sim.bus(&det) << 8) | (sim.bus(&pos) << 16))
            })
            .collect()
    }
}

/// System-level fault campaign: sweep every fault site of the captured
/// HCOR system with transient flips and stuck-at faults, running the
/// interpreted simulator under [`ocapi::FaultySim`].
fn system_level_campaign() {
    let sys = hcor::build_system().expect("build");
    let sites = FaultPlan::sites(&sys);
    let bits = hcor::test_pattern(112, 7);
    let cycles = bits.len() as u64;

    // One transient flip mid-burst and one five-cycle stuck-at-1 per
    // site, on a low and a high bit of the site's word.
    let mut events: Vec<FaultEvent> = Vec::new();
    for site in &sites {
        let width = FaultPlan::site_width(&sys, site);
        events.push(FaultEvent::flip(site.clone(), 0, cycles / 3));
        events.push(FaultEvent::flip(site.clone(), width - 1, cycles / 2));
        events.push(FaultEvent::stuck_at(site.clone(), 0, true, cycles / 4, 5));
    }

    let stimulus = |sim: &mut dyn Simulator, cycle: u64| {
        sim.set_input("enable", Value::Bool(true))?;
        sim.set_input("threshold", Value::bits(5, 11))?;
        sim.set_input("bit_in", Value::Bool(bits[cycle as usize]))?;
        Ok(())
    };

    let report = run_campaign(
        || InterpSim::new(hcor::build_system().expect("build")),
        stimulus,
        cycles,
        &events,
    )
    .expect("campaign");

    println!(
        "\nsystem-level FaultySim campaign on HCOR ({} sites, {} injections, {} cycles each):",
        sites.len(),
        report.total(),
        cycles
    );
    println!(
        "  masked             {:>6}  ({:.1}%)",
        report.masked(),
        100.0 * report.masked() as f64 / report.total() as f64
    );
    println!(
        "  silent corruption  {:>6}  ({:.1}%)",
        report.silent(),
        100.0 * report.silent_rate()
    );
    println!("  detected (error)   {:>6}", report.detected());
    if let Some(lat) = report.mean_detection_latency() {
        println!("  mean latency to first visible effect: {lat:.1} cycles");
    }

    // Graceful degradation: per-cycle output corruption and sync
    // detection vs injected fault rate. Random single-cycle flips at
    // increasing per-cycle probability, compared against the fault-free
    // run cycle by cycle.
    let outputs = ["detect", "corr", "sync_pos"];
    let mut golden: Vec<Vec<Value>> = Vec::with_capacity(bits.len());
    let mut sim = InterpSim::new(hcor::build_system().expect("build")).expect("sim");
    for b in &bits {
        sim.set_input("enable", Value::Bool(true)).expect("set");
        sim.set_input("threshold", Value::bits(5, 11)).expect("set");
        sim.set_input("bit_in", Value::Bool(*b)).expect("set");
        sim.step().expect("step");
        golden.push(outputs.map(|o| sim.output(o).expect("out")).to_vec());
    }

    println!("\ngraceful degradation vs injected fault rate (random single-cycle flips):");
    println!(
        "  {:>10} {:>6} {:>16} {:>12}",
        "fault rate", "runs", "corrupted cycles", "sync found"
    );
    for rate in [0.0, 0.05, 0.2, 0.5, 1.0, 2.0f64] {
        let runs = 20u64;
        let mut detects = 0u64;
        let mut corrupted = 0u64;
        for seed in 0..runs {
            // `rate` > 1 approximates multiple faults per cycle by
            // stacking independent random plans.
            let mut plan = FaultPlan::random(&sys, cycles, rate.min(1.0), 0xfa117 + seed);
            if rate > 1.0 {
                for e in FaultPlan::random(&sys, cycles, rate - 1.0, 0x5eed + seed).events() {
                    plan.push(e.clone());
                }
            }
            let mut sim = ocapi::FaultySim::new(
                InterpSim::new(hcor::build_system().expect("build")).expect("sim"),
                plan,
            );
            let mut detected = false;
            for (cyc, b) in bits.iter().enumerate() {
                if sim.set_input("enable", Value::Bool(true)).is_err()
                    || sim.set_input("threshold", Value::bits(5, 11)).is_err()
                    || sim.set_input("bit_in", Value::Bool(*b)).is_err()
                    || sim.step().is_err()
                {
                    break;
                }
                let now: Vec<Value> = outputs.map(|o| sim.output(o).expect("out")).to_vec();
                if now != golden[cyc] {
                    corrupted += 1;
                }
                if now[0] == Value::Bool(true) {
                    detected = true;
                }
            }
            detects += detected as u64;
        }
        println!(
            "  {rate:>10.2} {runs:>6} {:>15.1}% {detects:>9}/{runs}",
            100.0 * corrupted as f64 / (runs * cycles) as f64
        );
    }
}

fn main() {
    let comp = hcor::build_component().expect("build");
    let netlist = synthesize(&comp, &SynthOptions::default()).expect("synthesis");
    println!(
        "HCOR netlist: {} gates, {} FF — {} stuck-at faults",
        netlist.netlist.combinational_count(),
        netlist.netlist.dff_count(),
        2 * (netlist.netlist.combinational_count() + netlist.netlist.dff_count())
    );
    println!(
        "\n{:<38} {:>8} {:>10} {:>10}",
        "vector set", "cycles", "detected", "coverage"
    );

    let mut sets: Vec<(String, Vec<bool>, Vec<u64>)> = Vec::new();
    // The functional pattern the generated testbench replays (burst with
    // the sync word at a known offset), at two lengths.
    for n in [64usize, 256] {
        sets.push((
            format!("generated testbench (burst, {n})"),
            hcor::test_pattern(n, 7),
            vec![11],
        ));
    }
    // The same burst with a threshold sweep between segments.
    sets.push((
        "burst + threshold sweep (256)".into(),
        hcor::test_pattern(256, 7),
        vec![15, 11, 31, 9],
    ));
    // Random bits, same lengths.
    let mut rng = XorShift64::new(0x2545f4914f6cdd1d);
    for n in [64usize, 256] {
        let bits = (0..n).map(|_| rng.next_bool()).collect();
        sets.push((format!("random bits ({n})"), bits, vec![11]));
    }
    // The lower bound: a constant stream never exercises the datapath.
    sets.push(("all-zero idle (64)".into(), vec![false; 64], vec![11]));

    let mut best: Option<ocapi_gatesim::fault::FaultReport> = None;
    for (label, bits, thresholds) in &sets {
        let rep =
            stuck_at_coverage(&netlist.netlist, drive(bits, thresholds)).expect("fault grade");
        println!(
            "{:<38} {:>8} {:>10} {:>9.1}%",
            label,
            bits.len(),
            rep.detected,
            100.0 * rep.coverage()
        );
        if best.as_ref().is_none_or(|b| rep.detected > b.detected) {
            best = Some(rep);
        }
    }

    // Where do the escapes of the best set live?
    let best = best.expect("at least one set");
    let mut by_kind: std::collections::BTreeMap<String, usize> = Default::default();
    for f in &best.undetected {
        let kind = netlist.netlist.gates[f.gate].kind;
        *by_kind.entry(format!("{kind:?}")).or_default() += 1;
    }
    println!("\nundetected faults of the best set, by gate kind:");
    for (k, n) in &by_kind {
        println!("  {k:<8} {n:>6}");
    }

    // BIST: pseudo-random LFSR patterns, graded with the parallel
    // engine; the MISR signature is what an on-chip comparison fuses.
    use ocapi_gatesim::bist;
    // Two BIST disciplines: fully random, and enable held high (classic
    // constrained BIST on control pins). Both plateau early: the locked
    // state is terminal (only a global reset leaves it), so the first
    // random low threshold freezes the machine and everything behind
    // the lock becomes unobservable — this design needs a reset between
    // BIST sessions, which is itself a finding fault grading surfaces.
    for (label, constrain) in [("LFSR BIST", false), ("LFSR BIST, enable held", true)] {
        for patterns in [256usize, 2048] {
            let mut stim = bist::lfsr_stimulus(&netlist.netlist, patterns, 0xace1);
            if constrain {
                for cyc in &mut stim {
                    for (name, v) in &mut cyc.inputs {
                        if name == "enable" {
                            *v = 1;
                        }
                    }
                }
            }
            let rep = stuck_at_coverage_parallel(&netlist.netlist, &stim);
            let sig = bist::golden_signature(&netlist.netlist, &stim).expect("bist");
            println!(
                "{:<38} {:>8} {:>10} {:>9.1}%   signature {:08x}",
                format!("{label} ({patterns})"),
                patterns,
                rep.detected,
                100.0 * rep.coverage(),
                sig.signature
            );
        }
    }

    // Engine ablation: serial (one rebuilt simulator per fault) vs the
    // 64-way bit-parallel engine, on the longest vector set.
    let bits = hcor::test_pattern(256, 7);
    let stimuli: Vec<CycleStimulus> = bits
        .iter()
        .map(|b| CycleStimulus {
            inputs: vec![
                ("bit_in".into(), *b as u64),
                ("enable".into(), 1),
                ("threshold".into(), 11),
            ],
        })
        .collect();
    let t = std::time::Instant::now();
    let serial = stuck_at_coverage(&netlist.netlist, drive(&bits, &[11])).expect("fault grade");
    let t_serial = t.elapsed().as_secs_f64();
    let t = std::time::Instant::now();
    let parallel = stuck_at_coverage_parallel(&netlist.netlist, &stimuli);
    let t_parallel = t.elapsed().as_secs_f64();
    assert_eq!(serial.detected, parallel.detected, "engines disagree");
    assert_eq!(serial.undetected, parallel.undetected, "engines disagree");
    println!(
        "\nengine ablation on the 256-symbol burst ({} faults, identical reports):",
        serial.total
    );
    println!("  serial       {t_serial:>8.2} s");
    println!(
        "  bit-parallel {t_parallel:>8.2} s   ({:.0}x faster)",
        t_serial / t_parallel
    );

    println!(
        "\nReading the table: any data-rich stream (functional burst or\n\
         random) saturates the datapath cone within one correlator fill,\n\
         so doubling the vector count buys nothing — the remaining faults\n\
         sit in logic those vectors never sensitise: the high bits of the\n\
         16-bit sync-position counter (a longer burst would reach them)\n\
         and the threshold comparator cone under a fixed threshold.\n\
         Sweeping the threshold across segments (high first, so the\n\
         terminal locked state arrives late) recovers part of that.\n\
         LFSR BIST plateaus low for the same reason: a random low\n\
         threshold locks the FSM within a few cycles and the lock is\n\
         terminal — this design needs a reset between BIST sessions,\n\
         the kind of DFT finding fault grading exists to surface.\n\
         A constant stream tests almost nothing."
    );

    system_level_campaign();
}
