//! Fault coverage and fault tolerance of the HCOR correlator, at two
//! levels of the paper's design hierarchy:
//!
//! * **Gate level** — stuck-at coverage of the generated verification
//!   testbenches, an extension of the paper's Figure 8 story: the
//!   testbench vectors recorded from system simulation double as a
//!   manufacturing test set, and fault simulation grades them.
//! * **System level** — a cycle-true `FaultySim` campaign over every
//!   register and net of the captured system, classifying each injected
//!   fault as masked, silently corrupting, detected, or timed out
//!   (killed by a watchdog budget).
//!
//! Both levels shard across the `--threads N` worker pool (fault
//! batches at gate level, fault events at system level) with
//! bit-identical reports for every `N`; the campaign is additionally
//! timed at one thread and at `N` threads, and the measured speedup
//! lands in the `--perf-json` record. The graceful-degradation sweep
//! checkpoints per run under `--checkpoint DIR` and resumes with
//! `--resume` to byte-identical JSON. Run with:
//!
//! `cargo run --release -p ocapi-bench --bin fault_coverage -- [--threads N] [--quick]`

#![deny(clippy::unwrap_used, clippy::expect_used)]

use ocapi::rng::XorShift64;
use ocapi::sim::fault::{run_campaign_batched_par, run_campaign_par, FaultEvent, FaultPlan};
use ocapi::sim::par::ParConfig;
use ocapi::{InterpSim, Simulator, Value};
use ocapi_bench::{
    fingerprint, parse_args, timed, write_profile, BenchArgs, BenchError, FaultEngine, Reporter,
    Robust,
};
use ocapi_designs::hcor;
use ocapi_gatesim::fault::{
    flush_grade_obs, stuck_at_coverage_scalar, stuck_at_coverage_sharded,
    stuck_at_coverage_sharded_stats, CycleStimulus, GradeStats,
};
use ocapi_obs::Registry;
use ocapi_synth::{synthesize, SynthOptions};

/// Apply–settle–clock–observe stimulus for the HCOR netlist: a bit
/// stream with the thresholds cycled every 32 symbols.
fn stimuli_for(bits: &[bool], thresholds: &[u64]) -> Vec<CycleStimulus> {
    bits.iter()
        .enumerate()
        .map(|(k, b)| CycleStimulus {
            inputs: vec![
                ("bit_in".into(), *b as u64),
                ("enable".into(), 1),
                ("threshold".into(), thresholds[(k / 32) % thresholds.len()]),
            ],
        })
        .collect()
}

/// System-level fault campaign: sweep every fault site of the captured
/// HCOR system with transient flips and stuck-at faults, running the
/// interpreted simulator under `FaultySim` — sharded over fault events,
/// timed at 1 and at N threads for the perf trajectory.
fn system_level_campaign(
    args: &BenchArgs,
    rep: &mut Reporter,
    obs: &Registry,
) -> Result<(), BenchError> {
    let root = obs.span("fault_coverage");
    let pool = args.pool();
    let rb = Robust::new(args, &pool, Some(obs));
    let sys = hcor::build_system()?;
    let sites = FaultPlan::sites(&sys);
    let bits = hcor::test_pattern(if args.quick { 128 } else { 256 }, 7);
    let cycles = bits.len() as u64;

    // Exhaustive over bit positions: four transient flips spread across
    // the burst and one nine-cycle stuck-at-1 per bit of every site.
    let mut events: Vec<FaultEvent> = Vec::new();
    for site in &sites {
        let width = FaultPlan::site_width(&sys, site);
        for bit in 0..width {
            for k in 1..=4u64 {
                events.push(FaultEvent::flip(site.clone(), bit, k * cycles / 5));
            }
            events.push(FaultEvent::stuck_at(site.clone(), bit, true, cycles / 4, 9));
        }
    }

    let stimulus = |sim: &mut dyn Simulator, cycle: u64| {
        sim.set_input("enable", Value::Bool(true))?;
        sim.set_input("threshold", Value::bits(5, 11))?;
        sim.set_input("bit_in", Value::Bool(bits[cycle as usize]))?;
        Ok(())
    };
    let make_sim = || InterpSim::new(hcor::build_system()?);

    // The perf-trajectory measurement: same campaign at one worker and
    // at the requested pool width. Reports are asserted identical —
    // the determinism contract, enforced on every benchmark run.
    let t_campaign = root.child("campaign").timer();
    let (serial_report, secs_t1) =
        timed(|| run_campaign_par(&ParConfig::single(), make_sim, stimulus, cycles, &events));
    let serial_report = serial_report?;
    let (report, secs_tn) = if pool.threads() > 1 {
        let (r, s) = timed(|| run_campaign_par(&pool, make_sim, stimulus, cycles, &events));
        let r = r?;
        assert_eq!(
            r.outcomes, serial_report.outcomes,
            "thread-count determinism violated"
        );
        (r, s)
    } else {
        (serial_report, secs_t1)
    };
    drop(t_campaign);
    obs.counter("fault.campaign_injections")
        .add(report.total() as u64);
    obs.counter("robust.budget_hits")
        .add(report.timed_out() as u64);

    // The same campaign through the lane-batched compiled back-end:
    // `--lanes` fault runs share one micro-op tape walk per cycle, and
    // the chunks shard across the same worker pool. Classification must
    // match the scalar interpreter event-for-event — asserted on every
    // benchmark run, like the thread-count contract above.
    let t_batched = root.child("campaign_batched").timer();
    let (batched, secs_batched) = timed(|| {
        run_campaign_batched_par(
            &pool,
            hcor::build_system,
            stimulus,
            cycles,
            &events,
            args.lanes,
            args.opt_level(),
        )
    });
    let batched = batched?;
    drop(t_batched);
    assert_eq!(
        batched.outcomes, report.outcomes,
        "batched campaign classification diverged from scalar"
    );

    println!(
        "\nsystem-level FaultySim campaign on HCOR ({} sites, {} injections, {} cycles each):",
        sites.len(),
        report.total(),
        cycles
    );
    println!(
        "  masked             {:>6}  ({:.1}%)",
        report.masked(),
        100.0 * report.masked() as f64 / report.total() as f64
    );
    println!(
        "  silent corruption  {:>6}  ({:.1}%)",
        report.silent(),
        100.0 * report.silent_rate()
    );
    println!("  detected (error)   {:>6}", report.detected());
    if report.timed_out() > 0 {
        println!("  timed out (budget) {:>6}", report.timed_out());
    }
    if let Some(lat) = report.mean_detection_latency() {
        println!("  mean latency to first visible effect: {lat:.1} cycles");
    }
    println!(
        "  campaign wall: {secs_t1:.2}s at 1 thread, {secs_tn:.2}s at {} ({:.2}x)",
        pool.threads(),
        secs_t1 / secs_tn.max(1e-12)
    );
    println!(
        "  batched (compiled, {} lane(s)): {secs_batched:.2}s — identical classification",
        args.lanes
    );

    rep.result_u64("campaign_injections", report.total() as u64);
    rep.result_u64("campaign_masked", report.masked() as u64);
    rep.result_u64("campaign_silent", report.silent() as u64);
    rep.result_u64("campaign_detected", report.detected() as u64);
    rep.result_u64("campaign_timed_out", report.timed_out() as u64);
    rep.perf_f64("campaign_secs_t1", secs_t1);
    rep.perf_f64("campaign_secs_tn", secs_tn);
    rep.perf_f64("campaign_speedup", secs_t1 / secs_tn.max(1e-12));
    rep.perf_f64(
        "campaign_runs_per_sec",
        report.total() as f64 / secs_tn.max(1e-12),
    );
    rep.perf_f64(
        "campaign_cycles_per_sec",
        (report.total() as u64 * cycles) as f64 / secs_tn.max(1e-12),
    );
    rep.perf_u64("campaign_lanes", args.lanes as u64);
    rep.perf_f64("campaign_batched_secs", secs_batched);
    rep.perf_f64(
        "campaign_batched_runs_per_sec",
        report.total() as f64 / secs_batched.max(1e-12),
    );

    // Graceful degradation: per-cycle output corruption and sync
    // detection vs injected fault rate. Random single-cycle flips at
    // increasing per-cycle probability, compared against the fault-free
    // run cycle by cycle. Each (rate, seed) run is one work item,
    // checkpointed per run under `--checkpoint`.
    let outputs = ["detect", "corr", "sync_pos"];
    let mut golden: Vec<Vec<Value>> = Vec::with_capacity(bits.len());
    let mut sim = InterpSim::new(hcor::build_system()?)?;
    for b in &bits {
        sim.set_input("enable", Value::Bool(true))?;
        sim.set_input("threshold", Value::bits(5, 11))?;
        sim.set_input("bit_in", Value::Bool(*b))?;
        sim.step()?;
        let mut row = Vec::with_capacity(outputs.len());
        for o in outputs {
            row.push(sim.output(o)?);
        }
        golden.push(row);
    }

    println!("\ngraceful degradation vs injected fault rate (random single-cycle flips):");
    println!(
        "  {:>10} {:>6} {:>16} {:>12}",
        "fault rate", "runs", "corrupted cycles", "sync found"
    );
    let rates: &[f64] = if args.quick {
        &[0.0, 0.2, 1.0]
    } else {
        &[0.0, 0.05, 0.2, 0.5, 1.0, 2.0]
    };
    let runs = if args.quick { 8u64 } else { 20u64 };
    let t_degrade = root.child("degrade").timer();
    let sw_degrade = ocapi_obs::Stopwatch::start();
    for &rate in rates {
        // Plans are built sequentially (the captured `System` holds
        // `dyn` blocks and cannot cross threads); the simulation runs
        // they drive are the work items. `rate` > 1 approximates
        // multiple faults per cycle by stacking independent plans.
        let plans: Vec<FaultPlan> = (0..runs)
            .map(|seed| {
                let mut plan = FaultPlan::random(&sys, cycles, rate.min(1.0), 0xfa117 + seed);
                if rate > 1.0 {
                    for e in FaultPlan::random(&sys, cycles, rate - 1.0, 0x5eed + seed).events() {
                        plan.push(e.clone());
                    }
                }
                plan
            })
            .collect();
        let fp = fingerprint(&[
            "degrade",
            &rate.to_bits().to_string(),
            &runs.to_string(),
            &cycles.to_string(),
        ]);
        let outcomes = rb.run_chunked(
            &format!("degrade_r{rate}"),
            fp,
            runs as usize,
            1,
            |(c, d): &(u64, bool)| format!("{c},{}", *d as u8),
            |s| {
                let (c, d) = s.split_once(',')?;
                Some((c.parse().ok()?, d == "1"))
            },
            |idxs| {
                let plan = &plans[idxs[0]];
                let mut sim =
                    ocapi::FaultySim::new(InterpSim::new(hcor::build_system()?)?, plan.clone());
                sim.attach_obs(obs);
                let mut corrupted = 0u64;
                let mut detected = false;
                for (cyc, b) in bits.iter().enumerate() {
                    if sim.set_input("enable", Value::Bool(true)).is_err()
                        || sim.set_input("threshold", Value::bits(5, 11)).is_err()
                        || sim.set_input("bit_in", Value::Bool(*b)).is_err()
                        || sim.step().is_err()
                    {
                        break;
                    }
                    let mut now = Vec::with_capacity(outputs.len());
                    for o in outputs {
                        now.push(sim.output(o)?);
                    }
                    if now != golden[cyc] {
                        corrupted += 1;
                    }
                    if now[0] == Value::Bool(true) {
                        detected = true;
                    }
                }
                Ok(vec![(corrupted, detected)])
            },
        )?;
        let corrupted: u64 = outcomes.iter().map(|(c, _)| c).sum();
        let detects = outcomes.iter().filter(|(_, d)| *d).count() as u64;
        println!(
            "  {rate:>10.2} {runs:>6} {:>15.1}% {detects:>9}/{runs}",
            100.0 * corrupted as f64 / (runs * cycles) as f64
        );
        rep.result_u64(&format!("degrade_r{rate}_corrupted"), corrupted);
        rep.result_u64(&format!("degrade_r{rate}_detects"), detects);
    }
    let degrade_secs = sw_degrade.elapsed_secs();
    drop(t_degrade);
    rep.perf_f64("degrade_wall_secs", degrade_secs);
    rep.perf_u64("degrade_runs", runs * rates.len() as u64);
    rep.perf_f64(
        "degrade_runs_per_sec",
        (runs * rates.len() as u64) as f64 / degrade_secs.max(1e-12),
    );
    Ok(())
}

fn main() {
    let args = parse_args("fault_coverage");
    if let Err(e) = run(&args) {
        eprintln!("fault_coverage: {e}");
        std::process::exit(1);
    }
}

fn run(args: &BenchArgs) -> Result<(), BenchError> {
    let pool = args.pool();
    let mut rep = Reporter::new("fault_coverage");
    let obs = Registry::new();
    let root = obs.span("fault_coverage");

    let comp = hcor::build_component()?;
    let netlist = synthesize(&comp, &SynthOptions::default())?;
    let n_gates = netlist.netlist.combinational_count();
    let n_ffs = netlist.netlist.dff_count();
    println!(
        "HCOR netlist: {} gates, {} FF — {} stuck-at faults",
        n_gates,
        n_ffs,
        2 * (n_gates + n_ffs)
    );
    rep.result_u64("netlist_gates", n_gates as u64);
    rep.result_u64("netlist_ffs", n_ffs as u64);
    println!(
        "\n{:<38} {:>8} {:>10} {:>10}",
        "vector set", "cycles", "detected", "coverage"
    );

    let mut sets: Vec<(String, Vec<bool>, Vec<u64>)> = Vec::new();
    // The functional pattern the generated testbench replays (burst with
    // the sync word at a known offset), at two lengths.
    let lengths: &[usize] = if args.quick { &[64] } else { &[64, 256] };
    for &n in lengths {
        sets.push((
            format!("generated testbench (burst, {n})"),
            hcor::test_pattern(n, 7),
            vec![11],
        ));
    }
    if !args.quick {
        // The same burst with a threshold sweep between segments.
        sets.push((
            "burst + threshold sweep (256)".into(),
            hcor::test_pattern(256, 7),
            vec![15, 11, 31, 9],
        ));
    }
    // Random bits, same lengths.
    let mut rng = XorShift64::new(0x2545f4914f6cdd1d);
    for &n in lengths {
        let bits = (0..n).map(|_| rng.next_bool()).collect();
        sets.push((format!("random bits ({n})"), bits, vec![11]));
    }
    // The lower bound: a constant stream never exercises the datapath.
    sets.push(("all-zero idle (64)".into(), vec![false; 64], vec![11]));

    // `--fault-engine` switches the grader: packed (63 fault machines
    // per word, sharded) or scalar (one netlist re-run per fault). The
    // deterministic results — detected/total per set — are identical
    // either way; the CI determinism job byte-diffs the two `--json`
    // outputs. Only the perf section records which engine ran.
    let mut best: Option<ocapi_gatesim::fault::FaultReport> = None;
    let mut grade_secs = 0.0f64;
    let mut grade_faults = 0u64;
    let mut grade_stats = GradeStats::default();
    for (label, bits, thresholds) in &sets {
        let stim = stimuli_for(bits, thresholds);
        let t_grade = root.child("grade").timer();
        let (graded, secs) = timed(|| match args.fault_engine {
            FaultEngine::Packed => stuck_at_coverage_sharded_stats(&netlist.netlist, &stim, &pool),
            FaultEngine::Scalar => stuck_at_coverage_scalar(&netlist.netlist, &stim),
        });
        let (graded, stats) = graded?;
        drop(t_grade);
        grade_secs += secs;
        grade_faults += graded.total as u64;
        grade_stats.merge(&stats);
        println!(
            "{:<38} {:>8} {:>10} {:>9.1}%",
            label,
            bits.len(),
            graded.detected,
            100.0 * graded.coverage()
        );
        rep.result_u64(&format!("set_{label}_detected"), graded.detected as u64);
        rep.result_u64(&format!("set_{label}_total"), graded.total as u64);
        if best.as_ref().is_none_or(|b| graded.detected > b.detected) {
            best = Some(graded);
        }
    }
    rep.perf_f64("grade_wall_secs", grade_secs);
    rep.perf_f64(
        "grade_faults_per_sec",
        grade_faults as f64 / grade_secs.max(1e-12),
    );
    rep.perf_str("grade_engine", args.fault_engine.as_str());
    rep.perf_u64("grade_gate_evals", grade_stats.gate_evals);
    rep.perf_f64(
        "grade_faults_per_gate_eval",
        grade_stats.faults_per_gate_eval(),
    );
    obs.counter("fault.graded").add(grade_faults);
    flush_grade_obs(&obs, &grade_stats);

    // Where do the escapes of the best set live?
    let best = best.ok_or_else(|| BenchError::Driver("no vector sets graded".into()))?;
    let mut by_kind: std::collections::BTreeMap<String, usize> = Default::default();
    for f in &best.undetected {
        let kind = netlist.netlist.gates[f.gate].kind;
        *by_kind.entry(format!("{kind:?}")).or_default() += 1;
    }
    println!("\nundetected faults of the best set, by gate kind:");
    for (k, n) in &by_kind {
        println!("  {k:<8} {n:>6}");
        rep.result_u64(&format!("best_undetected_{k}"), *n as u64);
    }

    // BIST: pseudo-random LFSR patterns, graded with the sharded
    // engine; the MISR signature is what an on-chip comparison fuses.
    use ocapi_gatesim::bist;
    // Two BIST disciplines: fully random, and enable held high (classic
    // constrained BIST on control pins). Both plateau early: the locked
    // state is terminal (only a global reset leaves it), so the first
    // random low threshold freezes the machine and everything behind
    // the lock becomes unobservable — this design needs a reset between
    // BIST sessions, which is itself a finding fault grading surfaces.
    let pattern_counts: &[usize] = if args.quick { &[256] } else { &[256, 2048] };
    let t_bist = root.child("bist").timer();
    for (label, constrain) in [("LFSR BIST", false), ("LFSR BIST, enable held", true)] {
        for &patterns in pattern_counts {
            let mut stim = bist::lfsr_stimulus(&netlist.netlist, patterns, 0xace1);
            if constrain {
                for cyc in &mut stim {
                    for (name, v) in &mut cyc.inputs {
                        if name == "enable" {
                            *v = 1;
                        }
                    }
                }
            }
            let signoff = bist::bist_signoff(&netlist.netlist, &stim, &pool)?;
            println!(
                "{:<38} {:>8} {:>10} {:>9.1}%   signature {:08x}",
                format!("{label} ({patterns})"),
                patterns,
                signoff.coverage.detected,
                100.0 * signoff.coverage.coverage(),
                signoff.report.signature
            );
            rep.result_str(
                &format!("bist_{label}_{patterns}_signature"),
                &format!("{:08x}", signoff.report.signature),
            );
            rep.result_u64(
                &format!("bist_{label}_{patterns}_detected"),
                signoff.coverage.detected as u64,
            );
        }
    }
    drop(t_bist);

    // Engine ablation: the 64-way bit-parallel engine single-threaded
    // vs sharded across the pool, on the longest vector set graded.
    let bits = hcor::test_pattern(if args.quick { 64 } else { 256 }, 7);
    let stimuli = stimuli_for(&bits, &[11]);
    let t_abl = root.child("ablation").timer();
    let (serial, t_serial) =
        timed(|| stuck_at_coverage_sharded(&netlist.netlist, &stimuli, &ParConfig::single()));
    let serial = serial?;
    let (sharded, t_sharded) =
        timed(|| stuck_at_coverage_sharded(&netlist.netlist, &stimuli, &pool));
    let sharded = sharded?;
    drop(t_abl);
    assert_eq!(serial.detected, sharded.detected, "engines disagree");
    assert_eq!(serial.undetected, sharded.undetected, "engines disagree");
    println!(
        "\nengine ablation on the {}-symbol burst ({} faults, identical reports):",
        bits.len(),
        serial.total
    );
    println!("  bit-parallel, 1 thread   {t_serial:>8.3} s");
    println!(
        "  bit-parallel, {} thread(s) {t_sharded:>8.3} s   ({:.1}x)",
        pool.threads(),
        t_serial / t_sharded.max(1e-12)
    );
    rep.perf_f64("ablation_secs_t1", t_serial);
    rep.perf_f64("ablation_secs_tn", t_sharded);

    // Packed vs scalar head-to-head on the same burst: the word-packed
    // grader must classify identically to the per-fault reference and
    // advance ≥ 32× more fault machines per gate evaluation — the
    // multiple the parallel-pattern engine exists for (63 machines per
    // word vs at most 1 for the scalar grader). Asserted on every run,
    // like the thread-count contract; CI also gates on the ratio from
    // the `table_gates` perf JSON.
    let t_h2h = root.child("engine_h2h").timer();
    let (packed, t_packed) =
        timed(|| stuck_at_coverage_sharded_stats(&netlist.netlist, &stimuli, &pool));
    let (packed, packed_stats) = packed?;
    let (scalar, t_scalar) = timed(|| stuck_at_coverage_scalar(&netlist.netlist, &stimuli));
    let (scalar, scalar_stats) = scalar?;
    drop(t_h2h);
    assert_eq!(
        packed.detected, scalar.detected,
        "packed and scalar graders disagree on detections"
    );
    assert_eq!(
        packed.undetected, scalar.undetected,
        "packed and scalar graders disagree on escapes"
    );
    let ratio =
        packed_stats.faults_per_gate_eval() / scalar_stats.faults_per_gate_eval().max(1e-12);
    println!("\npacked vs scalar grader on the same burst (identical classification):");
    println!(
        "  packed  {:>8.3} s   {:>7.2} faults/gate-eval",
        t_packed,
        packed_stats.faults_per_gate_eval()
    );
    println!(
        "  scalar  {:>8.3} s   {:>7.2} faults/gate-eval   (packed advantage {ratio:.1}x)",
        t_scalar,
        scalar_stats.faults_per_gate_eval()
    );
    assert!(
        ratio >= 32.0,
        "packed grader advanced only {ratio:.1}x more faults per gate eval (need >= 32x)"
    );
    rep.perf_f64("fault_packed_secs", t_packed);
    rep.perf_f64("fault_scalar_secs", t_scalar);
    rep.perf_f64(
        "fault_packed_faults_per_sec",
        packed.total as f64 / t_packed.max(1e-12),
    );
    rep.perf_f64(
        "fault_scalar_faults_per_sec",
        scalar.total as f64 / t_scalar.max(1e-12),
    );
    rep.perf_u64("fault_packed_gate_evals", packed_stats.gate_evals);
    rep.perf_u64("fault_scalar_gate_evals", scalar_stats.gate_evals);
    rep.perf_f64(
        "fault_packed_faults_per_gate_eval",
        packed_stats.faults_per_gate_eval(),
    );
    rep.perf_f64(
        "fault_scalar_faults_per_gate_eval",
        scalar_stats.faults_per_gate_eval(),
    );
    rep.perf_f64("fault_eval_ratio", ratio);

    if !args.quick {
        println!(
            "\nReading the table: any data-rich stream (functional burst or\n\
             random) saturates the datapath cone within one correlator fill,\n\
             so doubling the vector count buys nothing — the remaining faults\n\
             sit in logic those vectors never sensitise: the high bits of the\n\
             16-bit sync-position counter (a longer burst would reach them)\n\
             and the threshold comparator cone under a fixed threshold.\n\
             Sweeping the threshold across segments (high first, so the\n\
             terminal locked state arrives late) recovers part of that.\n\
             LFSR BIST plateaus low for the same reason: a random low\n\
             threshold locks the FSM within a few cycles and the lock is\n\
             terminal — this design needs a reset between BIST sessions,\n\
             the kind of DFT finding fault grading exists to surface.\n\
             A constant stream tests almost nothing."
        );
    }

    system_level_campaign(args, &mut rep, &obs)?;
    rep.write(args)?;
    write_profile(args, &obs)?;
    Ok(())
}
