//! Stuck-at fault coverage of the generated verification testbenches —
//! an extension of the paper's Figure 8 story: the testbench vectors
//! recorded from system simulation double as a manufacturing test set,
//! and fault simulation grades them.
//!
//! Compares three vector sets on the synthesized HCOR correlator:
//! the functional burst pattern the generated testbench replays, pure
//! random bits, and a short all-idle set (lower bound).
//!
//! Run with `cargo run --release -p ocapi-bench --bin fault_coverage`.

use ocapi_designs::hcor;
use ocapi_gatesim::fault::{stuck_at_coverage, stuck_at_coverage_parallel, CycleStimulus};
use ocapi_gatesim::GateSim;
use ocapi_synth::{synthesize, SynthOptions};

/// Drives the HCOR netlist with a bit stream (cycling through the given
/// thresholds) and observes every output every cycle.
fn drive<'a>(bits: &'a [bool], thresholds: &'a [u64]) -> impl FnMut(&mut GateSim) -> Vec<u64> + 'a {
    move |sim: &mut GateSim| {
        let bit = sim.netlist().input_by_name("bit_in").expect("in").to_vec();
        let en = sim.netlist().input_by_name("enable").expect("in").to_vec();
        let th = sim
            .netlist()
            .input_by_name("threshold")
            .expect("in")
            .to_vec();
        let corr = sim.netlist().output_by_name("corr").expect("out").to_vec();
        let det = sim
            .netlist()
            .output_by_name("detect")
            .expect("out")
            .to_vec();
        let pos = sim
            .netlist()
            .output_by_name("sync_pos")
            .expect("out")
            .to_vec();
        bits.iter()
            .enumerate()
            .map(|(k, b)| {
                sim.set_bus(&bit, *b as u64);
                sim.set_bus(&en, 1);
                sim.set_bus(&th, thresholds[(k / 32) % thresholds.len()]);
                sim.settle();
                sim.clock();
                sim.bus(&corr) | (sim.bus(&det) << 8) | (sim.bus(&pos) << 16)
            })
            .collect()
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn main() {
    let comp = hcor::build_component().expect("build");
    let netlist = synthesize(&comp, &SynthOptions::default()).expect("synthesis");
    println!(
        "HCOR netlist: {} gates, {} FF — {} stuck-at faults",
        netlist.netlist.combinational_count(),
        netlist.netlist.dff_count(),
        2 * (netlist.netlist.combinational_count() + netlist.netlist.dff_count())
    );
    println!(
        "\n{:<38} {:>8} {:>10} {:>10}",
        "vector set", "cycles", "detected", "coverage"
    );

    let mut sets: Vec<(String, Vec<bool>, Vec<u64>)> = Vec::new();
    // The functional pattern the generated testbench replays (burst with
    // the sync word at a known offset), at two lengths.
    for n in [64usize, 256] {
        sets.push((
            format!("generated testbench (burst, {n})"),
            hcor::test_pattern(n, 7),
            vec![11],
        ));
    }
    // The same burst with a threshold sweep between segments.
    sets.push((
        "burst + threshold sweep (256)".into(),
        hcor::test_pattern(256, 7),
        vec![15, 11, 31, 9],
    ));
    // Random bits, same lengths.
    let mut st = 0x2545f4914f6cdd1du64;
    for n in [64usize, 256] {
        let bits = (0..n).map(|_| xorshift(&mut st) & 1 == 1).collect();
        sets.push((format!("random bits ({n})"), bits, vec![11]));
    }
    // The lower bound: a constant stream never exercises the datapath.
    sets.push(("all-zero idle (64)".into(), vec![false; 64], vec![11]));

    let mut best: Option<ocapi_gatesim::fault::FaultReport> = None;
    for (label, bits, thresholds) in &sets {
        let rep = stuck_at_coverage(&netlist.netlist, drive(bits, thresholds));
        println!(
            "{:<38} {:>8} {:>10} {:>9.1}%",
            label,
            bits.len(),
            rep.detected,
            100.0 * rep.coverage()
        );
        if best.as_ref().is_none_or(|b| rep.detected > b.detected) {
            best = Some(rep);
        }
    }

    // Where do the escapes of the best set live?
    let best = best.expect("at least one set");
    let mut by_kind: std::collections::BTreeMap<String, usize> = Default::default();
    for f in &best.undetected {
        let kind = netlist.netlist.gates[f.gate].kind;
        *by_kind.entry(format!("{kind:?}")).or_default() += 1;
    }
    println!("\nundetected faults of the best set, by gate kind:");
    for (k, n) in &by_kind {
        println!("  {k:<8} {n:>6}");
    }

    // BIST: pseudo-random LFSR patterns, graded with the parallel
    // engine; the MISR signature is what an on-chip comparison fuses.
    use ocapi_gatesim::bist;
    // Two BIST disciplines: fully random, and enable held high (classic
    // constrained BIST on control pins). Both plateau early: the locked
    // state is terminal (only a global reset leaves it), so the first
    // random low threshold freezes the machine and everything behind
    // the lock becomes unobservable — this design needs a reset between
    // BIST sessions, which is itself a finding fault grading surfaces.
    for (label, constrain) in [("LFSR BIST", false), ("LFSR BIST, enable held", true)] {
        for patterns in [256usize, 2048] {
            let mut stim = bist::lfsr_stimulus(&netlist.netlist, patterns, 0xace1);
            if constrain {
                for cyc in &mut stim {
                    for (name, v) in &mut cyc.inputs {
                        if name == "enable" {
                            *v = 1;
                        }
                    }
                }
            }
            let rep = stuck_at_coverage_parallel(&netlist.netlist, &stim);
            let sig = bist::golden_signature(&netlist.netlist, &stim);
            println!(
                "{:<38} {:>8} {:>10} {:>9.1}%   signature {:08x}",
                format!("{label} ({patterns})"),
                patterns,
                rep.detected,
                100.0 * rep.coverage(),
                sig.signature
            );
        }
    }

    // Engine ablation: serial (one rebuilt simulator per fault) vs the
    // 64-way bit-parallel engine, on the longest vector set.
    let bits = hcor::test_pattern(256, 7);
    let stimuli: Vec<CycleStimulus> = bits
        .iter()
        .map(|b| CycleStimulus {
            inputs: vec![
                ("bit_in".into(), *b as u64),
                ("enable".into(), 1),
                ("threshold".into(), 11),
            ],
        })
        .collect();
    let t = std::time::Instant::now();
    let serial = stuck_at_coverage(&netlist.netlist, drive(&bits, &[11]));
    let t_serial = t.elapsed().as_secs_f64();
    let t = std::time::Instant::now();
    let parallel = stuck_at_coverage_parallel(&netlist.netlist, &stimuli);
    let t_parallel = t.elapsed().as_secs_f64();
    assert_eq!(serial.detected, parallel.detected, "engines disagree");
    assert_eq!(serial.undetected, parallel.undetected, "engines disagree");
    println!(
        "\nengine ablation on the 256-symbol burst ({} faults, identical reports):",
        serial.total
    );
    println!("  serial       {t_serial:>8.2} s");
    println!(
        "  bit-parallel {t_parallel:>8.2} s   ({:.0}x faster)",
        t_serial / t_parallel
    );

    println!(
        "\nReading the table: any data-rich stream (functional burst or\n\
         random) saturates the datapath cone within one correlator fill,\n\
         so doubling the vector count buys nothing — the remaining faults\n\
         sit in logic those vectors never sensitise: the high bits of the\n\
         16-bit sync-position counter (a longer burst would reach them)\n\
         and the threshold comparator cone under a fixed threshold.\n\
         Sweeping the threshold across segments (high first, so the\n\
         terminal locked state arrives late) recovers part of that.\n\
         LFSR BIST plateaus low for the same reason: a random low\n\
         threshold locks the FSM within a few cycles and the lock is\n\
         terminal — this design needs a reset between BIST sessions,\n\
         the kind of DFT finding fault grading exists to surface.\n\
         A constant stream tests almost nothing."
    );
}
