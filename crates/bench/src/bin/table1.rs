//! Regenerates Table 1 of the paper: source-code size, simulation speed
//! and process size for the HCOR header correlator and the complete DECT
//! transceiver, across the simulation paradigms:
//!
//! * `C++ (interpreted obj)` → [`ocapi::InterpSim`] (the three-phase cycle
//!   scheduler walking the captured data structure),
//! * `C++ (compiled)` → [`ocapi::CompiledSim`] (the levelized tape),
//! * `VHDL (RT)` → [`ocapi_rtl::RtlSystemSim`] (event-driven RT kernel on
//!   the lowered design),
//! * `VHDL/Verilog (netlist)` → [`ocapi_gatesim::GateSystemSim`]
//!   (event-driven gate-level simulation of the synthesized netlist).
//!
//! A `DSL (batched xN)` row drives `--lanes N` instances of each design
//! through [`ocapi::BatchedSim`] in lockstep and reports the aggregate
//! instance-cycles per second — the scalar-vs-batched comparison the
//! Monte-Carlo workloads bank on.
//!
//! The simulator drive loops are inherently serial (one sim, one clock);
//! the `--threads N` pool shards the synthesis runs behind the gate-eq
//! column instead. `--quick` shrinks the driven pattern lengths for CI.
//! Run with:
//!
//! `cargo run --release -p ocapi-bench --bin table1 -- [--threads N] [--lanes N] [--quick]`

#![deny(clippy::unwrap_used, clippy::expect_used)]

use ocapi::sim::par::{map_indexed, ParError};
use ocapi::{
    BatchObs, BatchedSim, CompiledSim, CompiledTape, Component, CoreError, ExecEngine, FusedSim,
    FusedTape, InterpSim, OptLevel, ParConfig, SimObs, Simulator, System, Value,
};
use ocapi_bench::{
    mb, parse_args, timed, write_profile, BenchArgs, BenchError, CountingAlloc, Reporter,
};
use ocapi_designs::dect::burst::{generate, BurstConfig};
use ocapi_designs::dect::transceiver::{self, TransceiverConfig};
use ocapi_designs::hcor;
use ocapi_gatesim::GateSystemSim;
use ocapi_hdl::report::effective_lines;
use ocapi_hdl::{verilog, vhdl};
use ocapi_obs::Registry;
use ocapi_rtl::RtlSystemSim;
use ocapi_synth::report::ChipReport;
use ocapi_synth::{synthesize_observed, SynthOptions};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Row {
    kind: String,
    source_lines: usize,
    cycles_per_sec: f64,
    process_mb: String,
}

/// Measures one simulator: build under allocation accounting, run the
/// driver, report speed and peak footprint.
fn measure<S: Simulator>(
    build: impl FnOnce() -> Result<S, BenchError>,
    drive: impl Fn(&mut S) -> Result<u64, CoreError>,
) -> Result<(f64, String), BenchError> {
    CountingAlloc::reset_peak();
    let before = CountingAlloc::live();
    let mut sim = build()?;
    let (cycles, secs) = timed(|| drive(&mut sim));
    let cycles = cycles?;
    let peak = CountingAlloc::peak().saturating_sub(before);
    drop(sim);
    Ok((cycles as f64 / secs, mb(peak)))
}

fn dsl_lines(keys: &[&str]) -> usize {
    ocapi_designs::dsl_sources()
        .iter()
        .filter(|(name, _)| keys.contains(name))
        .map(|(_, src)| {
            // Count only the capture description, not the unit tests.
            let desc = src.split("#[cfg(test)]").next().unwrap_or(src);
            effective_lines(desc, "//")
        })
        .sum()
}

fn hdl_lines(sys: &System) -> Result<(usize, usize), BenchError> {
    let v = vhdl::system_source(sys)?;
    let vl = verilog::system_source(sys)?;
    Ok((effective_lines(&v, "--"), effective_lines(&vl, "//")))
}

/// Total gate-eq area of the system: every timed component synthesized
/// independently across the worker pool, areas summed in component
/// order (finished `Component`s are plain data, so they shard freely).
fn gate_count(sys: &System, pool: &ParConfig, obs: &Registry) -> Result<f64, BenchError> {
    let comps: Vec<Component> = sys.timed.iter().map(|t| t.comp.clone()).collect();
    let nets = map_indexed(pool, &comps, |_, c| {
        synthesize_observed(c, &SynthOptions::default(), &[], obs)
    })
    .map_err(|e| match e {
        ParError::Task { error, .. } => BenchError::Synth(error),
        ParError::Panic { index } => BenchError::Panic { index },
    })?;
    let mut rep = ChipReport::new(&sys.name);
    for n in &nets {
        rep.add(n);
    }
    Ok(rep.total_area())
}

fn print_design(name: &str, gates: f64, rows: &[Row]) {
    println!("\n{name}  ({gates:.0} gate-eq)");
    println!(
        "  {:<28} {:>14} {:>16} {:>14}",
        "type", "source (lines)", "speed (cyc/sec)", "process (MB)"
    );
    for r in rows {
        println!(
            "  {:<28} {:>14} {:>16.0} {:>14}",
            r.kind, r.source_lines, r.cycles_per_sec, r.process_mb
        );
    }
}

/// Builds the compiled simulator at `OptLevel::None` and `Full` and
/// records the per-cycle tape lengths under `{design}_tape_len_opt0` /
/// `_opt2` (perf section: build-time metrics, not workload results).
/// Returns (opt0, opt2) so `run` can aggregate the workload totals.
fn tape_len_metrics(
    design: &str,
    rep: &mut Reporter,
    mk: impl Fn() -> Result<System, CoreError>,
) -> Result<(usize, usize), BenchError> {
    let len0 = CompiledSim::new_with(mk()?, OptLevel::None)?.tape_len();
    let full = CompiledSim::new_with(mk()?, OptLevel::Full)?;
    let len2 = full.tape_len();
    rep.perf_u64(&format!("{design}_tape_len_opt0"), len0 as u64);
    rep.perf_u64(&format!("{design}_tape_len_opt2"), len2 as u64);
    let st = full.opt_stats();
    println!(
        "  compiled tape: {len0} micro-ops unoptimised, {len2} at --opt 2 \
         ({} folded, {} CSE, {} dead, {} slots freed)",
        st.folded, st.cse_hits, st.dce_removed, st.slots_saved
    );
    Ok((len0, len2))
}

fn hcor_table(
    args: &BenchArgs,
    rep: &mut Reporter,
    obs: &Registry,
) -> Result<(usize, usize), BenchError> {
    let bits = hcor::test_pattern(if args.quick { 256 } else { 3000 }, 99);
    let drive_bits = bits.clone();
    let drive = move |sim: &mut dyn Simulator| -> Result<u64, CoreError> {
        sim.set_input("enable", Value::Bool(true))?;
        sim.set_input("threshold", Value::bits(5, 17))?; // never locks
        for b in &drive_bits {
            sim.set_input("bit_in", Value::Bool(*b))?;
            sim.step()?;
        }
        Ok(drive_bits.len() as u64)
    };

    let sys = hcor::build_system()?;
    let (vhdl_l, verilog_l) = hdl_lines(&sys)?;
    let dsl_l = dsl_lines(&["hcor"]);
    let gates = gate_count(&sys, &args.pool(), obs)?;
    rep.result_u64("hcor_dsl_lines", dsl_l as u64);
    rep.result_u64("hcor_vhdl_lines", vhdl_l as u64);
    rep.result_u64("hcor_verilog_lines", verilog_l as u64);
    rep.result_f64("hcor_gate_eq", gates);

    let (interp_speed, interp_mem) = measure(
        || {
            let mut s = InterpSim::new(hcor::build_system()?)?;
            s.attach_obs(SimObs::interp(obs));
            Ok(s)
        },
        |s| drive(s),
    )?;
    let (comp_speed, comp_mem) = measure(
        || {
            let mut s = CompiledSim::new_with(hcor::build_system()?, args.opt_level())?;
            s.attach_obs(SimObs::compiled(obs));
            Ok(s)
        },
        |s| drive(s),
    )?;
    // The lane-batched compiled tape, all `--lanes` instances driven in
    // lockstep (`BatchedSim` broadcasts inputs through the `Simulator`
    // trait); the aggregate throughput is instance-cycles per second.
    let lanes = args.lanes;
    let (batch_speed, batch_mem) = measure(
        || {
            let mut s = BatchedSim::from_fn(lanes, hcor::build_system, args.opt_level())?;
            s.attach_obs(BatchObs::new(obs));
            Ok(s)
        },
        |s| Ok(drive(s)? * lanes as u64),
    )?;
    // The direct-threaded fused engine (`--engine fused`): same tape,
    // lowered to kernel runs + superinstructions (DESIGN.md § Lowered
    // execution). Results stay byte-identical; only speed may differ.
    let fused = if args.engine == ExecEngine::Fused {
        let (speed, mem) = measure(
            || {
                let mut s = FusedSim::new_with(hcor::build_system()?, args.opt_level())?;
                s.attach_obs(SimObs::fused(obs));
                Ok(s)
            },
            |s| drive(s),
        )?;
        let stats = FusedSim::new_with(hcor::build_system()?, args.opt_level())?.lower_stats();
        println!(
            "  fused lowering: {} micro-ops -> {} kernels, {} superinstructions \
             ({}% fused)",
            stats.micro_in, stats.kernels, stats.superinstructions, stats.coverage_pct
        );
        Some((speed, mem))
    } else {
        None
    };
    let (rtl_speed, rtl_mem) = measure(
        || Ok(RtlSystemSim::new(hcor::build_system()?)?),
        |s| drive(s),
    )?;
    let (gate_speed, gate_mem) = measure(
        || {
            let mut s = GateSystemSim::new(hcor::build_system()?, &SynthOptions::default())?;
            s.attach_obs(obs);
            Ok(s)
        },
        |s| drive(s),
    )?;

    let mut rows = vec![
        Row {
            kind: "DSL (interpreted obj)".into(),
            source_lines: dsl_l,
            cycles_per_sec: interp_speed,
            process_mb: interp_mem,
        },
        Row {
            kind: "DSL (compiled)".into(),
            source_lines: dsl_l,
            cycles_per_sec: comp_speed,
            process_mb: comp_mem,
        },
        Row {
            kind: format!("DSL (batched x{lanes})"),
            source_lines: dsl_l,
            cycles_per_sec: batch_speed,
            process_mb: batch_mem,
        },
        Row {
            kind: "VHDL (RT, event-driven)".into(),
            source_lines: vhdl_l,
            cycles_per_sec: rtl_speed,
            process_mb: rtl_mem,
        },
        Row {
            kind: "Verilog (netlist)".into(),
            source_lines: verilog_l,
            cycles_per_sec: gate_speed,
            process_mb: gate_mem,
        },
    ];
    if let Some((speed, mem)) = &fused {
        rows.insert(
            2,
            Row {
                kind: "DSL (fused)".into(),
                source_lines: dsl_l,
                cycles_per_sec: *speed,
                process_mb: mem.clone(),
            },
        );
    }
    print_design("HCOR (header correlator)", gates, &rows);
    rep.perf_f64("hcor_interp_cycles_per_sec", interp_speed);
    rep.perf_f64("hcor_compiled_cycles_per_sec", comp_speed);
    rep.perf_f64("hcor_batched_cycles_per_sec", batch_speed);
    rep.perf_f64("hcor_rtl_cycles_per_sec", rtl_speed);
    rep.perf_f64("hcor_gate_cycles_per_sec", gate_speed);
    if let Some((speed, _)) = &fused {
        rep.perf_f64("hcor_fused_cycles_per_sec", *speed);
        // The headline regression-gate metric: HCOR fused throughput
        // (`scripts/bench_regress.sh` compares it against
        // `hcor_compiled_cycles_per_sec`).
        rep.perf_f64("fused_cycles_per_sec", *speed);
    }
    tape_len_metrics("hcor", rep, hcor::build_system)
}

fn dect_table(
    args: &BenchArgs,
    rep: &mut Reporter,
    obs: &Registry,
) -> Result<(usize, usize), BenchError> {
    let cfg = TransceiverConfig::default();
    let make_burst = |n: usize| {
        generate(&BurstConfig {
            payload_len: n,
            ..BurstConfig::default()
        })
    };
    let drive = |sim: &mut dyn Simulator, payload: usize| -> Result<u64, CoreError> {
        let burst = make_burst(payload);
        transceiver::run_burst(sim, &burst, None)?;
        Ok((burst.samples.len() * transceiver::CYCLES_PER_SYMBOL) as u64)
    };

    let sys = transceiver::build_system(&cfg)?;
    let (vhdl_l, verilog_l) = hdl_lines(&sys)?;
    let dsl_l = dsl_lines(&[
        "hcor",
        "dect/pc_controller",
        "dect/datapaths",
        "dect/transceiver",
    ]);
    let gates = gate_count(&sys, &args.pool(), obs)?;
    rep.result_u64("dect_dsl_lines", dsl_l as u64);
    rep.result_u64("dect_vhdl_lines", vhdl_l as u64);
    rep.result_u64("dect_verilog_lines", verilog_l as u64);
    rep.result_f64("dect_gate_eq", gates);

    // Payload lengths per paradigm, scaled to each kernel's speed (and
    // shrunk further under `--quick`).
    let (p_obj, p_rtl, p_gate) = if args.quick {
        (128, 64, 8)
    } else {
        (960, 480, 32)
    };
    let (interp_speed, interp_mem) = measure(
        || {
            let mut s = InterpSim::new(transceiver::build_system(&cfg)?)?;
            s.attach_obs(SimObs::interp(obs));
            Ok(s)
        },
        |s| drive(s, p_obj),
    )?;
    let (comp_speed, comp_mem) = measure(
        || {
            let mut s = CompiledSim::new_with(transceiver::build_system(&cfg)?, args.opt_level())?;
            s.attach_obs(SimObs::compiled(obs));
            Ok(s)
        },
        |s| drive(s, p_obj),
    )?;
    // Lane-batched compiled tape, all lanes replaying the same burst in
    // lockstep through the broadcasting `Simulator` trait.
    let lanes = args.lanes;
    let (batch_speed, batch_mem) = measure(
        || {
            let mut s =
                BatchedSim::from_fn(lanes, || transceiver::build_system(&cfg), args.opt_level())?;
            s.attach_obs(BatchObs::new(obs));
            Ok(s)
        },
        |s| Ok(drive(s, p_obj)? * lanes as u64),
    )?;
    // Direct-threaded fused engine on the full transceiver tape — the
    // richest source of load-op-store / cmp+select fusion candidates.
    let fused = if args.engine == ExecEngine::Fused {
        let (speed, mem) = measure(
            || {
                let mut s = FusedSim::new_with(transceiver::build_system(&cfg)?, args.opt_level())?;
                s.attach_obs(SimObs::fused(obs));
                Ok(s)
            },
            |s| drive(s, p_obj),
        )?;
        let stats =
            FusedSim::new_with(transceiver::build_system(&cfg)?, args.opt_level())?.lower_stats();
        println!(
            "  fused lowering: {} micro-ops -> {} kernels, {} superinstructions \
             ({}% fused)",
            stats.micro_in, stats.kernels, stats.superinstructions, stats.coverage_pct
        );
        Some((speed, mem))
    } else {
        None
    };
    let (rtl_speed, rtl_mem) = measure(
        || Ok(RtlSystemSim::new(transceiver::build_system(&cfg)?)?),
        |s| drive(s, p_rtl),
    )?;
    let (gate_speed, gate_mem) = measure(
        || {
            let mut s =
                GateSystemSim::new(transceiver::build_system(&cfg)?, &SynthOptions::default())?;
            s.attach_obs(obs);
            Ok(s)
        },
        |s| drive(s, p_gate),
    )?;

    let mut rows = vec![
        Row {
            kind: "DSL (interpreted obj)".into(),
            source_lines: dsl_l,
            cycles_per_sec: interp_speed,
            process_mb: interp_mem,
        },
        Row {
            kind: "DSL (compiled)".into(),
            source_lines: dsl_l,
            cycles_per_sec: comp_speed,
            process_mb: comp_mem,
        },
        Row {
            kind: format!("DSL (batched x{lanes})"),
            source_lines: dsl_l,
            cycles_per_sec: batch_speed,
            process_mb: batch_mem,
        },
        Row {
            kind: "VHDL (RT, event-driven)".into(),
            source_lines: vhdl_l,
            cycles_per_sec: rtl_speed,
            process_mb: rtl_mem,
        },
        Row {
            kind: "Verilog (netlist)".into(),
            source_lines: verilog_l,
            cycles_per_sec: gate_speed,
            process_mb: gate_mem,
        },
    ];
    if let Some((speed, mem)) = &fused {
        rows.insert(
            2,
            Row {
                kind: "DSL (fused)".into(),
                source_lines: dsl_l,
                cycles_per_sec: *speed,
                process_mb: mem.clone(),
            },
        );
    }
    print_design("DECT (radiolink transceiver)", gates, &rows);
    rep.perf_f64("dect_interp_cycles_per_sec", interp_speed);
    rep.perf_f64("dect_compiled_cycles_per_sec", comp_speed);
    rep.perf_f64("dect_batched_cycles_per_sec", batch_speed);
    rep.perf_f64("dect_rtl_cycles_per_sec", rtl_speed);
    rep.perf_f64("dect_gate_cycles_per_sec", gate_speed);
    if let Some((speed, _)) = &fused {
        rep.perf_f64("dect_fused_cycles_per_sec", *speed);
    }
    tape_len_metrics("dect", rep, || transceiver::build_system(&cfg))
}

fn main() {
    let args = parse_args("table1");
    if let Err(e) = run(&args) {
        eprintln!("table1: {e}");
        std::process::exit(1);
    }
}

fn run(args: &BenchArgs) -> Result<(), BenchError> {
    let mut rep = Reporter::new("table1");
    let obs = Registry::new();
    println!("Table 1 reproduction: performances of interpreted and compiled approaches");
    println!("(speed measured on this machine; see EXPERIMENTS.md for the comparison)");
    println!("compiled tape optimization: --opt {}", args.opt);
    let (h0, h2) = hcor_table(args, &mut rep, &obs)?;
    let (d0, d2) = dect_table(args, &mut rep, &obs)?;
    rep.perf_u64("tape_len_opt0", (h0 + d0) as u64);
    rep.perf_u64("tape_len_opt2", (h2 + d2) as u64);
    println!("\ncode-size ratio (generated RT-VHDL lines / DSL lines):");
    let hs = hcor::build_system()?;
    // Front-end cost split: tape compilation (capture → levelized
    // micro-op tape) vs lowering (tape → direct-threaded kernel
    // program), summed over both designs at the CLI's opt level.
    {
        let ds2 = transceiver::build_system(&TransceiverConfig::default())?;
        let (htape, hc) = timed(|| CompiledTape::compile(&hs, args.opt_level()));
        let (dtape, dc) = timed(|| CompiledTape::compile(&ds2, args.opt_level()));
        let htape = htape?;
        let dtape = dtape?;
        let (hf, hl) = timed(|| FusedTape::from_compiled(&hs, &htape));
        let (df, dl) = timed(|| FusedTape::from_compiled(&ds2, &dtape));
        hf?;
        df?;
        rep.perf_f64("tape_compile_secs", hc + dc);
        rep.perf_f64("tape_lower_secs", hl + dl);
    }
    let (hv, _) = hdl_lines(&hs)?;
    let hd = dsl_lines(&["hcor"]);
    println!("  HCOR: {:.1}x", hv as f64 / hd as f64);
    rep.result_f64("hcor_code_ratio", hv as f64 / hd as f64);
    let ds = transceiver::build_system(&TransceiverConfig::default())?;
    let (dv, _) = hdl_lines(&ds)?;
    let dd = dsl_lines(&[
        "hcor",
        "dect/pc_controller",
        "dect/datapaths",
        "dect/transceiver",
    ]);
    println!("  DECT: {:.1}x", dv as f64 / dd as f64);
    rep.result_f64("dect_code_ratio", dv as f64 / dd as f64);
    rep.write(args)?;
    write_profile(args, &obs)?;
    Ok(())
}
