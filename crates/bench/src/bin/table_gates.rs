//! The gate inventory behind the paper's §1 claims ("75 Kgate chip with a
//! VLIW architecture, including 22 datapaths … and 7 RAM cells") plus two
//! synthesis ablations:
//!
//! * operator sharing on/off (the Cathedral-3 "operator sharing at word
//!   level" of §6),
//! * FSM state encodings for the controllers (binary / one-hot / Gray).
//!
//! Each component synthesizes independently, so the inventory and the
//! static-timing sweep shard across the `--threads N` worker pool (one
//! synthesis run per work item, results merged in component order).
//! Run with:
//!
//! `cargo run --release -p ocapi-bench --bin table_gates -- [--threads N] [--quick]`

#![deny(clippy::unwrap_used, clippy::expect_used)]

use ocapi::sim::par::{map_indexed, ParError};
use ocapi::Component;
use ocapi_bench::{
    padded_sequencer, parse_args, timed, write_profile, BenchArgs, BenchError, Reporter,
};
use ocapi_designs::dect::transceiver::{build_system, TransceiverConfig};
use ocapi_designs::hcor;
use ocapi_obs::Registry;
use ocapi_synth::controller::Encoding;
use ocapi_synth::report::ChipReport;
use ocapi_synth::{synthesize, synthesize_observed, timing, AdderStyle, SynthOptions};

/// A 4-instruction FSM datapath in the Cathedral-3 style: each
/// instruction is its own SFG, so the multiplier units are mutually
/// exclusive and can share one hardware multiplier.
fn cathedral_demo() -> Result<ocapi::Component, BenchError> {
    use ocapi::{Component, SigType};
    use ocapi_fixp::Format;
    let fmt =
        Format::new(12, 4).map_err(|e| BenchError::Driver(format!("fixed-point format: {e}")))?;
    let c = Component::build("vliw_alu");
    let op = c.input("op", SigType::Bits(2))?;
    let a = c.input("a", SigType::Fixed(fmt))?;
    let b = c.input("b", SigType::Fixed(fmt))?;
    let y = c.output("y", SigType::Fixed(fmt))?;
    let acc = c.reg("acc", SigType::Fixed(fmt))?;

    let cast =
        |s: &ocapi::Sig| s.to_fixed(fmt, ocapi::Rounding::Truncate, ocapi::Overflow::Saturate);
    // Four instructions, each multiplying different sources.
    let i0 = c.sfg("mul_ab")?;
    let v = cast(&(c.read(a) * c.read(b)));
    i0.drive(y, &v)?;
    i0.next(acc, &v)?;
    let i1 = c.sfg("mul_aacc")?;
    let v = cast(&(c.read(a) * c.q(acc)));
    i1.drive(y, &v)?;
    i1.next(acc, &v)?;
    let i2 = c.sfg("mul_bacc")?;
    let v = cast(&(c.read(b) * c.q(acc)));
    i2.drive(y, &v)?;
    i2.next(acc, &v)?;
    let i3 = c.sfg("sq_acc")?;
    let v = cast(&(c.q(acc) * c.q(acc)));
    i3.drive(y, &v)?;
    i3.next(acc, &v)?;

    let opv = c.read(op);
    let f = c.fsm()?;
    let s0 = f.initial("s0")?;
    for (k, sfg) in [i0.id(), i1.id(), i2.id(), i3.id()].iter().enumerate() {
        let g = opv.eq(&c.const_bits(2, k as u64));
        f.from(s0).when(&g).run(*sfg).to(s0)?;
    }
    Ok(c.finish()?)
}

/// Looks up a timed component of the system by name.
fn timed_comp<'a>(sys: &'a ocapi::System, name: &str) -> Result<&'a Component, BenchError> {
    sys.timed
        .iter()
        .find(|t| t.name == name)
        .map(|t| &t.comp)
        .ok_or_else(|| BenchError::Driver(format!("component `{name}` missing from system")))
}

fn main() {
    let args = parse_args("table_gates");
    if let Err(e) = run(&args) {
        eprintln!("table_gates: {e}");
        std::process::exit(1);
    }
}

fn run(args: &BenchArgs) -> Result<(), BenchError> {
    let pool = args.pool();
    let mut rep = Reporter::new("table_gates");
    let obs = Registry::new();
    let root = obs.span("table_gates");
    let sys = build_system(&TransceiverConfig::default())?;

    // Chip inventory: one synthesis run per component, sharded across
    // the pool and merged in component order (so the table is identical
    // for every thread count). The same netlists feed the timing sweep.
    let comps: Vec<Component> = sys.timed.iter().map(|t| t.comp.clone()).collect();
    let t_inv = root.child("inventory").timer();
    let (nets, secs) = timed(|| {
        map_indexed(&pool, &comps, |_, c| {
            synthesize_observed(c, &SynthOptions::default(), &[], &obs)
        })
    });
    let nets = nets.map_err(|e| match e {
        ParError::Task { error, .. } => BenchError::Synth(error),
        ParError::Panic { index } => BenchError::Panic { index },
    })?;
    drop(t_inv);
    let mut report = ChipReport::new("dect");
    for n in &nets {
        report.add(n);
    }
    println!("DECT transceiver gate inventory (defaults: sharing on, binary encoding):\n");
    println!("{}", report.table());

    // Static timing: the slowest component bounds the chip clock.
    println!("critical paths (gate-delay units; ~300 ps/unit in 0.7 um):");
    let mut worst = (String::new(), 0.0f64);
    for (t, cn) in sys.timed.iter().zip(&nets) {
        let rep = timing::analyze(&cn.netlist);
        if rep.critical_path > worst.1 {
            worst = (t.name.clone(), rep.critical_path);
        }
    }
    let chip = timing::TimingReport {
        critical_path: worst.1,
        path: Vec::new(),
        depth: 0,
    };
    println!(
        "  chip critical path: {:.1} units through `{}` -> max clock ~{:.0} MHz in 0.7 um\n",
        worst.1,
        worst.0,
        chip.max_clock_mhz(300.0)
    );
    println!("paper: 75 Kgate, 22 datapaths (2-57 instructions each), 7 RAM cells");
    println!(
        "here : {:.0} gate-eq, {} datapaths + controller/decoder, {} RAM/ROM cells",
        report.total_area(),
        sys.timed.len() - 2,
        sys.untimed.len()
    );
    println!(
        "synthesis time for all components: {:.2}s at {} thread(s)\n",
        secs,
        pool.threads()
    );
    rep.result_f64("chip_gate_eq", report.total_area());
    rep.result_f64("chip_critical_path", worst.1);
    rep.result_u64("chip_components", sys.timed.len() as u64);
    rep.perf_f64("synthesis_secs", secs);
    rep.perf_f64(
        "synthesis_comps_per_sec",
        sys.timed.len() as f64 / secs.max(1e-12),
    );

    // Sharing ablation. The DECT MAC decodes its instructions with
    // select expressions inside one SFG, so its two multipliers are
    // co-active and cannot share. A Cathedral-3-style datapath whose
    // instructions are separate FSM-selected SFGs (like the paper's
    // 57-instruction datapath) shows where word-level sharing pays off:
    let cathedral = cathedral_demo()?;
    let t_abl = root.child("ablations").timer();
    println!("operator-sharing ablation (per component, gate-eq):");
    println!(
        "  {:<16} {:>12} {:>12} {:>9}",
        "component", "shared", "flat", "saving"
    );
    {
        let shared = synthesize(&cathedral, &SynthOptions::default())?;
        let flat = synthesize(
            &cathedral,
            &SynthOptions {
                share_operators: false,
                ..SynthOptions::default()
            },
        )?;
        println!(
            "  {:<16} {:>12.0} {:>12.0} {:>8.1}%  (4-instruction FSM datapath)",
            "vliw_alu",
            shared.area(),
            flat.area(),
            100.0 * (1.0 - shared.area() / flat.area())
        );
        rep.result_f64("vliw_alu_shared_area", shared.area());
        rep.result_f64("vliw_alu_flat_area", flat.area());
    }
    for name in ["dp_mac0", "pc_ctrl", "dp_slice"] {
        let comp = timed_comp(&sys, name)?;
        let shared = synthesize(
            comp,
            &SynthOptions {
                share_operators: true,
                ..SynthOptions::default()
            },
        )?;
        let flat = synthesize(
            comp,
            &SynthOptions {
                share_operators: false,
                ..SynthOptions::default()
            },
        )?;
        println!(
            "  {:<16} {:>12.0} {:>12.0} {:>8.1}%",
            name,
            shared.area(),
            flat.area(),
            100.0 * (1.0 - shared.area() / flat.area())
        );
    }

    // Encoding ablation over the FSM-bearing components.
    println!("\nFSM encoding ablation (full-component gate-eq):");
    println!(
        "  {:<16} {:>10} {:>10} {:>10}",
        "component", "binary", "one-hot", "gray"
    );
    let hcor_comp = hcor::build_component()?;
    let pc = timed_comp(&sys, "pc_ctrl")?;
    for (name, comp) in [("pc_ctrl", pc), ("hcor", &hcor_comp)] {
        let area = |e: Encoding| -> Result<f64, BenchError> {
            Ok(synthesize(
                comp,
                &SynthOptions {
                    encoding: e,
                    ..SynthOptions::default()
                },
            )?
            .area())
        };
        println!(
            "  {:<16} {:>10.0} {:>10.0} {:>10.0}",
            name,
            area(Encoding::Binary)?,
            area(Encoding::OneHot)?,
            area(Encoding::Gray)?
        );
    }

    // Adder-architecture ablation: area vs critical path on the MAC.
    println!("\nadder-architecture ablation (dp_mac0):");
    println!(
        "  {:<24} {:>12} {:>18}",
        "style", "gate-eq", "critical path"
    );
    let mac = timed_comp(&sys, "dp_mac0")?;
    for (label, style) in [
        ("ripple-carry", AdderStyle::Ripple),
        ("carry-select (4)", AdderStyle::CarrySelect { block: 4 }),
        ("carry-select (8)", AdderStyle::CarrySelect { block: 8 }),
    ] {
        let cn = synthesize(
            mac,
            &SynthOptions {
                adder_style: style,
                ..SynthOptions::default()
            },
        )?;
        let t = timing::analyze(&cn.netlist);
        println!(
            "  {:<24} {:>12.0} {:>13.1} units",
            label,
            cn.area(),
            t.critical_path
        );
    }

    // Post-optimisation effect.
    println!("\ngate-level post-optimisation (dp_mac0):");
    let raw = synthesize(
        mac,
        &SynthOptions {
            optimize: false,
            ..SynthOptions::default()
        },
    )?;
    let opt = synthesize(mac, &SynthOptions::default())?;
    println!(
        "  raw {:.0} gate-eq -> optimized {:.0} gate-eq ({:.1}% saved)",
        raw.area(),
        opt.area(),
        100.0 * (1.0 - opt.area() / raw.area())
    );

    // NAND/INV technology mapping: cell-subset cost of the hand-off.
    println!("\nNAND/INV technology mapping (map + re-optimise):");
    println!(
        "  {:<12} {:>14} {:>14} {:>16} {:>16}",
        "component", "generic area", "mapped area", "generic path", "mapped path"
    );
    for (label, comp) in [("hcor", &hcor_comp), ("dp_mac0", mac), ("pc_ctrl", pc)] {
        let generic = synthesize(comp, &SynthOptions::default())?;
        let mut mapped = generic.netlist.clone();
        ocapi_synth::techmap::to_nand_inv(&mut mapped);
        ocapi_synth::opt::optimize(&mut mapped);
        assert!(ocapi_synth::techmap::is_nand_inv(&mapped));
        let tg = timing::analyze(&generic.netlist);
        let tm = timing::analyze(&mapped);
        println!(
            "  {:<12} {:>14.0} {:>14.0} {:>10.1} units {:>10.1} units",
            label,
            generic.area(),
            mapped.area(),
            tg.critical_path,
            tm.critical_path
        );
    }

    // FSM state minimisation: collapses hand-unrolled wait chains.
    println!("\nFSM state-minimisation ablation (padded sequencer, N wait states):");
    println!(
        "  {:<10} {:>8} {:>10} {:>14} {:>14}",
        "waits", "states", "reduced", "plain area", "minimised area"
    );
    let wait_sizes: &[usize] = if args.quick { &[2, 8] } else { &[2, 8, 16] };
    for &waits in wait_sizes {
        let comp = padded_sequencer(waits)?;
        let fsm = comp
            .fsm
            .as_ref()
            .ok_or_else(|| BenchError::Driver("padded sequencer lost its FSM".into()))?;
        let reduced = ocapi_synth::fsm_min::minimize(fsm);
        let plain = synthesize(&comp, &SynthOptions::default())?;
        let min = synthesize(
            &comp,
            &SynthOptions {
                minimize_states: true,
                ..SynthOptions::default()
            },
        )?;
        println!(
            "  {:<10} {:>8} {:>10} {:>14.0} {:>14.0}",
            waits,
            fsm.states.len(),
            fsm.states.len() - reduced.merged,
            plain.area(),
            min.area()
        );
    }
    println!("  (captured production FSMs are already minimal: pc_ctrl and hcor merge 0 states)");
    for (label, comp) in [("pc_ctrl", pc), ("hcor", &hcor_comp)] {
        let fsm = comp
            .fsm
            .as_ref()
            .ok_or_else(|| BenchError::Driver(format!("{label} has no FSM")))?;
        let merged = ocapi_synth::fsm_min::minimize(fsm).merged;
        assert_eq!(merged, 0, "{label} unexpectedly reducible");
    }
    drop(t_abl);

    // Fault-simulation engine comparison on the HCOR netlist: the
    // word-packed parallel-pattern grader (63 fault machines per u64,
    // golden machine in bit 0) against the one-fault-at-a-time scalar
    // reference, on the same LFSR patterns. Classification must be
    // identical; the packed engine must advance at least 32x more fault
    // machines per gate evaluation — the structural advantage CI gates
    // on via `fault_eval_ratio` in this bin's perf JSON.
    use ocapi_gatesim::{bist, fault};
    let hcor_net = synthesize(&hcor_comp, &SynthOptions::default())?;
    let patterns = if args.quick { 32 } else { 128 };
    let stim = bist::lfsr_stimulus(&hcor_net.netlist, patterns, 0xace1);
    let t_fault = root.child("fault_engines").timer();
    let (packed, t_packed) =
        timed(|| fault::stuck_at_coverage_sharded_stats(&hcor_net.netlist, &stim, &pool));
    let (packed, packed_stats) = packed?;
    let (scalar, t_scalar) = timed(|| fault::stuck_at_coverage_scalar(&hcor_net.netlist, &stim));
    let (scalar, scalar_stats) = scalar?;
    drop(t_fault);
    assert_eq!(packed.detected, scalar.detected, "fault engines disagree");
    assert_eq!(
        packed.undetected, scalar.undetected,
        "fault engines disagree"
    );
    let ratio =
        packed_stats.faults_per_gate_eval() / scalar_stats.faults_per_gate_eval().max(1e-12);
    println!(
        "\nfault-simulation engines on hcor ({} faults, {} LFSR patterns, identical reports):",
        packed.total, patterns
    );
    println!(
        "  packed (63/word) {:>8.3} s   {:>6.2} faults/gate-eval",
        t_packed,
        packed_stats.faults_per_gate_eval()
    );
    println!(
        "  scalar           {:>8.3} s   {:>6.2} faults/gate-eval   (packed advantage {ratio:.1}x)",
        t_scalar,
        scalar_stats.faults_per_gate_eval()
    );
    assert!(
        ratio >= 32.0,
        "packed grader advanced only {ratio:.1}x more faults per gate eval (need >= 32x)"
    );
    rep.result_u64("fault_total", packed.total as u64);
    rep.result_u64("fault_detected", packed.detected as u64);
    rep.perf_u64("fault_packed_gate_evals", packed_stats.gate_evals);
    rep.perf_u64("fault_scalar_gate_evals", scalar_stats.gate_evals);
    rep.perf_f64(
        "fault_packed_faults_per_gate_eval",
        packed_stats.faults_per_gate_eval(),
    );
    rep.perf_f64(
        "fault_scalar_faults_per_gate_eval",
        scalar_stats.faults_per_gate_eval(),
    );
    rep.perf_f64("fault_eval_ratio", ratio);
    rep.perf_f64("fault_packed_secs", t_packed);
    rep.perf_f64("fault_scalar_secs", t_scalar);

    // Model-parallel partitioned gate engine on a paper-scale workload:
    // the synthesized HCOR correlator stamped into a registered replica
    // chain (large enough that one settle dominates the per-clock
    // thread hand-off), clocked through an LFSR stimulus by the flat
    // single-core kernel and by `PartitionedGateSim` at `--partitions`.
    // Output digests and kernel stats must match bit-for-bit — the
    // partitioned engine is a parallel schedule of the same events, not
    // an approximation — so the digest lands in the deterministic
    // results (byte-diffed by CI across partition counts) while the
    // throughput pair and the speedup land in perf.
    use ocapi_designs::scaled;
    use ocapi_gatesim::{GateSim, PartitionOptions, PartitionedGateSim};
    // Sized so one flat settle (~0.5-1 ms) dominates the per-clock
    // scoped-thread hand-off (~0.2 ms for 4 workers): small enough for
    // a smoke run, large enough that the speedup is structural rather
    // than noise on a multi-core runner.
    let replicas = if args.quick { 192 } else { 384 };
    let cycles = if args.quick { 48 } else { 96 };
    let scaled_net =
        scaled::scaled_hcor(replicas).map_err(|e| BenchError::Driver(e.to_string()))?;
    let in_buses: Vec<(String, Vec<_>)> = scaled_net.inputs.clone();
    let out_buses: Vec<(String, Vec<_>)> = scaled_net.outputs.clone();
    let drive = |step: u64, seed: &mut u64| -> u64 {
        // Galois LFSR stimulus, one fresh word per input bus per cycle.
        let mut x = *seed;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *seed = x;
        x.wrapping_add(step)
    };
    let fnv = |digest: u64, v: u64| -> u64 { (digest ^ v).wrapping_mul(0x0000_0100_0000_01b3) };
    let t_part = root.child("partitioned").timer();
    let mut flat = GateSim::new(scaled_net.clone()).map_err(BenchError::Gate)?;
    let (flat_digest, t_flat) = timed(|| -> Result<u64, BenchError> {
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mut seed = 0x1d87_2b41_1e86_3f25u64;
        for step in 0..cycles {
            for (_, bus) in &in_buses {
                flat.set_bus(bus, drive(step, &mut seed));
            }
            flat.clock().map_err(BenchError::Gate)?;
            for (_, bus) in &out_buses {
                digest = fnv(digest, flat.bus(bus));
            }
        }
        Ok(digest)
    });
    let flat_digest = flat_digest?;
    let opts = PartitionOptions::new(args.partitions).threads(args.threads.min(args.partitions));
    let mut part = PartitionedGateSim::new(scaled_net, &opts).map_err(BenchError::Gate)?;
    part.attach_obs(&obs);
    let (part_digest, t_part_run) = timed(|| -> Result<u64, BenchError> {
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mut seed = 0x1d87_2b41_1e86_3f25u64;
        for step in 0..cycles {
            for (_, bus) in &in_buses {
                part.set_bus(bus, drive(step, &mut seed));
            }
            part.clock().map_err(BenchError::Gate)?;
            for (_, bus) in &out_buses {
                digest = fnv(digest, part.bus(bus));
            }
        }
        Ok(digest)
    });
    let part_digest = part_digest?;
    drop(t_part);
    assert_eq!(
        part_digest, flat_digest,
        "partitioned engine diverged from the single-core kernel"
    );
    assert_eq!(
        part.stats(),
        flat.stats(),
        "partitioned engine stats diverged from the single-core kernel"
    );
    let (pmax, pmin) = part.plan().balance();
    let single_cps = cycles as f64 / t_flat.max(1e-12);
    let part_cps = cycles as f64 / t_part_run.max(1e-12);
    println!(
        "\npartitioned gate engine on scaled hcor ({} gates, {} replicas, {} cycles):",
        part.netlist().gates.len(),
        replicas,
        cycles
    );
    println!(
        "  single-core      {:>8.3} s   {:>8.0} cycles/s",
        t_flat, single_cps
    );
    println!(
        "  {:>2} partition(s)  {:>8.3} s   {:>8.0} cycles/s   ({:.2}x, {} cut edges, {}..{} gates/part)",
        part.partitions(),
        t_part_run,
        part_cps,
        part_cps / single_cps.max(1e-12),
        part.cut_edges(),
        pmin,
        pmax
    );
    rep.result_str("partition_digest", &format!("{flat_digest:016x}"));
    rep.result_u64("partition_gates", part.netlist().gates.len() as u64);
    rep.result_u64("partition_gate_evals", part.stats().gate_evals);
    rep.result_u64("partition_events", part.stats().events);
    rep.perf_u64("partition_cut_edges", part.cut_edges() as u64);
    rep.perf_u64("partition_exchanged", part.exchanged());
    rep.perf_f64("single_core_cycles_per_sec", single_cps);
    rep.perf_f64("partitioned_cycles_per_sec", part_cps);
    rep.perf_f64("partition_speedup", part_cps / single_cps.max(1e-12));

    rep.write(args)?;
    write_profile(args, &obs)?;
    Ok(())
}
