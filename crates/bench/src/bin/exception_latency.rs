//! The §3.3 architecture experiment: how fast can a *global exception*
//! (the DECT hold request) freeze the whole machine?
//!
//! The paper's original data-driven architecture made global exceptions
//! "very difficult to implement", which forced the mid-project switch to
//! central control where they become "a jump in the instruction ROM".
//! This harness quantifies that: under central control the entire DECT
//! transceiver freezes on the next instruction fetch (one cycle); in a
//! locally-controlled data-driven pipeline a stall propagates backwards
//! one handshake per cycle, so freeze latency grows with pipeline depth.
//!
//! Each pipeline depth is an independent build-and-run, so the depth
//! sweep shards across the `--threads N` pool (latencies merged in
//! depth order — identical for every thread count). Run with:
//!
//! `cargo run --release -p ocapi-bench --bin exception_latency -- [--threads N] [--quick]`

#![deny(clippy::unwrap_used, clippy::expect_used)]

use ocapi::sim::par::{map_indexed, ParError};
use ocapi::{Component, CoreError, InterpSim, SigType, Simulator, System, Value};
use ocapi_bench::{parse_args, timed, write_profile, BenchArgs, BenchError, Reporter};
use ocapi_designs::dect::burst::{generate, BurstConfig};
use ocapi_designs::dect::transceiver::{build_system, TransceiverConfig};
use ocapi_obs::Registry;

/// One stage of a data-driven pipeline with a registered stall handshake.
fn stage(name: &str) -> Result<Component, CoreError> {
    let c = Component::build(name);
    let stall_in = c.input("stall_in", SigType::Bool)?;
    let d_in = c.input("d_in", SigType::Bits(16))?;
    let stall_out = c.output("stall_out", SigType::Bool)?;
    let d_out = c.output("d_out", SigType::Bits(16))?;
    let data = c.reg("data", SigType::Bits(16))?;
    let stall_r = c.reg("stall_r", SigType::Bool)?;
    let s = c.sfg("s")?;
    let st = c.read(stall_in);
    let q = c.q(data);
    s.next(data, &st.mux(&q, &c.read(d_in)))?;
    s.next(stall_r, &st)?;
    s.drive(d_out, &q)?;
    s.drive(stall_out, &c.q(stall_r))?;
    c.finish()
}

/// Builds a K-stage data-driven pipeline fed by a counter; the stall
/// enters at the sink and propagates backwards stage by stage.
fn pipeline(k: usize) -> Result<System, CoreError> {
    let mut sb = System::build("pipeline");
    // Counter source.
    let src = {
        let c = Component::build("src");
        let stall = c.input("stall_in", SigType::Bool)?;
        let out = c.output("d_out", SigType::Bits(16))?;
        let cnt = c.reg("cnt", SigType::Bits(16))?;
        let s = c.sfg("s")?;
        let q = c.q(cnt);
        s.next(
            cnt,
            &c.read(stall).mux(&q, &(q.clone() + c.const_bits(16, 1))),
        )?;
        s.drive(out, &q)?;
        c.finish()?
    };
    let src_id = sb.add_component("src", src)?;
    let mut stages = Vec::new();
    for i in 0..k {
        stages.push(sb.add_component(&format!("st{i}"), stage(&format!("stage{i}"))?)?);
    }
    // Data flows forward, stall flows backward (registered per stage).
    sb.connect(src_id, "d_out", stages[0], "d_in")?;
    for i in 1..k {
        sb.connect(stages[i - 1], "d_out", stages[i], "d_in")?;
    }
    sb.input("stall", SigType::Bool)?;
    sb.connect_input("stall", stages[k - 1], "stall_in")?;
    for i in (0..k - 1).rev() {
        sb.connect(stages[i + 1], "stall_out", stages[i], "stall_in")?;
    }
    sb.connect(stages[0], "stall_out", src_id, "stall_in")?;
    sb.output("head", src_id, "d_out")?;
    sb.finish()
}

/// The experiment's own failure mode: the machine never reached the
/// frozen state within the probe window.
fn never_froze(what: &str) -> CoreError {
    CoreError::CheckFailed {
        diagnostics: vec![format!("{what} never froze within the probe window")],
    }
}

/// Cycles from asserting the sink stall until the source stops advancing.
fn dataflow_freeze_latency(k: usize) -> Result<u64, CoreError> {
    let mut sim = InterpSim::new(pipeline(k)?)?;
    sim.set_input("stall", Value::Bool(false))?;
    sim.run(10)?;
    sim.set_input("stall", Value::Bool(true))?;
    let mut prev = sim.output("head")?;
    for cycle in 1..200 {
        sim.step()?;
        let cur = sim.output("head")?;
        if cur == prev {
            return Ok(cycle);
        }
        prev = cur;
    }
    Err(never_froze("pipeline source"))
}

/// Cycles from asserting hold_request until the DECT machine issues nops.
fn central_freeze_latency() -> Result<u64, CoreError> {
    let cfg = TransceiverConfig::default();
    let mut sim = InterpSim::new(build_system(&cfg)?)?;
    let burst = generate(&BurstConfig::default());
    sim.set_input("hold_request", Value::Bool(false))?;
    sim.set_input("sample", Value::Fixed(burst.samples[0]))?;
    sim.run(10)?;
    sim.set_input("hold_request", Value::Bool(true))?;
    for cycle in 1..50 {
        sim.step()?;
        if sim.output("holding")? == Value::Bool(true) {
            return Ok(cycle);
        }
    }
    Err(never_froze("DECT machine"))
}

fn main() {
    let args = parse_args("exception_latency");
    if let Err(e) = run(&args) {
        eprintln!("exception_latency: {e}");
        std::process::exit(1);
    }
}

fn run(args: &BenchArgs) -> Result<(), BenchError> {
    let pool = args.pool();
    let mut rep = Reporter::new("exception_latency");
    let obs = Registry::new();
    let root = obs.span("exception_latency");
    println!("global-exception freeze latency (§3.3 architecture change):\n");
    let t_central = root.child("central").timer();
    let central = central_freeze_latency()?;
    drop(t_central);
    println!("  central control (DECT transceiver): {central} cycle(s)");
    rep.result_u64("central_freeze_cycles", central);
    println!("\n  data-driven pipeline (stall handshake, one per stage):");
    println!("  {:<10} {:>16}", "stages", "freeze latency");
    let depths: &[usize] = if args.quick {
        &[4, 8, 16]
    } else {
        &[4, 8, 16, 32]
    };
    let t_sweep = root.child("depth_sweep").timer();
    let (lats, secs) = timed(|| map_indexed(&pool, depths, |_, &k| dataflow_freeze_latency(k)));
    let lats = lats.map_err(|e| match e {
        ParError::Task { index, error } => BenchError::Item { index, error },
        ParError::Panic { index } => BenchError::Panic { index },
    })?;
    drop(t_sweep);
    obs.counter("exception.pipeline_builds")
        .add(depths.len() as u64);
    for (&k, &lat) in depths.iter().zip(&lats) {
        println!("  {k:<10} {lat:>14} cy");
        rep.result_u64(&format!("dataflow_freeze_cycles_d{k}"), lat);
    }
    rep.perf_f64("depth_sweep_secs", secs);
    println!(
        "\n  conclusion: central control freezes in O(1); the data-driven\n  \
         architecture needs O(depth) — with the 29-DECT-symbol latency\n  \
         budget this is why the paper switched architectures mid-design."
    );
    rep.write(args)?;
    write_profile(args, &obs)?;
    Ok(())
}
