//! The shared command-line interface of every benchmark binary.
//!
//! Before this module the five bins diverged in argument handling (and
//! mostly ignored `argv` altogether); now each parses the same flag
//! set through [`parse_args`] and exits non-zero with a usage message
//! on anything it does not understand, so CI invocations fail loudly
//! instead of silently running the wrong workload.
//!
//! Flags:
//!
//! * `--threads N` / `-t N` — worker-pool width for the sharded
//!   engines. Results are bit-identical for every `N`; see
//!   `ocapi::sim::par`.
//! * `--lanes N` — lane count for the batched tape executor
//!   (`ocapi::sim::batch`): N independent instances share one micro-op
//!   tape walk per cycle. Composes with `--threads` (each worker steps
//!   its own batch) and results are bit-identical for every `N`.
//! * `--quick` / `-q` — a CI-sized workload (same code paths, smaller
//!   vector sets) for the `bench-smoke` and `determinism` jobs.
//! * `--opt N` (or `--opt=N`, N in 0..=2) — tape-optimization level for
//!   the compiled simulator (`ocapi::OptLevel`); default 2 (Full).
//!   Deterministic results are identical at every level — only the perf
//!   section (tape length, wall time) may differ.
//! * `--json PATH` — write the *deterministic* results (counts,
//!   signatures, BER points — never timings or the thread count) as
//!   JSON. Byte-identical across thread counts; the CI determinism job
//!   diffs this file between `--threads 1` and `--threads 4`.
//! * `--perf-json PATH` — write the throughput metrics (wall seconds,
//!   cycles/sec, runs/sec, per-worker utilization) as JSON; CI merges
//!   these into the `BENCH_PR.json` trajectory artifact.
//! * `--profile-json PATH` — write the observability profile (counter
//!   totals, span call-tree, per-phase timings) as JSON. The
//!   `deterministic` section is byte-identical across thread counts;
//!   the `timing` section is advisory wall-clock data.

use ocapi::{ExecEngine, OptLevel, ParConfig};

/// Which stuck-at grading engine `--fault-engine` selects.
///
/// Both engines share one fault universe (`gatesim::enumerate_faults`)
/// and classify identically — the CI determinism job byte-diffs their
/// `--json` output — but the packed engine advances up to 63 fault
/// machines per gate evaluation, while the scalar engine re-simulates
/// the netlist once per fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultEngine {
    /// Word-parallel grading: 63 fault machines + the good machine
    /// packed per `u64` (the default).
    #[default]
    Packed,
    /// One faulty netlist re-simulation per fault (the reference).
    Scalar,
}

impl FaultEngine {
    /// The `--fault-engine` spelling of this engine.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultEngine::Packed => "packed",
            FaultEngine::Scalar => "scalar",
        }
    }
}

/// Parsed benchmark options, shared by all five bins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Binary name, for usage and report headers.
    pub bin: String,
    /// Worker threads for the sharded engines (≥ 1).
    pub threads: usize,
    /// Lanes for the batched tape executor (≥ 1; 1 = scalar path).
    pub lanes: usize,
    /// CI-sized workload.
    pub quick: bool,
    /// Compiled-simulator tape-optimization level (0, 1 or 2).
    pub opt: u8,
    /// Destination for the deterministic results JSON.
    pub json: Option<String>,
    /// Destination for the performance-metrics JSON.
    pub perf_json: Option<String>,
    /// Destination for the observability-profile JSON.
    pub profile_json: Option<String>,
    /// Checkpoint directory for crash-safe campaigns (`--checkpoint`).
    pub checkpoint: Option<String>,
    /// Completed items between manifest flushes (`--checkpoint-every`).
    pub checkpoint_every: u64,
    /// Skip items already recorded in the checkpoint manifests
    /// (`--resume`; requires `--checkpoint`).
    pub resume: bool,
    /// Attempts per sharded work item (≥ 1; `--retries`). Retried items
    /// re-run with their original index-derived seeds, so recovery is
    /// bit-identical to a first-try success.
    pub retries: u32,
    /// Stuck-at grading engine (`--fault-engine packed|scalar`).
    pub fault_engine: FaultEngine,
    /// Simulation engine (`--engine interp|compiled|fused`). Only
    /// `table1` (the throughput tables) acts on it today: `fused` adds
    /// the direct-threaded rows and their perf-JSON points. Results
    /// are engine-independent — the CI determinism job byte-diffs
    /// `--json` across engines.
    pub engine: ExecEngine,
    /// Partition count for the model-parallel gate engine
    /// (`--partitions`, ≥ 1; 1 = single sub-kernel). Only `table_gates`
    /// acts on it today. Results are bit-identical for every K — the
    /// CI determinism job byte-diffs `--json` across partition counts.
    pub partitions: usize,
}

impl BenchArgs {
    /// Defaults: one thread, full workload, no JSON files.
    pub fn defaults(bin: &str) -> BenchArgs {
        BenchArgs {
            bin: bin.to_owned(),
            threads: 1,
            lanes: 1,
            quick: false,
            opt: 2,
            json: None,
            perf_json: None,
            profile_json: None,
            checkpoint: None,
            checkpoint_every: 64,
            resume: false,
            retries: 1,
            fault_engine: FaultEngine::default(),
            engine: ExecEngine::Compiled,
            partitions: 1,
        }
    }

    /// The worker pool these options select.
    pub fn pool(&self) -> ParConfig {
        ParConfig::new(self.threads)
    }

    /// The compiled-simulator optimization level `--opt` selects.
    pub fn opt_level(&self) -> OptLevel {
        match self.opt {
            0 => OptLevel::None,
            1 => OptLevel::Basic,
            _ => OptLevel::Full,
        }
    }
}

/// The usage text for `bin`.
pub fn usage(bin: &str) -> String {
    format!(
        "usage: {bin} [--threads N] [--lanes N] [--quick] [--opt N] [--json PATH] [--perf-json PATH] [--profile-json PATH]\n\
         \x20      [--checkpoint DIR] [--checkpoint-every N] [--resume] [--retries N]\n\
         \x20      [--fault-engine packed|scalar] [--engine interp|compiled|fused] [--partitions K]\n\
         \n\
         \x20 -t, --threads N    worker threads for the sharded engines (default 1;\n\
         \x20                    results are bit-identical for every N)\n\
         \x20     --lanes N      lanes for the batched tape executor (default 1;\n\
         \x20                    N instances share one tape walk per cycle —\n\
         \x20                    results are bit-identical for every N)\n\
         \x20 -q, --quick        CI-sized workload (same code paths, smaller sets)\n\
         \x20     --opt N        compiled-simulator tape optimization: 0 = none,\n\
         \x20                    1 = fold/simplify, 2 = full (CSE + DCE + slot\n\
         \x20                    compaction; default 2). Results are identical at\n\
         \x20                    every level\n\
         \x20     --json PATH    write deterministic results as JSON (no timings)\n\
         \x20     --perf-json PATH\n\
         \x20                    write throughput metrics as JSON (BENCH_PR data)\n\
         \x20     --profile-json PATH\n\
         \x20                    write the observability profile (counters, span\n\
         \x20                    tree, per-phase timings) as JSON\n\
         \x20     --checkpoint DIR\n\
         \x20                    write atomic checkpoint manifests of completed\n\
         \x20                    work items into DIR (crash-safe: temp + fsync +\n\
         \x20                    rename, never torn)\n\
         \x20     --checkpoint-every N\n\
         \x20                    flush manifests every N completed items\n\
         \x20                    (default 64)\n\
         \x20     --resume       skip items recorded in DIR's manifests; the\n\
         \x20                    resumed JSON output is byte-identical to an\n\
         \x20                    uninterrupted run at any --lanes x --threads\n\
         \x20     --retries N    attempts per sharded work item (default 1);\n\
         \x20                    retried items rerun with their original seeds,\n\
         \x20                    so recovery is bit-identical\n\
         \x20     --fault-engine packed|scalar\n\
         \x20                    stuck-at grading engine (default packed: 63\n\
         \x20                    fault machines per u64 word; scalar re-runs the\n\
         \x20                    netlist once per fault). Classification is\n\
         \x20                    byte-identical either way\n\
         \x20     --engine interp|compiled|fused\n\
         \x20                    simulation engine for the throughput tables\n\
         \x20                    (default compiled; fused adds the\n\
         \x20                    direct-threaded rows and perf points). Results\n\
         \x20                    are byte-identical across engines\n\
         \x20     --partitions K\n\
         \x20                    partitions for the model-parallel gate engine\n\
         \x20                    (default 1). The netlist is split into K\n\
         \x20                    sub-kernels settled in parallel, with registered\n\
         \x20                    cut-edge values exchanged at each clock edge.\n\
         \x20                    Results are bit-identical for every K\n\
         \x20 -h, --help         show this message"
    )
}

/// Parses an explicit argument list (everything after `argv[0]`).
///
/// Pure and in-process for testability; [`parse_args`] is the exiting
/// wrapper the bins call.
///
/// # Errors
///
/// Returns a human-readable message for an unknown flag, a missing or
/// malformed flag value, or a stray positional argument.
pub fn parse_arg_list(bin: &str, args: &[String]) -> Result<BenchArgs, String> {
    let mut out = BenchArgs::defaults(bin);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" | "-t" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a value"))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("{arg} expects a positive integer, got `{v}`"))?;
                if n == 0 {
                    return Err(format!("{arg} must be at least 1"));
                }
                out.threads = n;
            }
            "--lanes" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a value"))?;
                out.lanes = parse_lanes(arg, v)?;
            }
            _ if arg.starts_with("--lanes=") => {
                out.lanes = parse_lanes("--lanes", &arg["--lanes=".len()..])?;
            }
            "--quick" | "-q" => out.quick = true,
            "--opt" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a value"))?;
                out.opt = parse_opt_level(arg, v)?;
            }
            _ if arg.starts_with("--opt=") => {
                out.opt = parse_opt_level("--opt", &arg["--opt=".len()..])?;
            }
            "--json" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a path"))?;
                out.json = Some(v.clone());
            }
            "--perf-json" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a path"))?;
                out.perf_json = Some(v.clone());
            }
            "--profile-json" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a path"))?;
                out.profile_json = Some(v.clone());
            }
            "--checkpoint" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a path"))?;
                out.checkpoint = Some(v.clone());
            }
            "--checkpoint-every" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a value"))?;
                out.checkpoint_every = parse_at_least_one(arg, v)?;
            }
            _ if arg.starts_with("--checkpoint-every=") => {
                out.checkpoint_every =
                    parse_at_least_one("--checkpoint-every", &arg["--checkpoint-every=".len()..])?;
            }
            "--resume" => out.resume = true,
            "--retries" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a value"))?;
                out.retries = parse_at_least_one(arg, v)? as u32;
            }
            _ if arg.starts_with("--retries=") => {
                out.retries = parse_at_least_one("--retries", &arg["--retries=".len()..])? as u32;
            }
            "--fault-engine" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a value"))?;
                out.fault_engine = parse_fault_engine(arg, v)?;
            }
            _ if arg.starts_with("--fault-engine=") => {
                out.fault_engine =
                    parse_fault_engine("--fault-engine", &arg["--fault-engine=".len()..])?;
            }
            "--engine" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a value"))?;
                out.engine = parse_engine(arg, v)?;
            }
            _ if arg.starts_with("--engine=") => {
                out.engine = parse_engine("--engine", &arg["--engine=".len()..])?;
            }
            "--partitions" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a value"))?;
                out.partitions = parse_partitions(arg, v)?;
            }
            _ if arg.starts_with("--partitions=") => {
                out.partitions = parse_partitions("--partitions", &arg["--partitions=".len()..])?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if out.resume && out.checkpoint.is_none() {
        return Err("--resume requires --checkpoint DIR".to_owned());
    }
    Ok(out)
}

/// Parses a count that must be at least 1 (checkpoint interval, retry
/// attempts).
fn parse_at_least_one(flag: &str, v: &str) -> Result<u64, String> {
    match v.parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("{flag} expects a positive integer, got `{v}`")),
    }
}

/// Parses and range-checks an `--opt` level (0, 1 or 2).
fn parse_opt_level(flag: &str, v: &str) -> Result<u8, String> {
    match v.parse::<u8>() {
        Ok(n @ 0..=2) => Ok(n),
        _ => Err(format!("{flag} expects 0, 1 or 2, got `{v}`")),
    }
}

/// Parses a `--fault-engine` selector.
fn parse_fault_engine(flag: &str, v: &str) -> Result<FaultEngine, String> {
    match v {
        "packed" => Ok(FaultEngine::Packed),
        "scalar" => Ok(FaultEngine::Scalar),
        _ => Err(format!("{flag} expects `packed` or `scalar`, got `{v}`")),
    }
}

/// Parses an `--engine` selector.
fn parse_engine(flag: &str, v: &str) -> Result<ExecEngine, String> {
    ExecEngine::parse(v)
        .ok_or_else(|| format!("{flag} expects `interp`, `compiled` or `fused`, got `{v}`"))
}

/// Parses and range-checks a `--lanes` count (≥ 1).
fn parse_lanes(flag: &str, v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("{flag} expects a positive integer, got `{v}`")),
    }
}

/// Parses and range-checks a `--partitions` count (≥ 1).
fn parse_partitions(flag: &str, v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("{flag} expects a positive integer, got `{v}`")),
    }
}

/// Parses `std::env::args()`. On `--help` prints usage and exits 0; on
/// any parse error prints the error plus usage to stderr and exits 2.
pub fn parse_args(bin: &str) -> BenchArgs {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_arg_list(bin, &argv) {
        Ok(args) => args,
        Err(msg) if msg.is_empty() => {
            println!("{}", usage(bin));
            std::process::exit(0);
        }
        Err(msg) => {
            eprintln!("{bin}: {msg}\n\n{}", usage(bin));
            std::process::exit(2);
        }
    }
}
