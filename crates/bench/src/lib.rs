#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

//! Shared infrastructure for the benchmark harnesses that regenerate the
//! paper's evaluation (Table 1 and the figure-level experiments).
//!
//! The binaries:
//!
//! * `table1` — regenerates Table 1: source-code size, simulation speed
//!   and process size for HCOR and the DECT transceiver across the four
//!   simulation paradigms.
//! * `table_gates` — the gate inventory behind the "75 Kgate" claim, plus
//!   the operator-sharing and FSM-encoding ablations.
//! * `exception_latency` — the §3.3 experiment: global-exception latency
//!   under central control vs a data-driven pipeline.
//!
//! The plain timing harnesses in `benches/` (run with `cargo bench`)
//! time the same workloads, reporting the median of repeated runs with
//! no registry dependencies.

use std::alloc::{GlobalAlloc, Layout, System as SysAlloc};
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod ber;
pub mod checkpoint;
pub mod cli;
pub mod error;
pub mod report;

pub use checkpoint::{fingerprint, job_dir, CheckpointStream, Robust};
pub use cli::{parse_arg_list, parse_args, usage, BenchArgs, FaultEngine};
pub use error::BenchError;
pub use report::{write_atomic, write_profile, Reporter};

/// A counting allocator for the "process size" column of Table 1: tracks
/// live and peak heap bytes.
pub struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates to the system allocator; the counters are only
// advisory and use relaxed atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { SysAlloc.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SysAlloc.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

impl CountingAlloc {
    /// Currently live heap bytes.
    pub fn live() -> usize {
        LIVE.load(Ordering::Relaxed)
    }

    /// Peak heap bytes since start (or the last reset).
    pub fn peak() -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current live count.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Formats a byte count as MB with two decimals.
pub fn mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let sw = ocapi_obs::Stopwatch::start();
    let r = f();
    (r, sw.elapsed_secs())
}

/// A sequencer whose wait loop was hand-unrolled into `waits` identical
/// states — the redundancy that FSM state minimisation removes. Shared
/// by the `table_gates` ablation and the synthesis benches.
///
/// # Errors
///
/// Propagates capture errors from the DSL (none for valid `waits >= 1`).
pub fn padded_sequencer(waits: usize) -> Result<ocapi::Component, ocapi::CoreError> {
    use ocapi::{Component, SigType};
    let c = Component::build("seq");
    let ready = c.input("ready", SigType::Bool)?;
    let o = c.output("o", SigType::Bits(8))?;
    let r = c.reg("r", SigType::Bits(8))?;
    let work = c.sfg("work")?;
    let q = c.q(r);
    work.drive(o, &q)?;
    work.next(r, &(q + c.const_bits(8, 3)))?;
    let hold = c.sfg("hold")?;
    hold.drive(o, &c.q(r))?;
    let g = c.read(ready);
    let f = c.fsm()?;
    let s0 = f.initial("fetch")?;
    let ws: Vec<_> = (0..waits)
        .map(|k| f.state(&format!("wait{k}")))
        .collect::<Result<_, _>>()?;
    f.from(s0).always().run(work.id()).to(ws[0])?;
    for (k, w) in ws.iter().enumerate() {
        f.from(*w).when(&g).run(work.id()).to(s0)?;
        f.from(*w)
            .always()
            .run(hold.id())
            .to(ws[(k + 1) % ws.len()])?;
    }
    c.finish()
}
