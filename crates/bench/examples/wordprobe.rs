//! Word-plan diagnostics: how much of each design's compiled tape the
//! bitsliced Bool fast path covers (DESIGN.md §12).
//!
//! For the DECT transceiver and the HCOR correlator at each tape-
//! optimization level, prints the planner's block count and coverage
//! plus the eligibility histogram — run lengths of word-eligible ops
//! *after* the clustering scheduler. A large eligible count with every
//! run below the planner's minimum means the scheduler (not the
//! classifier) limits coverage.
//!
//! `cargo run --release -p ocapi-bench --example wordprobe`

use ocapi::{BatchedSim, OptLevel};
use ocapi_designs::dect::transceiver::{build_system, TransceiverConfig};
use ocapi_designs::hcor;

fn probe(label: &str, sim: &BatchedSim) {
    let (eligible, total, hist) = sim.word_eligibility();
    println!(
        "{label:<12} blocks={:<3} coverage={:<4} eligible={eligible}/{total} runs={hist:?}",
        sim.word_blocks(),
        sim.word_tape_coverage()
    );
}

fn main() -> Result<(), ocapi::CoreError> {
    for level in [OptLevel::None, OptLevel::Basic, OptLevel::Full] {
        let sys = build_system(&TransceiverConfig {
            train: true,
            agc: false,
            adapt: true,
        })?;
        probe(
            &format!("dect {level:?}"),
            &BatchedSim::new_with(vec![sys], level)?,
        );
    }
    for level in [OptLevel::None, OptLevel::Full] {
        let sys = hcor::build_system()?;
        probe(
            &format!("hcor {level:?}"),
            &BatchedSim::new_with(vec![sys], level)?,
        );
    }
    Ok(())
}
