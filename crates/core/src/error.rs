use std::error::Error;
use std::fmt;

use crate::value::SigType;

/// Errors raised while capturing or simulating a design.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Two signals of incompatible type were combined. The paper's
    /// environment relies on the host type system for this; we check at
    /// graph-construction time.
    TypeMismatch {
        /// Operation being built.
        op: String,
        /// Left/first operand type.
        left: SigType,
        /// Right/second operand type (same as `left` for unary ops).
        right: SigType,
    },
    /// A name was looked up and not found (port, instance, net, state…).
    UnknownName {
        /// What kind of thing was looked up.
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// A duplicate name was declared.
    DuplicateName {
        /// What kind of thing was declared.
        kind: &'static str,
        /// The clashing name.
        name: String,
    },
    /// An input port is driven by more than one net, or an output drives
    /// conflicting connections.
    ConnectionConflict {
        /// Human-readable endpoint description.
        endpoint: String,
    },
    /// An input port was never connected to a driver.
    UnconnectedInput {
        /// Instance name.
        instance: String,
        /// Port name.
        port: String,
    },
    /// The evaluation phase of the cycle scheduler made no progress while
    /// signal-flow graphs were still waiting for input tokens: a
    /// combinational loop (or a genuinely deadlocked system).
    CombinationalLoop {
        /// The assignments that never received their inputs, as
        /// `instance.sfg -> target` strings.
        waiting: Vec<String>,
    },
    /// The data-flow scheduler could not fire any actor although tokens
    /// remain (or an actor never became fireable).
    DataflowDeadlock {
        /// Actors that still have work pending.
        blocked: Vec<String>,
    },
    /// The SDF balance equations have no non-trivial solution — the graph
    /// has inconsistent rates and cannot be scheduled periodically.
    InconsistentRates {
        /// The edge (producer, consumer) where inconsistency was detected.
        edge: (String, String),
    },
    /// A strict component check failed (dangling input, dead code, …).
    CheckFailed {
        /// The diagnostics, rendered.
        diagnostics: Vec<String>,
    },
    /// The design cannot be compiled to a static single-pass schedule
    /// (the conservative cross-component dependence graph is cyclic).
    /// The interpreted simulator may still succeed if the cycle is a
    /// false positive of the conservative analysis.
    NotCompilable {
        /// Description of the strongly connected component found.
        cycle: Vec<String>,
    },
    /// A simulation-time value did not match the declared signal type.
    ValueType {
        /// Where the mismatch happened.
        context: String,
        /// The expected type.
        expected: SigType,
    },
    /// A signal handle from one component was used inside another.
    ForeignSignal,
    /// The simulator back-end does not implement the requested operation
    /// (e.g. state peeking on a back-end without observable state).
    Unsupported {
        /// The unimplemented operation.
        op: String,
    },
    /// A trace row of the wrong width was recorded: the number of values
    /// did not match the number of declared trace signals.
    TraceShape {
        /// Declared signal count of the trace.
        expected: usize,
        /// Number of values in the rejected row.
        got: usize,
    },
    /// A worker of the sharded execution engine panicked while
    /// processing the given work item. The panic was contained at the
    /// item boundary (the pool survives and every other item ran); the
    /// index identifies the poisoned run deterministically.
    WorkerPanic {
        /// Index of the work item whose closure panicked.
        index: usize,
    },
    /// A watchdog budget attached to the simulator ran out. The run is
    /// stopped with a typed error instead of hanging: campaigns classify
    /// the item as timed out and keep going.
    BudgetExceeded {
        /// Which budget was exhausted.
        kind: crate::sim::budget::BudgetKind,
        /// The cycle count at which the budget tripped.
        at_cycle: u64,
    },
    /// A snapshot was offered to a simulator whose design hash does not
    /// match the one the snapshot was taken from (different design, or
    /// the same design compiled at a different optimization level).
    SnapshotMismatch {
        /// Design hash of the simulator refusing the restore.
        expected: u64,
        /// Design hash recorded in the snapshot.
        got: u64,
    },
    /// A snapshot byte stream or section was malformed (bad magic,
    /// unsupported version, checksum failure, wrong section shape).
    SnapshotFormat {
        /// What was wrong with it.
        reason: String,
    },
    /// A cached compiled tape ([`crate::CompiledTape`]) was offered a
    /// system whose structural hash does not match the system the tape
    /// was compiled from — a tape-cache lookup gone wrong.
    TapeMismatch {
        /// Structural hash the tape was compiled from.
        expected: u64,
        /// Structural hash of the offered system.
        got: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::TypeMismatch { op, left, right } => {
                write!(f, "type mismatch in {op}: {left} vs {right}")
            }
            CoreError::UnknownName { kind, name } => write!(f, "unknown {kind} `{name}`"),
            CoreError::DuplicateName { kind, name } => write!(f, "duplicate {kind} `{name}`"),
            CoreError::ConnectionConflict { endpoint } => {
                write!(f, "conflicting connection at {endpoint}")
            }
            CoreError::UnconnectedInput { instance, port } => {
                write!(f, "input `{instance}.{port}` is not connected")
            }
            CoreError::CombinationalLoop { waiting } => {
                write!(f, "combinational loop: unresolved after evaluation phase: ")?;
                write!(f, "{}", waiting.join(", "))
            }
            CoreError::DataflowDeadlock { blocked } => {
                write!(
                    f,
                    "data-flow deadlock, blocked actors: {}",
                    blocked.join(", ")
                )
            }
            CoreError::InconsistentRates { edge } => {
                write!(f, "inconsistent SDF rates on edge {} -> {}", edge.0, edge.1)
            }
            CoreError::CheckFailed { diagnostics } => {
                write!(f, "component checks failed: {}", diagnostics.join("; "))
            }
            CoreError::NotCompilable { cycle } => {
                write!(
                    f,
                    "design not statically schedulable, dependency cycle through: {}",
                    cycle.join(" -> ")
                )
            }
            CoreError::ValueType { context, expected } => {
                write!(f, "value type mismatch at {context}: expected {expected}")
            }
            CoreError::ForeignSignal => {
                write!(f, "signal belongs to a different component")
            }
            CoreError::Unsupported { op } => {
                write!(f, "unsupported simulator operation: {op}")
            }
            CoreError::TraceShape { expected, got } => {
                write!(
                    f,
                    "trace width mismatch: {expected} signals declared, {got} values recorded"
                )
            }
            CoreError::WorkerPanic { index } => {
                write!(f, "sharded work item {index} panicked in a worker thread")
            }
            CoreError::BudgetExceeded { kind, at_cycle } => {
                write!(f, "{kind} budget exceeded at cycle {at_cycle}")
            }
            CoreError::SnapshotMismatch { expected, got } => {
                write!(
                    f,
                    "snapshot design hash {got:#018x} does not match simulator \
                     design hash {expected:#018x}"
                )
            }
            CoreError::SnapshotFormat { reason } => {
                write!(f, "malformed snapshot: {reason}")
            }
            CoreError::TapeMismatch { expected, got } => {
                write!(
                    f,
                    "cached tape was compiled from design {expected:#018x}, \
                     offered system hashes to {got:#018x}"
                )
            }
        }
    }
}

impl Error for CoreError {}
