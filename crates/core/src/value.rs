use std::fmt;

use ocapi_fixp::{Fix, Format, Overflow, Rounding};

use crate::CoreError;

/// The static type of a signal.
///
/// The paper's signals are "either floating point values or else simulated
/// fixed point values"; control signals (instructions, conditions,
/// addresses) are bit words. We make all four explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SigType {
    /// A single control bit.
    Bool,
    /// An unsigned bit word of the given width (1..=64), with wrapping
    /// arithmetic — used for instructions, program counters, addresses.
    Bits(u32),
    /// A signed fixed-point value of the given format.
    Fixed(Format),
    /// A double-precision float (for not-yet-quantised high-level models).
    Float,
}

impl fmt::Display for SigType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigType::Bool => write!(f, "bool"),
            SigType::Bits(w) => write!(f, "bits<{w}>"),
            SigType::Fixed(fmt_) => write!(f, "fixed{fmt_}"),
            SigType::Float => write!(f, "float"),
        }
    }
}

impl SigType {
    /// Width in bits of the hardware representation of this type.
    pub fn width(self) -> u32 {
        match self {
            SigType::Bool => 1,
            SigType::Bits(w) => w,
            SigType::Fixed(fmt) => fmt.wl(),
            SigType::Float => 64,
        }
    }

    /// The value a register of this type holds before initialisation.
    pub fn zero(self) -> Value {
        match self {
            SigType::Bool => Value::Bool(false),
            SigType::Bits(w) => Value::Bits { width: w, bits: 0 },
            SigType::Fixed(fmt) => Value::Fixed(Fix::zero(fmt)),
            SigType::Float => Value::Float(0.0),
        }
    }
}

/// A runtime signal value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A control bit.
    Bool(bool),
    /// An unsigned bit word (bits above `width` are zero).
    Bits {
        /// Width in bits (1..=64).
        width: u32,
        /// The value, masked to `width` bits.
        bits: u64,
    },
    /// A fixed-point value.
    Fixed(Fix),
    /// A float value.
    Float(f64),
}

impl Value {
    /// Convenience constructor for a bit word, masking to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn bits(width: u32, bits: u64) -> Value {
        assert!((1..=64).contains(&width), "bit width must be 1..=64");
        Value::Bits {
            width,
            bits: mask(width, bits),
        }
    }

    /// The type of this value.
    pub fn sig_type(&self) -> SigType {
        match self {
            Value::Bool(_) => SigType::Bool,
            Value::Bits { width, .. } => SigType::Bits(*width),
            Value::Fixed(v) => SigType::Fixed(v.format()),
            Value::Float(_) => SigType::Float,
        }
    }

    /// Extracts a bool, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts the bit word, if this is a `Bits`.
    pub fn as_bits(&self) -> Option<u64> {
        match self {
            Value::Bits { bits, .. } => Some(*bits),
            _ => None,
        }
    }

    /// Extracts the fixed-point value, if this is a `Fixed`.
    pub fn as_fixed(&self) -> Option<Fix> {
        match self {
            Value::Fixed(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric view of the value as a double (bools become 0/1).
    pub fn to_f64(&self) -> f64 {
        match self {
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Bits { bits, .. } => *bits as f64,
            Value::Fixed(v) => v.to_f64(),
            Value::Float(v) => *v,
        }
    }

    /// The raw 64-bit encoding of the value — the representation used
    /// by the compiled back-end's state slots and by simulator
    /// snapshots: `Bool` → 0/1, `Bits` → the word, `Fixed` → the
    /// mantissa bits, `Float` → the IEEE-754 bit pattern.
    pub fn to_raw(&self) -> u64 {
        match self {
            Value::Bool(b) => *b as u64,
            Value::Bits { bits, .. } => *bits,
            Value::Fixed(f) => f.mantissa() as u64,
            Value::Float(x) => x.to_bits(),
        }
    }

    /// Rebuilds a value of type `ty` from its [`Value::to_raw`]
    /// encoding.
    pub fn from_raw(ty: SigType, raw: u64) -> Value {
        match ty {
            SigType::Bool => Value::Bool(raw != 0),
            SigType::Bits(w) => Value::bits(w, mask(w, raw)),
            SigType::Fixed(f) => Value::Fixed(Fix::from_raw(raw as i64, f)),
            SigType::Float => Value::Float(f64::from_bits(raw)),
        }
    }

    /// Checks that this value matches `ty` exactly.
    pub fn check_type(&self, ty: SigType, context: &str) -> Result<(), CoreError> {
        if self.sig_type() == ty {
            Ok(())
        } else {
            Err(CoreError::ValueType {
                context: context.to_owned(),
                expected: ty,
            })
        }
    }

    /// Like [`Value::check_type`] but builds the error context lazily.
    /// The simulator `set_input`/`poke_net` paths run this every cycle;
    /// an eager `format!` there is an allocation per driven input.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ValueType`] when the value's type differs
    /// from `ty`.
    pub fn check_type_with(
        &self,
        ty: SigType,
        context: impl FnOnce() -> String,
    ) -> Result<(), CoreError> {
        if self.sig_type() == ty {
            Ok(())
        } else {
            Err(CoreError::ValueType {
                context: context(),
                expected: ty,
            })
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{}", if *b { 1 } else { 0 }),
            Value::Bits { width, bits } => write!(f, "{bits}u{width}"),
            Value::Fixed(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
        }
    }
}

fn mask(width: u32, bits: u64) -> u64 {
    if width >= 64 {
        bits
    } else {
        bits & ((1u64 << width) - 1)
    }
}

/// Binary operators available on signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition (`Fixed`, `Float`, wrapping on `Bits`).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Bitwise/logical AND (`Bits`, `Bool`).
    And,
    /// Bitwise/logical OR.
    Or,
    /// Bitwise/logical XOR.
    Xor,
    /// Equality (any type) → `Bool`.
    Eq,
    /// Inequality → `Bool`.
    Ne,
    /// Less-than → `Bool` (unsigned on `Bits`).
    Lt,
    /// Less-or-equal → `Bool`.
    Le,
    /// Greater-than → `Bool`.
    Gt,
    /// Greater-or-equal → `Bool`.
    Ge,
}

impl BinOp {
    /// The result type of applying this operator, or a type error.
    pub fn result_type(self, l: SigType, r: SigType) -> Result<SigType, CoreError> {
        use BinOp::*;
        let err = || CoreError::TypeMismatch {
            op: format!("{self:?}"),
            left: l,
            right: r,
        };
        match self {
            Add | Sub | Mul => match (l, r) {
                (SigType::Bits(a), SigType::Bits(b)) if a == b => Ok(SigType::Bits(a)),
                (SigType::Float, SigType::Float) => Ok(SigType::Float),
                (SigType::Fixed(a), SigType::Fixed(b)) => {
                    // Exact growth, mirroring Fix::wide_* — capped at 63 bits.
                    let fmt = match self {
                        Add | Sub => {
                            let fb = a.frac_bits().max(b.frac_bits());
                            let iwl = (a.iwl().max(b.iwl()) + 1).min(63);
                            Format::new((iwl + fb).clamp(1, 63), iwl)
                        }
                        Mul => {
                            let fb = a.frac_bits() + b.frac_bits();
                            let iwl = (a.iwl() + b.iwl()).min(63);
                            Format::new((iwl + fb).clamp(1, 63), iwl)
                        }
                        _ => unreachable!(),
                    };
                    match fmt {
                        Ok(fmt) => Ok(SigType::Fixed(fmt)),
                        Err(_) => Err(err()),
                    }
                }
                _ => Err(err()),
            },
            And | Or | Xor => match (l, r) {
                (SigType::Bool, SigType::Bool) => Ok(SigType::Bool),
                (SigType::Bits(a), SigType::Bits(b)) if a == b => Ok(SigType::Bits(a)),
                _ => Err(err()),
            },
            Eq | Ne | Lt | Le | Gt | Ge => {
                let compatible = match (l, r) {
                    (SigType::Bool, SigType::Bool) => true,
                    (SigType::Bits(a), SigType::Bits(b)) => a == b,
                    (SigType::Fixed(_), SigType::Fixed(_)) => true,
                    (SigType::Float, SigType::Float) => true,
                    _ => false,
                };
                if compatible {
                    Ok(SigType::Bool)
                } else {
                    Err(err())
                }
            }
        }
    }

    /// Applies the operator to two well-typed values.
    ///
    /// # Panics
    ///
    /// Panics on operand types that [`BinOp::result_type`] would have
    /// rejected — simulation only ever sees type-checked graphs.
    pub fn apply(self, l: Value, r: Value) -> Value {
        use BinOp::*;
        match self {
            Add | Sub | Mul => match (l, r) {
                (Value::Bits { width, bits: a }, Value::Bits { bits: b, .. }) => {
                    let v = match self {
                        Add => a.wrapping_add(b),
                        Sub => a.wrapping_sub(b),
                        Mul => a.wrapping_mul(b),
                        _ => unreachable!(),
                    };
                    Value::bits(width, v)
                }
                (Value::Float(a), Value::Float(b)) => Value::Float(match self {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    _ => unreachable!(),
                }),
                (Value::Fixed(a), Value::Fixed(b)) => {
                    let wide = match self {
                        Add => a.wide_add(b),
                        Sub => a.wide_sub(b),
                        Mul => a.wide_mul(b),
                        _ => unreachable!(),
                    };
                    Value::Fixed(wide)
                }
                _ => panic!("ill-typed arithmetic operands {l} / {r}"),
            },
            And | Or | Xor => match (l, r) {
                (Value::Bool(a), Value::Bool(b)) => Value::Bool(match self {
                    And => a & b,
                    Or => a | b,
                    Xor => a ^ b,
                    _ => unreachable!(),
                }),
                (Value::Bits { width, bits: a }, Value::Bits { bits: b, .. }) => {
                    let v = match self {
                        And => a & b,
                        Or => a | b,
                        Xor => a ^ b,
                        _ => unreachable!(),
                    };
                    Value::bits(width, v)
                }
                _ => panic!("ill-typed logic operands {l} / {r}"),
            },
            Eq | Ne | Lt | Le | Gt | Ge => {
                let ord = match (l, r) {
                    (Value::Bool(a), Value::Bool(b)) => a.cmp(&b),
                    (Value::Bits { bits: a, .. }, Value::Bits { bits: b, .. }) => a.cmp(&b),
                    (Value::Fixed(a), Value::Fixed(b)) => a.cmp(&b),
                    (Value::Float(a), Value::Float(b)) => {
                        a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
                    }
                    _ => panic!("ill-typed comparison operands {l} / {r}"),
                };
                Value::Bool(match self {
                    Eq => ord.is_eq(),
                    Ne => ord.is_ne(),
                    Lt => ord.is_lt(),
                    Le => ord.is_le(),
                    Gt => ord.is_gt(),
                    Ge => ord.is_ge(),
                    _ => unreachable!(),
                })
            }
        }
    }
}

/// Unary operators available on signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical/bitwise complement (`Bool`, `Bits`).
    Not,
    /// Arithmetic negation (`Fixed`, `Float`; two's complement on `Bits`).
    Neg,
    /// Constant left shift on `Bits` (zero fill, wrapping).
    Shl(u32),
    /// Constant (logical) right shift on `Bits`.
    Shr(u32),
    /// Bit-field extraction on `Bits`: `lo..lo+width`.
    Slice {
        /// Lowest extracted bit.
        lo: u32,
        /// Number of extracted bits.
        width: u32,
    },
    /// Quantise a `Fixed` or `Float` to a fixed-point format.
    ToFixed(Format, Rounding, Overflow),
    /// Reinterpret as a bit word of the given width: `Bool` → 0/1,
    /// `Bits` → resize (zero-extend/truncate), `Fixed` → raw mantissa
    /// bits (two's complement).
    ToBits(u32),
    /// `Bits`/`Bool`/`Fixed` to float.
    ToFloat,
    /// Non-zero test → `Bool`.
    ToBool,
}

impl UnOp {
    /// The result type of applying this operator, or a type error.
    pub fn result_type(self, a: SigType) -> Result<SigType, CoreError> {
        use UnOp::*;
        let err = || CoreError::TypeMismatch {
            op: format!("{self:?}"),
            left: a,
            right: a,
        };
        match self {
            Not => match a {
                SigType::Bool | SigType::Bits(_) => Ok(a),
                _ => Err(err()),
            },
            Neg => match a {
                SigType::Fixed(_) | SigType::Float | SigType::Bits(_) => Ok(match a {
                    SigType::Fixed(f) => {
                        // one extra integer bit for -min
                        let iwl = (f.iwl() + 1).min(63);
                        let wl = (f.wl() + 1).min(63);
                        SigType::Fixed(Format::new(wl, iwl).map_err(|_| err())?)
                    }
                    other => other,
                }),
                SigType::Bool => Err(err()),
            },
            Shl(_) | Shr(_) => match a {
                SigType::Bits(_) => Ok(a),
                _ => Err(err()),
            },
            Slice { lo, width } => match a {
                SigType::Bits(w) if lo + width <= w && width >= 1 => Ok(SigType::Bits(width)),
                _ => Err(err()),
            },
            ToFixed(fmt, _, _) => match a {
                SigType::Fixed(_) | SigType::Float => Ok(SigType::Fixed(fmt)),
                _ => Err(err()),
            },
            ToBits(w) => {
                if !(1..=64).contains(&w) {
                    return Err(err());
                }
                match a {
                    SigType::Bool | SigType::Bits(_) => Ok(SigType::Bits(w)),
                    SigType::Fixed(f) if f.wl() <= w => Ok(SigType::Bits(w)),
                    _ => Err(err()),
                }
            }
            ToFloat => Ok(SigType::Float),
            ToBool => Ok(SigType::Bool),
        }
    }

    /// Applies the operator to a well-typed value.
    ///
    /// # Panics
    ///
    /// Panics on operand types that [`UnOp::result_type`] would have
    /// rejected.
    pub fn apply(self, a: Value) -> Value {
        use UnOp::*;
        match self {
            Not => match a {
                Value::Bool(b) => Value::Bool(!b),
                Value::Bits { width, bits } => Value::bits(width, !bits),
                _ => panic!("ill-typed Not operand {a}"),
            },
            Neg => match a {
                Value::Fixed(v) => Value::Fixed(-v),
                Value::Float(v) => Value::Float(-v),
                Value::Bits { width, bits } => Value::bits(width, bits.wrapping_neg()),
                _ => panic!("ill-typed Neg operand {a}"),
            },
            Shl(n) => match a {
                Value::Bits { width, bits } => {
                    Value::bits(width, if n >= 64 { 0 } else { bits << n })
                }
                _ => panic!("ill-typed Shl operand {a}"),
            },
            Shr(n) => match a {
                Value::Bits { width, bits } => {
                    Value::bits(width, if n >= 64 { 0 } else { bits >> n })
                }
                _ => panic!("ill-typed Shr operand {a}"),
            },
            Slice { lo, width } => match a {
                Value::Bits { bits, .. } => Value::bits(width, bits >> lo),
                _ => panic!("ill-typed Slice operand {a}"),
            },
            ToFixed(fmt, rounding, overflow) => match a {
                Value::Fixed(v) => Value::Fixed(v.cast(fmt, rounding, overflow)),
                Value::Float(v) => Value::Fixed(Fix::from_f64(v, fmt, rounding, overflow)),
                _ => panic!("ill-typed ToFixed operand {a}"),
            },
            ToBits(w) => match a {
                Value::Bool(b) => Value::bits(w, b as u64),
                Value::Bits { bits, .. } => Value::bits(w, bits),
                Value::Fixed(v) => Value::bits(w, v.mantissa() as u64),
                _ => panic!("ill-typed ToBits operand {a}"),
            },
            ToFloat => Value::Float(a.to_f64()),
            ToBool => Value::Bool(match a {
                Value::Bool(b) => b,
                Value::Bits { bits, .. } => bits != 0,
                Value::Fixed(v) => !v.is_zero(),
                Value::Float(v) => v != 0.0,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b8(v: u64) -> Value {
        Value::bits(8, v)
    }

    #[test]
    fn bits_arithmetic_wraps() {
        assert_eq!(BinOp::Add.apply(b8(250), b8(10)), b8(4));
        assert_eq!(BinOp::Sub.apply(b8(3), b8(5)), b8(254));
        assert_eq!(BinOp::Mul.apply(b8(20), b8(20)), b8(144));
    }

    #[test]
    fn bool_logic() {
        assert_eq!(
            BinOp::And.apply(Value::Bool(true), Value::Bool(false)),
            Value::Bool(false)
        );
        assert_eq!(
            BinOp::Xor.apply(Value::Bool(true), Value::Bool(false)),
            Value::Bool(true)
        );
        assert_eq!(UnOp::Not.apply(Value::Bool(true)), Value::Bool(false));
    }

    #[test]
    fn comparisons() {
        assert_eq!(BinOp::Lt.apply(b8(3), b8(5)), Value::Bool(true));
        assert_eq!(BinOp::Ge.apply(b8(5), b8(5)), Value::Bool(true));
        assert_eq!(BinOp::Ne.apply(b8(5), b8(5)), Value::Bool(false));
    }

    #[test]
    fn slices_and_shifts() {
        let v = Value::bits(8, 0b1011_0100);
        assert_eq!(
            UnOp::Slice { lo: 2, width: 4 }.apply(v),
            Value::bits(4, 0b1101)
        );
        assert_eq!(UnOp::Shl(2).apply(v), Value::bits(8, 0b1101_0000));
        assert_eq!(UnOp::Shr(4).apply(v), Value::bits(8, 0b1011));
    }

    #[test]
    fn type_rules_reject_mixed_arith() {
        assert!(BinOp::Add
            .result_type(SigType::Bits(8), SigType::Bits(9))
            .is_err());
        assert!(BinOp::Add
            .result_type(SigType::Float, SigType::Bits(8))
            .is_err());
        assert!(BinOp::And
            .result_type(SigType::Float, SigType::Float)
            .is_err());
    }

    #[test]
    fn fixed_add_type_grows() {
        let a = Format::new(8, 4).unwrap();
        let t = BinOp::Add
            .result_type(SigType::Fixed(a), SigType::Fixed(a))
            .unwrap();
        assert_eq!(t, SigType::Fixed(Format::new(9, 5).unwrap()));
        let t = BinOp::Mul
            .result_type(SigType::Fixed(a), SigType::Fixed(a))
            .unwrap();
        assert_eq!(t, SigType::Fixed(Format::new(16, 8).unwrap()));
    }

    #[test]
    fn casts() {
        let f = Format::new(8, 4).unwrap();
        let v = UnOp::ToFixed(f, Rounding::Nearest, Overflow::Saturate).apply(Value::Float(1.3));
        assert_eq!(v.to_f64(), 1.3125);
        assert_eq!(UnOp::ToBits(4).apply(Value::Bool(true)), Value::bits(4, 1));
        assert_eq!(UnOp::ToBool.apply(Value::bits(8, 0)), Value::Bool(false));
        assert_eq!(UnOp::ToFloat.apply(Value::bits(8, 42)), Value::Float(42.0));
    }

    #[test]
    fn to_bits_of_fixed_exposes_mantissa() {
        let f = Format::new(8, 4).unwrap();
        let v = Value::Fixed(Fix::from_f64(
            -1.5,
            f,
            Rounding::Nearest,
            Overflow::Saturate,
        ));
        // -1.5 * 16 = -24 -> two's complement in 8 bits = 232
        assert_eq!(UnOp::ToBits(8).apply(v), Value::bits(8, 232));
    }

    #[test]
    fn zero_values() {
        assert_eq!(SigType::Bool.zero(), Value::Bool(false));
        assert_eq!(SigType::Bits(5).zero(), Value::bits(5, 0));
        assert_eq!(SigType::Float.zero(), Value::Float(0.0));
    }

    #[test]
    fn display() {
        assert_eq!(Value::bits(8, 42).to_string(), "42u8");
        assert_eq!(Value::Bool(true).to_string(), "1");
    }
}
