//! A small deterministic PRNG shared by the whole workspace.
//!
//! The environment must run with **no network access** (the tier-1 verify
//! builds offline), so anything that needs randomness — the DECT channel
//! substitute, fault-plan sampling, the seeded equivalence tests, the
//! benchmark stimuli — uses this in-tree xorshift64* generator instead of
//! an external `rand` dependency. Determinism is a feature, not a
//! compromise: every burst, fault campaign and randomized test is exactly
//! reproducible from its seed, which is what a regression flow wants.

/// A xorshift64* pseudo-random generator (Vigna 2016).
///
/// Deterministic, seedable, `Copy`-cheap. Not cryptographic — it exists
/// for reproducible stimuli and fault sampling.
///
/// ```
/// use ocapi::rng::XorShift64;
///
/// let mut a = XorShift64::new(42);
/// let mut b = XorShift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. A zero seed is remapped (the
    /// all-zero state is a fixed point of xorshift).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform value in `0..bound` (`bound` of 0 returns 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// A uniform `usize` index in `0..len` (for picking from a slice).
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// A uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits, the standard bits-to-double recipe.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// The raw generator state, for snapshotting a stream position.
    ///
    /// Feed the value back through [`XorShift64::from_state`] to resume
    /// the stream exactly where it left off.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a [`XorShift64::state`] word, resuming
    /// the stream at the saved position. A zero word (which no live
    /// generator can produce) is remapped exactly like a zero seed.
    pub fn from_state(state: u64) -> XorShift64 {
        XorShift64::new(state)
    }

    /// A decorrelated per-shard stream: generator number `index` of the
    /// family seeded by `base`.
    ///
    /// The sharded execution engine ([`crate::sim::par`]) gives every
    /// work item its own PRNG stream derived from `(base, index)` so
    /// that results never depend on which worker thread runs the item —
    /// the foundation of its bit-identical-for-any-thread-count
    /// contract. The derivation runs the seed material through two
    /// rounds of the splitmix64 finalizer, so neighbouring indices land
    /// on well-separated xorshift states.
    ///
    /// ```
    /// use ocapi::rng::XorShift64;
    ///
    /// let a = XorShift64::stream(42, 0).next_u64();
    /// let b = XorShift64::stream(42, 1).next_u64();
    /// assert_ne!(a, b);
    /// assert_eq!(a, XorShift64::stream(42, 0).next_u64());
    /// ```
    pub fn stream(base: u64, index: u64) -> XorShift64 {
        let mut z = base
            .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        for _ in 0..2 {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
        }
        XorShift64::new(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift64::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        // Same (base, index) → same stream; different index or base →
        // different stream, including the adversarial base = 0 cases.
        for base in [0u64, 1, 42, u64::MAX] {
            let mut seen = std::collections::HashSet::new();
            for index in 0..64 {
                let mut a = XorShift64::stream(base, index);
                let mut b = XorShift64::stream(base, index);
                let first = a.next_u64();
                assert_eq!(first, b.next_u64());
                assert!(seen.insert(first), "stream collision at index {index}");
            }
        }
    }

    #[test]
    fn f64_in_unit_interval_and_balanced() {
        let mut r = XorShift64::new(5);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
