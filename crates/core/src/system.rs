//! Systems: interconnected timed components and untimed blocks.
//!
//! A system is the unit of simulation (§2 of the paper): a set of
//! concurrent processes exchanging data signals over nets, plus primary
//! inputs driven by the testbench and primary outputs it observes.

use std::collections::HashMap;

use crate::blocks::UntimedBlock;
use crate::comp::{Component, PortDecl};
use crate::value::{SigType, Value};
use crate::CoreError;

/// Opaque reference to an instance within a system under construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstanceId {
    kind: InstKind,
    idx: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum InstKind {
    Timed,
    Untimed,
}

/// What drives a net.
#[derive(Debug, Clone, PartialEq)]
pub enum NetSource {
    /// A primary input (index into [`System::primary_inputs`]).
    PrimaryInput(usize),
    /// An output port of a timed component.
    TimedOut {
        /// Index into [`System::timed`].
        inst: usize,
        /// Output-port index within the component.
        port: usize,
    },
    /// An output port of an untimed block.
    UntimedOut {
        /// Index into [`System::untimed`].
        inst: usize,
        /// Output-port index within the block.
        port: usize,
    },
    /// A constant tie-off.
    Constant(Value),
}

/// A sink of a net: some instance's input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetSink {
    /// Input of a timed component.
    TimedIn {
        /// Index into [`System::timed`].
        inst: usize,
        /// Input-port index within the component.
        port: usize,
    },
    /// Input of an untimed block.
    UntimedIn {
        /// Index into [`System::untimed`].
        inst: usize,
        /// Input-port index within the block.
        port: usize,
    },
}

/// A point-to-multipoint connection carrying one signal.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Display name (`instance.port` or the primary-input name).
    pub name: String,
    /// The carried type.
    pub ty: SigType,
    /// The driver.
    pub source: NetSource,
    /// The connected inputs.
    pub sinks: Vec<NetSink>,
}

/// A timed component instantiated in a system.
#[derive(Debug)]
pub struct TimedInstance {
    /// Instance name.
    pub name: String,
    /// The component description.
    pub comp: Component,
}

/// An untimed block instantiated in a system.
pub struct UntimedInstance {
    /// The block (its [`UntimedBlock::name`] is the instance name).
    pub block: Box<dyn UntimedBlock>,
    /// Cached input port declarations.
    pub inputs: Vec<PortDecl>,
    /// Cached output port declarations.
    pub outputs: Vec<PortDecl>,
}

impl std::fmt::Debug for UntimedInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UntimedInstance({})", self.block.name())
    }
}

/// A declared primary input.
#[derive(Debug, Clone, PartialEq)]
pub struct PrimaryInput {
    /// Name used by [`crate::sim::Simulator::set_input`].
    pub name: String,
    /// Carried type.
    pub ty: SigType,
    /// The net this input drives.
    pub net: usize,
}

/// A declared primary output.
#[derive(Debug, Clone, PartialEq)]
pub struct PrimaryOutput {
    /// Name used by [`crate::sim::Simulator::output`].
    pub name: String,
    /// The observed net.
    pub net: usize,
}

/// A finished system, ready for simulation, code generation or synthesis.
#[derive(Debug)]
pub struct System {
    /// System name.
    pub name: String,
    /// Timed component instances.
    pub timed: Vec<TimedInstance>,
    /// Untimed block instances.
    pub untimed: Vec<UntimedInstance>,
    /// The interconnect.
    pub nets: Vec<Net>,
    /// Primary inputs.
    pub primary_inputs: Vec<PrimaryInput>,
    /// Primary outputs.
    pub primary_outputs: Vec<PrimaryOutput>,
    /// Per timed instance and input port: the driving net.
    pub(crate) timed_in_net: Vec<Vec<usize>>,
    /// Per untimed instance and input port: the driving net.
    pub(crate) untimed_in_net: Vec<Vec<usize>>,
}

impl System {
    /// Starts describing a new system.
    pub fn build(name: &str) -> SystemBuilder {
        SystemBuilder {
            name: name.to_owned(),
            timed: Vec::new(),
            untimed: Vec::new(),
            names: HashMap::new(),
            primary_inputs: Vec::new(),
            connections: Vec::new(),
            primary_outputs: Vec::new(),
            ties: Vec::new(),
        }
    }

    /// The net driving a timed instance's input port.
    pub fn timed_input_net(&self, inst: usize, port: usize) -> usize {
        self.timed_in_net[inst][port]
    }

    /// The net driving an untimed instance's input port.
    pub fn untimed_input_net(&self, inst: usize, port: usize) -> usize {
        self.untimed_in_net[inst][port]
    }

    /// Total number of gates-of-state: registers plus FSM state bits,
    /// summed over timed instances — a rough size indicator used in
    /// reports.
    pub fn register_count(&self) -> usize {
        self.timed
            .iter()
            .map(|t| {
                t.comp.regs.len()
                    + t.comp
                        .fsm
                        .as_ref()
                        .map(|f| f.states.len().next_power_of_two().trailing_zeros() as usize)
                        .unwrap_or(0)
            })
            .sum()
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SrcKey {
    Primary(usize),
    Timed(usize, usize),
    Untimed(usize, usize),
    Tie(usize),
}

/// Builder for a [`System`].
pub struct SystemBuilder {
    name: String,
    timed: Vec<TimedInstance>,
    untimed: Vec<UntimedInstance>,
    names: HashMap<String, InstanceId>,
    primary_inputs: Vec<(String, SigType)>,
    connections: Vec<(SrcKey, NetSink)>,
    primary_outputs: Vec<(String, SrcKey)>,
    ties: Vec<Value>,
}

impl SystemBuilder {
    /// Adds a timed component under an instance name.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateName`] on an instance-name clash.
    pub fn add_component(&mut self, name: &str, comp: Component) -> Result<InstanceId, CoreError> {
        let id = InstanceId {
            kind: InstKind::Timed,
            idx: self.timed.len() as u32,
        };
        self.claim_name(name, id)?;
        self.timed.push(TimedInstance {
            name: name.to_owned(),
            comp,
        });
        Ok(id)
    }

    /// Adds an untimed block (named by [`UntimedBlock::name`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateName`] on an instance-name clash.
    pub fn add_block(&mut self, block: Box<dyn UntimedBlock>) -> Result<InstanceId, CoreError> {
        let id = InstanceId {
            kind: InstKind::Untimed,
            idx: self.untimed.len() as u32,
        };
        self.claim_name(block.name(), id)?;
        let inputs = block.input_ports();
        let outputs = block.output_ports();
        self.untimed.push(UntimedInstance {
            block,
            inputs,
            outputs,
        });
        Ok(id)
    }

    /// Declares a primary input.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateName`] on a name clash.
    pub fn input(&mut self, name: &str, ty: SigType) -> Result<(), CoreError> {
        if self.primary_inputs.iter().any(|(n, _)| n == name) {
            return Err(CoreError::DuplicateName {
                kind: "primary input",
                name: name.to_owned(),
            });
        }
        self.primary_inputs.push((name.to_owned(), ty));
        Ok(())
    }

    /// Connects a primary input to an instance input port.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] if the input or port does not
    /// exist, [`CoreError::TypeMismatch`] on a type conflict.
    pub fn connect_input(
        &mut self,
        input: &str,
        to: InstanceId,
        port: &str,
    ) -> Result<(), CoreError> {
        let pi = self
            .primary_inputs
            .iter()
            .position(|(n, _)| n == input)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "primary input",
                name: input.to_owned(),
            })?;
        let ty = self.primary_inputs[pi].1;
        let sink = self.resolve_sink(to, port, ty)?;
        self.connections.push((SrcKey::Primary(pi), sink));
        Ok(())
    }

    /// Connects an instance output port to another instance's input port.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] if a port does not exist,
    /// [`CoreError::TypeMismatch`] on a type conflict.
    pub fn connect(
        &mut self,
        from: InstanceId,
        from_port: &str,
        to: InstanceId,
        to_port: &str,
    ) -> Result<(), CoreError> {
        let (key, ty) = self.resolve_source(from, from_port)?;
        let sink = self.resolve_sink(to, to_port, ty)?;
        self.connections.push((key, sink));
        Ok(())
    }

    /// Ties an instance input to a constant value.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] if the port does not exist,
    /// [`CoreError::TypeMismatch`] on a type conflict.
    pub fn tie(&mut self, to: InstanceId, port: &str, value: Value) -> Result<(), CoreError> {
        let sink = self.resolve_sink(to, port, value.sig_type())?;
        self.ties.push(value);
        self.connections
            .push((SrcKey::Tie(self.ties.len() - 1), sink));
        Ok(())
    }

    /// Declares a primary output observing an instance output port.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateName`] on a name clash and
    /// [`CoreError::UnknownName`] if the port does not exist.
    pub fn output(&mut self, name: &str, from: InstanceId, port: &str) -> Result<(), CoreError> {
        if self.primary_outputs.iter().any(|(n, _)| n == name) {
            return Err(CoreError::DuplicateName {
                kind: "primary output",
                name: name.to_owned(),
            });
        }
        let (key, _) = self.resolve_source(from, port)?;
        self.primary_outputs.push((name.to_owned(), key));
        Ok(())
    }

    /// Finishes the system: builds nets, checks that every instance input
    /// is driven exactly once.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnconnectedInput`] for undriven inputs and
    /// [`CoreError::ConnectionConflict`] for doubly-driven ones.
    pub fn finish(self) -> Result<System, CoreError> {
        let mut nets: Vec<Net> = Vec::new();
        let mut net_of: HashMap<SrcKey, usize> = HashMap::new();

        fn net_for(
            key: &SrcKey,
            nets: &mut Vec<Net>,
            net_of: &mut HashMap<SrcKey, usize>,
            builder: &SystemBuilder,
        ) -> usize {
            if let Some(&i) = net_of.get(key) {
                return i;
            }
            let (name, ty, source) = match key {
                SrcKey::Primary(i) => {
                    let (n, t) = &builder.primary_inputs[*i];
                    (n.clone(), *t, NetSource::PrimaryInput(*i))
                }
                SrcKey::Timed(inst, port) => {
                    let t = &builder.timed[*inst];
                    let p = &t.comp.outputs[*port];
                    (
                        format!("{}.{}", t.name, p.name),
                        p.ty,
                        NetSource::TimedOut {
                            inst: *inst,
                            port: *port,
                        },
                    )
                }
                SrcKey::Untimed(inst, port) => {
                    let u = &builder.untimed[*inst];
                    let p = &u.outputs[*port];
                    (
                        format!("{}.{}", u.block.name(), p.name),
                        p.ty,
                        NetSource::UntimedOut {
                            inst: *inst,
                            port: *port,
                        },
                    )
                }
                SrcKey::Tie(i) => {
                    let v = builder.ties[*i];
                    (format!("tie#{i}"), v.sig_type(), NetSource::Constant(v))
                }
            };
            nets.push(Net {
                name,
                ty,
                source,
                sinks: Vec::new(),
            });
            net_of.insert(key.clone(), nets.len() - 1);
            nets.len() - 1
        }

        let mut timed_in_net: Vec<Vec<Option<usize>>> = self
            .timed
            .iter()
            .map(|t| vec![None; t.comp.inputs.len()])
            .collect();
        let mut untimed_in_net: Vec<Vec<Option<usize>>> = self
            .untimed
            .iter()
            .map(|u| vec![None; u.inputs.len()])
            .collect();

        for (key, sink) in &self.connections {
            let net = net_for(key, &mut nets, &mut net_of, &self);
            let slot = match sink {
                NetSink::TimedIn { inst, port } => &mut timed_in_net[*inst][*port],
                NetSink::UntimedIn { inst, port } => &mut untimed_in_net[*inst][*port],
            };
            if slot.is_some() {
                return Err(CoreError::ConnectionConflict {
                    endpoint: self.sink_name(sink),
                });
            }
            *slot = Some(net);
            nets[net].sinks.push(*sink);
        }

        // Every input must be driven; the conversion to plain net
        // indices doubles as the check.
        let timed_in_net: Vec<Vec<usize>> = timed_in_net
            .into_iter()
            .enumerate()
            .map(|(inst, ports)| {
                ports
                    .into_iter()
                    .enumerate()
                    .map(|(port, net)| {
                        net.ok_or_else(|| CoreError::UnconnectedInput {
                            instance: self.timed[inst].name.clone(),
                            port: self.timed[inst].comp.inputs[port].name.clone(),
                        })
                    })
                    .collect::<Result<_, _>>()
            })
            .collect::<Result<_, _>>()?;
        let untimed_in_net: Vec<Vec<usize>> = untimed_in_net
            .into_iter()
            .enumerate()
            .map(|(inst, ports)| {
                ports
                    .into_iter()
                    .enumerate()
                    .map(|(port, net)| {
                        net.ok_or_else(|| CoreError::UnconnectedInput {
                            instance: self.untimed[inst].block.name().to_owned(),
                            port: self.untimed[inst].inputs[port].name.clone(),
                        })
                    })
                    .collect::<Result<_, _>>()
            })
            .collect::<Result<_, _>>()?;

        // Primary inputs always get a net, even unconnected ones (so the
        // testbench can still set them and traces can record them).
        for i in 0..self.primary_inputs.len() {
            net_for(&SrcKey::Primary(i), &mut nets, &mut net_of, &self);
        }

        let primary_inputs = self
            .primary_inputs
            .iter()
            .enumerate()
            .map(|(i, (name, ty))| PrimaryInput {
                name: name.clone(),
                ty: *ty,
                net: net_of[&SrcKey::Primary(i)],
            })
            .collect();

        let primary_outputs = self
            .primary_outputs
            .iter()
            .map(|(name, key)| {
                let net = net_for(key, &mut nets, &mut net_of, &self);
                PrimaryOutput {
                    name: name.clone(),
                    net,
                }
            })
            .collect();

        Ok(System {
            name: self.name,
            timed: self.timed,
            untimed: self.untimed,
            nets,
            primary_inputs,
            primary_outputs,
            timed_in_net,
            untimed_in_net,
        })
    }

    fn claim_name(&mut self, name: &str, id: InstanceId) -> Result<(), CoreError> {
        if self.names.contains_key(name) {
            return Err(CoreError::DuplicateName {
                kind: "instance",
                name: name.to_owned(),
            });
        }
        self.names.insert(name.to_owned(), id);
        Ok(())
    }

    fn resolve_source(&self, from: InstanceId, port: &str) -> Result<(SrcKey, SigType), CoreError> {
        match from.kind {
            InstKind::Timed => {
                let inst = from.idx as usize;
                let comp = &self.timed[inst].comp;
                let p = comp
                    .outputs
                    .iter()
                    .position(|p| p.name == port)
                    .ok_or_else(|| CoreError::UnknownName {
                        kind: "output port",
                        name: format!("{}.{port}", self.timed[inst].name),
                    })?;
                Ok((SrcKey::Timed(inst, p), comp.outputs[p].ty))
            }
            InstKind::Untimed => {
                let inst = from.idx as usize;
                let u = &self.untimed[inst];
                let p = u
                    .outputs
                    .iter()
                    .position(|p| p.name == port)
                    .ok_or_else(|| CoreError::UnknownName {
                        kind: "output port",
                        name: format!("{}.{port}", u.block.name()),
                    })?;
                Ok((SrcKey::Untimed(inst, p), u.outputs[p].ty))
            }
        }
    }

    fn resolve_sink(&self, to: InstanceId, port: &str, ty: SigType) -> Result<NetSink, CoreError> {
        let (sink, pty, name) = match to.kind {
            InstKind::Timed => {
                let inst = to.idx as usize;
                let comp = &self.timed[inst].comp;
                let p = comp
                    .inputs
                    .iter()
                    .position(|p| p.name == port)
                    .ok_or_else(|| CoreError::UnknownName {
                        kind: "input port",
                        name: format!("{}.{port}", self.timed[inst].name),
                    })?;
                (
                    NetSink::TimedIn { inst, port: p },
                    comp.inputs[p].ty,
                    format!("{}.{port}", self.timed[inst].name),
                )
            }
            InstKind::Untimed => {
                let inst = to.idx as usize;
                let u = &self.untimed[inst];
                let p = u
                    .inputs
                    .iter()
                    .position(|p| p.name == port)
                    .ok_or_else(|| CoreError::UnknownName {
                        kind: "input port",
                        name: format!("{}.{port}", u.block.name()),
                    })?;
                (
                    NetSink::UntimedIn { inst, port: p },
                    u.inputs[p].ty,
                    format!("{}.{port}", u.block.name()),
                )
            }
        };
        if pty != ty {
            return Err(CoreError::TypeMismatch {
                op: format!("connect {name}"),
                left: pty,
                right: ty,
            });
        }
        Ok(sink)
    }

    fn sink_name(&self, sink: &NetSink) -> String {
        match sink {
            NetSink::TimedIn { inst, port } => format!(
                "{}.{}",
                self.timed[*inst].name, self.timed[*inst].comp.inputs[*port].name
            ),
            NetSink::UntimedIn { inst, port } => format!(
                "{}.{}",
                self.untimed[*inst].block.name(),
                self.untimed[*inst].inputs[*port].name
            ),
        }
    }
}
