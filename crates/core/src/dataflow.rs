//! Data-flow simulation of untimed systems.
//!
//! At the system level, processes "execute using data-flow simulation
//! semantics … process execution can start as soon as the required input
//! values are available" (§2). When a system contains only untimed
//! blocks, this *data-flow scheduler* is used instead of the cycle
//! scheduler: it repeatedly checks firing rules and fires actors whose
//! input tokens are present.
//!
//! The module also implements the static analysis of synchronous data
//! flow (the paper cites Lee & Messerschmitt \[7\]): the balance equations
//! give a repetition vector, from which a periodic admissible sequential
//! schedule (PASS) is constructed, or the graph is reported inconsistent
//! or deadlocked.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::value::Value;
use crate::CoreError;

/// A data-flow actor: fires when enough tokens are on every input,
/// consuming and producing fixed token rates (synchronous data flow).
pub trait Actor {
    /// Actor name (unique within a graph).
    fn name(&self) -> &str;

    /// Number of input ports.
    fn num_inputs(&self) -> usize;

    /// Number of output ports.
    fn num_outputs(&self) -> usize;

    /// Tokens consumed per firing on input `port` (default 1).
    fn consumption(&self, _port: usize) -> usize {
        1
    }

    /// Tokens produced per firing on output `port` (default 1).
    fn production(&self, _port: usize) -> usize {
        1
    }

    /// One firing: `inputs[p]` holds exactly `consumption(p)` tokens;
    /// push exactly `production(p)` tokens onto `outputs[p]`.
    fn fire(&mut self, inputs: &[Vec<Value>], outputs: &mut [Vec<Value>]);
}

/// A finite source actor producing one token per firing from a vector.
/// Its firing rule is exhausted when the data runs out.
#[derive(Debug, Clone)]
pub struct Source {
    name: String,
    data: VecDeque<Value>,
}

impl Source {
    /// Creates a source emitting `data` one token at a time.
    pub fn new(name: &str, data: impl IntoIterator<Item = Value>) -> Source {
        Source {
            name: name.to_owned(),
            data: data.into_iter().collect(),
        }
    }

    /// Tokens not yet emitted.
    pub fn remaining(&self) -> usize {
        self.data.len()
    }
}

impl Actor for Source {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_inputs(&self) -> usize {
        0
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn fire(&mut self, _inputs: &[Vec<Value>], outputs: &mut [Vec<Value>]) {
        if let Some(v) = self.data.pop_front() {
            outputs[0].push(v);
        }
    }
}

/// A sink actor collecting every token it receives. The collected
/// tokens stay readable through a [`SinkHandle`] even after the sink has
/// been moved into a [`DataflowGraph`].
#[derive(Debug, Clone, Default)]
pub struct Sink {
    name: String,
    collected: Rc<RefCell<Vec<Value>>>,
}

/// Shared read access to a [`Sink`]'s collected tokens.
#[derive(Debug, Clone, Default)]
pub struct SinkHandle(Rc<RefCell<Vec<Value>>>);

impl SinkHandle {
    /// A snapshot of the tokens received so far.
    pub fn tokens(&self) -> Vec<Value> {
        self.0.borrow().clone()
    }

    /// Number of tokens received so far.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// True if nothing has been received.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink {
    /// Creates an empty sink.
    pub fn new(name: &str) -> Sink {
        Sink {
            name: name.to_owned(),
            collected: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// A handle for reading the collected tokens after the sink has been
    /// added to a graph.
    pub fn handle(&self) -> SinkHandle {
        SinkHandle(Rc::clone(&self.collected))
    }

    /// A snapshot of the tokens received so far.
    pub fn collected(&self) -> Vec<Value> {
        self.collected.borrow().clone()
    }
}

impl Actor for Sink {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        0
    }
    fn fire(&mut self, inputs: &[Vec<Value>], _outputs: &mut [Vec<Value>]) {
        self.collected
            .borrow_mut()
            .extend(inputs[0].iter().copied());
    }
}

/// A data-flow actor defined by a closure (rate-1 on all ports).
pub struct FnActor<F> {
    name: String,
    n_in: usize,
    n_out: usize,
    behaviour: F,
}

impl<F> FnActor<F>
where
    F: FnMut(&[Value], &mut Vec<Value>),
{
    /// Wraps `behaviour`: it receives one token per input and must push
    /// one token per output (in port order) onto the output vector.
    pub fn new(name: &str, n_in: usize, n_out: usize, behaviour: F) -> Self {
        FnActor {
            name: name.to_owned(),
            n_in,
            n_out,
            behaviour,
        }
    }
}

impl<F> Actor for FnActor<F>
where
    F: FnMut(&[Value], &mut Vec<Value>),
{
    fn name(&self) -> &str {
        &self.name
    }
    fn num_inputs(&self) -> usize {
        self.n_in
    }
    fn num_outputs(&self) -> usize {
        self.n_out
    }
    fn fire(&mut self, inputs: &[Vec<Value>], outputs: &mut [Vec<Value>]) {
        let flat: Vec<Value> = inputs.iter().map(|v| v[0]).collect();
        let mut out = Vec::with_capacity(self.n_out);
        (self.behaviour)(&flat, &mut out);
        assert_eq!(
            out.len(),
            self.n_out,
            "FnActor must produce one token per output"
        );
        for (o, v) in outputs.iter_mut().zip(out) {
            o.push(v);
        }
    }
}

/// Reference to an actor in a [`DataflowGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActorId(usize);

#[derive(Debug)]
struct Edge {
    from: (usize, usize),
    to: (usize, usize),
    tokens: VecDeque<Value>,
}

/// A graph of data-flow actors connected by FIFO channels.
pub struct DataflowGraph {
    actors: Vec<Box<dyn Actor>>,
    edges: Vec<Edge>,
    fires: Vec<(usize, u64)>,
}

impl std::fmt::Debug for DataflowGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DataflowGraph({} actors, {} edges)",
            self.actors.len(),
            self.edges.len()
        )
    }
}

impl Default for DataflowGraph {
    fn default() -> Self {
        DataflowGraph::new()
    }
}

impl DataflowGraph {
    /// Creates an empty graph.
    pub fn new() -> DataflowGraph {
        DataflowGraph {
            actors: Vec::new(),
            edges: Vec::new(),
            fires: Vec::new(),
        }
    }

    /// Adds an actor.
    pub fn add(&mut self, actor: Box<dyn Actor>) -> ActorId {
        self.actors.push(actor);
        ActorId(self.actors.len() - 1)
    }

    /// Connects `from`'s output port to `to`'s input port with an
    /// unbounded FIFO, optionally pre-loaded with initial tokens (the
    /// classical way to break data-flow cycles).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] if a port index is out of range.
    pub fn connect(
        &mut self,
        from: ActorId,
        from_port: usize,
        to: ActorId,
        to_port: usize,
        initial_tokens: &[Value],
    ) -> Result<(), CoreError> {
        if from_port >= self.actors[from.0].num_outputs() {
            return Err(CoreError::UnknownName {
                kind: "output port",
                name: format!("{}[{from_port}]", self.actors[from.0].name()),
            });
        }
        if to_port >= self.actors[to.0].num_inputs() {
            return Err(CoreError::UnknownName {
                kind: "input port",
                name: format!("{}[{to_port}]", self.actors[to.0].name()),
            });
        }
        self.edges.push(Edge {
            from: (from.0, from_port),
            to: (to.0, to_port),
            tokens: initial_tokens.iter().copied().collect(),
        });
        Ok(())
    }

    /// Direct access to an actor (e.g. to read back a [`Sink`]).
    pub fn actor(&self, id: ActorId) -> &dyn Actor {
        self.actors[id.0].as_ref()
    }

    /// Number of tokens currently queued on all edges.
    pub fn queued_tokens(&self) -> usize {
        self.edges.iter().map(|e| e.tokens.len()).sum()
    }

    /// The firing log: (actor, count) pairs in completion order batches.
    pub fn firings(&self) -> &[(usize, u64)] {
        &self.fires
    }

    fn fireable(&self, a: usize) -> bool {
        let actor = &self.actors[a];
        if actor.num_inputs() == 0 {
            // Source actors: fireable while they still have data. We
            // cannot see inside a generic actor, so sources signal
            // exhaustion by producing nothing; treat zero-input actors as
            // fireable only a bounded number of times via run()'s budget.
            return true;
        }
        for p in 0..actor.num_inputs() {
            let need = actor.consumption(p);
            let have: usize = self
                .edges
                .iter()
                .filter(|e| e.to == (a, p))
                .map(|e| e.tokens.len())
                .sum();
            let connected = self.edges.iter().any(|e| e.to == (a, p));
            if !connected || have < need {
                return false;
            }
        }
        true
    }

    fn fire_actor(&mut self, a: usize) -> bool {
        let n_in = self.actors[a].num_inputs();
        let n_out = self.actors[a].num_outputs();
        let mut inputs: Vec<Vec<Value>> = vec![Vec::new(); n_in];
        #[allow(clippy::needless_range_loop)] // `p` also indexes the edges
        for p in 0..n_in {
            let need = self.actors[a].consumption(p);
            let mut taken = 0;
            for e in self.edges.iter_mut().filter(|e| e.to == (a, p)) {
                while taken < need {
                    match e.tokens.pop_front() {
                        Some(v) => {
                            inputs[p].push(v);
                            taken += 1;
                        }
                        None => break,
                    }
                }
            }
            debug_assert_eq!(taken, need);
        }
        let mut outputs: Vec<Vec<Value>> = vec![Vec::new(); n_out];
        self.actors[a].fire(&inputs, &mut outputs);
        let mut produced_any = n_out == 0 && n_in > 0;
        for (p, toks) in outputs.into_iter().enumerate() {
            if !toks.is_empty() {
                produced_any = true;
            }
            for e in self.edges.iter_mut().filter(|e| e.from == (a, p)) {
                e.tokens.extend(toks.iter().copied());
            }
        }
        produced_any || n_in > 0
    }

    /// Runs the dynamic data-flow scheduler: repeatedly fires fireable
    /// actors until nothing can fire or `max_firings` is reached.
    /// Returns the number of firings performed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DataflowDeadlock`] if tokens remain queued but
    /// no actor can consume them.
    pub fn run(&mut self, max_firings: u64) -> Result<u64, CoreError> {
        let mut count = 0u64;
        loop {
            let mut progressed = false;
            for a in 0..self.actors.len() {
                while count < max_firings && self.fireable(a) {
                    let produced = self.fire_actor(a);
                    if !produced {
                        // An exhausted source: stop trying it.
                        break;
                    }
                    count += 1;
                    self.fires.push((a, count));
                    progressed = true;
                    if self.actors[a].num_inputs() == 0 {
                        // Round-robin sources one firing at a time so they
                        // interleave fairly.
                        break;
                    }
                }
                if count >= max_firings {
                    return Ok(count);
                }
            }
            if !progressed {
                break;
            }
        }
        if self.queued_tokens() > 0 {
            let mut blocked: Vec<String> = self
                .actors
                .iter()
                .enumerate()
                .filter(|(a, actor)| {
                    actor.num_inputs() > 0
                        && self
                            .edges
                            .iter()
                            .any(|e| e.to.0 == *a && !e.tokens.is_empty())
                })
                .map(|(_, actor)| actor.name().to_owned())
                .collect();
            if !blocked.is_empty() {
                blocked.sort();
                return Err(CoreError::DataflowDeadlock { blocked });
            }
        }
        Ok(count)
    }

    /// Solves the SDF balance equations and returns the repetition vector
    /// (the minimal positive number of firings of each actor per periodic
    /// schedule iteration).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InconsistentRates`] if the equations only
    /// admit the zero solution.
    pub fn repetition_vector(&self) -> Result<Vec<u64>, CoreError> {
        // Solve q[from] * prod = q[to] * cons over rationals by
        // propagation, then scale to the least integers.
        let n = self.actors.len();
        let mut num = vec![0u64; n]; // rational q = num/den
        let mut den = vec![1u64; n];
        let mut visited = vec![false; n];
        for start in 0..n {
            if visited[start] {
                continue;
            }
            num[start] = 1;
            visited[start] = true;
            let mut stack = vec![start];
            while let Some(a) = stack.pop() {
                for e in &self.edges {
                    let (fa, fp) = e.from;
                    let (ta, tp) = e.to;
                    if fa != a && ta != a {
                        continue;
                    }
                    let prod = self.actors[fa].production(fp) as u64;
                    let cons = self.actors[ta].consumption(tp) as u64;
                    if prod == 0 || cons == 0 {
                        continue;
                    }
                    let (known, other, kn, kd, mul, div) = if fa == a && !visited[ta] {
                        (a, ta, num[a], den[a], prod, cons)
                    } else if ta == a && !visited[fa] {
                        (a, fa, num[a], den[a], cons, prod)
                    } else {
                        // Both visited: consistency check.
                        let (q_f, q_t) = ((num[fa], den[fa]), (num[ta], den[ta]));
                        // q_f * prod == q_t * cons ?
                        if q_f.0 as u128 * prod as u128 * q_t.1 as u128
                            != q_t.0 as u128 * cons as u128 * q_f.1 as u128
                        {
                            return Err(CoreError::InconsistentRates {
                                edge: (
                                    self.actors[fa].name().to_owned(),
                                    self.actors[ta].name().to_owned(),
                                ),
                            });
                        }
                        continue;
                    };
                    let _ = known;
                    // q_other = q_known * mul / div
                    let g1 = gcd(mul, div);
                    let (mul, div) = (mul / g1, div / g1);
                    let nn = kn * mul;
                    let nd = kd * div;
                    let g = gcd(nn, nd);
                    num[other] = nn / g.max(1);
                    den[other] = nd / g.max(1);
                    visited[other] = true;
                    stack.push(other);
                }
            }
        }
        // Scale to integers: multiply by lcm of denominators.
        let mut l = 1u64;
        for d in &den {
            l = lcm(l, *d);
        }
        let mut q: Vec<u64> = num.iter().zip(&den).map(|(n2, d)| n2 * (l / d)).collect();
        // Normalise by gcd.
        let mut g = 0u64;
        for v in &q {
            g = gcd(g, *v);
        }
        if g > 1 {
            for v in &mut q {
                *v /= g;
            }
        }
        if q.contains(&0) {
            // Isolated actors fire once.
            for v in &mut q {
                if *v == 0 {
                    *v = 1;
                }
            }
        }
        Ok(q)
    }

    /// Constructs a periodic admissible sequential schedule (PASS) by
    /// symbolic execution of one period, following Lee & Messerschmitt's
    /// class-S algorithm. Returns the actor firing order of one period.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InconsistentRates`] for unbalanced graphs and
    /// [`CoreError::DataflowDeadlock`] when a period cannot complete
    /// (missing initial tokens on a cycle).
    pub fn static_schedule(&self) -> Result<Vec<ActorId>, CoreError> {
        let q = self.repetition_vector()?;
        let mut remaining: Vec<u64> = q.clone();
        let mut tokens: Vec<usize> = self.edges.iter().map(|e| e.tokens.len()).collect();
        let mut order = Vec::new();
        let total: u64 = q.iter().sum();
        while (order.len() as u64) < total {
            let mut progressed = false;
            #[allow(clippy::needless_range_loop)] // `a` also indexes edges and tokens
            for a in 0..self.actors.len() {
                if remaining[a] == 0 {
                    continue;
                }
                let can = (0..self.actors[a].num_inputs()).all(|p| {
                    let need = self.actors[a].consumption(p);
                    self.edges
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.to == (a, p))
                        .map(|(i, _)| tokens[i])
                        .sum::<usize>()
                        >= need
                        && self.edges.iter().any(|e| e.to == (a, p))
                });
                // Actors with unconnected inputs can never fire in a
                // static schedule; sources (0 inputs) always can.
                let can = can || self.actors[a].num_inputs() == 0;
                if can {
                    for (i, e) in self.edges.iter().enumerate() {
                        if e.to.0 == a {
                            let need = self.actors[a].consumption(e.to.1);
                            tokens[i] = tokens[i].saturating_sub(need);
                        }
                        if e.from.0 == a {
                            tokens[i] += self.actors[a].production(e.from.1);
                        }
                    }
                    remaining[a] -= 1;
                    order.push(ActorId(a));
                    progressed = true;
                }
            }
            if !progressed {
                let mut blocked: Vec<String> = self
                    .actors
                    .iter()
                    .enumerate()
                    .filter(|(a, _)| remaining[*a] > 0)
                    .map(|(_, actor)| actor.name().to_owned())
                    .collect();
                blocked.sort();
                return Err(CoreError::DataflowDeadlock { blocked });
            }
        }
        Ok(order)
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        a.max(b)
    } else {
        a / gcd(a, b) * b
    }
}
