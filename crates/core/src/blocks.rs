//! Untimed (high-level) processes and a small library of standard blocks.
//!
//! The paper mixes "high level descriptions of undesigned components with
//! detailed clock-cycle true, bit-true descriptions" (§1). An untimed
//! block is plain Rust behaviour with a data-flow *firing rule*: inside the
//! cycle scheduler it fires at most once per clock cycle, as soon as all
//! its input tokens are available — which is how the DECT design models
//! the RAM cells attached to the datapaths (§4, Figure 6).

use std::fmt;

use crate::comp::PortDecl;
use crate::value::{SigType, Value};

/// Structural description of a memory block, letting code generators
/// emit a behavioural HDL model instead of a black box (the "behavioural
/// model supplied separately" of the original flow, now generated).
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySpec {
    /// True for read-only memories.
    pub is_rom: bool,
    /// Address width in bits.
    pub addr_bits: u32,
    /// Word type.
    pub word: SigType,
    /// Initial/constant contents (length `2^addr_bits`).
    pub contents: Vec<Value>,
}

/// A high-level (untimed) process usable inside a clocked system.
///
/// The cycle scheduler calls [`UntimedBlock::ready`] once all input nets
/// carry this cycle's tokens; if it returns `true`, [`UntimedBlock::fire`]
/// runs and must write every output. If it returns `false`, the outputs
/// hold their previous values.
pub trait UntimedBlock {
    /// Instance name (unique within the system).
    fn name(&self) -> &str;

    /// Declared input ports.
    fn input_ports(&self) -> Vec<PortDecl>;

    /// Declared output ports.
    fn output_ports(&self) -> Vec<PortDecl>;

    /// The firing rule. The default fires whenever all inputs are
    /// available (which is when this is called).
    fn ready(&self, _inputs: &[Value]) -> bool {
        true
    }

    /// One firing: consume `inputs`, produce `outputs`. `outputs` is
    /// pre-filled with the previous (held) values.
    fn fire(&mut self, inputs: &[Value], outputs: &mut [Value]);

    /// Returns the block to its power-up state.
    fn reset(&mut self) {}

    /// If this block is a memory, its structural description — code
    /// generators use it to emit a behavioural HDL model instead of a
    /// black box. Defaults to `None` (opaque behaviour).
    fn memory_spec(&self) -> Option<MemorySpec> {
        None
    }

    /// The block's internal state as raw words (see [`Value::to_raw`]),
    /// for simulator snapshots. Stateless blocks (the default) return
    /// an empty vector. A stateful block must override this *and*
    /// [`UntimedBlock::restore_state`] as an exact pair.
    fn snapshot_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores state captured by [`UntimedBlock::snapshot_state`].
    /// Returns `false` when the words do not fit this block (wrong
    /// length), in which case the block is left unchanged. The default
    /// (stateless) implementation accepts only an empty slice.
    fn restore_state(&mut self, words: &[u64]) -> bool {
        words.is_empty()
    }
}

impl fmt::Debug for dyn UntimedBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UntimedBlock({})", self.name())
    }
}

/// A single-port RAM with combinational (asynchronous) read — the model
/// the DECT transceiver uses for its 7 RAM cells: the datapath computes an
/// address from registered signals, the RAM responds within the same
/// cycle.
///
/// Ports: `addr: Bits(a)`, `we: Bool`, `wdata: T` → `rdata: T`. A write
/// is visible from the *next* firing (write happens after the read).
#[derive(Debug, Clone)]
pub struct Ram {
    name: String,
    addr_bits: u32,
    ty: SigType,
    words: Vec<Value>,
}

impl Ram {
    /// Creates a RAM with `2^addr_bits` words of type `ty`, zero-filled.
    ///
    /// # Panics
    ///
    /// Panics if `addr_bits` is 0 or greater than 24 (16M words).
    pub fn new(name: &str, addr_bits: u32, ty: SigType) -> Ram {
        assert!((1..=24).contains(&addr_bits), "addr_bits must be 1..=24");
        Ram {
            name: name.to_owned(),
            addr_bits,
            ty,
            words: vec![ty.zero(); 1 << addr_bits],
        }
    }

    /// Pre-loads a word (for test setup).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or `value` has the wrong type.
    pub fn preload(&mut self, addr: usize, value: Value) {
        assert_eq!(value.sig_type(), self.ty, "preload type mismatch");
        self.words[addr] = value;
    }

    /// Reads a word directly (for test inspection).
    pub fn word(&self, addr: usize) -> Value {
        self.words[addr]
    }
}

impl UntimedBlock for Ram {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_ports(&self) -> Vec<PortDecl> {
        vec![
            PortDecl {
                name: "addr".to_owned(),
                ty: SigType::Bits(self.addr_bits),
            },
            PortDecl {
                name: "we".to_owned(),
                ty: SigType::Bool,
            },
            PortDecl {
                name: "wdata".to_owned(),
                ty: self.ty,
            },
        ]
    }

    fn output_ports(&self) -> Vec<PortDecl> {
        vec![PortDecl {
            name: "rdata".to_owned(),
            ty: self.ty,
        }]
    }

    fn fire(&mut self, inputs: &[Value], outputs: &mut [Value]) {
        // Port types are checked at system build; a mistyped value can
        // only mean corrupted state, so read as an idle access rather
        // than panicking mid-simulation.
        let addr = inputs[0].as_bits().unwrap_or(0) as usize;
        let we = inputs[1].as_bool().unwrap_or(false);
        outputs[0] = self.words.get(addr).copied().unwrap_or(self.ty.zero());
        if we {
            if let Some(w) = self.words.get_mut(addr) {
                *w = inputs[2];
            }
        }
    }

    fn reset(&mut self) {
        for w in &mut self.words {
            *w = self.ty.zero();
        }
    }

    fn memory_spec(&self) -> Option<MemorySpec> {
        Some(MemorySpec {
            is_rom: false,
            addr_bits: self.addr_bits,
            word: self.ty,
            contents: self.words.clone(),
        })
    }

    fn snapshot_state(&self) -> Vec<u64> {
        self.words.iter().map(Value::to_raw).collect()
    }

    fn restore_state(&mut self, words: &[u64]) -> bool {
        if words.len() != self.words.len() {
            return false;
        }
        for (slot, raw) in self.words.iter_mut().zip(words) {
            *slot = Value::from_raw(self.ty, *raw);
        }
        true
    }
}

/// A ROM with combinational read: `addr: Bits(a)` → `data: T`.
///
/// The DECT instruction ROM (IROM) is modelled this way.
#[derive(Debug, Clone)]
pub struct Rom {
    name: String,
    addr_bits: u32,
    ty: SigType,
    words: Vec<Value>,
}

impl Rom {
    /// Creates a ROM from its contents; the depth is rounded up to the
    /// next power of two (padding with zeros).
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty, exceeds 16M entries, or contains a
    /// value of the wrong type.
    pub fn new(name: &str, ty: SigType, words: Vec<Value>) -> Rom {
        assert!(!words.is_empty(), "ROM must have contents");
        for w in &words {
            assert_eq!(w.sig_type(), ty, "ROM word type mismatch");
        }
        let addr_bits = (usize::BITS - (words.len() - 1).leading_zeros()).max(1);
        assert!(addr_bits <= 24, "ROM too large");
        let mut words = words;
        words.resize(1 << addr_bits, ty.zero());
        Rom {
            name: name.to_owned(),
            addr_bits,
            ty,
            words,
        }
    }

    /// The number of address bits.
    pub fn addr_bits(&self) -> u32 {
        self.addr_bits
    }
}

impl UntimedBlock for Rom {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_ports(&self) -> Vec<PortDecl> {
        vec![PortDecl {
            name: "addr".to_owned(),
            ty: SigType::Bits(self.addr_bits),
        }]
    }

    fn output_ports(&self) -> Vec<PortDecl> {
        vec![PortDecl {
            name: "data".to_owned(),
            ty: self.ty,
        }]
    }

    fn fire(&mut self, inputs: &[Value], outputs: &mut [Value]) {
        let addr = inputs[0].as_bits().unwrap_or(0) as usize;
        outputs[0] = self.words.get(addr).copied().unwrap_or(self.ty.zero());
    }

    fn memory_spec(&self) -> Option<MemorySpec> {
        Some(MemorySpec {
            is_rom: true,
            addr_bits: self.addr_bits,
            word: self.ty,
            contents: self.words.clone(),
        })
    }
}

/// An untimed block defined by a closure — the quickest way to drop a
/// high-level model of an undesigned component into a clocked system.
///
/// # Example
///
/// ```
/// use ocapi::{FnBlock, PortDecl, SigType, Value};
///
/// // A high-level "saturating doubler" that has not been designed yet.
/// let blk = FnBlock::new(
///     "doubler",
///     vec![PortDecl { name: "x".into(), ty: SigType::Bits(8) }],
///     vec![PortDecl { name: "y".into(), ty: SigType::Bits(8) }],
///     |inp, out| {
///         let x = inp[0].as_bits().expect("bits");
///         out[0] = Value::bits(8, (x * 2).min(255));
///     },
/// );
/// ```
pub struct FnBlock<F> {
    name: String,
    inputs: Vec<PortDecl>,
    outputs: Vec<PortDecl>,
    behaviour: F,
}

impl<F> FnBlock<F>
where
    F: FnMut(&[Value], &mut [Value]),
{
    /// Wraps a closure as an untimed block.
    pub fn new(name: &str, inputs: Vec<PortDecl>, outputs: Vec<PortDecl>, behaviour: F) -> Self {
        FnBlock {
            name: name.to_owned(),
            inputs,
            outputs,
            behaviour,
        }
    }
}

impl<F> UntimedBlock for FnBlock<F>
where
    F: FnMut(&[Value], &mut [Value]),
{
    fn name(&self) -> &str {
        &self.name
    }

    fn input_ports(&self) -> Vec<PortDecl> {
        self.inputs.clone()
    }

    fn output_ports(&self) -> Vec<PortDecl> {
        self.outputs.clone()
    }

    fn fire(&mut self, inputs: &[Value], outputs: &mut [Value]) {
        (self.behaviour)(inputs, outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_read_then_write() {
        let mut ram = Ram::new("r", 4, SigType::Bits(8));
        ram.preload(3, Value::bits(8, 42));
        let mut out = [Value::bits(8, 0)];
        // read addr 3
        ram.fire(
            &[Value::bits(4, 3), Value::Bool(false), Value::bits(8, 0)],
            &mut out,
        );
        assert_eq!(out[0], Value::bits(8, 42));
        // write addr 3: old value is read out, new value lands
        ram.fire(
            &[Value::bits(4, 3), Value::Bool(true), Value::bits(8, 7)],
            &mut out,
        );
        assert_eq!(out[0], Value::bits(8, 42));
        assert_eq!(ram.word(3), Value::bits(8, 7));
    }

    #[test]
    fn ram_reset_clears() {
        let mut ram = Ram::new("r", 2, SigType::Bits(8));
        ram.preload(1, Value::bits(8, 9));
        ram.reset();
        assert_eq!(ram.word(1), Value::bits(8, 0));
    }

    #[test]
    fn rom_rounds_to_power_of_two() {
        let rom = Rom::new(
            "irom",
            SigType::Bits(16),
            (0..5).map(|i| Value::bits(16, i)).collect(),
        );
        assert_eq!(rom.addr_bits(), 3);
        let mut out = [Value::bits(16, 0)];
        let mut rom = rom;
        rom.fire(&[Value::bits(3, 4)], &mut out);
        assert_eq!(out[0], Value::bits(16, 4));
        rom.fire(&[Value::bits(3, 7)], &mut out);
        assert_eq!(out[0], Value::bits(16, 0)); // padding
    }

    #[test]
    fn fn_block_runs_closure() {
        let mut blk = FnBlock::new(
            "inc",
            vec![PortDecl {
                name: "x".into(),
                ty: SigType::Bits(8),
            }],
            vec![PortDecl {
                name: "y".into(),
                ty: SigType::Bits(8),
            }],
            |inp, out| {
                out[0] = Value::bits(8, inp[0].as_bits().expect("bits") + 1);
            },
        );
        let mut out = [Value::bits(8, 0)];
        blk.fire(&[Value::bits(8, 9)], &mut out);
        assert_eq!(out[0], Value::bits(8, 10));
    }
}
