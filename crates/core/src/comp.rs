//! Component capture: ports, registers, expression nodes, signal flow
//! graphs and the builder DSL.
//!
//! This module is the Rust counterpart of the paper's Figure 3: `sig`
//! objects are assembled into expressions by operator overloading, the
//! expressions are grouped into signal flow graphs ([`Sfg`]s) with declared
//! inputs and outputs, and semantic checks (dangling inputs, dead code)
//! warn about inconsistencies.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::fsm::Fsm;
use crate::value::{BinOp, SigType, UnOp, Value};
use crate::CoreError;

/// Identifier of an expression node within one component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The node's index in [`Component::nodes`].
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from an index into [`Component::nodes`]
    /// (for code generators and synthesis back-ends walking the graph).
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

/// An input port handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InPort(pub(crate) u32);

impl InPort {
    /// The port's index in [`Component::inputs`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An output port handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutPort(pub(crate) u32);

impl OutPort {
    /// The port's index in [`Component::outputs`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A registered-signal handle. Registers have a current and a next value;
/// reads see the current value, [`SfgBuilder::next`] schedules the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub(crate) u32);

impl Reg {
    /// The register's index in [`Component::regs`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Reference to a signal flow graph within its component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SfgRef(pub(crate) u32);

impl SfgRef {
    /// The SFG's index in [`Component::sfgs`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A port declaration: name and type.
#[derive(Debug, Clone, PartialEq)]
pub struct PortDecl {
    /// Port name, unique within the component and direction.
    pub name: String,
    /// Signal type carried by the port.
    pub ty: SigType,
}

/// A register declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct RegDecl {
    /// Register name, unique within the component.
    pub name: String,
    /// Stored signal type.
    pub ty: SigType,
    /// Reset/initial value.
    pub init: Value,
}

/// The operation computed by an expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// A constant value.
    Const(Value),
    /// Reads an input port (the token on the connected net).
    Input(InPort),
    /// Reads a register's current value.
    RegRead(Reg),
    /// A unary operation.
    Un(UnOp, NodeId),
    /// A binary operation.
    Bin(BinOp, NodeId, NodeId),
    /// `if cond { then } else { otherwise }` — a multiplexer.
    Select {
        /// Boolean condition.
        cond: NodeId,
        /// Value when the condition is true.
        then: NodeId,
        /// Value when the condition is false.
        otherwise: NodeId,
    },
}

/// One expression node: operation, result type and optional name.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The operation.
    pub kind: NodeKind,
    /// The (inferred) result type.
    pub ty: SigType,
    /// Optional user-visible name (set with [`Sig::named`]).
    pub name: Option<String>,
}

/// A signal flow graph: one clock cycle of data processing.
///
/// An SFG groups output-port and register assignments; the FSM selects
/// which SFGs execute in a given cycle. Per the paper, the *desired* inputs
/// can be declared ([`SfgBuilder::uses`]) so the checker can flag dangling
/// inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Sfg {
    /// SFG name, unique within the component.
    pub name: String,
    /// Inputs the designer declared this SFG should read.
    pub declared_inputs: Vec<InPort>,
    /// Output-port assignments, at most one per port.
    pub outputs: Vec<(OutPort, NodeId)>,
    /// Register next-value assignments, at most one per register.
    pub reg_writes: Vec<(Reg, NodeId)>,
}

/// A semantic-check finding on a finished component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The kind of finding.
    pub kind: DiagnosticKind,
    /// Human-readable description including the involved names.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

/// The kinds of semantic-check findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DiagnosticKind {
    /// An SFG declared an input it never reads.
    DanglingInput,
    /// An SFG reads an input it did not declare (only checked when the SFG
    /// declares at least one input).
    UndeclaredInput,
    /// A named node contributes to no SFG output, register or condition.
    DeadCode,
    /// An output port no SFG ever drives.
    UndrivenOutput,
    /// A register that is written but never read, or read but never
    /// written.
    UnusedRegister,
    /// An FSM state no transition can reach.
    UnreachableState,
}

pub(crate) struct CompInner {
    pub(crate) name: String,
    pub(crate) inputs: Vec<PortDecl>,
    pub(crate) outputs: Vec<PortDecl>,
    pub(crate) regs: Vec<RegDecl>,
    pub(crate) nodes: Vec<Node>,
    pub(crate) sfgs: Vec<Sfg>,
    pub(crate) fsm: Option<Fsm>,
}

impl CompInner {
    fn dup(&self, kind: &'static str, name: &str, exists: bool) -> Result<(), CoreError> {
        if exists {
            Err(CoreError::DuplicateName {
                kind,
                name: name.to_owned(),
            })
        } else {
            Ok(())
        }
    }
}

/// A finished, immutable hardware component: the in-memory data structure
/// that simulation, code generation and synthesis all share (the paper's
/// Figure 7 "data structure").
#[derive(Debug, Clone)]
pub struct Component {
    /// Component (entity) name.
    pub name: String,
    /// Input ports.
    pub inputs: Vec<PortDecl>,
    /// Output ports.
    pub outputs: Vec<PortDecl>,
    /// Registers.
    pub regs: Vec<RegDecl>,
    /// Expression nodes; operands always precede their users, so the node
    /// list is a topological order.
    pub nodes: Vec<Node>,
    /// Signal flow graphs.
    pub sfgs: Vec<Sfg>,
    /// The Mealy controller, if any. Components without an FSM execute
    /// *all* their SFGs every cycle.
    pub fsm: Option<Fsm>,
    /// Semantic-check findings computed at build time.
    pub diagnostics: Vec<Diagnostic>,
    /// Per node: the sorted set of input-port indices in its cone.
    pub(crate) input_deps: Vec<Vec<u32>>,
}

impl Component {
    /// Starts capturing a new component.
    pub fn build(name: &str) -> ComponentBuilder {
        ComponentBuilder {
            inner: Rc::new(RefCell::new(CompInner {
                name: name.to_owned(),
                inputs: Vec::new(),
                outputs: Vec::new(),
                regs: Vec::new(),
                nodes: Vec::new(),
                sfgs: Vec::new(),
                fsm: None,
            })),
        }
    }

    /// Looks up an input port by name.
    pub fn input_by_name(&self, name: &str) -> Option<InPort> {
        self.inputs
            .iter()
            .position(|p| p.name == name)
            .map(|i| InPort(i as u32))
    }

    /// Looks up an output port by name.
    pub fn output_by_name(&self, name: &str) -> Option<OutPort> {
        self.outputs
            .iter()
            .position(|p| p.name == name)
            .map(|i| OutPort(i as u32))
    }

    /// The node a given id refers to.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The input ports (as indices into [`Component::inputs`]) in the cone
    /// of the given node.
    pub fn input_deps(&self, id: NodeId) -> &[u32] {
        &self.input_deps[id.index()]
    }

    /// Which SFGs would execute if the FSM is absent (all of them).
    pub fn all_sfg_refs(&self) -> Vec<SfgRef> {
        (0..self.sfgs.len() as u32).map(SfgRef).collect()
    }
}

/// Builder for a [`Component`]; clones of the internal state are shared by
/// the [`Sig`] handles it hands out, which is what lets plain Rust
/// operator syntax append nodes to the graph.
pub struct ComponentBuilder {
    pub(crate) inner: Rc<RefCell<CompInner>>,
}

impl ComponentBuilder {
    /// Declares an input port.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateName`] if an input of this name exists.
    pub fn input(&self, name: &str, ty: SigType) -> Result<InPort, CoreError> {
        let mut inner = self.inner.borrow_mut();
        let exists = inner.inputs.iter().any(|p| p.name == name);
        inner.dup("input port", name, exists)?;
        inner.inputs.push(PortDecl {
            name: name.to_owned(),
            ty,
        });
        Ok(InPort(inner.inputs.len() as u32 - 1))
    }

    /// Declares an output port.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateName`] if an output of this name
    /// exists.
    pub fn output(&self, name: &str, ty: SigType) -> Result<OutPort, CoreError> {
        let mut inner = self.inner.borrow_mut();
        let exists = inner.outputs.iter().any(|p| p.name == name);
        inner.dup("output port", name, exists)?;
        inner.outputs.push(PortDecl {
            name: name.to_owned(),
            ty,
        });
        Ok(OutPort(inner.outputs.len() as u32 - 1))
    }

    /// Declares a register initialised to the type's zero value.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateName`] if a register of this name
    /// exists.
    pub fn reg(&self, name: &str, ty: SigType) -> Result<Reg, CoreError> {
        self.reg_init(name, ty, ty.zero())
    }

    /// Declares a register with an explicit initial value.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateName`] on a name clash and
    /// [`CoreError::ValueType`] if `init` does not match `ty`.
    pub fn reg_init(&self, name: &str, ty: SigType, init: Value) -> Result<Reg, CoreError> {
        init.check_type(ty, &format!("initial value of register `{name}`"))?;
        let mut inner = self.inner.borrow_mut();
        let exists = inner.regs.iter().any(|r| r.name == name);
        inner.dup("register", name, exists)?;
        inner.regs.push(RegDecl {
            name: name.to_owned(),
            ty,
            init,
        });
        Ok(Reg(inner.regs.len() as u32 - 1))
    }

    /// The signal carried by an input port.
    pub fn read(&self, port: InPort) -> Sig {
        let ty = self.inner.borrow().inputs[port.index()].ty;
        self.push(NodeKind::Input(port), ty)
    }

    /// The current value of a register.
    pub fn q(&self, reg: Reg) -> Sig {
        let ty = self.inner.borrow().regs[reg.index()].ty;
        self.push(NodeKind::RegRead(reg), ty)
    }

    /// A constant signal.
    pub fn constant(&self, v: Value) -> Sig {
        let ty = v.sig_type();
        self.push(NodeKind::Const(v), ty)
    }

    /// A constant bit word.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn const_bits(&self, width: u32, bits: u64) -> Sig {
        self.constant(Value::bits(width, bits))
    }

    /// A constant control bit.
    pub fn const_bool(&self, b: bool) -> Sig {
        self.constant(Value::Bool(b))
    }

    /// A constant fixed-point value, quantised to `fmt` with
    /// round-to-nearest and saturation.
    pub fn const_fixed(&self, value: f64, fmt: ocapi_fixp::Format) -> Sig {
        self.constant(Value::Fixed(ocapi_fixp::Fix::from_f64(
            value,
            fmt,
            ocapi_fixp::Rounding::Nearest,
            ocapi_fixp::Overflow::Saturate,
        )))
    }

    /// A two-way multiplexer: `cond ? then : otherwise`.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is not `Bool`, if the branches differ in type or
    /// if any signal belongs to another component (the same discipline as
    /// the arithmetic operators; see [`Sig`]).
    pub fn select(&self, cond: &Sig, then: &Sig, otherwise: &Sig) -> Sig {
        assert!(
            Rc::ptr_eq(&self.inner, &cond.inner)
                && Rc::ptr_eq(&cond.inner, &then.inner)
                && Rc::ptr_eq(&then.inner, &otherwise.inner),
            "select: signals belong to different components"
        );
        assert_eq!(cond.ty, SigType::Bool, "select condition must be bool");
        assert_eq!(
            then.ty, otherwise.ty,
            "select branches must have the same type ({} vs {})",
            then.ty, otherwise.ty
        );
        self.push(
            NodeKind::Select {
                cond: cond.node,
                then: then.node,
                otherwise: otherwise.node,
            },
            then.ty,
        )
    }

    /// Opens a new signal flow graph.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateName`] if an SFG of this name exists.
    pub fn sfg(&self, name: &str) -> Result<SfgBuilder, CoreError> {
        let mut inner = self.inner.borrow_mut();
        let exists = inner.sfgs.iter().any(|s| s.name == name);
        inner.dup("sfg", name, exists)?;
        inner.sfgs.push(Sfg {
            name: name.to_owned(),
            declared_inputs: Vec::new(),
            outputs: Vec::new(),
            reg_writes: Vec::new(),
        });
        let idx = inner.sfgs.len() as u32 - 1;
        Ok(SfgBuilder {
            inner: Rc::clone(&self.inner),
            sfg: SfgRef(idx),
        })
    }

    /// Finishes the component, computing the semantic-check diagnostics
    /// but not failing on them.
    ///
    /// # Errors
    ///
    /// Returns an error for *structural* problems: an FSM transition whose
    /// SFGs drive the same output twice in one cycle.
    pub fn finish(self) -> Result<Component, CoreError> {
        let inner = self.inner.borrow();
        let input_deps = compute_input_deps(&inner.nodes);
        let comp = Component {
            name: inner.name.clone(),
            inputs: inner.inputs.clone(),
            outputs: inner.outputs.clone(),
            regs: inner.regs.clone(),
            nodes: inner.nodes.clone(),
            sfgs: inner.sfgs.clone(),
            fsm: inner.fsm.clone(),
            diagnostics: Vec::new(),
            input_deps,
        };
        validate_structure(&comp)?;
        let diagnostics = run_checks(&comp);
        Ok(Component {
            diagnostics,
            ..comp
        })
    }

    /// Like [`ComponentBuilder::finish`], but any diagnostic is an error.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CheckFailed`] listing every finding, plus the
    /// structural errors of `finish`.
    pub fn finish_strict(self) -> Result<Component, CoreError> {
        let comp = self.finish()?;
        if comp.diagnostics.is_empty() {
            Ok(comp)
        } else {
            Err(CoreError::CheckFailed {
                diagnostics: comp.diagnostics.iter().map(|d| d.to_string()).collect(),
            })
        }
    }

    pub(crate) fn push(&self, kind: NodeKind, ty: SigType) -> Sig {
        let mut inner = self.inner.borrow_mut();
        inner.nodes.push(Node {
            kind,
            ty,
            name: None,
        });
        Sig {
            inner: Rc::clone(&self.inner),
            node: NodeId(inner.nodes.len() as u32 - 1),
            ty,
        }
    }
}

/// Builder for one signal flow graph.
pub struct SfgBuilder {
    inner: Rc<RefCell<CompInner>>,
    sfg: SfgRef,
}

impl SfgBuilder {
    /// The reference used to attach this SFG to FSM transitions.
    pub fn id(&self) -> SfgRef {
        self.sfg
    }

    /// Declares that this SFG is meant to read the given input (enables
    /// the dangling-input and undeclared-input checks).
    pub fn uses(&self, port: InPort) -> &SfgBuilder {
        self.inner.borrow_mut().sfgs[self.sfg.index()]
            .declared_inputs
            .push(port);
        self
    }

    /// Drives an output port with a signal for the cycles this SFG runs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TypeMismatch`] if the signal type differs from
    /// the port type, and [`CoreError::ConnectionConflict`] if this SFG
    /// already drives the port.
    pub fn drive(&self, port: OutPort, sig: &Sig) -> Result<(), CoreError> {
        let mut inner = self.inner.borrow_mut();
        let pty = inner.outputs[port.index()].ty;
        if pty != sig.ty {
            return Err(CoreError::TypeMismatch {
                op: format!("drive `{}`", inner.outputs[port.index()].name),
                left: pty,
                right: sig.ty,
            });
        }
        let sfg = &mut inner.sfgs[self.sfg.index()];
        if sfg.outputs.iter().any(|(p, _)| *p == port) {
            let name = sfg.name.clone();
            return Err(CoreError::ConnectionConflict {
                endpoint: format!("sfg `{name}` output {}", port.index()),
            });
        }
        sfg.outputs.push((port, sig.node));
        Ok(())
    }

    /// Schedules the register's next value for the cycles this SFG runs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TypeMismatch`] if the signal type differs from
    /// the register type, and [`CoreError::ConnectionConflict`] if this
    /// SFG already writes the register.
    pub fn next(&self, reg: Reg, sig: &Sig) -> Result<(), CoreError> {
        let mut inner = self.inner.borrow_mut();
        let rty = inner.regs[reg.index()].ty;
        if rty != sig.ty {
            return Err(CoreError::TypeMismatch {
                op: format!("next `{}`", inner.regs[reg.index()].name),
                left: rty,
                right: sig.ty,
            });
        }
        let sfg = &mut inner.sfgs[self.sfg.index()];
        if sfg.reg_writes.iter().any(|(r, _)| *r == reg) {
            let name = sfg.name.clone();
            return Err(CoreError::ConnectionConflict {
                endpoint: format!("sfg `{name}` register {}", reg.index()),
            });
        }
        sfg.reg_writes.push((reg, sig.node));
        Ok(())
    }
}

/// A signal handle: a node in the component's expression graph.
///
/// `Sig` is the Rust analogue of the paper's `sig` class (Figure 3):
/// applying `+`, `-`, `*`, `&`, `|`, `^`, `!` to signals appends operator
/// nodes to the component's graph, reusing the host-language parser to
/// capture the signal flow graph.
///
/// # Panics
///
/// Operator applications panic (a capture-time "compile error") when the
/// operand types are incompatible or the operands belong to different
/// components. Use explicit casts ([`Sig::to_fixed`], [`Sig::to_bits`], …)
/// to convert.
#[derive(Clone)]
pub struct Sig {
    pub(crate) inner: Rc<RefCell<CompInner>>,
    pub(crate) node: NodeId,
    pub(crate) ty: SigType,
}

impl fmt::Debug for Sig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sig(#{}, {})", self.node.0, self.ty)
    }
}

impl Sig {
    /// The node this signal refers to.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The signal's type.
    pub fn sig_type(&self) -> SigType {
        self.ty
    }

    /// Attaches a name to the node (shows up in diagnostics, generated
    /// HDL and traces).
    pub fn named(self, name: &str) -> Sig {
        self.inner.borrow_mut().nodes[self.node.index()].name = Some(name.to_owned());
        self
    }

    fn builder(&self) -> ComponentBuilder {
        ComponentBuilder {
            inner: Rc::clone(&self.inner),
        }
    }

    pub(crate) fn bin(&self, op: BinOp, rhs: &Sig) -> Sig {
        assert!(
            Rc::ptr_eq(&self.inner, &rhs.inner),
            "{op:?}: signals belong to different components"
        );
        let ty = op
            .result_type(self.ty, rhs.ty)
            .unwrap_or_else(|e| panic!("{e}"));
        self.builder()
            .push(NodeKind::Bin(op, self.node, rhs.node), ty)
    }

    pub(crate) fn un(&self, op: UnOp) -> Sig {
        let ty = op.result_type(self.ty).unwrap_or_else(|e| panic!("{e}"));
        self.builder().push(NodeKind::Un(op, self.node), ty)
    }

    /// Equality comparison, producing a `Bool` signal.
    pub fn eq(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Eq, rhs)
    }

    /// Inequality comparison.
    pub fn ne(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Ne, rhs)
    }

    /// Less-than comparison (unsigned on `Bits`).
    pub fn lt(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Lt, rhs)
    }

    /// Less-or-equal comparison.
    pub fn le(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Le, rhs)
    }

    /// Greater-than comparison.
    pub fn gt(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Gt, rhs)
    }

    /// Greater-or-equal comparison.
    pub fn ge(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Ge, rhs)
    }

    /// Constant left shift (on `Bits`).
    pub fn shl(&self, n: u32) -> Sig {
        self.un(UnOp::Shl(n))
    }

    /// Constant logical right shift (on `Bits`).
    pub fn shr(&self, n: u32) -> Sig {
        self.un(UnOp::Shr(n))
    }

    /// Bit-field extraction `lo..lo+width` (on `Bits`).
    pub fn slice(&self, lo: u32, width: u32) -> Sig {
        self.un(UnOp::Slice { lo, width })
    }

    /// Extracts a single bit as `Bits(1)` and tests it, giving a `Bool`.
    pub fn bit(&self, index: u32) -> Sig {
        self.slice(index, 1).un(UnOp::ToBool)
    }

    /// Quantises to a fixed-point format.
    pub fn to_fixed(
        &self,
        fmt: ocapi_fixp::Format,
        rounding: ocapi_fixp::Rounding,
        overflow: ocapi_fixp::Overflow,
    ) -> Sig {
        self.un(UnOp::ToFixed(fmt, rounding, overflow))
    }

    /// Reinterprets as a bit word of the given width.
    pub fn to_bits(&self, width: u32) -> Sig {
        self.un(UnOp::ToBits(width))
    }

    /// Converts to float.
    pub fn to_float(&self) -> Sig {
        self.un(UnOp::ToFloat)
    }

    /// Non-zero test, producing `Bool`.
    pub fn to_bool(&self) -> Sig {
        self.un(UnOp::ToBool)
    }

    /// Two-way multiplexer with `self` as the condition.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `Bool` and the branches share a type.
    pub fn mux(&self, then: &Sig, otherwise: &Sig) -> Sig {
        self.builder().select(self, then, otherwise)
    }
}

macro_rules! sig_binop {
    ($trait_:ident, $method:ident, $op:expr) => {
        impl std::ops::$trait_ for &Sig {
            type Output = Sig;
            fn $method(self, rhs: &Sig) -> Sig {
                self.bin($op, rhs)
            }
        }
        impl std::ops::$trait_ for Sig {
            type Output = Sig;
            fn $method(self, rhs: Sig) -> Sig {
                self.bin($op, &rhs)
            }
        }
        impl std::ops::$trait_<&Sig> for Sig {
            type Output = Sig;
            fn $method(self, rhs: &Sig) -> Sig {
                self.bin($op, rhs)
            }
        }
        impl std::ops::$trait_<Sig> for &Sig {
            type Output = Sig;
            fn $method(self, rhs: Sig) -> Sig {
                self.bin($op, &rhs)
            }
        }
    };
}

sig_binop!(Add, add, BinOp::Add);
sig_binop!(Sub, sub, BinOp::Sub);
sig_binop!(Mul, mul, BinOp::Mul);
sig_binop!(BitAnd, bitand, BinOp::And);
sig_binop!(BitOr, bitor, BinOp::Or);
sig_binop!(BitXor, bitxor, BinOp::Xor);

impl std::ops::Not for &Sig {
    type Output = Sig;
    fn not(self) -> Sig {
        self.un(UnOp::Not)
    }
}

impl std::ops::Not for Sig {
    type Output = Sig;
    fn not(self) -> Sig {
        self.un(UnOp::Not)
    }
}

impl std::ops::Neg for &Sig {
    type Output = Sig;
    fn neg(self) -> Sig {
        self.un(UnOp::Neg)
    }
}

impl std::ops::Neg for Sig {
    type Output = Sig;
    fn neg(self) -> Sig {
        self.un(UnOp::Neg)
    }
}

fn compute_input_deps(nodes: &[Node]) -> Vec<Vec<u32>> {
    let mut deps: Vec<Vec<u32>> = Vec::with_capacity(nodes.len());
    for node in nodes {
        let d = match &node.kind {
            NodeKind::Const(_) | NodeKind::RegRead(_) => Vec::new(),
            NodeKind::Input(p) => vec![p.0],
            NodeKind::Un(_, a) => deps[a.index()].clone(),
            NodeKind::Bin(_, a, b) => merge(&deps[a.index()], &deps[b.index()]),
            NodeKind::Select {
                cond,
                then,
                otherwise,
            } => merge(
                &deps[cond.index()],
                &merge(&deps[then.index()], &deps[otherwise.index()]),
            ),
        };
        deps.push(d);
    }
    deps
}

fn merge(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Hard structural validation: a single FSM transition must not drive the
/// same output port or register from two of its SFGs.
fn validate_structure(comp: &Component) -> Result<(), CoreError> {
    if let Some(fsm) = &comp.fsm {
        for t in &fsm.transitions {
            let mut outs = std::collections::HashSet::new();
            let mut regs = std::collections::HashSet::new();
            for sfg_ref in &t.actions {
                let sfg = &comp.sfgs[sfg_ref.index()];
                for (p, _) in &sfg.outputs {
                    if !outs.insert(*p) {
                        return Err(CoreError::ConnectionConflict {
                            endpoint: format!(
                                "{}: transition drives output `{}` twice",
                                comp.name,
                                comp.outputs[p.index()].name
                            ),
                        });
                    }
                }
                for (r, _) in &sfg.reg_writes {
                    if !regs.insert(*r) {
                        return Err(CoreError::ConnectionConflict {
                            endpoint: format!(
                                "{}: transition writes register `{}` twice",
                                comp.name,
                                comp.regs[r.index()].name
                            ),
                        });
                    }
                }
            }
        }
    } else {
        // All SFGs run together: same disjointness requirement globally.
        let mut outs = std::collections::HashSet::new();
        let mut regs = std::collections::HashSet::new();
        for sfg in &comp.sfgs {
            for (p, _) in &sfg.outputs {
                if !outs.insert(*p) {
                    return Err(CoreError::ConnectionConflict {
                        endpoint: format!(
                            "{}: output `{}` driven by multiple always-on SFGs",
                            comp.name,
                            comp.outputs[p.index()].name
                        ),
                    });
                }
            }
            for (r, _) in &sfg.reg_writes {
                if !regs.insert(*r) {
                    return Err(CoreError::ConnectionConflict {
                        endpoint: format!(
                            "{}: register `{}` written by multiple always-on SFGs",
                            comp.name,
                            comp.regs[r.index()].name
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Runs the semantic checks of §3.1: dangling inputs, dead code, plus
/// undriven outputs, unused registers and unreachable FSM states.
fn run_checks(comp: &Component) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Mark every node reachable from any SFG assignment or FSM guard.
    let mut live = vec![false; comp.nodes.len()];
    let mut stack: Vec<NodeId> = Vec::new();
    for sfg in &comp.sfgs {
        stack.extend(sfg.outputs.iter().map(|(_, n)| *n));
        stack.extend(sfg.reg_writes.iter().map(|(_, n)| *n));
    }
    if let Some(fsm) = &comp.fsm {
        for t in &fsm.transitions {
            if let Some(g) = t.guard {
                stack.push(g);
            }
        }
    }
    while let Some(n) = stack.pop() {
        if live[n.index()] {
            continue;
        }
        live[n.index()] = true;
        match &comp.nodes[n.index()].kind {
            NodeKind::Const(_) | NodeKind::Input(_) | NodeKind::RegRead(_) => {}
            NodeKind::Un(_, a) => stack.push(*a),
            NodeKind::Bin(_, a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            NodeKind::Select {
                cond,
                then,
                otherwise,
            } => {
                stack.push(*cond);
                stack.push(*then);
                stack.push(*otherwise);
            }
        }
    }
    for (i, node) in comp.nodes.iter().enumerate() {
        if !live[i] {
            if let Some(name) = &node.name {
                diags.push(Diagnostic {
                    kind: DiagnosticKind::DeadCode,
                    message: format!("{}: named signal `{name}` drives nothing", comp.name),
                });
            }
        }
    }

    // Dangling / undeclared inputs per SFG.
    for sfg in &comp.sfgs {
        let mut used: Vec<u32> = Vec::new();
        for n in sfg
            .outputs
            .iter()
            .map(|(_, n)| *n)
            .chain(sfg.reg_writes.iter().map(|(_, n)| *n))
        {
            used = merge(&used, &comp.input_deps[n.index()]);
        }
        if !sfg.declared_inputs.is_empty() {
            for d in &sfg.declared_inputs {
                if !used.contains(&d.0) {
                    diags.push(Diagnostic {
                        kind: DiagnosticKind::DanglingInput,
                        message: format!(
                            "{}: sfg `{}` declares input `{}` but never reads it",
                            comp.name,
                            sfg.name,
                            comp.inputs[d.index()].name
                        ),
                    });
                }
            }
            for u in &used {
                if !sfg.declared_inputs.iter().any(|d| d.0 == *u) {
                    diags.push(Diagnostic {
                        kind: DiagnosticKind::UndeclaredInput,
                        message: format!(
                            "{}: sfg `{}` reads input `{}` without declaring it",
                            comp.name, sfg.name, comp.inputs[*u as usize].name
                        ),
                    });
                }
            }
        }
    }

    // Undriven outputs.
    for (i, out) in comp.outputs.iter().enumerate() {
        let driven = comp
            .sfgs
            .iter()
            .any(|s| s.outputs.iter().any(|(p, _)| p.index() == i));
        if !driven {
            diags.push(Diagnostic {
                kind: DiagnosticKind::UndrivenOutput,
                message: format!("{}: output `{}` is never driven", comp.name, out.name),
            });
        }
    }

    // Unused registers.
    for (i, reg) in comp.regs.iter().enumerate() {
        let written = comp
            .sfgs
            .iter()
            .any(|s| s.reg_writes.iter().any(|(r, _)| r.index() == i));
        let read = comp.nodes.iter().enumerate().any(|(n, node)| {
            live[n] && matches!(node.kind, NodeKind::RegRead(r) if r.index() == i)
        });
        if written != read {
            diags.push(Diagnostic {
                kind: DiagnosticKind::UnusedRegister,
                message: format!(
                    "{}: register `{}` is {} but never {}",
                    comp.name,
                    reg.name,
                    if written { "written" } else { "read" },
                    if written { "read" } else { "written" }
                ),
            });
        }
    }

    // Unreachable FSM states.
    if let Some(fsm) = &comp.fsm {
        let mut reach = vec![false; fsm.states.len()];
        reach[fsm.initial.index()] = true;
        let mut changed = true;
        while changed {
            changed = false;
            for t in &fsm.transitions {
                if reach[t.from.index()] && !reach[t.to.index()] {
                    reach[t.to.index()] = true;
                    changed = true;
                }
            }
        }
        for (i, r) in reach.iter().enumerate() {
            if !r {
                diags.push(Diagnostic {
                    kind: DiagnosticKind::UnreachableState,
                    message: format!(
                        "{}: FSM state `{}` is unreachable",
                        comp.name, fsm.states[i]
                    ),
                });
            }
        }
    }

    diags
}
