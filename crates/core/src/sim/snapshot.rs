//! Versioned, checksummed simulator snapshots.
//!
//! A long validation run (ROADMAP item 5: a persistent simulation
//! service with warm restarts) needs to park a simulator and pick it up
//! later — possibly in another process. [`SimSnapshot`] captures the
//! complete mutable state of a back-end: every state slot or net value,
//! FSM selectors, register files, untimed-block memories, the cycle
//! count, and (optionally) the positions of the PRNG streams driving
//! the stimuli.
//!
//! Two rules make restores safe rather than undefined behaviour:
//!
//! 1. **Design-hash keying.** Every snapshot records a 64-bit FNV-1a
//!    hash of the design structure it was taken from; for the compiled
//!    back-ends the hash also covers the levelized tape, so the same
//!    design compiled at a different [`OptLevel`](crate::OptLevel)
//!    produces a *different* hash. A restore into a mismatched
//!    simulator fails with [`CoreError::SnapshotMismatch`].
//! 2. **Checksummed framing.** The byte format is versioned, carries a
//!    trailing FNV-1a checksum, and every section length is validated,
//!    so a truncated or corrupted file fails with
//!    [`CoreError::SnapshotFormat`] instead of silently corrupting
//!    state.
//!
//! The format is hand-rolled (magic + little-endian sections) — the
//! workspace builds offline with zero serialisation dependencies. A
//! human-readable JSON rendering is available via
//! [`SimSnapshot::to_json`] for debugging and manifests.
//!
//! Snapshots of [`CompiledSim`](crate::CompiledSim) and of a
//! [`BatchedSim`](crate::BatchedSim) lane are interchangeable when both
//! simulators were built from the same system at the same optimization
//! level: the lane state is exactly one compiled-state stripe. The
//! direct-threaded [`FusedSim`](crate::FusedSim) joins the same family:
//! its lowering is a pure function of the compiled program (same design
//! hash, same state layout), so fused and compiled snapshots restore
//! into each other byte-for-byte — a session parked on one engine can
//! resume on the other.

use std::fmt::Write as _;

use crate::rng::XorShift64;
use crate::system::System;
use crate::CoreError;

/// FNV-1a, 64-bit — the in-tree hash used for design hashes and
/// snapshot checksums (offline build: no external hashing crates).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        // Delimit, so ("ab","c") and ("a","bc") hash differently.
        self.write(&[0xff]);
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// The structural design hash of a system, as seen by the interpreted
/// simulator: names, components (ports, registers, expression nodes,
/// SFGs, FSMs), untimed block interfaces, and the interconnect.
/// Mutable untimed state (RAM contents) deliberately does not
/// contribute.
pub(crate) fn hash_system(sys: &System) -> u64 {
    let mut h = Fnv::new();
    h.write_str("ocapi.system.v1");
    h.write_str(&sys.name);
    for t in &sys.timed {
        h.write_str(&t.name);
        h.write_str(&format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            t.comp.inputs, t.comp.outputs, t.comp.regs, t.comp.nodes, t.comp.sfgs, t.comp.fsm
        ));
    }
    for u in &sys.untimed {
        h.write_str(u.block.name());
        h.write_str(&format!("{:?}|{:?}", u.inputs, u.outputs));
    }
    for n in &sys.nets {
        h.write_str(&format!(
            "{}|{:?}|{:?}|{:?}",
            n.name, n.ty, n.source, n.sinks
        ));
    }
    h.write_str(&format!(
        "{:?}|{:?}",
        sys.primary_inputs, sys.primary_outputs
    ));
    h.finish()
}

/// The design hash of a compiled back-end: the structural system hash
/// combined with the levelized program (slot layout, both tapes, FSM
/// tables, register-write selectors, net-to-slot map). Two builds of
/// the same system at different optimization levels produce different
/// tapes, hence different hashes — a snapshot cannot cross them.
pub(crate) fn hash_program(sys: &System, prog: &super::compiled::Program) -> u64 {
    let mut h = Fnv::new();
    h.write_str("ocapi.program.v1");
    h.write(&hash_system(sys).to_le_bytes());
    h.write_str(&format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        prog.slot_ty, prog.pre_tape, prog.tape, prog.fsm_tables, prog.reg_writes, prog.net_slot
    ));
    h.finish()
}

/// Which back-end family a snapshot was taken from. Interpreted state
/// (typed values over nets) and compiled state (raw slots over a
/// levelized tape) have different shapes, so they are never
/// interchangeable; a [`BatchedSim`](crate::BatchedSim) lane uses
/// [`SnapshotBackend::Compiled`] because its per-lane state stripe is
/// exactly the compiled state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotBackend {
    /// Taken from [`InterpSim`](crate::InterpSim).
    Interp,
    /// Taken from [`CompiledSim`](crate::CompiledSim) or a
    /// [`BatchedSim`](crate::BatchedSim) lane.
    Compiled,
}

impl SnapshotBackend {
    fn tag(self) -> u8 {
        match self {
            SnapshotBackend::Interp => 0,
            SnapshotBackend::Compiled => 1,
        }
    }

    fn from_tag(tag: u8) -> Option<SnapshotBackend> {
        match tag {
            0 => Some(SnapshotBackend::Interp),
            1 => Some(SnapshotBackend::Compiled),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            SnapshotBackend::Interp => "interp",
            SnapshotBackend::Compiled => "compiled",
        }
    }
}

const MAGIC: &[u8; 4] = b"OSNP";
const VERSION: u16 = 1;

/// Reserved section name carrying PRNG stream positions.
const RNG_SECTION: &str = "rng";

/// A complete, restorable image of a simulator's mutable state. See
/// the module docs for the compatibility and integrity rules.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSnapshot {
    backend: SnapshotBackend,
    design_hash: u64,
    cycle: u64,
    sections: Vec<(String, Vec<u64>)>,
}

impl SimSnapshot {
    pub(crate) fn new(backend: SnapshotBackend, design_hash: u64, cycle: u64) -> SimSnapshot {
        SimSnapshot {
            backend,
            design_hash,
            cycle,
            sections: Vec::new(),
        }
    }

    pub(crate) fn push_section(&mut self, name: &str, words: Vec<u64>) {
        self.sections.push((name.to_owned(), words));
    }

    /// The back-end family this snapshot restores into.
    pub fn backend(&self) -> SnapshotBackend {
        self.backend
    }

    /// The design hash the snapshot is keyed to.
    pub fn design_hash(&self) -> u64 {
        self.design_hash
    }

    /// The completed-cycle count at capture time.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The words of the named section, if present.
    pub fn section(&self, name: &str) -> Option<&[u64]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, w)| w.as_slice())
    }

    /// Attaches the positions of the PRNG streams driving the run, so a
    /// restore resumes the stimulus exactly. Replaces any previously
    /// attached streams.
    pub fn set_rng_streams(&mut self, streams: &[XorShift64]) {
        self.sections.retain(|(n, _)| n != RNG_SECTION);
        self.push_section(RNG_SECTION, streams.iter().map(XorShift64::state).collect());
    }

    /// The PRNG streams attached via [`SimSnapshot::set_rng_streams`],
    /// rebuilt at their saved positions (empty if none were attached).
    pub fn rng_streams(&self) -> Vec<XorShift64> {
        self.section(RNG_SECTION).map_or_else(Vec::new, |words| {
            words.iter().copied().map(XorShift64::from_state).collect()
        })
    }

    /// Checks this snapshot against a simulator's identity; every
    /// back-end's `restore` goes through here first.
    pub(crate) fn check(
        &self,
        backend: SnapshotBackend,
        design_hash: u64,
    ) -> Result<(), CoreError> {
        if self.backend != backend {
            return Err(CoreError::SnapshotFormat {
                reason: format!(
                    "backend mismatch: snapshot is {}, simulator is {}",
                    self.backend.name(),
                    backend.name()
                ),
            });
        }
        if self.design_hash != design_hash {
            return Err(CoreError::SnapshotMismatch {
                expected: design_hash,
                got: self.design_hash,
            });
        }
        Ok(())
    }

    /// A required section of an exact length; shape violations are
    /// typed [`CoreError::SnapshotFormat`] errors.
    pub(crate) fn section_exact(&self, name: &str, len: usize) -> Result<&[u64], CoreError> {
        let words = self
            .section(name)
            .ok_or_else(|| CoreError::SnapshotFormat {
                reason: format!("missing section `{name}`"),
            })?;
        if words.len() != len {
            return Err(CoreError::SnapshotFormat {
                reason: format!("section `{name}` has {} words, expected {len}", words.len()),
            });
        }
        Ok(words)
    }

    /// Serialises to the versioned, checksummed binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.backend.tag());
        out.push(0); // reserved
        out.extend_from_slice(&self.design_hash.to_le_bytes());
        out.extend_from_slice(&self.cycle.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, words) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(words.len() as u32).to_le_bytes());
            for w in words {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        let mut h = Fnv::new();
        h.write(&out);
        out.extend_from_slice(&h.finish().to_le_bytes());
        out
    }

    /// Parses and validates the binary format.
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotFormat`] on bad magic, unsupported version,
    /// checksum failure, or any truncated/oversized field.
    pub fn from_bytes(bytes: &[u8]) -> Result<SimSnapshot, CoreError> {
        let bad = |reason: &str| CoreError::SnapshotFormat {
            reason: reason.to_owned(),
        };
        if bytes.len() < MAGIC.len() + 2 + 2 + 8 + 8 + 4 + 8 {
            return Err(bad("truncated header"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let mut h = Fnv::new();
        h.write(body);
        let stored = u64::from_le_bytes(tail.try_into().map_err(|_| bad("truncated checksum"))?);
        if stored != h.finish() {
            return Err(bad("checksum mismatch"));
        }
        let mut cur = Cursor { body, pos: 0 };
        if cur.take(4)? != MAGIC.as_slice() {
            return Err(bad("bad magic"));
        }
        let version = cur.u16()?;
        if version != VERSION {
            return Err(CoreError::SnapshotFormat {
                reason: format!("unsupported snapshot version {version}"),
            });
        }
        let backend =
            SnapshotBackend::from_tag(cur.u8()?).ok_or_else(|| bad("unknown backend tag"))?;
        let _reserved = cur.u8()?;
        let design_hash = cur.u64()?;
        let cycle = cur.u64()?;
        let n_sections = cur.u32()? as usize;
        let mut sections = Vec::with_capacity(n_sections.min(64));
        for _ in 0..n_sections {
            let name_len = cur.u16()? as usize;
            let name = std::str::from_utf8(cur.take(name_len)?)
                .map_err(|_| bad("section name is not UTF-8"))?
                .to_owned();
            let n_words = cur.u32()? as usize;
            let mut words = Vec::with_capacity(n_words.min(1 << 20));
            for _ in 0..n_words {
                words.push(cur.u64()?);
            }
            sections.push((name, words));
        }
        if cur.pos != cur.body.len() {
            return Err(bad("trailing bytes after last section"));
        }
        Ok(SimSnapshot {
            backend,
            design_hash,
            cycle,
            sections,
        })
    }

    /// A human-readable JSON rendering (deterministic, hand-rolled) for
    /// debugging and checkpoint manifests. Not a restore format — use
    /// [`SimSnapshot::to_bytes`] for that.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"version\":{VERSION},\"backend\":\"{}\",\"design_hash\":\"{:#018x}\",\"cycle\":{},\"sections\":{{",
            self.backend.name(),
            self.design_hash,
            self.cycle
        );
        for (i, (name, words)) in self.sections.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{name}\":[");
            for (j, w) in words.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{w}");
            }
            s.push(']');
        }
        s.push_str("}}");
        s
    }
}

/// A bounds-checked little-endian reader over the snapshot body.
struct Cursor<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        let end = self.pos.checked_add(n).filter(|e| *e <= self.body.len());
        match end {
            Some(end) => {
                let s = &self.body[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(CoreError::SnapshotFormat {
                reason: "truncated snapshot body".to_owned(),
            }),
        }
    }

    fn u8(&mut self) -> Result<u8, CoreError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CoreError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, CoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CoreError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimSnapshot {
        let mut s = SimSnapshot::new(SnapshotBackend::Compiled, 0xdead_beef_1234_5678, 42);
        s.push_section("slots", vec![1, 2, 3, u64::MAX]);
        s.push_section("states", vec![0]);
        s.set_rng_streams(&[XorShift64::new(7), XorShift64::new(9)]);
        s
    }

    #[test]
    fn byte_round_trip_is_exact() {
        let s = sample();
        let bytes = s.to_bytes();
        let back = SimSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.section("slots"), Some(&[1, 2, 3, u64::MAX][..]));
        assert_eq!(back.cycle(), 42);
        assert_eq!(
            back.rng_streams(),
            vec![XorShift64::new(7), XorShift64::new(9)]
        );
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        match SimSnapshot::from_bytes(&bytes) {
            Err(CoreError::SnapshotFormat { reason }) => {
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().to_bytes();
        for cut in [0usize, 3, 10, bytes.len() - 1] {
            assert!(
                SimSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn mismatched_hash_is_typed() {
        let s = sample();
        match s.check(SnapshotBackend::Compiled, 1) {
            Err(CoreError::SnapshotMismatch { expected, got }) => {
                assert_eq!(expected, 1);
                assert_eq!(got, 0xdead_beef_1234_5678);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        match s.check(SnapshotBackend::Interp, s.design_hash()) {
            Err(CoreError::SnapshotFormat { reason }) => {
                assert!(reason.contains("backend"), "{reason}");
            }
            other => panic!("expected format error, got {other:?}"),
        }
        assert!(s.check(SnapshotBackend::Compiled, s.design_hash()).is_ok());
    }

    #[test]
    fn json_rendering_is_stable() {
        let mut s = SimSnapshot::new(SnapshotBackend::Interp, 0x10, 3);
        s.push_section("nets", vec![5, 6]);
        assert_eq!(
            s.to_json(),
            "{\"version\":1,\"backend\":\"interp\",\"design_hash\":\"0x0000000000000010\",\
             \"cycle\":3,\"sections\":{\"nets\":[5,6]}}"
        );
    }
}
