//! Cycle-true fault injection on top of any [`Simulator`] back-end.
//!
//! The gate-level engine ([`ocapi-gatesim`]'s `fault` module) grades
//! stuck-at coverage on synthesized netlists; this module moves fault
//! injection up to the SFG/cycle-true level, where architectural
//! exploration happens. A [`FaultySim`] wraps an [`InterpSim`] or
//! [`CompiledSim`] (anything implementing [`Simulator`] with net/register
//! peek-poke support) and corrupts state at the start of selected cycles:
//!
//! * **transient bit flips** — one bit of a register, primary input or
//!   named net inverted for one cycle (an SEU model);
//! * **stuck-at faults** — one bit forced to 0 or 1 for a cycle window
//!   (a hard-defect model).
//!
//! Faults are scheduled by a declarative [`FaultPlan`]; plans can be
//! built explicitly or sampled with the deterministic in-tree
//! [`XorShift64`](crate::rng::XorShift64) PRNG, so every campaign is
//! reproducible from its seed. [`run_campaign`] sweeps a list of fault
//! events against a golden (fault-free) run and classifies each as
//! masked, silently corrupting, or detected — the raw material for
//! detection-latency and graceful-degradation studies (see the
//! `fault_coverage` and `ber_sweep` benchmark binaries).
//!
//! Because both cycle-true back-ends expose identical peek/poke
//! semantics, the interpreted and compiled simulators stay
//! **cycle-equivalent under every injected fault** — the
//! `fault_injection` integration test drives both through identical
//! plans and asserts identical traces.
//!
//! [`InterpSim`]: crate::InterpSim
//! [`CompiledSim`]: crate::CompiledSim
//! [`ocapi-gatesim`]: https://example.org/asic-dse

use crate::rng::XorShift64;
use crate::sim::Simulator;
use crate::system::System;
use crate::trace::Trace;
use crate::value::Value;
use crate::CoreError;

use ocapi_fixp::Fix;
use ocapi_obs::{Counter, EventLog, Registry};

/// A state element a fault can target.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A named net: `instance.port` or a primary-input name, exactly as
    /// accepted by [`Simulator::poke_net`].
    Net(String),
    /// A register of a timed component instance.
    Reg {
        /// Timed-instance name.
        instance: String,
        /// Register name within the component.
        reg: String,
    },
}

impl FaultSite {
    /// Convenience constructor for a net site.
    pub fn net(name: &str) -> FaultSite {
        FaultSite::Net(name.to_owned())
    }

    /// Convenience constructor for a register site.
    pub fn reg(instance: &str, reg: &str) -> FaultSite {
        FaultSite::Reg {
            instance: instance.to_owned(),
            reg: reg.to_owned(),
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSite::Net(n) => write!(f, "net {n}"),
            FaultSite::Reg { instance, reg } => write!(f, "reg {instance}.{reg}"),
        }
    }
}

/// How the targeted bit is corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Invert bit `bit` (modulo the site's width).
    Flip {
        /// Bit position, taken modulo the site's width.
        bit: u32,
    },
    /// Force bit `bit` to `level`.
    StuckAt {
        /// Bit position, taken modulo the site's width.
        bit: u32,
        /// The forced level: `true` = stuck-at-1, `false` = stuck-at-0.
        level: bool,
    },
}

/// One scheduled fault: a site, a corruption kind, and a cycle window.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Where to inject.
    pub site: FaultSite,
    /// What to do to the value.
    pub kind: FaultKind,
    /// First cycle (as reported by [`Simulator::cycle`] *before* the
    /// step) at which the fault is applied.
    pub cycle: u64,
    /// Number of consecutive cycles the fault is applied (≥ 1).
    pub duration: u64,
}

impl FaultEvent {
    /// A single-cycle transient bit flip at `cycle`.
    pub fn flip(site: FaultSite, bit: u32, cycle: u64) -> FaultEvent {
        FaultEvent {
            site,
            kind: FaultKind::Flip { bit },
            cycle,
            duration: 1,
        }
    }

    /// A stuck-at fault held for `duration` cycles starting at `cycle`.
    pub fn stuck_at(
        site: FaultSite,
        bit: u32,
        level: bool,
        cycle: u64,
        duration: u64,
    ) -> FaultEvent {
        FaultEvent {
            site,
            kind: FaultKind::StuckAt { bit, level },
            cycle,
            duration: duration.max(1),
        }
    }

    /// Whether the fault is applied in the step beginning at `cycle`.
    pub fn active_at(&self, cycle: u64) -> bool {
        cycle >= self.cycle && cycle - self.cycle < self.duration.max(1)
    }
}

/// A declarative schedule of fault events.
///
/// ```
/// use ocapi::{FaultEvent, FaultPlan, FaultSite};
///
/// let plan = FaultPlan::new()
///     .with(FaultEvent::flip(FaultSite::reg("u0", "r"), 2, 10))
///     .with(FaultEvent::stuck_at(FaultSite::net("bit_in"), 0, true, 4, 8));
/// assert_eq!(plan.events().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder-style append.
    #[must_use]
    pub fn with(mut self, event: FaultEvent) -> FaultPlan {
        self.events.push(event);
        self
    }

    /// Appends an event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Every injectable site of `sys`: all registers of all timed
    /// instances, then all nets (primary inputs included — their nets
    /// carry the primary-input name).
    pub fn sites(sys: &System) -> Vec<FaultSite> {
        let mut out = Vec::new();
        for t in &sys.timed {
            for r in &t.comp.regs {
                out.push(FaultSite::reg(&t.name, &r.name));
            }
        }
        for net in &sys.nets {
            out.push(FaultSite::Net(net.name.clone()));
        }
        out
    }

    /// Samples a random plan: each cycle in `0..cycles` injects a
    /// single-cycle bit flip with probability `rate`, at a uniformly
    /// chosen site and bit. Deterministic in `seed`.
    pub fn random(sys: &System, cycles: u64, rate: f64, seed: u64) -> FaultPlan {
        let sites = FaultPlan::sites(sys);
        let mut plan = FaultPlan::new();
        if sites.is_empty() {
            return plan;
        }
        let mut rng = XorShift64::new(seed);
        for c in 0..cycles {
            if rng.chance(rate) {
                let site = sites[rng.index(sites.len())].clone();
                let width = site_width(sys, &site);
                let bit = rng.below(u64::from(width)) as u32;
                plan.push(FaultEvent::flip(site, bit, c));
            }
        }
        plan
    }

    /// The bit width of a site's value (1 for unknown sites), for
    /// choosing bit positions when building a plan by hand.
    pub fn site_width(sys: &System, site: &FaultSite) -> u32 {
        site_width(sys, site)
    }
}

/// The bit width of a site's value, for bit-position sampling.
fn site_width(sys: &System, site: &FaultSite) -> u32 {
    let w = match site {
        FaultSite::Net(name) => sys
            .nets
            .iter()
            .find(|n| &n.name == name)
            .map(|n| n.ty.width()),
        FaultSite::Reg { instance, reg } => sys
            .timed
            .iter()
            .find(|t| &t.name == instance)
            .and_then(|t| t.comp.regs.iter().find(|r| &r.name == reg))
            .map(|r| r.ty.width()),
    };
    w.unwrap_or(1).max(1)
}

/// Applies `kind` to `v`, staying inside the value's own representation:
/// bit words stay masked, fixed-point mantissas stay in range (the
/// corrupted word is re-sign-extended inside the declared word length),
/// floats are corrupted in their IEEE-754 bit pattern.
pub(crate) fn corrupt(v: Value, kind: FaultKind) -> Value {
    let (bit, stuck) = match kind {
        FaultKind::Flip { bit } => (bit, None),
        FaultKind::StuckAt { bit, level } => (bit, Some(level)),
    };
    let twiddle = |bits: u64, width: u32| -> u64 {
        let b = bit % width.max(1);
        match stuck {
            None => bits ^ (1u64 << b),
            Some(true) => bits | (1u64 << b),
            Some(false) => bits & !(1u64 << b),
        }
    };
    match v {
        Value::Bool(x) => Value::Bool(match stuck {
            None => !x,
            Some(level) => level,
        }),
        Value::Bits { width, bits } => Value::Bits {
            width,
            bits: twiddle(bits, width),
        },
        Value::Fixed(f) => {
            let fmt = f.format();
            let wl = fmt.wl();
            let raw = twiddle(f.mantissa() as u64, wl);
            // Sign-extend within the word length: any wl-bit pattern is a
            // representable mantissa, so this cannot over/underflow.
            let mant = ((raw << (64 - wl)) as i64) >> (64 - wl);
            Value::Fixed(Fix::from_raw(mant, fmt))
        }
        Value::Float(x) => Value::Float(f64::from_bits(twiddle(x.to_bits(), 64))),
    }
}

/// A fault-injecting wrapper around a cycle-true simulator.
///
/// Faults scheduled for the coming cycle are applied to the wrapped
/// simulator's state (via peek/poke) at the start of every
/// [`Simulator::step`], then the step runs normally. All other
/// [`Simulator`] operations delegate unchanged, so a `FaultySim` drops
/// into any harness that drives a `dyn Simulator`.
#[derive(Debug)]
pub struct FaultySim<S: Simulator> {
    inner: S,
    plan: FaultPlan,
    obs: Option<(Counter, EventLog)>,
}

impl<S: Simulator> FaultySim<S> {
    /// Wraps `inner`, scheduling the faults of `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> FaultySim<S> {
        FaultySim {
            inner,
            plan,
            obs: None,
        }
    }

    /// Starts reporting into `reg`: every applied fault bumps the
    /// `fault.injected` counter and logs a cycle-stamped `"fault"` event
    /// (site + corruption kind) for forensics.
    pub fn attach_obs(&mut self, reg: &Registry) {
        self.obs = Some((reg.counter("fault.injected"), reg.events().clone()));
    }

    /// The wrapped simulator.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped simulator, mutably.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps the inner simulator.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The fault schedule.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn apply_faults(&mut self) -> Result<(), CoreError> {
        let now = self.inner.cycle();
        for i in 0..self.plan.events.len() {
            if !self.plan.events[i].active_at(now) {
                continue;
            }
            let kind = self.plan.events[i].kind;
            match self.plan.events[i].site.clone() {
                FaultSite::Net(name) => {
                    let v = self.inner.peek_net(&name)?;
                    self.inner.poke_net(&name, corrupt(v, kind))?;
                }
                FaultSite::Reg { instance, reg } => {
                    let v = self.inner.peek_reg(&instance, &reg)?;
                    self.inner.poke_reg(&instance, &reg, corrupt(v, kind))?;
                }
            }
            if let Some((injected, events)) = &self.obs {
                injected.incr();
                events.record(
                    now,
                    "fault",
                    format!("{} {:?}", self.plan.events[i].site, kind),
                );
            }
        }
        Ok(())
    }
}

impl<S: Simulator> Simulator for FaultySim<S> {
    fn set_input(&mut self, name: &str, value: Value) -> Result<(), CoreError> {
        self.inner.set_input(name, value)
    }

    fn step(&mut self) -> Result<(), CoreError> {
        self.apply_faults()?;
        self.inner.step()
    }

    fn output(&self, name: &str) -> Result<Value, CoreError> {
        self.inner.output(name)
    }

    fn cycle(&self) -> u64 {
        self.inner.cycle()
    }

    fn enable_trace(&mut self) {
        self.inner.enable_trace();
    }

    fn trace(&self) -> &Trace {
        self.inner.trace()
    }

    fn peek_net(&self, name: &str) -> Result<Value, CoreError> {
        self.inner.peek_net(name)
    }

    fn poke_net(&mut self, name: &str, value: Value) -> Result<(), CoreError> {
        self.inner.poke_net(name, value)
    }

    fn peek_reg(&self, instance: &str, reg: &str) -> Result<Value, CoreError> {
        self.inner.peek_reg(instance, reg)
    }

    fn poke_reg(&mut self, instance: &str, reg: &str, value: Value) -> Result<(), CoreError> {
        self.inner.poke_reg(instance, reg, value)
    }
}

/// What one injected fault did to the design, relative to the golden run.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultOutcome {
    /// Outputs matched the golden trace cycle-for-cycle: the fault was
    /// logically masked.
    Masked,
    /// The run completed but a primary output diverged — the dangerous
    /// case: wrong answers with no alarm.
    SilentCorruption {
        /// First cycle (0-based) whose outputs differ from golden.
        first_divergence: u64,
    },
    /// The simulator itself flagged the fault with a typed error (e.g. a
    /// corrupted guard producing [`CoreError::ValueType`]).
    Detected {
        /// Cycle at which the error surfaced.
        cycle: u64,
        /// The reported error.
        error: CoreError,
    },
    /// The run hit a watchdog budget ([`CoreError::BudgetExceeded`]) —
    /// e.g. a fault that drove the design into a livelock the cycle
    /// budget cut short. Kept separate from [`FaultOutcome::Detected`]
    /// because the design did *not* flag the fault; the harness killed
    /// the run.
    TimedOut {
        /// Cycle at which the budget tripped.
        cycle: u64,
        /// Which budget tripped.
        kind: crate::sim::budget::BudgetKind,
    },
}

/// Aggregate result of a fault campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Per-event outcome, in the order the events were supplied.
    pub outcomes: Vec<(FaultEvent, FaultOutcome)>,
}

impl CampaignReport {
    /// Number of injected faults.
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    /// Faults with no observable effect.
    pub fn masked(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, o)| matches!(o, FaultOutcome::Masked))
            .count()
    }

    /// Faults that corrupted outputs without raising any error.
    pub fn silent(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, o)| matches!(o, FaultOutcome::SilentCorruption { .. }))
            .count()
    }

    /// Faults the simulator reported as errors.
    pub fn detected(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, o)| matches!(o, FaultOutcome::Detected { .. }))
            .count()
    }

    /// Faulty runs killed by a watchdog budget rather than completing or
    /// raising a design-level error.
    pub fn timed_out(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, o)| matches!(o, FaultOutcome::TimedOut { .. }))
            .count()
    }

    /// Fraction of faults that silently corrupted outputs (0 if none
    /// were injected).
    pub fn silent_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.silent() as f64 / self.outcomes.len() as f64
        }
    }

    /// Mean cycles from injection to first observable divergence, over
    /// the silently-corrupting faults. `None` if there were none.
    pub fn mean_detection_latency(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0u64;
        for (e, o) in &self.outcomes {
            let at = match o {
                FaultOutcome::SilentCorruption { first_divergence } => *first_divergence,
                FaultOutcome::Detected { cycle, .. } => *cycle,
                FaultOutcome::Masked | FaultOutcome::TimedOut { .. } => continue,
            };
            sum += at.saturating_sub(e.cycle) as f64;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }
}

/// Values compared for trace equality; floats by bit pattern so NaNs
/// compare equal to themselves.
fn same_value(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// First cycle at which any non-input trace signal differs, if any.
fn first_output_divergence(golden: &Trace, faulty: &Trace) -> Option<u64> {
    let cycles = golden.len().min(faulty.len());
    for c in 0..cycles {
        for (g, f) in golden.signals.iter().zip(&faulty.signals) {
            if g.is_input {
                continue;
            }
            if !same_value(&g.values[c], &f.values[c]) {
                return Some(c as u64);
            }
        }
    }
    None
}

/// Runs the golden (fault-free) reference over `cycles` cycles and
/// returns its recorded trace.
fn golden_trace<S: Simulator>(
    make_sim: &mut impl FnMut() -> Result<S, CoreError>,
    stimulus: &mut impl FnMut(&mut dyn Simulator, u64) -> Result<(), CoreError>,
    cycles: u64,
) -> Result<Trace, CoreError> {
    let mut golden_sim = make_sim()?;
    golden_sim.enable_trace();
    for c in 0..cycles {
        stimulus(&mut golden_sim, c)?;
        golden_sim.step()?;
    }
    Ok(golden_sim.trace().clone())
}

/// One faulty run, classified against the golden trace. This is the
/// work item of both the sequential and the sharded campaign drivers,
/// so the two are outcome-identical by construction.
fn run_event<S: Simulator>(
    make_sim: &mut impl FnMut() -> Result<S, CoreError>,
    stimulus: &mut impl FnMut(&mut dyn Simulator, u64) -> Result<(), CoreError>,
    cycles: u64,
    golden: &Trace,
    event: &FaultEvent,
) -> Result<FaultOutcome, CoreError> {
    let plan = FaultPlan::new().with(event.clone());
    let mut sim = FaultySim::new(make_sim()?, plan);
    sim.enable_trace();
    let mut detected: Option<(u64, CoreError)> = None;
    for c in 0..cycles {
        stimulus(&mut sim, c)?;
        if let Err(e) = sim.step() {
            detected = Some((c, e));
            break;
        }
    }
    Ok(match detected {
        Some((cycle, error)) => classify_error(cycle, error),
        None => match first_output_divergence(golden, sim.trace()) {
            Some(first_divergence) => FaultOutcome::SilentCorruption { first_divergence },
            None => FaultOutcome::Masked,
        },
    })
}

/// Classifies a faulty run's error: budget trips become
/// [`FaultOutcome::TimedOut`] (the harness killed the run), everything
/// else is a design-level [`FaultOutcome::Detected`]. Budget hits never
/// abort a campaign shard — the item is classified and the sweep goes on.
fn classify_error(cycle: u64, error: CoreError) -> FaultOutcome {
    match error {
        CoreError::BudgetExceeded { kind, .. } => FaultOutcome::TimedOut { cycle, kind },
        error => FaultOutcome::Detected { cycle, error },
    }
}

/// Runs a fault campaign: one golden run plus one faulty run per event,
/// each over `cycles` cycles with the same `stimulus` closure (called
/// before every step with the current cycle number).
///
/// `make_sim` builds a fresh simulator per run, so runs are independent;
/// any back-end with peek/poke support works, and mixing back-ends
/// across campaigns is fine because they are cycle-equivalent.
///
/// For large campaigns, [`run_campaign_par`] shards the faulty runs
/// across worker threads and produces the identical report.
///
/// # Errors
///
/// Propagates errors from `make_sim`, from the golden (fault-free) run,
/// and from stimulus application. Errors raised by a *faulty* run's step
/// are not errors of the campaign — they are recorded as
/// [`FaultOutcome::Detected`].
pub fn run_campaign<S: Simulator>(
    mut make_sim: impl FnMut() -> Result<S, CoreError>,
    mut stimulus: impl FnMut(&mut dyn Simulator, u64) -> Result<(), CoreError>,
    cycles: u64,
    events: &[FaultEvent],
) -> Result<CampaignReport, CoreError> {
    let golden = golden_trace(&mut make_sim, &mut stimulus, cycles)?;
    let mut report = CampaignReport::default();
    for event in events {
        let outcome = run_event(&mut make_sim, &mut stimulus, cycles, &golden, event)?;
        report.outcomes.push((event.clone(), outcome));
    }
    Ok(report)
}

/// [`run_campaign`] with the faulty runs sharded across
/// [`ParConfig::threads`](crate::sim::par::ParConfig::threads) worker
/// threads.
///
/// The golden run executes once on the calling thread; every fault
/// event is then an independent work item of the
/// [`par`](crate::sim::par) engine. Because each item builds its own
/// simulator, is classified against the shared golden trace, and the
/// merged report is assembled in event order, the returned
/// [`CampaignReport`] is **bit-identical for every thread count** —
/// `ParConfig::single()` reproduces [`run_campaign`] exactly.
///
/// # Errors
///
/// As [`run_campaign`], plus [`CoreError::WorkerPanic`] when a faulty
/// run's closure panics in a worker (the campaign still surfaces an
/// error instead of hanging or aborting, and the reported failure is
/// always the lowest-indexed one).
pub fn run_campaign_par<S: Simulator>(
    pool: &crate::sim::par::ParConfig,
    make_sim: impl Fn() -> Result<S, CoreError> + Sync,
    stimulus: impl Fn(&mut dyn Simulator, u64) -> Result<(), CoreError> + Sync,
    cycles: u64,
    events: &[FaultEvent],
) -> Result<CampaignReport, CoreError> {
    let golden = golden_trace(&mut || make_sim(), &mut |s, c| stimulus(s, c), cycles)?;
    let outcomes = crate::sim::par::map_indexed(pool, events, |_, event| {
        run_event(
            &mut || make_sim(),
            &mut |s, c| stimulus(s, c),
            cycles,
            &golden,
            event,
        )
        .map(|outcome| (event.clone(), outcome))
    })
    .map_err(|e| match e {
        crate::sim::par::ParError::Task { error, .. } => error,
        crate::sim::par::ParError::Panic { index } => CoreError::WorkerPanic { index },
    })?;
    Ok(CampaignReport { outcomes })
}

/// Applies every event of `plan` active at the batch's current cycle to
/// one lane of a [`BatchedSim`](crate::sim::batch::BatchedSim),
/// mirroring `FaultySim::apply_faults` exactly (peek, corrupt, poke — in
/// event order). Lane-batched Monte-Carlo drivers call this before each
/// step and mask the lane
/// ([`BatchedSim::fail_lane`](crate::sim::batch::BatchedSim::fail_lane))
/// when it fails, so one lane's bad fault site never aborts its batch.
///
/// # Errors
///
/// Returns the first peek/poke error ([`CoreError::UnknownName`] for an
/// unknown site, [`CoreError::ValueType`] for a type conflict).
pub fn apply_plan_lane(
    sim: &mut crate::sim::batch::BatchedSim,
    lane: usize,
    plan: &FaultPlan,
) -> Result<(), CoreError> {
    let now = sim.cycle();
    for event in plan.events() {
        if !event.active_at(now) {
            continue;
        }
        match &event.site {
            FaultSite::Net(name) => {
                let v = sim.peek_net_lane(lane, name)?;
                sim.poke_net_lane(lane, name, corrupt(v, event.kind))?;
            }
            FaultSite::Reg { instance, reg } => {
                let v = sim.peek_reg_lane(lane, instance, reg)?;
                sim.poke_reg_lane(lane, instance, reg, corrupt(v, event.kind))?;
            }
        }
    }
    Ok(())
}

/// One batched chunk of faulty runs: `chunk.len()` lanes stepped through
/// one shared tape walk per cycle, each lane injecting its own event.
/// This is the work item of both batched campaign drivers, so — as with
/// [`run_event`] — the sequential and sharded paths are
/// outcome-identical by construction.
///
/// Per-lane semantics replicate [`run_event`] exactly: a failing fault
/// application or step masks *that lane* at the pre-step cycle (becoming
/// its [`FaultOutcome::Detected`] record) while the remaining lanes keep
/// running; surviving lanes are classified against the golden trace.
/// How a batched campaign builds its compiled simulators: compile at a
/// level per chunk, or instantiate from one shared cached tape.
#[derive(Clone, Copy)]
enum TapeSource<'a> {
    Level(crate::sim::opt::OptLevel),
    Cached(&'a crate::sim::hash::CompiledTape),
}

impl TapeSource<'_> {
    fn batch(self, systems: Vec<System>) -> Result<crate::sim::batch::BatchedSim, CoreError> {
        match self {
            TapeSource::Level(level) => crate::sim::batch::BatchedSim::new_with(systems, level),
            TapeSource::Cached(tape) => crate::sim::batch::BatchedSim::from_tape(systems, tape),
        }
    }

    fn scalar(self, sys: System) -> Result<crate::sim::compiled::CompiledSim, CoreError> {
        match self {
            TapeSource::Level(level) => crate::sim::compiled::CompiledSim::new_with(sys, level),
            TapeSource::Cached(tape) => crate::sim::compiled::CompiledSim::from_tape(sys, tape),
        }
    }
}

fn run_event_chunk(
    make_sys: &mut impl FnMut() -> Result<System, CoreError>,
    stimulus: &mut impl FnMut(&mut dyn Simulator, u64) -> Result<(), CoreError>,
    cycles: u64,
    golden: &Trace,
    chunk: &[FaultEvent],
    source: TapeSource<'_>,
) -> Result<Vec<FaultOutcome>, CoreError> {
    let mut systems = Vec::with_capacity(chunk.len());
    for _ in 0..chunk.len() {
        systems.push(make_sys()?);
    }
    let mut sim = source.batch(systems)?;
    sim.enable_trace();
    let plans: Vec<FaultPlan> = chunk
        .iter()
        .map(|e| FaultPlan::new().with(e.clone()))
        .collect();
    for c in 0..cycles {
        stimulus(&mut sim, c)?;
        for (lane, plan) in plans.iter().enumerate() {
            if !sim.alive(lane) {
                continue;
            }
            if let Err(e) = apply_plan_lane(&mut sim, lane, plan) {
                sim.fail_lane(lane, e);
            }
        }
        if sim.step().is_err() {
            // Every lane is masked; the per-lane errors are recorded.
            break;
        }
    }
    Ok((0..chunk.len())
        .map(|lane| match sim.lane_error(lane) {
            Some((cycle, error)) => classify_error(*cycle, error.clone()),
            None => match sim
                .trace_lane(lane)
                .and_then(|t| first_output_divergence(golden, t))
            {
                Some(first_divergence) => FaultOutcome::SilentCorruption { first_divergence },
                None => FaultOutcome::Masked,
            },
        })
        .collect())
}

/// [`run_campaign`] over the lane-batched compiled back-end
/// ([`BatchedSim`](crate::sim::batch::BatchedSim)): events are grouped
/// into chunks of `lanes` and every chunk walks the micro-op tape once
/// per cycle for all of its lanes.
///
/// The golden run uses the scalar compiled back-end at the same `level`.
/// `stimulus` must be a pure function of the cycle number (it is invoked
/// once per cycle and broadcast to every live lane), which every
/// campaign stimulus already satisfies — per-run divergence comes from
/// the injected faults, never the stimulus.
///
/// **Determinism:** a lane runs the event at global index
/// `chunk * lanes + lane` and injects exactly what the scalar path
/// injects for that index, so the classification of every event is
/// byte-identical to [`run_campaign`] over the compiled back-end for
/// every lane count — `lanes = 1` reproduces it one run at a time.
/// Drivers that *sample* per-event randomness must key it on that global
/// index (e.g. [`XorShift64::stream`]), never on lane position.
///
/// # Errors
///
/// As [`run_campaign`]: errors from system construction, the golden run
/// and stimulus application propagate; per-lane faulty-run errors are
/// recorded as [`FaultOutcome::Detected`].
pub fn run_campaign_batched(
    mut make_sys: impl FnMut() -> Result<System, CoreError>,
    mut stimulus: impl FnMut(&mut dyn Simulator, u64) -> Result<(), CoreError>,
    cycles: u64,
    events: &[FaultEvent],
    lanes: usize,
    level: crate::sim::opt::OptLevel,
) -> Result<CampaignReport, CoreError> {
    let lanes = lanes.max(1);
    let golden = golden_trace(
        &mut || crate::sim::compiled::CompiledSim::new_with(make_sys()?, level),
        &mut stimulus,
        cycles,
    )?;
    let mut report = CampaignReport::default();
    for chunk in events.chunks(lanes) {
        let outcomes = run_event_chunk(
            &mut make_sys,
            &mut stimulus,
            cycles,
            &golden,
            chunk,
            TapeSource::Level(level),
        )?;
        report.outcomes.extend(chunk.iter().cloned().zip(outcomes));
    }
    Ok(report)
}

/// [`run_campaign_batched`] with the chunks sharded across
/// [`ParConfig::threads`](crate::sim::par::ParConfig::threads) worker
/// threads — the lanes × threads composition of DESIGN.md §7/§11.
///
/// Chunk composition depends only on the event order and `lanes`, and
/// the merged report is assembled in chunk order, so the returned
/// [`CampaignReport`] is bit-identical for every thread count *and*
/// every lane count.
///
/// # Errors
///
/// As [`run_campaign_batched`], plus [`CoreError::WorkerPanic`] when a
/// chunk's closure panics in a worker.
pub fn run_campaign_batched_par(
    pool: &crate::sim::par::ParConfig,
    make_sys: impl Fn() -> Result<System, CoreError> + Sync,
    stimulus: impl Fn(&mut dyn Simulator, u64) -> Result<(), CoreError> + Sync,
    cycles: u64,
    events: &[FaultEvent],
    lanes: usize,
    level: crate::sim::opt::OptLevel,
) -> Result<CampaignReport, CoreError> {
    let lanes = lanes.max(1);
    let golden = golden_trace(
        &mut || crate::sim::compiled::CompiledSim::new_with(make_sys()?, level),
        &mut |s, c| stimulus(s, c),
        cycles,
    )?;
    run_chunks_par(
        pool,
        make_sys,
        stimulus,
        cycles,
        events,
        lanes,
        golden,
        TapeSource::Level(level),
    )
}

/// [`run_campaign_batched_par`] over a cached
/// [`CompiledTape`](crate::CompiledTape): the golden run and every
/// faulty chunk instantiate simulators from the tape instead of
/// recompiling per chunk — the campaign path of the persistent
/// simulation service, where one cached compilation serves thousands of
/// jobs. Classification is byte-identical to
/// [`run_campaign_batched_par`] at the tape's level, for every lane
/// count and thread count.
///
/// # Errors
///
/// As [`run_campaign_batched_par`], plus [`CoreError::TapeMismatch`]
/// when `make_sys` builds a system the tape was not compiled from.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_cached_par(
    pool: &crate::sim::par::ParConfig,
    make_sys: impl Fn() -> Result<System, CoreError> + Sync,
    tape: &crate::sim::hash::CompiledTape,
    stimulus: impl Fn(&mut dyn Simulator, u64) -> Result<(), CoreError> + Sync,
    cycles: u64,
    events: &[FaultEvent],
    lanes: usize,
) -> Result<CampaignReport, CoreError> {
    let lanes = lanes.max(1);
    let source = TapeSource::Cached(tape);
    let golden = golden_trace(
        &mut || source.scalar(make_sys()?),
        &mut |s, c| stimulus(s, c),
        cycles,
    )?;
    run_chunks_par(
        pool, make_sys, stimulus, cycles, events, lanes, golden, source,
    )
}

/// The shared sharded chunk loop of both batched campaign drivers.
#[allow(clippy::too_many_arguments)]
fn run_chunks_par(
    pool: &crate::sim::par::ParConfig,
    make_sys: impl Fn() -> Result<System, CoreError> + Sync,
    stimulus: impl Fn(&mut dyn Simulator, u64) -> Result<(), CoreError> + Sync,
    cycles: u64,
    events: &[FaultEvent],
    lanes: usize,
    golden: Trace,
    source: TapeSource<'_>,
) -> Result<CampaignReport, CoreError> {
    let chunks: Vec<&[FaultEvent]> = events.chunks(lanes).collect();
    let parts = crate::sim::par::map_indexed(pool, &chunks, |_, chunk| {
        run_event_chunk(
            &mut || make_sys(),
            &mut |s, c| stimulus(s, c),
            cycles,
            &golden,
            chunk,
            source,
        )
        .map(|outcomes| {
            chunk
                .iter()
                .cloned()
                .zip(outcomes)
                .collect::<Vec<(FaultEvent, FaultOutcome)>>()
        })
    })
    .map_err(|e| match e {
        crate::sim::par::ParError::Task { error, .. } => error,
        crate::sim::par::ParError::Panic { index } => CoreError::WorkerPanic { index },
    })?;
    Ok(CampaignReport {
        outcomes: parts.into_iter().flatten().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SigType;
    use crate::{Component, InterpSim, System};
    use ocapi_fixp::{Format, Overflow, Rounding};

    fn counter_system() -> System {
        let c = Component::build("counter");
        let out = c.output("count", SigType::Bits(8)).unwrap();
        let r = c.reg("r", SigType::Bits(8)).unwrap();
        let sfg = c.sfg("tick").unwrap();
        let q = c.q(r);
        sfg.drive(out, &q).unwrap();
        sfg.next(r, &(q.clone() + c.const_bits(8, 1))).unwrap();
        let comp = c.finish().unwrap();
        let mut sb = System::build("demo");
        let inst = sb.add_component("u0", comp).unwrap();
        sb.output("count", inst, "count").unwrap();
        sb.finish().unwrap()
    }

    #[test]
    fn corrupt_flips_and_forces_bits() {
        let v = Value::bits(8, 0b0001_0010);
        assert_eq!(
            corrupt(v, FaultKind::Flip { bit: 1 }),
            Value::bits(8, 0b0001_0000)
        );
        assert_eq!(
            corrupt(
                v,
                FaultKind::StuckAt {
                    bit: 0,
                    level: true
                }
            ),
            Value::bits(8, 0b0001_0011)
        );
        assert_eq!(
            corrupt(
                v,
                FaultKind::StuckAt {
                    bit: 4,
                    level: false
                }
            ),
            Value::bits(8, 0b0000_0010)
        );
        // Bit positions wrap at the width instead of escaping it.
        assert_eq!(
            corrupt(v, FaultKind::Flip { bit: 9 }),
            Value::bits(8, 0b0001_0000)
        );
        assert_eq!(
            corrupt(Value::Bool(false), FaultKind::Flip { bit: 0 }),
            Value::Bool(true)
        );
    }

    #[test]
    fn corrupt_fixed_stays_in_range() {
        let fmt = Format::new(6, 2).unwrap();
        // Flip every bit position of every representable mantissa: the
        // result must always be constructible (no assert in from_raw).
        for m in -32..=31 {
            let v = Value::Fixed(Fix::from_raw(m, fmt));
            for bit in 0..6 {
                let c = corrupt(v, FaultKind::Flip { bit });
                let f = match c {
                    Value::Fixed(f) => f,
                    other => panic!("unexpected {other:?}"),
                };
                assert_eq!(f.format(), fmt);
                // Double-flip restores the value.
                assert_eq!(corrupt(c, FaultKind::Flip { bit }), v);
            }
        }
    }

    #[test]
    fn corrupt_float_flips_bit_pattern() {
        let v = Value::Float(1.5);
        let c = corrupt(v, FaultKind::Flip { bit: 63 });
        assert_eq!(c, Value::Float(-1.5));
        assert_eq!(corrupt(c, FaultKind::Flip { bit: 63 }), v);
    }

    #[test]
    fn transient_flip_perturbs_one_cycle() {
        let sim = InterpSim::new(counter_system()).unwrap();
        let plan = FaultPlan::new().with(FaultEvent::flip(FaultSite::reg("u0", "r"), 7, 3));
        let mut f = FaultySim::new(sim, plan);
        for expect in [0u64, 1, 2, 128 + 3, 128 + 4] {
            f.step().unwrap();
            assert_eq!(
                f.output("count").unwrap(),
                Value::bits(8, expect),
                "cycle {}",
                f.cycle()
            );
        }
    }

    #[test]
    fn stuck_at_holds_for_duration() {
        let sim = InterpSim::new(counter_system()).unwrap();
        // Force bit 0 of the counter register to 0 for cycles 0..4.
        let plan = FaultPlan::new().with(FaultEvent::stuck_at(
            FaultSite::reg("u0", "r"),
            0,
            false,
            0,
            4,
        ));
        let mut f = FaultySim::new(sim, plan);
        let mut seen = Vec::new();
        for _ in 0..6 {
            f.step().unwrap();
            seen.push(f.output("count").unwrap());
        }
        // Each faulty cycle starts by forcing r's LSB low: r is pinned
        // to 0, so the count stays 0 and only resumes after the window.
        assert_eq!(
            seen,
            [0u64, 0, 0, 0, 1, 2]
                .iter()
                .map(|v| Value::bits(8, *v))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn plan_random_is_deterministic_and_in_bounds() {
        let sys = counter_system();
        let a = FaultPlan::random(&sys, 100, 0.3, 42);
        let b = FaultPlan::random(&sys, 100, 0.3, 42);
        assert_eq!(a, b);
        let c = FaultPlan::random(&sys, 100, 0.3, 43);
        assert_ne!(a, c);
        assert!(!a.events().is_empty());
        for e in a.events() {
            assert!(e.cycle < 100);
            assert_eq!(e.duration, 1);
        }
    }

    #[test]
    fn campaign_classifies_outcomes() {
        let events = vec![
            // Flip the counter MSB: visible on the output → silent.
            FaultEvent::flip(FaultSite::reg("u0", "r"), 7, 2),
            // Flip a bit after the run window: no effect → masked.
            FaultEvent::flip(FaultSite::reg("u0", "r"), 0, 50),
        ];
        let report = run_campaign(
            || InterpSim::new(counter_system()),
            |_, _| Ok(()),
            10,
            &events,
        )
        .unwrap();
        assert_eq!(report.total(), 2);
        assert_eq!(report.silent(), 1);
        assert_eq!(report.masked(), 1);
        assert_eq!(report.detected(), 0);
        assert!((report.silent_rate() - 0.5).abs() < 1e-12);
        match &report.outcomes[0].1 {
            FaultOutcome::SilentCorruption { first_divergence } => {
                assert_eq!(*first_divergence, 2)
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(report.mean_detection_latency(), Some(0.0));
    }

    #[test]
    fn poke_type_mismatch_is_reported() {
        let mut sim = InterpSim::new(counter_system()).unwrap();
        let fmt = Format::new(8, 4).unwrap();
        let bad = Value::Fixed(Fix::from_f64(
            0.5,
            fmt,
            Rounding::Nearest,
            Overflow::Saturate,
        ));
        let err = sim.poke_reg("u0", "r", bad).unwrap_err();
        assert!(matches!(err, CoreError::ValueType { .. }));
        let err = sim.poke_net("nope", Value::Bool(true)).unwrap_err();
        assert!(matches!(err, CoreError::UnknownName { .. }));
    }
}
