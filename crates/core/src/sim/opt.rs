//! The tape optimizer of the compiled back-end.
//!
//! The paper's environment regenerates an *optimised* application-specific
//! simulator from the captured SFG data structure, with dead-code
//! elimination named among the semantic checks feeding it (§5). This
//! module is that optimisation step for [`crate::CompiledSim`]: it runs
//! after topological sorting and before micro-op lowering, over the
//! generic [`Instr`] tape, so every pass sees the same slot-typed SSA-like
//! program the monomorphiser sees.
//!
//! Passes, in order (see `DESIGN.md` §9):
//!
//! 1. **Constant folding + copy propagation** — an instruction whose
//!    operands are all compile-time constants is evaluated *once* with the
//!    interpreter's own [`UnOp::apply`]/[`BinOp::apply`] semantics (so
//!    fixed-point quantisation folds bit-identically) and its destination
//!    slot becomes a constant; copies are eliminated by renaming.
//! 2. **Algebraic simplification / strength reduction** — `x*0→0`,
//!    `x*1→x`, `x*2^k→x<<k`, `x&0→0`, `x|0→x`, `x^0→x`, `x+0→x`,
//!    `x-0→x`, `mux(c,a,a)→a`, `mux(const,a,b)→a|b`, same-slot compares.
//!    Every rule is restricted to unsigned `Bits`/`Bool` operands where
//!    the destination type equals the operand type; fixed-point and float
//!    operands are **never** rewritten (a signed multiply must not become
//!    a shift, `0.0*NaN ≠ 0.0`, and fixed-point formats change per op).
//! 3. **Common-subexpression elimination** — hash-based value numbering
//!    keyed on (operator, resolved operand slots); commutative operators
//!    are canonicalised except float add/mul (NaN payloads).
//! 4. **Dead-code elimination** — a backward liveness walk rooted at
//!    register-write selectors (main tape) and FSM guard slots (guard
//!    pre-tape). `Drive` and `Fire` instructions are always live: nets
//!    are the architectural state of the design, observable through
//!    `peek_net` (the fault injector's read primitive) and the trace
//!    taps, and untimed blocks carry side effects.
//! 5. **Slot compaction** — the state vector shrinks to the slots still
//!    referenced by either tape, the net map, register-write selectors,
//!    untimed I/O lists or guard slots.
//!
//! What the optimizer never touches: net slots (externally written by
//! `set_input`/`poke_net` and conditionally by `Drive`) are neither
//! treated as constants nor renamed, which is what keeps the optimised
//! tape equivalent to the interpreter under arbitrary poking.

use std::collections::HashMap;

use crate::value::{BinOp, SigType, UnOp, Value};

use super::compiled::{decode, encode, mask_of, CompiledTransition, Instr, RegWriteSel, UntimedIo};

/// How hard [`crate::CompiledSim::new_with`] optimises the evaluation
/// tape. The default (used by [`crate::CompiledSim::new`]) is `Full`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// Lower the captured graph verbatim (the unoptimised tape).
    None,
    /// Constant folding, copy propagation and algebraic simplification.
    Basic,
    /// `Basic` plus value-numbering CSE, liveness-based dead-code
    /// elimination and slot compaction.
    #[default]
    Full,
}

/// What the optimizer did to one tape, reported through
/// [`crate::CompiledSim::opt_stats`] and (once an observability bundle is
/// attached) the `compiled.opt.*` counters of the deterministic
/// namespace. All counts are pure functions of the captured system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions entering the optimizer (main tape + guard pre-tape).
    pub instrs_in: u64,
    /// Instructions surviving all passes.
    pub instrs_out: u64,
    /// Instructions folded away because every operand was constant.
    pub folded: u64,
    /// Algebraic rewrites (identity/absorbing-element removals,
    /// strength reductions, mux collapses).
    pub algebraic: u64,
    /// Copies eliminated by renaming.
    pub copies: u64,
    /// Instructions removed as duplicates by value numbering.
    pub cse_hits: u64,
    /// Instructions removed by the liveness walk.
    pub dce_removed: u64,
    /// Slots entering the optimizer.
    pub slots_in: u64,
    /// Slots surviving compaction.
    pub slots_out: u64,
    /// Slots reclaimed by compaction.
    pub slots_saved: u64,
}

/// Everything outside the two tapes that holds slot numbers. The passes
/// rename and compact through these so the simulator's external readers
/// (register commit, untimed firing, FSM guards, net map) stay
/// consistent.
pub(crate) struct OptEnv<'a> {
    pub slots: &'a mut Vec<u64>,
    pub slot_ty: &'a mut Vec<SigType>,
    pub net_slot: &'a mut Vec<u32>,
    pub reg_writes: &'a mut Vec<RegWriteSel>,
    pub untimed_io: &'a mut Vec<UntimedIo>,
    pub fsm_tables: &'a mut Vec<Vec<Vec<CompiledTransition>>>,
}

/// Runs the optimizer pipeline over the sorted main tape and the guard
/// pre-tape, rewriting both in place together with the slot-bearing
/// structures in `env`.
pub(crate) fn optimize(
    level: OptLevel,
    tape: &mut Vec<Instr>,
    pre: &mut Vec<Instr>,
    env: &mut OptEnv<'_>,
) -> OptStats {
    let mut stats = OptStats {
        instrs_in: (tape.len() + pre.len()) as u64,
        slots_in: env.slots.len() as u64,
        ..OptStats::default()
    };
    if level == OptLevel::None {
        stats.instrs_out = stats.instrs_in;
        stats.slots_out = stats.slots_in;
        return stats;
    }
    let n = env.slots.len();

    // A slot is a folding-safe constant iff nothing ever writes it: not a
    // net (set_input / poke_net / Drive / Fire), not an untimed output,
    // not any instruction's destination. What remains are the slots
    // allocated for `Const` nodes (and guard-cone constants).
    let mut written = vec![false; n];
    for s in env.net_slot.iter() {
        written[*s as usize] = true;
    }
    for (_, outs) in env.untimed_io.iter() {
        for (s, _) in outs {
            written[*s as usize] = true;
        }
    }
    for i in tape.iter().chain(pre.iter()) {
        if let Some(d) = dst_of(i) {
            written[d as usize] = true;
        }
    }
    let mut is_const: Vec<bool> = written.iter().map(|w| !w).collect();

    // Slot renaming built up by copy propagation / folding / CSE.
    // Invariant: entries always point at their final representative (a
    // slot is only ever renamed at the single point its producer is
    // processed, and representatives are never renamed afterwards), so
    // one lookup fully resolves.
    let mut subst: Vec<u32> = (0..n as u32).collect();
    let full = level == OptLevel::Full;

    // The guard pre-tape executes before transition selection reads the
    // guard slots, i.e. before the main tape; each gets its own value
    // numbering so no instruction is ever renamed onto a slot computed
    // in a *later* phase of the cycle.
    pass(
        tape,
        full,
        &mut subst,
        &mut is_const,
        env.slots,
        env.slot_ty,
        &mut stats,
    );
    pass(
        pre,
        full,
        &mut subst,
        &mut is_const,
        env.slots,
        env.slot_ty,
        &mut stats,
    );

    // Rename the external slot references.
    for w in env.reg_writes.iter_mut() {
        for (_, s) in &mut w.cands {
            *s = subst[*s as usize];
        }
    }
    for (ins, _) in env.untimed_io.iter_mut() {
        for (s, _) in ins {
            *s = subst[*s as usize];
        }
    }
    for tables in env.fsm_tables.iter_mut() {
        for state in tables.iter_mut() {
            for tr in state.iter_mut() {
                if let Some(g) = &mut tr.guard_slot {
                    *g = subst[*g as usize];
                }
            }
        }
    }

    if full {
        // Liveness DCE: the main tape is rooted at the register-write
        // selectors (Drive/Fire are kept unconditionally and root their
        // own reads); the pre-tape is rooted at the guard slots.
        let mut live = vec![false; n];
        for w in env.reg_writes.iter() {
            for (_, s) in &w.cands {
                live[*s as usize] = true;
            }
        }
        dce(tape, &mut live, env.untimed_io, &mut stats);
        let mut live_pre = vec![false; n];
        for tables in env.fsm_tables.iter() {
            for state in tables {
                for tr in state {
                    if let Some(g) = tr.guard_slot {
                        live_pre[g as usize] = true;
                    }
                }
            }
        }
        dce(pre, &mut live_pre, env.untimed_io, &mut stats);

        compact(tape, pre, env, &mut stats);
    }

    stats.instrs_out = (tape.len() + pre.len()) as u64;
    stats.slots_out = env.slots.len() as u64;
    stats
}

/// The computed-value destination of an instruction (`None` for the
/// side-effecting `Drive`/`Fire`, whose write targets are net slots and
/// untimed output slots respectively).
fn dst_of(i: &Instr) -> Option<u32> {
    match i {
        Instr::Copy { dst, .. }
        | Instr::RegRead { dst, .. }
        | Instr::Un { dst, .. }
        | Instr::Bin { dst, .. }
        | Instr::Select { dst, .. } => Some(*dst),
        Instr::Drive { .. } | Instr::Fire { .. } => None,
    }
}

/// Value-numbering key: operator identity plus fully-resolved operand
/// slots. `Copy` never enters the table (it is always propagated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum VnKey {
    Un(UnOp, u32),
    Bin(BinOp, u32, u32),
    Select(u32, u32, u32),
    RegRead(u32, u32),
}

/// Outcome of the algebraic rule table for one instruction.
enum Rewrite {
    /// The destination is the given constant; drop the instruction.
    Const(u64),
    /// The destination is an alias of an existing slot; drop and rename.
    Alias(u32),
    /// Replace the instruction (strength reduction).
    Replace(Instr),
}

/// One forward pass: constant folding, copy propagation, algebraic
/// simplification and (at `Full`) value-numbering CSE. Instructions are
/// visited in tape order, so operand substitutions are always complete
/// when an instruction is reached (the tape is topologically sorted).
fn pass(
    instrs: &mut Vec<Instr>,
    full: bool,
    subst: &mut [u32],
    is_const: &mut [bool],
    slots: &mut [u64],
    slot_ty: &[SigType],
    stats: &mut OptStats,
) {
    let mut vn: HashMap<VnKey, u32> = HashMap::new();
    let mut out: Vec<Instr> = Vec::with_capacity(instrs.len());
    for mut ins in instrs.drain(..) {
        resolve_reads(&mut ins, subst);
        let dst = match dst_of(&ins) {
            None => {
                // Drive/Fire: side effects, always kept.
                out.push(ins);
                continue;
            }
            Some(d) => d as usize,
        };

        // Copy propagation.
        if let Instr::Copy { src, .. } = ins {
            subst[dst] = src;
            if is_const[src as usize] && slot_ty[src as usize] == slot_ty[dst] {
                is_const[dst] = true;
                slots[dst] = slots[src as usize];
            }
            stats.copies += 1;
            continue;
        }

        // Constant folding through the interpreter's own evaluation
        // semantics (bit-identical fixed-point quantisation).
        if let Some(v) = fold(&ins, is_const, slots, slot_ty) {
            if v.sig_type() == slot_ty[dst] {
                slots[dst] = encode(&v);
                is_const[dst] = true;
                stats.folded += 1;
                continue;
            }
        }

        // Algebraic simplification / strength reduction.
        match algebraic(&ins, is_const, slots, slot_ty) {
            Some(Rewrite::Const(bits)) => {
                slots[dst] = bits;
                is_const[dst] = true;
                stats.algebraic += 1;
                continue;
            }
            Some(Rewrite::Alias(s)) => {
                subst[dst] = s;
                stats.algebraic += 1;
                continue;
            }
            Some(Rewrite::Replace(r)) => {
                stats.algebraic += 1;
                ins = r;
            }
            None => {}
        }

        // Value numbering.
        if full {
            let key = vn_key(&ins, slot_ty);
            if let Some(&prev) = vn.get(&key) {
                if slot_ty[prev as usize] == slot_ty[dst] {
                    subst[dst] = prev;
                    stats.cse_hits += 1;
                    continue;
                }
            }
            vn.insert(key, dst as u32);
        }
        out.push(ins);
    }
    *instrs = out;
}

/// Applies the substitution map to every slot an instruction *reads*.
/// Destinations (and `Drive`'s net slot / `Fire`'s I/O lists) are write
/// targets and are never renamed.
fn resolve_reads(ins: &mut Instr, subst: &[u32]) {
    match ins {
        Instr::Copy { src, .. } => *src = subst[*src as usize],
        Instr::Un { a, .. } => *a = subst[*a as usize],
        Instr::Bin { a, b, .. } => {
            *a = subst[*a as usize];
            *b = subst[*b as usize];
        }
        Instr::Select { c, t, e, .. } => {
            *c = subst[*c as usize];
            *t = subst[*t as usize];
            *e = subst[*e as usize];
        }
        Instr::Drive { cands, .. } => {
            for (_, s) in cands {
                *s = subst[*s as usize];
            }
        }
        Instr::RegRead { .. } | Instr::Fire { .. } => {}
    }
}

/// Evaluates an instruction whose operands are all constants, using the
/// same [`UnOp::apply`]/[`BinOp::apply`] the interpreted simulator runs,
/// so folding is bit-identical — including fixed-point quantisation.
fn fold(ins: &Instr, is_const: &[bool], slots: &[u64], slot_ty: &[SigType]) -> Option<Value> {
    let val = |s: u32| decode(slots[s as usize], slot_ty[s as usize]);
    match ins {
        Instr::Un { op, a, .. } if is_const[*a as usize] => Some(op.apply(val(*a))),
        Instr::Bin { op, a, b, .. } if is_const[*a as usize] && is_const[*b as usize] => {
            Some(op.apply(val(*a), val(*b)))
        }
        Instr::Select { c, t, e, .. } if is_const[*c as usize] => {
            // A constant condition selects a branch even when the branch
            // itself is dynamic; the non-constant case aliases below.
            let taken = if slots[*c as usize] != 0 { *t } else { *e };
            if is_const[taken as usize] {
                Some(val(taken))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// The algebraic rule table. Every rule is gated on unsigned `Bits` (or
/// `Bool`) operands whose type equals the destination type, so a rename
/// is transparent; fixed-point and float operands are never rewritten —
/// in particular a signed (fixed-point) multiply by a power of two is
/// *not* strength-reduced to a shift.
fn algebraic(
    ins: &Instr,
    is_const: &[bool],
    slots: &[u64],
    slot_ty: &[SigType],
) -> Option<Rewrite> {
    match ins {
        Instr::Select { c, t, e, .. } => {
            if is_const[*c as usize] {
                // mux(const, a, b) → a or b (taken branch was dynamic).
                return Some(Rewrite::Alias(if slots[*c as usize] != 0 {
                    *t
                } else {
                    *e
                }));
            }
            if t == e {
                // mux(c, a, a) → a.
                return Some(Rewrite::Alias(*t));
            }
            None
        }
        Instr::Un { op, dst, a } => {
            let at = slot_ty[*a as usize];
            if at != slot_ty[*dst as usize] {
                // Identity rules only apply when the alias is
                // type-transparent (e.g. Slice to a narrower width is
                // not, even at lo = 0).
                return None;
            }
            match (op, at) {
                (UnOp::Shl(0) | UnOp::Shr(0), SigType::Bits(_)) => Some(Rewrite::Alias(*a)),
                (UnOp::ToBits(w), SigType::Bits(aw)) if *w == aw => Some(Rewrite::Alias(*a)),
                (UnOp::ToFloat, SigType::Float) => Some(Rewrite::Alias(*a)),
                _ => None,
            }
        }
        Instr::Bin { op, dst, a, b } => {
            let (at, bt) = (slot_ty[*a as usize], slot_ty[*b as usize]);
            let dt = slot_ty[*dst as usize];

            // Same-slot comparison: decided without any constant operand
            // (unsound only for floats, where NaN != NaN).
            if matches!(
                op,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            ) {
                if a == b && at != SigType::Float {
                    let v = matches!(op, BinOp::Eq | BinOp::Le | BinOp::Ge);
                    return Some(Rewrite::Const(v as u64));
                }
                return None;
            }

            // Identity / absorbing-element rules need all three types
            // equal (true for well-typed Bits/Bool logic and Bits
            // arithmetic; false for fixed point, where formats grow).
            if at != dt || bt != dt {
                return None;
            }
            // (constant operand value, the other operand's slot); the
            // both-constant case was already folded.
            let konst = if is_const[*a as usize] {
                Some((slots[*a as usize], *b))
            } else if is_const[*b as usize] {
                Some((slots[*b as usize], *a))
            } else {
                None
            };
            match dt {
                SigType::Bits(w) => {
                    let (cv, other) = konst?;
                    let mask = mask_of(w);
                    match op {
                        BinOp::Mul if cv == 0 => Some(Rewrite::Const(0)),
                        BinOp::Mul if cv == 1 => Some(Rewrite::Alias(other)),
                        BinOp::Mul if cv.is_power_of_two() => {
                            // Unsigned wrapping multiply by 2^k is a
                            // masked left shift; the micro-op applies
                            // the same width mask.
                            Some(Rewrite::Replace(Instr::Un {
                                op: UnOp::Shl(cv.trailing_zeros()),
                                dst: *dst,
                                a: other,
                            }))
                        }
                        BinOp::Add if cv == 0 => Some(Rewrite::Alias(other)),
                        // Only x - 0; 0 - x is a negation, not a copy.
                        BinOp::Sub if cv == 0 && is_const[*b as usize] => Some(Rewrite::Alias(*a)),
                        BinOp::And if cv == 0 => Some(Rewrite::Const(0)),
                        BinOp::And if cv == mask => Some(Rewrite::Alias(other)),
                        BinOp::Or if cv == 0 => Some(Rewrite::Alias(other)),
                        BinOp::Or if cv == mask => Some(Rewrite::Const(mask)),
                        BinOp::Xor if cv == 0 => Some(Rewrite::Alias(other)),
                        _ => None,
                    }
                }
                SigType::Bool => {
                    let (cv, other) = konst?;
                    match (op, cv != 0) {
                        (BinOp::And, false) => Some(Rewrite::Const(0)),
                        (BinOp::And, true) => Some(Rewrite::Alias(other)),
                        (BinOp::Or, true) => Some(Rewrite::Const(1)),
                        (BinOp::Or, false) => Some(Rewrite::Alias(other)),
                        (BinOp::Xor, false) => Some(Rewrite::Alias(other)),
                        _ => None,
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Builds the value-numbering key, canonicalising commutative operators
/// (except float add/mul, where `a ⊕ b` and `b ⊕ a` may differ in NaN
/// payload bits).
fn vn_key(ins: &Instr, slot_ty: &[SigType]) -> VnKey {
    match ins {
        Instr::Un { op, a, .. } => VnKey::Un(*op, *a),
        Instr::Bin { op, a, b, .. } => {
            let commutes = match op {
                BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Eq | BinOp::Ne => true,
                BinOp::Add | BinOp::Mul => slot_ty[*a as usize] != SigType::Float,
                _ => false,
            };
            if commutes && a > b {
                VnKey::Bin(*op, *b, *a)
            } else {
                VnKey::Bin(*op, *a, *b)
            }
        }
        Instr::Select { c, t, e, .. } => VnKey::Select(*c, *t, *e),
        Instr::RegRead { inst, reg, .. } => VnKey::RegRead(*inst, *reg),
        // Copy is always propagated and Drive/Fire never reach the VN.
        Instr::Copy { src, .. } => VnKey::Un(UnOp::ToBool, *src),
        Instr::Drive { net_slot, .. } => VnKey::RegRead(u32::MAX, *net_slot),
        Instr::Fire { inst } => VnKey::RegRead(u32::MAX, *inst),
    }
}

/// Backward liveness walk. `Drive` and `Fire` are unconditionally live
/// (conditional net writes and untimed side effects); every other
/// instruction survives only if its destination is live, and a surviving
/// instruction marks everything it reads.
fn dce(instrs: &mut Vec<Instr>, live: &mut [bool], untimed_io: &[UntimedIo], stats: &mut OptStats) {
    let mut kept: Vec<Instr> = Vec::with_capacity(instrs.len());
    for ins in instrs.drain(..).rev() {
        let keep = match dst_of(&ins) {
            None => true,
            Some(d) => live[d as usize],
        };
        if !keep {
            stats.dce_removed += 1;
            continue;
        }
        match &ins {
            Instr::Copy { src, .. } => live[*src as usize] = true,
            Instr::Un { a, .. } => live[*a as usize] = true,
            Instr::Bin { a, b, .. } => {
                live[*a as usize] = true;
                live[*b as usize] = true;
            }
            Instr::Select { c, t, e, .. } => {
                live[*c as usize] = true;
                live[*t as usize] = true;
                live[*e as usize] = true;
            }
            Instr::Drive { cands, .. } => {
                for (_, s) in cands {
                    live[*s as usize] = true;
                }
            }
            Instr::Fire { inst } => {
                // Fire reads its input slots and the current output
                // values (held defaults when the block is not ready).
                let (ins_io, outs_io) = &untimed_io[*inst as usize];
                for (s, _) in ins_io {
                    live[*s as usize] = true;
                }
                for (s, _) in outs_io {
                    live[*s as usize] = true;
                }
            }
            Instr::RegRead { .. } => {}
        }
        kept.push(ins);
    }
    kept.reverse();
    *instrs = kept;
}

/// Renumbers the state vector down to the live slots: everything still
/// referenced by either tape, the net map (all nets stay addressable by
/// `peek_net`/`poke_net`/`set_input` and the trace taps), the
/// register-write selectors, the untimed I/O lists and the guard slots.
fn compact(tape: &mut [Instr], pre: &mut [Instr], env: &mut OptEnv<'_>, stats: &mut OptStats) {
    let n = env.slots.len();
    let mut used = vec![false; n];
    for s in env.net_slot.iter() {
        used[*s as usize] = true;
    }
    for w in env.reg_writes.iter() {
        for (_, s) in &w.cands {
            used[*s as usize] = true;
        }
    }
    for (ins, outs) in env.untimed_io.iter() {
        for (s, _) in ins.iter().chain(outs.iter()) {
            used[*s as usize] = true;
        }
    }
    for tables in env.fsm_tables.iter() {
        for state in tables {
            for tr in state {
                if let Some(g) = tr.guard_slot {
                    used[g as usize] = true;
                }
            }
        }
    }
    for ins in tape.iter_mut().chain(pre.iter_mut()) {
        for_each_slot(ins, |s| used[s as usize] = true);
    }

    let mut map = vec![0u32; n];
    let mut new_slots = Vec::new();
    let mut new_ty = Vec::new();
    for (s, u) in used.iter().enumerate() {
        if *u {
            map[s] = new_slots.len() as u32;
            new_slots.push(env.slots[s]);
            new_ty.push(env.slot_ty[s]);
        }
    }
    stats.slots_saved = (n - new_slots.len()) as u64;

    for ins in tape.iter_mut().chain(pre.iter_mut()) {
        for_each_slot_mut(ins, |s| *s = map[*s as usize]);
    }
    for s in env.net_slot.iter_mut() {
        *s = map[*s as usize];
    }
    for w in env.reg_writes.iter_mut() {
        for (_, s) in &mut w.cands {
            *s = map[*s as usize];
        }
    }
    for (ins, outs) in env.untimed_io.iter_mut() {
        for (s, _) in ins.iter_mut().chain(outs.iter_mut()) {
            *s = map[*s as usize];
        }
    }
    for tables in env.fsm_tables.iter_mut() {
        for state in tables.iter_mut() {
            for tr in state.iter_mut() {
                if let Some(g) = &mut tr.guard_slot {
                    *g = map[*g as usize];
                }
            }
        }
    }
    *env.slots = new_slots;
    *env.slot_ty = new_ty;
}

/// Visits every slot field of an instruction (reads and writes).
fn for_each_slot(ins: &Instr, mut f: impl FnMut(u32)) {
    match ins {
        Instr::Copy { dst, src } => {
            f(*dst);
            f(*src);
        }
        Instr::RegRead { dst, .. } => f(*dst),
        Instr::Un { dst, a, .. } => {
            f(*dst);
            f(*a);
        }
        Instr::Bin { dst, a, b, .. } => {
            f(*dst);
            f(*a);
            f(*b);
        }
        Instr::Select { dst, c, t, e } => {
            f(*dst);
            f(*c);
            f(*t);
            f(*e);
        }
        Instr::Drive {
            net_slot, cands, ..
        } => {
            f(*net_slot);
            for (_, s) in cands {
                f(*s);
            }
        }
        Instr::Fire { .. } => {}
    }
}

/// Mutable twin of [`for_each_slot`].
fn for_each_slot_mut(ins: &mut Instr, mut f: impl FnMut(&mut u32)) {
    match ins {
        Instr::Copy { dst, src } => {
            f(dst);
            f(src);
        }
        Instr::RegRead { dst, .. } => f(dst),
        Instr::Un { dst, a, .. } => {
            f(dst);
            f(a);
        }
        Instr::Bin { dst, a, b, .. } => {
            f(dst);
            f(a);
            f(b);
        }
        Instr::Select { dst, c, t, e } => {
            f(dst);
            f(c);
            f(t);
            f(e);
        }
        Instr::Drive {
            net_slot, cands, ..
        } => {
            f(net_slot);
            for (_, s) in cands {
                f(s);
            }
        }
        Instr::Fire { .. } => {}
    }
}
