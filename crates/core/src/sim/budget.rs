//! Watchdog budgets for long-horizon simulation runs.
//!
//! A Monte-Carlo campaign over millions of bursts cannot afford one
//! oscillating design or runaway settle loop to hang a worker forever.
//! A [`Budget`] attached to a simulator turns "too much work" into the
//! typed error [`CoreError::BudgetExceeded`] so the campaign layer can
//! classify the item as timed out and keep going — the shard never
//! aborts, the pool never hangs.
//!
//! Two of the three limits are **deterministic**: the cycle budget and
//! the settle-iteration budget trip at exactly the same point on every
//! machine and thread count, so they are safe to use in runs whose
//! output must be bit-reproducible. The wall-clock deadline is
//! **advisory**: it depends on host speed and is meant for interactive
//! use and CI safety nets, not for reproducible classification.

use std::fmt;
use std::time::Instant;

use crate::CoreError;

/// Which watchdog limit tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum BudgetKind {
    /// The per-run cycle budget ([`Budget::with_max_cycles`]).
    Cycles,
    /// The per-cycle settle/evaluation-iteration budget
    /// ([`Budget::with_max_settle_iters`]).
    SettleIterations,
    /// The advisory wall-clock deadline ([`Budget::with_deadline`]).
    WallClock,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::Cycles => write!(f, "cycle"),
            BudgetKind::SettleIterations => write!(f, "settle-iteration"),
            BudgetKind::WallClock => write!(f, "wall-clock"),
        }
    }
}

/// A set of per-run watchdog limits. All limits default to "unlimited";
/// the zero-cost [`Budget::none`] is what every simulator starts with.
///
/// ```
/// use ocapi::sim::budget::Budget;
///
/// let b = Budget::none().with_max_cycles(1_000_000);
/// assert!(b.check_cycle(999_999).is_ok());
/// assert!(b.check_cycle(1_000_000).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    max_cycles: Option<u64>,
    max_settle_iters: Option<u64>,
    deadline: Option<Instant>,
}

impl Budget {
    /// No limits at all — the default for every simulator.
    pub fn none() -> Budget {
        Budget::default()
    }

    /// Limits the run to `n` completed cycles: the step that would
    /// begin cycle `n` fails with [`CoreError::BudgetExceeded`].
    /// Deterministic.
    pub fn with_max_cycles(mut self, n: u64) -> Budget {
        self.max_cycles = Some(n);
        self
    }

    /// Limits every settle loop (the interpreted scheduler's evaluation
    /// phase, the gate kernel's event propagation) to `n` iterations per
    /// cycle. Deterministic.
    pub fn with_max_settle_iters(mut self, n: u64) -> Budget {
        self.max_settle_iters = Some(n);
        self
    }

    /// Advisory wall-clock deadline: steps after `deadline` fail with
    /// [`CoreError::BudgetExceeded`]. **Not deterministic** — do not use
    /// where bit-reproducible output is required.
    pub fn with_deadline(mut self, deadline: Instant) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// The configured cycle limit, if any.
    pub fn max_cycles(&self) -> Option<u64> {
        self.max_cycles
    }

    /// The configured settle-iteration limit, if any.
    pub fn max_settle_iters(&self) -> Option<u64> {
        self.max_settle_iters
    }

    /// True when no limit is set (the common fast path).
    pub fn is_none(&self) -> bool {
        self.max_cycles.is_none() && self.max_settle_iters.is_none() && self.deadline.is_none()
    }

    /// Checks the cycle budget and the wall-clock deadline at the start
    /// of a step that would complete cycle `cycle + 1`.
    ///
    /// # Errors
    ///
    /// [`CoreError::BudgetExceeded`] when a limit is exhausted.
    pub fn check_cycle(&self, cycle: u64) -> Result<(), CoreError> {
        if let Some(max) = self.max_cycles {
            if cycle >= max {
                return Err(CoreError::BudgetExceeded {
                    kind: BudgetKind::Cycles,
                    at_cycle: cycle,
                });
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(CoreError::BudgetExceeded {
                    kind: BudgetKind::WallClock,
                    at_cycle: cycle,
                });
            }
        }
        Ok(())
    }

    /// Checks the settle-iteration budget inside an evaluation loop.
    ///
    /// # Errors
    ///
    /// [`CoreError::BudgetExceeded`] when `iters` exceeds the limit.
    pub fn check_settle(&self, iters: u64, cycle: u64) -> Result<(), CoreError> {
        if let Some(max) = self.max_settle_iters {
            if iters > max {
                return Err(CoreError::BudgetExceeded {
                    kind: BudgetKind::SettleIterations,
                    at_cycle: cycle,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_budget_never_trips() {
        let b = Budget::none();
        assert!(b.is_none());
        assert!(b.check_cycle(u64::MAX).is_ok());
        assert!(b.check_settle(u64::MAX, 0).is_ok());
    }

    #[test]
    fn cycle_budget_trips_at_limit() {
        let b = Budget::none().with_max_cycles(10);
        assert!(b.check_cycle(9).is_ok());
        match b.check_cycle(10) {
            Err(CoreError::BudgetExceeded { kind, at_cycle }) => {
                assert_eq!(kind, BudgetKind::Cycles);
                assert_eq!(at_cycle, 10);
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn settle_budget_trips_past_limit() {
        let b = Budget::none().with_max_settle_iters(4);
        assert!(b.check_settle(4, 7).is_ok());
        match b.check_settle(5, 7) {
            Err(CoreError::BudgetExceeded { kind, at_cycle }) => {
                assert_eq!(kind, BudgetKind::SettleIterations);
                assert_eq!(at_cycle, 7);
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn elapsed_deadline_trips() {
        let b = Budget::none().with_deadline(Instant::now());
        match b.check_cycle(3) {
            Err(CoreError::BudgetExceeded { kind, at_cycle }) => {
                assert_eq!(kind, BudgetKind::WallClock);
                assert_eq!(at_cycle, 3);
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn display_names_the_kind() {
        let e = CoreError::BudgetExceeded {
            kind: BudgetKind::Cycles,
            at_cycle: 42,
        };
        assert_eq!(e.to_string(), "cycle budget exceeded at cycle 42");
    }
}
