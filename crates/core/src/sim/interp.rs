//! The interpreted simulator: the three-phase cycle scheduler walking the
//! in-memory signal-flow-graph data structure (§4 of the paper).
//!
//! Each clock cycle runs:
//!
//! 0. **Transition selection** — every FSM picks a transition (guards read
//!    register current values and the values nets held at the end of the
//!    previous cycle) and marks its SFGs for execution.
//! 1. **Token production** — marked-SFG outputs that depend only on
//!    registered and constant signals are evaluated and their tokens put
//!    on the interconnect.
//! 2. **Evaluation** — marked SFGs and untimed blocks fire as their input
//!    tokens arrive, until everything has fired. If an iteration makes no
//!    progress, the system is declared deadlocked: a combinational loop.
//! 3. **Register update** — next values are committed.
//!
//! Phases 1 and 2 are one work-list loop here: token production is simply
//! the first wave of assignments, whose input-dependency set is empty.

use crate::comp::{NodeId, Reg};
use crate::fsm::StateRef;
use crate::sim::budget::Budget;
use crate::sim::eval::{eval_node, EvalCache};
use crate::sim::obs::SimObs;
use crate::sim::snapshot::{hash_system, SimSnapshot, SnapshotBackend};
use crate::sim::Simulator;
use crate::system::{NetSource, System};
use crate::trace::Trace;
use crate::value::{SigType, Value};
use crate::CoreError;

#[derive(Debug, Clone, Copy)]
enum Target {
    Out { port: usize, node: NodeId },
    RegWrite { reg: Reg, node: NodeId },
}

#[derive(Debug, Clone, Copy)]
struct Pend {
    inst: usize,
    sfg: usize,
    target: Target,
}

/// The interpreted (cycle-scheduler) simulator.
///
/// # Example
///
/// ```
/// use ocapi::{Component, SigType, System, Value, InterpSim, Simulator};
///
/// # fn main() -> Result<(), ocapi::CoreError> {
/// // A free-running 4-bit counter.
/// let c = Component::build("counter");
/// let out = c.output("count", SigType::Bits(4))?;
/// let r = c.reg("r", SigType::Bits(4))?;
/// let sfg = c.sfg("tick")?;
/// let q = c.q(r);
/// sfg.drive(out, &q)?;
/// sfg.next(r, &(q.clone() + c.const_bits(4, 1)))?;
/// let comp = c.finish()?;
///
/// let mut sb = System::build("demo");
/// let inst = sb.add_component("u0", comp)?;
/// sb.output("count", inst, "count")?;
/// let mut sim = InterpSim::new(sb.finish()?)?;
/// sim.run(3)?;
/// assert_eq!(sim.output("count")?, Value::bits(4, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct InterpSim {
    sys: System,
    nets: Vec<Value>,
    fresh: Vec<bool>,
    regs: Vec<Vec<Value>>,
    states: Vec<StateRef>,
    caches: Vec<EvalCache>,
    /// Per timed inst without an FSM: every SFG, precomputed so phase 0
    /// borrows the list instead of allocating it each cycle.
    all_sfgs: Vec<Vec<crate::comp::SfgRef>>,
    /// Per timed inst, per output port: the driven net, if any.
    out_net: Vec<Vec<Option<usize>>>,
    /// Per untimed inst, per output port: the driven net, if any.
    untimed_out_net: Vec<Vec<Option<usize>>>,
    cycle: u64,
    trace: Option<Trace>,
    full_trace: Option<Trace>,
    obs: Option<SimObs>,
    budget: Budget,
    design_hash: u64,
}

impl InterpSim {
    /// Prepares a simulator for the system; registers take their initial
    /// values, nets their type's zero.
    ///
    /// # Errors
    ///
    /// Currently infallible, but returns `Result` for parity with
    /// [`crate::CompiledSim::new`], which can reject designs.
    pub fn new(sys: System) -> Result<InterpSim, CoreError> {
        let nets: Vec<Value> = sys
            .nets
            .iter()
            .map(|n| match &n.source {
                NetSource::Constant(v) => *v,
                _ => n.ty.zero(),
            })
            .collect();
        let regs = sys
            .timed
            .iter()
            .map(|t| t.comp.regs.iter().map(|r| r.init).collect())
            .collect();
        let states = sys
            .timed
            .iter()
            .map(|t| t.comp.fsm.as_ref().map_or(StateRef(0), |f| f.initial))
            .collect();
        let caches = sys
            .timed
            .iter()
            .map(|t| EvalCache::new(t.comp.nodes.len()))
            .collect();
        let all_sfgs = sys.timed.iter().map(|t| t.comp.all_sfg_refs()).collect();
        let mut out_net: Vec<Vec<Option<usize>>> = sys
            .timed
            .iter()
            .map(|t| vec![None; t.comp.outputs.len()])
            .collect();
        let mut untimed_out_net: Vec<Vec<Option<usize>>> = sys
            .untimed
            .iter()
            .map(|u| vec![None; u.outputs.len()])
            .collect();
        for (i, net) in sys.nets.iter().enumerate() {
            match net.source {
                NetSource::TimedOut { inst, port } => out_net[inst][port] = Some(i),
                NetSource::UntimedOut { inst, port } => untimed_out_net[inst][port] = Some(i),
                _ => {}
            }
        }
        let fresh = vec![false; sys.nets.len()];
        let design_hash = hash_system(&sys);
        Ok(InterpSim {
            sys,
            nets,
            fresh,
            regs,
            states,
            caches,
            all_sfgs,
            out_net,
            untimed_out_net,
            cycle: 0,
            trace: None,
            full_trace: None,
            obs: None,
            budget: Budget::none(),
            design_hash,
        })
    }

    /// Attaches watchdog limits ([`Budget`]): subsequent steps fail
    /// with [`CoreError::BudgetExceeded`] instead of running (or
    /// settling) forever. [`Budget::none`] removes all limits.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The structural design hash that keys this simulator's snapshots.
    pub fn design_hash(&self) -> u64 {
        self.design_hash
    }

    /// Captures the complete mutable simulation state — net values,
    /// register files, FSM states, stateful untimed blocks and the
    /// cycle count — as a [`SimSnapshot`]. Traces and budgets are not
    /// part of the snapshot. Take snapshots between steps.
    pub fn snapshot(&self) -> SimSnapshot {
        let mut s = SimSnapshot::new(SnapshotBackend::Interp, self.design_hash, self.cycle);
        s.push_section("nets", self.nets.iter().map(Value::to_raw).collect());
        s.push_section(
            "states",
            self.states.iter().map(|st| st.index() as u64).collect(),
        );
        s.push_section(
            "regs",
            self.regs.iter().flatten().map(Value::to_raw).collect(),
        );
        for (i, u) in self.sys.untimed.iter().enumerate() {
            let words = u.block.snapshot_state();
            if !words.is_empty() {
                s.push_section(&format!("untimed.{i}"), words);
            }
        }
        s
    }

    /// Restores state captured by [`InterpSim::snapshot`] on the same
    /// design.
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotMismatch`] when the snapshot was taken from
    /// a different design, and [`CoreError::SnapshotFormat`] when it
    /// comes from a different back-end family or has damaged sections.
    /// On error the simulator state is unspecified; call
    /// [`InterpSim::reset`] before reusing it.
    pub fn restore(&mut self, snap: &SimSnapshot) -> Result<(), CoreError> {
        snap.check(SnapshotBackend::Interp, self.design_hash)?;
        let net_words = snap.section_exact("nets", self.nets.len())?;
        let state_words = snap.section_exact("states", self.states.len())?;
        let n_regs: usize = self.regs.iter().map(Vec::len).sum();
        let reg_words = snap.section_exact("regs", n_regs)?;
        for (i, t) in self.sys.timed.iter().enumerate() {
            let idx = state_words[i];
            let n_states = t.comp.fsm.as_ref().map_or(1, |f| f.states.len() as u64);
            if idx >= n_states {
                return Err(CoreError::SnapshotFormat {
                    reason: format!("state selector {idx} out of range for `{}`", t.name),
                });
            }
        }
        for (slot, (net, raw)) in self
            .nets
            .iter_mut()
            .zip(self.sys.nets.iter().zip(net_words))
        {
            *slot = Value::from_raw(net.ty, *raw);
        }
        for (st, idx) in self.states.iter_mut().zip(state_words) {
            *st = StateRef(*idx as u32);
        }
        let mut k = 0;
        for (i, t) in self.sys.timed.iter().enumerate() {
            for (j, r) in t.comp.regs.iter().enumerate() {
                self.regs[i][j] = Value::from_raw(r.ty, reg_words[k]);
                k += 1;
            }
        }
        for (i, u) in self.sys.untimed.iter_mut().enumerate() {
            let words = snap.section(&format!("untimed.{i}")).unwrap_or(&[]);
            if !u.block.restore_state(words) {
                return Err(CoreError::SnapshotFormat {
                    reason: format!(
                        "untimed block `{}` rejected its state section",
                        u.block.name()
                    ),
                });
            }
        }
        self.cycle = snap.cycle();
        Ok(())
    }

    /// Attaches an observability bundle (counters + phase spans +
    /// event log, see [`SimObs::interp`]): every subsequent
    /// [`Simulator::step`] reports cycle, SFG-firing, convergence and
    /// register-update counts and per-phase wall time. Detached
    /// simulators pay nothing.
    pub fn attach_obs(&mut self, obs: SimObs) {
        self.obs = Some(obs);
    }

    /// The simulated system.
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Gives the system back (e.g. to rebuild a different simulator).
    pub fn into_system(self) -> System {
        self.sys
    }

    /// The current FSM state name of a timed instance, for tests and
    /// debugging.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] if the instance does not exist
    /// or has no FSM.
    pub fn state_name(&self, instance: &str) -> Result<&str, CoreError> {
        let (i, t) = self
            .sys
            .timed
            .iter()
            .enumerate()
            .find(|(_, t)| t.name == instance)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "instance",
                name: instance.to_owned(),
            })?;
        let fsm = t.comp.fsm.as_ref().ok_or_else(|| CoreError::UnknownName {
            kind: "fsm",
            name: instance.to_owned(),
        })?;
        Ok(&fsm.states[self.states[i].index()])
    }

    /// The current value on a named net (`instance.port` or primary-input
    /// name), for tests and debugging.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] if no net has this name.
    pub fn net_value(&self, name: &str) -> Result<Value, CoreError> {
        self.sys
            .nets
            .iter()
            .position(|n| n.name == name)
            .map(|i| self.nets[i])
            .ok_or_else(|| CoreError::UnknownName {
                kind: "net",
                name: name.to_owned(),
            })
    }

    /// Starts recording *every net* each cycle (not only the primary
    /// I/O): the full-hierarchy waveform view of the design, dumped with
    /// [`InterpSim::full_trace`]`.to_vcd()`. Costs one value copy per net
    /// per cycle.
    pub fn enable_full_trace(&mut self) {
        if self.full_trace.is_none() {
            self.full_trace = Some(Trace::new(
                self.sys.nets.iter().map(|n| (n.name.clone(), n.ty, false)),
            ));
        }
    }

    /// The full-hierarchy trace (empty unless
    /// [`InterpSim::enable_full_trace`] was called before stepping).
    pub fn full_trace(&self) -> &Trace {
        static EMPTY: std::sync::OnceLock<Trace> = std::sync::OnceLock::new();
        self.full_trace
            .as_ref()
            .unwrap_or_else(|| EMPTY.get_or_init(Trace::default))
    }

    /// Resets registers, FSM states, nets and untimed blocks to their
    /// power-up values and rewinds the cycle counter.
    pub fn reset(&mut self) {
        for (i, t) in self.sys.timed.iter().enumerate() {
            for (j, r) in t.comp.regs.iter().enumerate() {
                self.regs[i][j] = r.init;
            }
            self.states[i] = t.comp.fsm.as_ref().map_or(StateRef(0), |f| f.initial);
        }
        for (i, net) in self.sys.nets.iter().enumerate() {
            self.nets[i] = match &net.source {
                NetSource::Constant(v) => *v,
                _ => net.ty.zero(),
            };
        }
        for u in &mut self.sys.untimed {
            u.block.reset();
        }
        self.cycle = 0;
        if let Some(t) = &mut self.trace {
            *t = make_trace(&self.sys);
        }
        if let Some(t) = &mut self.full_trace {
            *t = Trace::new(self.sys.nets.iter().map(|n| (n.name.clone(), n.ty, false)));
        }
    }
}

fn make_trace(sys: &System) -> Trace {
    Trace::new(
        sys.primary_inputs
            .iter()
            .map(|p| (p.name.clone(), p.ty, true))
            .chain(
                sys.primary_outputs
                    .iter()
                    .map(|p| (p.name.clone(), sys.nets[p.net].ty, false)),
            ),
    )
}

impl Simulator for InterpSim {
    fn set_input(&mut self, name: &str, value: Value) -> Result<(), CoreError> {
        let pi = self
            .sys
            .primary_inputs
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "primary input",
                name: name.to_owned(),
            })?;
        value.check_type_with(pi.ty, || format!("primary input `{name}`"))?;
        self.nets[pi.net] = value;
        Ok(())
    }

    fn step(&mut self) -> Result<(), CoreError> {
        self.budget.check_cycle(self.cycle)?;
        let sys = &mut self.sys;
        let nets = &mut self.nets;
        let fresh = &mut self.fresh;

        // Freshness: primary inputs and constants are available at cycle
        // start; everything else must be produced.
        for (i, net) in sys.nets.iter().enumerate() {
            fresh[i] = matches!(
                net.source,
                NetSource::PrimaryInput(_) | NetSource::Constant(_)
            );
        }

        // Phase 0: transition selection, marking SFGs for execution.
        let t_select = self.obs.as_ref().map(|o| o.sp_select.timer());
        let mut pending: Vec<Pend> = Vec::new();
        let mut next_states = self.states.clone();
        for (i, t) in sys.timed.iter().enumerate() {
            self.caches[i].bump();
            let comp = &t.comp;
            let active: &[crate::comp::SfgRef] = if let Some(fsm) = &comp.fsm {
                let mut chosen: Option<&crate::fsm::Transition> = None;
                for tr in fsm.from_state(self.states[i]) {
                    let take = match tr.guard {
                        None => true,
                        Some(g) => {
                            let in_nets = &sys.timed_in_net[i];
                            let held = |p: usize| nets[in_nets[p]];
                            eval_node(comp, g, &held, &self.regs[i], &mut self.caches[i])?
                                .as_bool()
                                .ok_or_else(|| CoreError::ValueType {
                                    context: format!("fsm guard in `{}`", t.name),
                                    expected: SigType::Bool,
                                })?
                        }
                    };
                    if take {
                        chosen = Some(tr);
                        break;
                    }
                }
                match chosen {
                    Some(tr) => {
                        next_states[i] = tr.to;
                        &tr.actions
                    }
                    None => &[], // idle: stay, run nothing
                }
            } else {
                &self.all_sfgs[i]
            };

            // Outputs not driven by the marked SFGs hold their value and
            // count as settled immediately.
            let mut driven = vec![false; comp.outputs.len()];
            for sfg_ref in active {
                let sfg = &comp.sfgs[sfg_ref.index()];
                for (p, node) in &sfg.outputs {
                    driven[p.index()] = true;
                    pending.push(Pend {
                        inst: i,
                        sfg: sfg_ref.index(),
                        target: Target::Out {
                            port: p.index(),
                            node: *node,
                        },
                    });
                }
                for (r, node) in &sfg.reg_writes {
                    pending.push(Pend {
                        inst: i,
                        sfg: sfg_ref.index(),
                        target: Target::RegWrite {
                            reg: *r,
                            node: *node,
                        },
                    });
                }
            }
            for (p, d) in driven.iter().enumerate() {
                if !d {
                    if let Some(net) = self.out_net[i][p] {
                        fresh[net] = true; // held value
                    }
                }
            }
            // The guard evaluation used held input values; assignment
            // evaluation below must re-read inputs fresh.
            self.caches[i].bump();
        }

        drop(t_select);

        // Phases 1+2: token production and evaluation as one work list.
        let t_eval = self.obs.as_ref().map(|o| o.sp_eval.timer());
        let mut firings = 0u64;
        let mut iterations = 0u64;
        let mut reg_writes: Vec<(usize, Reg, Value)> = Vec::new();
        let mut fired = vec![false; sys.untimed.len()];
        let mut in_buf: Vec<Value> = Vec::new();
        let mut out_buf: Vec<Value> = Vec::new();
        loop {
            iterations += 1;
            self.budget.check_settle(iterations, self.cycle)?;
            let mut progress = false;

            let mut i = 0;
            while i < pending.len() {
                let pend = pending[i];
                let comp = &sys.timed[pend.inst].comp;
                let node = match pend.target {
                    Target::Out { node, .. } | Target::RegWrite { node, .. } => node,
                };
                let in_nets = &sys.timed_in_net[pend.inst];
                let ready = comp
                    .input_deps(node)
                    .iter()
                    .all(|p| fresh[in_nets[*p as usize]]);
                if ready {
                    let read = |p: usize| nets[in_nets[p]];
                    let v = eval_node(
                        comp,
                        node,
                        &read,
                        &self.regs[pend.inst],
                        &mut self.caches[pend.inst],
                    )?;
                    match pend.target {
                        Target::Out { port, .. } => {
                            if let Some(net) = self.out_net[pend.inst][port] {
                                nets[net] = v;
                                fresh[net] = true;
                            }
                        }
                        Target::RegWrite { reg, .. } => {
                            reg_writes.push((pend.inst, reg, v));
                        }
                    }
                    pending.swap_remove(i);
                    firings += 1;
                    progress = true;
                } else {
                    i += 1;
                }
            }

            for (u, inst) in sys.untimed.iter_mut().enumerate() {
                if fired[u] {
                    continue;
                }
                let in_nets = &sys.untimed_in_net[u];
                if !in_nets.iter().all(|n| fresh[*n]) {
                    continue;
                }
                in_buf.clear();
                in_buf.extend(in_nets.iter().map(|n| nets[*n]));
                let out_nets = &self.untimed_out_net[u];
                out_buf.clear();
                out_buf.extend(
                    out_nets
                        .iter()
                        .enumerate()
                        .map(|(p, n)| n.map_or(inst.outputs[p].ty.zero(), |n| nets[n])),
                );
                if inst.block.ready(&in_buf) {
                    inst.block.fire(&in_buf, &mut out_buf);
                }
                for (p, n) in out_nets.iter().enumerate() {
                    if let Some(n) = n {
                        nets[*n] = out_buf[p];
                        fresh[*n] = true;
                    }
                }
                fired[u] = true;
                firings += 1;
                progress = true;
            }

            if pending.is_empty() && fired.iter().all(|f| *f) {
                break;
            }
            if !progress {
                let mut waiting: Vec<String> = pending
                    .iter()
                    .map(|p| {
                        let t = &sys.timed[p.inst];
                        let sfg = &t.comp.sfgs[p.sfg];
                        let target = match p.target {
                            Target::Out { port, .. } => t.comp.outputs[port].name.clone(),
                            Target::RegWrite { reg, .. } => {
                                format!("reg {}", t.comp.regs[reg.index()].name)
                            }
                        };
                        format!("{}.{} -> {}", t.name, sfg.name, target)
                    })
                    .collect();
                waiting.extend(
                    fired
                        .iter()
                        .enumerate()
                        .filter(|(_, f)| !**f)
                        .map(|(u, _)| format!("{} (untimed)", sys.untimed[u].block.name())),
                );
                // Deterministic diagnostics regardless of work-list order.
                waiting.sort();
                if let Some(o) = &self.obs {
                    o.events.record(self.cycle, "deadlock", waiting.join(", "));
                }
                return Err(CoreError::CombinationalLoop { waiting });
            }
        }
        drop(t_eval);

        // Phase 3: register update and state commit.
        let t_commit = self.obs.as_ref().map(|o| o.sp_commit.timer());
        let reg_update_count = reg_writes.len() as u64;
        for (inst, reg, v) in reg_writes {
            self.regs[inst][reg.index()] = v;
        }
        self.states = next_states;
        self.cycle += 1;
        drop(t_commit);

        if self.trace.is_some() || self.full_trace.is_some() {
            let _t_trace = self.obs.as_ref().map(|o| o.sp_trace.timer());
            if let Some(trace) = &mut self.trace {
                let row: Vec<Value> = sys
                    .primary_inputs
                    .iter()
                    .map(|p| nets[p.net])
                    .chain(sys.primary_outputs.iter().map(|p| nets[p.net]))
                    .collect();
                trace.record_cycle(&row)?;
            }
            if let Some(trace) = &mut self.full_trace {
                trace.record_cycle(nets)?;
            }
        }

        if let Some(o) = &self.obs {
            o.cycles.incr();
            o.sfg_firings.add(firings);
            o.convergence_iters.add(iterations);
            o.reg_updates.add(reg_update_count);
        }
        Ok(())
    }

    fn output(&self, name: &str) -> Result<Value, CoreError> {
        self.sys
            .primary_outputs
            .iter()
            .find(|p| p.name == name)
            .map(|p| self.nets[p.net])
            .ok_or_else(|| CoreError::UnknownName {
                kind: "primary output",
                name: name.to_owned(),
            })
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(make_trace(&self.sys));
        }
    }

    fn trace(&self) -> &Trace {
        static EMPTY: std::sync::OnceLock<Trace> = std::sync::OnceLock::new();
        self.trace
            .as_ref()
            .unwrap_or_else(|| EMPTY.get_or_init(Trace::default))
    }

    fn peek_net(&self, name: &str) -> Result<Value, CoreError> {
        self.net_value(name)
    }

    fn poke_net(&mut self, name: &str, value: Value) -> Result<(), CoreError> {
        let i = self
            .sys
            .nets
            .iter()
            .position(|n| n.name == name)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "net",
                name: name.to_owned(),
            })?;
        value.check_type_with(self.sys.nets[i].ty, || format!("net `{name}`"))?;
        self.nets[i] = value;
        Ok(())
    }

    fn peek_reg(&self, instance: &str, reg: &str) -> Result<Value, CoreError> {
        let (i, j) = find_reg(&self.sys, instance, reg)?;
        Ok(self.regs[i][j])
    }

    fn poke_reg(&mut self, instance: &str, reg: &str, value: Value) -> Result<(), CoreError> {
        let (i, j) = find_reg(&self.sys, instance, reg)?;
        value.check_type(
            self.sys.timed[i].comp.regs[j].ty,
            &format!("register `{instance}.{reg}`"),
        )?;
        self.regs[i][j] = value;
        Ok(())
    }
}

/// Resolves `instance.reg` to (timed-instance index, register index).
pub(crate) fn find_reg(
    sys: &System,
    instance: &str,
    reg: &str,
) -> Result<(usize, usize), CoreError> {
    let (i, t) = sys
        .timed
        .iter()
        .enumerate()
        .find(|(_, t)| t.name == instance)
        .ok_or_else(|| CoreError::UnknownName {
            kind: "instance",
            name: instance.to_owned(),
        })?;
    let j = t
        .comp
        .regs
        .iter()
        .position(|r| r.name == reg)
        .ok_or_else(|| CoreError::UnknownName {
            kind: "register",
            name: format!("{instance}.{reg}"),
        })?;
    Ok((i, j))
}
