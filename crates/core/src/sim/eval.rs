//! Shared expression evaluation over the component node graph.

use crate::comp::{Component, NodeId, NodeKind};
use crate::value::{SigType, Value};
use crate::CoreError;

/// Per-component memo table, invalidated by bumping the epoch instead of
/// clearing (cheap per-cycle reset).
#[derive(Debug, Clone)]
pub(crate) struct EvalCache {
    values: Vec<Value>,
    stamp: Vec<u64>,
    epoch: u64,
}

impl EvalCache {
    pub(crate) fn new(n_nodes: usize) -> EvalCache {
        EvalCache {
            values: vec![Value::Bool(false); n_nodes],
            stamp: vec![0; n_nodes],
            epoch: 0,
        }
    }

    /// Invalidates all memoized values.
    pub(crate) fn bump(&mut self) {
        self.epoch += 1;
    }
}

/// Evaluates `id` in `comp`, reading input ports through `inputs` and
/// register current values from `regs`. Results are memoized in `cache`
/// for the current epoch, so shared subexpressions are computed once.
///
/// Returns [`CoreError::ValueType`] if a select/guard condition does not
/// evaluate to a boolean — the kernel reports this instead of panicking.
pub(crate) fn eval_node(
    comp: &Component,
    id: NodeId,
    inputs: &impl Fn(usize) -> Value,
    regs: &[Value],
    cache: &mut EvalCache,
) -> Result<Value, CoreError> {
    let i = id.index();
    if cache.stamp[i] == cache.epoch && cache.epoch > 0 {
        return Ok(cache.values[i]);
    }
    let v = match &comp.nodes[i].kind {
        NodeKind::Const(v) => *v,
        NodeKind::Input(p) => inputs(p.index()),
        NodeKind::RegRead(r) => regs[r.index()],
        NodeKind::Un(op, a) => {
            let a = eval_node(comp, *a, inputs, regs, cache)?;
            op.apply(a)
        }
        NodeKind::Bin(op, a, b) => {
            let a = eval_node(comp, *a, inputs, regs, cache)?;
            let b = eval_node(comp, *b, inputs, regs, cache)?;
            op.apply(a, b)
        }
        NodeKind::Select {
            cond,
            then,
            otherwise,
        } => {
            let c = eval_node(comp, *cond, inputs, regs, cache)?;
            // Both branches are evaluated, like hardware muxes do.
            let t = eval_node(comp, *then, inputs, regs, cache)?;
            let e = eval_node(comp, *otherwise, inputs, regs, cache)?;
            match c.as_bool() {
                Some(true) => t,
                Some(false) => e,
                None => {
                    return Err(CoreError::ValueType {
                        context: format!("select condition in `{}`", comp.name),
                        expected: SigType::Bool,
                    })
                }
            }
        }
    };
    cache.values[i] = v;
    cache.stamp[i] = cache.epoch;
    Ok(v)
}
