//! Lane-batched execution of the compiled micro-op tape.
//!
//! The compiled back-end exists to make the statistical workloads
//! tractable — the paper's environment runs "a BER simulation in
//! minutes" by regenerating an application-specific simulator. Its
//! Monte-Carlo consumers (BER sweeps, fault campaigns) run *many
//! independent instances of the same design*, so re-walking the
//! identical tape once per instance pays the full instruction-dispatch
//! cost N times for one design's worth of control flow.
//!
//! [`BatchedSim`] amortizes that cost: one [`Program`] (the monomorphised
//! tape of `sim::compiled`) is executed over N independent *lanes* in a
//! single pass. State is struct-of-arrays — every slot of the scalar
//! state vector becomes a lane-major stripe of N `u64`s — and each
//! micro-op is applied across all lanes in a tight inner loop, so the
//! tape walk (instruction decode, dispatch, operand indexing) is paid
//! once per cycle instead of once per instance.
//!
//! Lanes stay *independent*:
//!
//! * every lane has its own FSM states, SFG activation flags, register
//!   file and untimed-block state (one [`System`] per lane);
//! * control-flow divergence is handled per lane — transition selection
//!   and `Drive`/`Fire` resolution read the lane's own stripe;
//! * a per-lane error (a trace fault, a failed fault-injection poke)
//!   **masks the lane off** instead of aborting the batch: the lane's
//!   stripes freeze, its first error and cycle are recorded, and the
//!   remaining lanes keep running.
//!
//! Results are bit-identical to running N scalar [`CompiledSim`]s: the
//! `batch` integration suite asserts every output and every `peek_net`
//! value matches lane-for-lane at every optimization level.
//!
//! **Word-parallel fast path** (DESIGN.md §13): at build time the tape
//! is split into *segments*. Runs of ≥ [`MIN_WORD_RUN`] consecutive
//! micro-ops whose operands and destination are all `Bool` slots are
//! lowered to packed `u64` word operations — the Bool lanes are
//! *bitsliced* (lane `l` in bit `l % 64` of word `l / 64`), so one
//! `AND`/`OR`/`XOR`/`MUX` word op advances up to 64 lanes at once.
//! Bool comparisons lower to their bitwise identities (`==` → XNOR,
//! `<` → `!a & b`, …). Everything else — multi-bit `Bits` arithmetic,
//! fixed-point, float, `Drive`/`Fire` — stays on the scalar per-lane
//! loop, whose all-alive arm streams 8-wide unrolled stripes instead.
//! (The scalar-engine superinstruction fusion of DESIGN.md §10 is a
//! [`FusedSim`](crate::FusedSim) concern and never applies here: the
//! batched tape's segments keep the compiled micro-op form so the
//! word/scalar split stays the only lowering dimension.)
//! The word path runs only while *no lane is masked*; as soon as any
//! lane dies, every word segment falls back to the identical scalar
//! micro-ops, so masked-lane freezing semantics are unchanged and
//! results stay byte-identical either way.
//!
//! **Seeding contract** (composes with the `sim::par` sharding model,
//! DESIGN.md §7): batching never introduces randomness of its own. A
//! driver that batches work items over lanes must derive each item's
//! randomness from the item's *global index* (e.g.
//! [`XorShift64::stream`](crate::rng::XorShift64::stream) or an explicit
//! per-item seed), exactly as the scalar path does — then lanes × threads
//! is pure geometry and every classification and BER total is
//! byte-identical for any `--lanes`/`--threads` combination.
//!
//! [`CompiledSim`]: crate::CompiledSim
//! [`Program`]: crate::sim::compiled::Program

use crate::sim::budget::Budget;
use crate::sim::compiled::{
    build_program, decode, encode, init_regs, init_states, make_trace, Cmp, CompiledTransition,
    Micro, Program,
};
use crate::sim::obs::BatchObs;
use crate::sim::opt::{OptLevel, OptStats};
use crate::sim::snapshot::{SimSnapshot, SnapshotBackend};
use crate::sim::Simulator;
use crate::system::System;
use crate::trace::Trace;
use crate::value::{SigType, Value};
use crate::CoreError;

/// The lane-batched tape executor. See the [module docs](self).
///
/// Construct with [`BatchedSim::new`] / [`BatchedSim::new_with`] from one
/// structurally identical [`System`] per lane (the systems carry the
/// per-lane untimed-block state), or with [`BatchedSim::from_fn`] from a
/// builder closure. Drive either through the lane-addressed methods
/// (`set_input_lane`, `output_lane`, …) or through the [`Simulator`]
/// trait, which *broadcasts* writes to every live lane and reads lane 0 —
/// a 1-lane batch behaves exactly like a scalar [`CompiledSim`].
///
/// [`CompiledSim`]: crate::CompiledSim
pub struct BatchedSim {
    /// One system per lane; `systems[0]` is the one the tape was
    /// compiled from, every lane's untimed blocks live in its own copy.
    systems: Vec<System>,
    prog: Program,
    lanes: usize,
    /// Lane-major stripes: slot `k` of lane `l` is `slots[k*lanes + l]`.
    slots: Vec<u64>,
    /// FSM state per (instance, lane): `states[i*lanes + l]`.
    states: Vec<u32>,
    /// Per instance: SFG activation stripes `active[i][k*lanes + l]`.
    active: Vec<Vec<bool>>,
    /// Per instance: register stripes `regs[i][r*lanes + l]`.
    regs: Vec<Vec<u64>>,
    /// Lane-active mask: `false` = masked off by a per-lane error.
    alive: Vec<bool>,
    /// First error per masked lane: (cycle before the failing step, error).
    errors: Vec<Option<(u64, CoreError)>>,
    in_buf: Vec<Value>,
    out_buf: Vec<Value>,
    cycle: u64,
    traces: Option<Vec<Trace>>,
    obs: Option<BatchObs>,
    budget: Budget,
    design_hash: u64,
    /// Build-time bitslicing plan over both tapes (see module docs).
    plan: WordPlan,
    /// Packed scratch: the widest block's `locals` × `ceil(lanes/64)`.
    word_scratch: Vec<u64>,
}

impl std::fmt::Debug for BatchedSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchedSim")
            .field("system", &self.systems[0].name)
            .field("lanes", &self.lanes)
            .field("tape_len", &self.prog.tape.len())
            .finish()
    }
}

/// Validates a lane set: non-empty and structurally identical to lane 0.
fn check_lanes(systems: &[System]) -> Result<(), CoreError> {
    if systems.is_empty() {
        return Err(CoreError::CheckFailed {
            diagnostics: vec!["a batched simulator needs at least one lane".to_owned()],
        });
    }
    let diags: Vec<String> = systems
        .iter()
        .enumerate()
        .skip(1)
        .filter_map(|(l, s)| shape_diff(&systems[0], s, l))
        .collect();
    if !diags.is_empty() {
        return Err(CoreError::CheckFailed { diagnostics: diags });
    }
    Ok(())
}

/// One structural difference between two lane systems, rendered.
fn shape_diff(a: &System, b: &System, lane: usize) -> Option<String> {
    if a.name != b.name {
        return Some(format!("lane {lane}: system `{}` != `{}`", b.name, a.name));
    }
    if a.timed.len() != b.timed.len()
        || a.untimed.len() != b.untimed.len()
        || a.nets.len() != b.nets.len()
        || a.primary_inputs.len() != b.primary_inputs.len()
        || a.primary_outputs.len() != b.primary_outputs.len()
    {
        return Some(format!("lane {lane}: element counts differ from lane 0"));
    }
    for (x, y) in a.timed.iter().zip(&b.timed) {
        if x.name != y.name
            || x.comp.name != y.comp.name
            || x.comp.nodes.len() != y.comp.nodes.len()
            || x.comp.sfgs.len() != y.comp.sfgs.len()
            || x.comp.regs.len() != y.comp.regs.len()
        {
            return Some(format!(
                "lane {lane}: timed instance `{}` differs from lane 0",
                y.name
            ));
        }
    }
    for (i, (x, y)) in a.nets.iter().zip(&b.nets).enumerate() {
        if x.name != y.name || x.ty != y.ty {
            return Some(format!(
                "lane {lane}: net {i} (`{}`) differs from lane 0",
                y.name
            ));
        }
    }
    for (x, y) in a.untimed.iter().zip(&b.untimed) {
        if x.block.name() != y.block.name() {
            return Some(format!(
                "lane {lane}: untimed block `{}` differs from lane 0",
                y.block.name()
            ));
        }
    }
    None
}

/// Minimum run of consecutive word-eligible micro-ops worth bitslicing:
/// below this the gather/scatter transposition costs more than the
/// scalar lane loop it replaces.
const MIN_WORD_RUN: usize = 4;

/// A packed word operation over block-local scratch stripes.
///
/// Operands are *local* stripe indices interned at plan time; every
/// stripe is `ceil(lanes/64)` words holding one Bool slot bitsliced
/// across the lane dimension (lane `l` lives in bit `l % 64` of word
/// `l / 64`). Bits beyond the last lane in the tail word are garbage
/// after `Not`/`Xnor`/`OrN` — harmless, because scatter only extracts
/// lane bits and every op is bitwise (bit `k` of the result depends
/// only on bit `k` of the operands).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WordOp {
    /// `d = a & b`
    And { d: u32, a: u32, b: u32 },
    /// `d = a | b`
    Or { d: u32, a: u32, b: u32 },
    /// `d = a ^ b` — also Bool `!=`.
    Xor { d: u32, a: u32, b: u32 },
    /// `d = !(a ^ b)` — Bool `==`.
    Xnor { d: u32, a: u32, b: u32 },
    /// `d = !a & b` — Bool `<` (and `>` with swapped operands).
    AndN { d: u32, a: u32, b: u32 },
    /// `d = !a | b` — Bool `<=` (and `>=` with swapped operands).
    OrN { d: u32, a: u32, b: u32 },
    /// `d = !a`
    Not { d: u32, a: u32 },
    /// `d = a`
    Copy { d: u32, a: u32 },
    /// `d = (c & t) | (!c & e)` — lanewise select.
    Mux { d: u32, c: u32, t: u32, e: u32 },
}

/// One bitsliced run of a tape.
#[derive(Debug, Clone)]
struct WordBlock {
    /// The instruction range `instrs[start..end]` this block replaces —
    /// the masked-lane fallback re-runs exactly these scalar micro-ops.
    start: usize,
    end: usize,
    /// `(slot, local)`: stripes packed from the slot vector up front
    /// (slots read before any in-block write).
    gather: Vec<(u32, u32)>,
    /// `(slot, local)`: stripes unpacked back into the slot vector
    /// afterwards (every slot the block writes).
    scatter: Vec<(u32, u32)>,
    ops: Vec<WordOp>,
    /// Scratch stripes the block needs.
    locals: u32,
}

/// One region of a planned tape: a scalar instruction range, or an
/// index into [`WordPlan::blocks`].
#[derive(Debug, Clone, Copy)]
enum Segment {
    Scalar { start: usize, end: usize },
    Word(u32),
}

/// Build-time plan splitting both tapes into scalar and word segments.
#[derive(Debug, Clone, Default)]
struct WordPlan {
    pre: Vec<Segment>,
    tape: Vec<Segment>,
    blocks: Vec<WordBlock>,
}

/// The word lowering of one micro-op — with *global* slot operands —
/// when every operand and the destination is a `Bool` slot (always
/// stored 0/1) and the op has a lanewise bitwise identity. Multi-bit
/// `Bits`, fixed-point and float ops return `None`: their lanes carry
/// full words that do not bitslice (DESIGN.md §13).
fn word_op(m: &Micro, ty: &[SigType]) -> Option<WordOp> {
    let is_bool = |s: &u32| matches!(ty.get(*s as usize), Some(SigType::Bool));
    match m {
        Micro::AndU { dst, a, b } if is_bool(dst) && is_bool(a) && is_bool(b) => {
            Some(WordOp::And {
                d: *dst,
                a: *a,
                b: *b,
            })
        }
        Micro::OrU { dst, a, b } if is_bool(dst) && is_bool(a) && is_bool(b) => Some(WordOp::Or {
            d: *dst,
            a: *a,
            b: *b,
        }),
        Micro::XorU { dst, a, b } if is_bool(dst) && is_bool(a) && is_bool(b) => {
            Some(WordOp::Xor {
                d: *dst,
                a: *a,
                b: *b,
            })
        }
        Micro::NotU { dst, a, mask } if *mask == 1 && is_bool(dst) && is_bool(a) => {
            Some(WordOp::Not { d: *dst, a: *a })
        }
        Micro::Copy { dst, src } if is_bool(dst) && is_bool(src) => {
            Some(WordOp::Copy { d: *dst, a: *src })
        }
        // A Bool slot already holds 0/1, so `!= 0` and `& 1` are the
        // identity on the packed bit.
        Micro::NonZero { dst, a } if is_bool(dst) && is_bool(a) => {
            Some(WordOp::Copy { d: *dst, a: *a })
        }
        Micro::MaskTo { dst, a, mask } if *mask == 1 && is_bool(dst) && is_bool(a) => {
            Some(WordOp::Copy { d: *dst, a: *a })
        }
        Micro::SelectU { dst, c, t, e }
            if is_bool(dst) && is_bool(c) && is_bool(t) && is_bool(e) =>
        {
            Some(WordOp::Mux {
                d: *dst,
                c: *c,
                t: *t,
                e: *e,
            })
        }
        Micro::CmpU { dst, a, b, kind } if is_bool(dst) && is_bool(a) && is_bool(b) => {
            let (d, a, b) = (*dst, *a, *b);
            Some(match kind {
                Cmp::Eq => WordOp::Xnor { d, a, b },
                Cmp::Ne => WordOp::Xor { d, a, b },
                Cmp::Lt => WordOp::AndN { d, a, b },
                Cmp::Gt => WordOp::AndN { d, a: b, b: a },
                Cmp::Le => WordOp::OrN { d, a, b },
                Cmp::Ge => WordOp::OrN { d, a: b, b: a },
            })
        }
        _ => None,
    }
}

/// The slot read-set (up to three slots) and destination of one pure
/// micro-op, or `None` for ops with non-slot effects — [`Micro::Drive`]
/// resolves nets against instance activity and [`Micro::Fire`] advances
/// untimed-block state — which act as scheduling barriers nothing may
/// move across. `RegRead` is pure within a tape pass: registers only
/// change at the end of [`BatchedSim::step`], never mid-tape.
fn micro_rw(m: &Micro) -> Option<([u32; 3], usize, u32)> {
    use Micro as M;
    Some(match m {
        M::Copy { dst, src } => ([*src, 0, 0], 1, *dst),
        M::RegRead { dst, .. } => ([0; 3], 0, *dst),
        M::AddB { dst, a, b, .. }
        | M::SubB { dst, a, b, .. }
        | M::MulB { dst, a, b, .. }
        | M::AndU { dst, a, b }
        | M::OrU { dst, a, b }
        | M::XorU { dst, a, b }
        | M::CmpU { dst, a, b, .. }
        | M::AddF { dst, a, b, .. }
        | M::SubF { dst, a, b, .. }
        | M::MulF { dst, a, b }
        | M::CmpF { dst, a, b, .. }
        | M::AddFl { dst, a, b }
        | M::SubFl { dst, a, b }
        | M::MulFl { dst, a, b }
        | M::CmpFl { dst, a, b, .. } => ([*a, *b, 0], 2, *dst),
        M::NotU { dst, a, .. }
        | M::NegB { dst, a, .. }
        | M::ShlB { dst, a, .. }
        | M::ShrB { dst, a, .. }
        | M::ShrMask { dst, a, .. }
        | M::NegF { dst, a }
        | M::CastF { dst, a, .. }
        | M::FloatToFix { dst, a, .. }
        | M::NegFl { dst, a }
        | M::MaskTo { dst, a, .. }
        | M::NonZero { dst, a }
        | M::NonZeroFloat { dst, a }
        | M::ToFloatBits { dst, a }
        | M::ToFloatFix { dst, a, .. } => ([*a, 0, 0], 1, *dst),
        M::SelectU { dst, c, t, e } => ([*c, *t, *e], 3, *dst),
        M::Drive { .. } | M::Fire { .. } => return None,
    })
}

/// Whether swapping adjacent ops `(prev, op)` changes the computation:
/// true when `op` reads what `prev` writes, writes what `prev` reads,
/// or both write the same slot.
fn rw_conflict(r: &[u32], d: u32, pr: &[u32], pd: u32) -> bool {
    d == pd || pr.contains(&d) || r.contains(&pd)
}

/// Clusters word-eligible ops into contiguous runs by hoisting each one
/// leftwards past independent scalar ops until it joins the previous
/// eligible op (or hits a dependency or a barrier). Compiled tapes emit
/// in dependency order, which interleaves the sparse Bool ops with the
/// Bits/fixed-point work between them — on the DECT transceiver every
/// eligible op sits in a run of length one, so without this pass the
/// planner never reaches [`MIN_WORD_RUN`]. Each hoist is a chain of
/// adjacent swaps, each individually checked side-effect-free, so the
/// reordered tape computes exactly what the original did; relative
/// order *within* the eligible ops and *within* the scalar ops is
/// preserved. Runs after the design hash is taken, so snapshots stay
/// compatible with the unscheduled program.
fn schedule_word_runs(tape: &mut Vec<Micro>, ty: &[SigType]) {
    let mut out: Vec<Micro> = Vec::with_capacity(tape.len());
    for m in tape.drain(..) {
        if word_op(&m, ty).is_some() {
            if let Some((r, rn, d)) = micro_rw(&m) {
                let r = &r[..rn];
                let mut pos = out.len();
                while pos > 0 {
                    let prev = &out[pos - 1];
                    if word_op(prev, ty).is_some() {
                        break;
                    }
                    match micro_rw(prev) {
                        Some((pr, prn, pd)) if !rw_conflict(r, d, &pr[..prn], pd) => pos -= 1,
                        _ => break,
                    }
                }
                out.insert(pos, m);
                continue;
            }
        }
        out.push(m);
    }
    *tape = out;
}

/// Interns global slots to block-local stripe indices while recording
/// which stripes must be gathered (read before any in-block write) and
/// scattered (written at all). Linear scans: blocks are short tape runs.
#[derive(Default)]
struct Interner {
    map: Vec<(u32, u32)>,
    gather: Vec<(u32, u32)>,
    scatter: Vec<(u32, u32)>,
}

impl Interner {
    fn local(&mut self, g: u32) -> (u32, bool) {
        if let Some((_, l)) = self.map.iter().find(|(gg, _)| *gg == g) {
            (*l, false)
        } else {
            let l = self.map.len() as u32;
            self.map.push((g, l));
            (l, true)
        }
    }

    /// A slot read by an op. First-touch-as-source means the value must
    /// come from the slot vector — record a gather.
    fn src(&mut self, g: u32) -> u32 {
        let (l, fresh) = self.local(g);
        if fresh {
            self.gather.push((g, l));
        }
        l
    }

    /// A slot written by an op: scattered back once, at first write.
    fn dst(&mut self, g: u32) -> u32 {
        let (l, _) = self.local(g);
        if !self.scatter.iter().any(|(gg, _)| *gg == g) {
            self.scatter.push((g, l));
        }
        l
    }
}

/// Finalizes one run of word ops into a [`WordBlock`]: sources are
/// interned before destinations per op, so an op that reads and writes
/// the same slot still gathers the pre-op value.
fn build_word_block(start: usize, end: usize, ops: &[WordOp]) -> WordBlock {
    let mut it = Interner::default();
    let ops = ops
        .iter()
        .map(|op| match *op {
            WordOp::And { d, a, b } => {
                let (a, b) = (it.src(a), it.src(b));
                WordOp::And { d: it.dst(d), a, b }
            }
            WordOp::Or { d, a, b } => {
                let (a, b) = (it.src(a), it.src(b));
                WordOp::Or { d: it.dst(d), a, b }
            }
            WordOp::Xor { d, a, b } => {
                let (a, b) = (it.src(a), it.src(b));
                WordOp::Xor { d: it.dst(d), a, b }
            }
            WordOp::Xnor { d, a, b } => {
                let (a, b) = (it.src(a), it.src(b));
                WordOp::Xnor { d: it.dst(d), a, b }
            }
            WordOp::AndN { d, a, b } => {
                let (a, b) = (it.src(a), it.src(b));
                WordOp::AndN { d: it.dst(d), a, b }
            }
            WordOp::OrN { d, a, b } => {
                let (a, b) = (it.src(a), it.src(b));
                WordOp::OrN { d: it.dst(d), a, b }
            }
            WordOp::Not { d, a } => {
                let a = it.src(a);
                WordOp::Not { d: it.dst(d), a }
            }
            WordOp::Copy { d, a } => {
                let a = it.src(a);
                WordOp::Copy { d: it.dst(d), a }
            }
            WordOp::Mux { d, c, t, e } => {
                let (c, t, e) = (it.src(c), it.src(t), it.src(e));
                WordOp::Mux {
                    d: it.dst(d),
                    c,
                    t,
                    e,
                }
            }
        })
        .collect();
    WordBlock {
        start,
        end,
        gather: it.gather,
        scatter: it.scatter,
        ops,
        locals: it.map.len() as u32,
    }
}

/// Splits one tape into scalar segments and word blocks: maximal runs
/// of word-eligible micro-ops of length ≥ [`MIN_WORD_RUN`] become
/// blocks, everything else stays scalar.
fn plan_tape(instrs: &[Micro], ty: &[SigType], blocks: &mut Vec<WordBlock>) -> Vec<Segment> {
    let mut segs = Vec::new();
    let mut scalar_start = 0usize;
    let mut i = 0usize;
    while i < instrs.len() {
        let mut ops = Vec::new();
        let mut j = i;
        while j < instrs.len() {
            match word_op(&instrs[j], ty) {
                Some(op) => {
                    ops.push(op);
                    j += 1;
                }
                None => break,
            }
        }
        if ops.len() >= MIN_WORD_RUN {
            if scalar_start < i {
                segs.push(Segment::Scalar {
                    start: scalar_start,
                    end: i,
                });
            }
            blocks.push(build_word_block(i, j, &ops));
            segs.push(Segment::Word((blocks.len() - 1) as u32));
            scalar_start = j;
        }
        // `instrs[j]` is ineligible (or past the end): the next run can
        // only start after it.
        i = j + 1;
    }
    if scalar_start < instrs.len() {
        segs.push(Segment::Scalar {
            start: scalar_start,
            end: instrs.len(),
        });
    }
    segs
}

fn build_word_plan(prog: &Program) -> WordPlan {
    let mut blocks = Vec::new();
    let pre = plan_tape(&prog.pre_tape, &prog.slot_ty, &mut blocks);
    let tape = plan_tape(&prog.tape, &prog.slot_ty, &mut blocks);
    WordPlan { pre, tape, blocks }
}

/// Executes one bitsliced block over the full (all-alive) batch:
/// transposes the gathered Bool stripes into packed words, runs the
/// word ops, transposes the written stripes back out. Returns the
/// number of packed word operations performed.
fn exec_word_block(blk: &WordBlock, s: &mut [u64], scratch: &mut [u64], lanes: usize) -> u64 {
    let words = lanes.div_ceil(64);
    for (slot, local) in &blk.gather {
        let base = *slot as usize * lanes;
        let out = *local as usize * words;
        for w in 0..words {
            let l0 = w * 64;
            let n = (lanes - l0).min(64);
            let mut packed = 0u64;
            for k in 0..n {
                packed |= (s[base + l0 + k] & 1) << k;
            }
            scratch[out + w] = packed;
        }
    }
    // `wloop!(d, |w| ..)` — one packed op across the stripe's words.
    macro_rules! wloop {
        ($d:expr, |$w:ident| $val:expr) => {{
            let d = *$d as usize * words;
            for $w in 0..words {
                scratch[d + $w] = $val;
            }
        }};
    }
    macro_rules! rd {
        ($x:expr, $w:ident) => {
            scratch[*$x as usize * words + $w]
        };
    }
    for op in &blk.ops {
        match op {
            WordOp::And { d, a, b } => wloop!(d, |w| rd!(a, w) & rd!(b, w)),
            WordOp::Or { d, a, b } => wloop!(d, |w| rd!(a, w) | rd!(b, w)),
            WordOp::Xor { d, a, b } => wloop!(d, |w| rd!(a, w) ^ rd!(b, w)),
            WordOp::Xnor { d, a, b } => wloop!(d, |w| !(rd!(a, w) ^ rd!(b, w))),
            WordOp::AndN { d, a, b } => wloop!(d, |w| !rd!(a, w) & rd!(b, w)),
            WordOp::OrN { d, a, b } => wloop!(d, |w| !rd!(a, w) | rd!(b, w)),
            WordOp::Not { d, a } => wloop!(d, |w| !rd!(a, w)),
            WordOp::Copy { d, a } => wloop!(d, |w| rd!(a, w)),
            WordOp::Mux { d, c, t, e } => {
                wloop!(d, |w| (rd!(c, w) & rd!(t, w)) | (!rd!(c, w) & rd!(e, w)));
            }
        }
    }
    for (slot, local) in &blk.scatter {
        let base = *slot as usize * lanes;
        let src = *local as usize * words;
        for w in 0..words {
            let l0 = w * 64;
            let n = (lanes - l0).min(64);
            let packed = scratch[src + w];
            for k in 0..n {
                s[base + l0 + k] = (packed >> k) & 1;
            }
        }
    }
    blk.ops.len() as u64 * words as u64
}

impl BatchedSim {
    /// Compiles `systems[0]` and runs all lanes through its tape at the
    /// default optimization level. One lane per system.
    ///
    /// # Errors
    ///
    /// As [`BatchedSim::new_with`].
    pub fn new(systems: Vec<System>) -> Result<BatchedSim, CoreError> {
        BatchedSim::new_with(systems, OptLevel::default())
    }

    /// [`BatchedSim::new`] with an explicit tape-optimization level.
    ///
    /// All systems must be structurally identical (same components,
    /// nets, ports — e.g. built by the same closure); each lane keeps
    /// its own system for per-lane untimed-block state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CheckFailed`] when `systems` is empty or the
    /// lanes are not structurally identical, and
    /// [`CoreError::NotCompilable`] when the design has no static
    /// single-pass schedule.
    pub fn new_with(systems: Vec<System>, level: OptLevel) -> Result<BatchedSim, CoreError> {
        check_lanes(&systems)?;
        let prog = build_program(&systems[0], level)?;
        let design_hash = crate::sim::snapshot::hash_program(&systems[0], &prog);
        BatchedSim::from_parts(systems, prog, design_hash)
    }

    /// Instantiates a batch from a cached
    /// [`CompiledTape`](crate::CompiledTape) without recompiling: the
    /// levelized program is reused (the word-run clustering below still
    /// runs on this batch's private copy) and only the lane-striped
    /// mutable state is built fresh. Behaviour and
    /// [`BatchedSim::design_hash`] are identical to compiling
    /// `systems[0]` at the tape's level — the warm path of the
    /// simulation service's tape cache.
    ///
    /// # Errors
    ///
    /// As [`BatchedSim::new_with`], plus [`CoreError::TapeMismatch`]
    /// when `systems[0]` is not structurally the system the tape was
    /// compiled from.
    pub fn from_tape(
        systems: Vec<System>,
        tape: &crate::sim::hash::CompiledTape,
    ) -> Result<BatchedSim, CoreError> {
        check_lanes(&systems)?;
        tape.check_system(&systems[0])?;
        BatchedSim::from_parts(systems, (*tape.prog).clone(), tape.program_hash())
    }

    /// Assembles a batch around an already-built program.
    fn from_parts(
        systems: Vec<System>,
        mut prog: Program,
        design_hash: u64,
    ) -> Result<BatchedSim, CoreError> {
        // Cluster word-eligible ops before planning (and after hashing,
        // so the reorder never shows in snapshot compatibility). The
        // reordered tape is the one both the word path and the scalar
        // fallback execute.
        let slot_ty = prog.slot_ty.clone();
        schedule_word_runs(&mut prog.pre_tape, &slot_ty);
        schedule_word_runs(&mut prog.tape, &slot_ty);
        let lanes = systems.len();
        let plan = build_word_plan(&prog);
        let scratch_len = plan
            .blocks
            .iter()
            .map(|b| b.locals as usize)
            .max()
            .unwrap_or(0)
            * lanes.div_ceil(64);
        let sys0 = &systems[0];

        let mut slots = vec![0u64; prog.init_slots.len() * lanes];
        for (k, v) in prog.init_slots.iter().enumerate() {
            slots[k * lanes..(k + 1) * lanes].fill(*v);
        }
        let states = init_states(sys0)
            .into_iter()
            .flat_map(|s| std::iter::repeat_n(s, lanes))
            .collect();
        let active = sys0
            .timed
            .iter()
            .map(|t| vec![false; t.comp.sfgs.len() * lanes])
            .collect();
        let regs = init_regs(sys0)
            .into_iter()
            .map(|rs| {
                let mut stripe = vec![0u64; rs.len() * lanes];
                for (r, v) in rs.iter().enumerate() {
                    stripe[r * lanes..(r + 1) * lanes].fill(*v);
                }
                stripe
            })
            .collect();

        Ok(BatchedSim {
            prog,
            lanes,
            slots,
            states,
            active,
            regs,
            alive: vec![true; lanes],
            errors: vec![None; lanes],
            in_buf: Vec::new(),
            out_buf: Vec::new(),
            cycle: 0,
            traces: None,
            obs: None,
            budget: Budget::none(),
            design_hash,
            plan,
            word_scratch: vec![0; scratch_len],
            systems,
        })
    }

    /// Attaches watchdog limits ([`Budget`]) to the whole batch:
    /// subsequent steps fail with [`CoreError::BudgetExceeded`] —
    /// a batch-wide error, not a lane masking — instead of running
    /// past them.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The design hash keying this batch's lane snapshots — identical
    /// to [`crate::CompiledSim::design_hash`] for the same system and
    /// optimization level, so lane snapshots and scalar compiled
    /// snapshots are interchangeable.
    pub fn design_hash(&self) -> u64 {
        self.design_hash
    }

    /// Captures the complete state of one (live) lane as a
    /// [`SimSnapshot`] — the same shape a [`crate::CompiledSim`] of
    /// this system produces. Lanes step in lock-step, so the snapshot
    /// carries the batch-wide cycle count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an out-of-range lane and
    /// the lane's own recorded error when it has been masked off.
    pub fn snapshot_lane(&self, lane: usize) -> Result<SimSnapshot, CoreError> {
        self.check_lane(lane)?;
        if let Some((_, e)) = self.lane_error(lane) {
            return Err(e.clone());
        }
        let lanes = self.lanes;
        let mut s = SimSnapshot::new(SnapshotBackend::Compiled, self.design_hash, self.cycle);
        let n_slots = self.prog.init_slots.len();
        s.push_section(
            "slots",
            (0..n_slots).map(|k| self.slots[k * lanes + lane]).collect(),
        );
        s.push_section(
            "states",
            (0..self.systems[0].timed.len())
                .map(|i| u64::from(self.states[i * lanes + lane]))
                .collect(),
        );
        let mut regs = Vec::new();
        for rf in &self.regs {
            let n_regs = rf.len() / lanes;
            for r in 0..n_regs {
                regs.push(rf[r * lanes + lane]);
            }
        }
        s.push_section("regs", regs);
        for (i, u) in self.systems[lane].untimed.iter().enumerate() {
            let words = u.block.snapshot_state();
            if !words.is_empty() {
                s.push_section(&format!("untimed.{i}"), words);
            }
        }
        Ok(s)
    }

    /// Restores one lane from a snapshot taken by
    /// [`BatchedSim::snapshot_lane`] or [`crate::CompiledSim::snapshot`]
    /// on the same build. The lane is revived if it was masked, and the
    /// batch-wide cycle counter is set to the snapshot's cycle — lanes
    /// step in lock-step, so restore every lane from snapshots of the
    /// same cycle.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownName`] for an out-of-range lane,
    /// [`CoreError::SnapshotMismatch`] for a snapshot of a different
    /// design or optimization level, and [`CoreError::SnapshotFormat`]
    /// for damaged sections.
    pub fn restore_lane(&mut self, lane: usize, snap: &SimSnapshot) -> Result<(), CoreError> {
        self.check_lane(lane)?;
        snap.check(SnapshotBackend::Compiled, self.design_hash)?;
        let lanes = self.lanes;
        let n_slots = self.prog.init_slots.len();
        let slot_words = snap.section_exact("slots", n_slots)?;
        let state_words = snap.section_exact("states", self.systems[0].timed.len())?;
        let n_regs: usize = self.regs.iter().map(|rf| rf.len() / lanes).sum();
        let reg_words = snap.section_exact("regs", n_regs)?;
        for (i, t) in self.systems[0].timed.iter().enumerate() {
            let idx = state_words[i];
            let n_states = t.comp.fsm.as_ref().map_or(1, |f| f.states.len() as u64);
            if idx >= n_states {
                return Err(CoreError::SnapshotFormat {
                    reason: format!("state selector {idx} out of range for `{}`", t.name),
                });
            }
        }
        for (k, w) in slot_words.iter().enumerate() {
            self.slots[k * lanes + lane] = *w;
        }
        for (i, w) in state_words.iter().enumerate() {
            self.states[i * lanes + lane] = *w as u32;
        }
        let mut k = 0;
        for rf in &mut self.regs {
            let n = rf.len() / lanes;
            for r in 0..n {
                rf[r * lanes + lane] = reg_words[k];
                k += 1;
            }
        }
        for (i, u) in self.systems[lane].untimed.iter_mut().enumerate() {
            let words = snap.section(&format!("untimed.{i}")).unwrap_or(&[]);
            if !u.block.restore_state(words) {
                return Err(CoreError::SnapshotFormat {
                    reason: format!(
                        "untimed block `{}` rejected its state section",
                        u.block.name()
                    ),
                });
            }
        }
        self.alive[lane] = true;
        self.errors[lane] = None;
        self.cycle = snap.cycle();
        Ok(())
    }

    /// Builds `lanes` systems with `make_sys` and batches them.
    ///
    /// # Errors
    ///
    /// Propagates `make_sys` errors, plus everything
    /// [`BatchedSim::new_with`] reports.
    pub fn from_fn(
        lanes: usize,
        mut make_sys: impl FnMut() -> Result<System, CoreError>,
        level: OptLevel,
    ) -> Result<BatchedSim, CoreError> {
        let mut systems = Vec::with_capacity(lanes);
        for _ in 0..lanes.max(1) {
            systems.push(make_sys()?);
        }
        BatchedSim::new_with(systems, level)
    }

    /// Number of lanes (live and masked).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Whether `lane` is still live (not masked off by an error).
    pub fn alive(&self, lane: usize) -> bool {
        self.alive.get(lane).copied().unwrap_or(false)
    }

    /// Number of lanes masked off so far.
    pub fn masked_lanes(&self) -> usize {
        self.alive.iter().filter(|a| !**a).count()
    }

    /// The first error of a masked lane, with the cycle (as counted
    /// before the failing step) at which it surfaced. `None` while the
    /// lane is live.
    pub fn lane_error(&self, lane: usize) -> Option<&(u64, CoreError)> {
        self.errors.get(lane).and_then(|e| e.as_ref())
    }

    /// Masks `lane` off with `error`, recorded at the current cycle.
    /// This is the masking entry point for batch drivers: a failed
    /// per-lane poke (fault injection) masks that lane instead of
    /// poisoning the batch. Masking a dead or out-of-range lane is a
    /// no-op (the first error wins).
    pub fn fail_lane(&mut self, lane: usize, error: CoreError) {
        let cycle = self.cycle;
        self.mask_lane(lane, cycle, error);
    }

    fn mask_lane(&mut self, lane: usize, cycle: u64, error: CoreError) {
        if lane < self.lanes && self.alive[lane] {
            self.alive[lane] = false;
            self.errors[lane] = Some((cycle, error));
            if let Some(o) = &self.obs {
                o.masked_lanes.incr();
            }
        }
    }

    /// The lane-0 system (the one the tape was compiled from).
    pub fn system(&self) -> &System {
        &self.systems[0]
    }

    /// Instructions executed per batched cycle (tape + guard pre-tape);
    /// each is applied to every live lane.
    pub fn tape_len(&self) -> usize {
        self.prog.tape.len() + self.prog.pre_tape.len()
    }

    /// What the tape optimizer did at build time.
    pub fn opt_stats(&self) -> OptStats {
        self.prog.opt_stats
    }

    /// Number of bitsliced word blocks the build-time planner carved
    /// out of the two tapes (0 when no run of Bool micro-ops reached
    /// the minimum length).
    pub fn word_blocks(&self) -> usize {
        self.plan.blocks.len()
    }

    /// Scalar micro-ops the word blocks replace per all-alive tape
    /// pass — the planner's coverage, for tests and perf reporting.
    pub fn word_tape_coverage(&self) -> usize {
        self.plan.blocks.iter().map(|b| b.end - b.start).sum()
    }

    /// Planner diagnostics: `(eligible, total)` micro-ops across both
    /// tapes plus a histogram of contiguous eligible-run lengths (index
    /// = run length, value = count). Shows how much Bool logic the tape
    /// holds and how fragmented it is — a large eligible count with all
    /// runs shorter than [`MIN_WORD_RUN`] means the scheduler (not the
    /// classifier) is what limits word coverage.
    pub fn word_eligibility(&self) -> (usize, usize, Vec<usize>) {
        let mut eligible = 0usize;
        let mut total = 0usize;
        let mut hist: Vec<usize> = Vec::new();
        for tape in [&self.prog.pre_tape, &self.prog.tape] {
            let mut run = 0usize;
            for m in tape.iter() {
                total += 1;
                if word_op(m, &self.prog.slot_ty).is_some() {
                    eligible += 1;
                    run += 1;
                } else if run > 0 {
                    if hist.len() <= run {
                        hist.resize(run + 1, 0);
                    }
                    hist[run] += 1;
                    run = 0;
                }
            }
            if run > 0 {
                if hist.len() <= run {
                    hist.resize(run + 1, 0);
                }
                hist[run] += 1;
            }
        }
        (eligible, total, hist)
    }

    /// Attaches the batch observability bundle: flushes the
    /// (deterministic) `batch.lanes` counter once, then every batched
    /// step bumps `batch.tape_passes`, every masking event bumps
    /// `batch.masked_lanes`, and the per-phase spans time the shared
    /// tape walk.
    pub fn attach_obs(&mut self, obs: BatchObs) {
        obs.lanes.add(self.lanes as u64);
        self.obs = Some(obs);
    }

    /// Sets a primary input of one lane for the coming cycle(s). Writes
    /// to masked lanes are ignored (their state is frozen).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown input or lane
    /// and [`CoreError::ValueType`] for a type mismatch.
    pub fn set_input_lane(
        &mut self,
        lane: usize,
        name: &str,
        value: Value,
    ) -> Result<(), CoreError> {
        let slot = self.input_slot(name, &value)?;
        self.check_lane(lane)?;
        if self.alive[lane] {
            self.slots[slot * self.lanes + lane] = encode(&value);
        }
        Ok(())
    }

    /// Reads a primary output of one lane (the value driven in the last
    /// completed cycle; frozen for masked lanes).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown output or lane.
    pub fn output_lane(&self, lane: usize, name: &str) -> Result<Value, CoreError> {
        self.check_lane(lane)?;
        let sys = &self.systems[0];
        sys.primary_outputs
            .iter()
            .find(|p| p.name == name)
            .map(|p| self.read_net_slot(p.net, lane))
            .ok_or_else(|| CoreError::UnknownName {
                kind: "primary output",
                name: name.to_owned(),
            })
    }

    /// Observes the current value on a named net of one lane.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown net or lane.
    pub fn peek_net_lane(&self, lane: usize, name: &str) -> Result<Value, CoreError> {
        self.check_lane(lane)?;
        let i = self.net_index(name)?;
        Ok(self.read_net_slot(i, lane))
    }

    /// Overwrites the value held on a named net of one lane — the
    /// per-lane fault-injection primitive. Writes to masked lanes are
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown net or lane and
    /// [`CoreError::ValueType`] for a type mismatch.
    pub fn poke_net_lane(
        &mut self,
        lane: usize,
        name: &str,
        value: Value,
    ) -> Result<(), CoreError> {
        self.check_lane(lane)?;
        let i = self.net_index(name)?;
        value.check_type_with(self.systems[0].nets[i].ty, || format!("net `{name}`"))?;
        if self.alive[lane] {
            self.slots[self.prog.net_slot[i] as usize * self.lanes + lane] = encode(&value);
        }
        Ok(())
    }

    /// Observes a register of one lane.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown instance,
    /// register or lane.
    pub fn peek_reg_lane(
        &self,
        lane: usize,
        instance: &str,
        reg: &str,
    ) -> Result<Value, CoreError> {
        self.check_lane(lane)?;
        let (i, j) = crate::sim::interp::find_reg(&self.systems[0], instance, reg)?;
        Ok(decode(
            self.regs[i][j * self.lanes + lane],
            self.systems[0].timed[i].comp.regs[j].ty,
        ))
    }

    /// Overwrites a register of one lane. Writes to masked lanes are
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown instance,
    /// register or lane and [`CoreError::ValueType`] for a type
    /// mismatch.
    pub fn poke_reg_lane(
        &mut self,
        lane: usize,
        instance: &str,
        reg: &str,
        value: Value,
    ) -> Result<(), CoreError> {
        self.check_lane(lane)?;
        let (i, j) = crate::sim::interp::find_reg(&self.systems[0], instance, reg)?;
        value.check_type(
            self.systems[0].timed[i].comp.regs[j].ty,
            &format!("register `{instance}.{reg}`"),
        )?;
        if self.alive[lane] {
            self.regs[i][j * self.lanes + lane] = encode(&value);
        }
        Ok(())
    }

    /// The recorded trace of one lane (`None` before
    /// [`Simulator::enable_trace`] or for an out-of-range lane). A
    /// masked lane's trace ends at its failing cycle.
    pub fn trace_lane(&self, lane: usize) -> Option<&Trace> {
        self.traces.as_ref().and_then(|t| t.get(lane))
    }

    /// The current FSM state name of a timed instance in one lane.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] if the lane or instance does
    /// not exist or the instance has no FSM.
    pub fn state_name_lane(&self, lane: usize, instance: &str) -> Result<&str, CoreError> {
        self.check_lane(lane)?;
        let sys = &self.systems[0];
        let (i, t) = sys
            .timed
            .iter()
            .enumerate()
            .find(|(_, t)| t.name == instance)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "instance",
                name: instance.to_owned(),
            })?;
        let fsm = t.comp.fsm.as_ref().ok_or_else(|| CoreError::UnknownName {
            kind: "fsm",
            name: instance.to_owned(),
        })?;
        Ok(&fsm.states[self.states[i * self.lanes + lane] as usize])
    }

    fn check_lane(&self, lane: usize) -> Result<(), CoreError> {
        if lane < self.lanes {
            Ok(())
        } else {
            Err(CoreError::UnknownName {
                kind: "lane",
                name: lane.to_string(),
            })
        }
    }

    fn net_index(&self, name: &str) -> Result<usize, CoreError> {
        self.systems[0]
            .nets
            .iter()
            .position(|n| n.name == name)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "net",
                name: name.to_owned(),
            })
    }

    fn input_slot(&self, name: &str, value: &Value) -> Result<usize, CoreError> {
        let pi = self.systems[0]
            .primary_inputs
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "primary input",
                name: name.to_owned(),
            })?;
        value.check_type_with(pi.ty, || format!("primary input `{name}`"))?;
        Ok(self.prog.net_slot[pi.net] as usize)
    }

    fn read_net_slot(&self, net: usize, lane: usize) -> Value {
        let sl = self.prog.net_slot[net] as usize;
        decode(self.slots[sl * self.lanes + lane], self.prog.slot_ty[sl])
    }

    /// The error of the lowest-indexed masked lane (every lane is dead
    /// when this is called).
    fn first_error(&self) -> CoreError {
        self.errors
            .iter()
            .flatten()
            .map(|(_, e)| e.clone())
            .next()
            .unwrap_or(CoreError::Unsupported {
                op: "batched step with no lanes".to_owned(),
            })
    }

    /// One pass of the selected tape over every live lane, walking the
    /// build-time segment plan: bitsliced word blocks run as packed
    /// `u64` ops (up to 64 lanes per op), scalar segments run each
    /// micro-op's tight inner lane loop over the slot stripes. Returns
    /// the number of packed word operations executed.
    ///
    /// The scalar loop comes in two shapes, chosen once per pass: while
    /// no lane is masked (the overwhelmingly common case) the inner loop
    /// carries no per-lane branch and streams the stripes in unrolled
    /// 8-wide chunks; once any lane is masked, every store is guarded by
    /// the lane mask so a dead lane's stripes stay frozen — and word
    /// blocks fall back to their scalar instruction range, because a
    /// packed store cannot skip a dead lane's bit.
    fn exec(&mut self, pre: bool) -> u64 {
        let lanes = self.lanes;
        let instrs: &[Micro] = if pre {
            &self.prog.pre_tape
        } else {
            &self.prog.tape
        };
        let segments: &[Segment] = if pre { &self.plan.pre } else { &self.plan.tape };
        let blocks = &self.plan.blocks;
        let scratch = &mut self.word_scratch;
        let untimed_io = &self.prog.untimed_io;
        let s = &mut self.slots;
        let alive = &self.alive;
        let all_alive = alive.iter().all(|a| *a);
        let regs = &self.regs;
        let active = &self.active;
        let systems = &mut self.systems;
        let in_buf = &mut self.in_buf;
        let out_buf = &mut self.out_buf;

        // `at!(x, l)` — slot `x` of lane `l` in the striped state vector.
        macro_rules! at {
            ($x:expr, $l:ident) => {
                s[*$x as usize * lanes + $l]
            };
        }
        // Applies `$val` to `$dst` across every live lane: branch-free
        // over all lanes while none is masked, mask-guarded after.
        macro_rules! lanewise {
            ($dst:expr, |$l:ident| $val:expr) => {{
                let d = *$dst as usize * lanes;
                // One range check up front lets the per-lane store checks
                // fold away in the branch-free loop below.
                assert!(d + lanes <= s.len());
                if all_alive {
                    // Unrolled 8-wide stripes: fixed-shape straight-line
                    // stores the optimizer can keep in registers and
                    // vectorize, with a scalar tail for `lanes % 8`.
                    let mut base = 0usize;
                    while base + 8 <= lanes {
                        let $l = base;
                        s[d + $l] = $val;
                        let $l = base + 1;
                        s[d + $l] = $val;
                        let $l = base + 2;
                        s[d + $l] = $val;
                        let $l = base + 3;
                        s[d + $l] = $val;
                        let $l = base + 4;
                        s[d + $l] = $val;
                        let $l = base + 5;
                        s[d + $l] = $val;
                        let $l = base + 6;
                        s[d + $l] = $val;
                        let $l = base + 7;
                        s[d + $l] = $val;
                        base += 8;
                    }
                    for $l in base..lanes {
                        s[d + $l] = $val;
                    }
                } else {
                    for $l in 0..lanes {
                        if alive[$l] {
                            s[d + $l] = $val;
                        }
                    }
                }
            }};
        }

        // The full scalar interpretation of `instrs[$range]` — the body
        // of the pre-plan executor, kept as the only semantics: word
        // blocks must be unobservable next to it.
        macro_rules! scalar_run {
            ($range:expr) => {
                for m in &instrs[$range] {
                    match m {
                        Micro::Copy { dst, src } => lanewise!(dst, |l| at!(src, l)),
                        Micro::RegRead { dst, inst, reg } => {
                            let r = &regs[*inst as usize];
                            let base = *reg as usize * lanes;
                            lanewise!(dst, |l| r[base + l]);
                        }
                        Micro::AddB { dst, a, b, mask } => {
                            lanewise!(dst, |l| at!(a, l).wrapping_add(at!(b, l)) & mask);
                        }
                        Micro::SubB { dst, a, b, mask } => {
                            lanewise!(dst, |l| at!(a, l).wrapping_sub(at!(b, l)) & mask);
                        }
                        Micro::MulB { dst, a, b, mask } => {
                            lanewise!(dst, |l| at!(a, l).wrapping_mul(at!(b, l)) & mask);
                        }
                        Micro::AndU { dst, a, b } => lanewise!(dst, |l| at!(a, l) & at!(b, l)),
                        Micro::OrU { dst, a, b } => lanewise!(dst, |l| at!(a, l) | at!(b, l)),
                        Micro::XorU { dst, a, b } => lanewise!(dst, |l| at!(a, l) ^ at!(b, l)),
                        Micro::NotU { dst, a, mask } => lanewise!(dst, |l| !at!(a, l) & mask),
                        Micro::NegB { dst, a, mask } => {
                            lanewise!(dst, |l| at!(a, l).wrapping_neg() & mask);
                        }
                        Micro::ShlB { dst, a, n, mask } => {
                            if *n >= 64 {
                                lanewise!(dst, |l| {
                                    let _ = l;
                                    0
                                });
                            } else {
                                lanewise!(dst, |l| (at!(a, l) << n) & mask);
                            }
                        }
                        Micro::ShrB { dst, a, n } => {
                            if *n >= 64 {
                                lanewise!(dst, |l| {
                                    let _ = l;
                                    0
                                });
                            } else {
                                lanewise!(dst, |l| at!(a, l) >> n);
                            }
                        }
                        Micro::ShrMask { dst, a, n, mask } => {
                            if *n >= 64 {
                                lanewise!(dst, |l| {
                                    let _ = l;
                                    0
                                });
                            } else {
                                lanewise!(dst, |l| (at!(a, l) >> n) & mask);
                            }
                        }
                        Micro::CmpU { dst, a, b, kind } => {
                            lanewise!(dst, |l| kind.apply(at!(a, l).cmp(&at!(b, l))) as u64);
                        }
                        Micro::AddF {
                            dst,
                            a,
                            b,
                            sha,
                            shb,
                        } => {
                            lanewise!(dst, |l| {
                                let x = (at!(a, l) as i64) << sha;
                                let y = (at!(b, l) as i64) << shb;
                                (x + y) as u64
                            });
                        }
                        Micro::SubF {
                            dst,
                            a,
                            b,
                            sha,
                            shb,
                        } => {
                            lanewise!(dst, |l| {
                                let x = (at!(a, l) as i64) << sha;
                                let y = (at!(b, l) as i64) << shb;
                                (x - y) as u64
                            });
                        }
                        Micro::MulF { dst, a, b } => {
                            lanewise!(dst, |l| {
                                let p = at!(a, l) as i64 as i128 * at!(b, l) as i64 as i128;
                                p as i64 as u64
                            });
                        }
                        Micro::NegF { dst, a } => {
                            lanewise!(dst, |l| (at!(a, l) as i64).wrapping_neg() as u64);
                        }
                        Micro::CmpF {
                            dst,
                            a,
                            b,
                            sha,
                            shb,
                            kind,
                        } => {
                            lanewise!(dst, |l| {
                                let x = (at!(a, l) as i64 as i128) << sha;
                                let y = (at!(b, l) as i64 as i128) << shb;
                                kind.apply(x.cmp(&y)) as u64
                            });
                        }
                        Micro::CastF {
                            dst,
                            a,
                            src,
                            target,
                            rnd,
                            ovf,
                        } => {
                            lanewise!(dst, |l| {
                                let v = ocapi_fixp::Fix::from_raw(at!(a, l) as i64, *src);
                                v.cast(*target, *rnd, *ovf).mantissa() as u64
                            });
                        }
                        Micro::FloatToFix {
                            dst,
                            a,
                            target,
                            rnd,
                            ovf,
                        } => {
                            lanewise!(dst, |l| {
                                let x = f64::from_bits(at!(a, l));
                                ocapi_fixp::Fix::from_f64(x, *target, *rnd, *ovf).mantissa() as u64
                            });
                        }
                        Micro::AddFl { dst, a, b } => {
                            lanewise!(dst, |l| {
                                (f64::from_bits(at!(a, l)) + f64::from_bits(at!(b, l))).to_bits()
                            });
                        }
                        Micro::SubFl { dst, a, b } => {
                            lanewise!(dst, |l| {
                                (f64::from_bits(at!(a, l)) - f64::from_bits(at!(b, l))).to_bits()
                            });
                        }
                        Micro::MulFl { dst, a, b } => {
                            lanewise!(dst, |l| {
                                (f64::from_bits(at!(a, l)) * f64::from_bits(at!(b, l))).to_bits()
                            });
                        }
                        Micro::NegFl { dst, a } => {
                            lanewise!(dst, |l| (-f64::from_bits(at!(a, l))).to_bits());
                        }
                        Micro::CmpFl { dst, a, b, kind } => {
                            lanewise!(dst, |l| {
                                let o = f64::from_bits(at!(a, l))
                                    .partial_cmp(&f64::from_bits(at!(b, l)))
                                    .unwrap_or(std::cmp::Ordering::Equal);
                                kind.apply(o) as u64
                            });
                        }
                        Micro::MaskTo { dst, a, mask } => lanewise!(dst, |l| at!(a, l) & mask),
                        Micro::NonZero { dst, a } => lanewise!(dst, |l| (at!(a, l) != 0) as u64),
                        Micro::NonZeroFloat { dst, a } => {
                            lanewise!(dst, |l| (f64::from_bits(at!(a, l)) != 0.0) as u64);
                        }
                        Micro::ToFloatBits { dst, a } => {
                            lanewise!(dst, |l| (at!(a, l) as f64).to_bits());
                        }
                        Micro::ToFloatFix { dst, a, frac_bits } => {
                            lanewise!(dst, |l| {
                                (at!(a, l) as i64 as f64 * f64::powi(2.0, -(*frac_bits as i32)))
                                    .to_bits()
                            });
                        }
                        Micro::SelectU { dst, c, t, e } => {
                            lanewise!(dst, |l| if at!(c, l) != 0 { at!(t, l) } else { at!(e, l) });
                        }
                        Micro::Drive {
                            net_slot,
                            inst,
                            cands,
                        } => {
                            let act = &active[*inst as usize];
                            let d = *net_slot as usize * lanes;
                            for l in 0..lanes {
                                if !all_alive && !alive[l] {
                                    continue;
                                }
                                for (sfg, src) in cands {
                                    if act[*sfg as usize * lanes + l] {
                                        s[d + l] = s[*src as usize * lanes + l];
                                        break;
                                    }
                                }
                            }
                        }
                        Micro::Fire { inst } => {
                            let u = *inst as usize;
                            let (ins, outs) = &untimed_io[u];
                            for l in 0..lanes {
                                if !alive[l] {
                                    continue;
                                }
                                in_buf.clear();
                                in_buf.extend(
                                    ins.iter()
                                        .map(|(sl, ty)| decode(s[*sl as usize * lanes + l], *ty)),
                                );
                                out_buf.clear();
                                out_buf.extend(
                                    outs.iter()
                                        .map(|(sl, ty)| decode(s[*sl as usize * lanes + l], *ty)),
                                );
                                let block = &mut systems[l].untimed[u].block;
                                if block.ready(in_buf) {
                                    block.fire(in_buf, out_buf);
                                    for ((sl, _), v) in outs.iter().zip(out_buf.iter()) {
                                        s[*sl as usize * lanes + l] = encode(v);
                                    }
                                }
                            }
                        }
                    }
                }
            };
        }

        let mut word_ops = 0u64;
        for seg in segments {
            match *seg {
                Segment::Scalar { start, end } => scalar_run!(start..end),
                Segment::Word(b) => {
                    let blk = &blocks[b as usize];
                    if all_alive {
                        word_ops += exec_word_block(blk, s, scratch, lanes);
                    } else {
                        scalar_run!(blk.start..blk.end);
                    }
                }
            }
        }
        word_ops
    }
}

impl Simulator for BatchedSim {
    /// Broadcasts to every live lane.
    fn set_input(&mut self, name: &str, value: Value) -> Result<(), CoreError> {
        let slot = self.input_slot(name, &value)?;
        let bits = encode(&value);
        let base = slot * self.lanes;
        for l in 0..self.lanes {
            if self.alive[l] {
                self.slots[base + l] = bits;
            }
        }
        Ok(())
    }

    /// One batched cycle: guard pre-tape, per-lane transition selection,
    /// one shared tape pass, per-lane register commit, per-lane trace.
    /// A lane whose trace recording fails is masked off (see
    /// [`BatchedSim::fail_lane`]); the step itself only errors once
    /// *every* lane is masked, returning the lowest-indexed lane's
    /// error — so a 1-lane batch reports errors exactly like the scalar
    /// compiled back-end.
    fn step(&mut self) -> Result<(), CoreError> {
        self.budget.check_cycle(self.cycle)?;
        if !self.alive.iter().any(|a| *a) {
            return Err(self.first_error());
        }
        let c0 = self.cycle;

        // Guard evaluation over held values.
        let t_pre = self.obs.as_ref().map(|o| o.sp_pre.timer());
        let w_pre = self.exec(true);
        drop(t_pre);

        // Per-lane transition selection.
        let t_select = self.obs.as_ref().map(|o| o.sp_select.timer());
        let lanes = self.lanes;
        let fsm_tables = &self.prog.fsm_tables;
        let slots = &self.slots;
        let states = &mut self.states;
        let active = &mut self.active;
        for (i, tables) in fsm_tables.iter().enumerate() {
            let act = &mut active[i];
            if tables.is_empty() {
                for a in act.iter_mut() {
                    *a = true;
                }
                continue;
            }
            let nsfg = act.len() / lanes;
            for l in 0..lanes {
                if !self.alive[l] {
                    continue;
                }
                for k in 0..nsfg {
                    act[k * lanes + l] = false;
                }
                let st = states[i * lanes + l] as usize;
                let mut chosen: Option<&CompiledTransition> = None;
                for tr in &tables[st] {
                    let take = match tr.guard_slot {
                        None => true,
                        Some(g) => slots[g as usize * lanes + l] != 0,
                    };
                    if take {
                        chosen = Some(tr);
                        break;
                    }
                }
                if let Some(tr) = chosen {
                    states[i * lanes + l] = tr.to;
                    for sk in &tr.sfgs {
                        act[*sk as usize * lanes + l] = true;
                    }
                }
            }
        }
        drop(t_select);

        // Main tape: one walk, all lanes.
        let t_eval = self.obs.as_ref().map(|o| o.sp_eval.timer());
        let w_tape = self.exec(false);
        drop(t_eval);
        if let Some(o) = &self.obs {
            o.tape_passes.incr();
            if w_pre + w_tape > 0 {
                o.word_ops.add(w_pre + w_tape);
            }
        }

        // Per-lane register commit.
        let t_commit = self.obs.as_ref().map(|o| o.sp_commit.timer());
        for w in &self.prog.reg_writes {
            let act = &self.active[w.inst as usize];
            let rf = &mut self.regs[w.inst as usize];
            for l in 0..lanes {
                if !self.alive[l] {
                    continue;
                }
                for (sfg, src) in &w.cands {
                    if act[*sfg as usize * lanes + l] {
                        rf[w.reg as usize * lanes + l] = self.slots[*src as usize * lanes + l];
                        break;
                    }
                }
            }
        }
        drop(t_commit);

        self.cycle += 1;

        // Per-lane trace; a failing lane is masked, not fatal.
        let mut failed: Vec<(usize, CoreError)> = Vec::new();
        if let Some(traces) = &mut self.traces {
            let _t_trace = self.obs.as_ref().map(|o| o.sp_trace.timer());
            let sys = &self.systems[0];
            for (l, trace) in traces.iter_mut().enumerate() {
                if !self.alive[l] {
                    continue;
                }
                let row: Vec<Value> = sys
                    .primary_inputs
                    .iter()
                    .map(|p| p.net)
                    .chain(sys.primary_outputs.iter().map(|p| p.net))
                    .map(|net| {
                        let sl = self.prog.net_slot[net] as usize;
                        decode(self.slots[sl * lanes + l], self.prog.slot_ty[sl])
                    })
                    .collect();
                if let Err(e) = trace.record_cycle(&row) {
                    failed.push((l, e));
                }
            }
        }
        for (l, e) in failed {
            self.mask_lane(l, c0, e);
        }

        if !self.alive.iter().any(|a| *a) {
            return Err(self.first_error());
        }
        Ok(())
    }

    /// Lane 0's value.
    fn output(&self, name: &str) -> Result<Value, CoreError> {
        self.output_lane(0, name)
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Starts recording one trace per lane.
    fn enable_trace(&mut self) {
        if self.traces.is_none() {
            self.traces = Some(
                (0..self.lanes)
                    .map(|_| make_trace(&self.systems[0]))
                    .collect(),
            );
        }
    }

    /// Lane 0's trace (see [`BatchedSim::trace_lane`]).
    fn trace(&self) -> &Trace {
        static EMPTY: std::sync::OnceLock<Trace> = std::sync::OnceLock::new();
        self.trace_lane(0)
            .unwrap_or_else(|| EMPTY.get_or_init(Trace::default))
    }

    /// Lane 0's value.
    fn peek_net(&self, name: &str) -> Result<Value, CoreError> {
        self.peek_net_lane(0, name)
    }

    /// Broadcasts to every live lane.
    fn poke_net(&mut self, name: &str, value: Value) -> Result<(), CoreError> {
        let i = self.net_index(name)?;
        value.check_type_with(self.systems[0].nets[i].ty, || format!("net `{name}`"))?;
        let base = self.prog.net_slot[i] as usize * self.lanes;
        let bits = encode(&value);
        for l in 0..self.lanes {
            if self.alive[l] {
                self.slots[base + l] = bits;
            }
        }
        Ok(())
    }

    /// Lane 0's value.
    fn peek_reg(&self, instance: &str, reg: &str) -> Result<Value, CoreError> {
        self.peek_reg_lane(0, instance, reg)
    }

    /// Broadcasts to every live lane.
    fn poke_reg(&mut self, instance: &str, reg: &str, value: Value) -> Result<(), CoreError> {
        let (i, j) = crate::sim::interp::find_reg(&self.systems[0], instance, reg)?;
        value.check_type(
            self.systems[0].timed[i].comp.regs[j].ty,
            &format!("register `{instance}.{reg}`"),
        )?;
        let bits = encode(&value);
        for l in 0..self.lanes {
            if self.alive[l] {
                self.regs[i][j * self.lanes + l] = bits;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SigType;
    use crate::Component;
    use ocapi_obs::Registry;

    fn counter_system() -> System {
        let c = Component::build("counter");
        let out = c.output("count", SigType::Bits(8)).unwrap();
        let r = c.reg("r", SigType::Bits(8)).unwrap();
        let sfg = c.sfg("tick").unwrap();
        let q = c.q(r);
        sfg.drive(out, &q).unwrap();
        sfg.next(r, &(q.clone() + c.const_bits(8, 1))).unwrap();
        let comp = c.finish().unwrap();
        let mut sb = System::build("demo");
        let inst = sb.add_component("u0", comp).unwrap();
        sb.output("count", inst, "count").unwrap();
        sb.finish().unwrap()
    }

    #[test]
    fn obs_counts_lanes_tape_passes_and_maskings() {
        let reg = Registry::new();
        let mut sim = BatchedSim::from_fn(4, || Ok(counter_system()), OptLevel::Full).unwrap();
        sim.attach_obs(BatchObs::new(&reg));
        sim.run(5).unwrap();
        sim.fail_lane(
            2,
            CoreError::Unsupported {
                op: "test mask".to_owned(),
            },
        );
        sim.run(3).unwrap();
        // Deterministic counters: lane slots once, one tape pass per
        // batched step (not per lane), one masking event.
        assert_eq!(reg.counter("batch.lanes").get(), 4);
        assert_eq!(reg.counter("batch.tape_passes").get(), 8);
        assert_eq!(reg.counter("batch.masked_lanes").get(), 1);
        // An 8-bit counter has no Bool micro-ops: nothing to bitslice.
        assert_eq!(reg.counter("batch.word_ops").get(), 0);
        // The phase tree hangs off one `batch` root.
        let roots = reg.roots();
        let batch_root = roots.iter().find(|r| r.label() == "batch").unwrap();
        let labels: Vec<String> = batch_root
            .children()
            .iter()
            .map(|c| c.label().to_owned())
            .collect();
        for want in [
            "guard_pre_tape",
            "transition_select",
            "tape",
            "register_update",
            "trace",
        ] {
            assert!(labels.iter().any(|l| l == want), "missing span `{want}`");
        }
        // Masked lanes freeze; live lanes keep counting.
        assert_eq!(sim.output_lane(2, "count").unwrap(), Value::bits(8, 4));
        assert_eq!(sim.output_lane(0, "count").unwrap(), Value::bits(8, 7));
    }

    /// A pure-Bool majority/parity voter: every combinational micro-op
    /// is Bool, so the planner must carve out at least one word block.
    fn bool_vote_system() -> System {
        let c = Component::build("vote");
        let a = c.input("a", SigType::Bool).unwrap();
        let b = c.input("b", SigType::Bool).unwrap();
        let ci = c.input("ci", SigType::Bool).unwrap();
        let maj = c.output("maj", SigType::Bool).unwrap();
        let par = c.output("par", SigType::Bool).unwrap();
        let sfg = c.sfg("vote").unwrap();
        let (ra, rb, rc) = (c.read(a), c.read(b), c.read(ci));
        let m = (&ra & &rb) | (&ra & &rc) | (&rb & &rc);
        let p = &(&ra ^ &rb) ^ &rc;
        sfg.drive(maj, &m).unwrap();
        sfg.drive(par, &p).unwrap();
        let comp = c.finish().unwrap();
        let mut sb = System::build("vote_sys");
        let u = sb.add_component("u0", comp).unwrap();
        for name in ["a", "b", "ci"] {
            sb.input(name, SigType::Bool).unwrap();
            sb.connect_input(name, u, name).unwrap();
        }
        sb.output("maj", u, "maj").unwrap();
        sb.output("par", u, "par").unwrap();
        sb.finish().unwrap()
    }

    #[test]
    fn bool_tape_is_bitsliced_and_word_ops_counted() {
        for level in [OptLevel::None, OptLevel::Full] {
            let reg = Registry::new();
            let mut sim = BatchedSim::from_fn(8, || Ok(bool_vote_system()), level).unwrap();
            assert!(sim.word_blocks() >= 1, "no word block planned ({level:?})");
            assert!(sim.word_tape_coverage() >= MIN_WORD_RUN);
            sim.attach_obs(BatchObs::new(&reg));
            for l in 0..8usize {
                let bits = l as u64;
                sim.set_input_lane(l, "a", Value::Bool(bits & 1 != 0))
                    .unwrap();
                sim.set_input_lane(l, "b", Value::Bool(bits & 2 != 0))
                    .unwrap();
                sim.set_input_lane(l, "ci", Value::Bool(bits & 4 != 0))
                    .unwrap();
            }
            sim.step().unwrap();
            let packed = reg.counter("batch.word_ops").get();
            assert!(packed > 0, "word path did not run ({level:?})");
            for l in 0..8usize {
                let (a, b, ci) = (l & 1 != 0, l & 2 != 0, l & 4 != 0);
                assert_eq!(
                    sim.output_lane(l, "maj").unwrap(),
                    Value::Bool((a & b) | (a & ci) | (b & ci)),
                    "maj lane {l} ({level:?})"
                );
                assert_eq!(
                    sim.output_lane(l, "par").unwrap(),
                    Value::Bool(a ^ b ^ ci),
                    "par lane {l} ({level:?})"
                );
            }
            // Any masked lane forces the scalar fallback over the word
            // segments: the packed counter freezes.
            sim.fail_lane(
                3,
                CoreError::Unsupported {
                    op: "test mask".to_owned(),
                },
            );
            sim.step().unwrap();
            assert_eq!(reg.counter("batch.word_ops").get(), packed, "{level:?}");
        }
    }
}
