//! Lane-batched execution of the compiled micro-op tape.
//!
//! The compiled back-end exists to make the statistical workloads
//! tractable — the paper's environment runs "a BER simulation in
//! minutes" by regenerating an application-specific simulator. Its
//! Monte-Carlo consumers (BER sweeps, fault campaigns) run *many
//! independent instances of the same design*, so re-walking the
//! identical tape once per instance pays the full instruction-dispatch
//! cost N times for one design's worth of control flow.
//!
//! [`BatchedSim`] amortizes that cost: one [`Program`] (the monomorphised
//! tape of `sim::compiled`) is executed over N independent *lanes* in a
//! single pass. State is struct-of-arrays — every slot of the scalar
//! state vector becomes a lane-major stripe of N `u64`s — and each
//! micro-op is applied across all lanes in a tight inner loop, so the
//! tape walk (instruction decode, dispatch, operand indexing) is paid
//! once per cycle instead of once per instance.
//!
//! Lanes stay *independent*:
//!
//! * every lane has its own FSM states, SFG activation flags, register
//!   file and untimed-block state (one [`System`] per lane);
//! * control-flow divergence is handled per lane — transition selection
//!   and `Drive`/`Fire` resolution read the lane's own stripe;
//! * a per-lane error (a trace fault, a failed fault-injection poke)
//!   **masks the lane off** instead of aborting the batch: the lane's
//!   stripes freeze, its first error and cycle are recorded, and the
//!   remaining lanes keep running.
//!
//! Results are bit-identical to running N scalar [`CompiledSim`]s: the
//! `batch` integration suite asserts every output and every `peek_net`
//! value matches lane-for-lane at every optimization level.
//!
//! **Seeding contract** (composes with the `sim::par` sharding model,
//! DESIGN.md §7): batching never introduces randomness of its own. A
//! driver that batches work items over lanes must derive each item's
//! randomness from the item's *global index* (e.g.
//! [`XorShift64::stream`](crate::rng::XorShift64::stream) or an explicit
//! per-item seed), exactly as the scalar path does — then lanes × threads
//! is pure geometry and every classification and BER total is
//! byte-identical for any `--lanes`/`--threads` combination.
//!
//! [`CompiledSim`]: crate::CompiledSim
//! [`Program`]: crate::sim::compiled::Program

use crate::sim::budget::Budget;
use crate::sim::compiled::{
    build_program, decode, encode, init_regs, init_states, make_trace, CompiledTransition, Micro,
    Program,
};
use crate::sim::obs::BatchObs;
use crate::sim::opt::{OptLevel, OptStats};
use crate::sim::snapshot::{SimSnapshot, SnapshotBackend};
use crate::sim::Simulator;
use crate::system::System;
use crate::trace::Trace;
use crate::value::Value;
use crate::CoreError;

/// The lane-batched tape executor. See the [module docs](self).
///
/// Construct with [`BatchedSim::new`] / [`BatchedSim::new_with`] from one
/// structurally identical [`System`] per lane (the systems carry the
/// per-lane untimed-block state), or with [`BatchedSim::from_fn`] from a
/// builder closure. Drive either through the lane-addressed methods
/// (`set_input_lane`, `output_lane`, …) or through the [`Simulator`]
/// trait, which *broadcasts* writes to every live lane and reads lane 0 —
/// a 1-lane batch behaves exactly like a scalar [`CompiledSim`].
///
/// [`CompiledSim`]: crate::CompiledSim
pub struct BatchedSim {
    /// One system per lane; `systems[0]` is the one the tape was
    /// compiled from, every lane's untimed blocks live in its own copy.
    systems: Vec<System>,
    prog: Program,
    lanes: usize,
    /// Lane-major stripes: slot `k` of lane `l` is `slots[k*lanes + l]`.
    slots: Vec<u64>,
    /// FSM state per (instance, lane): `states[i*lanes + l]`.
    states: Vec<u32>,
    /// Per instance: SFG activation stripes `active[i][k*lanes + l]`.
    active: Vec<Vec<bool>>,
    /// Per instance: register stripes `regs[i][r*lanes + l]`.
    regs: Vec<Vec<u64>>,
    /// Lane-active mask: `false` = masked off by a per-lane error.
    alive: Vec<bool>,
    /// First error per masked lane: (cycle before the failing step, error).
    errors: Vec<Option<(u64, CoreError)>>,
    in_buf: Vec<Value>,
    out_buf: Vec<Value>,
    cycle: u64,
    traces: Option<Vec<Trace>>,
    obs: Option<BatchObs>,
    budget: Budget,
    design_hash: u64,
}

impl std::fmt::Debug for BatchedSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchedSim")
            .field("system", &self.systems[0].name)
            .field("lanes", &self.lanes)
            .field("tape_len", &self.prog.tape.len())
            .finish()
    }
}

/// One structural difference between two lane systems, rendered.
fn shape_diff(a: &System, b: &System, lane: usize) -> Option<String> {
    if a.name != b.name {
        return Some(format!("lane {lane}: system `{}` != `{}`", b.name, a.name));
    }
    if a.timed.len() != b.timed.len()
        || a.untimed.len() != b.untimed.len()
        || a.nets.len() != b.nets.len()
        || a.primary_inputs.len() != b.primary_inputs.len()
        || a.primary_outputs.len() != b.primary_outputs.len()
    {
        return Some(format!("lane {lane}: element counts differ from lane 0"));
    }
    for (x, y) in a.timed.iter().zip(&b.timed) {
        if x.name != y.name
            || x.comp.name != y.comp.name
            || x.comp.nodes.len() != y.comp.nodes.len()
            || x.comp.sfgs.len() != y.comp.sfgs.len()
            || x.comp.regs.len() != y.comp.regs.len()
        {
            return Some(format!(
                "lane {lane}: timed instance `{}` differs from lane 0",
                y.name
            ));
        }
    }
    for (i, (x, y)) in a.nets.iter().zip(&b.nets).enumerate() {
        if x.name != y.name || x.ty != y.ty {
            return Some(format!(
                "lane {lane}: net {i} (`{}`) differs from lane 0",
                y.name
            ));
        }
    }
    for (x, y) in a.untimed.iter().zip(&b.untimed) {
        if x.block.name() != y.block.name() {
            return Some(format!(
                "lane {lane}: untimed block `{}` differs from lane 0",
                y.block.name()
            ));
        }
    }
    None
}

impl BatchedSim {
    /// Compiles `systems[0]` and runs all lanes through its tape at the
    /// default optimization level. One lane per system.
    ///
    /// # Errors
    ///
    /// As [`BatchedSim::new_with`].
    pub fn new(systems: Vec<System>) -> Result<BatchedSim, CoreError> {
        BatchedSim::new_with(systems, OptLevel::default())
    }

    /// [`BatchedSim::new`] with an explicit tape-optimization level.
    ///
    /// All systems must be structurally identical (same components,
    /// nets, ports — e.g. built by the same closure); each lane keeps
    /// its own system for per-lane untimed-block state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CheckFailed`] when `systems` is empty or the
    /// lanes are not structurally identical, and
    /// [`CoreError::NotCompilable`] when the design has no static
    /// single-pass schedule.
    pub fn new_with(systems: Vec<System>, level: OptLevel) -> Result<BatchedSim, CoreError> {
        if systems.is_empty() {
            return Err(CoreError::CheckFailed {
                diagnostics: vec!["a batched simulator needs at least one lane".to_owned()],
            });
        }
        let diags: Vec<String> = systems
            .iter()
            .enumerate()
            .skip(1)
            .filter_map(|(l, s)| shape_diff(&systems[0], s, l))
            .collect();
        if !diags.is_empty() {
            return Err(CoreError::CheckFailed { diagnostics: diags });
        }
        let prog = build_program(&systems[0], level)?;
        let design_hash = crate::sim::snapshot::hash_program(&systems[0], &prog);
        let lanes = systems.len();
        let sys0 = &systems[0];

        let mut slots = vec![0u64; prog.init_slots.len() * lanes];
        for (k, v) in prog.init_slots.iter().enumerate() {
            slots[k * lanes..(k + 1) * lanes].fill(*v);
        }
        let states = init_states(sys0)
            .into_iter()
            .flat_map(|s| std::iter::repeat_n(s, lanes))
            .collect();
        let active = sys0
            .timed
            .iter()
            .map(|t| vec![false; t.comp.sfgs.len() * lanes])
            .collect();
        let regs = init_regs(sys0)
            .into_iter()
            .map(|rs| {
                let mut stripe = vec![0u64; rs.len() * lanes];
                for (r, v) in rs.iter().enumerate() {
                    stripe[r * lanes..(r + 1) * lanes].fill(*v);
                }
                stripe
            })
            .collect();

        Ok(BatchedSim {
            prog,
            lanes,
            slots,
            states,
            active,
            regs,
            alive: vec![true; lanes],
            errors: vec![None; lanes],
            in_buf: Vec::new(),
            out_buf: Vec::new(),
            cycle: 0,
            traces: None,
            obs: None,
            budget: Budget::none(),
            design_hash,
            systems,
        })
    }

    /// Attaches watchdog limits ([`Budget`]) to the whole batch:
    /// subsequent steps fail with [`CoreError::BudgetExceeded`] —
    /// a batch-wide error, not a lane masking — instead of running
    /// past them.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The design hash keying this batch's lane snapshots — identical
    /// to [`crate::CompiledSim::design_hash`] for the same system and
    /// optimization level, so lane snapshots and scalar compiled
    /// snapshots are interchangeable.
    pub fn design_hash(&self) -> u64 {
        self.design_hash
    }

    /// Captures the complete state of one (live) lane as a
    /// [`SimSnapshot`] — the same shape a [`crate::CompiledSim`] of
    /// this system produces. Lanes step in lock-step, so the snapshot
    /// carries the batch-wide cycle count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an out-of-range lane and
    /// the lane's own recorded error when it has been masked off.
    pub fn snapshot_lane(&self, lane: usize) -> Result<SimSnapshot, CoreError> {
        self.check_lane(lane)?;
        if let Some((_, e)) = self.lane_error(lane) {
            return Err(e.clone());
        }
        let lanes = self.lanes;
        let mut s = SimSnapshot::new(SnapshotBackend::Compiled, self.design_hash, self.cycle);
        let n_slots = self.prog.init_slots.len();
        s.push_section(
            "slots",
            (0..n_slots).map(|k| self.slots[k * lanes + lane]).collect(),
        );
        s.push_section(
            "states",
            (0..self.systems[0].timed.len())
                .map(|i| u64::from(self.states[i * lanes + lane]))
                .collect(),
        );
        let mut regs = Vec::new();
        for rf in &self.regs {
            let n_regs = rf.len() / lanes;
            for r in 0..n_regs {
                regs.push(rf[r * lanes + lane]);
            }
        }
        s.push_section("regs", regs);
        for (i, u) in self.systems[lane].untimed.iter().enumerate() {
            let words = u.block.snapshot_state();
            if !words.is_empty() {
                s.push_section(&format!("untimed.{i}"), words);
            }
        }
        Ok(s)
    }

    /// Restores one lane from a snapshot taken by
    /// [`BatchedSim::snapshot_lane`] or [`crate::CompiledSim::snapshot`]
    /// on the same build. The lane is revived if it was masked, and the
    /// batch-wide cycle counter is set to the snapshot's cycle — lanes
    /// step in lock-step, so restore every lane from snapshots of the
    /// same cycle.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownName`] for an out-of-range lane,
    /// [`CoreError::SnapshotMismatch`] for a snapshot of a different
    /// design or optimization level, and [`CoreError::SnapshotFormat`]
    /// for damaged sections.
    pub fn restore_lane(&mut self, lane: usize, snap: &SimSnapshot) -> Result<(), CoreError> {
        self.check_lane(lane)?;
        snap.check(SnapshotBackend::Compiled, self.design_hash)?;
        let lanes = self.lanes;
        let n_slots = self.prog.init_slots.len();
        let slot_words = snap.section_exact("slots", n_slots)?;
        let state_words = snap.section_exact("states", self.systems[0].timed.len())?;
        let n_regs: usize = self.regs.iter().map(|rf| rf.len() / lanes).sum();
        let reg_words = snap.section_exact("regs", n_regs)?;
        for (i, t) in self.systems[0].timed.iter().enumerate() {
            let idx = state_words[i];
            let n_states = t.comp.fsm.as_ref().map_or(1, |f| f.states.len() as u64);
            if idx >= n_states {
                return Err(CoreError::SnapshotFormat {
                    reason: format!("state selector {idx} out of range for `{}`", t.name),
                });
            }
        }
        for (k, w) in slot_words.iter().enumerate() {
            self.slots[k * lanes + lane] = *w;
        }
        for (i, w) in state_words.iter().enumerate() {
            self.states[i * lanes + lane] = *w as u32;
        }
        let mut k = 0;
        for rf in &mut self.regs {
            let n = rf.len() / lanes;
            for r in 0..n {
                rf[r * lanes + lane] = reg_words[k];
                k += 1;
            }
        }
        for (i, u) in self.systems[lane].untimed.iter_mut().enumerate() {
            let words = snap.section(&format!("untimed.{i}")).unwrap_or(&[]);
            if !u.block.restore_state(words) {
                return Err(CoreError::SnapshotFormat {
                    reason: format!(
                        "untimed block `{}` rejected its state section",
                        u.block.name()
                    ),
                });
            }
        }
        self.alive[lane] = true;
        self.errors[lane] = None;
        self.cycle = snap.cycle();
        Ok(())
    }

    /// Builds `lanes` systems with `make_sys` and batches them.
    ///
    /// # Errors
    ///
    /// Propagates `make_sys` errors, plus everything
    /// [`BatchedSim::new_with`] reports.
    pub fn from_fn(
        lanes: usize,
        mut make_sys: impl FnMut() -> Result<System, CoreError>,
        level: OptLevel,
    ) -> Result<BatchedSim, CoreError> {
        let mut systems = Vec::with_capacity(lanes);
        for _ in 0..lanes.max(1) {
            systems.push(make_sys()?);
        }
        BatchedSim::new_with(systems, level)
    }

    /// Number of lanes (live and masked).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Whether `lane` is still live (not masked off by an error).
    pub fn alive(&self, lane: usize) -> bool {
        self.alive.get(lane).copied().unwrap_or(false)
    }

    /// Number of lanes masked off so far.
    pub fn masked_lanes(&self) -> usize {
        self.alive.iter().filter(|a| !**a).count()
    }

    /// The first error of a masked lane, with the cycle (as counted
    /// before the failing step) at which it surfaced. `None` while the
    /// lane is live.
    pub fn lane_error(&self, lane: usize) -> Option<&(u64, CoreError)> {
        self.errors.get(lane).and_then(|e| e.as_ref())
    }

    /// Masks `lane` off with `error`, recorded at the current cycle.
    /// This is the masking entry point for batch drivers: a failed
    /// per-lane poke (fault injection) masks that lane instead of
    /// poisoning the batch. Masking a dead or out-of-range lane is a
    /// no-op (the first error wins).
    pub fn fail_lane(&mut self, lane: usize, error: CoreError) {
        let cycle = self.cycle;
        self.mask_lane(lane, cycle, error);
    }

    fn mask_lane(&mut self, lane: usize, cycle: u64, error: CoreError) {
        if lane < self.lanes && self.alive[lane] {
            self.alive[lane] = false;
            self.errors[lane] = Some((cycle, error));
            if let Some(o) = &self.obs {
                o.masked_lanes.incr();
            }
        }
    }

    /// The lane-0 system (the one the tape was compiled from).
    pub fn system(&self) -> &System {
        &self.systems[0]
    }

    /// Instructions executed per batched cycle (tape + guard pre-tape);
    /// each is applied to every live lane.
    pub fn tape_len(&self) -> usize {
        self.prog.tape.len() + self.prog.pre_tape.len()
    }

    /// What the tape optimizer did at build time.
    pub fn opt_stats(&self) -> OptStats {
        self.prog.opt_stats
    }

    /// Attaches the batch observability bundle: flushes the
    /// (deterministic) `batch.lanes` counter once, then every batched
    /// step bumps `batch.tape_passes`, every masking event bumps
    /// `batch.masked_lanes`, and the per-phase spans time the shared
    /// tape walk.
    pub fn attach_obs(&mut self, obs: BatchObs) {
        obs.lanes.add(self.lanes as u64);
        self.obs = Some(obs);
    }

    /// Sets a primary input of one lane for the coming cycle(s). Writes
    /// to masked lanes are ignored (their state is frozen).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown input or lane
    /// and [`CoreError::ValueType`] for a type mismatch.
    pub fn set_input_lane(
        &mut self,
        lane: usize,
        name: &str,
        value: Value,
    ) -> Result<(), CoreError> {
        let slot = self.input_slot(name, &value)?;
        self.check_lane(lane)?;
        if self.alive[lane] {
            self.slots[slot * self.lanes + lane] = encode(&value);
        }
        Ok(())
    }

    /// Reads a primary output of one lane (the value driven in the last
    /// completed cycle; frozen for masked lanes).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown output or lane.
    pub fn output_lane(&self, lane: usize, name: &str) -> Result<Value, CoreError> {
        self.check_lane(lane)?;
        let sys = &self.systems[0];
        sys.primary_outputs
            .iter()
            .find(|p| p.name == name)
            .map(|p| self.read_net_slot(p.net, lane))
            .ok_or_else(|| CoreError::UnknownName {
                kind: "primary output",
                name: name.to_owned(),
            })
    }

    /// Observes the current value on a named net of one lane.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown net or lane.
    pub fn peek_net_lane(&self, lane: usize, name: &str) -> Result<Value, CoreError> {
        self.check_lane(lane)?;
        let i = self.net_index(name)?;
        Ok(self.read_net_slot(i, lane))
    }

    /// Overwrites the value held on a named net of one lane — the
    /// per-lane fault-injection primitive. Writes to masked lanes are
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown net or lane and
    /// [`CoreError::ValueType`] for a type mismatch.
    pub fn poke_net_lane(
        &mut self,
        lane: usize,
        name: &str,
        value: Value,
    ) -> Result<(), CoreError> {
        self.check_lane(lane)?;
        let i = self.net_index(name)?;
        value.check_type(self.systems[0].nets[i].ty, &format!("net `{name}`"))?;
        if self.alive[lane] {
            self.slots[self.prog.net_slot[i] as usize * self.lanes + lane] = encode(&value);
        }
        Ok(())
    }

    /// Observes a register of one lane.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown instance,
    /// register or lane.
    pub fn peek_reg_lane(
        &self,
        lane: usize,
        instance: &str,
        reg: &str,
    ) -> Result<Value, CoreError> {
        self.check_lane(lane)?;
        let (i, j) = crate::sim::interp::find_reg(&self.systems[0], instance, reg)?;
        Ok(decode(
            self.regs[i][j * self.lanes + lane],
            self.systems[0].timed[i].comp.regs[j].ty,
        ))
    }

    /// Overwrites a register of one lane. Writes to masked lanes are
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown instance,
    /// register or lane and [`CoreError::ValueType`] for a type
    /// mismatch.
    pub fn poke_reg_lane(
        &mut self,
        lane: usize,
        instance: &str,
        reg: &str,
        value: Value,
    ) -> Result<(), CoreError> {
        self.check_lane(lane)?;
        let (i, j) = crate::sim::interp::find_reg(&self.systems[0], instance, reg)?;
        value.check_type(
            self.systems[0].timed[i].comp.regs[j].ty,
            &format!("register `{instance}.{reg}`"),
        )?;
        if self.alive[lane] {
            self.regs[i][j * self.lanes + lane] = encode(&value);
        }
        Ok(())
    }

    /// The recorded trace of one lane (`None` before
    /// [`Simulator::enable_trace`] or for an out-of-range lane). A
    /// masked lane's trace ends at its failing cycle.
    pub fn trace_lane(&self, lane: usize) -> Option<&Trace> {
        self.traces.as_ref().and_then(|t| t.get(lane))
    }

    /// The current FSM state name of a timed instance in one lane.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] if the lane or instance does
    /// not exist or the instance has no FSM.
    pub fn state_name_lane(&self, lane: usize, instance: &str) -> Result<&str, CoreError> {
        self.check_lane(lane)?;
        let sys = &self.systems[0];
        let (i, t) = sys
            .timed
            .iter()
            .enumerate()
            .find(|(_, t)| t.name == instance)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "instance",
                name: instance.to_owned(),
            })?;
        let fsm = t.comp.fsm.as_ref().ok_or_else(|| CoreError::UnknownName {
            kind: "fsm",
            name: instance.to_owned(),
        })?;
        Ok(&fsm.states[self.states[i * self.lanes + lane] as usize])
    }

    fn check_lane(&self, lane: usize) -> Result<(), CoreError> {
        if lane < self.lanes {
            Ok(())
        } else {
            Err(CoreError::UnknownName {
                kind: "lane",
                name: lane.to_string(),
            })
        }
    }

    fn net_index(&self, name: &str) -> Result<usize, CoreError> {
        self.systems[0]
            .nets
            .iter()
            .position(|n| n.name == name)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "net",
                name: name.to_owned(),
            })
    }

    fn input_slot(&self, name: &str, value: &Value) -> Result<usize, CoreError> {
        let pi = self.systems[0]
            .primary_inputs
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "primary input",
                name: name.to_owned(),
            })?;
        value.check_type(pi.ty, &format!("primary input `{name}`"))?;
        Ok(self.prog.net_slot[pi.net] as usize)
    }

    fn read_net_slot(&self, net: usize, lane: usize) -> Value {
        let sl = self.prog.net_slot[net] as usize;
        decode(self.slots[sl * self.lanes + lane], self.prog.slot_ty[sl])
    }

    /// The error of the lowest-indexed masked lane (every lane is dead
    /// when this is called).
    fn first_error(&self) -> CoreError {
        self.errors
            .iter()
            .flatten()
            .map(|(_, e)| e.clone())
            .next()
            .unwrap_or(CoreError::Unsupported {
                op: "batched step with no lanes".to_owned(),
            })
    }

    /// One pass of the selected tape over every live lane: each micro-op
    /// runs its own tight inner lane loop over the slot stripes.
    ///
    /// The loop comes in two shapes, chosen once per pass: while no lane
    /// is masked (the overwhelmingly common case) the inner loop carries
    /// no per-lane branch, so the stripes stream through unconditionally
    /// and the optimizer can unroll and vectorize; once any lane is
    /// masked, every store is guarded by the lane mask so a dead lane's
    /// stripes stay frozen.
    fn exec(&mut self, pre: bool) {
        let lanes = self.lanes;
        let instrs: &[Micro] = if pre {
            &self.prog.pre_tape
        } else {
            &self.prog.tape
        };
        let untimed_io = &self.prog.untimed_io;
        let s = &mut self.slots;
        let alive = &self.alive;
        let all_alive = alive.iter().all(|a| *a);
        let regs = &self.regs;
        let active = &self.active;
        let systems = &mut self.systems;
        let in_buf = &mut self.in_buf;
        let out_buf = &mut self.out_buf;

        // `at!(x, l)` — slot `x` of lane `l` in the striped state vector.
        macro_rules! at {
            ($x:expr, $l:ident) => {
                s[*$x as usize * lanes + $l]
            };
        }
        // Applies `$val` to `$dst` across every live lane: branch-free
        // over all lanes while none is masked, mask-guarded after.
        macro_rules! lanewise {
            ($dst:expr, |$l:ident| $val:expr) => {{
                let d = *$dst as usize * lanes;
                // One range check up front lets the per-lane store checks
                // fold away in the branch-free loop below.
                assert!(d + lanes <= s.len());
                if all_alive {
                    for $l in 0..lanes {
                        s[d + $l] = $val;
                    }
                } else {
                    for $l in 0..lanes {
                        if alive[$l] {
                            s[d + $l] = $val;
                        }
                    }
                }
            }};
        }

        for m in instrs {
            match m {
                Micro::Copy { dst, src } => lanewise!(dst, |l| at!(src, l)),
                Micro::RegRead { dst, inst, reg } => {
                    let r = &regs[*inst as usize];
                    let base = *reg as usize * lanes;
                    lanewise!(dst, |l| r[base + l]);
                }
                Micro::AddB { dst, a, b, mask } => {
                    lanewise!(dst, |l| at!(a, l).wrapping_add(at!(b, l)) & mask);
                }
                Micro::SubB { dst, a, b, mask } => {
                    lanewise!(dst, |l| at!(a, l).wrapping_sub(at!(b, l)) & mask);
                }
                Micro::MulB { dst, a, b, mask } => {
                    lanewise!(dst, |l| at!(a, l).wrapping_mul(at!(b, l)) & mask);
                }
                Micro::AndU { dst, a, b } => lanewise!(dst, |l| at!(a, l) & at!(b, l)),
                Micro::OrU { dst, a, b } => lanewise!(dst, |l| at!(a, l) | at!(b, l)),
                Micro::XorU { dst, a, b } => lanewise!(dst, |l| at!(a, l) ^ at!(b, l)),
                Micro::NotU { dst, a, mask } => lanewise!(dst, |l| !at!(a, l) & mask),
                Micro::NegB { dst, a, mask } => {
                    lanewise!(dst, |l| at!(a, l).wrapping_neg() & mask);
                }
                Micro::ShlB { dst, a, n, mask } => {
                    if *n >= 64 {
                        lanewise!(dst, |l| {
                            let _ = l;
                            0
                        });
                    } else {
                        lanewise!(dst, |l| (at!(a, l) << n) & mask);
                    }
                }
                Micro::ShrB { dst, a, n } => {
                    if *n >= 64 {
                        lanewise!(dst, |l| {
                            let _ = l;
                            0
                        });
                    } else {
                        lanewise!(dst, |l| at!(a, l) >> n);
                    }
                }
                Micro::ShrMask { dst, a, n, mask } => {
                    if *n >= 64 {
                        lanewise!(dst, |l| {
                            let _ = l;
                            0
                        });
                    } else {
                        lanewise!(dst, |l| (at!(a, l) >> n) & mask);
                    }
                }
                Micro::CmpU { dst, a, b, kind } => {
                    lanewise!(dst, |l| kind.apply(at!(a, l).cmp(&at!(b, l))) as u64);
                }
                Micro::AddF {
                    dst,
                    a,
                    b,
                    sha,
                    shb,
                } => {
                    lanewise!(dst, |l| {
                        let x = (at!(a, l) as i64) << sha;
                        let y = (at!(b, l) as i64) << shb;
                        (x + y) as u64
                    });
                }
                Micro::SubF {
                    dst,
                    a,
                    b,
                    sha,
                    shb,
                } => {
                    lanewise!(dst, |l| {
                        let x = (at!(a, l) as i64) << sha;
                        let y = (at!(b, l) as i64) << shb;
                        (x - y) as u64
                    });
                }
                Micro::MulF { dst, a, b } => {
                    lanewise!(dst, |l| {
                        let p = at!(a, l) as i64 as i128 * at!(b, l) as i64 as i128;
                        p as i64 as u64
                    });
                }
                Micro::NegF { dst, a } => {
                    lanewise!(dst, |l| (at!(a, l) as i64).wrapping_neg() as u64);
                }
                Micro::CmpF {
                    dst,
                    a,
                    b,
                    sha,
                    shb,
                    kind,
                } => {
                    lanewise!(dst, |l| {
                        let x = (at!(a, l) as i64 as i128) << sha;
                        let y = (at!(b, l) as i64 as i128) << shb;
                        kind.apply(x.cmp(&y)) as u64
                    });
                }
                Micro::CastF {
                    dst,
                    a,
                    src,
                    target,
                    rnd,
                    ovf,
                } => {
                    lanewise!(dst, |l| {
                        let v = ocapi_fixp::Fix::from_raw(at!(a, l) as i64, *src);
                        v.cast(*target, *rnd, *ovf).mantissa() as u64
                    });
                }
                Micro::FloatToFix {
                    dst,
                    a,
                    target,
                    rnd,
                    ovf,
                } => {
                    lanewise!(dst, |l| {
                        let x = f64::from_bits(at!(a, l));
                        ocapi_fixp::Fix::from_f64(x, *target, *rnd, *ovf).mantissa() as u64
                    });
                }
                Micro::AddFl { dst, a, b } => {
                    lanewise!(dst, |l| {
                        (f64::from_bits(at!(a, l)) + f64::from_bits(at!(b, l))).to_bits()
                    });
                }
                Micro::SubFl { dst, a, b } => {
                    lanewise!(dst, |l| {
                        (f64::from_bits(at!(a, l)) - f64::from_bits(at!(b, l))).to_bits()
                    });
                }
                Micro::MulFl { dst, a, b } => {
                    lanewise!(dst, |l| {
                        (f64::from_bits(at!(a, l)) * f64::from_bits(at!(b, l))).to_bits()
                    });
                }
                Micro::NegFl { dst, a } => {
                    lanewise!(dst, |l| (-f64::from_bits(at!(a, l))).to_bits());
                }
                Micro::CmpFl { dst, a, b, kind } => {
                    lanewise!(dst, |l| {
                        let o = f64::from_bits(at!(a, l))
                            .partial_cmp(&f64::from_bits(at!(b, l)))
                            .unwrap_or(std::cmp::Ordering::Equal);
                        kind.apply(o) as u64
                    });
                }
                Micro::MaskTo { dst, a, mask } => lanewise!(dst, |l| at!(a, l) & mask),
                Micro::NonZero { dst, a } => lanewise!(dst, |l| (at!(a, l) != 0) as u64),
                Micro::NonZeroFloat { dst, a } => {
                    lanewise!(dst, |l| (f64::from_bits(at!(a, l)) != 0.0) as u64);
                }
                Micro::ToFloatBits { dst, a } => {
                    lanewise!(dst, |l| (at!(a, l) as f64).to_bits());
                }
                Micro::ToFloatFix { dst, a, frac_bits } => {
                    lanewise!(dst, |l| {
                        (at!(a, l) as i64 as f64 * f64::powi(2.0, -(*frac_bits as i32))).to_bits()
                    });
                }
                Micro::SelectU { dst, c, t, e } => {
                    lanewise!(dst, |l| if at!(c, l) != 0 { at!(t, l) } else { at!(e, l) });
                }
                Micro::Drive {
                    net_slot,
                    inst,
                    cands,
                } => {
                    let act = &active[*inst as usize];
                    let d = *net_slot as usize * lanes;
                    for l in 0..lanes {
                        if !all_alive && !alive[l] {
                            continue;
                        }
                        for (sfg, src) in cands {
                            if act[*sfg as usize * lanes + l] {
                                s[d + l] = s[*src as usize * lanes + l];
                                break;
                            }
                        }
                    }
                }
                Micro::Fire { inst } => {
                    let u = *inst as usize;
                    let (ins, outs) = &untimed_io[u];
                    for l in 0..lanes {
                        if !alive[l] {
                            continue;
                        }
                        in_buf.clear();
                        in_buf.extend(
                            ins.iter()
                                .map(|(sl, ty)| decode(s[*sl as usize * lanes + l], *ty)),
                        );
                        out_buf.clear();
                        out_buf.extend(
                            outs.iter()
                                .map(|(sl, ty)| decode(s[*sl as usize * lanes + l], *ty)),
                        );
                        let block = &mut systems[l].untimed[u].block;
                        if block.ready(in_buf) {
                            block.fire(in_buf, out_buf);
                            for ((sl, _), v) in outs.iter().zip(out_buf.iter()) {
                                s[*sl as usize * lanes + l] = encode(v);
                            }
                        }
                    }
                }
            }
        }
    }
}

impl Simulator for BatchedSim {
    /// Broadcasts to every live lane.
    fn set_input(&mut self, name: &str, value: Value) -> Result<(), CoreError> {
        let slot = self.input_slot(name, &value)?;
        let bits = encode(&value);
        let base = slot * self.lanes;
        for l in 0..self.lanes {
            if self.alive[l] {
                self.slots[base + l] = bits;
            }
        }
        Ok(())
    }

    /// One batched cycle: guard pre-tape, per-lane transition selection,
    /// one shared tape pass, per-lane register commit, per-lane trace.
    /// A lane whose trace recording fails is masked off (see
    /// [`BatchedSim::fail_lane`]); the step itself only errors once
    /// *every* lane is masked, returning the lowest-indexed lane's
    /// error — so a 1-lane batch reports errors exactly like the scalar
    /// compiled back-end.
    fn step(&mut self) -> Result<(), CoreError> {
        self.budget.check_cycle(self.cycle)?;
        if !self.alive.iter().any(|a| *a) {
            return Err(self.first_error());
        }
        let c0 = self.cycle;

        // Guard evaluation over held values.
        let t_pre = self.obs.as_ref().map(|o| o.sp_pre.timer());
        self.exec(true);
        drop(t_pre);

        // Per-lane transition selection.
        let t_select = self.obs.as_ref().map(|o| o.sp_select.timer());
        let lanes = self.lanes;
        let fsm_tables = &self.prog.fsm_tables;
        let slots = &self.slots;
        let states = &mut self.states;
        let active = &mut self.active;
        for (i, tables) in fsm_tables.iter().enumerate() {
            let act = &mut active[i];
            if tables.is_empty() {
                for a in act.iter_mut() {
                    *a = true;
                }
                continue;
            }
            let nsfg = act.len() / lanes;
            for l in 0..lanes {
                if !self.alive[l] {
                    continue;
                }
                for k in 0..nsfg {
                    act[k * lanes + l] = false;
                }
                let st = states[i * lanes + l] as usize;
                let mut chosen: Option<&CompiledTransition> = None;
                for tr in &tables[st] {
                    let take = match tr.guard_slot {
                        None => true,
                        Some(g) => slots[g as usize * lanes + l] != 0,
                    };
                    if take {
                        chosen = Some(tr);
                        break;
                    }
                }
                if let Some(tr) = chosen {
                    states[i * lanes + l] = tr.to;
                    for sk in &tr.sfgs {
                        act[*sk as usize * lanes + l] = true;
                    }
                }
            }
        }
        drop(t_select);

        // Main tape: one walk, all lanes.
        let t_eval = self.obs.as_ref().map(|o| o.sp_eval.timer());
        self.exec(false);
        drop(t_eval);
        if let Some(o) = &self.obs {
            o.tape_passes.incr();
        }

        // Per-lane register commit.
        let t_commit = self.obs.as_ref().map(|o| o.sp_commit.timer());
        for w in &self.prog.reg_writes {
            let act = &self.active[w.inst as usize];
            let rf = &mut self.regs[w.inst as usize];
            for l in 0..lanes {
                if !self.alive[l] {
                    continue;
                }
                for (sfg, src) in &w.cands {
                    if act[*sfg as usize * lanes + l] {
                        rf[w.reg as usize * lanes + l] = self.slots[*src as usize * lanes + l];
                        break;
                    }
                }
            }
        }
        drop(t_commit);

        self.cycle += 1;

        // Per-lane trace; a failing lane is masked, not fatal.
        let mut failed: Vec<(usize, CoreError)> = Vec::new();
        if let Some(traces) = &mut self.traces {
            let _t_trace = self.obs.as_ref().map(|o| o.sp_trace.timer());
            let sys = &self.systems[0];
            for (l, trace) in traces.iter_mut().enumerate() {
                if !self.alive[l] {
                    continue;
                }
                let row: Vec<Value> = sys
                    .primary_inputs
                    .iter()
                    .map(|p| p.net)
                    .chain(sys.primary_outputs.iter().map(|p| p.net))
                    .map(|net| {
                        let sl = self.prog.net_slot[net] as usize;
                        decode(self.slots[sl * lanes + l], self.prog.slot_ty[sl])
                    })
                    .collect();
                if let Err(e) = trace.record_cycle(&row) {
                    failed.push((l, e));
                }
            }
        }
        for (l, e) in failed {
            self.mask_lane(l, c0, e);
        }

        if !self.alive.iter().any(|a| *a) {
            return Err(self.first_error());
        }
        Ok(())
    }

    /// Lane 0's value.
    fn output(&self, name: &str) -> Result<Value, CoreError> {
        self.output_lane(0, name)
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Starts recording one trace per lane.
    fn enable_trace(&mut self) {
        if self.traces.is_none() {
            self.traces = Some(
                (0..self.lanes)
                    .map(|_| make_trace(&self.systems[0]))
                    .collect(),
            );
        }
    }

    /// Lane 0's trace (see [`BatchedSim::trace_lane`]).
    fn trace(&self) -> &Trace {
        static EMPTY: std::sync::OnceLock<Trace> = std::sync::OnceLock::new();
        self.trace_lane(0)
            .unwrap_or_else(|| EMPTY.get_or_init(Trace::default))
    }

    /// Lane 0's value.
    fn peek_net(&self, name: &str) -> Result<Value, CoreError> {
        self.peek_net_lane(0, name)
    }

    /// Broadcasts to every live lane.
    fn poke_net(&mut self, name: &str, value: Value) -> Result<(), CoreError> {
        let i = self.net_index(name)?;
        value.check_type(self.systems[0].nets[i].ty, &format!("net `{name}`"))?;
        let base = self.prog.net_slot[i] as usize * self.lanes;
        let bits = encode(&value);
        for l in 0..self.lanes {
            if self.alive[l] {
                self.slots[base + l] = bits;
            }
        }
        Ok(())
    }

    /// Lane 0's value.
    fn peek_reg(&self, instance: &str, reg: &str) -> Result<Value, CoreError> {
        self.peek_reg_lane(0, instance, reg)
    }

    /// Broadcasts to every live lane.
    fn poke_reg(&mut self, instance: &str, reg: &str, value: Value) -> Result<(), CoreError> {
        let (i, j) = crate::sim::interp::find_reg(&self.systems[0], instance, reg)?;
        value.check_type(
            self.systems[0].timed[i].comp.regs[j].ty,
            &format!("register `{instance}.{reg}`"),
        )?;
        let bits = encode(&value);
        for l in 0..self.lanes {
            if self.alive[l] {
                self.regs[i][j * self.lanes + l] = bits;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SigType;
    use crate::Component;
    use ocapi_obs::Registry;

    fn counter_system() -> System {
        let c = Component::build("counter");
        let out = c.output("count", SigType::Bits(8)).unwrap();
        let r = c.reg("r", SigType::Bits(8)).unwrap();
        let sfg = c.sfg("tick").unwrap();
        let q = c.q(r);
        sfg.drive(out, &q).unwrap();
        sfg.next(r, &(q.clone() + c.const_bits(8, 1))).unwrap();
        let comp = c.finish().unwrap();
        let mut sb = System::build("demo");
        let inst = sb.add_component("u0", comp).unwrap();
        sb.output("count", inst, "count").unwrap();
        sb.finish().unwrap()
    }

    #[test]
    fn obs_counts_lanes_tape_passes_and_maskings() {
        let reg = Registry::new();
        let mut sim = BatchedSim::from_fn(4, || Ok(counter_system()), OptLevel::Full).unwrap();
        sim.attach_obs(BatchObs::new(&reg));
        sim.run(5).unwrap();
        sim.fail_lane(
            2,
            CoreError::Unsupported {
                op: "test mask".to_owned(),
            },
        );
        sim.run(3).unwrap();
        // Deterministic counters: lane slots once, one tape pass per
        // batched step (not per lane), one masking event.
        assert_eq!(reg.counter("batch.lanes").get(), 4);
        assert_eq!(reg.counter("batch.tape_passes").get(), 8);
        assert_eq!(reg.counter("batch.masked_lanes").get(), 1);
        // The phase tree hangs off one `batch` root.
        let roots = reg.roots();
        let batch_root = roots.iter().find(|r| r.label() == "batch").unwrap();
        let labels: Vec<String> = batch_root
            .children()
            .iter()
            .map(|c| c.label().to_owned())
            .collect();
        for want in [
            "guard_pre_tape",
            "transition_select",
            "tape",
            "register_update",
            "trace",
        ] {
            assert!(labels.iter().any(|l| l == want), "missing span `{want}`");
        }
        // Masked lanes freeze; live lanes keep counting.
        assert_eq!(sim.output_lane(2, "count").unwrap(), Value::bits(8, 4));
        assert_eq!(sim.output_lane(0, "count").unwrap(), Value::bits(8, 7));
    }
}
