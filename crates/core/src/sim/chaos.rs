//! Deterministic fault injection for the worker pool — a chaos harness.
//!
//! Robustness claims ("a panicked item is retried", "a budget-killed
//! item is classified, not fatal") are only trustworthy if they are
//! *tested*, and testing them needs failures that strike at exactly
//! chosen places. A [`ChaosPlan`] injects a panic, an artificial delay,
//! or a synthetic budget kill at chosen `(item index, attempt number)`
//! pairs: the first execution of item 7 can be made to panic while its
//! retry succeeds, for any thread count and any worker interleaving.
//!
//! The plan is deterministic by construction — injection depends only
//! on the item index and on how many times that item has been attempted
//! through this plan, never on which worker runs it or when.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::sim::budget::BudgetKind;
use crate::CoreError;

/// What a chaos injection does to the victim attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Panic inside the work item (exercises the pool's containment and
    /// the retry path for [`ParError::Panic`](crate::ParError::Panic)).
    Panic,
    /// Sleep for the given number of milliseconds before running the
    /// item — simulates a straggler without changing its result.
    Delay(u64),
    /// Fail the item with a synthetic
    /// [`CoreError::BudgetExceeded`] as if a watchdog had tripped.
    BudgetKill,
}

/// One planned injection: attempt number `attempt` (0-based) of work
/// item `index` suffers `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// The work-item index to strike.
    pub index: usize,
    /// Which attempt of that item to strike (0 = first execution).
    pub attempt: u32,
    /// What happens to it.
    pub kind: ChaosKind,
}

/// A deterministic schedule of injected failures, shared by all workers
/// of a pool run. See the module docs.
///
/// ```
/// use ocapi::sim::chaos::{ChaosKind, ChaosPlan};
///
/// let plan = ChaosPlan::new(vec![(3, 0, ChaosKind::Panic).into()]);
/// assert_eq!(plan.visit(3), Some(ChaosKind::Panic)); // first attempt
/// assert_eq!(plan.visit(3), None); // retry runs clean
/// assert_eq!(plan.visit(4), None);
/// ```
#[derive(Debug, Default)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
    attempts: Mutex<HashMap<usize, u32>>,
}

impl From<(usize, u32, ChaosKind)> for ChaosEvent {
    fn from((index, attempt, kind): (usize, u32, ChaosKind)) -> ChaosEvent {
        ChaosEvent {
            index,
            attempt,
            kind,
        }
    }
}

impl ChaosPlan {
    /// A plan that fires the given events and leaves every other
    /// attempt untouched.
    pub fn new(events: Vec<ChaosEvent>) -> ChaosPlan {
        ChaosPlan {
            events,
            attempts: Mutex::new(HashMap::new()),
        }
    }

    /// Records one attempt of item `index` and returns the injection
    /// scheduled for it, if any. Call exactly once per execution of the
    /// item, before doing its work.
    pub fn visit(&self, index: usize) -> Option<ChaosKind> {
        let attempt = {
            let mut counts = match self.attempts.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            let slot = counts.entry(index).or_insert(0);
            let current = *slot;
            *slot += 1;
            current
        };
        self.events
            .iter()
            .find(|e| e.index == index && e.attempt == attempt)
            .map(|e| e.kind)
    }

    /// [`ChaosPlan::visit`] with the injection *applied*: panics,
    /// sleeps, or returns the synthetic budget error for the caller to
    /// propagate. Returns `Ok(())` when the attempt runs clean (or
    /// after the delay has been served).
    ///
    /// # Errors
    ///
    /// [`CoreError::BudgetExceeded`] for a [`ChaosKind::BudgetKill`]
    /// injection.
    ///
    /// # Panics
    ///
    /// Panics (deliberately) for a [`ChaosKind::Panic`] injection.
    pub fn strike(&self, index: usize) -> Result<(), CoreError> {
        match self.visit(index) {
            None => Ok(()),
            Some(ChaosKind::Panic) => panic!("chaos: injected panic at item {index}"),
            Some(ChaosKind::Delay(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                Ok(())
            }
            Some(ChaosKind::BudgetKill) => Err(CoreError::BudgetExceeded {
                kind: BudgetKind::WallClock,
                at_cycle: 0,
            }),
        }
    }

    /// How many times item `index` has been attempted so far.
    pub fn attempts(&self, index: usize) -> u32 {
        let counts = match self.attempts.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        counts.get(&index).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strikes_only_the_planned_attempt() {
        let plan = ChaosPlan::new(vec![
            (2, 0, ChaosKind::BudgetKill).into(),
            (2, 1, ChaosKind::BudgetKill).into(),
            (5, 1, ChaosKind::Delay(0)).into(),
        ]);
        assert!(plan.strike(2).is_err()); // attempt 0
        assert!(plan.strike(2).is_err()); // attempt 1
        assert!(plan.strike(2).is_ok()); // attempt 2 runs clean
        assert!(plan.strike(5).is_ok()); // attempt 0 untouched
        assert!(plan.strike(5).is_ok()); // attempt 1 delayed, then clean
        assert_eq!(plan.attempts(2), 3);
        assert_eq!(plan.attempts(5), 2);
        assert_eq!(plan.attempts(9), 0);
    }

    #[test]
    #[should_panic(expected = "chaos: injected panic at item 1")]
    fn panic_injection_panics() {
        let plan = ChaosPlan::new(vec![(1, 0, ChaosKind::Panic).into()]);
        let _ = plan.strike(1);
    }

    #[test]
    fn budget_kill_is_typed() {
        let plan = ChaosPlan::new(vec![(0, 0, ChaosKind::BudgetKill).into()]);
        match plan.strike(0) {
            Err(CoreError::BudgetExceeded { kind, .. }) => {
                assert_eq!(kind, BudgetKind::WallClock);
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }
}
