//! The compiled simulator: the captured design is "regenerated" into an
//! application-specific, flat evaluation tape executed once per cycle.
//!
//! The paper's environment writes out optimised C++ and recompiles it
//! (§5, Figure 7). Inside one Rust process the honest equivalent is to
//! *levelize and monomorphise* the whole system at build time:
//!
//! * every expression node of every component becomes one slot in a
//!   dense `u64` array (bools as 0/1, bit words masked, fixed point as
//!   sign-extended mantissas, floats as bit patterns);
//! * every operation becomes a *type-specialised* micro-instruction with
//!   its masks, alignment shifts and saturation bounds precomputed — the
//!   static typing a regenerated C++ simulator would get from the
//!   compiler;
//! * all instructions are placed in a single topologically-sorted tape,
//!   so a cycle is one linear pass — no graph traversal, no scheduling,
//!   no dynamic dispatch.
//!
//! Soundness note: monomorphisation relies on runtime fixed-point formats
//! always matching the statically inferred node types, which holds
//! because [`crate::BinOp::result_type`] rejects any combination whose
//! exact result would not fit 63 bits at *capture* time.
//!
//! A static single-pass schedule exists exactly when the conservative
//! cross-component dependence graph is acyclic; otherwise
//! [`CompiledSim::new`] returns [`CoreError::NotCompilable`] and the
//! interpreted simulator must be used.

use std::collections::HashMap;

use ocapi_fixp::{Fix, Format, Overflow, Rounding};

use crate::comp::{Component, NodeId, NodeKind};
use crate::sim::budget::Budget;
use crate::sim::hash::CompiledTape;
use crate::sim::obs::SimObs;
use crate::sim::opt::{self, OptEnv, OptLevel, OptStats};
use crate::sim::snapshot::{SimSnapshot, SnapshotBackend};
use crate::sim::Simulator;
use crate::system::{NetSource, System};
use crate::trace::Trace;
use crate::value::{BinOp, SigType, UnOp, Value};
use crate::CoreError;

/// Per untimed block: (input slot, type) and (output slot, type) lists.
pub(crate) type UntimedIo = (Vec<(u32, SigType)>, Vec<(u32, SigType)>);

/// Generic (pre-monomorphisation) instruction, used during construction,
/// topological sorting and optimization (`sim::opt`).
#[derive(Debug, Clone)]
pub(crate) enum Instr {
    Copy {
        dst: u32,
        src: u32,
    },
    RegRead {
        dst: u32,
        inst: u32,
        reg: u32,
    },
    Un {
        op: UnOp,
        dst: u32,
        a: u32,
    },
    Bin {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    Select {
        dst: u32,
        c: u32,
        t: u32,
        e: u32,
    },
    Drive {
        net_slot: u32,
        inst: u32,
        cands: Vec<(u32, u32)>,
    },
    Fire {
        inst: u32,
    },
}

/// Comparison kinds shared by the specialised compare micro-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cmp {
    fn of(op: BinOp) -> Cmp {
        match op {
            BinOp::Eq => Cmp::Eq,
            BinOp::Ne => Cmp::Ne,
            BinOp::Lt => Cmp::Lt,
            BinOp::Le => Cmp::Le,
            BinOp::Gt => Cmp::Gt,
            BinOp::Ge => Cmp::Ge,
            _ => unreachable!("not a comparison"),
        }
    }

    #[inline]
    pub(crate) fn apply(self, o: std::cmp::Ordering) -> bool {
        match self {
            Cmp::Eq => o.is_eq(),
            Cmp::Ne => o.is_ne(),
            Cmp::Lt => o.is_lt(),
            Cmp::Le => o.is_le(),
            Cmp::Gt => o.is_gt(),
            Cmp::Ge => o.is_ge(),
        }
    }
}

/// A monomorphised micro-instruction over raw `u64` slots.
///
/// Crate-visible so the lane-batched executor (`sim::batch`) can walk
/// the same tape with its own (strided, multi-lane) inner loops.
#[derive(Debug, Clone)]
pub(crate) enum Micro {
    Copy {
        dst: u32,
        src: u32,
    },
    RegRead {
        dst: u32,
        inst: u32,
        reg: u32,
    },
    // Bit words (stored masked) and bools (0/1).
    AddB {
        dst: u32,
        a: u32,
        b: u32,
        mask: u64,
    },
    SubB {
        dst: u32,
        a: u32,
        b: u32,
        mask: u64,
    },
    MulB {
        dst: u32,
        a: u32,
        b: u32,
        mask: u64,
    },
    AndU {
        dst: u32,
        a: u32,
        b: u32,
    },
    OrU {
        dst: u32,
        a: u32,
        b: u32,
    },
    XorU {
        dst: u32,
        a: u32,
        b: u32,
    },
    NotU {
        dst: u32,
        a: u32,
        mask: u64,
    },
    NegB {
        dst: u32,
        a: u32,
        mask: u64,
    },
    ShlB {
        dst: u32,
        a: u32,
        n: u32,
        mask: u64,
    },
    ShrB {
        dst: u32,
        a: u32,
        n: u32,
    },
    ShrMask {
        dst: u32,
        a: u32,
        n: u32,
        mask: u64,
    },
    CmpU {
        dst: u32,
        a: u32,
        b: u32,
        kind: Cmp,
    },
    // Fixed point (stored as sign-extended mantissas).
    AddF {
        dst: u32,
        a: u32,
        b: u32,
        sha: u32,
        shb: u32,
    },
    SubF {
        dst: u32,
        a: u32,
        b: u32,
        sha: u32,
        shb: u32,
    },
    MulF {
        dst: u32,
        a: u32,
        b: u32,
    },
    NegF {
        dst: u32,
        a: u32,
    },
    CmpF {
        dst: u32,
        a: u32,
        b: u32,
        sha: u32,
        shb: u32,
        kind: Cmp,
    },
    CastF {
        dst: u32,
        a: u32,
        src: Format,
        target: Format,
        rnd: Rounding,
        ovf: Overflow,
    },
    FloatToFix {
        dst: u32,
        a: u32,
        target: Format,
        rnd: Rounding,
        ovf: Overflow,
    },
    // Floats (stored as bit patterns).
    AddFl {
        dst: u32,
        a: u32,
        b: u32,
    },
    SubFl {
        dst: u32,
        a: u32,
        b: u32,
    },
    MulFl {
        dst: u32,
        a: u32,
        b: u32,
    },
    NegFl {
        dst: u32,
        a: u32,
    },
    CmpFl {
        dst: u32,
        a: u32,
        b: u32,
        kind: Cmp,
    },
    // Conversions.
    MaskTo {
        dst: u32,
        a: u32,
        mask: u64,
    },
    NonZero {
        dst: u32,
        a: u32,
    },
    NonZeroFloat {
        dst: u32,
        a: u32,
    },
    ToFloatBits {
        dst: u32,
        a: u32,
    },
    ToFloatFix {
        dst: u32,
        a: u32,
        frac_bits: u32,
    },
    // Control.
    SelectU {
        dst: u32,
        c: u32,
        t: u32,
        e: u32,
    },
    Drive {
        net_slot: u32,
        inst: u32,
        cands: Vec<(u32, u32)>,
    },
    Fire {
        inst: u32,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct CompiledTransition {
    pub(crate) guard_slot: Option<u32>,
    pub(crate) sfgs: Vec<u32>,
    pub(crate) to: u32,
}

#[derive(Debug, Clone)]
pub(crate) struct RegWriteSel {
    pub(crate) inst: u32,
    pub(crate) reg: u32,
    pub(crate) cands: Vec<(u32, u32)>,
}

/// The compiled (levelized, monomorphised single-pass) simulator.
///
/// Construct with [`CompiledSim::new`]; drive through the [`Simulator`]
/// trait exactly like [`crate::InterpSim`]. Behaviour is cycle-identical
/// to the interpreted simulator for any design both accept.
pub struct CompiledSim {
    sys: System,
    slots: Vec<u64>,
    init_slots: Vec<u64>,
    slot_ty: Vec<SigType>,
    pre_tape: Vec<Micro>,
    tape: Vec<Micro>,
    fsm_tables: Vec<Vec<Vec<CompiledTransition>>>,
    reg_writes: Vec<RegWriteSel>,
    states: Vec<u32>,
    active: Vec<Vec<bool>>,
    regs: Vec<Vec<u64>>,
    net_slot: Vec<u32>,
    untimed_io: Vec<UntimedIo>,
    in_buf: Vec<Value>,
    out_buf: Vec<Value>,
    cycle: u64,
    trace: Option<Trace>,
    obs: Option<SimObs>,
    opt_stats: OptStats,
    budget: Budget,
    design_hash: u64,
    /// Exclusive upper bound on every slot index either tape, the FSM
    /// guards or the commit candidates reference; asserted once per
    /// step so the per-op range checks in the hot loop can fold (the
    /// same pattern `BatchedSim` uses for its lane stripes).
    slot_bound: u32,
}

impl std::fmt::Debug for CompiledSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledSim")
            .field("system", &self.sys.name)
            .field("slots", &self.slots.len())
            .field("tape_len", &self.tape.len())
            .finish()
    }
}

pub(crate) fn encode(v: &Value) -> u64 {
    match v {
        Value::Bool(b) => *b as u64,
        Value::Bits { bits, .. } => *bits,
        Value::Fixed(f) => f.mantissa() as u64,
        Value::Float(x) => x.to_bits(),
    }
}

pub(crate) fn decode(bits: u64, ty: SigType) -> Value {
    match ty {
        SigType::Bool => Value::Bool(bits != 0),
        SigType::Bits(w) => Value::bits(w, bits),
        SigType::Fixed(f) => Value::Fixed(Fix::from_raw(bits as i64, f)),
        SigType::Float => Value::Float(f64::from_bits(bits)),
    }
}

pub(crate) fn mask_of(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

struct Builder {
    slots: Vec<u64>,
    slot_ty: Vec<SigType>,
    /// node slot of (inst, node)
    node_slot: Vec<Vec<u32>>,
    net_slot: Vec<u32>,
    instrs: Vec<Instr>,
    /// producing instruction per slot (absent = available at cycle start)
    producer: HashMap<u32, usize>,
}

impl Builder {
    fn alloc(&mut self, init: Value) -> u32 {
        self.slots.push(encode(&init));
        self.slot_ty.push(init.sig_type());
        self.slots.len() as u32 - 1
    }

    fn emit(&mut self, instr: Instr, produces: u32) {
        self.instrs.push(instr);
        self.producer.insert(produces, self.instrs.len() - 1);
    }
}

/// The immutable result of levelizing and monomorphising one system:
/// everything [`CompiledSim`] needs apart from the mutable per-instance
/// state. Crate-visible so `sim::batch` can replicate the state over N
/// lanes while sharing one tape walk.
#[derive(Debug, Clone)]
pub(crate) struct Program {
    pub(crate) init_slots: Vec<u64>,
    pub(crate) slot_ty: Vec<SigType>,
    pub(crate) pre_tape: Vec<Micro>,
    pub(crate) tape: Vec<Micro>,
    pub(crate) fsm_tables: Vec<Vec<Vec<CompiledTransition>>>,
    pub(crate) reg_writes: Vec<RegWriteSel>,
    pub(crate) net_slot: Vec<u32>,
    pub(crate) untimed_io: Vec<UntimedIo>,
    pub(crate) opt_stats: OptStats,
}

/// Initial FSM state per timed instance.
pub(crate) fn init_states(sys: &System) -> Vec<u32> {
    sys.timed
        .iter()
        .map(|t| t.comp.fsm.as_ref().map_or(0, |f| f.initial.0))
        .collect()
}

/// Initial register file (encoded) per timed instance.
pub(crate) fn init_regs(sys: &System) -> Vec<Vec<u64>> {
    sys.timed
        .iter()
        .map(|t| t.comp.regs.iter().map(|r| encode(&r.init)).collect())
        .collect()
}

/// Levelizes and monomorphises `sys` into a [`Program`].
pub(crate) fn build_program(sys: &System, level: OptLevel) -> Result<Program, CoreError> {
    let mut b = Builder {
        slots: Vec::new(),
        slot_ty: Vec::new(),
        node_slot: Vec::new(),
        net_slot: Vec::new(),
        instrs: Vec::new(),
        producer: HashMap::new(),
    };

    // 1. Net slots.
    for net in &sys.nets {
        let init = match &net.source {
            NetSource::Constant(v) => *v,
            _ => net.ty.zero(),
        };
        let s = b.alloc(init);
        b.net_slot.push(s);
    }

    // 2. Node slots per timed instance. Input nodes alias their net's
    //    slot; constants are prefilled.
    for (i, t) in sys.timed.iter().enumerate() {
        let comp = &t.comp;
        let mut slots = Vec::with_capacity(comp.nodes.len());
        for node in &comp.nodes {
            let s = match &node.kind {
                NodeKind::Input(p) => b.net_slot[sys.timed_in_net[i][p.index()]],
                NodeKind::Const(v) => b.alloc(*v),
                _ => b.alloc(node.ty.zero()),
            };
            slots.push(s);
        }
        b.node_slot.push(slots);
    }

    // 3. Instructions for every non-trivial node.
    for (i, t) in sys.timed.iter().enumerate() {
        let comp = &t.comp;
        for (n, node) in comp.nodes.iter().enumerate() {
            let dst = b.node_slot[i][n];
            match &node.kind {
                NodeKind::Const(_) | NodeKind::Input(_) => {}
                NodeKind::RegRead(r) => b.emit(
                    Instr::RegRead {
                        dst,
                        inst: i as u32,
                        reg: r.0,
                    },
                    dst,
                ),
                NodeKind::Un(op, a) => {
                    let a = b.node_slot[i][a.index()];
                    b.emit(Instr::Un { op: *op, dst, a }, dst);
                }
                NodeKind::Bin(op, x, y) => {
                    let a = b.node_slot[i][x.index()];
                    let b2 = b.node_slot[i][y.index()];
                    b.emit(
                        Instr::Bin {
                            op: *op,
                            dst,
                            a,
                            b: b2,
                        },
                        dst,
                    );
                }
                NodeKind::Select {
                    cond,
                    then,
                    otherwise,
                } => {
                    let c = b.node_slot[i][cond.index()];
                    let tt = b.node_slot[i][then.index()];
                    let e = b.node_slot[i][otherwise.index()];
                    b.emit(Instr::Select { dst, c, t: tt, e }, dst);
                }
            }
        }
    }

    // 4. Drive instructions for timed-driven nets, Fire for untimed.
    for (ni, net) in sys.nets.iter().enumerate() {
        if let NetSource::TimedOut { inst, port } = net.source {
            let comp = &sys.timed[inst].comp;
            let cands: Vec<(u32, u32)> = comp
                .sfgs
                .iter()
                .enumerate()
                .flat_map(|(si, sfg)| {
                    sfg.outputs
                        .iter()
                        .filter(|(p, _)| p.index() == port)
                        .map(move |(_, node)| (si as u32, node))
                })
                .map(|(si, node)| (si, b.node_slot[inst][node.index()]))
                .collect();
            let net_slot = b.net_slot[ni];
            b.emit(
                Instr::Drive {
                    net_slot,
                    inst: inst as u32,
                    cands,
                },
                net_slot,
            );
        }
    }
    let mut untimed_io = Vec::new();
    for (u, inst) in sys.untimed.iter().enumerate() {
        let in_slots: Vec<(u32, SigType)> = sys.untimed_in_net[u]
            .iter()
            .zip(&inst.inputs)
            .map(|(n, p)| (b.net_slot[*n], p.ty))
            .collect();
        let mut out_slots = Vec::new();
        for (p, decl) in inst.outputs.iter().enumerate() {
            let net = sys.nets.iter().position(|n| {
                    matches!(n.source, NetSource::UntimedOut { inst: i2, port } if i2 == u && port == p)
                });
            let slot = match net {
                Some(n) => b.net_slot[n],
                None => b.alloc(decl.ty.zero()),
            };
            out_slots.push((slot, decl.ty));
        }
        let fire_idx = b.instrs.len();
        b.instrs.push(Instr::Fire { inst: u as u32 });
        for (s, _) in &out_slots {
            b.producer.insert(*s, fire_idx);
        }
        untimed_io.push((in_slots, out_slots));
    }

    // 5. Topological sort of the instruction list.
    let mut sorted = topo_sort(&b, sys, &untimed_io)?;

    // 6. Guard pre-tape: duplicate guard cones reading held net values.
    let mut pre_instrs: Vec<Instr> = Vec::new();
    let mut fsm_tables = Vec::new();
    for (i, t) in sys.timed.iter().enumerate() {
        let comp = &t.comp;
        let mut memo: HashMap<NodeId, u32> = HashMap::new();
        let mut table: Vec<Vec<CompiledTransition>> = Vec::new();
        if let Some(fsm) = &comp.fsm {
            table.resize(fsm.states.len(), Vec::new());
            for tr in &fsm.transitions {
                let guard_slot = tr
                    .guard
                    .map(|g| emit_guard_cone(comp, g, i, sys, &mut b, &mut memo, &mut pre_instrs));
                table[tr.from.index()].push(CompiledTransition {
                    guard_slot,
                    sfgs: tr.actions.iter().map(|s| s.0).collect(),
                    to: tr.to.0,
                });
            }
        }
        fsm_tables.push(table);
    }

    // 7. Register write selectors (before the optimizer so slot
    //    renames apply to them and they can root the liveness walk).
    let mut reg_writes = Vec::new();
    for (i, t) in sys.timed.iter().enumerate() {
        let comp = &t.comp;
        for r in 0..comp.regs.len() {
            let cands: Vec<(u32, u32)> = comp
                .sfgs
                .iter()
                .enumerate()
                .flat_map(|(si, sfg)| {
                    sfg.reg_writes
                        .iter()
                        .filter(|(reg, _)| reg.index() == r)
                        .map(move |(_, node)| (si as u32, node))
                })
                .map(|(si, node)| (si, b.node_slot[i][node.index()]))
                .collect();
            if !cands.is_empty() {
                reg_writes.push(RegWriteSel {
                    inst: i as u32,
                    reg: r as u32,
                    cands,
                });
            }
        }
    }

    // 8. Optimize both tapes over the generic instruction form.
    let opt_stats = opt::optimize(
        level,
        &mut sorted,
        &mut pre_instrs,
        &mut OptEnv {
            slots: &mut b.slots,
            slot_ty: &mut b.slot_ty,
            net_slot: &mut b.net_slot,
            reg_writes: &mut reg_writes,
            untimed_io: &mut untimed_io,
            fsm_tables: &mut fsm_tables,
        },
    );

    // 9. Monomorphise both tapes.
    let tape: Vec<Micro> = sorted.iter().map(|i| lower(i, &b.slot_ty)).collect();
    let pre_tape: Vec<Micro> = pre_instrs.iter().map(|i| lower(i, &b.slot_ty)).collect();

    Ok(Program {
        init_slots: b.slots,
        slot_ty: b.slot_ty,
        pre_tape,
        tape,
        fsm_tables,
        reg_writes,
        net_slot: b.net_slot,
        untimed_io,
        opt_stats,
    })
}

impl CompiledSim {
    /// Levelizes and monomorphises the system into a static evaluation
    /// tape.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotCompilable`] when the conservative
    /// cross-component dependence graph is cyclic (possible combinational
    /// loop), in which case the interpreted simulator should be used.
    pub fn new(sys: System) -> Result<CompiledSim, CoreError> {
        CompiledSim::new_with(sys, OptLevel::default())
    }

    /// Like [`CompiledSim::new`] but with an explicit optimization level
    /// for the evaluation tape (see [`OptLevel`]). All levels are
    /// cycle-identical to the interpreted simulator; `Full` (the
    /// default) additionally folds constants, shares common
    /// subexpressions, removes dead code and compacts the state vector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotCompilable`] when the conservative
    /// cross-component dependence graph is cyclic.
    pub fn new_with(sys: System, level: OptLevel) -> Result<CompiledSim, CoreError> {
        let prog = build_program(&sys, level)?;
        let design_hash = crate::sim::snapshot::hash_program(&sys, &prog);
        Ok(CompiledSim::from_parts(sys, prog, design_hash))
    }

    /// Instantiates a simulator from a cached [`CompiledTape`] without
    /// recompiling: the levelized program is reused and only the mutable
    /// per-instance state is built fresh. Behaviour (and
    /// [`CompiledSim::design_hash`]) is identical to compiling `sys` at
    /// the tape's level — the warm path of the simulation service's
    /// tape cache.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TapeMismatch`] when `sys` is not
    /// structurally the system the tape was compiled from.
    pub fn from_tape(sys: System, tape: &CompiledTape) -> Result<CompiledSim, CoreError> {
        tape.check_system(&sys)?;
        Ok(CompiledSim::from_parts(
            sys,
            (*tape.prog).clone(),
            tape.program_hash(),
        ))
    }

    /// Assembles a simulator around an already-built program.
    fn from_parts(sys: System, prog: Program, design_hash: u64) -> CompiledSim {
        let slot_bound = crate::sim::lower::slot_bound_of(&prog);
        let states = init_states(&sys);
        let active = sys
            .timed
            .iter()
            .map(|t| vec![false; t.comp.sfgs.len()])
            .collect();
        let regs = init_regs(&sys);
        CompiledSim {
            slots: prog.init_slots.clone(),
            init_slots: prog.init_slots,
            slot_ty: prog.slot_ty,
            pre_tape: prog.pre_tape,
            tape: prog.tape,
            fsm_tables: prog.fsm_tables,
            reg_writes: prog.reg_writes,
            states,
            active,
            regs,
            net_slot: prog.net_slot,
            untimed_io: prog.untimed_io,
            in_buf: Vec::new(),
            out_buf: Vec::new(),
            cycle: 0,
            trace: None,
            obs: None,
            opt_stats: prog.opt_stats,
            budget: Budget::none(),
            design_hash,
            slot_bound,
            sys,
        }
    }

    /// Attaches watchdog limits ([`Budget`]): subsequent steps fail
    /// with [`CoreError::BudgetExceeded`] instead of running past them.
    /// The settle-iteration limit does not apply here — the compiled
    /// tape is straight-line code with no settle loop.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The design hash keying this simulator's snapshots: the system
    /// structure *and* the levelized tape, so the same design compiled
    /// at a different [`OptLevel`] refuses each other's snapshots.
    pub fn design_hash(&self) -> u64 {
        self.design_hash
    }

    /// Captures the complete mutable simulation state — state slots,
    /// FSM selectors, register files, stateful untimed blocks and the
    /// cycle count — as a [`SimSnapshot`]. Traces and budgets are not
    /// part of the snapshot. Take snapshots between steps.
    pub fn snapshot(&self) -> SimSnapshot {
        let mut s = SimSnapshot::new(SnapshotBackend::Compiled, self.design_hash, self.cycle);
        s.push_section("slots", self.slots.clone());
        s.push_section(
            "states",
            self.states.iter().map(|x| u64::from(*x)).collect(),
        );
        s.push_section("regs", self.regs.iter().flatten().copied().collect());
        for (i, u) in self.sys.untimed.iter().enumerate() {
            let words = u.block.snapshot_state();
            if !words.is_empty() {
                s.push_section(&format!("untimed.{i}"), words);
            }
        }
        s
    }

    /// Restores state captured by [`CompiledSim::snapshot`] (or from a
    /// [`crate::BatchedSim`] lane of the same build).
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotMismatch`] when the snapshot was taken from
    /// a different design or optimization level, and
    /// [`CoreError::SnapshotFormat`] when it comes from a different
    /// back-end family or has damaged sections. On error the simulator
    /// state is unspecified; call [`CompiledSim::reset`] before reuse.
    pub fn restore(&mut self, snap: &SimSnapshot) -> Result<(), CoreError> {
        snap.check(SnapshotBackend::Compiled, self.design_hash)?;
        let slot_words = snap.section_exact("slots", self.slots.len())?;
        let state_words = snap.section_exact("states", self.states.len())?;
        let n_regs: usize = self.regs.iter().map(Vec::len).sum();
        let reg_words = snap.section_exact("regs", n_regs)?;
        for (i, t) in self.sys.timed.iter().enumerate() {
            let idx = state_words[i];
            let n_states = t.comp.fsm.as_ref().map_or(1, |f| f.states.len() as u64);
            if idx >= n_states {
                return Err(CoreError::SnapshotFormat {
                    reason: format!("state selector {idx} out of range for `{}`", t.name),
                });
            }
        }
        self.slots.copy_from_slice(slot_words);
        for (st, idx) in self.states.iter_mut().zip(state_words) {
            *st = *idx as u32;
        }
        let mut k = 0;
        for file in &mut self.regs {
            for r in file.iter_mut() {
                *r = reg_words[k];
                k += 1;
            }
        }
        for (i, u) in self.sys.untimed.iter_mut().enumerate() {
            let words = snap.section(&format!("untimed.{i}")).unwrap_or(&[]);
            if !u.block.restore_state(words) {
                return Err(CoreError::SnapshotFormat {
                    reason: format!(
                        "untimed block `{}` rejected its state section",
                        u.block.name()
                    ),
                });
            }
        }
        self.cycle = snap.cycle();
        Ok(())
    }

    /// The simulated system.
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Attaches an observability bundle (counters + phase spans, see
    /// [`SimObs::compiled`]): every subsequent [`Simulator::step`]
    /// reports cycle, SFG-activation and register-update counts and
    /// per-phase wall time. Detached simulators pay nothing. The
    /// build-time optimizer statistics ([`CompiledSim::opt_stats`]) are
    /// flushed into the bundle's `compiled.opt.*` counters at attach
    /// time; they are pure functions of the system and therefore live in
    /// the deterministic namespace.
    pub fn attach_obs(&mut self, obs: SimObs) {
        if let Some(oc) = &obs.opt {
            oc.record(&self.opt_stats);
        }
        self.obs = Some(obs);
    }

    /// Number of instructions executed per cycle (tape + guard pre-tape).
    pub fn tape_len(&self) -> usize {
        self.tape.len() + self.pre_tape.len()
    }

    /// What the tape optimizer did at build time (all-zero apart from
    /// the `instrs_*`/`slots_*` totals when built at [`OptLevel::None`]).
    pub fn opt_stats(&self) -> OptStats {
        self.opt_stats
    }

    /// The current FSM state name of a timed instance.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] if the instance does not exist
    /// or has no FSM.
    pub fn state_name(&self, instance: &str) -> Result<&str, CoreError> {
        let (i, t) = self
            .sys
            .timed
            .iter()
            .enumerate()
            .find(|(_, t)| t.name == instance)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "instance",
                name: instance.to_owned(),
            })?;
        let fsm = t.comp.fsm.as_ref().ok_or_else(|| CoreError::UnknownName {
            kind: "fsm",
            name: instance.to_owned(),
        })?;
        Ok(&fsm.states[self.states[i] as usize])
    }

    /// Resets the simulation to power-up state.
    pub fn reset(&mut self) {
        self.slots.copy_from_slice(&self.init_slots);
        for (i, t) in self.sys.timed.iter().enumerate() {
            for (j, r) in t.comp.regs.iter().enumerate() {
                self.regs[i][j] = encode(&r.init);
            }
            self.states[i] = t.comp.fsm.as_ref().map_or(0, |f| f.initial.0);
        }
        for u in &mut self.sys.untimed {
            u.block.reset();
        }
        self.cycle = 0;
        if let Some(t) = &mut self.trace {
            *t = make_trace(&self.sys);
        }
    }

    fn exec(&mut self, pre: bool) {
        let instrs: &[Micro] = if pre { &self.pre_tape } else { &self.tape };
        let s = &mut self.slots;
        for m in instrs {
            match m {
                Micro::Copy { dst, src } => s[*dst as usize] = s[*src as usize],
                Micro::RegRead { dst, inst, reg } => {
                    s[*dst as usize] = self.regs[*inst as usize][*reg as usize]
                }
                Micro::AddB { dst, a, b, mask } => {
                    s[*dst as usize] = s[*a as usize].wrapping_add(s[*b as usize]) & mask
                }
                Micro::SubB { dst, a, b, mask } => {
                    s[*dst as usize] = s[*a as usize].wrapping_sub(s[*b as usize]) & mask
                }
                Micro::MulB { dst, a, b, mask } => {
                    s[*dst as usize] = s[*a as usize].wrapping_mul(s[*b as usize]) & mask
                }
                Micro::AndU { dst, a, b } => s[*dst as usize] = s[*a as usize] & s[*b as usize],
                Micro::OrU { dst, a, b } => s[*dst as usize] = s[*a as usize] | s[*b as usize],
                Micro::XorU { dst, a, b } => s[*dst as usize] = s[*a as usize] ^ s[*b as usize],
                Micro::NotU { dst, a, mask } => s[*dst as usize] = !s[*a as usize] & mask,
                Micro::NegB { dst, a, mask } => {
                    s[*dst as usize] = s[*a as usize].wrapping_neg() & mask
                }
                Micro::ShlB { dst, a, n, mask } => {
                    s[*dst as usize] = if *n >= 64 {
                        0
                    } else {
                        (s[*a as usize] << n) & mask
                    }
                }
                Micro::ShrB { dst, a, n } => {
                    s[*dst as usize] = if *n >= 64 { 0 } else { s[*a as usize] >> n }
                }
                Micro::ShrMask { dst, a, n, mask } => {
                    s[*dst as usize] = if *n >= 64 {
                        0
                    } else {
                        (s[*a as usize] >> n) & mask
                    }
                }
                Micro::CmpU { dst, a, b, kind } => {
                    s[*dst as usize] = kind.apply(s[*a as usize].cmp(&s[*b as usize])) as u64
                }
                Micro::AddF {
                    dst,
                    a,
                    b,
                    sha,
                    shb,
                } => {
                    let x = (s[*a as usize] as i64) << sha;
                    let y = (s[*b as usize] as i64) << shb;
                    s[*dst as usize] = (x + y) as u64;
                }
                Micro::SubF {
                    dst,
                    a,
                    b,
                    sha,
                    shb,
                } => {
                    let x = (s[*a as usize] as i64) << sha;
                    let y = (s[*b as usize] as i64) << shb;
                    s[*dst as usize] = (x - y) as u64;
                }
                Micro::MulF { dst, a, b } => {
                    let p = s[*a as usize] as i64 as i128 * s[*b as usize] as i64 as i128;
                    s[*dst as usize] = p as i64 as u64;
                }
                Micro::NegF { dst, a } => {
                    s[*dst as usize] = (s[*a as usize] as i64).wrapping_neg() as u64
                }
                Micro::CmpF {
                    dst,
                    a,
                    b,
                    sha,
                    shb,
                    kind,
                } => {
                    let x = (s[*a as usize] as i64 as i128) << sha;
                    let y = (s[*b as usize] as i64 as i128) << shb;
                    s[*dst as usize] = kind.apply(x.cmp(&y)) as u64;
                }
                Micro::CastF {
                    dst,
                    a,
                    src,
                    target,
                    rnd,
                    ovf,
                } => {
                    let v = Fix::from_raw(s[*a as usize] as i64, *src);
                    s[*dst as usize] = v.cast(*target, *rnd, *ovf).mantissa() as u64;
                }
                Micro::FloatToFix {
                    dst,
                    a,
                    target,
                    rnd,
                    ovf,
                } => {
                    let x = f64::from_bits(s[*a as usize]);
                    s[*dst as usize] = Fix::from_f64(x, *target, *rnd, *ovf).mantissa() as u64;
                }
                Micro::AddFl { dst, a, b } => {
                    s[*dst as usize] =
                        (f64::from_bits(s[*a as usize]) + f64::from_bits(s[*b as usize])).to_bits()
                }
                Micro::SubFl { dst, a, b } => {
                    s[*dst as usize] =
                        (f64::from_bits(s[*a as usize]) - f64::from_bits(s[*b as usize])).to_bits()
                }
                Micro::MulFl { dst, a, b } => {
                    s[*dst as usize] =
                        (f64::from_bits(s[*a as usize]) * f64::from_bits(s[*b as usize])).to_bits()
                }
                Micro::NegFl { dst, a } => {
                    s[*dst as usize] = (-f64::from_bits(s[*a as usize])).to_bits()
                }
                Micro::CmpFl { dst, a, b, kind } => {
                    let o = f64::from_bits(s[*a as usize])
                        .partial_cmp(&f64::from_bits(s[*b as usize]))
                        .unwrap_or(std::cmp::Ordering::Equal);
                    s[*dst as usize] = kind.apply(o) as u64;
                }
                Micro::MaskTo { dst, a, mask } => s[*dst as usize] = s[*a as usize] & mask,
                Micro::NonZero { dst, a } => s[*dst as usize] = (s[*a as usize] != 0) as u64,
                Micro::NonZeroFloat { dst, a } => {
                    s[*dst as usize] = (f64::from_bits(s[*a as usize]) != 0.0) as u64
                }
                Micro::ToFloatBits { dst, a } => {
                    s[*dst as usize] = (s[*a as usize] as f64).to_bits()
                }
                Micro::ToFloatFix { dst, a, frac_bits } => {
                    let v = s[*a as usize] as i64 as f64 * f64::powi(2.0, -(*frac_bits as i32));
                    s[*dst as usize] = v.to_bits();
                }
                Micro::SelectU { dst, c, t, e } => {
                    s[*dst as usize] = if s[*c as usize] != 0 {
                        s[*t as usize]
                    } else {
                        s[*e as usize]
                    }
                }
                Micro::Drive {
                    net_slot,
                    inst,
                    cands,
                } => {
                    let act = &self.active[*inst as usize];
                    for (sfg, src) in cands {
                        if act[*sfg as usize] {
                            s[*net_slot as usize] = s[*src as usize];
                            break;
                        }
                    }
                }
                Micro::Fire { inst } => {
                    let u = *inst as usize;
                    let (ins, outs) = &self.untimed_io[u];
                    self.in_buf.clear();
                    self.in_buf
                        .extend(ins.iter().map(|(sl, ty)| decode(s[*sl as usize], *ty)));
                    self.out_buf.clear();
                    self.out_buf
                        .extend(outs.iter().map(|(sl, ty)| decode(s[*sl as usize], *ty)));
                    let block = &mut self.sys.untimed[u].block;
                    if block.ready(&self.in_buf) {
                        block.fire(&self.in_buf, &mut self.out_buf);
                        for ((sl, _), v) in outs.iter().zip(&self.out_buf) {
                            s[*sl as usize] = encode(v);
                        }
                    }
                }
            }
        }
    }
}

/// Monomorphises one generic instruction using the static slot types.
fn lower(instr: &Instr, ty: &[SigType]) -> Micro {
    match instr {
        Instr::Copy { dst, src } => Micro::Copy {
            dst: *dst,
            src: *src,
        },
        Instr::RegRead { dst, inst, reg } => Micro::RegRead {
            dst: *dst,
            inst: *inst,
            reg: *reg,
        },
        Instr::Select { dst, c, t, e } => Micro::SelectU {
            dst: *dst,
            c: *c,
            t: *t,
            e: *e,
        },
        Instr::Drive {
            net_slot,
            inst,
            cands,
        } => Micro::Drive {
            net_slot: *net_slot,
            inst: *inst,
            cands: cands.clone(),
        },
        Instr::Fire { inst } => Micro::Fire { inst: *inst },
        Instr::Un { op, dst, a } => lower_un(*op, *dst, *a, ty),
        Instr::Bin { op, dst, a, b } => lower_bin(*op, *dst, *a, *b, ty),
    }
}

fn lower_un(op: UnOp, dst: u32, a: u32, ty: &[SigType]) -> Micro {
    let at = ty[a as usize];
    let dt = ty[dst as usize];
    match op {
        UnOp::Not => match at {
            SigType::Bool => Micro::NotU { dst, a, mask: 1 },
            SigType::Bits(w) => Micro::NotU {
                dst,
                a,
                mask: mask_of(w),
            },
            _ => unreachable!("Not is only typed on Bool/Bits"),
        },
        UnOp::Neg => match at {
            SigType::Bits(w) => Micro::NegB {
                dst,
                a,
                mask: mask_of(w),
            },
            SigType::Fixed(_) => Micro::NegF { dst, a },
            SigType::Float => Micro::NegFl { dst, a },
            SigType::Bool => unreachable!("Neg is not typed on Bool"),
        },
        UnOp::Shl(n) => match at {
            SigType::Bits(w) => Micro::ShlB {
                dst,
                a,
                n,
                mask: mask_of(w),
            },
            _ => unreachable!("Shl is only typed on Bits"),
        },
        UnOp::Shr(n) => Micro::ShrB { dst, a, n },
        UnOp::Slice { lo, width } => {
            // (a >> lo) & mask — reuse ShrB + mask in one op via ShlB
            // trickery is not possible; emit as shift-then-mask pair
            // folded into a single micro: (a >> lo) already zero-fills,
            // so masking to `width` completes the slice.
            Micro::ShrMask {
                dst,
                a,
                n: lo,
                mask: mask_of(width),
            }
        }
        UnOp::ToFixed(fmt, rnd, ovf) => match at {
            SigType::Fixed(src) => Micro::CastF {
                dst,
                a,
                src,
                target: fmt,
                rnd,
                ovf,
            },
            SigType::Float => Micro::FloatToFix {
                dst,
                a,
                target: fmt,
                rnd,
                ovf,
            },
            _ => unreachable!("ToFixed is only typed on Fixed/Float"),
        },
        UnOp::ToBits(w) => Micro::MaskTo {
            dst,
            a,
            mask: mask_of(w),
        },
        UnOp::ToFloat => match at {
            SigType::Bool | SigType::Bits(_) => Micro::ToFloatBits { dst, a },
            SigType::Fixed(f) => Micro::ToFloatFix {
                dst,
                a,
                frac_bits: f.frac_bits(),
            },
            SigType::Float => Micro::Copy { dst, src: a },
        },
        UnOp::ToBool => match at {
            SigType::Float => Micro::NonZeroFloat { dst, a },
            _ => Micro::NonZero { dst, a },
        },
    }
    .check_dst(dt)
}

fn lower_bin(op: BinOp, dst: u32, a: u32, b: u32, ty: &[SigType]) -> Micro {
    let (at, bt) = (ty[a as usize], ty[b as usize]);
    let dt = ty[dst as usize];
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul => match (at, bt, dt) {
            (SigType::Bits(_), SigType::Bits(_), SigType::Bits(w)) => {
                let mask = mask_of(w);
                match op {
                    BinOp::Add => Micro::AddB { dst, a, b, mask },
                    BinOp::Sub => Micro::SubB { dst, a, b, mask },
                    _ => Micro::MulB { dst, a, b, mask },
                }
            }
            (SigType::Fixed(fa), SigType::Fixed(fb), SigType::Fixed(fo)) => match op {
                BinOp::Mul => Micro::MulF { dst, a, b },
                _ => {
                    let sha = fo.frac_bits() - fa.frac_bits();
                    let shb = fo.frac_bits() - fb.frac_bits();
                    if op == BinOp::Add {
                        Micro::AddF {
                            dst,
                            a,
                            b,
                            sha,
                            shb,
                        }
                    } else {
                        Micro::SubF {
                            dst,
                            a,
                            b,
                            sha,
                            shb,
                        }
                    }
                }
            },
            (SigType::Float, SigType::Float, _) => match op {
                BinOp::Add => Micro::AddFl { dst, a, b },
                BinOp::Sub => Micro::SubFl { dst, a, b },
                _ => Micro::MulFl { dst, a, b },
            },
            _ => unreachable!("arithmetic is typed on matching operands"),
        },
        BinOp::And => Micro::AndU { dst, a, b },
        BinOp::Or => Micro::OrU { dst, a, b },
        BinOp::Xor => Micro::XorU { dst, a, b },
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let kind = Cmp::of(op);
            match (at, bt) {
                (SigType::Fixed(fa), SigType::Fixed(fb)) => {
                    let fbc = fa.frac_bits().max(fb.frac_bits());
                    Micro::CmpF {
                        dst,
                        a,
                        b,
                        sha: fbc - fa.frac_bits(),
                        shb: fbc - fb.frac_bits(),
                        kind,
                    }
                }
                (SigType::Float, SigType::Float) => Micro::CmpFl { dst, a, b, kind },
                _ => Micro::CmpU { dst, a, b, kind },
            }
        }
    }
}

impl Micro {
    /// Debug aid: destination types are implied by construction.
    fn check_dst(self, _dt: SigType) -> Micro {
        self
    }
}

pub(crate) fn make_trace(sys: &System) -> Trace {
    Trace::new(
        sys.primary_inputs
            .iter()
            .map(|p| (p.name.clone(), p.ty, true))
            .chain(
                sys.primary_outputs
                    .iter()
                    .map(|p| (p.name.clone(), sys.nets[p.net].ty, false)),
            ),
    )
}

/// Emits the duplicated guard cone of `node`, reading input ports from
/// their (held) net slots, and returns the slot holding the guard value.
fn emit_guard_cone(
    comp: &Component,
    node: NodeId,
    inst: usize,
    sys: &System,
    b: &mut Builder,
    memo: &mut HashMap<NodeId, u32>,
    out: &mut Vec<Instr>,
) -> u32 {
    if let Some(&s) = memo.get(&node) {
        return s;
    }
    let n = &comp.nodes[node.index()];
    let dst = match &n.kind {
        NodeKind::Const(v) => b.alloc(*v),
        NodeKind::Input(p) => {
            let src = b.net_slot[sys.timed_in_net[inst][p.index()]];
            let dst = b.alloc(n.ty.zero());
            out.push(Instr::Copy { dst, src });
            dst
        }
        NodeKind::RegRead(r) => {
            let dst = b.alloc(n.ty.zero());
            out.push(Instr::RegRead {
                dst,
                inst: inst as u32,
                reg: r.0,
            });
            dst
        }
        NodeKind::Un(op, a) => {
            let a = emit_guard_cone(comp, *a, inst, sys, b, memo, out);
            let dst = b.alloc(n.ty.zero());
            out.push(Instr::Un { op: *op, dst, a });
            dst
        }
        NodeKind::Bin(op, a, bn) => {
            let a = emit_guard_cone(comp, *a, inst, sys, b, memo, out);
            let b2 = emit_guard_cone(comp, *bn, inst, sys, b, memo, out);
            let dst = b.alloc(n.ty.zero());
            out.push(Instr::Bin {
                op: *op,
                dst,
                a,
                b: b2,
            });
            dst
        }
        NodeKind::Select {
            cond,
            then,
            otherwise,
        } => {
            let c = emit_guard_cone(comp, *cond, inst, sys, b, memo, out);
            let t = emit_guard_cone(comp, *then, inst, sys, b, memo, out);
            let e = emit_guard_cone(comp, *otherwise, inst, sys, b, memo, out);
            let dst = b.alloc(n.ty.zero());
            out.push(Instr::Select { dst, c, t, e });
            dst
        }
    };
    memo.insert(node, dst);
    dst
}

/// Kahn topological sort of the main tape by slot-producer dependencies.
fn topo_sort(b: &Builder, sys: &System, untimed_io: &[UntimedIo]) -> Result<Vec<Instr>, CoreError> {
    let n = b.instrs.len();
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n]; // edges dep -> user
    let mut indeg = vec![0usize; n];

    let add_dep =
        |src_slot: u32, user: usize, deps: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>| {
            if let Some(&p) = b.producer.get(&src_slot) {
                if p != user {
                    deps[p].push(user);
                    indeg[user] += 1;
                }
            }
        };

    for (idx, instr) in b.instrs.iter().enumerate() {
        match instr {
            Instr::Copy { src, .. } => add_dep(*src, idx, &mut deps, &mut indeg),
            Instr::RegRead { .. } => {}
            Instr::Un { a, .. } => add_dep(*a, idx, &mut deps, &mut indeg),
            Instr::Bin { a, b: b2, .. } => {
                add_dep(*a, idx, &mut deps, &mut indeg);
                add_dep(*b2, idx, &mut deps, &mut indeg);
            }
            Instr::Select { c, t, e, .. } => {
                add_dep(*c, idx, &mut deps, &mut indeg);
                add_dep(*t, idx, &mut deps, &mut indeg);
                add_dep(*e, idx, &mut deps, &mut indeg);
            }
            Instr::Drive { cands, .. } => {
                for (_, src) in cands {
                    add_dep(*src, idx, &mut deps, &mut indeg);
                }
            }
            Instr::Fire { inst } => {
                for (s, _) in &untimed_io[*inst as usize].0 {
                    add_dep(*s, idx, &mut deps, &mut indeg);
                }
            }
        }
    }

    let mut queue: Vec<usize> = (0..n).filter(|i| indeg[*i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        order.push(i);
        for &u in &deps[i] {
            indeg[u] -= 1;
            if indeg[u] == 0 {
                queue.push(u);
            }
        }
    }
    if order.len() != n {
        let mut cycle: Vec<String> = b
            .instrs
            .iter()
            .enumerate()
            .filter(|(i, _)| indeg[*i] > 0)
            .map(|(_, instr)| describe(instr, sys))
            .collect();
        // Deterministic diagnostics: sort before truncating so the
        // reported subset does not depend on hash/emission order.
        cycle.sort();
        cycle.dedup();
        cycle.truncate(16);
        return Err(CoreError::NotCompilable { cycle });
    }
    Ok(order.into_iter().map(|i| b.instrs[i].clone()).collect())
}

fn describe(instr: &Instr, sys: &System) -> String {
    match instr {
        Instr::Drive { inst, .. } => format!("output of `{}`", sys.timed[*inst as usize].name),
        Instr::Fire { inst } => format!("untimed `{}`", sys.untimed[*inst as usize].block.name()),
        other => format!("{other:?}"),
    }
}

impl Simulator for CompiledSim {
    fn set_input(&mut self, name: &str, value: Value) -> Result<(), CoreError> {
        let pi = self
            .sys
            .primary_inputs
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "primary input",
                name: name.to_owned(),
            })?;
        value.check_type_with(pi.ty, || format!("primary input `{name}`"))?;
        self.slots[self.net_slot[pi.net] as usize] = encode(&value);
        Ok(())
    }

    fn step(&mut self) -> Result<(), CoreError> {
        self.budget.check_cycle(self.cycle)?;
        // One bounds proof up front instead of re-checking every slot
        // index op-by-op: every index either tape references is below
        // `slot_bound` by construction.
        assert!(
            self.slot_bound as usize <= self.slots.len(),
            "compiled tape references slots beyond the state vector"
        );
        // Guard evaluation over held values.
        let t_pre = self
            .obs
            .as_ref()
            .and_then(|o| o.sp_pre.as_ref())
            .map(|s| s.timer());
        self.exec(true);
        drop(t_pre);

        // Transition selection. Disjoint field borrows let the chosen
        // transition's sfg list be read in place — no per-cycle clone.
        let t_select = self.obs.as_ref().map(|o| o.sp_select.timer());
        let mut firings = 0u64;
        let fsm_tables = &self.fsm_tables;
        let slots = &self.slots;
        let states = &mut self.states;
        let active = &mut self.active;
        for (i, tables) in fsm_tables.iter().enumerate() {
            if tables.is_empty() {
                firings += active[i].len() as u64;
                for a in &mut active[i] {
                    *a = true;
                }
                continue;
            }
            for a in &mut active[i] {
                *a = false;
            }
            let state = states[i] as usize;
            let mut chosen: Option<&CompiledTransition> = None;
            for tr in &tables[state] {
                let take = match tr.guard_slot {
                    None => true,
                    Some(g) => slots[g as usize] != 0,
                };
                if take {
                    chosen = Some(tr);
                    break;
                }
            }
            if let Some(tr) = chosen {
                states[i] = tr.to;
                for sk in &tr.sfgs {
                    if !active[i][*sk as usize] {
                        firings += 1;
                    }
                    active[i][*sk as usize] = true;
                }
            }
        }
        drop(t_select);

        // Main tape.
        let t_eval = self.obs.as_ref().map(|o| o.sp_eval.timer());
        self.exec(false);
        drop(t_eval);

        // Register update.
        let t_commit = self.obs.as_ref().map(|o| o.sp_commit.timer());
        let mut reg_update_count = 0u64;
        for wi in 0..self.reg_writes.len() {
            let w = &self.reg_writes[wi];
            let act = &self.active[w.inst as usize];
            let mut val = None;
            for (sfg, src) in &w.cands {
                if act[*sfg as usize] {
                    val = Some(self.slots[*src as usize]);
                    break;
                }
            }
            if let Some(v) = val {
                self.regs[w.inst as usize][w.reg as usize] = v;
                reg_update_count += 1;
            }
        }
        drop(t_commit);

        self.cycle += 1;
        if let Some(trace) = &mut self.trace {
            let _t_trace = self.obs.as_ref().map(|o| o.sp_trace.timer());
            let row: Vec<Value> = self
                .sys
                .primary_inputs
                .iter()
                .map(|p| {
                    let sl = self.net_slot[p.net] as usize;
                    decode(self.slots[sl], self.slot_ty[sl])
                })
                .chain(self.sys.primary_outputs.iter().map(|p| {
                    let sl = self.net_slot[p.net] as usize;
                    decode(self.slots[sl], self.slot_ty[sl])
                }))
                .collect();
            trace.record_cycle(&row)?;
        }

        if let Some(o) = &self.obs {
            o.cycles.incr();
            o.sfg_firings.add(firings);
            o.reg_updates.add(reg_update_count);
        }
        Ok(())
    }

    fn output(&self, name: &str) -> Result<Value, CoreError> {
        self.sys
            .primary_outputs
            .iter()
            .find(|p| p.name == name)
            .map(|p| {
                let sl = self.net_slot[p.net] as usize;
                decode(self.slots[sl], self.slot_ty[sl])
            })
            .ok_or_else(|| CoreError::UnknownName {
                kind: "primary output",
                name: name.to_owned(),
            })
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(make_trace(&self.sys));
        }
    }

    fn trace(&self) -> &Trace {
        static EMPTY: std::sync::OnceLock<Trace> = std::sync::OnceLock::new();
        self.trace
            .as_ref()
            .unwrap_or_else(|| EMPTY.get_or_init(Trace::default))
    }

    fn peek_net(&self, name: &str) -> Result<Value, CoreError> {
        let i = self
            .sys
            .nets
            .iter()
            .position(|n| n.name == name)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "net",
                name: name.to_owned(),
            })?;
        let sl = self.net_slot[i] as usize;
        Ok(decode(self.slots[sl], self.slot_ty[sl]))
    }

    fn poke_net(&mut self, name: &str, value: Value) -> Result<(), CoreError> {
        let i = self
            .sys
            .nets
            .iter()
            .position(|n| n.name == name)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "net",
                name: name.to_owned(),
            })?;
        value.check_type_with(self.sys.nets[i].ty, || format!("net `{name}`"))?;
        self.slots[self.net_slot[i] as usize] = encode(&value);
        Ok(())
    }

    fn peek_reg(&self, instance: &str, reg: &str) -> Result<Value, CoreError> {
        let (i, j) = crate::sim::interp::find_reg(&self.sys, instance, reg)?;
        Ok(decode(self.regs[i][j], self.sys.timed[i].comp.regs[j].ty))
    }

    fn poke_reg(&mut self, instance: &str, reg: &str, value: Value) -> Result<(), CoreError> {
        let (i, j) = crate::sim::interp::find_reg(&self.sys, instance, reg)?;
        value.check_type(
            self.sys.timed[i].comp.regs[j].ty,
            &format!("register `{instance}.{reg}`"),
        )?;
        self.regs[i][j] = encode(&value);
        Ok(())
    }
}
