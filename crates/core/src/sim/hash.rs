//! Stable design hashes and reusable compiled tapes — the **cache-key
//! contract** of the persistent simulation service.
//!
//! Snapshot keying (DESIGN.md §12) already relies on two 64-bit FNV-1a
//! hashes; this module promotes them from an internal detail to a
//! documented API so a compiled-tape cache can be built on top of them:
//!
//! * [`hash_system`] — the **structural** hash of a captured
//!   [`System`]: names, components (ports, registers, expression nodes,
//!   SFGs, FSMs), untimed-block interfaces and the interconnect.
//!   Mutable untimed state (RAM contents) does not contribute, and
//!   neither does anything about *how* the system will be simulated.
//!   Two elaborations of the same design (the same builder called
//!   twice) hash identically; any structural edit changes the hash.
//! * [`CompiledTape::program_hash`] — the hash of a **compiled build**:
//!   the structural hash combined with the levelized program (slot
//!   layout, both micro-op tapes, FSM tables, register-write selectors,
//!   net-to-slot map). The same system compiled at a different
//!   [`OptLevel`] produces a different tape and therefore a different
//!   program hash — so tapes, snapshots and cache entries can never be
//!   confused across optimization levels.
//!
//! Both hashes are pure functions of their inputs: stable across
//! processes, platforms and sessions (no pointer values, no iteration
//! over unordered containers). That stability is load-bearing — the
//! simulation service keys its compiled-tape cache and its checkpoint
//! manifests on these values, and a client may remember them across
//! daemon restarts.
//!
//! [`CompiledTape`] is the cacheable artifact itself: one levelization +
//! optimization of a system, shareable across threads (the program is
//! behind an [`Arc`]) and instantiable into simulators without
//! recompiling via [`crate::CompiledSim::from_tape`] and
//! [`crate::BatchedSim::from_tape`]. Instantiation verifies the
//! structural hash of the offered system against the tape's, so a cache
//! lookup gone wrong is a typed [`CoreError::TapeMismatch`], never a
//! silently wrong simulation.

use std::sync::Arc;

use crate::sim::compiled::{build_program, Program};
use crate::sim::opt::OptLevel;
use crate::system::System;
use crate::CoreError;

/// The structural design hash of a system — the interpreted-family
/// member of the cache-key contract (see the module docs). Stable
/// across re-elaboration: building the same design twice yields the
/// same hash.
pub fn hash_system(sys: &System) -> u64 {
    crate::sim::snapshot::hash_system(sys)
}

/// The program hash of `sys` compiled at `level` — a convenience that
/// levelizes, optimizes and hashes in one call. Use [`CompiledTape`]
/// when the compiled program itself is wanted too (a cache should:
/// hashing alone costs a full compilation).
///
/// # Errors
///
/// Returns [`CoreError::NotCompilable`] when the design has no static
/// single-pass schedule.
pub fn hash_compiled(sys: &System, level: OptLevel) -> Result<u64, CoreError> {
    Ok(CompiledTape::compile(sys, level)?.program_hash())
}

/// One levelized, optimized compilation of a system: the immutable
/// program plus the two hashes that key it. Cheap to clone and safe to
/// share across threads — the program is reference-counted, and
/// instantiating a simulator from a tape copies only the per-instance
/// mutable state, skipping levelization and optimization entirely.
///
/// This is the unit the simulation service caches: compile once per
/// `(structural hash, optimization level)`, then serve every job that
/// asks for the same design from the cached tape.
#[derive(Debug, Clone)]
pub struct CompiledTape {
    pub(crate) prog: Arc<Program>,
    system_hash: u64,
    program_hash: u64,
    level: OptLevel,
}

impl CompiledTape {
    /// Levelizes and monomorphises `sys` at `level` into a cacheable
    /// tape. The system itself is not consumed or retained — tapes key
    /// on hashes, and every instantiation brings its own freshly built
    /// system (untimed blocks carry per-instance state).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotCompilable`] when the conservative
    /// cross-component dependence graph is cyclic.
    pub fn compile(sys: &System, level: OptLevel) -> Result<CompiledTape, CoreError> {
        let prog = build_program(sys, level)?;
        let system_hash = crate::sim::snapshot::hash_system(sys);
        let program_hash = crate::sim::snapshot::hash_program(sys, &prog);
        Ok(CompiledTape {
            prog: Arc::new(prog),
            system_hash,
            program_hash,
            level,
        })
    }

    /// The structural hash of the system this tape was compiled from
    /// ([`hash_system`]).
    pub fn system_hash(&self) -> u64 {
        self.system_hash
    }

    /// The hash of this build: structure plus levelized program. Equal
    /// to [`crate::CompiledSim::design_hash`] for a simulator built
    /// from (or compiled identically to) this tape, so snapshots and
    /// tape-cache entries share one key space.
    pub fn program_hash(&self) -> u64 {
        self.program_hash
    }

    /// The optimization level this tape was compiled at.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// Number of micro-ops executed per cycle (tape + guard pre-tape).
    pub fn tape_len(&self) -> usize {
        self.prog.tape.len() + self.prog.pre_tape.len()
    }

    /// Verifies that `sys` is structurally the system this tape was
    /// compiled from; every `from_tape` constructor goes through here.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TapeMismatch`] when the hashes disagree.
    pub(crate) fn check_system(&self, sys: &System) -> Result<(), CoreError> {
        let got = hash_system(sys);
        if got != self.system_hash {
            return Err(CoreError::TapeMismatch {
                expected: self.system_hash,
                got,
            });
        }
        Ok(())
    }
}

/// One direct-threaded lowering of a [`CompiledTape`]: the cacheable
/// artifact of the fused back-end (DESIGN.md § Lowered execution).
///
/// The lowering is a pure deterministic function of the compiled
/// program, so a `FusedTape` shares its source tape's hashes — the
/// same `(structural hash, program hash)` key space as compiled tapes
/// and snapshots. What it does *not* share is the execution artifact:
/// a cache must still key compiled and fused entries separately
/// (see [`crate::ExecEngine`]), because the artifacts have different
/// types and costs.
///
/// Cheap to clone and safe to share across threads; instantiate
/// simulators without re-lowering via [`crate::FusedSim::from_tape`].
#[derive(Clone)]
pub struct FusedTape {
    inner: CompiledTape,
    lowered: Arc<crate::sim::lower::Lowered>,
}

impl std::fmt::Debug for FusedTape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FusedTape")
            .field("program_hash", &self.program_hash())
            .field("level", &self.level())
            .field("stats", &self.lowered.stats())
            .finish()
    }
}

impl FusedTape {
    /// Compiles, optimizes and lowers `sys` at `level` in one call.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotCompilable`] when the conservative
    /// cross-component dependence graph is cyclic.
    pub fn compile(sys: &System, level: OptLevel) -> Result<FusedTape, CoreError> {
        let tape = CompiledTape::compile(sys, level)?;
        FusedTape::from_compiled(sys, &tape)
    }

    /// Lowers an already-compiled tape — the cheap half of
    /// [`FusedTape::compile`], for callers (like the serve cache) that
    /// may already hold the compiled artifact.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TapeMismatch`] when `sys` is not the
    /// system `tape` was compiled from (the lowering needs the
    /// system's register/SFG layout, so the pairing is verified).
    pub fn from_compiled(sys: &System, tape: &CompiledTape) -> Result<FusedTape, CoreError> {
        tape.check_system(sys)?;
        let lowered = crate::sim::lower::lower_program(sys, &tape.prog);
        Ok(FusedTape {
            inner: tape.clone(),
            lowered: Arc::new(lowered),
        })
    }

    /// Unwraps the compiled tape this lowering was derived from,
    /// discarding the lowered program.
    pub fn into_compiled(self) -> CompiledTape {
        self.inner
    }

    /// The structural hash of the source system ([`hash_system`]).
    pub fn system_hash(&self) -> u64 {
        self.inner.system_hash()
    }

    /// The program hash of the source build — identical to the source
    /// [`CompiledTape::program_hash`], because the lowered form is a
    /// pure function of the program the hash covers.
    pub fn program_hash(&self) -> u64 {
        self.inner.program_hash()
    }

    /// The optimization level the source tape was compiled at.
    pub fn level(&self) -> OptLevel {
        self.inner.level()
    }

    /// Number of micro-ops lowered per cycle (tape + guard pre-tape).
    pub fn tape_len(&self) -> usize {
        self.inner.tape_len()
    }

    /// What the lowering pass did (kernels, superinstructions, fusion
    /// coverage) — deterministic counters.
    pub fn lower_stats(&self) -> crate::sim::lower::LowerStats {
        self.lowered.stats()
    }

    /// The source compiled tape.
    pub(crate) fn compiled(&self) -> &CompiledTape {
        &self.inner
    }

    pub(crate) fn lowered(&self) -> Arc<crate::sim::lower::Lowered> {
        Arc::clone(&self.lowered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SigType;
    use crate::Component;

    /// A small design with foldable redundancy, so optimization levels
    /// genuinely produce different tapes.
    fn build(name: &str) -> System {
        let c = Component::build("acc");
        let i = c.input("i", SigType::Bits(8)).unwrap();
        let out = c.output("o", SigType::Bits(8)).unwrap();
        let r = c.reg("r", SigType::Bits(8)).unwrap();
        let sfg = c.sfg("run").unwrap();
        let zero = c.const_bits(8, 0);
        // `x + 0` twice: fodder for folding and CSE.
        let x = c.read(i) + zero.clone();
        let y = c.q(r) + (x.clone() + zero);
        sfg.drive(out, &y).unwrap();
        sfg.next(r, &y).unwrap();
        let comp = c.finish().unwrap();
        let mut sb = System::build(name);
        let inst = sb.add_component("u0", comp).unwrap();
        sb.input("i", SigType::Bits(8)).unwrap();
        sb.connect_input("i", inst, "i").unwrap();
        sb.output("o", inst, "o").unwrap();
        sb.finish().unwrap()
    }

    #[test]
    fn structural_hash_is_stable_across_re_elaboration() {
        assert_eq!(hash_system(&build("d")), hash_system(&build("d")));
    }

    #[test]
    fn structural_hash_sees_structural_edits() {
        assert_ne!(hash_system(&build("d")), hash_system(&build("e")));
    }

    #[test]
    fn program_hash_is_stable_and_level_sensitive() {
        let t0 = CompiledTape::compile(&build("d"), OptLevel::None).unwrap();
        let t0b = CompiledTape::compile(&build("d"), OptLevel::None).unwrap();
        let t2 = CompiledTape::compile(&build("d"), OptLevel::Full).unwrap();
        // Recompiling the same build reproduces the hash exactly…
        assert_eq!(t0.program_hash(), t0b.program_hash());
        // …while a different optimization level is a different tape.
        assert_ne!(t0.program_hash(), t2.program_hash());
        // Both builds share the structural hash of the one design.
        assert_eq!(t0.system_hash(), t2.system_hash());
        assert_eq!(t0.system_hash(), hash_system(&build("d")));
        // Full optimization shrank this deliberately redundant tape.
        assert!(t2.tape_len() < t0.tape_len());
    }

    #[test]
    fn hash_compiled_matches_the_tape() {
        let t = CompiledTape::compile(&build("d"), OptLevel::Full).unwrap();
        assert_eq!(
            hash_compiled(&build("d"), OptLevel::Full).unwrap(),
            t.program_hash()
        );
    }

    #[test]
    fn mismatched_system_is_a_typed_error() {
        let t = CompiledTape::compile(&build("d"), OptLevel::Full).unwrap();
        match t.check_system(&build("e")) {
            Err(CoreError::TapeMismatch { expected, got }) => {
                assert_eq!(expected, t.system_hash());
                assert_eq!(got, hash_system(&build("e")));
            }
            other => panic!("expected TapeMismatch, got {other:?}"),
        }
    }
}
