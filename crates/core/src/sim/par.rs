//! Deterministic work-sharding across a scoped thread pool.
//!
//! Simulation throughput is the bottleneck of the whole design loop —
//! the reason the paper grew a compiled back-end at all. The workloads
//! layered on top of the simulators (fault campaigns, BER sweeps, BIST
//! grading, seeded equivalence sweeps) are embarrassingly parallel:
//! many independent runs whose results are merged. This module fans
//! those runs across a pool of `std::thread::scope` workers while
//! keeping one property absolute:
//!
//! > **Results are bit-identical for every thread count.** Running with
//! > one worker reproduces the single-threaded outputs exactly; running
//! > with eight merely finishes sooner.
//!
//! Three rules buy that determinism:
//!
//! 1. **Per-item seeding, not per-thread seeding.** Any randomness a
//!    work item needs is derived from `(base seed, item index)` — see
//!    [`XorShift64::stream`](crate::rng::XorShift64::stream) — never
//!    from which worker happens to execute it.
//! 2. **Order-independent merge.** Workers pull items from a shared
//!    atomic cursor (dynamic load balancing), but every result is keyed
//!    by its item index and the merged output is assembled in index
//!    order, so the interleaving of workers is invisible.
//! 3. **Deterministic failure selection.** All items run to completion
//!    even when some fail; the reported failure is the one with the
//!    *lowest index*, which is the same failure a sequential loop would
//!    hit first. A panicking item is caught ([`ParError::Panic`]) and
//!    surfaces as an error — never a hang, never a torn-down process.
//!
//! The pool is built on the standard library only: the workspace builds
//! fully offline, with zero registry dependencies.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

// The per-worker bookkeeping types live in the observability crate so
// the bench harnesses and this engine share one definition; re-exported
// here (and from the crate root) for compatibility.
pub use ocapi_obs::{PoolStats, Stopwatch};

/// Worker-pool configuration for the sharded engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    threads: usize,
}

impl ParConfig {
    /// A pool of `threads` workers (0 is clamped to 1).
    pub fn new(threads: usize) -> ParConfig {
        ParConfig {
            threads: threads.max(1),
        }
    }

    /// The single-threaded pool: sequential execution, identical
    /// results, no spawned threads at all.
    pub fn single() -> ParConfig {
        ParConfig { threads: 1 }
    }

    /// One worker per available hardware thread (1 when the platform
    /// cannot report parallelism).
    pub fn available() -> ParConfig {
        ParConfig::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for ParConfig {
    fn default() -> ParConfig {
        ParConfig::single()
    }
}

/// A failure of a sharded map, pinned to the work item that caused it.
///
/// When several items fail, the reported one is always the item with
/// the lowest index — exactly the failure a sequential loop over the
/// same items would report first, for any thread count.
#[derive(Debug, Clone, PartialEq)]
pub enum ParError<E> {
    /// The worker closure returned an error for item `index`.
    Task {
        /// Index of the failing work item.
        index: usize,
        /// The error it returned.
        error: E,
    },
    /// The worker closure panicked on item `index`. The panic was
    /// caught at the item boundary: the pool survives, every other item
    /// still runs, and the caller gets an error instead of a poisoned
    /// pool or a hang.
    Panic {
        /// Index of the work item whose closure panicked.
        index: usize,
    },
}

impl<E: std::fmt::Display> std::fmt::Display for ParError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParError::Task { index, error } => {
                write!(f, "sharded work item {index} failed: {error}")
            }
            ParError::Panic { index } => {
                write!(f, "sharded work item {index} panicked")
            }
        }
    }
}

impl<E: std::fmt::Debug + std::fmt::Display> std::error::Error for ParError<E> {}

/// What one item produced, kept until the order-restoring merge.
enum Slot<R, E> {
    Done(R),
    Failed(E),
    Panicked,
}

/// Bookkeeping of a retrying sharded map ([`map_indexed_retry`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Extra attempts executed (sum over all items and retry rounds).
    pub retries: u64,
    /// Items that failed or panicked at least once but eventually
    /// succeeded on a retry.
    pub recovered: u64,
}

/// Runs `f` over the given item indices on the pool, one guarded call
/// per index, returning `(index, outcome)` pairs in unspecified order.
fn run_indices<T, R, E, F>(
    pool: &ParConfig,
    items: &[T],
    indices: &[usize],
    f: &F,
) -> Vec<(usize, Slot<R, E>)>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let run_one = |i: usize| -> Slot<R, E> {
        match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
            Ok(Ok(r)) => Slot::Done(r),
            Ok(Err(e)) => Slot::Failed(e),
            Err(_) => Slot::Panicked,
        }
    };
    let workers = pool.threads.min(indices.len().max(1));
    if workers <= 1 {
        return indices.iter().map(|&i| (i, run_one(i))).collect();
    }
    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let run_one = &run_one;
    let mut out: Vec<(usize, Slot<R, E>)> = Vec::with_capacity(indices.len());
    let worker_results = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut mine: Vec<(usize, Slot<R, E>)> = Vec::new();
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        if k >= indices.len() {
                            break;
                        }
                        let i = indices[k];
                        mine.push((i, run_one(i)));
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
    });
    // A worker's join only fails when its loop panicked outside the
    // guard; the indices it claimed simply stay missing and the caller
    // treats them as panicked.
    for joined in worker_results.into_iter().flatten() {
        out.extend(joined);
    }
    out
}

/// [`map_indexed`] with bounded retry: an item whose closure fails or
/// panics is re-executed — on whichever worker is free, but always with
/// its original index, hence its original seed stream — until it
/// succeeds or `attempts` total attempts are spent. Items that still
/// fail after the last round are merged exactly like [`map_indexed`]:
/// the lowest-indexed failure is reported, identically for every thread
/// count.
///
/// The result is **deterministic regardless of which worker or attempt
/// succeeds**, provided `f` is a pure function of `(index, item)` — the
/// contract every campaign work item in this workspace already obeys.
///
/// # Errors
///
/// Returns the lowest-indexed [`ParError`] among items whose final
/// attempt failed, after all items and retries have run.
pub fn map_indexed_retry<T, R, E, F>(
    pool: &ParConfig,
    items: &[T],
    attempts: u32,
    f: F,
) -> (Result<Vec<R>, ParError<E>>, RetryStats)
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let n = items.len();
    let attempts = attempts.max(1);
    let mut stats = RetryStats::default();
    let mut slots: Vec<Option<Slot<R, E>>> = Vec::new();
    slots.resize_with(n, || None);
    let all: Vec<usize> = (0..n).collect();
    for (i, slot) in run_indices(pool, items, &all, &f) {
        slots[i] = Some(slot);
    }
    for _round in 1..attempts {
        let failed: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s, Some(Slot::Done(_))))
            .map(|(i, _)| i)
            .collect();
        if failed.is_empty() {
            break;
        }
        stats.retries += failed.len() as u64;
        for (i, slot) in run_indices(pool, items, &failed, &f) {
            if matches!(slot, Slot::Done(_)) {
                stats.recovered += 1;
            }
            slots[i] = Some(slot);
        }
        // An index never handed back (a worker died outside the guard)
        // stays in its previous non-Done state and is retried again or
        // reported as the panic it was.
    }
    let mut out = Vec::with_capacity(n);
    for (index, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Slot::Done(r)) => out.push(r),
            Some(Slot::Failed(error)) => return (Err(ParError::Task { index, error }), stats),
            Some(Slot::Panicked) | None => return (Err(ParError::Panic { index }), stats),
        }
    }
    (Ok(out), stats)
}

/// Maps `f` over `items` on a pool of [`ParConfig::threads`] workers,
/// returning the results in item order.
///
/// See the module docs for the determinism contract: identical output
/// for every thread count, including which failure is reported.
///
/// # Errors
///
/// Returns the lowest-indexed [`ParError`] after **all** items have
/// run: [`ParError::Task`] wrapping the closure's error, or
/// [`ParError::Panic`] when the closure panicked on that item.
pub fn map_indexed<T, R, E, F>(pool: &ParConfig, items: &[T], f: F) -> Result<Vec<R>, ParError<E>>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    map_indexed_stats(pool, items, f).0
}

/// [`map_indexed`] plus the [`PoolStats`] of the run, for the
/// throughput-observability path of the benchmark harnesses.
pub fn map_indexed_stats<T, R, E, F>(
    pool: &ParConfig,
    items: &[T],
    f: F,
) -> (Result<Vec<R>, ParError<E>>, PoolStats)
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let started = Stopwatch::start();
    let n = items.len();
    let workers = pool.threads.min(n.max(1));

    // One guarded call, shared by both paths, so sequential and
    // threaded execution have byte-identical per-item semantics.
    let run_one = |i: usize| -> Slot<R, E> {
        match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
            Ok(Ok(r)) => Slot::Done(r),
            Ok(Err(e)) => Slot::Failed(e),
            Err(_) => Slot::Panicked,
        }
    };

    let mut stats = PoolStats {
        threads: workers,
        items: n,
        per_worker_items: vec![0; workers],
        per_worker_busy: vec![0.0; workers],
        wall_secs: 0.0,
        steals: 0,
    };

    let mut slots: Vec<Option<Slot<R, E>>> = Vec::with_capacity(n);
    if workers <= 1 {
        for i in 0..n {
            let t0 = Stopwatch::start();
            slots.push(Some(run_one(i)));
            stats.per_worker_busy[0] += t0.elapsed_secs();
            stats.per_worker_items[0] += 1;
        }
    } else {
        slots.resize_with(n, || None);
        let cursor = AtomicUsize::new(0);
        let cursor = &cursor;
        let run_one = &run_one;
        let worker_results = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    s.spawn(move || {
                        let mut mine: Vec<(usize, Slot<R, E>)> = Vec::new();
                        let mut busy = 0.0f64;
                        let mut steals = 0u64;
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            // An item is "stolen" when the dynamic
                            // cursor hands it to a different worker than
                            // a static block partition would have.
                            if i * workers / n != w {
                                steals += 1;
                            }
                            let t0 = Stopwatch::start();
                            let slot = run_one(i);
                            busy += t0.elapsed_secs();
                            mine.push((i, slot));
                        }
                        (mine, busy, steals)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
        });
        // A worker's join only fails if the loop itself panicked (the
        // item closure is guarded); its claimed items then stay None
        // and are reported as panics by the merge below.
        for (w, joined) in worker_results.into_iter().enumerate() {
            if let Ok((mine, busy, steals)) = joined {
                stats.per_worker_items[w] = mine.len();
                stats.per_worker_busy[w] = busy;
                stats.steals += steals;
                for (i, slot) in mine {
                    slots[i] = Some(slot);
                }
            }
        }
    }
    stats.wall_secs = started.elapsed_secs();

    // Order-restoring merge with deterministic failure selection: the
    // lowest-indexed failure wins, as in a sequential loop.
    let mut out = Vec::with_capacity(n);
    for (index, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Slot::Done(r)) => out.push(r),
            Some(Slot::Failed(error)) => return (Err(ParError::Task { index, error }), stats),
            Some(Slot::Panicked) | None => return (Err(ParError::Panic { index }), stats),
        }
    }
    (Ok(out), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order() {
        for threads in [1usize, 2, 3, 8] {
            let pool = ParConfig::new(threads);
            let items: Vec<u64> = (0..37).collect();
            let out: Vec<u64> =
                map_indexed(&pool, &items, |i, x| Ok::<_, ()>(x * 3 + i as u64)).unwrap();
            assert_eq!(out, items.iter().map(|x| x * 4).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let items: Vec<u32> = Vec::new();
        let out = map_indexed(&ParConfig::new(4), &items, |_, x| Ok::<_, ()>(*x)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn lowest_index_error_wins_for_any_thread_count() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1usize, 2, 8] {
            let err = map_indexed(&ParConfig::new(threads), &items, |_, x| {
                if *x == 9 || *x == 41 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(*x)
                }
            })
            .unwrap_err();
            assert_eq!(
                err,
                ParError::Task {
                    index: 9,
                    error: "bad 9".to_owned()
                }
            );
        }
    }

    #[test]
    fn panicking_item_surfaces_as_error_not_hang() {
        let items: Vec<usize> = (0..16).collect();
        for threads in [1usize, 2, 8] {
            let err = map_indexed(&ParConfig::new(threads), &items, |_, x| {
                if *x == 5 {
                    panic!("poisoned shard");
                }
                Ok::<_, String>(*x)
            })
            .unwrap_err();
            assert_eq!(err, ParError::Panic { index: 5 });
        }
    }

    #[test]
    fn panic_before_error_selects_the_panic() {
        // Item 3 panics, item 7 errors: index order decides, so the
        // panic is reported for every thread count.
        let items: Vec<usize> = (0..12).collect();
        for threads in [1usize, 4] {
            let err = map_indexed(&ParConfig::new(threads), &items, |_, x| match *x {
                3 => panic!("first failure"),
                7 => Err("later failure"),
                _ => Ok(*x),
            })
            .unwrap_err();
            assert_eq!(err, ParError::Panic { index: 3 });
        }
    }

    #[test]
    fn stats_account_for_every_item() {
        let items: Vec<u64> = (0..100).collect();
        let (out, stats) =
            map_indexed_stats(&ParConfig::new(4), &items, |_, x| Ok::<_, ()>(*x + 1));
        assert_eq!(out.unwrap().len(), 100);
        assert_eq!(stats.items, 100);
        assert_eq!(stats.threads, 4);
        assert_eq!(stats.per_worker_items.iter().sum::<usize>(), 100);
        assert!(stats.utilization() >= 0.0 && stats.utilization() <= 1.0);
    }

    #[test]
    fn config_clamps_and_reports() {
        assert_eq!(ParConfig::new(0).threads(), 1);
        assert_eq!(ParConfig::single().threads(), 1);
        assert!(ParConfig::available().threads() >= 1);
    }

    #[test]
    fn retry_recovers_first_attempt_panics() {
        use std::sync::atomic::AtomicU32;
        let items: Vec<usize> = (0..24).collect();
        for threads in [1usize, 4] {
            let tries: Vec<AtomicU32> = (0..24).map(|_| AtomicU32::new(0)).collect();
            let (out, stats) = map_indexed_retry(&ParConfig::new(threads), &items, 3, |i, x| {
                let attempt = tries[i].fetch_add(1, Ordering::Relaxed);
                if *x == 7 && attempt == 0 {
                    panic!("chaos");
                }
                if *x == 11 && attempt < 2 {
                    return Err("flaky");
                }
                Ok(*x * 2)
            });
            let out = out.unwrap();
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
            assert_eq!(stats.retries, 3, "threads={threads}"); // 7 once, 11 twice
            assert_eq!(stats.recovered, 2, "threads={threads}");
        }
    }

    #[test]
    fn exhausted_retries_report_lowest_index_deterministically() {
        let items: Vec<usize> = (0..32).collect();
        for threads in [1usize, 4] {
            let (out, stats) = map_indexed_retry(&ParConfig::new(threads), &items, 2, |_, x| {
                if *x == 13 || *x == 21 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(*x)
                }
            });
            assert_eq!(
                out.unwrap_err(),
                ParError::Task {
                    index: 13,
                    error: "bad 13".to_owned()
                }
            );
            assert_eq!(stats.retries, 2); // two items, one retry round
            assert_eq!(stats.recovered, 0);
        }
    }

    #[test]
    fn single_attempt_matches_map_indexed() {
        let items: Vec<u64> = (0..10).collect();
        let (out, stats) =
            map_indexed_retry(&ParConfig::new(2), &items, 1, |_, x| Ok::<_, ()>(*x + 1));
        assert_eq!(out.unwrap(), (1..=10).collect::<Vec<_>>());
        assert_eq!(stats, RetryStats::default());
    }
}
