//! Observability bundles for the simulation back-ends.
//!
//! A [`SimObs`] is the set of counters, phase spans and the event-log
//! handle one simulator reports into, resolved once from an
//! [`ocapi_obs::Registry`] at attach time so the per-cycle cost is a
//! handful of relaxed atomic adds and one clock read per phase. A
//! simulator with no bundle attached pays a single `Option` test per
//! phase and nothing else.
//!
//! Counter names are `{backend}.{what}` (`interp.cycles`,
//! `compiled.sfg_firings`, …); the phase spans hang off one root span
//! per back-end, mirroring the paper's three-phase cycle scheduler:
//!
//! * `interp` → `transition_select`, `evaluate`, `register_update`,
//!   `trace`
//! * `compiled` → `guard_pre_tape`, `transition_select`, `tape`,
//!   `register_update`, `trace`
//! * `fused` → `transition_select`, `exec`, `register_update`, `trace`
//!   (the direct-threaded schedule runs as one `exec` phase; the other
//!   spans exist with zero hits so profile shapes stay comparable)
//!
//! Both the span *structure* and the per-span hit counts are pure
//! functions of the workload — the deterministic half of the obs
//! contract — while the recorded durations land in the profile's
//! `timing` section only.

use ocapi_obs::{Counter, EventLog, Registry, Span};

use crate::sim::lower::LowerStats;
use crate::sim::opt::OptStats;

/// Counter handles for the compiled back-end's build-time tape
/// optimizer. The values are pure functions of the captured system (the
/// deterministic namespace); `CompiledSim::attach_obs` records them once
/// per attach.
#[derive(Debug, Clone)]
pub(crate) struct OptCounters {
    instrs_in: Counter,
    instrs_out: Counter,
    folded: Counter,
    cse_hits: Counter,
    dce_removed: Counter,
    slots_saved: Counter,
}

impl OptCounters {
    fn new(reg: &Registry, backend: &str) -> OptCounters {
        OptCounters {
            instrs_in: reg.counter(&format!("{backend}.opt.instrs_in")),
            instrs_out: reg.counter(&format!("{backend}.opt.instrs_out")),
            folded: reg.counter(&format!("{backend}.opt.folded")),
            cse_hits: reg.counter(&format!("{backend}.opt.cse_hits")),
            dce_removed: reg.counter(&format!("{backend}.opt.dce_removed")),
            slots_saved: reg.counter(&format!("{backend}.opt.slots_saved")),
        }
    }

    pub(crate) fn record(&self, s: &OptStats) {
        self.instrs_in.add(s.instrs_in);
        self.instrs_out.add(s.instrs_out);
        self.folded.add(s.folded);
        self.cse_hits.add(s.cse_hits);
        self.dce_removed.add(s.dce_removed);
        self.slots_saved.add(s.slots_saved);
    }
}

/// Counter handles for the direct-threaded lowering pass behind the
/// fused back-end. Like [`OptCounters`] these are pure functions of the
/// optimized program (the deterministic namespace), flushed once per
/// `FusedSim::attach_obs`. The names stay under `compiled.lower.*`
/// because the lowering consumes the *compiled* program — the fused
/// engine is a second executor of the same build, not a new compiler.
#[derive(Debug, Clone)]
pub(crate) struct LowerCounters {
    kernels: Counter,
    superinstructions: Counter,
    fusion_coverage_pct: Counter,
}

impl LowerCounters {
    fn new(reg: &Registry) -> LowerCounters {
        LowerCounters {
            kernels: reg.counter("compiled.lower.kernels"),
            superinstructions: reg.counter("compiled.lower.superinstructions"),
            fusion_coverage_pct: reg.counter("compiled.lower.fusion_coverage_pct"),
        }
    }

    pub(crate) fn record(&self, s: &LowerStats) {
        self.kernels.add(s.kernels);
        self.superinstructions.add(s.superinstructions);
        self.fusion_coverage_pct.add(s.coverage_pct);
    }
}

/// Counter + span + event-log handles for one simulator back-end.
///
/// Build with [`SimObs::interp`] or [`SimObs::compiled`] and hand to
/// `InterpSim::attach_obs` / `CompiledSim::attach_obs`. Cloning shares
/// the underlying atomics, so several simulators of the same back-end
/// attached to one registry aggregate into the same counters and spans.
#[derive(Debug, Clone)]
pub struct SimObs {
    /// Completed clock cycles.
    pub(crate) cycles: Counter,
    /// Signal-flow graphs (and untimed blocks) fired.
    pub(crate) sfg_firings: Counter,
    /// Work-list convergence iterations of the evaluation phase
    /// (0 for the compiled back-end: its tape is statically scheduled).
    pub(crate) convergence_iters: Counter,
    /// Register writes committed.
    pub(crate) reg_updates: Counter,
    /// Guard pre-tape execution (compiled back-end only).
    pub(crate) sp_pre: Option<Span>,
    /// Transition selection (phase 0).
    pub(crate) sp_select: Span,
    /// Token production + evaluation (phases 1+2) / main tape.
    pub(crate) sp_eval: Span,
    /// Register update and state commit (phase 3).
    pub(crate) sp_commit: Span,
    /// Trace recording, when enabled.
    pub(crate) sp_trace: Span,
    /// Forensics sink (deadlocks).
    pub(crate) events: EventLog,
    /// Tape-optimizer counters (compiled back-end only).
    pub(crate) opt: Option<OptCounters>,
    /// Lowering-pass counters (fused back-end only).
    pub(crate) lower: Option<LowerCounters>,
}

impl SimObs {
    /// The bundle for the interpreted (cycle-scheduler) back-end.
    pub fn interp(reg: &Registry) -> SimObs {
        SimObs::attach(reg, "interp", "evaluate", false)
    }

    /// The bundle for the compiled (levelized-tape) back-end.
    pub fn compiled(reg: &Registry) -> SimObs {
        SimObs::attach(reg, "compiled", "tape", true)
    }

    /// The bundle for the fused (direct-threaded) back-end. The whole
    /// threaded schedule — guards, transition select, kernel runs,
    /// register commit — executes as one `exec` phase, so only that
    /// span and `trace` accrue hits; attaching also resolves the
    /// deterministic `compiled.lower.*` counters, flushed at
    /// `FusedSim::attach_obs`.
    pub fn fused(reg: &Registry) -> SimObs {
        let mut obs = SimObs::attach(reg, "fused", "exec", false);
        obs.lower = Some(LowerCounters::new(reg));
        obs
    }

    fn attach(reg: &Registry, backend: &str, eval_label: &str, pre: bool) -> SimObs {
        let root = reg.span(backend);
        SimObs {
            cycles: reg.counter(&format!("{backend}.cycles")),
            sfg_firings: reg.counter(&format!("{backend}.sfg_firings")),
            convergence_iters: reg.counter(&format!("{backend}.convergence_iters")),
            reg_updates: reg.counter(&format!("{backend}.reg_updates")),
            sp_pre: pre.then(|| root.child("guard_pre_tape")),
            sp_select: root.child("transition_select"),
            sp_eval: root.child(eval_label),
            sp_commit: root.child("register_update"),
            sp_trace: root.child("trace"),
            events: reg.events().clone(),
            opt: pre.then(|| OptCounters::new(reg, backend)),
            lower: None,
        }
    }

    /// The cycles counter (e.g. for throughput reporting).
    pub fn cycles(&self) -> &Counter {
        &self.cycles
    }
}

/// Observability bundle for the lane-batched executor
/// (`ocapi::sim::batch::BatchedSim`).
///
/// All three counters are **deterministic** — pure functions of the
/// workload and the lane geometry, never of wall time or thread
/// scheduling:
///
/// * `batch.lanes` — lane slots attached (flushed once per
///   `BatchedSim::attach_obs`, like the optimizer counters);
/// * `batch.masked_lanes` — lanes masked off mid-run by a per-lane
///   error (incremented at the masking event);
/// * `batch.tape_passes` — full walks of the main tape (one per batched
///   step, regardless of lane count — the amortization the batch
///   exists for);
/// * `batch.word_ops` — packed `u64` word operations executed by the
///   bitsliced Bool fast path (each one advances up to 64 lanes at
///   once; 0 when the tape has no word-eligible runs or a masked lane
///   forces the scalar fallback).
///
/// The phase spans hang off a `batch` root and mirror the compiled
/// back-end's tree: `guard_pre_tape`, `transition_select`, `tape`,
/// `register_update`, `trace`.
#[derive(Debug, Clone)]
pub struct BatchObs {
    /// Lane slots attached (flushed at attach time).
    pub(crate) lanes: Counter,
    /// Lanes masked off by a per-lane error.
    pub(crate) masked_lanes: Counter,
    /// Full tape walks (one per batched step).
    pub(crate) tape_passes: Counter,
    /// Packed word operations executed by the bitsliced fast path.
    pub(crate) word_ops: Counter,
    /// Guard pre-tape execution.
    pub(crate) sp_pre: Span,
    /// Per-lane transition selection.
    pub(crate) sp_select: Span,
    /// Main tape execution across all live lanes.
    pub(crate) sp_eval: Span,
    /// Per-lane register commit.
    pub(crate) sp_commit: Span,
    /// Per-lane trace recording, when enabled.
    pub(crate) sp_trace: Span,
}

impl BatchObs {
    /// The bundle for the lane-batched executor, resolved from `reg`.
    pub fn new(reg: &Registry) -> BatchObs {
        let root = reg.span("batch");
        BatchObs {
            lanes: reg.counter("batch.lanes"),
            masked_lanes: reg.counter("batch.masked_lanes"),
            tape_passes: reg.counter("batch.tape_passes"),
            word_ops: reg.counter("batch.word_ops"),
            sp_pre: root.child("guard_pre_tape"),
            sp_select: root.child("transition_select"),
            sp_eval: root.child("tape"),
            sp_commit: root.child("register_update"),
            sp_trace: root.child("trace"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_creates_the_phase_tree_up_front() {
        let reg = Registry::new();
        let _i = SimObs::interp(&reg);
        let _c = SimObs::compiled(&reg);
        let roots = reg.roots();
        assert_eq!(roots.len(), 2);
        let labels: Vec<Vec<String>> = roots
            .iter()
            .map(|r| r.children().iter().map(|c| c.label().to_owned()).collect())
            .collect();
        // Sorted by label: compiled first, interp second.
        assert_eq!(roots[0].label(), "compiled");
        assert!(labels[0].iter().any(|l| l == "guard_pre_tape"));
        assert!(labels[0].iter().any(|l| l == "tape"));
        assert_eq!(roots[1].label(), "interp");
        assert!(labels[1].iter().any(|l| l == "evaluate"));
        assert!(labels[1].len() >= 4 && labels[0].len() >= 4);
    }

    #[test]
    fn fused_attach_resolves_the_lower_counters() {
        let reg = Registry::new();
        let obs = SimObs::fused(&reg);
        if let Some(lc) = &obs.lower {
            lc.record(&LowerStats {
                micro_in: 10,
                kernels: 4,
                superinstructions: 3,
                fused_micros: 8,
                coverage_pct: 80,
            });
        }
        assert_eq!(reg.counter("compiled.lower.kernels").get(), 4);
        assert_eq!(reg.counter("compiled.lower.superinstructions").get(), 3);
        assert_eq!(reg.counter("compiled.lower.fusion_coverage_pct").get(), 80);
    }

    #[test]
    fn two_attaches_share_counters() {
        let reg = Registry::new();
        let a = SimObs::interp(&reg);
        let b = SimObs::interp(&reg);
        a.cycles.add(2);
        b.cycles.add(3);
        assert_eq!(reg.counter("interp.cycles").get(), 5);
        assert_eq!(reg.roots().len(), 1);
    }
}
