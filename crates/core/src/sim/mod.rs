//! Simulation back-ends.
//!
//! The paper treats the captured C++ description in two ways (§5,
//! Figure 7): *interpreted* — the simulator walks the in-memory data
//! structure — and *compiled* — an application-specific simulator is
//! regenerated for maximum speed. [`InterpSim`] and [`CompiledSim`] are
//! the two back-ends; both implement [`Simulator`] and produce identical
//! cycle-by-cycle behaviour (see the `codegen_equivalence` integration
//! test).
//!
//! The kernels in this module are **panic-free on constructible
//! designs**: every runtime failure (combinational loops, type-confused
//! guards, unknown names) surfaces as a typed [`CoreError`], never an
//! abort. The lint gates below keep it that way.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod batch;
pub mod budget;
pub mod chaos;
mod compiled;
mod eval;
pub mod fault;
pub mod hash;
mod interp;
pub mod lower;
pub mod obs;
pub mod opt;
pub mod par;
pub mod snapshot;

pub use batch::BatchedSim;
pub use budget::{Budget, BudgetKind};
pub use chaos::{ChaosEvent, ChaosKind, ChaosPlan};
pub use compiled::CompiledSim;
pub use hash::{hash_compiled, hash_system, CompiledTape, FusedTape};
pub use interp::InterpSim;
pub use lower::{ExecEngine, FusedSim, LowerStats};
pub use obs::{BatchObs, SimObs};
pub use opt::{OptLevel, OptStats};
pub use snapshot::{SimSnapshot, SnapshotBackend};

use crate::trace::Trace;
use crate::value::Value;
use crate::CoreError;

/// Common driving interface of the interpreted and compiled simulators.
pub trait Simulator {
    /// Sets a primary input for the coming cycle(s).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown input and
    /// [`CoreError::ValueType`] for a type mismatch.
    fn set_input(&mut self, name: &str, value: Value) -> Result<(), CoreError>;

    /// Advances the system by one clock cycle.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CombinationalLoop`] if the evaluation phase
    /// stalls.
    fn step(&mut self) -> Result<(), CoreError>;

    /// Reads a primary output (the value driven in the last completed
    /// cycle).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown output.
    fn output(&self, name: &str) -> Result<Value, CoreError>;

    /// Number of completed cycles.
    fn cycle(&self) -> u64;

    /// Starts recording primary inputs and outputs each cycle.
    fn enable_trace(&mut self);

    /// The recorded trace (empty unless [`Simulator::enable_trace`] was
    /// called before stepping).
    fn trace(&self) -> &Trace;

    /// Runs `n` cycles.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Simulator::step`] error.
    fn run(&mut self, n: u64) -> Result<(), CoreError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Observes the current value on a named net (`instance.port` or a
    /// primary-input name). Used by the fault injector to read state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown net, or
    /// [`CoreError::Unsupported`] on back-ends without observable nets.
    fn peek_net(&self, name: &str) -> Result<Value, CoreError> {
        let _ = name;
        Err(CoreError::Unsupported {
            op: "peek_net".to_owned(),
        })
    }

    /// Overwrites the value held on a named net — the fault injector's
    /// corruption primitive. The value must match the net's type.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown net,
    /// [`CoreError::ValueType`] for a type mismatch, or
    /// [`CoreError::Unsupported`] on back-ends without pokeable nets.
    fn poke_net(&mut self, name: &str, value: Value) -> Result<(), CoreError> {
        let _ = (name, value);
        Err(CoreError::Unsupported {
            op: "poke_net".to_owned(),
        })
    }

    /// Observes the current value of register `reg` in timed instance
    /// `instance`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown instance or
    /// register, or [`CoreError::Unsupported`] on back-ends without
    /// observable registers.
    fn peek_reg(&self, instance: &str, reg: &str) -> Result<Value, CoreError> {
        let _ = (instance, reg);
        Err(CoreError::Unsupported {
            op: "peek_reg".to_owned(),
        })
    }

    /// Overwrites the current value of register `reg` in timed instance
    /// `instance`. The value must match the register's declared type.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown instance or
    /// register, [`CoreError::ValueType`] for a type mismatch, or
    /// [`CoreError::Unsupported`] on back-ends without pokeable
    /// registers.
    fn poke_reg(&mut self, instance: &str, reg: &str, value: Value) -> Result<(), CoreError> {
        let _ = (instance, reg, value);
        Err(CoreError::Unsupported {
            op: "poke_reg".to_owned(),
        })
    }
}
