//! Simulation back-ends.
//!
//! The paper treats the captured C++ description in two ways (§5,
//! Figure 7): *interpreted* — the simulator walks the in-memory data
//! structure — and *compiled* — an application-specific simulator is
//! regenerated for maximum speed. [`InterpSim`] and [`CompiledSim`] are
//! the two back-ends; both implement [`Simulator`] and produce identical
//! cycle-by-cycle behaviour (see the `codegen_equivalence` integration
//! test).

mod compiled;
mod eval;
mod interp;

pub use compiled::CompiledSim;
pub use interp::InterpSim;

use crate::trace::Trace;
use crate::value::Value;
use crate::CoreError;

/// Common driving interface of the interpreted and compiled simulators.
pub trait Simulator {
    /// Sets a primary input for the coming cycle(s).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown input and
    /// [`CoreError::ValueType`] for a type mismatch.
    fn set_input(&mut self, name: &str, value: Value) -> Result<(), CoreError>;

    /// Advances the system by one clock cycle.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CombinationalLoop`] if the evaluation phase
    /// stalls.
    fn step(&mut self) -> Result<(), CoreError>;

    /// Reads a primary output (the value driven in the last completed
    /// cycle).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] for an unknown output.
    fn output(&self, name: &str) -> Result<Value, CoreError>;

    /// Number of completed cycles.
    fn cycle(&self) -> u64;

    /// Starts recording primary inputs and outputs each cycle.
    fn enable_trace(&mut self);

    /// The recorded trace (empty unless [`Simulator::enable_trace`] was
    /// called before stepping).
    fn trace(&self) -> &Trace;

    /// Runs `n` cycles.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Simulator::step`] error.
    fn run(&mut self, n: u64) -> Result<(), CoreError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }
}
