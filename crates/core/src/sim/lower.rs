//! Direct-threaded lowering of the compiled tape: the [`FusedSim`]
//! back-end.
//!
//! [`crate::CompiledSim`] walks a `Vec<Micro>` and pays one `match`
//! dispatch per micro-op per cycle. This module lowers the *same*
//! optimized [`Program`] one stage further, into a direct-threaded
//! program:
//!
//! * a flat array of **monomorphic kernel function pointers** — one
//!   kernel per (op, slot type, width class), so the hot loop does no
//!   type or width branching: full-word adds get a kernel without the
//!   mask AND, 64-bit slices become plain shifts, `MaskTo` with a
//!   full mask becomes a copy, compare kinds are `const`-specialized;
//! * a **packed operand stream** of `u64` words the kernels read
//!   sequentially, far denser than the `Micro` enum;
//! * **superinstruction fusion**, discovered by a deterministic
//!   left-to-right peephole pass: the common 2-op sequences on the
//!   DECT/HCOR tapes (cmp+select, guard-test+copy, load-op and
//!   op-store pairs) fuse into single kernels, and any maximal run of
//!   same-kind ops collapses into *one* indirect call that loops over
//!   the run's packed operands;
//! * precomputed **register-commit and Drive/Fire barrier schedules**:
//!   FSM transition tables, SFG activation flags and register files
//!   are flattened into single contiguous arrays with per-instance
//!   offsets, so `step()` is a single pass over a segment schedule
//!   with one indirect call per kernel run and no nested-`Vec`
//!   pointer chasing.
//!
//! Every fused kernel executes its constituent micro-ops *in original
//! tape order, including intermediate destination writes*, so the
//! lowering is semantics-preserving by construction — no liveness
//! analysis, and bit-exact equivalence with [`crate::CompiledSim`] and
//! `InterpSim` at every opt level (enforced by
//! `crates/core/tests/fused.rs`).
//!
//! The lowered form is a pure deterministic function of the
//! [`Program`], so [`crate::sim::hash::hash_compiled`]'s program hash
//! already covers it: `FusedSim` shares `CompiledSim`'s design hash
//! and snapshot layout ([`SnapshotBackend::Compiled`]), making fused ↔
//! compiled snapshots interchangeable while engine or opt-level
//! confusion keeps failing with the existing typed errors.

use std::sync::Arc;

use ocapi_fixp::{Fix, Format, Overflow, Rounding};

use crate::sim::budget::Budget;
use crate::sim::compiled::{
    build_program, decode, encode, init_states, make_trace, Cmp, Micro, Program, UntimedIo,
};
use crate::sim::hash::{CompiledTape, FusedTape};
use crate::sim::obs::SimObs;
use crate::sim::opt::{OptLevel, OptStats};
use crate::sim::snapshot::{SimSnapshot, SnapshotBackend};
use crate::sim::Simulator;
use crate::system::System;
use crate::trace::Trace;
use crate::value::{SigType, Value};
use crate::CoreError;

/// Which simulation engine executes a design. Shared vocabulary for
/// the bench `--engine` flag and the serve daemon's tape-cache key —
/// the same `(design, opt)` pair lowered for different engines must
/// never alias in a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExecEngine {
    /// The cycle-scheduler interpreter (`InterpSim`).
    Interp,
    /// The levelized-tape simulator (`CompiledSim`).
    Compiled,
    /// The direct-threaded fused simulator (`FusedSim`).
    Fused,
}

impl ExecEngine {
    /// Stable lowercase name, as spelled on CLIs and in requests.
    pub fn as_str(self) -> &'static str {
        match self {
            ExecEngine::Interp => "interp",
            ExecEngine::Compiled => "compiled",
            ExecEngine::Fused => "fused",
        }
    }

    /// Parses [`ExecEngine::as_str`] spellings.
    pub fn parse(s: &str) -> Option<ExecEngine> {
        match s {
            "interp" => Some(ExecEngine::Interp),
            "compiled" => Some(ExecEngine::Compiled),
            "fused" => Some(ExecEngine::Fused),
            _ => None,
        }
    }
}

/// What the lowering pass did, in deterministic counters: pure
/// functions of the optimized program, reported through
/// `compiled.lower.*` at `FusedSim::attach_obs` (the same contract as
/// `compiled.opt.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LowerStats {
    /// Micro-ops lowered (guard pre-tape + main tape, `Fire` excluded).
    pub micro_in: u64,
    /// Kernel invocations per simulated cycle after fusion.
    pub kernels: u64,
    /// Fused superinstructions: peephole pairs plus same-kind runs of
    /// length ≥ 2 (each run costs a single indirect call).
    pub superinstructions: u64,
    /// Micro-ops covered by some superinstruction.
    pub fused_micros: u64,
    /// `100 * fused_micros / micro_in`, rounded down (0 when empty).
    pub coverage_pct: u64,
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

/// Read-mostly execution context handed to every kernel. The mutable
/// state a kernel may touch is exactly the slot array; register files
/// and activation flags are read-only here because commits and
/// transition selection are barrier phases of the schedule.
struct Ctx<'a> {
    slots: &'a mut [u64],
    regs: &'a [u64],
    active: &'a [bool],
    ops: &'a [u64],
    casts: &'a [CastOp],
}

/// A monomorphic kernel: executes one maximal run of identical
/// micro-ops, reading packed operands at `ops[base..]` (`ops[base]` is
/// the element count, elements follow contiguously).
type Kernel = fn(&mut Ctx<'_>, usize);

/// Side table for the two fixed-point cast kernels; the operand stream
/// carries an index instead of the format/rounding/overflow triple.
#[derive(Debug, Clone, Copy)]
enum CastOp {
    Fix {
        src: Format,
        target: Format,
        rnd: Rounding,
        ovf: Overflow,
    },
    Float {
        target: Format,
        rnd: Rounding,
        ovf: Overflow,
    },
}

/// Declares a fixed-arity run kernel: one indirect call executes a
/// run of identical micro-ops, loading the named operand words per
/// element. Bounds on slot indices are established once per `step` by
/// the `slot_bound` assert (the `BatchedSim` pattern), not re-derived
/// per op.
macro_rules! kernel {
    ($name:ident, [$($w:ident),+ $(,)?], |$s:ident| $body:expr) => {
        fn $name(ctx: &mut Ctx<'_>, base: usize) {
            // One range check for the whole run: slice the operand
            // window up front, then walk it in exact-width chunks so
            // the per-word loads carry no residual bounds checks.
            const W: usize = [$(stringify!($w)),+].len();
            let n = ctx.ops[base] as usize;
            let words = &ctx.ops[base + 1..base + 1 + n * W];
            for el in words.chunks_exact(W) {
                let mut i = 0;
                $(let $w = el[i]; i += 1;)+
                let _ = i;
                let $s: &mut [u64] = ctx.slots;
                $body;
            }
        }
    };
}

/// Like [`kernel!`] but `const`-specialized on a `u8` selector (compare
/// kind or ALU kind) so the selection folds at compile time.
macro_rules! kernel_k {
    ($name:ident, [$($w:ident),+ $(,)?], |$s:ident| $body:expr) => {
        fn $name<const K: u8>(ctx: &mut Ctx<'_>, base: usize) {
            const W: usize = [$(stringify!($w)),+].len();
            let n = ctx.ops[base] as usize;
            let words = &ctx.ops[base + 1..base + 1 + n * W];
            for el in words.chunks_exact(W) {
                let mut i = 0;
                $(let $w = el[i]; i += 1;)+
                let _ = i;
                let $s: &mut [u64] = ctx.slots;
                $body;
            }
        }
    };
}

/// Monomorphised comparison: `K` indexes Eq/Ne/Lt/Le/Gt/Ge and folds
/// to a single machine compare in each instantiation.
#[inline(always)]
fn cmp_k<const K: u8>(o: std::cmp::Ordering) -> u64 {
    (match K {
        0 => o.is_eq(),
        1 => o.is_ne(),
        2 => o.is_lt(),
        3 => o.is_le(),
        4 => o.is_gt(),
        _ => o.is_ge(),
    }) as u64
}

/// Monomorphised ALU op for the fused pair kernels: And/Or/Xor ignore
/// the mask; Add/Sub wrap then mask (a full-word op passes `u64::MAX`).
#[inline(always)]
fn alu_k<const K: u8>(a: u64, b: u64, mask: u64) -> u64 {
    match K {
        0 => a & b,
        1 => a | b,
        2 => a ^ b,
        3 => a.wrapping_add(b) & mask,
        _ => a.wrapping_sub(b) & mask,
    }
}

kernel!(k_copy, [dst, src], |s| s[dst as usize] = s[src as usize]);
kernel!(k_add, [dst, a, b, mask], |s| s[dst as usize] =
    s[a as usize].wrapping_add(s[b as usize]) & mask);
kernel!(k_add_w, [dst, a, b], |s| s[dst as usize] =
    s[a as usize].wrapping_add(s[b as usize]));
kernel!(k_sub, [dst, a, b, mask], |s| s[dst as usize] =
    s[a as usize].wrapping_sub(s[b as usize]) & mask);
kernel!(k_sub_w, [dst, a, b], |s| s[dst as usize] =
    s[a as usize].wrapping_sub(s[b as usize]));
kernel!(k_mul, [dst, a, b, mask], |s| s[dst as usize] =
    s[a as usize].wrapping_mul(s[b as usize]) & mask);
kernel!(k_mul_w, [dst, a, b], |s| s[dst as usize] =
    s[a as usize].wrapping_mul(s[b as usize]));
kernel!(k_and, [dst, a, b], |s| s[dst as usize] =
    s[a as usize] & s[b as usize]);
kernel!(k_or, [dst, a, b], |s| s[dst as usize] =
    s[a as usize] | s[b as usize]);
kernel!(k_xor, [dst, a, b], |s| s[dst as usize] =
    s[a as usize] ^ s[b as usize]);
kernel!(k_not, [dst, a, mask], |s| s[dst as usize] =
    !s[a as usize] & mask);
kernel!(k_not_w, [dst, a], |s| s[dst as usize] = !s[a as usize]);
kernel!(k_neg_b, [dst, a, mask], |s| s[dst as usize] =
    s[a as usize].wrapping_neg() & mask);
kernel!(k_neg_b_w, [dst, a], |s| s[dst as usize] =
    s[a as usize].wrapping_neg());
kernel!(k_shl, [dst, a, n, mask], |s| s[dst as usize] =
    (s[a as usize] << n) & mask);
kernel!(k_shl_w, [dst, a, n], |s| s[dst as usize] =
    s[a as usize] << n);
kernel!(k_shr, [dst, a, n], |s| s[dst as usize] = s[a as usize] >> n);
kernel!(k_shr_mask, [dst, a, n, mask], |s| s[dst as usize] =
    (s[a as usize] >> n) & mask);
kernel!(k_zero, [dst], |s| s[dst as usize] = 0);
kernel_k!(k_cmp_u, [dst, a, b], |s| s[dst as usize] =
    cmp_k::<K>(s[a as usize].cmp(&s[b as usize])));
kernel!(k_add_f, [dst, a, b, sha, shb], |s| {
    let x = (s[a as usize] as i64) << sha;
    let y = (s[b as usize] as i64) << shb;
    s[dst as usize] = (x + y) as u64;
});
kernel!(k_sub_f, [dst, a, b, sha, shb], |s| {
    let x = (s[a as usize] as i64) << sha;
    let y = (s[b as usize] as i64) << shb;
    s[dst as usize] = (x - y) as u64;
});
kernel!(k_mul_f, [dst, a, b], |s| {
    let p = s[a as usize] as i64 as i128 * s[b as usize] as i64 as i128;
    s[dst as usize] = p as i64 as u64;
});
kernel!(k_neg_f, [dst, a], |s| s[dst as usize] =
    (s[a as usize] as i64).wrapping_neg() as u64);
kernel_k!(k_cmp_f, [dst, a, b, sha, shb], |s| {
    let x = (s[a as usize] as i64 as i128) << sha;
    let y = (s[b as usize] as i64 as i128) << shb;
    s[dst as usize] = cmp_k::<K>(x.cmp(&y));
});
kernel!(k_add_fl, [dst, a, b], |s| s[dst as usize] =
    (f64::from_bits(s[a as usize]) + f64::from_bits(s[b as usize]))
        .to_bits());
kernel!(k_sub_fl, [dst, a, b], |s| s[dst as usize] =
    (f64::from_bits(s[a as usize]) - f64::from_bits(s[b as usize]))
        .to_bits());
kernel!(k_mul_fl, [dst, a, b], |s| s[dst as usize] =
    (f64::from_bits(s[a as usize]) * f64::from_bits(s[b as usize]))
        .to_bits());
kernel!(k_neg_fl, [dst, a], |s| s[dst as usize] =
    (-f64::from_bits(s[a as usize])).to_bits());
kernel_k!(k_cmp_fl, [dst, a, b], |s| {
    let o = f64::from_bits(s[a as usize])
        .partial_cmp(&f64::from_bits(s[b as usize]))
        .unwrap_or(std::cmp::Ordering::Equal);
    s[dst as usize] = cmp_k::<K>(o);
});
kernel!(k_mask_to, [dst, a, mask], |s| s[dst as usize] =
    s[a as usize] & mask);
kernel!(k_non_zero, [dst, a], |s| s[dst as usize] =
    (s[a as usize] != 0) as u64);
kernel!(k_non_zero_fl, [dst, a], |s| s[dst as usize] =
    (f64::from_bits(s[a as usize]) != 0.0) as u64);
kernel!(k_to_float_bits, [dst, a], |s| s[dst as usize] =
    (s[a as usize] as f64).to_bits());
kernel!(k_to_float_fix, [dst, a, frac], |s| s[dst as usize] =
    (s[a as usize] as i64 as f64 * f64::powi(2.0, -(frac as i32)))
        .to_bits());
kernel!(
    k_select,
    [dst, c, t, e],
    |s| s[dst as usize] = if s[c as usize] != 0 {
        s[t as usize]
    } else {
        s[e as usize]
    }
);

// Fused superinstructions. Each executes its constituent micro-ops in
// original order, *including* the intermediate destination write, so
// fusion never changes observable slot state.
kernel_k!(k_cmp_select, [cdst, a, b, sdst, t, e], |s| {
    let c = cmp_k::<K>(s[a as usize].cmp(&s[b as usize]));
    s[cdst as usize] = c;
    s[sdst as usize] = if c != 0 { s[t as usize] } else { s[e as usize] };
});
kernel!(k_test_select, [cdst, a, sdst, t, e], |s| {
    let c = (s[a as usize] != 0) as u64;
    s[cdst as usize] = c;
    s[sdst as usize] = if c != 0 { s[t as usize] } else { s[e as usize] };
});
kernel_k!(k_cmp_copy, [cdst, a, b, dst2], |s| {
    let v = cmp_k::<K>(s[a as usize].cmp(&s[b as usize]));
    s[cdst as usize] = v;
    s[dst2 as usize] = v;
});
kernel_k!(k_alu_store, [dst, a, b, mask, dst2], |s| {
    let v = alu_k::<K>(s[a as usize], s[b as usize], mask);
    s[dst as usize] = v;
    s[dst2 as usize] = v;
});
kernel_k!(k_copy_alu, [cdst, csrc, dst, a, b, mask], |s| {
    s[cdst as usize] = s[csrc as usize];
    s[dst as usize] = alu_k::<K>(s[a as usize], s[b as usize], mask);
});

fn k_reg_read(ctx: &mut Ctx<'_>, base: usize) {
    let n = ctx.ops[base] as usize;
    let words = &ctx.ops[base + 1..base + 1 + n * 2];
    for el in words.chunks_exact(2) {
        ctx.slots[el[0] as usize] = ctx.regs[el[1] as usize];
    }
}

fn k_cast_f(ctx: &mut Ctx<'_>, base: usize) {
    let n = ctx.ops[base] as usize;
    let mut p = base + 1;
    for _ in 0..n {
        let dst = ctx.ops[p] as usize;
        let a = ctx.ops[p + 1] as usize;
        let idx = ctx.ops[p + 2] as usize;
        p += 3;
        match ctx.casts[idx] {
            CastOp::Fix {
                src,
                target,
                rnd,
                ovf,
            } => {
                let v = Fix::from_raw(ctx.slots[a] as i64, src);
                ctx.slots[dst] = v.cast(target, rnd, ovf).mantissa() as u64;
            }
            CastOp::Float { target, rnd, ovf } => {
                let x = f64::from_bits(ctx.slots[a]);
                ctx.slots[dst] = Fix::from_f64(x, target, rnd, ovf).mantissa() as u64;
            }
        }
    }
}

/// Net drive with write-priority resolution over the flattened
/// activation flags. Elements are self-describing (`net, k, k packed
/// (flat_sfg << 32 | src) words`), so runs still collapse.
fn k_drive(ctx: &mut Ctx<'_>, base: usize) {
    let n = ctx.ops[base] as usize;
    let mut p = base + 1;
    for _ in 0..n {
        let net = ctx.ops[p] as usize;
        let k = ctx.ops[p + 1] as usize;
        p += 2;
        for &pair in &ctx.ops[p..p + k] {
            if ctx.active[(pair >> 32) as usize] {
                ctx.slots[net] = ctx.slots[(pair & 0xffff_ffff) as usize];
                break;
            }
        }
        p += k;
    }
}

// ---------------------------------------------------------------------------
// Lowered program
// ---------------------------------------------------------------------------

/// ALU selector for the fused op-store / load-op pair kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Alu {
    And,
    Or,
    Xor,
    Add,
    Sub,
}

/// Kernel identity used for peephole matching and run collapsing.
/// Equal ids ⇒ same kernel pointer and element layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KId {
    Copy,
    RegRead,
    Add,
    AddW,
    Sub,
    SubW,
    Mul,
    MulW,
    And,
    Or,
    Xor,
    Not,
    NotW,
    NegB,
    NegBW,
    Shl,
    ShlW,
    Shr,
    ShrMask,
    Zero,
    CmpU(Cmp),
    AddF,
    SubF,
    MulF,
    NegF,
    CmpF(Cmp),
    CastF,
    AddFl,
    SubFl,
    MulFl,
    NegFl,
    CmpFl(Cmp),
    MaskTo,
    NonZero,
    NonZeroFl,
    ToFloatBits,
    ToFloatFix,
    Select,
    Drive,
    CmpSelect(Cmp),
    TestSelect,
    CmpCopy(Cmp),
    AluStore(Alu),
    CopyAlu(Alu),
}

macro_rules! by_cmp {
    ($f:ident, $c:expr) => {
        match $c {
            Cmp::Eq => $f::<0>,
            Cmp::Ne => $f::<1>,
            Cmp::Lt => $f::<2>,
            Cmp::Le => $f::<3>,
            Cmp::Gt => $f::<4>,
            Cmp::Ge => $f::<5>,
        }
    };
}

macro_rules! by_alu {
    ($f:ident, $c:expr) => {
        match $c {
            Alu::And => $f::<0>,
            Alu::Or => $f::<1>,
            Alu::Xor => $f::<2>,
            Alu::Add => $f::<3>,
            Alu::Sub => $f::<4>,
        }
    };
}

fn kernel_of(id: KId) -> Kernel {
    match id {
        KId::Copy => k_copy,
        KId::RegRead => k_reg_read,
        KId::Add => k_add,
        KId::AddW => k_add_w,
        KId::Sub => k_sub,
        KId::SubW => k_sub_w,
        KId::Mul => k_mul,
        KId::MulW => k_mul_w,
        KId::And => k_and,
        KId::Or => k_or,
        KId::Xor => k_xor,
        KId::Not => k_not,
        KId::NotW => k_not_w,
        KId::NegB => k_neg_b,
        KId::NegBW => k_neg_b_w,
        KId::Shl => k_shl,
        KId::ShlW => k_shl_w,
        KId::Shr => k_shr,
        KId::ShrMask => k_shr_mask,
        KId::Zero => k_zero,
        KId::CmpU(c) => by_cmp!(k_cmp_u, c),
        KId::AddF => k_add_f,
        KId::SubF => k_sub_f,
        KId::MulF => k_mul_f,
        KId::NegF => k_neg_f,
        KId::CmpF(c) => by_cmp!(k_cmp_f, c),
        KId::CastF => k_cast_f,
        KId::AddFl => k_add_fl,
        KId::SubFl => k_sub_fl,
        KId::MulFl => k_mul_fl,
        KId::NegFl => k_neg_fl,
        KId::CmpFl(c) => by_cmp!(k_cmp_fl, c),
        KId::MaskTo => k_mask_to,
        KId::NonZero => k_non_zero,
        KId::NonZeroFl => k_non_zero_fl,
        KId::ToFloatBits => k_to_float_bits,
        KId::ToFloatFix => k_to_float_fix,
        KId::Select => k_select,
        KId::Drive => k_drive,
        KId::CmpSelect(c) => by_cmp!(k_cmp_select, c),
        KId::TestSelect => k_test_select,
        KId::CmpCopy(c) => by_cmp!(k_cmp_copy, c),
        KId::AluStore(a) => by_alu!(k_alu_store, a),
        KId::CopyAlu(a) => by_alu!(k_copy_alu, a),
    }
}

/// One lowered element: a kernel identity plus its packed operand
/// words. `micros` is how many original micro-ops it covers (2 after
/// pair fusion).
#[derive(Debug, Clone)]
struct El {
    id: KId,
    w: Vec<u64>,
    micros: u32,
}

/// Tape item: a lowerable element or an untimed-block fire barrier.
#[derive(Debug, Clone)]
enum Item {
    El(El),
    Fire(u32),
}

/// Segment of the per-cycle schedule: a run range of kernel calls, or
/// an untimed-block fire (the only op that needs `&mut` access beyond
/// the slot array).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Seg {
    Run { start: u32, end: u32 },
    Fire { inst: u32 },
}

/// One FSM transition, flattened: `guard == u32::MAX` means
/// unconditional; `s0..s1` indexes [`SelectPlan::sfgs`].
#[derive(Debug, Clone, Copy)]
struct FlatTrans {
    guard: u32,
    to: u32,
    s0: u32,
    s1: u32,
}

/// Per-instance transition selection over flat arrays — the nested
/// `Vec<Vec<Vec<_>>>` tables of the compiled back-end collapsed into
/// contiguous rows.
#[derive(Debug, Clone, Default)]
struct SelectPlan {
    /// Per timed instance: `(active_start, active_end, rows_base,
    /// has_fsm)`.
    insts: Vec<(u32, u32, u32, bool)>,
    /// Per (instance, state): range into `trans`.
    rows: Vec<(u32, u32)>,
    trans: Vec<FlatTrans>,
    /// Flattened activation indices of each transition's SFG list.
    sfgs: Vec<u32>,
}

/// Register-commit schedule over the flattened register file:
/// `writes[i] = (flat_reg, cand_start, cand_end)` into `cands`
/// (`(flat_active, src_slot)` pairs, first active wins).
#[derive(Debug, Clone, Default)]
struct CommitPlan {
    writes: Vec<(u32, u32, u32)>,
    cands: Vec<(u32, u32)>,
}

/// The immutable direct-threaded program: everything [`FusedSim`]
/// needs apart from the mutable per-instance state. Shared by
/// reference through [`FusedTape`] exactly like [`Program`] is through
/// [`CompiledTape`].
pub(crate) struct Lowered {
    // Carried over from the source program.
    init_slots: Vec<u64>,
    slot_ty: Vec<SigType>,
    net_slot: Vec<u32>,
    untimed_io: Vec<UntimedIo>,
    opt_stats: OptStats,
    // Threaded code.
    kernels: Vec<Kernel>,
    bases: Vec<u32>,
    ops: Vec<u64>,
    casts: Vec<CastOp>,
    pre_sched: Vec<Seg>,
    sched: Vec<Seg>,
    select: SelectPlan,
    commit: CommitPlan,
    // Flat state layout. Activation offsets are baked into the select,
    // commit and drive plans at lowering time, so only the register
    // offsets (needed by `peek_reg`/`poke_reg`) survive to runtime.
    active_total: u32,
    reg_off: Vec<u32>,
    reg_total: u32,
    /// Exclusive upper bound on every slot index any kernel or barrier
    /// phase touches; asserted once per `step` against the slot array.
    slot_bound: u32,
    stats: LowerStats,
}

impl std::fmt::Debug for Lowered {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lowered")
            .field("kernels", &self.kernels.len())
            .field("operand_words", &self.ops.len())
            .field("stats", &self.stats)
            .finish()
    }
}

/// Accumulates the threaded-code arrays during lowering.
#[derive(Default)]
struct Emit {
    kernels: Vec<Kernel>,
    bases: Vec<u32>,
    ops: Vec<u64>,
    casts: Vec<CastOp>,
    stats: LowerStats,
}

/// Exclusive upper bound on the slot indices `prog`'s tapes, guards
/// and commit candidates reference (0 for an empty program). The
/// compiled and fused hot loops assert this once up front instead of
/// re-deriving bounds per op.
pub(crate) fn slot_bound_of(prog: &Program) -> u32 {
    let mut hi: u32 = 0;
    let mut touch = |s: u32| hi = hi.max(s.saturating_add(1));
    for m in prog.pre_tape.iter().chain(prog.tape.iter()) {
        match m {
            Micro::Copy { dst, src } => {
                touch(*dst);
                touch(*src);
            }
            Micro::RegRead { dst, .. } => touch(*dst),
            Micro::AddB { dst, a, b, .. }
            | Micro::SubB { dst, a, b, .. }
            | Micro::MulB { dst, a, b, .. }
            | Micro::AndU { dst, a, b }
            | Micro::OrU { dst, a, b }
            | Micro::XorU { dst, a, b }
            | Micro::CmpU { dst, a, b, .. }
            | Micro::AddF { dst, a, b, .. }
            | Micro::SubF { dst, a, b, .. }
            | Micro::MulF { dst, a, b }
            | Micro::CmpF { dst, a, b, .. }
            | Micro::AddFl { dst, a, b }
            | Micro::SubFl { dst, a, b }
            | Micro::MulFl { dst, a, b }
            | Micro::CmpFl { dst, a, b, .. } => {
                touch(*dst);
                touch(*a);
                touch(*b);
            }
            Micro::NotU { dst, a, .. }
            | Micro::NegB { dst, a, .. }
            | Micro::ShlB { dst, a, .. }
            | Micro::ShrB { dst, a, .. }
            | Micro::ShrMask { dst, a, .. }
            | Micro::NegF { dst, a }
            | Micro::CastF { dst, a, .. }
            | Micro::FloatToFix { dst, a, .. }
            | Micro::NegFl { dst, a }
            | Micro::MaskTo { dst, a, .. }
            | Micro::NonZero { dst, a }
            | Micro::NonZeroFloat { dst, a }
            | Micro::ToFloatBits { dst, a }
            | Micro::ToFloatFix { dst, a, .. } => {
                touch(*dst);
                touch(*a);
            }
            Micro::SelectU { dst, c, t, e } => {
                touch(*dst);
                touch(*c);
                touch(*t);
                touch(*e);
            }
            Micro::Drive {
                net_slot, cands, ..
            } => {
                touch(*net_slot);
                for (_, src) in cands {
                    touch(*src);
                }
            }
            Micro::Fire { .. } => {}
        }
    }
    for tables in &prog.fsm_tables {
        for state in tables {
            for tr in state {
                if let Some(g) = tr.guard_slot {
                    touch(g);
                }
            }
        }
    }
    for w in &prog.reg_writes {
        for (_, src) in &w.cands {
            touch(*src);
        }
    }
    for (ins, outs) in &prog.untimed_io {
        for (sl, _) in ins.iter().chain(outs.iter()) {
            touch(*sl);
        }
    }
    for sl in &prog.net_slot {
        touch(*sl);
    }
    hi
}

/// Maps one micro-op to its lowered element (width-class specialized)
/// or a fire barrier.
fn map_micro(m: &Micro, reg_off: &[u32], active_off: &[u32], casts: &mut Vec<CastOp>) -> Item {
    const FULL: u64 = u64::MAX;
    let el = |id: KId, w: Vec<u64>| Item::El(El { id, w, micros: 1 });
    match m {
        Micro::Copy { dst, src } => el(KId::Copy, vec![*dst as u64, *src as u64]),
        Micro::RegRead { dst, inst, reg } => el(
            KId::RegRead,
            vec![*dst as u64, (reg_off[*inst as usize] + *reg) as u64],
        ),
        Micro::AddB { dst, a, b, mask } if *mask == FULL => {
            el(KId::AddW, vec![*dst as u64, *a as u64, *b as u64])
        }
        Micro::AddB { dst, a, b, mask } => {
            el(KId::Add, vec![*dst as u64, *a as u64, *b as u64, *mask])
        }
        Micro::SubB { dst, a, b, mask } if *mask == FULL => {
            el(KId::SubW, vec![*dst as u64, *a as u64, *b as u64])
        }
        Micro::SubB { dst, a, b, mask } => {
            el(KId::Sub, vec![*dst as u64, *a as u64, *b as u64, *mask])
        }
        Micro::MulB { dst, a, b, mask } if *mask == FULL => {
            el(KId::MulW, vec![*dst as u64, *a as u64, *b as u64])
        }
        Micro::MulB { dst, a, b, mask } => {
            el(KId::Mul, vec![*dst as u64, *a as u64, *b as u64, *mask])
        }
        Micro::AndU { dst, a, b } => el(KId::And, vec![*dst as u64, *a as u64, *b as u64]),
        Micro::OrU { dst, a, b } => el(KId::Or, vec![*dst as u64, *a as u64, *b as u64]),
        Micro::XorU { dst, a, b } => el(KId::Xor, vec![*dst as u64, *a as u64, *b as u64]),
        Micro::NotU { dst, a, mask } if *mask == FULL => {
            el(KId::NotW, vec![*dst as u64, *a as u64])
        }
        Micro::NotU { dst, a, mask } => el(KId::Not, vec![*dst as u64, *a as u64, *mask]),
        Micro::NegB { dst, a, mask } if *mask == FULL => {
            el(KId::NegBW, vec![*dst as u64, *a as u64])
        }
        Micro::NegB { dst, a, mask } => el(KId::NegB, vec![*dst as u64, *a as u64, *mask]),
        Micro::ShlB { dst, a, n, mask } if *n >= 64 => el(KId::Zero, vec![*dst as u64]),
        Micro::ShlB { dst, a, n, mask } if *mask == FULL => {
            el(KId::ShlW, vec![*dst as u64, *a as u64, *n as u64])
        }
        Micro::ShlB { dst, a, n, mask } => {
            el(KId::Shl, vec![*dst as u64, *a as u64, *n as u64, *mask])
        }
        Micro::ShrB { dst, a, n } if *n >= 64 => el(KId::Zero, vec![*dst as u64]),
        Micro::ShrB { dst, a, n } => el(KId::Shr, vec![*dst as u64, *a as u64, *n as u64]),
        Micro::ShrMask { dst, a, n, mask } if *n >= 64 => el(KId::Zero, vec![*dst as u64]),
        Micro::ShrMask { dst, a, n, mask } if *mask == FULL => {
            el(KId::Shr, vec![*dst as u64, *a as u64, *n as u64])
        }
        Micro::ShrMask { dst, a, n, mask } => {
            el(KId::ShrMask, vec![*dst as u64, *a as u64, *n as u64, *mask])
        }
        Micro::CmpU { dst, a, b, kind } => {
            el(KId::CmpU(*kind), vec![*dst as u64, *a as u64, *b as u64])
        }
        Micro::AddF {
            dst,
            a,
            b,
            sha,
            shb,
        } => el(
            KId::AddF,
            vec![*dst as u64, *a as u64, *b as u64, *sha as u64, *shb as u64],
        ),
        Micro::SubF {
            dst,
            a,
            b,
            sha,
            shb,
        } => el(
            KId::SubF,
            vec![*dst as u64, *a as u64, *b as u64, *sha as u64, *shb as u64],
        ),
        Micro::MulF { dst, a, b } => el(KId::MulF, vec![*dst as u64, *a as u64, *b as u64]),
        Micro::NegF { dst, a } => el(KId::NegF, vec![*dst as u64, *a as u64]),
        Micro::CmpF {
            dst,
            a,
            b,
            sha,
            shb,
            kind,
        } => el(
            KId::CmpF(*kind),
            vec![*dst as u64, *a as u64, *b as u64, *sha as u64, *shb as u64],
        ),
        Micro::CastF {
            dst,
            a,
            src,
            target,
            rnd,
            ovf,
        } => {
            let idx = casts.len() as u64;
            casts.push(CastOp::Fix {
                src: *src,
                target: *target,
                rnd: *rnd,
                ovf: *ovf,
            });
            el(KId::CastF, vec![*dst as u64, *a as u64, idx])
        }
        Micro::FloatToFix {
            dst,
            a,
            target,
            rnd,
            ovf,
        } => {
            let idx = casts.len() as u64;
            casts.push(CastOp::Float {
                target: *target,
                rnd: *rnd,
                ovf: *ovf,
            });
            el(KId::CastF, vec![*dst as u64, *a as u64, idx])
        }
        Micro::AddFl { dst, a, b } => el(KId::AddFl, vec![*dst as u64, *a as u64, *b as u64]),
        Micro::SubFl { dst, a, b } => el(KId::SubFl, vec![*dst as u64, *a as u64, *b as u64]),
        Micro::MulFl { dst, a, b } => el(KId::MulFl, vec![*dst as u64, *a as u64, *b as u64]),
        Micro::NegFl { dst, a } => el(KId::NegFl, vec![*dst as u64, *a as u64]),
        Micro::CmpFl { dst, a, b, kind } => {
            el(KId::CmpFl(*kind), vec![*dst as u64, *a as u64, *b as u64])
        }
        Micro::MaskTo { dst, a, mask } if *mask == FULL => {
            el(KId::Copy, vec![*dst as u64, *a as u64])
        }
        Micro::MaskTo { dst, a, mask } => el(KId::MaskTo, vec![*dst as u64, *a as u64, *mask]),
        Micro::NonZero { dst, a } => el(KId::NonZero, vec![*dst as u64, *a as u64]),
        Micro::NonZeroFloat { dst, a } => el(KId::NonZeroFl, vec![*dst as u64, *a as u64]),
        Micro::ToFloatBits { dst, a } => el(KId::ToFloatBits, vec![*dst as u64, *a as u64]),
        Micro::ToFloatFix { dst, a, frac_bits } => el(
            KId::ToFloatFix,
            vec![*dst as u64, *a as u64, *frac_bits as u64],
        ),
        Micro::SelectU { dst, c, t, e } => el(
            KId::Select,
            vec![*dst as u64, *c as u64, *t as u64, *e as u64],
        ),
        Micro::Drive {
            net_slot,
            inst,
            cands,
        } => {
            let mut w = Vec::with_capacity(2 + cands.len());
            w.push(*net_slot as u64);
            w.push(cands.len() as u64);
            for (sfg, src) in cands {
                let flat = (active_off[*inst as usize] + *sfg) as u64;
                w.push((flat << 32) | *src as u64);
            }
            el(KId::Drive, w)
        }
        Micro::Fire { inst } => Item::Fire(*inst),
    }
}

/// The ALU selector and mask word for an element eligible as the "op"
/// half of a pair fusion.
fn alu_of(e: &El) -> Option<(Alu, u64)> {
    const FULL: u64 = u64::MAX;
    match e.id {
        KId::And => Some((Alu::And, 0)),
        KId::Or => Some((Alu::Or, 0)),
        KId::Xor => Some((Alu::Xor, 0)),
        KId::Add => Some((Alu::Add, e.w[3])),
        KId::AddW => Some((Alu::Add, FULL)),
        KId::Sub => Some((Alu::Sub, e.w[3])),
        KId::SubW => Some((Alu::Sub, FULL)),
        _ => None,
    }
}

/// Tries to fuse two adjacent single elements into one
/// superinstruction. Rules are checked in a fixed order, so the pass
/// is deterministic.
fn try_fuse(a: &El, b: &El) -> Option<El> {
    if a.micros != 1 || b.micros != 1 {
        return None;
    }
    let fused = |id: KId, w: Vec<u64>| Some(El { id, w, micros: 2 });
    // cmp + select on the comparison result.
    if let (KId::CmpU(k), KId::Select) = (a.id, b.id) {
        if b.w[1] == a.w[0] {
            return fused(
                KId::CmpSelect(k),
                vec![a.w[0], a.w[1], a.w[2], b.w[0], b.w[2], b.w[3]],
            );
        }
    }
    // guard-test + select on the test result.
    if let (KId::NonZero, KId::Select) = (a.id, b.id) {
        if b.w[1] == a.w[0] {
            return fused(
                KId::TestSelect,
                vec![a.w[0], a.w[1], b.w[0], b.w[2], b.w[3]],
            );
        }
    }
    // guard-test + copy of the test result.
    if let (KId::CmpU(k), KId::Copy) = (a.id, b.id) {
        if b.w[1] == a.w[0] {
            return fused(KId::CmpCopy(k), vec![a.w[0], a.w[1], a.w[2], b.w[0]]);
        }
    }
    // op + store (copy of the op's destination).
    if b.id == KId::Copy && b.w[1] == a.w[0] {
        if let Some((alu, mask)) = alu_of(a) {
            return fused(
                KId::AluStore(alu),
                vec![a.w[0], a.w[1], a.w[2], mask, b.w[0]],
            );
        }
    }
    // load (copy) + op consuming the loaded value.
    if a.id == KId::Copy {
        if let Some((alu, mask)) = alu_of(b) {
            if b.w[1] == a.w[0] || b.w[2] == a.w[0] {
                return fused(
                    KId::CopyAlu(alu),
                    vec![a.w[0], a.w[1], b.w[0], b.w[1], b.w[2], mask],
                );
            }
        }
    }
    None
}

/// Single left-to-right greedy peephole pass over one tape's items.
fn fuse_pairs(items: Vec<Item>, stats: &mut LowerStats) -> Vec<Item> {
    let mut out: Vec<Item> = Vec::with_capacity(items.len());
    let mut i = 0;
    while i < items.len() {
        if i + 1 < items.len() {
            if let (Item::El(a), Item::El(b)) = (&items[i], &items[i + 1]) {
                if let Some(f) = try_fuse(a, b) {
                    stats.superinstructions += 1;
                    stats.fused_micros += 2;
                    out.push(Item::El(f));
                    i += 2;
                    continue;
                }
            }
        }
        out.push(items[i].clone());
        i += 1;
    }
    out
}

/// Collapses maximal same-kind runs into single kernel calls and emits
/// the packed operand stream plus the fire-barrier segment schedule.
fn emit_tape(items: &[Item], e: &mut Emit) -> Vec<Seg> {
    let mut segs: Vec<Seg> = Vec::new();
    let mut i = 0;
    while i < items.len() {
        match &items[i] {
            Item::Fire(inst) => {
                segs.push(Seg::Fire { inst: *inst });
                i += 1;
            }
            Item::El(first) => {
                let mut j = i + 1;
                while j < items.len() {
                    match &items[j] {
                        Item::El(el) if el.id == first.id => j += 1,
                        _ => break,
                    }
                }
                let ki = e.kernels.len() as u32;
                e.kernels.push(kernel_of(first.id));
                e.bases.push(e.ops.len() as u32);
                e.ops.push((j - i) as u64);
                let mut plain = 0u64;
                for item in &items[i..j] {
                    if let Item::El(el) = item {
                        e.ops.extend_from_slice(&el.w);
                        if el.micros == 1 {
                            plain += 1;
                        }
                    }
                }
                if j - i >= 2 {
                    e.stats.superinstructions += 1;
                    e.stats.fused_micros += plain;
                }
                match segs.last_mut() {
                    Some(Seg::Run { end, .. }) if *end == ki => *end = ki + 1,
                    _ => segs.push(Seg::Run {
                        start: ki,
                        end: ki + 1,
                    }),
                }
                i = j;
            }
        }
    }
    segs
}

/// Lowers one optimized [`Program`] into the direct-threaded form.
/// Pure and deterministic: the same `(sys, prog)` always produces the
/// same threaded code, so the program hash covers the lowered form.
pub(crate) fn lower_program(sys: &System, prog: &Program) -> Lowered {
    // Flat layout offsets for activation flags and register files.
    let mut active_off = Vec::with_capacity(sys.timed.len());
    let mut reg_off = Vec::with_capacity(sys.timed.len());
    let (mut a_total, mut r_total) = (0u32, 0u32);
    for t in &sys.timed {
        active_off.push(a_total);
        reg_off.push(r_total);
        a_total += t.comp.sfgs.len() as u32;
        r_total += t.comp.regs.len() as u32;
    }

    let mut e = Emit::default();
    let lower_one = |tape: &[Micro], e: &mut Emit| -> Vec<Seg> {
        let items: Vec<Item> = tape
            .iter()
            .map(|m| map_micro(m, &reg_off, &active_off, &mut e.casts))
            .collect();
        e.stats.micro_in += items.iter().filter(|i| matches!(i, Item::El(_))).count() as u64;
        let items = fuse_pairs(items, &mut e.stats);
        emit_tape(&items, e)
    };
    let pre_sched = lower_one(&prog.pre_tape, &mut e);
    let sched = lower_one(&prog.tape, &mut e);
    e.stats.kernels = e.kernels.len() as u64;
    e.stats.coverage_pct = (100 * e.stats.fused_micros)
        .checked_div(e.stats.micro_in)
        .unwrap_or(0);

    // Flatten the transition tables.
    let mut select = SelectPlan::default();
    for (i, tables) in prog.fsm_tables.iter().enumerate() {
        let a0 = active_off[i];
        let a1 = a0 + sys.timed[i].comp.sfgs.len() as u32;
        let rows_base = select.rows.len() as u32;
        for state in tables {
            let t0 = select.trans.len() as u32;
            for tr in state {
                let s0 = select.sfgs.len() as u32;
                select.sfgs.extend(tr.sfgs.iter().map(|sk| a0 + *sk));
                select.trans.push(FlatTrans {
                    guard: tr.guard_slot.map_or(u32::MAX, |g| g),
                    to: tr.to,
                    s0,
                    s1: select.sfgs.len() as u32,
                });
            }
            select.rows.push((t0, select.trans.len() as u32));
        }
        select.insts.push((a0, a1, rows_base, !tables.is_empty()));
    }

    // Flatten the register-commit schedule.
    let mut commit = CommitPlan::default();
    for w in &prog.reg_writes {
        let c0 = commit.cands.len() as u32;
        for (sfg, src) in &w.cands {
            commit
                .cands
                .push((active_off[w.inst as usize] + *sfg, *src));
        }
        commit.writes.push((
            reg_off[w.inst as usize] + w.reg,
            c0,
            commit.cands.len() as u32,
        ));
    }

    Lowered {
        init_slots: prog.init_slots.clone(),
        slot_ty: prog.slot_ty.clone(),
        net_slot: prog.net_slot.clone(),
        untimed_io: prog.untimed_io.clone(),
        opt_stats: prog.opt_stats,
        kernels: e.kernels,
        bases: e.bases,
        ops: e.ops,
        casts: e.casts,
        pre_sched,
        sched,
        select,
        commit,
        active_total: a_total,
        reg_off,
        reg_total: r_total,
        slot_bound: slot_bound_of(prog),
        stats: e.stats,
    }
}

impl Lowered {
    pub(crate) fn stats(&self) -> LowerStats {
        self.stats
    }

    pub(crate) fn tape_len(&self) -> usize {
        self.stats.micro_in as usize
    }
}

// ---------------------------------------------------------------------------
// FusedSim
// ---------------------------------------------------------------------------

/// The direct-threaded fused simulator.
///
/// Construct with [`FusedSim::new`] / [`FusedSim::new_with`] or from a
/// cached [`FusedTape`] via [`FusedSim::from_tape`]; drive through the
/// [`Simulator`] trait. Behaviour is bit-identical to
/// [`crate::CompiledSim`] built from the same system at the same
/// [`OptLevel`] — same outputs, nets, registers, trace rows and
/// [`FusedSim::design_hash`] — only the per-cycle execution strategy
/// differs.
pub struct FusedSim {
    sys: System,
    prog: Arc<Lowered>,
    slots: Vec<u64>,
    states: Vec<u32>,
    /// Flattened per-instance SFG activation flags (`prog.active_off`).
    active: Vec<bool>,
    /// Flattened per-instance register files (`prog.reg_off`). The
    /// snapshot "regs" section is exactly this array, byte-compatible
    /// with `CompiledSim`'s flattened nested files.
    regs: Vec<u64>,
    in_buf: Vec<Value>,
    out_buf: Vec<Value>,
    cycle: u64,
    trace: Option<Trace>,
    obs: Option<SimObs>,
    budget: Budget,
    design_hash: u64,
}

impl FusedSim {
    /// Compiles and lowers `sys` at the default [`OptLevel`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotCompilable`] when the conservative
    /// cross-component dependence graph is cyclic (same contract as
    /// [`crate::CompiledSim::new`]).
    pub fn new(sys: System) -> Result<FusedSim, CoreError> {
        FusedSim::new_with(sys, OptLevel::default())
    }

    /// Like [`FusedSim::new`] with an explicit optimization level for
    /// the source tape. The lowering itself runs after the optimizer
    /// and is identical at every level.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotCompilable`] when the conservative
    /// cross-component dependence graph is cyclic.
    pub fn new_with(sys: System, level: OptLevel) -> Result<FusedSim, CoreError> {
        let prog = build_program(&sys, level)?;
        let design_hash = crate::sim::snapshot::hash_program(&sys, &prog);
        let lowered = Arc::new(lower_program(&sys, &prog));
        Ok(FusedSim::from_parts(sys, lowered, design_hash))
    }

    /// Instantiates a simulator from a cached [`FusedTape`] without
    /// recompiling or re-lowering — the warm path of the simulation
    /// service's tape cache, mirroring
    /// [`crate::CompiledSim::from_tape`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TapeMismatch`] when `sys` is not
    /// structurally the system the tape was compiled from.
    pub fn from_tape(sys: System, tape: &FusedTape) -> Result<FusedSim, CoreError> {
        tape.compiled().check_system(&sys)?;
        Ok(FusedSim::from_parts(
            sys,
            tape.lowered(),
            tape.program_hash(),
        ))
    }

    pub(crate) fn from_parts(sys: System, prog: Arc<Lowered>, design_hash: u64) -> FusedSim {
        let states = init_states(&sys);
        let mut regs = Vec::with_capacity(prog.reg_total as usize);
        for t in &sys.timed {
            regs.extend(t.comp.regs.iter().map(|r| encode(&r.init)));
        }
        FusedSim {
            slots: prog.init_slots.clone(),
            states,
            active: vec![false; prog.active_total as usize],
            regs,
            in_buf: Vec::new(),
            out_buf: Vec::new(),
            cycle: 0,
            trace: None,
            obs: None,
            budget: Budget::none(),
            design_hash,
            prog,
            sys,
        }
    }

    /// Attaches watchdog limits ([`Budget`]); the settle-iteration
    /// limit does not apply — the threaded program is straight-line
    /// code.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The design hash keying this simulator's snapshots — identical
    /// to [`crate::CompiledSim::design_hash`] for the same system and
    /// level, because the lowered form is a pure function of the
    /// program the hash already covers.
    pub fn design_hash(&self) -> u64 {
        self.design_hash
    }

    /// The simulated system.
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Micro-ops lowered per cycle (tape + guard pre-tape), for
    /// apples-to-apples comparison with
    /// [`crate::CompiledSim::tape_len`].
    pub fn tape_len(&self) -> usize {
        self.prog.tape_len()
    }

    /// What the tape optimizer did at build time.
    pub fn opt_stats(&self) -> OptStats {
        self.prog.opt_stats
    }

    /// What the lowering pass did: kernel and superinstruction counts
    /// and fusion coverage, all deterministic.
    pub fn lower_stats(&self) -> LowerStats {
        self.prog.stats
    }

    /// Attaches an observability bundle (build with [`SimObs::fused`]).
    /// The lowering statistics are flushed into the bundle's
    /// `compiled.lower.*` counters at attach time, exactly like the
    /// optimizer counters at [`crate::CompiledSim::attach_obs`].
    pub fn attach_obs(&mut self, obs: SimObs) {
        if let Some(lc) = &obs.lower {
            lc.record(&self.prog.stats);
        }
        self.obs = Some(obs);
    }

    /// Captures the complete mutable simulation state as a
    /// [`SimSnapshot`]. The backend tag and section layout are
    /// [`SnapshotBackend::Compiled`]'s — a fused snapshot restores
    /// into a [`crate::CompiledSim`] of the same build and vice versa.
    pub fn snapshot(&self) -> SimSnapshot {
        let mut s = SimSnapshot::new(SnapshotBackend::Compiled, self.design_hash, self.cycle);
        s.push_section("slots", self.slots.clone());
        s.push_section(
            "states",
            self.states.iter().map(|x| u64::from(*x)).collect(),
        );
        s.push_section("regs", self.regs.clone());
        for (i, u) in self.sys.untimed.iter().enumerate() {
            let words = u.block.snapshot_state();
            if !words.is_empty() {
                s.push_section(&format!("untimed.{i}"), words);
            }
        }
        s
    }

    /// Restores state captured by [`FusedSim::snapshot`] or by
    /// [`crate::CompiledSim::snapshot`] (or a `BatchedSim` lane) of
    /// the same build.
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotMismatch`] when the snapshot was taken
    /// from a different design or optimization level, and
    /// [`CoreError::SnapshotFormat`] when it comes from a different
    /// back-end family or has damaged sections. On error the simulator
    /// state is unspecified; call [`FusedSim::reset`] before reuse.
    pub fn restore(&mut self, snap: &SimSnapshot) -> Result<(), CoreError> {
        snap.check(SnapshotBackend::Compiled, self.design_hash)?;
        let slot_words = snap.section_exact("slots", self.slots.len())?;
        let state_words = snap.section_exact("states", self.states.len())?;
        let reg_words = snap.section_exact("regs", self.regs.len())?;
        for (i, t) in self.sys.timed.iter().enumerate() {
            let idx = state_words[i];
            let n_states = t.comp.fsm.as_ref().map_or(1, |f| f.states.len() as u64);
            if idx >= n_states {
                return Err(CoreError::SnapshotFormat {
                    reason: format!("state selector {idx} out of range for `{}`", t.name),
                });
            }
        }
        self.slots.copy_from_slice(slot_words);
        for (st, idx) in self.states.iter_mut().zip(state_words) {
            *st = *idx as u32;
        }
        self.regs.copy_from_slice(reg_words);
        for (i, u) in self.sys.untimed.iter_mut().enumerate() {
            let words = snap.section(&format!("untimed.{i}")).unwrap_or(&[]);
            if !u.block.restore_state(words) {
                return Err(CoreError::SnapshotFormat {
                    reason: format!(
                        "untimed block `{}` rejected its state section",
                        u.block.name()
                    ),
                });
            }
        }
        self.cycle = snap.cycle();
        Ok(())
    }

    /// The current FSM state name of a timed instance.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] if the instance does not
    /// exist or has no FSM.
    pub fn state_name(&self, instance: &str) -> Result<&str, CoreError> {
        let (i, t) = self
            .sys
            .timed
            .iter()
            .enumerate()
            .find(|(_, t)| t.name == instance)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "instance",
                name: instance.to_owned(),
            })?;
        let fsm = t.comp.fsm.as_ref().ok_or_else(|| CoreError::UnknownName {
            kind: "fsm",
            name: instance.to_owned(),
        })?;
        Ok(&fsm.states[self.states[i] as usize])
    }

    /// Resets the simulation to power-up state.
    pub fn reset(&mut self) {
        self.slots.copy_from_slice(&self.prog.init_slots);
        let mut k = 0;
        for (i, t) in self.sys.timed.iter().enumerate() {
            for r in &t.comp.regs {
                self.regs[k] = encode(&r.init);
                k += 1;
            }
            self.states[i] = t.comp.fsm.as_ref().map_or(0, |f| f.initial.0);
        }
        for u in &mut self.sys.untimed {
            u.block.reset();
        }
        self.cycle = 0;
        if let Some(t) = &mut self.trace {
            *t = make_trace(&self.sys);
        }
    }

    /// Runs one segment schedule: kernel runs with fire barriers.
    fn run_sched(&mut self, pre: bool) {
        let p: &Lowered = &self.prog;
        let sched = if pre { &p.pre_sched } else { &p.sched };
        for seg in sched {
            match *seg {
                Seg::Run { start, end } => {
                    let mut ctx = Ctx {
                        slots: &mut self.slots,
                        regs: &self.regs,
                        active: &self.active,
                        ops: &p.ops,
                        casts: &p.casts,
                    };
                    // Slice once so the indirect-call loop itself is
                    // bounds-check free.
                    let ks = &p.kernels[start as usize..end as usize];
                    let bs = &p.bases[start as usize..end as usize];
                    for (k, &b) in ks.iter().zip(bs) {
                        k(&mut ctx, b as usize);
                    }
                }
                Seg::Fire { inst } => {
                    let u = inst as usize;
                    let s = &mut self.slots;
                    let (ins, outs) = &p.untimed_io[u];
                    self.in_buf.clear();
                    self.in_buf
                        .extend(ins.iter().map(|(sl, ty)| decode(s[*sl as usize], *ty)));
                    self.out_buf.clear();
                    self.out_buf
                        .extend(outs.iter().map(|(sl, ty)| decode(s[*sl as usize], *ty)));
                    let block = &mut self.sys.untimed[u].block;
                    if block.ready(&self.in_buf) {
                        block.fire(&self.in_buf, &mut self.out_buf);
                        for ((sl, _), v) in outs.iter().zip(&self.out_buf) {
                            s[*sl as usize] = encode(v);
                        }
                    }
                }
            }
        }
    }
}

impl Simulator for FusedSim {
    fn set_input(&mut self, name: &str, value: Value) -> Result<(), CoreError> {
        let pi = self
            .sys
            .primary_inputs
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "primary input",
                name: name.to_owned(),
            })?;
        value.check_type_with(pi.ty, || format!("primary input `{name}`"))?;
        self.slots[self.prog.net_slot[pi.net] as usize] = encode(&value);
        Ok(())
    }

    fn step(&mut self) -> Result<(), CoreError> {
        self.budget.check_cycle(self.cycle)?;
        // Up-front bounds proof, once per step (the `BatchedSim`
        // pattern): every slot index the threaded program references
        // is below `slot_bound`, every flat register / activation
        // index is in layout range.
        let p: &Lowered = &self.prog;
        assert!(
            p.slot_bound as usize <= self.slots.len()
                && self.regs.len() == p.reg_total as usize
                && self.active.len() == p.active_total as usize,
            "lowered program does not fit the simulator state arrays"
        );
        // The whole fused schedule — guards, transition select, tape
        // with fire barriers, register commit — is one `exec` phase.
        let t_eval = self.obs.as_ref().map(|o| o.sp_eval.timer());

        // Guard evaluation over held values.
        self.run_sched(true);

        // Transition selection over the flattened tables.
        let mut firings = 0u64;
        {
            // Disjoint field borrows: the plan is read-only while the
            // per-instance state and activation flags are written.
            let p: &Lowered = &self.prog;
            let slots = &self.slots;
            let states = &mut self.states;
            let active = &mut self.active;
            for (i, &(a0, a1, rows_base, has_fsm)) in p.select.insts.iter().enumerate() {
                if !has_fsm {
                    firings += (a1 - a0) as u64;
                    for a in &mut active[a0 as usize..a1 as usize] {
                        *a = true;
                    }
                    continue;
                }
                for a in &mut active[a0 as usize..a1 as usize] {
                    *a = false;
                }
                let (t0, t1) = p.select.rows[(rows_base + states[i]) as usize];
                for tr in &p.select.trans[t0 as usize..t1 as usize] {
                    if tr.guard == u32::MAX || slots[tr.guard as usize] != 0 {
                        states[i] = tr.to;
                        for &f in &p.select.sfgs[tr.s0 as usize..tr.s1 as usize] {
                            if !active[f as usize] {
                                firings += 1;
                                active[f as usize] = true;
                            }
                        }
                        break;
                    }
                }
            }
        }

        // Main tape with fire barriers.
        self.run_sched(false);

        // Register commit over the flat schedule.
        let mut reg_update_count = 0u64;
        {
            let p: &Lowered = &self.prog;
            for &(reg, c0, c1) in &p.commit.writes {
                for &(f, src) in &p.commit.cands[c0 as usize..c1 as usize] {
                    if self.active[f as usize] {
                        self.regs[reg as usize] = self.slots[src as usize];
                        reg_update_count += 1;
                        break;
                    }
                }
            }
        }
        drop(t_eval);

        self.cycle += 1;
        if let Some(trace) = &mut self.trace {
            let _t_trace = self.obs.as_ref().map(|o| o.sp_trace.timer());
            let row: Vec<Value> = self
                .sys
                .primary_inputs
                .iter()
                .map(|pi| {
                    let sl = self.prog.net_slot[pi.net] as usize;
                    decode(self.slots[sl], self.prog.slot_ty[sl])
                })
                .chain(self.sys.primary_outputs.iter().map(|po| {
                    let sl = self.prog.net_slot[po.net] as usize;
                    decode(self.slots[sl], self.prog.slot_ty[sl])
                }))
                .collect();
            trace.record_cycle(&row)?;
        }

        if let Some(o) = &self.obs {
            o.cycles.incr();
            o.sfg_firings.add(firings);
            o.reg_updates.add(reg_update_count);
        }
        Ok(())
    }

    fn output(&self, name: &str) -> Result<Value, CoreError> {
        self.sys
            .primary_outputs
            .iter()
            .find(|p| p.name == name)
            .map(|p| {
                let sl = self.prog.net_slot[p.net] as usize;
                decode(self.slots[sl], self.prog.slot_ty[sl])
            })
            .ok_or_else(|| CoreError::UnknownName {
                kind: "primary output",
                name: name.to_owned(),
            })
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(make_trace(&self.sys));
        }
    }

    fn trace(&self) -> &Trace {
        static EMPTY: std::sync::OnceLock<Trace> = std::sync::OnceLock::new();
        self.trace
            .as_ref()
            .unwrap_or_else(|| EMPTY.get_or_init(Trace::default))
    }

    fn peek_net(&self, name: &str) -> Result<Value, CoreError> {
        let i = self
            .sys
            .nets
            .iter()
            .position(|n| n.name == name)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "net",
                name: name.to_owned(),
            })?;
        let sl = self.prog.net_slot[i] as usize;
        Ok(decode(self.slots[sl], self.prog.slot_ty[sl]))
    }

    fn poke_net(&mut self, name: &str, value: Value) -> Result<(), CoreError> {
        let i = self
            .sys
            .nets
            .iter()
            .position(|n| n.name == name)
            .ok_or_else(|| CoreError::UnknownName {
                kind: "net",
                name: name.to_owned(),
            })?;
        value.check_type_with(self.sys.nets[i].ty, || format!("net `{name}`"))?;
        self.slots[self.prog.net_slot[i] as usize] = encode(&value);
        Ok(())
    }

    fn peek_reg(&self, instance: &str, reg: &str) -> Result<Value, CoreError> {
        let (i, j) = crate::sim::interp::find_reg(&self.sys, instance, reg)?;
        Ok(decode(
            self.regs[self.prog.reg_off[i] as usize + j],
            self.sys.timed[i].comp.regs[j].ty,
        ))
    }

    fn poke_reg(&mut self, instance: &str, reg: &str, value: Value) -> Result<(), CoreError> {
        let (i, j) = crate::sim::interp::find_reg(&self.sys, instance, reg)?;
        value.check_type(
            self.sys.timed[i].comp.regs[j].ty,
            &format!("register `{instance}.{reg}`"),
        )?;
        self.regs[self.prog.reg_off[i] as usize + j] = encode(&value);
        Ok(())
    }
}

/// Compiles, optimizes and lowers `sys` into a reusable [`FusedTape`].
/// Convenience wrapper around [`CompiledTape::compile`] +
/// [`FusedTape::from_compiled`].
///
/// # Errors
///
/// Propagates [`CoreError::NotCompilable`] from compilation.
pub fn compile_fused(sys: &System, level: OptLevel) -> Result<FusedTape, CoreError> {
    let tape = CompiledTape::compile(sys, level)?;
    FusedTape::from_compiled(sys, &tape)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_pair_system() -> System {
        use crate::comp::Component;
        let c = Component::build("c");
        let x = c.input("x", SigType::Bits(8)).unwrap();
        let y = c.input("y", SigType::Bits(8)).unwrap();
        let o = c.output("o", SigType::Bits(8)).unwrap();
        let p = c.output("p", SigType::Bool).unwrap();
        let s = c.sfg("s").unwrap();
        let sum = c.read(x) + c.read(y);
        s.drive(o, &sum).unwrap();
        let cmp = c.read(x).eq(&c.read(y));
        s.drive(p, &cmp).unwrap();
        let mut sb = System::build("sys");
        let u = sb.add_component("u0", c.finish().unwrap()).unwrap();
        sb.input("x", SigType::Bits(8)).unwrap();
        sb.input("y", SigType::Bits(8)).unwrap();
        sb.connect_input("x", u, "x").unwrap();
        sb.connect_input("y", u, "y").unwrap();
        sb.output("o", u, "o").unwrap();
        sb.output("p", u, "p").unwrap();
        sb.finish().unwrap()
    }

    #[test]
    fn lowering_is_deterministic() {
        let sys = bits_pair_system();
        let prog = build_program(&sys, OptLevel::Full).unwrap();
        let a = lower_program(&sys, &prog);
        let b = lower_program(&sys, &prog);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.bases, b.bases);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.slot_bound, b.slot_bound);
    }

    #[test]
    fn fused_matches_compiled_on_a_small_design() {
        use crate::sim::compiled::CompiledSim;
        let mut f = FusedSim::new(bits_pair_system()).unwrap();
        let mut c = CompiledSim::new(bits_pair_system()).unwrap();
        for i in 0..64u64 {
            for s in [&mut f as &mut dyn Simulator, &mut c] {
                s.set_input("x", Value::bits(8, i * 7 % 256)).unwrap();
                s.set_input("y", Value::bits(8, i * 13 % 256)).unwrap();
                s.step().unwrap();
            }
            assert_eq!(f.output("o").unwrap(), c.output("o").unwrap());
            assert_eq!(f.output("p").unwrap(), c.output("p").unwrap());
        }
        assert_eq!(f.design_hash(), c.design_hash());
    }

    #[test]
    fn peephole_fuses_cmp_select_pairs() {
        let items = vec![
            Item::El(El {
                id: KId::CmpU(Cmp::Lt),
                w: vec![5, 1, 2],
                micros: 1,
            }),
            Item::El(El {
                id: KId::Select,
                w: vec![6, 5, 3, 4],
                micros: 1,
            }),
        ];
        let mut stats = LowerStats::default();
        let fused = fuse_pairs(items, &mut stats);
        assert_eq!(fused.len(), 1);
        assert_eq!(stats.superinstructions, 1);
        assert_eq!(stats.fused_micros, 2);
        match &fused[0] {
            Item::El(el) => {
                assert_eq!(el.id, KId::CmpSelect(Cmp::Lt));
                assert_eq!(el.w, vec![5, 1, 2, 6, 3, 4]);
            }
            Item::Fire(_) => panic!("expected a fused element"),
        }
    }

    #[test]
    fn runs_collapse_into_one_kernel_call() {
        let mk = |d: u64| {
            Item::El(El {
                id: KId::Xor,
                w: vec![d, d + 1, d + 2],
                micros: 1,
            })
        };
        let mut e = Emit::default();
        let segs = emit_tape(&[mk(0), mk(4), mk(8)], &mut e);
        assert_eq!(e.kernels.len(), 1, "one indirect call for the whole run");
        assert_eq!(e.ops[0], 3, "run count");
        assert_eq!(e.stats.superinstructions, 1);
        assert_eq!(e.stats.fused_micros, 3);
        assert!(matches!(segs.as_slice(), [Seg::Run { start: 0, end: 1 }]));
    }

    #[test]
    fn engine_names_round_trip() {
        for e in [ExecEngine::Interp, ExecEngine::Compiled, ExecEngine::Fused] {
            assert_eq!(ExecEngine::parse(e.as_str()), Some(e));
        }
        assert_eq!(ExecEngine::parse("native"), None);
    }
}
