//! Mealy finite state machines coupled to signal flow graphs.
//!
//! The paper's Figure 4 shows the C++ description style:
//!
//! ```text
//! fsm f;
//! initial s0; state s1;
//! s0 << always    << sfg1 << s1;
//! s1 << cnd(eof)  << sfg2 << s1;
//! s1 << !cnd(eof) << sfg3 << s0;
//! ```
//!
//! The Rust builder reads almost identically:
//!
//! ```
//! # use ocapi::{Component, SigType};
//! # fn main() -> Result<(), ocapi::CoreError> {
//! let c = Component::build("demo");
//! let eof = c.input("eof", SigType::Bool)?;
//! let out = c.output("out", SigType::Bits(4))?;
//! let sfg1 = c.sfg("sfg1")?; sfg1.drive(out, &c.const_bits(4, 1))?;
//! let sfg2 = c.sfg("sfg2")?; sfg2.drive(out, &c.const_bits(4, 2))?;
//! let sfg3 = c.sfg("sfg3")?; sfg3.drive(out, &c.const_bits(4, 3))?;
//!
//! let eof_sig = c.read(eof);
//! let fsm = c.fsm()?;
//! let s0 = fsm.initial("s0")?;
//! let s1 = fsm.state("s1")?;
//! fsm.from(s0).always().run(sfg1.id()).to(s1)?;
//! fsm.from(s1).when(&eof_sig).run(sfg2.id()).to(s1)?;
//! fsm.from(s1).unless(&eof_sig).run(sfg3.id()).to(s0)?;
//! let comp = c.finish()?;
//! assert_eq!(comp.fsm.as_ref().map(|f| f.states.len()), Some(2));
//! # Ok(())
//! # }
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use crate::comp::{CompInner, ComponentBuilder, NodeId, SfgRef, Sig};
use crate::value::{SigType, UnOp};
use crate::CoreError;

/// Reference to a state of a component's FSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateRef(pub(crate) u32);

impl StateRef {
    /// Index into [`Fsm::states`].
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `StateRef` from an index into [`Fsm::states`] (for
    /// synthesis back-ends that rebuild or transform machines).
    pub fn from_index(index: usize) -> StateRef {
        StateRef(index as u32)
    }
}

/// A Mealy transition: when `guard` holds in state `from`, run the
/// `actions` SFGs this cycle and move to `to` at the clock edge.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Source state.
    pub from: StateRef,
    /// Guard expression node (`Bool`); `None` means "always". Guards are
    /// evaluated at the start of the cycle, reading register current
    /// values and the values the input nets held at the end of the
    /// previous cycle.
    pub guard: Option<NodeId>,
    /// The SFGs executed when the transition is taken.
    pub actions: Vec<SfgRef>,
    /// Destination state.
    pub to: StateRef,
}

/// A finished Mealy FSM. Transitions from a state are tried in declaration
/// order; if none matches the component idles (stays in its state, runs no
/// SFG).
#[derive(Debug, Clone, PartialEq)]
pub struct Fsm {
    /// State names, indexed by [`StateRef`].
    pub states: Vec<String>,
    /// The reset state.
    pub initial: StateRef,
    /// All transitions.
    pub transitions: Vec<Transition>,
}

impl Fsm {
    /// The transitions leaving a given state, in priority order.
    pub fn from_state(&self, s: StateRef) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter(move |t| t.from == s)
    }

    /// Looks up a state by name.
    pub fn state_by_name(&self, name: &str) -> Option<StateRef> {
        self.states
            .iter()
            .position(|s| s == name)
            .map(|i| StateRef(i as u32))
    }
}

/// Builder handle for a component's FSM.
pub struct FsmBuilder {
    inner: Rc<RefCell<CompInner>>,
}

impl ComponentBuilder {
    /// Starts describing the component's Mealy controller.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateName`] if the component already has
    /// an FSM.
    pub fn fsm(&self) -> Result<FsmBuilder, CoreError> {
        let mut inner = self.inner.borrow_mut();
        if inner.fsm.is_some() {
            return Err(CoreError::DuplicateName {
                kind: "fsm",
                name: inner.name.clone(),
            });
        }
        inner.fsm = Some(Fsm {
            states: Vec::new(),
            initial: StateRef(0),
            transitions: Vec::new(),
        });
        Ok(FsmBuilder {
            inner: Rc::clone(&self.inner),
        })
    }
}

/// Looks up the component's FSM, reporting a typed error instead of
/// panicking if it was never created (unreachable through the builder,
/// which only exists once `fsm()` succeeded).
fn fsm_mut<'a>(comp: &str, fsm: &'a mut Option<Fsm>) -> Result<&'a mut Fsm, CoreError> {
    fsm.as_mut().ok_or_else(|| CoreError::UnknownName {
        kind: "fsm",
        name: comp.to_owned(),
    })
}

impl FsmBuilder {
    /// Declares the initial (reset) state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateName`] on a state-name clash.
    pub fn initial(&self, name: &str) -> Result<StateRef, CoreError> {
        let s = self.state(name)?;
        let inner = &mut *self.inner.borrow_mut();
        let fsm = fsm_mut(&inner.name, &mut inner.fsm)?;
        fsm.initial = s;
        Ok(s)
    }

    /// Declares a state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateName`] on a state-name clash.
    pub fn state(&self, name: &str) -> Result<StateRef, CoreError> {
        let inner = &mut *self.inner.borrow_mut();
        let fsm = fsm_mut(&inner.name, &mut inner.fsm)?;
        if fsm.states.iter().any(|s| s == name) {
            return Err(CoreError::DuplicateName {
                kind: "fsm state",
                name: name.to_owned(),
            });
        }
        fsm.states.push(name.to_owned());
        Ok(StateRef(fsm.states.len() as u32 - 1))
    }

    /// Starts a transition out of `from`.
    pub fn from(&self, from: StateRef) -> TransitionBuilder {
        TransitionBuilder {
            inner: Rc::clone(&self.inner),
            from,
            guard: None,
            actions: Vec::new(),
        }
    }
}

/// Builder for a single transition; finish with
/// [`TransitionBuilder::to`].
#[must_use = "a transition is only added when `.to(state)` is called"]
pub struct TransitionBuilder {
    inner: Rc<RefCell<CompInner>>,
    from: StateRef,
    guard: Option<NodeId>,
    actions: Vec<SfgRef>,
}

impl TransitionBuilder {
    /// Guards the transition with a `Bool` signal.
    ///
    /// # Panics
    ///
    /// Panics if the signal is not `Bool` or belongs to another component.
    pub fn when(mut self, cond: &Sig) -> TransitionBuilder {
        assert!(
            Rc::ptr_eq(&self.inner, &cond.inner),
            "guard signal belongs to a different component"
        );
        assert_eq!(
            cond.sig_type(),
            SigType::Bool,
            "transition guard must be bool"
        );
        self.guard = Some(cond.node_id());
        self
    }

    /// Guards the transition with the negation of a `Bool` signal
    /// (the paper's `!cnd(...)`).
    ///
    /// # Panics
    ///
    /// Panics if the signal is not `Bool` or belongs to another component.
    pub fn unless(self, cond: &Sig) -> TransitionBuilder {
        let neg = cond.un(UnOp::Not);
        self.when(&neg)
    }

    /// Makes the transition unconditional (the paper's `always`). This is
    /// the default; the method exists for readability.
    pub fn always(mut self) -> TransitionBuilder {
        self.guard = None;
        self
    }

    /// Adds an SFG to execute when the transition is taken. May be called
    /// several times.
    pub fn run(mut self, sfg: SfgRef) -> TransitionBuilder {
        self.actions.push(sfg);
        self
    }

    /// Sets the destination state and commits the transition.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownName`] if a referenced SFG does not
    /// exist (cannot normally happen when using [`SfgRef`]s from the same
    /// builder).
    pub fn to(self, to: StateRef) -> Result<(), CoreError> {
        let inner = &mut *self.inner.borrow_mut();
        let n_sfgs = inner.sfgs.len() as u32;
        for a in &self.actions {
            if a.0 >= n_sfgs {
                return Err(CoreError::UnknownName {
                    kind: "sfg",
                    name: format!("#{}", a.0),
                });
            }
        }
        let fsm = fsm_mut(&inner.name, &mut inner.fsm)?;
        fsm.transitions.push(Transition {
            from: self.from,
            guard: self.guard,
            actions: self.actions,
            to,
        });
        Ok(())
    }
}
