#![warn(missing_docs)]

//! An embedded hardware description environment, reproducing the DAC 1998
//! paper *"A Programming Environment for the Design of Complex High Speed
//! ASICs"* (Schaumont, Vernalde, Rijnders, Engels, Bolsens — IMEC).
//!
//! The original system captured digital hardware as C++ objects and used a
//! single in-memory data structure for simulation, HDL generation and
//! synthesis. This crate provides the same capture model in Rust:
//!
//! * **Signals and signal flow graphs** ([`Sig`], [`Sfg`]): operator
//!   overloading on signal handles appends nodes to a per-component
//!   expression graph — the host-language parser is reused to build the
//!   SFG, exactly like the paper's Figure 3. Registered signals
//!   ([`Reg`]) carry a current and a next value. Semantic checks flag
//!   dangling inputs and dead code.
//! * **Finite state machines** ([`Fsm`]): a compact Mealy-FSM builder in
//!   the style of the paper's Figure 4 selects which SFGs execute each
//!   clock cycle.
//! * **Untimed blocks** ([`UntimedBlock`]): high-level models with
//!   data-flow firing rules, freely mixed with cycle-true components.
//! * **Schedulers**: the three-phase *cycle scheduler* (token production,
//!   evaluation, register update — §4) embodied by [`InterpSim`], and a
//!   *data-flow scheduler* ([`dataflow::DataflowGraph`]) for untimed-only
//!   systems, including SDF repetition vectors and static schedules.
//! * **Two simulation back-ends** (§5): the interpreted [`InterpSim`]
//!   walks the data structure; the compiled [`CompiledSim`] levelizes the
//!   whole system into a flat evaluation tape.
//!
//! # Example: the paper's Figure 4 FSM
//!
//! ```
//! use ocapi::{Component, SigType, System, Value, InterpSim, Simulator};
//!
//! # fn main() -> Result<(), ocapi::CoreError> {
//! let c = Component::build("fig4");
//! let eof = c.input("eof", SigType::Bool)?;
//! let out = c.output("phase", SigType::Bits(2))?;
//! let sfg1 = c.sfg("sfg1")?; sfg1.drive(out, &c.const_bits(2, 1))?;
//! let sfg2 = c.sfg("sfg2")?; sfg2.drive(out, &c.const_bits(2, 2))?;
//! let sfg3 = c.sfg("sfg3")?; sfg3.drive(out, &c.const_bits(2, 3))?;
//! let eof_s = c.read(eof);
//! let f = c.fsm()?;
//! let s0 = f.initial("s0")?;
//! let s1 = f.state("s1")?;
//! f.from(s0).always().run(sfg1.id()).to(s1)?;
//! f.from(s1).when(&eof_s).run(sfg2.id()).to(s1)?;
//! f.from(s1).unless(&eof_s).run(sfg3.id()).to(s0)?;
//!
//! let mut sb = System::build("demo");
//! let u = sb.add_component("u0", c.finish()?)?;
//! sb.input("eof", SigType::Bool)?;
//! sb.connect_input("eof", u, "eof")?;
//! sb.output("phase", u, "phase")?;
//! let mut sim = InterpSim::new(sb.finish()?)?;
//!
//! sim.set_input("eof", Value::Bool(false))?;
//! sim.step()?; // s0 -> s1 running sfg1
//! assert_eq!(sim.output("phase")?, Value::bits(2, 1));
//! sim.step()?; // !eof: s1 -> s0 running sfg3
//! assert_eq!(sim.output("phase")?, Value::bits(2, 3));
//! # Ok(())
//! # }
//! ```

mod blocks;
mod comp;
pub mod dataflow;
mod error;
mod fsm;
pub mod rng;
pub mod sim;
mod system;
mod trace;
mod value;

pub use blocks::{FnBlock, MemorySpec, Ram, Rom, UntimedBlock};
pub use comp::{
    Component, ComponentBuilder, Diagnostic, DiagnosticKind, InPort, Node, NodeId, NodeKind,
    OutPort, PortDecl, Reg, RegDecl, Sfg, SfgBuilder, SfgRef, Sig,
};
pub use error::CoreError;
pub use fsm::{Fsm, FsmBuilder, StateRef, Transition, TransitionBuilder};
pub use sim::budget::{Budget, BudgetKind};
pub use sim::chaos::{ChaosEvent, ChaosKind, ChaosPlan};
pub use sim::fault::{
    apply_plan_lane, run_campaign, run_campaign_batched, run_campaign_batched_par,
    run_campaign_cached_par, run_campaign_par, CampaignReport, FaultEvent, FaultKind, FaultOutcome,
    FaultPlan, FaultSite, FaultySim,
};
pub use sim::hash::{hash_compiled, hash_system, CompiledTape, FusedTape};
pub use sim::lower::{ExecEngine, FusedSim, LowerStats};
pub use sim::obs::{BatchObs, SimObs};
pub use sim::par::{map_indexed_retry, ParConfig, ParError, PoolStats, RetryStats, Stopwatch};
pub use sim::snapshot::{SimSnapshot, SnapshotBackend};
pub use sim::{BatchedSim, CompiledSim, InterpSim, OptLevel, OptStats, Simulator};
pub use system::{
    InstanceId, Net, NetSink, NetSource, PrimaryInput, PrimaryOutput, System, SystemBuilder,
    TimedInstance, UntimedInstance,
};
pub use trace::{Trace, TraceSignal};
pub use value::{BinOp, SigType, UnOp, Value};

// Re-export the fixed-point types commonly needed alongside `SigType::Fixed`.
pub use ocapi_fixp::{Fix, Format, Overflow, Rounding};
