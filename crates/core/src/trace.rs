//! Cycle-accurate signal traces.
//!
//! Both simulators can record the primary inputs and outputs of every
//! cycle. The recorded [`Trace`] is what the code generator turns into a
//! verification testbench (§5/§6 of the paper: "during system simulation,
//! the system stimuli are also translated into test-benches"), and it can
//! be dumped as a VCD file for waveform viewing.

use std::fmt::Write as _;

use crate::value::{SigType, Value};
use crate::CoreError;

/// One recorded signal: name, type and per-cycle values.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSignal {
    /// Signal name.
    pub name: String,
    /// Signal type.
    pub ty: SigType,
    /// Whether this is an input (stimulus) or output (expected response).
    pub is_input: bool,
    /// One value per recorded cycle.
    pub values: Vec<Value>,
}

/// A recorded simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// The recorded signals.
    pub signals: Vec<TraceSignal>,
}

impl Trace {
    /// Creates an empty trace with the given signal declarations.
    pub fn new(signals: impl IntoIterator<Item = (String, SigType, bool)>) -> Trace {
        Trace {
            signals: signals
                .into_iter()
                .map(|(name, ty, is_input)| TraceSignal {
                    name,
                    ty,
                    is_input,
                    values: Vec::new(),
                })
                .collect(),
        }
    }

    /// Appends one cycle of values (same order as the declarations).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TraceShape`] — recording nothing — when
    /// `values` has a different length than the declared signals, so a
    /// malformed row can never tear the trace (partial columns).
    pub fn record_cycle(&mut self, values: &[Value]) -> Result<(), CoreError> {
        if values.len() != self.signals.len() {
            return Err(CoreError::TraceShape {
                expected: self.signals.len(),
                got: values.len(),
            });
        }
        for (s, v) in self.signals.iter_mut().zip(values) {
            s.values.push(*v);
        }
        Ok(())
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.signals.first().map_or(0, |s| s.values.len())
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a recorded signal by name.
    pub fn signal(&self, name: &str) -> Option<&TraceSignal> {
        self.signals.iter().find(|s| s.name == name)
    }

    /// Renders the trace as a Value Change Dump (VCD) file with a 10 ns
    /// clock period.
    pub fn to_vcd(&self) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1ns $end\n$scope module trace $end\n");
        let ids: Vec<String> = (0..self.signals.len()).map(|i| format!("s{i}")).collect();
        for (s, id) in self.signals.iter().zip(&ids) {
            let width = s.ty.width();
            let _ = writeln!(out, "$var wire {width} {id} {} $end", s.name);
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        for cycle in 0..self.len() {
            let _ = writeln!(out, "#{}", cycle * 10);
            for (s, id) in self.signals.iter().zip(&ids) {
                let v = s.values[cycle];
                if cycle > 0 && s.values[cycle - 1] == v {
                    continue;
                }
                match v {
                    Value::Bool(b) => {
                        let _ = writeln!(out, "{}{id}", if b { 1 } else { 0 });
                    }
                    Value::Bits { width, bits } => {
                        let _ = writeln!(out, "b{:0w$b} {id}", bits, w = width as usize);
                    }
                    Value::Fixed(f) => {
                        let w = f.format().wl() as usize;
                        let m = f.mantissa();
                        let masked = (m as u64) & (u64::MAX >> (64 - w.max(1)));
                        let _ = writeln!(out, "b{masked:0w$b} {id}");
                    }
                    Value::Float(x) => {
                        let _ = writeln!(out, "r{x} {id}");
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut t = Trace::new([
            ("a".to_owned(), SigType::Bool, true),
            ("y".to_owned(), SigType::Bits(4), false),
        ]);
        t.record_cycle(&[Value::Bool(true), Value::bits(4, 3)])
            .unwrap();
        t.record_cycle(&[Value::Bool(false), Value::bits(4, 9)])
            .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.signal("y").map(|s| s.values[1]), Some(Value::bits(4, 9)));
        assert!(t.signal("nope").is_none());
    }

    #[test]
    fn wrong_width_row_is_rejected_whole() {
        let mut t = Trace::new([
            ("a".to_owned(), SigType::Bool, true),
            ("y".to_owned(), SigType::Bits(4), false),
        ]);
        let err = t.record_cycle(&[Value::Bool(true)]).unwrap_err();
        assert_eq!(
            err,
            CoreError::TraceShape {
                expected: 2,
                got: 1
            }
        );
        // The malformed row recorded nothing: no partial columns.
        assert!(t.is_empty());
        t.record_cycle(&[Value::Bool(true), Value::bits(4, 1)])
            .unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn vcd_has_headers_and_changes() {
        let mut t = Trace::new([("a".to_owned(), SigType::Bool, true)]);
        t.record_cycle(&[Value::Bool(true)]).unwrap();
        t.record_cycle(&[Value::Bool(true)]).unwrap(); // no change: no dump line
        t.record_cycle(&[Value::Bool(false)]).unwrap();
        let vcd = t.to_vcd();
        assert!(vcd.contains("$var wire 1 s0 a $end"));
        assert!(vcd.contains("#0\n1s0"));
        assert!(vcd.contains("#20\n0s0"));
        assert!(!vcd.contains("#10\n1s0"));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
