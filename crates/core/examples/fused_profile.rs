//! Quick engine-only throughput probe: compiled vs fused on HCOR,
//! long steady-state run so per-cycle costs dominate setup noise.
//!
//! `cargo run --release -p ocapi --example fused_profile`

use ocapi::{CompiledSim, FusedSim, OptLevel, Simulator, Value};
use ocapi_designs::hcor;
use std::time::Instant;

fn drive(sim: &mut dyn Simulator, n: u64) -> f64 {
    sim.set_input("enable", Value::Bool(true)).unwrap();
    sim.set_input("threshold", Value::bits(5, 17)).unwrap();
    let t = Instant::now();
    for i in 0..n {
        sim.set_input("bit_in", Value::Bool(i % 3 == 0)).unwrap();
        sim.step().unwrap();
    }
    let secs = t.elapsed().as_secs_f64();
    n as f64 / secs
}

fn main() {
    let n = 2_000_000;
    for _ in 0..3 {
        let mut c = CompiledSim::new_with(hcor::build_system().unwrap(), OptLevel::Full).unwrap();
        let cs = drive(&mut c, n);
        let mut f = FusedSim::new_with(hcor::build_system().unwrap(), OptLevel::Full).unwrap();
        let fs = drive(&mut f, n);
        println!(
            "compiled {:.2} Mcyc/s ({:.1} ns)  fused {:.2} Mcyc/s ({:.1} ns)  ratio {:.2}",
            cs / 1e6,
            1e9 / cs,
            fs / 1e6,
            1e9 / fs,
            fs / cs
        );
    }
}
