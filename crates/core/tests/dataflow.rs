//! Tests for the data-flow scheduler and SDF static scheduling.

use ocapi::dataflow::{Actor, ActorId, DataflowGraph, FnActor, Sink, Source};
use ocapi::{CoreError, Value};

fn b8(v: u64) -> Value {
    Value::bits(8, v)
}

#[test]
fn pipeline_runs_to_completion() {
    let mut g = DataflowGraph::new();
    let src = g.add(Box::new(Source::new("src", (1..=5).map(b8))));
    let inc = g.add(Box::new(FnActor::new("inc", 1, 1, |i, o| {
        o.push(b8(i[0].as_bits().unwrap() + 1))
    })));
    let sink = g.add(Box::new(Sink::new("sink")));
    g.connect(src, 0, inc, 0, &[]).unwrap();
    g.connect(inc, 0, sink, 0, &[]).unwrap();
    let fired = g.run(1000).unwrap();
    assert_eq!(fired, 15); // 5 source + 5 inc + 5 sink
    assert_eq!(g.actor(sink).name(), "sink");
    assert_eq!(g.queued_tokens(), 0);
}

#[test]
fn sink_collects_transformed_tokens() {
    let mut g = DataflowGraph::new();
    let src = g.add(Box::new(Source::new("src", (0..4).map(b8))));
    let dbl = g.add(Box::new(FnActor::new("dbl", 1, 1, |i, o| {
        o.push(b8(i[0].as_bits().unwrap() * 2))
    })));
    let sink = g.add(Box::new(Sink::new("sink")));
    g.connect(src, 0, dbl, 0, &[]).unwrap();
    g.connect(dbl, 0, sink, 0, &[]).unwrap();
    g.run(1000).unwrap();
    // Downcast via the collected data living in the graph: read through
    // the Actor trait is not possible, so re-check by counting firings.
    let dbl_fires = g
        .firings()
        .iter()
        .filter(|(a, _)| *a == dbl_index(dbl))
        .count();
    assert_eq!(dbl_fires, 4);
}

// ActorId is opaque; tests that need indices use the order of insertion.
fn dbl_index(_id: ActorId) -> usize {
    1
}

#[test]
fn cycle_without_initial_tokens_deadlocks() {
    let mut g = DataflowGraph::new();
    let a = g.add(Box::new(FnActor::new("a", 1, 1, |i, o| o.push(i[0]))));
    let b = g.add(Box::new(FnActor::new("b", 1, 1, |i, o| o.push(i[0]))));
    g.connect(a, 0, b, 0, &[]).unwrap();
    g.connect(b, 0, a, 0, &[]).unwrap();
    // No tokens anywhere: run simply fires nothing (not a deadlock — no
    // work pending).
    assert_eq!(g.run(100).unwrap(), 0);
}

#[test]
fn cycle_with_initial_token_runs() {
    let mut g = DataflowGraph::new();
    let a = g.add(Box::new(FnActor::new("a", 1, 1, |i, o| {
        o.push(b8(i[0].as_bits().unwrap() + 1))
    })));
    let b = g.add(Box::new(FnActor::new("b", 1, 1, |i, o| o.push(i[0]))));
    g.connect(a, 0, b, 0, &[]).unwrap();
    g.connect(b, 0, a, 0, &[b8(0)]).unwrap(); // initial token breaks the cycle
    let fired = g.run(10).unwrap();
    assert_eq!(fired, 10);
    assert_eq!(g.queued_tokens(), 1); // the token keeps circulating
}

#[test]
fn repetition_vector_multirate() {
    // src (produces 2) -> ds (consumes 3, produces 1) -> sink (consumes 1)
    struct Multi;
    impl Actor for Multi {
        fn name(&self) -> &str {
            "ds"
        }
        fn num_inputs(&self) -> usize {
            1
        }
        fn num_outputs(&self) -> usize {
            1
        }
        fn consumption(&self, _p: usize) -> usize {
            3
        }
        fn fire(&mut self, inputs: &[Vec<Value>], outputs: &mut [Vec<Value>]) {
            outputs[0].push(inputs[0][0]);
        }
    }
    struct Src2;
    impl Actor for Src2 {
        fn name(&self) -> &str {
            "src2"
        }
        fn num_inputs(&self) -> usize {
            0
        }
        fn num_outputs(&self) -> usize {
            1
        }
        fn production(&self, _p: usize) -> usize {
            2
        }
        fn fire(&mut self, _i: &[Vec<Value>], outputs: &mut [Vec<Value>]) {
            outputs[0].push(b8(1));
            outputs[0].push(b8(2));
        }
    }
    let mut g = DataflowGraph::new();
    let s = g.add(Box::new(Src2));
    let m = g.add(Box::new(Multi));
    let k = g.add(Box::new(Sink::new("sink")));
    g.connect(s, 0, m, 0, &[]).unwrap();
    g.connect(m, 0, k, 0, &[]).unwrap();
    // Balance: 2*q(src) = 3*q(ds); q(ds) = q(sink) => q = [3, 2, 2]
    assert_eq!(g.repetition_vector().unwrap(), vec![3, 2, 2]);
    let sched = g.static_schedule().unwrap();
    assert_eq!(sched.len(), 7);
}

#[test]
fn inconsistent_rates_detected() {
    // a -> b with rate 2:1 on one edge and 1:1 on a parallel edge.
    struct Prod2;
    impl Actor for Prod2 {
        fn name(&self) -> &str {
            "p2"
        }
        fn num_inputs(&self) -> usize {
            0
        }
        fn num_outputs(&self) -> usize {
            2
        }
        fn production(&self, p: usize) -> usize {
            if p == 0 {
                2
            } else {
                1
            }
        }
        fn fire(&mut self, _i: &[Vec<Value>], o: &mut [Vec<Value>]) {
            o[0].push(b8(0));
            o[0].push(b8(0));
            o[1].push(b8(0));
        }
    }
    struct Cons11;
    impl Actor for Cons11 {
        fn name(&self) -> &str {
            "c11"
        }
        fn num_inputs(&self) -> usize {
            2
        }
        fn num_outputs(&self) -> usize {
            0
        }
        fn fire(&mut self, _i: &[Vec<Value>], _o: &mut [Vec<Value>]) {}
    }
    let mut g = DataflowGraph::new();
    let a = g.add(Box::new(Prod2));
    let b = g.add(Box::new(Cons11));
    g.connect(a, 0, b, 0, &[]).unwrap();
    g.connect(a, 1, b, 1, &[]).unwrap();
    assert!(matches!(
        g.repetition_vector(),
        Err(CoreError::InconsistentRates { .. })
    ));
}

#[test]
fn static_schedule_deadlock_on_tokenless_cycle() {
    let mut g = DataflowGraph::new();
    let a = g.add(Box::new(FnActor::new("a", 1, 1, |i, o| o.push(i[0]))));
    let b = g.add(Box::new(FnActor::new("b", 1, 1, |i, o| o.push(i[0]))));
    g.connect(a, 0, b, 0, &[]).unwrap();
    g.connect(b, 0, a, 0, &[]).unwrap();
    assert!(matches!(
        g.static_schedule(),
        Err(CoreError::DataflowDeadlock { .. })
    ));
}

#[test]
fn bad_port_rejected() {
    let mut g = DataflowGraph::new();
    let a = g.add(Box::new(Source::new("s", [b8(1)])));
    let b = g.add(Box::new(Sink::new("k")));
    assert!(g.connect(a, 1, b, 0, &[]).is_err());
    assert!(g.connect(a, 0, b, 7, &[]).is_err());
}

#[test]
fn max_firings_budget_respected() {
    let mut g = DataflowGraph::new();
    let a = g.add(Box::new(FnActor::new("a", 1, 1, |i, o| o.push(i[0]))));
    g.connect(a, 0, a, 0, &[b8(1)]).unwrap(); // self loop, runs forever
    assert_eq!(g.run(25).unwrap(), 25);
}

#[test]
fn variable_rate_actor_runs_dynamically() {
    // A run-length expander: each input token k produces k copies —
    // variable-rate behaviour the dynamic scheduler handles but static
    // SDF analysis cannot capture (the declared rates become wrong).
    struct Expander;
    impl Actor for Expander {
        fn name(&self) -> &str {
            "expander"
        }
        fn num_inputs(&self) -> usize {
            1
        }
        fn num_outputs(&self) -> usize {
            1
        }
        fn fire(&mut self, inputs: &[Vec<Value>], outputs: &mut [Vec<Value>]) {
            let k = inputs[0][0].as_bits().unwrap();
            for _ in 0..k {
                outputs[0].push(inputs[0][0]);
            }
        }
    }
    let mut g = DataflowGraph::new();
    let src = g.add(Box::new(Source::new("src", [b8(3), b8(0), b8(2)])));
    let ex = g.add(Box::new(Expander));
    let sink = Sink::new("sink");
    let handle = sink.handle();
    let k = g.add(Box::new(sink));
    g.connect(src, 0, ex, 0, &[]).unwrap();
    g.connect(ex, 0, k, 0, &[]).unwrap();
    g.run(1000).unwrap();
    // 3 + 0 + 2 = 5 expanded tokens.
    assert_eq!(handle.len(), 5);
    assert_eq!(handle.tokens()[0], b8(3));
    assert_eq!(handle.tokens()[4], b8(2));
}

#[test]
fn sink_handle_reads_after_move() {
    let mut g = DataflowGraph::new();
    let src = g.add(Box::new(Source::new("s", (0..4).map(b8))));
    let sink = Sink::new("k");
    let handle = sink.handle();
    let k = g.add(Box::new(sink));
    g.connect(src, 0, k, 0, &[]).unwrap();
    assert!(handle.is_empty());
    g.run(100).unwrap();
    assert_eq!(handle.tokens(), vec![b8(0), b8(1), b8(2), b8(3)]);
}
