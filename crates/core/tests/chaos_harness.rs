//! Chaos-harness integration tests: deterministic failure injection
//! ([`ChaosPlan`]) driven through the retrying worker pool and real
//! simulator workloads. These prove the robustness claims end to end —
//! a panicked attempt is contained and retried, an injected budget kill
//! is classified at the lowest failing index for every thread count,
//! and watchdog budgets trip at the same cycle on every back-end.

use ocapi::sim::par::map_indexed_retry;
use ocapi::{
    BatchedSim, Budget, BudgetKind, ChaosKind, ChaosPlan, CompiledSim, Component, CoreError,
    InterpSim, OptLevel, ParConfig, ParError, SigType, Simulator, System, Value,
};

/// A small real workload for pool items: run the accumulator system for
/// a few cycles with a seed-dependent stimulus and return the sum.
fn accumulator() -> Component {
    let c = Component::build("acc");
    let x = c.input("x", SigType::Bits(8)).unwrap();
    let stop = c.input("stop", SigType::Bool).unwrap();
    let sum_out = c.output("sum", SigType::Bits(8)).unwrap();
    let acc = c.reg("acc", SigType::Bits(8)).unwrap();

    let add = c.sfg("add").unwrap();
    let q = c.q(acc);
    let next = &q + &c.read(x);
    add.drive(sum_out, &q).unwrap();
    add.next(acc, &next).unwrap();

    let hold = c.sfg("hold").unwrap();
    hold.drive(sum_out, &c.q(acc)).unwrap();

    let stop_s = c.read(stop);
    let f = c.fsm().unwrap();
    let run = f.initial("run").unwrap();
    let frozen = f.state("frozen").unwrap();
    f.from(run).when(&stop_s).run(hold.id()).to(frozen).unwrap();
    f.from(run).always().run(add.id()).to(run).unwrap();
    f.from(frozen).always().run(hold.id()).to(frozen).unwrap();
    c.finish().unwrap()
}

fn acc_system() -> System {
    let mut sb = System::build("acc_sys");
    let u = sb.add_component("u0", accumulator()).unwrap();
    sb.input("x", SigType::Bits(8)).unwrap();
    sb.input("stop", SigType::Bool).unwrap();
    sb.connect_input("x", u, "x").unwrap();
    sb.connect_input("stop", u, "stop").unwrap();
    sb.output("sum", u, "sum").unwrap();
    sb.finish().unwrap()
}

/// Runs the accumulator for 5 cycles seeded by `seed` and returns the
/// final output word.
fn simulate_item(seed: u64) -> Result<u64, CoreError> {
    let mut sim = CompiledSim::new(acc_system())?;
    sim.set_input("stop", Value::Bool(false))?;
    for i in 0..5 {
        sim.set_input("x", Value::bits(8, (seed * 7 + i) % 256))?;
        sim.step()?;
    }
    let out = sim.output("sum")?;
    out.as_bits().ok_or_else(|| CoreError::CheckFailed {
        diagnostics: vec![format!("unexpected output {out:?}")],
    })
}

#[test]
fn chaos_panic_is_contained_and_retry_recovers() {
    let items: Vec<u64> = (0..8).collect();
    let clean: Vec<u64> = items.iter().map(|s| simulate_item(*s).unwrap()).collect();

    for threads in [1, 4] {
        let pool = ParConfig::new(threads);
        // First attempt of item 3 panics, first attempt of item 6 is
        // killed by a synthetic budget trip; their retries run clean.
        let plan = ChaosPlan::new(vec![
            (3, 0, ChaosKind::Panic).into(),
            (6, 0, ChaosKind::BudgetKill).into(),
        ]);
        let (result, stats) = map_indexed_retry(&pool, &items, 2, |i, seed| {
            plan.strike(i)?;
            simulate_item(*seed)
        });
        let got = result.unwrap_or_else(|e| panic!("threads={threads}: {e:?}"));
        assert_eq!(got, clean, "threads={threads}");
        assert_eq!(stats.retries, 2, "threads={threads}");
        assert_eq!(stats.recovered, 2, "threads={threads}");
        assert_eq!(plan.attempts(3), 2);
        assert_eq!(plan.attempts(6), 2);
        assert_eq!(plan.attempts(0), 1);
    }
}

#[test]
fn chaos_exhausted_retries_fail_at_lowest_index_for_any_thread_count() {
    let items: Vec<u64> = (0..16).collect();
    for threads in [1, 2, 4, 8] {
        let pool = ParConfig::new(threads);
        // Items 5 and 11 fail on *every* allowed attempt; the reported
        // casualty must be the lowest index, whatever the interleaving.
        let plan = ChaosPlan::new(vec![
            (5, 0, ChaosKind::BudgetKill).into(),
            (5, 1, ChaosKind::BudgetKill).into(),
            (11, 0, ChaosKind::BudgetKill).into(),
            (11, 1, ChaosKind::BudgetKill).into(),
        ]);
        let (result, stats) = map_indexed_retry(&pool, &items, 2, |i, seed| {
            plan.strike(i)?;
            simulate_item(*seed)
        });
        match result {
            Err(ParError::Task { index, error }) => {
                assert_eq!(index, 5, "threads={threads}");
                assert!(
                    matches!(
                        error,
                        CoreError::BudgetExceeded {
                            kind: BudgetKind::WallClock,
                            ..
                        }
                    ),
                    "threads={threads}: {error:?}"
                );
            }
            other => panic!("threads={threads}: expected Task error, got {other:?}"),
        }
        // Both doomed items burned their retry budget.
        assert!(stats.retries >= 2, "threads={threads}: {stats:?}");
        assert_eq!(stats.recovered, 0, "threads={threads}");
    }
}

#[test]
fn chaos_delay_changes_timing_but_not_results() {
    let items: Vec<u64> = (0..6).collect();
    let clean: Vec<u64> = items.iter().map(|s| simulate_item(*s).unwrap()).collect();
    for threads in [1, 4] {
        let pool = ParConfig::new(threads);
        // Stragglers on two items: same answer, just later.
        let plan = ChaosPlan::new(vec![
            (0, 0, ChaosKind::Delay(10)).into(),
            (4, 0, ChaosKind::Delay(5)).into(),
        ]);
        let (result, stats) = map_indexed_retry(&pool, &items, 1, |i, seed| {
            plan.strike(i)?;
            simulate_item(*seed)
        });
        assert_eq!(result.unwrap(), clean, "threads={threads}");
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.recovered, 0);
    }
}

/// Drives `sim` until its budget trips, returning the error.
fn run_to_budget(sim: &mut dyn Simulator) -> CoreError {
    sim.set_input("stop", Value::Bool(false)).unwrap();
    for i in 0..100u64 {
        sim.set_input("x", Value::bits(8, i % 256)).unwrap();
        if let Err(e) = sim.step() {
            return e;
        }
    }
    panic!("budget never tripped");
}

#[test]
fn cycle_budget_trips_at_the_same_cycle_on_every_backend() {
    const LIMIT: u64 = 5;
    let budget = Budget::none().with_max_cycles(LIMIT);

    let mut trips: Vec<(String, u64)> = Vec::new();

    let mut interp = InterpSim::new(acc_system()).unwrap();
    interp.set_budget(budget);
    match run_to_budget(&mut interp) {
        CoreError::BudgetExceeded {
            kind: BudgetKind::Cycles,
            at_cycle,
        } => trips.push(("interp".into(), at_cycle)),
        other => panic!("interp: {other:?}"),
    }
    assert_eq!(interp.cycle(), LIMIT); // completed exactly LIMIT cycles

    for level in [OptLevel::None, OptLevel::Full] {
        let mut compiled = CompiledSim::new_with(acc_system(), level).unwrap();
        compiled.set_budget(budget);
        match run_to_budget(&mut compiled) {
            CoreError::BudgetExceeded {
                kind: BudgetKind::Cycles,
                at_cycle,
            } => trips.push((format!("compiled-{level:?}"), at_cycle)),
            other => panic!("compiled-{level:?}: {other:?}"),
        }
    }

    for lanes in [1usize, 8] {
        let mut batch = BatchedSim::from_fn(lanes, || Ok(acc_system()), OptLevel::Full).unwrap();
        batch.set_budget(budget);
        for lane in 0..lanes {
            batch
                .set_input_lane(lane, "stop", Value::Bool(false))
                .unwrap();
        }
        let mut tripped = None;
        for i in 0..100u64 {
            for lane in 0..lanes {
                batch
                    .set_input_lane(lane, "x", Value::bits(8, i % 256))
                    .unwrap();
            }
            if let Err(e) = batch.step() {
                tripped = Some(e);
                break;
            }
        }
        match tripped {
            Some(CoreError::BudgetExceeded {
                kind: BudgetKind::Cycles,
                at_cycle,
            }) => trips.push((format!("batched-{lanes}"), at_cycle)),
            other => panic!("batched-{lanes}: {other:?}"),
        }
    }

    for (name, at_cycle) in &trips {
        assert_eq!(*at_cycle, LIMIT, "{name} tripped at the wrong cycle");
    }
    assert_eq!(trips.len(), 5);
}

/// A budget attached after a snapshot restore counts from the restored
/// cycle, so "run 3 more cycles" composes with checkpoint/resume.
#[test]
fn budget_composes_with_snapshot_restore() {
    let mut sim = CompiledSim::new(acc_system()).unwrap();
    sim.set_input("stop", Value::Bool(false)).unwrap();
    for i in 0..4u64 {
        sim.set_input("x", Value::bits(8, i)).unwrap();
        sim.step().unwrap();
    }
    let snap = sim.snapshot();

    let mut resumed = CompiledSim::new(acc_system()).unwrap();
    resumed.restore(&snap).unwrap();
    resumed.set_budget(Budget::none().with_max_cycles(6));
    resumed.set_input("stop", Value::Bool(false)).unwrap();
    resumed.set_input("x", Value::bits(8, 1)).unwrap();
    resumed.step().unwrap(); // cycle 5
    resumed.step().unwrap(); // cycle 6
    match resumed.step() {
        Err(CoreError::BudgetExceeded {
            kind: BudgetKind::Cycles,
            at_cycle: 6,
        }) => {}
        other => panic!("expected cycle-budget trip at 6, got {other:?}"),
    }
}
