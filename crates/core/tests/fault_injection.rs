//! Integration test for the cycle-true fault-injection subsystem: the
//! interpreted and compiled back-ends must stay cycle-equivalent under
//! every injected fault, because both expose identical peek/poke
//! semantics to [`FaultySim`].

use ocapi::rng::XorShift64;
use ocapi::{
    CompiledSim, Component, FaultEvent, FaultPlan, FaultSite, FaultySim, Format, InterpSim,
    Overflow, Rounding, SigType, Simulator, System, Value,
};

/// An FSMD exercising all four value types: a bit-word counter, a bool
/// control path, a fixed-point accumulator and a float mirror of it.
fn mixed_system() -> System {
    let fmt = Format::new(10, 4).expect("fmt");
    let acc_fmt = Format::new(16, 8).expect("fmt");

    let c = Component::build("dsp");
    let x = c.input("x", SigType::Fixed(fmt)).expect("in");
    let en = c.input("en", SigType::Bool).expect("in");
    let y = c.output("y", SigType::Fixed(acc_fmt)).expect("out");
    let cnt_o = c.output("cnt", SigType::Bits(6)).expect("out");
    let fl_o = c.output("fl", SigType::Float).expect("out");

    let acc = c.reg("acc", SigType::Fixed(acc_fmt)).expect("reg");
    let cnt = c.reg("cnt", SigType::Bits(6)).expect("reg");
    let fl = c.reg("fl", SigType::Float).expect("reg");

    let run = c.sfg("run").expect("sfg");
    let sum = (c.q(acc) + c.read(x)).to_fixed(acc_fmt, Rounding::Nearest, Overflow::Saturate);
    run.drive(y, &c.q(acc)).expect("drive");
    run.drive(cnt_o, &c.q(cnt)).expect("drive");
    run.drive(fl_o, &c.q(fl)).expect("drive");
    run.next(acc, &sum).expect("next");
    run.next(cnt, &(c.q(cnt) + c.const_bits(6, 1)))
        .expect("next");
    run.next(fl, &(c.q(fl) + c.read(x).to_float()))
        .expect("next");

    let hold = c.sfg("hold").expect("sfg");
    hold.drive(y, &c.q(acc)).expect("drive");
    hold.drive(cnt_o, &c.q(cnt)).expect("drive");
    hold.drive(fl_o, &c.q(fl)).expect("drive");

    let en_s = c.read(en);
    let f = c.fsm().expect("fsm");
    let s0 = f.initial("idle").expect("state");
    let s1 = f.state("busy").expect("state");
    f.from(s0).when(&en_s).run(run.id()).to(s1).expect("t");
    f.from(s0).always().run(hold.id()).to(s0).expect("t");
    f.from(s1).when(&en_s).run(run.id()).to(s1).expect("t");
    f.from(s1).always().run(hold.id()).to(s0).expect("t");
    let comp = c.finish().expect("finish");

    let mut sb = System::build("faulty");
    let u = sb.add_component("u0", comp).expect("add");
    sb.input("x", SigType::Fixed(fmt)).expect("pi");
    sb.input("en", SigType::Bool).expect("pi");
    sb.connect_input("x", u, "x").expect("conn");
    sb.connect_input("en", u, "en").expect("conn");
    sb.output("y", u, "y").expect("po");
    sb.output("cnt", u, "cnt").expect("po");
    sb.output("fl", u, "fl").expect("po");
    sb.finish().expect("system")
}

fn stimulus_value(fmt: Format, rng: &mut XorShift64) -> Value {
    let x = rng.next_f64() * 4.0 - 2.0;
    Value::Fixed(ocapi::Fix::from_f64(
        x,
        fmt,
        Rounding::Nearest,
        Overflow::Saturate,
    ))
}

/// Drives both back-ends under the identical plan and stimuli and
/// asserts every primary output matches every cycle.
fn assert_equivalent_under(plan: &FaultPlan, cycles: u64, stim_seed: u64) {
    let fmt = Format::new(10, 4).expect("fmt");
    let mut interp = FaultySim::new(
        InterpSim::new(mixed_system()).expect("interp"),
        plan.clone(),
    );
    let mut compiled = FaultySim::new(
        CompiledSim::new(mixed_system()).expect("compiled"),
        plan.clone(),
    );
    interp.enable_trace();
    compiled.enable_trace();
    let mut rng_i = XorShift64::new(stim_seed);
    let mut rng_c = XorShift64::new(stim_seed);
    for cyc in 0..cycles {
        for (sim, rng) in [
            (&mut interp as &mut dyn Simulator, &mut rng_i),
            (&mut compiled as &mut dyn Simulator, &mut rng_c),
        ] {
            sim.set_input("x", stimulus_value(fmt, rng)).expect("set");
            sim.set_input("en", Value::Bool(rng.chance(0.8)))
                .expect("set");
            sim.step().expect("step");
        }
        for out in ["y", "cnt", "fl"] {
            let a = interp.output(out).expect("out");
            let b = compiled.output(out).expect("out");
            let same = match (a, b) {
                (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                (a, b) => a == b,
            };
            assert!(
                same,
                "output `{out}` diverged at cycle {cyc}: {a:?} vs {b:?}"
            );
        }
    }
    // Cycle-by-cycle traces are identical too (floats by bit pattern,
    // so an injected NaN still compares equal to itself).
    let (ti, tc) = (interp.trace(), compiled.trace());
    assert_eq!(ti.len(), tc.len());
    assert_eq!(ti.signals.len(), tc.signals.len());
    for (si, sc) in ti.signals.iter().zip(&tc.signals) {
        assert_eq!(si.name, sc.name);
        for (c, (a, b)) in si.values.iter().zip(&sc.values).enumerate() {
            let same = match (a, b) {
                (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                (a, b) => a == b,
            };
            assert!(
                same,
                "trace `{}` diverged at cycle {c}: {a:?} vs {b:?}",
                si.name
            );
        }
    }
}

#[test]
fn backends_agree_under_explicit_faults() {
    let sites = [
        FaultSite::reg("u0", "acc"),
        FaultSite::reg("u0", "cnt"),
        FaultSite::reg("u0", "fl"),
        FaultSite::net("x"),
        FaultSite::net("en"),
        FaultSite::net("u0.y"),
        FaultSite::net("u0.cnt"),
    ];
    for (i, site) in sites.iter().enumerate() {
        let plan = FaultPlan::new()
            .with(FaultEvent::flip(site.clone(), i as u32, 3))
            .with(FaultEvent::stuck_at(site.clone(), 0, i % 2 == 0, 7, 5));
        assert_equivalent_under(&plan, 24, 0xabc0 + i as u64);
    }
}

#[test]
fn backends_agree_under_random_campaigns() {
    let sys = mixed_system();
    let seeds = if cfg!(feature = "slow-tests") {
        0..40u64
    } else {
        0..10u64
    };
    for seed in seeds {
        let plan = FaultPlan::random(&sys, 32, 0.25, 0x9999 + seed);
        assert_equivalent_under(&plan, 32, 0x1111 + seed);
    }
}

#[test]
fn fault_plan_site_enumeration_covers_system() {
    let sys = mixed_system();
    let sites = FaultPlan::sites(&sys);
    assert!(sites.contains(&FaultSite::reg("u0", "acc")));
    assert!(sites.contains(&FaultSite::net("x")));
    // 3 registers + every net.
    assert_eq!(sites.len(), 3 + sys.nets.len());
}
