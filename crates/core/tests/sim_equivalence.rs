//! Integration tests: the interpreted and compiled simulators, the
//! three-phase cycle scheduler, and mixed timed/untimed systems.

use ocapi::{
    CompiledSim, Component, CoreError, FnBlock, InterpSim, PortDecl, Ram, Rom, SigType, Simulator,
    System, Value,
};

/// A 2-state accumulator component with an enable-controlled FSM, used by
/// several tests. In `run` it accumulates `x`; on `stop` it freezes and
/// emits the held sum.
fn accumulator() -> Component {
    let c = Component::build("acc");
    let x = c.input("x", SigType::Bits(8)).unwrap();
    let stop = c.input("stop", SigType::Bool).unwrap();
    let sum_out = c.output("sum", SigType::Bits(8)).unwrap();
    let acc = c.reg("acc", SigType::Bits(8)).unwrap();

    let add = c.sfg("add").unwrap();
    let q = c.q(acc);
    let next = &q + &c.read(x);
    add.drive(sum_out, &q).unwrap();
    add.next(acc, &next).unwrap();

    let hold = c.sfg("hold").unwrap();
    hold.drive(sum_out, &c.q(acc)).unwrap();

    let stop_s = c.read(stop);
    let f = c.fsm().unwrap();
    let run = f.initial("run").unwrap();
    let frozen = f.state("frozen").unwrap();
    f.from(run).when(&stop_s).run(hold.id()).to(frozen).unwrap();
    f.from(run).always().run(add.id()).to(run).unwrap();
    f.from(frozen).always().run(hold.id()).to(frozen).unwrap();
    c.finish().unwrap()
}

fn acc_system() -> System {
    let mut sb = System::build("acc_sys");
    let u = sb.add_component("u0", accumulator()).unwrap();
    sb.input("x", SigType::Bits(8)).unwrap();
    sb.input("stop", SigType::Bool).unwrap();
    sb.connect_input("x", u, "x").unwrap();
    sb.connect_input("stop", u, "stop").unwrap();
    sb.output("sum", u, "sum").unwrap();
    sb.finish().unwrap()
}

#[test]
fn interp_accumulates_and_freezes() {
    let mut sim = InterpSim::new(acc_system()).unwrap();
    sim.set_input("stop", Value::Bool(false)).unwrap();
    for i in 1..=4 {
        sim.set_input("x", Value::bits(8, i)).unwrap();
        sim.step().unwrap();
    }
    // Mealy output shows the *pre-add* register value; after 4 adds the
    // register holds 1+2+3+4 = 10, the output showed 1+2+3 = 6.
    assert_eq!(sim.output("sum").unwrap(), Value::bits(8, 6));
    assert_eq!(sim.state_name("u0").unwrap(), "run");
    sim.set_input("stop", Value::Bool(true)).unwrap();
    sim.set_input("x", Value::bits(8, 99)).unwrap();
    sim.step().unwrap();
    assert_eq!(sim.state_name("u0").unwrap(), "frozen");
    assert_eq!(sim.output("sum").unwrap(), Value::bits(8, 10));
    sim.set_input("stop", Value::Bool(false)).unwrap();
    sim.step().unwrap();
    assert_eq!(sim.output("sum").unwrap(), Value::bits(8, 10)); // stays frozen
}

#[test]
fn compiled_matches_interp_on_accumulator() {
    let mut a = InterpSim::new(acc_system()).unwrap();
    let mut b = CompiledSim::new(acc_system()).unwrap();
    let stimuli = [
        (5u64, false),
        (3, false),
        (0, true),
        (7, false),
        (2, true),
        (1, false),
    ];
    for (x, stop) in stimuli {
        for sim in [&mut a as &mut dyn Simulator, &mut b as &mut dyn Simulator] {
            sim.set_input("x", Value::bits(8, x)).unwrap();
            sim.set_input("stop", Value::Bool(stop)).unwrap();
            sim.step().unwrap();
        }
        assert_eq!(
            a.output("sum").unwrap(),
            b.output("sum").unwrap(),
            "divergence at x={x} stop={stop}"
        );
    }
}

#[test]
fn sim_reset_restores_power_up() {
    let mut sim = InterpSim::new(acc_system()).unwrap();
    sim.set_input("x", Value::bits(8, 9)).unwrap();
    sim.set_input("stop", Value::Bool(false)).unwrap();
    sim.run(3).unwrap();
    assert_eq!(sim.cycle(), 3);
    sim.reset();
    assert_eq!(sim.cycle(), 0);
    sim.set_input("x", Value::bits(8, 1)).unwrap();
    sim.step().unwrap();
    assert_eq!(sim.output("sum").unwrap(), Value::bits(8, 0));
}

/// Figure 6 of the paper: a circular dependency between two timed
/// components and an untimed one, resolvable only because token
/// production first emits the register-dependent outputs.
#[test]
fn fig6_three_phase_resolves_circular_dependency() {
    // comp1: out1 = reg (register-only cone) ; reg' = in1 + 1
    let c1 = Component::build("comp1");
    let in1 = c1.input("in1", SigType::Bits(8)).unwrap();
    let out1 = c1.output("out1", SigType::Bits(8)).unwrap();
    let r1 = c1.reg("r1", SigType::Bits(8)).unwrap();
    let s1 = c1.sfg("s1").unwrap();
    s1.drive(out1, &c1.q(r1)).unwrap();
    s1.next(r1, &(c1.read(in1) + c1.const_bits(8, 1))).unwrap();
    let c1 = c1.finish().unwrap();

    // comp2 (untimed "RAM-like"): out = in * 2
    let blk = FnBlock::new(
        "comp2",
        vec![PortDecl {
            name: "a".into(),
            ty: SigType::Bits(8),
        }],
        vec![PortDecl {
            name: "y".into(),
            ty: SigType::Bits(8),
        }],
        |i, o| o[0] = Value::bits(8, i[0].as_bits().unwrap().wrapping_mul(2)),
    );

    // comp3: out3 = in3 + 3 (combinational through)
    let c3 = Component::build("comp3");
    let in3 = c3.input("in3", SigType::Bits(8)).unwrap();
    let out3 = c3.output("out3", SigType::Bits(8)).unwrap();
    let s3 = c3.sfg("s3").unwrap();
    s3.drive(out3, &(c3.read(in3) + c3.const_bits(8, 3)))
        .unwrap();
    let c3 = c3.finish().unwrap();

    // Loop: comp1 -> comp2 -> comp3 -> comp1
    let mut sb = System::build("fig6");
    let u1 = sb.add_component("u1", c1).unwrap();
    let u2 = sb.add_block(Box::new(blk)).unwrap();
    let u3 = sb.add_component("u3", c3).unwrap();
    sb.connect(u1, "out1", u2, "a").unwrap();
    sb.connect(u2, "y", u3, "in3").unwrap();
    sb.connect(u3, "out3", u1, "in1").unwrap();
    sb.output("probe", u3, "out3").unwrap();
    let sys = sb.finish().unwrap();

    let mut sim = InterpSim::new(sys).unwrap();
    // cycle 1: r1=0 -> out1=0 -> y=0 -> out3=3 ; r1' = 4
    sim.step().unwrap();
    assert_eq!(sim.output("probe").unwrap(), Value::bits(8, 3));
    // cycle 2: out1=4 -> y=8 -> out3=11 ; r1' = 12
    sim.step().unwrap();
    assert_eq!(sim.output("probe").unwrap(), Value::bits(8, 11));
    // cycle 3: out1=12 -> y=24 -> out3=27
    sim.step().unwrap();
    assert_eq!(sim.output("probe").unwrap(), Value::bits(8, 27));
}

#[test]
fn fig6_loop_also_compiles() {
    // The same loop is statically schedulable because comp1's output cone
    // contains only a register — build it again for the compiled back-end.
    let c1 = Component::build("comp1");
    let in1 = c1.input("in1", SigType::Bits(8)).unwrap();
    let out1 = c1.output("out1", SigType::Bits(8)).unwrap();
    let r1 = c1.reg("r1", SigType::Bits(8)).unwrap();
    let s1 = c1.sfg("s1").unwrap();
    s1.drive(out1, &c1.q(r1)).unwrap();
    s1.next(r1, &(c1.read(in1) + c1.const_bits(8, 1))).unwrap();
    let c1 = c1.finish().unwrap();

    let blk = FnBlock::new(
        "comp2",
        vec![PortDecl {
            name: "a".into(),
            ty: SigType::Bits(8),
        }],
        vec![PortDecl {
            name: "y".into(),
            ty: SigType::Bits(8),
        }],
        |i, o| o[0] = Value::bits(8, i[0].as_bits().unwrap().wrapping_mul(2)),
    );

    let c3 = Component::build("comp3");
    let in3 = c3.input("in3", SigType::Bits(8)).unwrap();
    let out3 = c3.output("out3", SigType::Bits(8)).unwrap();
    let s3 = c3.sfg("s3").unwrap();
    s3.drive(out3, &(c3.read(in3) + c3.const_bits(8, 3)))
        .unwrap();
    let c3 = c3.finish().unwrap();

    let mut sb = System::build("fig6");
    let u1 = sb.add_component("u1", c1).unwrap();
    let u2 = sb.add_block(Box::new(blk)).unwrap();
    let u3 = sb.add_component("u3", c3).unwrap();
    sb.connect(u1, "out1", u2, "a").unwrap();
    sb.connect(u2, "y", u3, "in3").unwrap();
    sb.connect(u3, "out3", u1, "in1").unwrap();
    sb.output("probe", u3, "out3").unwrap();

    let mut sim = CompiledSim::new(sb.finish().unwrap()).unwrap();
    sim.run(3).unwrap();
    assert_eq!(sim.output("probe").unwrap(), Value::bits(8, 27));
}

/// A genuine combinational loop must be reported, not spun on forever.
#[test]
fn combinational_loop_detected() {
    fn passthrough(name: &str) -> Component {
        let c = Component::build(name);
        let i = c.input("i", SigType::Bits(4)).unwrap();
        let o = c.output("o", SigType::Bits(4)).unwrap();
        let s = c.sfg("s").unwrap();
        s.drive(o, &(c.read(i) + c.const_bits(4, 1))).unwrap();
        c.finish().unwrap()
    }
    let mut sb = System::build("loop");
    let a = sb.add_component("a", passthrough("p1")).unwrap();
    let b = sb.add_component("b", passthrough("p2")).unwrap();
    sb.connect(a, "o", b, "i").unwrap();
    sb.connect(b, "o", a, "i").unwrap();
    sb.output("y", a, "o").unwrap();
    let sys = sb.finish().unwrap();

    let mut sim = InterpSim::new(sys).unwrap();
    match sim.step() {
        Err(CoreError::CombinationalLoop { waiting }) => {
            assert_eq!(waiting.len(), 2);
        }
        other => panic!("expected combinational loop, got {other:?}"),
    }
}

#[test]
fn combinational_loop_rejected_by_compiler() {
    fn passthrough(name: &str) -> Component {
        let c = Component::build(name);
        let i = c.input("i", SigType::Bits(4)).unwrap();
        let o = c.output("o", SigType::Bits(4)).unwrap();
        let s = c.sfg("s").unwrap();
        s.drive(o, &(c.read(i) + c.const_bits(4, 1))).unwrap();
        c.finish().unwrap()
    }
    let mut sb = System::build("loop");
    let a = sb.add_component("a", passthrough("p1")).unwrap();
    let b = sb.add_component("b", passthrough("p2")).unwrap();
    sb.connect(a, "o", b, "i").unwrap();
    sb.connect(b, "o", a, "i").unwrap();
    sb.output("y", a, "o").unwrap();
    assert!(matches!(
        CompiledSim::new(sb.finish().unwrap()),
        Err(CoreError::NotCompilable { .. })
    ));
}

/// The DECT-style RAM-in-the-loop pattern: a timed datapath addresses a
/// RAM from a registered pointer and consumes the read data in the same
/// cycle.
#[test]
fn ram_loop_with_timed_datapath() {
    let c = Component::build("dp");
    let rdata = c.input("rdata", SigType::Bits(8)).unwrap();
    let addr = c.output("addr", SigType::Bits(4)).unwrap();
    let we = c.output("we", SigType::Bool).unwrap();
    let wdata = c.output("wdata", SigType::Bits(8)).unwrap();
    let acc_out = c.output("acc", SigType::Bits(8)).unwrap();
    let ptr = c.reg("ptr", SigType::Bits(4)).unwrap();
    let acc = c.reg("accr", SigType::Bits(8)).unwrap();
    let s = c.sfg("scan").unwrap();
    let q = c.q(ptr);
    s.drive(addr, &q).unwrap();
    s.drive(we, &c.const_bool(false)).unwrap();
    s.drive(wdata, &c.const_bits(8, 0)).unwrap();
    let newacc = c.q(acc) + c.read(rdata);
    s.drive(acc_out, &newacc).unwrap();
    s.next(acc, &newacc).unwrap();
    s.next(ptr, &(q + c.const_bits(4, 1))).unwrap();
    let comp = c.finish().unwrap();

    let mut ram = Ram::new("ram", 4, SigType::Bits(8));
    for i in 0..16 {
        ram.preload(i, Value::bits(8, i as u64));
    }

    let build = |comp: Component, ram: Ram| {
        let mut sb = System::build("ramsys");
        let dp = sb.add_component("dp", comp).unwrap();
        let r = sb.add_block(Box::new(ram)).unwrap();
        sb.connect(dp, "addr", r, "addr").unwrap();
        sb.connect(dp, "we", r, "we").unwrap();
        sb.connect(dp, "wdata", r, "wdata").unwrap();
        sb.connect(r, "rdata", dp, "rdata").unwrap();
        sb.output("acc", dp, "acc").unwrap();
        sb.finish().unwrap()
    };

    // Sum of RAM contents 0..=4 after 5 cycles = 10.
    let mut sim = InterpSim::new(build(comp, ram)).unwrap();
    sim.run(5).unwrap();
    assert_eq!(sim.output("acc").unwrap(), Value::bits(8, 10));
}

#[test]
fn rom_driven_counter_matches_compiled() {
    // A program counter addressing a ROM; the output is the fetched word.
    fn build_sys() -> System {
        let c = Component::build("pc");
        let data = c.input("data", SigType::Bits(16)).unwrap();
        let addr = c.output("addr", SigType::Bits(4)).unwrap();
        let instr = c.output("instr", SigType::Bits(16)).unwrap();
        let pc = c.reg("pc", SigType::Bits(4)).unwrap();
        let s = c.sfg("fetch").unwrap();
        let q = c.q(pc);
        s.drive(addr, &q).unwrap();
        s.drive(instr, &c.read(data)).unwrap();
        s.next(pc, &(q + c.const_bits(4, 1))).unwrap();
        let comp = c.finish().unwrap();

        let words: Vec<Value> = (0..16)
            .map(|i| Value::bits(16, (i * 1000 + 7) as u64))
            .collect();
        let mut sb = System::build("romsys");
        let u = sb.add_component("pc", comp).unwrap();
        let rom = sb
            .add_block(Box::new(Rom::new("rom", SigType::Bits(16), words)))
            .unwrap();
        sb.connect(u, "addr", rom, "addr").unwrap();
        sb.connect(rom, "data", u, "data").unwrap();
        sb.output("instr", u, "instr").unwrap();
        sb.finish().unwrap()
    }

    let mut interp = InterpSim::new(build_sys()).unwrap();
    interp.run(5).unwrap();
    assert_eq!(interp.output("instr").unwrap(), Value::bits(16, 4007));

    let mut compiled = CompiledSim::new(build_sys()).unwrap();
    compiled.run(5).unwrap();
    assert_eq!(compiled.output("instr").unwrap(), Value::bits(16, 4007));
}

#[test]
fn trace_records_io() {
    let mut sim = InterpSim::new(acc_system()).unwrap();
    sim.enable_trace();
    sim.set_input("stop", Value::Bool(false)).unwrap();
    for i in 1..=3 {
        sim.set_input("x", Value::bits(8, i)).unwrap();
        sim.step().unwrap();
    }
    let t = sim.trace();
    assert_eq!(t.len(), 3);
    let x = t.signal("x").unwrap();
    assert!(x.is_input);
    assert_eq!(
        x.values,
        vec![Value::bits(8, 1), Value::bits(8, 2), Value::bits(8, 3)]
    );
    let sum = t.signal("sum").unwrap();
    assert!(!sum.is_input);
    assert_eq!(
        sum.values,
        vec![Value::bits(8, 0), Value::bits(8, 1), Value::bits(8, 3)]
    );
    // VCD export works and mentions the signals.
    let vcd = t.to_vcd();
    assert!(vcd.contains("$var wire 8 s0 x $end"));
}

#[test]
fn unknown_names_are_errors() {
    let mut sim = InterpSim::new(acc_system()).unwrap();
    assert!(matches!(
        sim.set_input("nope", Value::Bool(false)),
        Err(CoreError::UnknownName { .. })
    ));
    assert!(matches!(
        sim.output("nope"),
        Err(CoreError::UnknownName { .. })
    ));
    assert!(matches!(
        sim.set_input("x", Value::Bool(false)),
        Err(CoreError::ValueType { .. })
    ));
}

#[test]
fn tie_and_unconnected_input_checks() {
    let c = Component::build("needy");
    let a = c.input("a", SigType::Bits(4)).unwrap();
    let o = c.output("o", SigType::Bits(4)).unwrap();
    let s = c.sfg("s").unwrap();
    s.drive(o, &(c.read(a) + c.const_bits(4, 1))).unwrap();
    let comp = c.finish().unwrap();

    // Unconnected input -> error.
    let mut sb = System::build("t1");
    let u = sb.add_component("u", comp).unwrap();
    sb.output("o", u, "o").unwrap();
    assert!(matches!(
        sb.finish(),
        Err(CoreError::UnconnectedInput { .. })
    ));

    // Tied input works.
    let c = Component::build("needy");
    let a = c.input("a", SigType::Bits(4)).unwrap();
    let o = c.output("o", SigType::Bits(4)).unwrap();
    let s = c.sfg("s").unwrap();
    s.drive(o, &(c.read(a) + c.const_bits(4, 1))).unwrap();
    let comp = c.finish().unwrap();
    let mut sb = System::build("t2");
    let u = sb.add_component("u", comp).unwrap();
    sb.tie(u, "a", Value::bits(4, 6)).unwrap();
    sb.output("o", u, "o").unwrap();
    let mut sim = InterpSim::new(sb.finish().unwrap()).unwrap();
    sim.step().unwrap();
    assert_eq!(sim.output("o").unwrap(), Value::bits(4, 7));
}

#[test]
fn double_connection_rejected() {
    let c = Component::build("needy");
    let a = c.input("a", SigType::Bits(4)).unwrap();
    let o = c.output("o", SigType::Bits(4)).unwrap();
    let s = c.sfg("s").unwrap();
    s.drive(o, &c.read(a)).unwrap();
    let comp = c.finish().unwrap();
    let mut sb = System::build("t");
    let u = sb.add_component("u", comp).unwrap();
    sb.input("p", SigType::Bits(4)).unwrap();
    sb.input("q", SigType::Bits(4)).unwrap();
    sb.connect_input("p", u, "a").unwrap();
    sb.connect_input("q", u, "a").unwrap();
    assert!(matches!(
        sb.finish(),
        Err(CoreError::ConnectionConflict { .. })
    ));
}
